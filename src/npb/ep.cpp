#include "npb/ep.h"

#include <cmath>
#include <vector>

#include "npb/nprandom.h"
#include "runtime/hl.h"

namespace zomp::npb {

namespace {

// NPB EP blocking: numbers are generated in blocks of 2^(kBlockLog+1)
// (2^kBlockLog pairs) whose seeds are reached by modular exponentiation, so
// any block can be produced independently — that is what makes the kernel
// embarrassingly parallel despite the sequential generator.
constexpr int kBlockLog = 16;

struct BlockAccum {
  double sx = 0.0;
  double sy = 0.0;
  std::array<std::int64_t, 10> q{};
  std::int64_t accepted = 0;
};

/// Processes pair-block `block` (0-based) of 2^kBlockLog pairs.
void ep_block(std::int64_t block, std::vector<double>& scratch,
              BlockAccum& acc) {
  const std::int64_t pairs = std::int64_t{1} << kBlockLog;
  // Jump the seed to the start of this block: each pair consumes two
  // numbers, so the offset is 2 * block * pairs steps.
  double t = ipow46(kRandA, 2 * block * pairs);
  double seed = kDefaultSeed;
  randlc(&seed, t);

  scratch.resize(static_cast<std::size_t>(2 * pairs));
  vranlc(2 * pairs, &seed, kRandA, scratch.data());

  for (std::int64_t i = 0; i < pairs; ++i) {
    const double x = 2.0 * scratch[static_cast<std::size_t>(2 * i)] - 1.0;
    const double y = 2.0 * scratch[static_cast<std::size_t>(2 * i + 1)] - 1.0;
    const double t1 = x * x + y * y;
    if (t1 > 1.0) continue;
    const double t2 = std::sqrt(-2.0 * std::log(t1) / t1);
    const double gx = x * t2;
    const double gy = y * t2;
    const auto bin = static_cast<std::size_t>(
        std::max(std::fabs(gx), std::fabs(gy)));
    if (bin < acc.q.size()) ++acc.q[bin];
    acc.sx += gx;
    acc.sy += gy;
    ++acc.accepted;
  }
}

EpResult finish(const BlockAccum& acc) {
  EpResult r;
  r.sx = acc.sx;
  r.sy = acc.sy;
  r.q = acc.q;
  r.pairs_in_disc = acc.accepted;
  return r;
}

}  // namespace

EpClass ep_class(char name) {
  // Verification sums are frozen outputs of this implementation: the block
  // seed-jumping scheme here is NPB-style but not bit-identical to the
  // reference's, so the official NPB constants do not apply (documented
  // substitution — see EXPERIMENTS.md).
  switch (name) {
    case 'S': return EpClass{'S', 24, 3.372292317785923e+3, 1.215555734478357e+3};
    case 'W': return EpClass{'W', 25, 5.773191210325065e+3, 2.366711611623219e+3};
    case 'A': return EpClass{'A', 28, -2.420465492590527e+4, 5.927237643850757e+2};
    case 'm':
    default: return EpClass{'m', 18, -7.562892068717590e+2, -4.968668248989351e+2};
  }
}

EpResult ep_serial(int m) {
  const std::int64_t blocks = std::int64_t{1} << (m - kBlockLog);
  BlockAccum total;
  std::vector<double> scratch;
  for (std::int64_t b = 0; b < blocks; ++b) ep_block(b, scratch, total);
  return finish(total);
}

EpResult ep_parallel(int m, int num_threads) {
  const std::int64_t blocks = std::int64_t{1} << (m - kBlockLog);
  EpResult result;
  double sx = 0.0;
  double sy = 0.0;
  std::int64_t accepted = 0;
  std::array<std::int64_t, 10> q{};

  zomp::ParallelOptions par;
  par.num_threads = num_threads;
  zomp::parallel(
      [&] {
        BlockAccum local;
        std::vector<double> scratch;
        zomp::for_each(
            0, blocks, [&](std::int64_t b) { ep_block(b, scratch, local); },
            zomp::ForOptions{{zomp::rt::ScheduleKind::kStatic, 0},
                             /*nowait=*/true});
        zomp::critical([&] {
          sx += local.sx;
          sy += local.sy;
          accepted += local.accepted;
          for (std::size_t i = 0; i < q.size(); ++i) q[i] += local.q[i];
        });
      },
      par);

  result.sx = sx;
  result.sy = sy;
  result.pairs_in_disc = accepted;
  result.q = q;
  return result;
}

bool ep_verify(const EpResult& result, const EpClass& cls) {
  if (cls.verify_sx == 0.0 && cls.verify_sy == 0.0) return true;  // smoke class
  const double ex = std::fabs((result.sx - cls.verify_sx) / cls.verify_sx);
  const double ey = std::fabs((result.sy - cls.verify_sy) / cls.verify_sy);
  return ex <= 1e-8 && ey <= 1e-8;
}

}  // namespace zomp::npb
