#include "npb/is.h"

#include <algorithm>

#include "npb/nprandom.h"
#include "runtime/hl.h"

namespace zomp::npb {

IsClass is_class(char name) {
  switch (name) {
    // Sizes follow NPB IS; checksums are frozen outputs of this
    // implementation (EXPERIMENTS.md).
    case 'S': return IsClass{'S', 1 << 16, 1 << 11, 10, 2689649374057299328ull};
    case 'W': return IsClass{'W', 1 << 20, 1 << 16, 10, 14961056254894954607ull};
    case 'A': return IsClass{'A', 1 << 23, 1 << 19, 10, 1781662763130020138ull};
    case 'm':
    default: return IsClass{'m', 1 << 12, 1 << 8, 5, 0};
  }
}

std::vector<std::int64_t> is_make_keys(std::int64_t total_keys,
                                       std::int64_t max_key) {
  std::vector<std::int64_t> keys(static_cast<std::size_t>(total_keys));
  double seed = kDefaultSeed;
  const double k = static_cast<double>(max_key) / 4.0;
  for (std::int64_t i = 0; i < total_keys; ++i) {
    double x = randlc(&seed, kRandA);
    x += randlc(&seed, kRandA);
    x += randlc(&seed, kRandA);
    x += randlc(&seed, kRandA);
    keys[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(k * x);
  }
  return keys;
}

namespace {

/// Probe ranks after each round feed a checksum, the analogue of NPB's
/// partial verification; probes are spread deterministically over the keys.
std::uint64_t probe_checksum(const std::vector<std::int64_t>& keys,
                             const std::vector<std::int64_t>& rank_of_key,
                             int round) {
  std::uint64_t sum = 0;
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  for (int p = 0; p < 5; ++p) {
    const std::int64_t idx = (n / 5) * p + round;
    const std::int64_t key = keys[static_cast<std::size_t>(idx % n)];
    sum = sum * 31 + static_cast<std::uint64_t>(
                         rank_of_key[static_cast<std::size_t>(key)]);
  }
  return sum;
}

void perturb(std::vector<std::int64_t>& keys, std::int64_t max_key,
             int round, int iterations) {
  // NPB IS modifies two keys each round so the ranking cannot be hoisted.
  // Rounds are 1-based (as in NPB), keeping max_key - round inside the
  // key range [0, max_key).
  keys[static_cast<std::size_t>(round)] = round;
  keys[static_cast<std::size_t>(round + iterations)] = max_key - round;
}

}  // namespace

IsResult is_serial(std::vector<std::int64_t> keys, std::int64_t max_key,
                   int iterations, bool full_sort) {
  IsResult result;
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  std::vector<std::int64_t> count(static_cast<std::size_t>(max_key));
  for (int round = 1; round <= iterations; ++round) {
    perturb(keys, max_key, round, iterations);
    std::fill(count.begin(), count.end(), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      ++count[static_cast<std::size_t>(keys[static_cast<std::size_t>(i)])];
    }
    // Exclusive prefix sum: count[k] becomes the rank of key value k.
    std::int64_t running = 0;
    for (std::int64_t k = 0; k < max_key; ++k) {
      const std::int64_t c = count[static_cast<std::size_t>(k)];
      count[static_cast<std::size_t>(k)] = running;
      running += c;
    }
    result.rank_checksum =
        result.rank_checksum * 1000003 + probe_checksum(keys, count, round);
  }
  // Full sort from the final counts.
  if (!full_sort) {
    result.sorted = true;  // caller skipped the check (timed run)
    return result;
  }
  std::vector<std::int64_t> sorted(static_cast<std::size_t>(n));
  std::vector<std::int64_t> next = count;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t key = keys[static_cast<std::size_t>(i)];
    sorted[static_cast<std::size_t>(next[static_cast<std::size_t>(key)]++)] = key;
  }
  result.sorted = std::is_sorted(sorted.begin(), sorted.end());
  return result;
}

IsResult is_parallel(std::vector<std::int64_t> keys, std::int64_t max_key,
                     int iterations, int num_threads, bool full_sort) {
  IsResult result;
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  std::vector<std::int64_t> count(static_cast<std::size_t>(max_key));
  // Work arrays live across rounds (as NPB's do); each thread zeroes its own
  // band at the start of a round.
  std::vector<std::vector<std::int64_t>> local_hist;

  zomp::ParallelOptions par;
  par.num_threads = num_threads;

  for (int round = 1; round <= iterations; ++round) {
    perturb(keys, max_key, round, iterations);
    zomp::parallel(
        [&] {
          const int tid = zomp::thread_num();
          const int nth = zomp::num_threads();
          zomp::single([&] {
            if (static_cast<int>(local_hist.size()) != nth) {
              local_hist.assign(static_cast<std::size_t>(nth),
                                std::vector<std::int64_t>(
                                    static_cast<std::size_t>(max_key), 0));
            }
          });
          auto& mine = local_hist[static_cast<std::size_t>(tid)];
          std::fill(mine.begin(), mine.end(), 0);
          zomp::barrier();
          zomp::for_each(0, n, [&](std::int64_t i) {
            ++mine[static_cast<std::size_t>(keys[static_cast<std::size_t>(i)])];
          });
          // Merge: each thread owns a contiguous band of key values.
          zomp::for_each(0, max_key, [&](std::int64_t k) {
            std::int64_t sum = 0;
            for (int t = 0; t < nth; ++t) {
              sum += local_hist[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(k)];
            }
            count[static_cast<std::size_t>(k)] = sum;
          });
          // Prefix sum stays serial (NPB keeps it on one thread too).
          zomp::single([&] {
            std::int64_t running = 0;
            for (std::int64_t k = 0; k < max_key; ++k) {
              const std::int64_t c = count[static_cast<std::size_t>(k)];
              count[static_cast<std::size_t>(k)] = running;
              running += c;
            }
          });
        },
        par);
    result.rank_checksum =
        result.rank_checksum * 1000003 + probe_checksum(keys, count, round);
  }

  if (!full_sort) {
    result.sorted = true;  // caller skipped the check (timed run)
    return result;
  }
  std::vector<std::int64_t> sorted(static_cast<std::size_t>(n));
  std::vector<std::int64_t> next = count;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t key = keys[static_cast<std::size_t>(i)];
    sorted[static_cast<std::size_t>(next[static_cast<std::size_t>(key)]++)] = key;
  }
  result.sorted = std::is_sorted(sorted.begin(), sorted.end());
  return result;
}

bool is_verify(const IsResult& result, const IsClass& cls) {
  if (!result.sorted) return false;
  if (cls.verify_checksum == 0) return true;  // smoke class
  return result.rank_checksum == cls.verify_checksum;
}

std::int64_t is_rank_checksum_mod(std::vector<std::int64_t> keys,
                                  std::int64_t max_key, int iterations) {
  constexpr std::int64_t kMod = 1073741824;  // 2^30, as in kernels/is.mz
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  std::vector<std::int64_t> count(static_cast<std::size_t>(max_key));
  std::int64_t checksum = 0;
  for (int round = 1; round <= iterations; ++round) {
    perturb(keys, max_key, round, iterations);
    std::fill(count.begin(), count.end(), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      ++count[static_cast<std::size_t>(keys[static_cast<std::size_t>(i)])];
    }
    std::int64_t running = 0;
    for (std::int64_t k = 0; k < max_key; ++k) {
      const std::int64_t c = count[static_cast<std::size_t>(k)];
      count[static_cast<std::size_t>(k)] = running;
      running += c;
    }
    std::int64_t probe = 0;
    for (int p = 0; p < 5; ++p) {
      const std::int64_t idx = ((n / 5) * p + round) % n;
      const std::int64_t key = keys[static_cast<std::size_t>(idx)];
      probe = (probe * 31 + count[static_cast<std::size_t>(key)]) % kMod;
    }
    checksum = (checksum * 1000003 + probe) % kMod;
  }
  return checksum;
}

}  // namespace zomp::npb
