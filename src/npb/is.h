// NPB IS (Integer Sort) kernel.
//
// Keys drawn from the NPB generator (sum of four uniforms scaled to the key
// range, giving the benchmark's triangular-ish distribution), ranked by
// counting sort over `iterations` rounds with the NPB per-round key
// perturbation, then fully sorted and order-verified.
//
// The parallel reference uses per-thread histograms merged under the team
// (the NPB C+OpenMP strategy); the MiniZig variant in kernels/is.mz uses the
// same algorithm through the directive engine.
#pragma once

#include <cstdint>
#include <vector>

namespace zomp::npb {

struct IsClass {
  char name;
  std::int64_t total_keys;  // number of keys
  std::int64_t max_key;     // keys are in [0, max_key)
  int iterations;           // ranking rounds (NPB uses 10)
  std::uint64_t verify_checksum;  // frozen rank checksum; 0 = smoke class
};

IsClass is_class(char name);

/// Deterministic NPB-style key generation.
std::vector<std::int64_t> is_make_keys(std::int64_t total_keys,
                                       std::int64_t max_key);

struct IsResult {
  /// Accumulated checksum over the per-round ranks of probe keys.
  std::uint64_t rank_checksum = 0;
  bool sorted = false;
};

/// `full_sort` controls whether the final scatter-sort + order check runs;
/// NPB times the ranking rounds only, so benches pass false on timed runs
/// (result.sorted is then reported true without the check).
IsResult is_serial(std::vector<std::int64_t> keys, std::int64_t max_key,
                   int iterations, bool full_sort = true);
IsResult is_parallel(std::vector<std::int64_t> keys, std::int64_t max_key,
                     int iterations, int num_threads = 0,
                     bool full_sort = true);

bool is_verify(const IsResult& result, const IsClass& cls);

/// Serial rank checksum in the *modular* formula used by the MiniZig kernel
/// (kernels/is.mz) — i64-safe arithmetic so the transpiled and interpreted
/// backends can be verified against the host implementation.
std::int64_t is_rank_checksum_mod(std::vector<std::int64_t> keys,
                                  std::int64_t max_key, int iterations);

}  // namespace zomp::npb
