// Fortran-ABI exports of the CG and EP reference kernels.
//
// The paper's CG and EP reference implementations are Fortran+OpenMP; this
// repo reproduces the *call boundary* of that setup (DESIGN.md §2): the
// kernels are exported under gfortran-mangled names (trailing underscore)
// with every argument passed by reference, and the Table 1 harness invokes
// them exactly as the paper's Zig invokes Fortran. The declarations below
// are what `zomp::fortran::cpp_prototype` generates for the matching FProc
// signatures (asserted by tests/fortran_test.cpp).
#pragma once

#include <cstdint>

extern "C" {

/// EP, parallel reference: m = log2(pairs). Outputs the Gaussian sums.
void ep_kernel_(const std::int64_t* m, const std::int64_t* num_threads,
                double* sx, double* sy, std::int64_t* accepted);

/// CG, parallel reference: runs `niter` power iterations with embedded
/// 25-step CG solves on the CSR matrix (all arrays by reference, 0-based
/// contents produced by cg_make_matrix).
void cg_solve_(const std::int64_t* n, const std::int64_t* rowstr,
               const std::int64_t* colidx, const double* values,
               const std::int64_t* niter, const double* shift,
               const std::int64_t* num_threads, double* zeta, double* rnorm);

}  // extern "C"
