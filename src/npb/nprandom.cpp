#include "npb/nprandom.h"

#include <cmath>

namespace zomp::npb {

namespace {

// 2^-23, 2^23, 2^-46, 2^46 as exact doubles.
constexpr double r23 = 1.0 / 8388608.0;
constexpr double t23 = 8388608.0;
constexpr double r46 = r23 * r23;
constexpr double t46 = t23 * t23;

}  // namespace

double randlc(double* x, double a) {
  // Split a and x into 23-bit halves so all products fit in the mantissa.
  const double t1a = r23 * a;
  const double a1 = static_cast<double>(static_cast<std::int64_t>(t1a));
  const double a2 = a - t23 * a1;

  const double t1x = r23 * (*x);
  const double x1 = static_cast<double>(static_cast<std::int64_t>(t1x));
  const double x2 = *x - t23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<std::int64_t>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<std::int64_t>(r46 * t3));
  *x = t3 - t46 * t4;
  return r46 * (*x);
}

void vranlc(std::int64_t n, double* x, double a, double* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = randlc(x, a);
}

double ipow46(double a, std::int64_t exponent) {
  if (exponent == 0) return 1.0;
  double q = a;
  double r = 1.0;
  std::int64_t n = exponent;
  while (n > 1) {
    const std::int64_t n2 = n / 2;
    if (n2 * 2 == n) {
      randlc(&q, q);  // q = q^2 mod 2^46
      n = n2;
    } else {
      randlc(&r, q);  // r = r*q mod 2^46
      n = n - 1;
    }
  }
  randlc(&r, q);
  return r;
}

}  // namespace zomp::npb
