// NPB CG (Conjugate Gradient) kernel.
//
// Power-method outer loop around a 25-step conjugate-gradient solve on a
// random sparse symmetric positive-definite matrix, reporting
// zeta = shift + 1 / (x . z) — the same computation and verification shape
// as NPB CG.
//
// Substitution note (DESIGN.md §2): the matrix generator is a from-scratch
// random diagonally-dominant SPD generator driven by the NPB randlc stream,
// not NPB's outer-product `makea`. It preserves what the benchmark stresses
// — an irregular-gather sparse matvec inside CG — and the verification zeta
// values are computed with this generator and frozen (EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace zomp::npb {

/// Compressed sparse row, the layout NPB CG uses (1-based in Fortran, 0-based
/// here).
struct SparseMatrix {
  std::int64_t n = 0;
  std::vector<std::int64_t> rowstr;  // n+1 entries
  std::vector<std::int64_t> colidx;  // nnz entries
  std::vector<double> values;        // nnz entries

  std::int64_t nnz() const { return static_cast<std::int64_t>(values.size()); }
};

struct CgClass {
  char name;
  std::int64_t na;       // matrix order
  std::int64_t nonzer;   // off-diagonal nonzeros per row (approx.)
  int niter;             // outer (power-method) iterations
  double shift;
  double verify_zeta;    // frozen with this generator; 0 = unverified class
};

CgClass cg_class(char name);

/// Builds the random SPD matrix for the class (deterministic: NPB randlc
/// stream from the canonical seed).
SparseMatrix cg_make_matrix(std::int64_t na, std::int64_t nonzer);

struct CgResult {
  double zeta = 0.0;
  double final_rnorm = 0.0;
  int iterations = 0;
};

/// Serial ground truth.
CgResult cg_serial(const SparseMatrix& a, int niter, double shift);

/// Parallel reference using the zomp C++ API: one parallel region per CG
/// solve with worksharing+reduction loops inside — the structure of the
/// Fortran reference implementation.
CgResult cg_parallel(const SparseMatrix& a, int niter, double shift,
                     int num_threads = 0);

bool cg_verify(const CgResult& result, const CgClass& cls);

}  // namespace zomp::npb
