// NPB EP (Embarrassingly Parallel) kernel.
//
// Generates 2^(m+1) uniform randoms with the NPB generator, maps pairs into
// (-1,1)^2, keeps those inside the unit disc, converts them to independent
// Gaussian deviates (Marsaglia polar method, as the NPB spec prescribes) and
// accumulates the sums of the deviates plus counts per max-norm annulus.
//
// Two host-side variants:
//   * ep_serial       — single thread, ground truth
//   * ep_parallel     — zomp high-level API ("reference" column of Table 1;
//                       the paper's EP reference is Fortran+OpenMP, so the
//                       bench reaches this through the Fortran ABI shim)
// The "Zig+OpenMP" variant lives in kernels/ep.mz and is transpiled by mzc.
#pragma once

#include <array>
#include <cstdint>

namespace zomp::npb {

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::int64_t pairs_in_disc = 0;     // total accepted pairs
  std::array<std::int64_t, 10> q{};   // annulus counts
  bool verified = false;
};

/// Problem classes: m = log2(number of pairs). NPB: S=24, W=25, A=28.
struct EpClass {
  char name;
  int m;
  double verify_sx;
  double verify_sy;
};

/// Returns the class descriptor for 'S', 'W', 'A' ('m' for the tiny smoke
/// size used by unit tests; it has self-computed verification sums).
EpClass ep_class(char name);

EpResult ep_serial(int m);
EpResult ep_parallel(int m, int num_threads = 0);

/// Checks sx/sy against the class verification sums (relative 1e-8).
bool ep_verify(const EpResult& result, const EpClass& cls);

}  // namespace zomp::npb
