#include "npb/mandel.h"

#include <cstdio>

#include "runtime/hl.h"

namespace zomp::npb {

std::int64_t mandel_pixel(double cr, double ci, std::int64_t max_iter) {
  double zr = 0.0;
  double zi = 0.0;
  std::int64_t it = 0;
  while (it < max_iter && zr * zr + zi * zi <= 4.0) {
    const double t = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = t;
    ++it;
  }
  return it;
}

MandelResult mandel_serial(const MandelParams& params) {
  MandelResult result;
  for (std::int64_t y = 0; y < params.height; ++y) {
    const double ci =
        params.im_min + (params.im_max - params.im_min) * static_cast<double>(y) /
                     static_cast<double>(params.height);
    for (std::int64_t x = 0; x < params.width; ++x) {
      const double cr =
          params.re_min + (params.re_max - params.re_min) * static_cast<double>(x) /
                       static_cast<double>(params.width);
      const std::int64_t it = mandel_pixel(cr, ci, params.max_iter);
      result.iter_checksum += static_cast<std::uint64_t>(it);
      if (it == params.max_iter) ++result.inside;
    }
  }
  return result;
}

MandelResult mandel_parallel(const MandelParams& params, int num_threads,
                             int schedule_kind, std::int64_t chunk) {
  std::int64_t inside = 0;
  std::uint64_t checksum = 0;

  zomp::ParallelOptions par;
  par.num_threads = num_threads;
  zomp::ForOptions rows;
  rows.schedule =
      zomp::rt::Schedule{static_cast<zomp::rt::ScheduleKind>(schedule_kind),
                         chunk};
  rows.nowait = true;

  zomp::parallel(
      [&] {
        std::int64_t my_inside = 0;
        std::uint64_t my_checksum = 0;
        zomp::for_each(
            0, params.height,
            [&](std::int64_t y) {
              const double ci = params.im_min + (params.im_max - params.im_min) *
                                             static_cast<double>(y) /
                                             static_cast<double>(params.height);
              for (std::int64_t x = 0; x < params.width; ++x) {
                const double cr = params.re_min + (params.re_max - params.re_min) *
                                               static_cast<double>(x) /
                                               static_cast<double>(params.width);
                const std::int64_t it = mandel_pixel(cr, ci, params.max_iter);
                my_checksum += static_cast<std::uint64_t>(it);
                if (it == params.max_iter) ++my_inside;
              }
            },
            rows);
        zomp::critical([&] {
          inside += my_inside;
          checksum += my_checksum;
        });
      },
      par);

  return MandelResult{inside, checksum};
}

void mandel_render(const MandelParams& params, std::vector<std::int64_t>& out,
                   int num_threads) {
  out.assign(static_cast<std::size_t>(params.width * params.height), 0);
  zomp::ParallelOptions par;
  par.num_threads = num_threads;
  zomp::ForOptions rows;
  rows.schedule = zomp::rt::Schedule{zomp::rt::ScheduleKind::kDynamic, 1};
  zomp::parallel(
      [&] {
        zomp::for_each(
            0, params.height,
            [&](std::int64_t y) {
              const double ci = params.im_min + (params.im_max - params.im_min) *
                                             static_cast<double>(y) /
                                             static_cast<double>(params.height);
              for (std::int64_t x = 0; x < params.width; ++x) {
                const double cr = params.re_min + (params.re_max - params.re_min) *
                                               static_cast<double>(x) /
                                               static_cast<double>(params.width);
                out[static_cast<std::size_t>(y * params.width + x)] =
                    mandel_pixel(cr, ci, params.max_iter);
              }
            },
            rows);
      },
      par);
}

bool mandel_write_pgm(const MandelParams& params,
                      const std::vector<std::int64_t>& iters,
                      const char* path) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P5\n%lld %lld\n255\n", static_cast<long long>(params.width),
               static_cast<long long>(params.height));
  for (const std::int64_t it : iters) {
    const auto shade = static_cast<unsigned char>(
        it >= params.max_iter ? 0 : 255 - (it * 255) / params.max_iter);
    std::fputc(shade, f);
  }
  std::fclose(f);
  return true;
}

}  // namespace zomp::npb
