// The NAS Parallel Benchmarks pseudorandom number generator (NPB 1 §2.3):
// x_{k+1} = a * x_k mod 2^46 with a = 5^13, yielding uniform doubles in
// (0, 1) as x_k * 2^-46. Implemented exactly as the reference (split 23-bit
// arithmetic so every intermediate stays inside the 52-bit mantissa), so the
// kernel inputs match the reference implementations bit-for-bit.
#pragma once

#include <cstdint>

namespace zomp::npb {

inline constexpr double kRandA = 1220703125.0;  // 5^13
inline constexpr double kDefaultSeed = 314159265.0;

/// Advances *x one step and returns the uniform double in (0, 1).
double randlc(double* x, double a);

/// Fills y[0..n) with uniform randoms, advancing *x.
void vranlc(std::int64_t n, double* x, double a, double* y);

/// a^exp mod 2^46 — used to jump a seed to a block offset so blocks can be
/// generated independently in parallel (the EP blocking scheme).
double ipow46(double a, std::int64_t exponent);

}  // namespace zomp::npb
