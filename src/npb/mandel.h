// Mandelbrot set benchmark (the paper's fourth workload; its reference
// implementation is C+OpenMP).
//
// Escape-time iteration over a pixel grid of the complex rectangle
// [-2, 0.5] x [-1.25, 1.25]. Iteration counts vary wildly per pixel, so the
// kernel is the schedule-clause showcase: static distributions load-imbalance
// badly, dynamic/guided recover — this is what bench/ablate_schedule sweeps.
#pragma once

#include <cstdint>
#include <vector>

namespace zomp::npb {

struct MandelParams {
  std::int64_t width = 512;
  std::int64_t height = 512;
  std::int64_t max_iter = 1000;
  // Complex-plane window. The default is the classic full view; benches that
  // probe load imbalance use asymmetric windows (rows near the set cost
  // ~max_iter per pixel, far rows almost nothing).
  double re_min = -2.0;
  double re_max = 0.5;
  double im_min = -1.25;
  double im_max = 1.25;
};

struct MandelResult {
  std::int64_t inside = 0;          ///< pixels that never escaped
  std::uint64_t iter_checksum = 0;  ///< sum of iteration counts (exact)
};

/// Iteration count for one pixel (max_iter if the point never escapes).
std::int64_t mandel_pixel(double cr, double ci, std::int64_t max_iter);

MandelResult mandel_serial(const MandelParams& params);

/// Parallel reference: rows distributed with the given schedule.
MandelResult mandel_parallel(const MandelParams& params, int num_threads = 0,
                             int schedule_kind = 1 /*dynamic*/,
                             std::int64_t chunk = 1);

/// Writes a PGM image of the iteration counts (used by the example app).
bool mandel_write_pgm(const MandelParams& params,
                      const std::vector<std::int64_t>& iters,
                      const char* path);

/// Renders into a caller-provided buffer of width*height iteration counts.
void mandel_render(const MandelParams& params, std::vector<std::int64_t>& out,
                   int num_threads = 0);

}  // namespace zomp::npb
