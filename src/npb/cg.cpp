#include "npb/cg.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "npb/nprandom.h"
#include "runtime/hl.h"

namespace zomp::npb {

CgClass cg_class(char name) {
  switch (name) {
    // Sizes follow NPB CG; verification zetas are frozen outputs of this
    // generator+solver (see header note and EXPERIMENTS.md).
    case 'S': return CgClass{'S', 1400, 7, 15, 10.0, 11.774077163811150};
    case 'W': return CgClass{'W', 7000, 8, 15, 12.0, 13.598734130649078};
    case 'A': return CgClass{'A', 14000, 11, 15, 20.0, 22.263935796971111};
    case 'm':
    default: return CgClass{'m', 256, 5, 5, 6.0, 0.0};
  }
}

SparseMatrix cg_make_matrix(std::int64_t na, std::int64_t nonzer) {
  // Deterministic random pattern from the NPB generator. Row i receives
  // `nonzer` candidate off-diagonal entries in columns < i (duplicates
  // collapse by accumulation); the pattern is symmetrised and the diagonal
  // set to (row |off-diagonal| sum + 1), making the matrix strictly
  // diagonally dominant, hence SPD.
  double seed = kDefaultSeed;
  std::vector<std::map<std::int64_t, double>> rows(
      static_cast<std::size_t>(na));
  for (std::int64_t i = 1; i < na; ++i) {
    for (std::int64_t k = 0; k < nonzer; ++k) {
      const double r1 = randlc(&seed, kRandA);
      const double r2 = randlc(&seed, kRandA);
      const auto j = static_cast<std::int64_t>(r1 * static_cast<double>(i));
      const double v = r2 - 0.5;
      rows[static_cast<std::size_t>(i)][j] += v;
      rows[static_cast<std::size_t>(j)][i] += v;
    }
  }
  // Diagonal dominance.
  for (std::int64_t i = 0; i < na; ++i) {
    auto& row = rows[static_cast<std::size_t>(i)];
    double sum = 0.0;
    for (const auto& [j, v] : row) {
      if (j != i) sum += std::fabs(v);
    }
    row[i] = sum + 1.0;
  }

  SparseMatrix a;
  a.n = na;
  a.rowstr.resize(static_cast<std::size_t>(na) + 1, 0);
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < na; ++i) {
    nnz += static_cast<std::int64_t>(rows[static_cast<std::size_t>(i)].size());
    a.rowstr[static_cast<std::size_t>(i) + 1] = nnz;
  }
  a.colidx.reserve(static_cast<std::size_t>(nnz));
  a.values.reserve(static_cast<std::size_t>(nnz));
  for (std::int64_t i = 0; i < na; ++i) {
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      a.colidx.push_back(j);
      a.values.push_back(v);
    }
  }
  return a;
}

namespace {

/// One conjugate-gradient solve (25 iterations, NPB's cgitmax) of A z = x.
/// Returns ||r|| at exit. Serial version.
double conj_grad_serial(const SparseMatrix& a, const std::vector<double>& x,
                        std::vector<double>& z) {
  const std::int64_t n = a.n;
  std::vector<double> r = x;
  std::vector<double> p = r;
  std::vector<double> q(static_cast<std::size_t>(n));
  std::fill(z.begin(), z.end(), 0.0);

  double rho = 0.0;
  for (std::int64_t i = 0; i < n; ++i) rho += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];

  constexpr int cgitmax = 25;
  for (int it = 0; it < cgitmax; ++it) {
    // q = A p (the irregular-gather matvec the benchmark stresses).
    for (std::int64_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
           k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
        sum += a.values[static_cast<std::size_t>(k)] *
               p[static_cast<std::size_t>(a.colidx[static_cast<std::size_t>(k)])];
      }
      q[static_cast<std::size_t>(i)] = sum;
    }
    double d = 0.0;
    for (std::int64_t i = 0; i < n; ++i) d += p[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i)];
    const double alpha = rho / d;
    double rho0 = rho;
    rho = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      z[static_cast<std::size_t>(i)] += alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
      rho += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
    }
    const double beta = rho / rho0;
    for (std::int64_t i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
    }
  }

  // ||x - A z||
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double az = 0.0;
    for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
         k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
      az += a.values[static_cast<std::size_t>(k)] *
            z[static_cast<std::size_t>(a.colidx[static_cast<std::size_t>(k)])];
    }
    const double diff = x[static_cast<std::size_t>(i)] - az;
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

/// Parallel conj_grad: whole solve inside one parallel region; every vector
/// op is a worksharing loop, every dot product a reduction — mirroring the
/// Fortran reference's OpenMP structure.
double conj_grad_parallel(const SparseMatrix& a, const std::vector<double>& x,
                          std::vector<double>& z, std::vector<double>& r,
                          std::vector<double>& p, std::vector<double>& q,
                          int num_threads) {
  const std::int64_t n = a.n;
  double rho = 0.0;
  double d = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
  double rnorm = 0.0;

  zomp::ParallelOptions par;
  par.num_threads = num_threads;
  zomp::parallel(
      [&] {
        zomp::for_each(0, n, [&](std::int64_t i) {
          const auto u = static_cast<std::size_t>(i);
          z[u] = 0.0;
          r[u] = x[u];
          p[u] = x[u];
        });
        const double rho_init = zomp::reduce_each<double>(
            0, n, 0.0, std::plus<>{}, [&](std::int64_t i) {
              const auto u = static_cast<std::size_t>(i);
              return r[u] * r[u];
            });
        zomp::single([&] { rho = rho_init; });

        constexpr int cgitmax = 25;
        for (int it = 0; it < cgitmax; ++it) {
          zomp::for_each(0, n, [&](std::int64_t i) {
            double sum = 0.0;
            for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
                 k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
              sum += a.values[static_cast<std::size_t>(k)] *
                     p[static_cast<std::size_t>(
                         a.colidx[static_cast<std::size_t>(k)])];
            }
            q[static_cast<std::size_t>(i)] = sum;
          });
          const double d_local = zomp::reduce_each<double>(
              0, n, 0.0, std::plus<>{}, [&](std::int64_t i) {
                const auto u = static_cast<std::size_t>(i);
                return p[u] * q[u];
              });
          zomp::single([&] {
            d = d_local;
            alpha = rho / d;
          });
          const double rho_new = zomp::reduce_each<double>(
              0, n, 0.0, std::plus<>{}, [&](std::int64_t i) {
                const auto u = static_cast<std::size_t>(i);
                z[u] += alpha * p[u];
                r[u] -= alpha * q[u];
                return r[u] * r[u];
              });
          zomp::single([&] {
            beta = rho_new / rho;
            rho = rho_new;
          });
          zomp::for_each(0, n, [&](std::int64_t i) {
            const auto u = static_cast<std::size_t>(i);
            p[u] = r[u] + beta * p[u];
          });
        }

        const double res = zomp::reduce_each<double>(
            0, n, 0.0, std::plus<>{}, [&](std::int64_t i) {
              double az = 0.0;
              for (std::int64_t k = a.rowstr[static_cast<std::size_t>(i)];
                   k < a.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
                az += a.values[static_cast<std::size_t>(k)] *
                      z[static_cast<std::size_t>(
                          a.colidx[static_cast<std::size_t>(k)])];
              }
              const double diff = x[static_cast<std::size_t>(i)] - az;
              return diff * diff;
            });
        zomp::single([&] { rnorm = std::sqrt(res); });
      },
      par);
  return rnorm;
}

}  // namespace

CgResult cg_serial(const SparseMatrix& a, int niter, double shift) {
  const std::int64_t n = a.n;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> z(static_cast<std::size_t>(n), 0.0);
  CgResult result;
  for (int it = 0; it < niter; ++it) {
    result.final_rnorm = conj_grad_serial(a, x, z);
    double xz = 0.0;
    double zz = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      xz += x[u] * z[u];
      zz += z[u] * z[u];
    }
    result.zeta = shift + 1.0 / xz;
    const double norm = 1.0 / std::sqrt(zz);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      x[u] = norm * z[u];
    }
    ++result.iterations;
  }
  return result;
}

CgResult cg_parallel(const SparseMatrix& a, int niter, double shift,
                     int num_threads) {
  const std::int64_t n = a.n;
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> z(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> q(static_cast<std::size_t>(n));
  CgResult result;
  for (int it = 0; it < niter; ++it) {
    result.final_rnorm = conj_grad_parallel(a, x, z, r, p, q, num_threads);
    double xz = 0.0;
    double zz = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      xz += x[u] * z[u];
      zz += z[u] * z[u];
    }
    result.zeta = shift + 1.0 / xz;
    const double norm = 1.0 / std::sqrt(zz);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      x[u] = norm * z[u];
    }
    ++result.iterations;
  }
  return result;
}

bool cg_verify(const CgResult& result, const CgClass& cls) {
  if (cls.verify_zeta == 0.0) return true;  // smoke class
  return std::fabs(result.zeta - cls.verify_zeta) <= 1e-10 * std::fabs(cls.verify_zeta) + 1e-11;
}

}  // namespace zomp::npb
