#include "npb/fortran_iface.h"

#include "npb/cg.h"
#include "npb/ep.h"

extern "C" {

void ep_kernel_(const std::int64_t* m, const std::int64_t* num_threads,
                double* sx, double* sy, std::int64_t* accepted) {
  const zomp::npb::EpResult r = zomp::npb::ep_parallel(
      static_cast<int>(*m), static_cast<int>(*num_threads));
  *sx = r.sx;
  *sy = r.sy;
  *accepted = r.pairs_in_disc;
}

void cg_solve_(const std::int64_t* n, const std::int64_t* rowstr,
               const std::int64_t* colidx, const double* values,
               const std::int64_t* niter, const double* shift,
               const std::int64_t* num_threads, double* zeta, double* rnorm) {
  // Reassemble the CSR views (Fortran passes bare element pointers; lengths
  // travel separately, as in the paper's interop examples).
  zomp::npb::SparseMatrix a;
  a.n = *n;
  a.rowstr.assign(rowstr, rowstr + *n + 1);
  const std::int64_t nnz = a.rowstr.back();
  a.colidx.assign(colidx, colidx + nnz);
  a.values.assign(values, values + nnz);
  const zomp::npb::CgResult r = zomp::npb::cg_parallel(
      a, static_cast<int>(*niter), *shift, static_cast<int>(*num_threads));
  *zeta = r.zeta;
  *rnorm = r.final_rnorm;
}

}  // extern "C"
