#include "interp/interp.h"

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

#include "lang/sema.h"
#include "runtime/abi.h"
#include "runtime/api.h"
#include "runtime/hl.h"
#include "runtime/pool.h"
#include "runtime/sync.h"
#include "runtime/team.h"
#include "runtime/worksharing.h"

namespace zomp::interp {

using lang::BinOp;
using lang::Builtin;
using lang::CaptureMode;
using lang::Expr;
using lang::FnDecl;
using lang::ReduceOp;
using lang::ScheduleSpec;
using lang::Stmt;
using lang::Symbol;
using lang::UnOp;

namespace {

[[noreturn]] void panic(const lang::SourceLoc& loc, const std::string& what) {
  std::fprintf(stderr, "mz panic (interp) at line %u: %s\n", loc.line,
               what.c_str());
  std::abort();
}

rt::Schedule to_rt_schedule(const ScheduleSpec::Kind kind, rt::i64 chunk) {
  rt::ScheduleKind rt_kind = rt::ScheduleKind::kStatic;
  switch (kind) {
    case ScheduleSpec::Kind::kUnspecified:
    case ScheduleSpec::Kind::kStatic: rt_kind = rt::ScheduleKind::kStatic; break;
    case ScheduleSpec::Kind::kDynamic: rt_kind = rt::ScheduleKind::kDynamic; break;
    case ScheduleSpec::Kind::kGuided: rt_kind = rt::ScheduleKind::kGuided; break;
    case ScheduleSpec::Kind::kAuto: rt_kind = rt::ScheduleKind::kAuto; break;
    case ScheduleSpec::Kind::kRuntime: rt_kind = rt::ScheduleKind::kRuntime; break;
  }
  return rt::Schedule{rt_kind, chunk};
}

Value identity_value(ReduceOp op, const lang::Type& type) {
  if (type.is_f64()) return Value(lang::reduce_identity_f64(op));
  if (type.is_bool()) return Value(op == ReduceOp::kLogAnd);
  return Value(lang::reduce_identity_i64(op));
}

Value combine_values(ReduceOp op, const Value& a, const Value& b,
                     const lang::SourceLoc& loc) {
  if (std::holds_alternative<double>(a.v)) {
    const double x = a.as_f64();
    const double y = b.as_f64();
    switch (op) {
      case ReduceOp::kAdd:
      case ReduceOp::kSub: return Value(x + y);  // '-' combines with +
      case ReduceOp::kMul: return Value(x * y);
      case ReduceOp::kMin: return Value(std::min(x, y));
      case ReduceOp::kMax: return Value(std::max(x, y));
      default: panic(loc, "bad float reduction");
    }
  }
  if (std::holds_alternative<bool>(a.v)) {
    const bool x = a.as_bool();
    const bool y = b.as_bool();
    return Value(op == ReduceOp::kLogAnd ? (x && y) : (x || y));
  }
  const std::int64_t x = a.as_i64();
  const std::int64_t y = b.as_i64();
  switch (op) {
    case ReduceOp::kAdd:
    case ReduceOp::kSub: return Value(x + y);
    case ReduceOp::kMul: return Value(x * y);
    case ReduceOp::kMin: return Value(std::min(x, y));
    case ReduceOp::kMax: return Value(std::max(x, y));
    case ReduceOp::kBitAnd: return Value(x & y);
    case ReduceOp::kBitOr: return Value(x | y);
    case ReduceOp::kBitXor: return Value(x ^ y);
    case ReduceOp::kLogAnd: return Value(static_cast<std::int64_t>(x && y));
    case ReduceOp::kLogOr: return Value(static_cast<std::int64_t>(x || y));
  }
  panic(loc, "bad reduction operator");
}

/// Trivially-copyable payload for team reductions: the runtime tree memcpy's
/// its slots, so Value (a variant with non-trivial alternatives) cannot ride
/// in them directly. Sema restricts reductions to i64/f64/bool, which all
/// fit here; every member carries the same tag and op for one construct.
struct RedPod {
  std::uint8_t tag = 0;  // 0 = i64, 1 = f64, 2 = bool
  lang::ReduceOp op = lang::ReduceOp::kAdd;
  std::int64_t i = 0;
  double f = 0.0;
  bool b = false;
};

RedPod to_pod(const Value& v, ReduceOp op, const lang::SourceLoc& loc) {
  RedPod pod;
  pod.op = op;
  if (std::holds_alternative<std::int64_t>(v.v)) {
    pod.tag = 0;
    pod.i = v.as_i64();
  } else if (std::holds_alternative<double>(v.v)) {
    pod.tag = 1;
    pod.f = v.as_f64();
  } else if (std::holds_alternative<bool>(v.v)) {
    pod.tag = 2;
    pod.b = v.as_bool();
  } else {
    panic(loc, "reduction over non-scalar value");
  }
  return pod;
}

Value from_pod(const RedPod& pod) {
  switch (pod.tag) {
    case 1: return Value(pod.f);
    case 2: return Value(pod.b);
    default: return Value(pod.i);
  }
}

void pod_combine(void* /*ctx*/, void* lhs, const void* rhs) {
  auto* a = static_cast<RedPod*>(lhs);
  const auto* b = static_cast<const RedPod*>(rhs);
  static const lang::SourceLoc kNoLoc{};
  const Value combined = combine_values(b->op, from_pod(*a), from_pod(*b), kNoLoc);
  switch (a->tag) {
    case 1: a->f = combined.as_f64(); break;
    case 2: a->b = combined.as_bool(); break;
    default: a->i = combined.as_i64(); break;
  }
}

/// Multi-variable packed payload (one rendezvous for a whole construct's
/// reduction run, Stmt::red_pack; see runtime/reduce.h). Entries are 16
/// bytes so up to 3 variables still ride the inline tree slots; larger
/// packs transparently take the tree's per-team fallback lock — either way
/// the construct costs ONE rendezvous, not k. The deposited size is
/// truncated to the live entries so the tree sees the smallest payload.
struct PackEntry {
  std::uint8_t tag = 0;  // 0 = i64, 1 = f64, 2 = bool
  std::uint8_t op = 0;   // lang::ReduceOp
  union {
    std::int64_t i;
    double f;
    bool b;
  } u{};
};

constexpr int kMaxPack = 16;  // mirrored by transform.cpp pack_len

struct PackPod {
  std::int32_t n = 0;
  PackEntry e[kMaxPack];
};

constexpr std::size_t pack_size(int n) {
  return offsetof(PackPod, e) +
         static_cast<std::size_t>(n) * sizeof(PackEntry);
}

PackEntry to_pack_entry(const Value& v, ReduceOp op,
                        const lang::SourceLoc& loc) {
  PackEntry e;
  e.op = static_cast<std::uint8_t>(op);
  if (std::holds_alternative<std::int64_t>(v.v)) {
    e.tag = 0;
    e.u.i = v.as_i64();
  } else if (std::holds_alternative<double>(v.v)) {
    e.tag = 1;
    e.u.f = v.as_f64();
  } else if (std::holds_alternative<bool>(v.v)) {
    e.tag = 2;
    e.u.b = v.as_bool();
  } else {
    panic(loc, "reduction over non-scalar value");
  }
  return e;
}

Value from_pack_entry(const PackEntry& e) {
  switch (e.tag) {
    case 1: return Value(e.u.f);
    case 2: return Value(e.u.b);
    default: return Value(e.u.i);
  }
}

void pack_combine(void* /*ctx*/, void* lhs, const void* rhs) {
  auto* a = static_cast<PackPod*>(lhs);
  const auto* b = static_cast<const PackPod*>(rhs);
  static const lang::SourceLoc kNoLoc{};
  for (std::int32_t i = 0; i < a->n; ++i) {
    PackEntry& x = a->e[i];
    const PackEntry& y = b->e[i];
    const Value combined =
        combine_values(static_cast<ReduceOp>(y.op), from_pack_entry(x),
                       from_pack_entry(y), kNoLoc);
    switch (x.tag) {
      case 1: x.u.f = combined.as_f64(); break;
      case 2: x.u.b = combined.as_bool(); break;
      default: x.u.i = combined.as_i64(); break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Exec: one function activation (one thread, one frame)
// ---------------------------------------------------------------------------

class Exec {
 public:
  /// kCancelLoop is the `cancel for` escape: it unwinds like kReturn until
  /// the innermost enclosing kOmpWsLoop catches it and drains to the loop's
  /// closing barrier (the interpreter twin of codegen's goto-label escape).
  enum class Flow { kNormal, kBreak, kContinue, kReturn, kCancelLoop };

  Exec(Interp& interp, const FnDecl& fn) : interp_(interp), fn_(fn) {}

  /// Binds parameters: `cells[i]` is aliased for indirect params and copied
  /// for value params (per-thread copies are made by the caller's closure).
  void bind_params(const std::vector<Cell>& cells) {
    for (std::size_t i = 0; i < fn_.params.size(); ++i) {
      const lang::Param& p = fn_.params[i];
      if (p.indirect) {
        frame_[p.symbol] = cells[i];
      } else {
        frame_[p.symbol] = make_cell(*cells[i]);
      }
    }
  }

  Value run() {
    if (fn_.body) exec_stmt(*fn_.body);
    return std::move(return_value_);
  }

  /// Evaluates one expression in this activation's scope (used for global
  /// initialisers, which see earlier globals but no locals).
  Value eval_expr(const Expr& e) { return eval(e); }

  /// Zero value of `type` (public for global initialisation).
  Value zero_of(const lang::Type& type) { return default_value(type); }

 private:
  // -- Frame -------------------------------------------------------------------

  Cell& cell_of(const Symbol* sym, const lang::SourceLoc& loc) {
    if (sym == nullptr) panic(loc, "unresolved symbol");
    if (const auto it = frame_.find(sym); it != frame_.end()) return it->second;
    if (const auto it = interp_.globals_.find(sym); it != interp_.globals_.end()) {
      return it->second;
    }
    panic(loc, "variable '" + sym->name + "' has no storage (interpreter bug)");
  }

  void bind(const Symbol* sym, Value value) {
    frame_[sym] = make_cell(std::move(value));
  }

  // -- Statements --------------------------------------------------------------

  Flow exec_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        for (std::size_t i = 0; i < stmt.stmts.size(); ++i) {
          const Stmt& s = *stmt.stmts[i];
          // A run of adjacent reduction combines (head carries the run
          // length) becomes ONE packed rendezvous instead of one per
          // variable; see exec_reduce_pack.
          if (s.kind == Stmt::Kind::kOmpReductionCombine && s.red_pack > 1 &&
              i + static_cast<std::size_t>(s.red_pack) <= stmt.stmts.size()) {
            exec_reduce_pack(stmt.stmts, i, s.red_pack);
            i += static_cast<std::size_t>(s.red_pack) - 1;
            continue;
          }
          const Flow f = exec_stmt(s);
          if (f != Flow::kNormal) return f;
        }
        return Flow::kNormal;
      case Stmt::Kind::kVarDecl:
        bind(stmt.symbol, stmt.init && !stmt.init_is_type_hint
                              ? eval(*stmt.init)
                              : default_value(stmt.symbol->type));
        return Flow::kNormal;
      case Stmt::Kind::kAssign: {
        Value rhs = eval(*stmt.rhs);
        if (stmt.assign_op != Stmt::AssignOp::kPlain) {
          const Value lhs = load_lvalue(*stmt.lhs);
          rhs = arith(stmt.assign_op, lhs, rhs, stmt.loc);
        }
        store_lvalue(*stmt.lhs, std::move(rhs));
        return Flow::kNormal;
      }
      case Stmt::Kind::kExprStmt:
        eval(*stmt.expr);
        return Flow::kNormal;
      case Stmt::Kind::kIf:
        if (eval(*stmt.expr).as_bool()) return exec_stmt(*stmt.then_block);
        if (stmt.else_block) return exec_stmt(*stmt.else_block);
        return Flow::kNormal;
      case Stmt::Kind::kWhile:
        for (;;) {
          if (!eval(*stmt.expr).as_bool()) return Flow::kNormal;
          const Flow f = exec_stmt(*stmt.body);
          if (f == Flow::kReturn || f == Flow::kCancelLoop) return f;
          if (f == Flow::kBreak) return Flow::kNormal;
          if (stmt.step) exec_stmt(*stmt.step);  // also runs after continue
        }
      case Stmt::Kind::kForRange: {
        const std::int64_t lo = eval(*stmt.expr).as_i64();
        const std::int64_t hi = eval(*stmt.rhs).as_i64();
        for (std::int64_t i = lo; i < hi; ++i) {
          bind(stmt.symbol, Value(i));
          const Flow f = exec_stmt(*stmt.body);
          if (f == Flow::kReturn || f == Flow::kCancelLoop) return f;
          if (f == Flow::kBreak) break;
        }
        return Flow::kNormal;
      }
      case Stmt::Kind::kReturn:
        if (stmt.expr) return_value_ = eval(*stmt.expr);
        return Flow::kReturn;
      case Stmt::Kind::kBreak: return Flow::kBreak;
      case Stmt::Kind::kContinue: return Flow::kContinue;

      case Stmt::Kind::kOmpFork: return exec_fork(stmt);
      case Stmt::Kind::kOmpWsLoop: return exec_ws_loop(stmt);
      case Stmt::Kind::kOmpBarrier: {
        rt::ThreadState& ts = rt::current_thread();
        // An abandoned episode (cancel parallel) unwinds to the region end —
        // the member heads straight for the non-cancellable join barrier.
        if (ts.team->barrier_wait(ts.tid)) return Flow::kReturn;
        return Flow::kNormal;
      }
      case Stmt::Kind::kOmpCancel:
      case Stmt::Kind::kOmpCancellationPoint:
        return exec_cancel(stmt);
      case Stmt::Kind::kOmpCritical: {
        rt::critical_enter(stmt.name);
        const Flow f = exec_stmt(*stmt.body);
        rt::critical_exit(stmt.name);
        return f;
      }
      case Stmt::Kind::kOmpSingle: {
        rt::ThreadState& ts = rt::current_thread();
        Flow f = Flow::kNormal;
        if (ts.team->single_begin(ts)) f = exec_stmt(*stmt.body);
        if (!stmt.nowait && ts.team->barrier_wait(ts.tid)) {
          return Flow::kReturn;  // abandoned: region cancelled
        }
        return f;
      }
      case Stmt::Kind::kOmpMaster:
        if (rt::current_thread().tid == 0) return exec_stmt(*stmt.body);
        return Flow::kNormal;
      case Stmt::Kind::kOmpAtomic: {
        // Serialise the read-modify-write via the runtime's atomic critical;
        // semantically equivalent to hardware atomics for interpreted code.
        rt::critical_enter("__mz_atomic");
        const Flow f = exec_stmt(*stmt.body);
        rt::critical_exit("__mz_atomic");
        return f;
      }
      case Stmt::Kind::kOmpOrdered: {
        rt::ThreadState& ts = rt::current_thread();
        const std::int64_t index =
            cell_of(ordered_iv_, stmt.loc)->as_i64() - ordered_lo_;
        ts.team->ordered_enter(ts, index);
        const Flow f = exec_stmt(*stmt.body);
        ts.team->ordered_exit(ts, index);
        return f;
      }
      case Stmt::Kind::kOmpReductionInit:
        bind(stmt.symbol, identity_value(stmt.reduce_op, stmt.symbol->type));
        return Flow::kNormal;
      case Stmt::Kind::kOmpReductionCombine: {
        // Team tree rendezvous (runtime/reduce.h): the winner alone folds the
        // combined partials into the shared target, and the construct's
        // ensuing barrier (join or explicit) publishes the write — no lock.
        Cell target = cell_of(stmt.target_symbol, stmt.loc);
        const Cell local = cell_of(stmt.symbol, stmt.loc);
        rt::ThreadState& ts = rt::current_thread();
        RedPod pod = to_pod(*local, stmt.reduce_op, stmt.loc);
        if (ts.team->reduce_combine(ts, &pod, sizeof(pod), &pod_combine,
                                    nullptr, /*broadcast=*/false)) {
          *target =
              combine_values(stmt.reduce_op, *target, from_pod(pod), stmt.loc);
        }
        return Flow::kNormal;
      }
      case Stmt::Kind::kOmpLastprivateWrite: {
        Cell target = cell_of(stmt.target_symbol, stmt.loc);
        *target = *cell_of(stmt.symbol, stmt.loc);
        return Flow::kNormal;
      }
      case Stmt::Kind::kOmpTask: return exec_task(stmt);
      case Stmt::Kind::kOmpTaskwait: {
        rt::ThreadState& ts = rt::current_thread();
        ts.team->taskwait(ts);
        return Flow::kNormal;
      }
      case Stmt::Kind::kOmpTaskgroup: {
        rt::ThreadState& ts = rt::current_thread();
        rt::TaskGroup group;
        ts.team->taskgroup_begin(ts, group);
        const Flow f = exec_stmt(*stmt.body);
        // Close the group even on an early return: its tasks (and their
        // descendants) are awaited and the group stack stays balanced.
        ts.team->taskgroup_end(ts, group);
        return f;
      }
      case Stmt::Kind::kOmpTaskloop: return exec_taskloop(stmt);
    }
    return Flow::kNormal;
  }

  /// One rendezvous for a construct's whole run of `k` reduction combines:
  /// every member deposits a PackPod of its partials, the tree combines
  /// field-by-field (each with its own operator), and the winner alone folds
  /// every field into its shared target.
  void exec_reduce_pack(const std::vector<lang::StmtPtr>& stmts,
                        std::size_t begin, int k) {
    rt::ThreadState& ts = rt::current_thread();
    PackPod pod;
    pod.n = k;
    for (int i = 0; i < k; ++i) {
      const Stmt& s = *stmts[begin + static_cast<std::size_t>(i)];
      pod.e[i] = to_pack_entry(*cell_of(s.symbol, s.loc), s.reduce_op, s.loc);
    }
    if (ts.team->reduce_combine(ts, &pod, pack_size(k), &pack_combine,
                                nullptr, /*broadcast=*/false)) {
      for (int i = 0; i < k; ++i) {
        const Stmt& s = *stmts[begin + static_cast<std::size_t>(i)];
        Cell target = cell_of(s.target_symbol, s.loc);
        *target = combine_values(s.reduce_op, *target, from_pack_entry(pod.e[i]),
                                 s.loc);
      }
    }
  }

  Flow exec_fork(const Stmt& stmt) {
    const FnDecl& callee = *stmt.callee_decl;
    std::vector<Cell> args;
    args.reserve(stmt.captures.size());
    for (const auto& cap : stmt.captures) {
      // Shared and reduction captures alias the master's cell; value and
      // slice-header captures are copied per member inside bind_params.
      args.push_back(cell_of(cap.symbol, stmt.loc));
    }
    rt::ForkOptions opts;
    if (stmt.num_threads) {
      opts.num_threads = static_cast<rt::i32>(eval(*stmt.num_threads).as_i64());
    }
    if (stmt.if_clause) opts.if_clause = eval(*stmt.if_clause).as_bool();
    if (stmt.proc_bind >= 0) {
      opts.proc_bind = static_cast<rt::BindKind>(stmt.proc_bind);
    }
    // fork_body: the closure rides in the microtask argument array directly,
    // so interpreted region entry pays no std::function allocation and takes
    // the same hot-team fast path as generated code.
    rt::fork_body(
        [&] {
          Exec member(interp_, callee);
          member.bind_params(args);
          member.run();
        },
        opts);
    return Flow::kNormal;
  }

  /// Pre-resolved collapse dimension: the synthesized lo/stride/extent
  /// locals are loaded once per construct, then each logical iteration
  /// recomputes iv_k = lo_k + (flat / stride_k) % extent_k.
  struct CollapseCtx {
    const Symbol* iv = nullptr;
    std::int64_t lo = 0;
    std::int64_t stride = 1;
    std::int64_t extent = 0;
    bool outermost = false;
  };

  Flow exec_ws_loop(const Stmt& stmt) {
    const Stmt& loop = *stmt.body;
    rt::ThreadState& ts = rt::current_thread();
    rt::Team& team = *ts.team;
    const std::int64_t lo = eval(*loop.expr).as_i64();
    const std::int64_t hi = eval(*loop.rhs).as_i64();
    const std::int64_t chunk =
        stmt.schedule.chunk ? eval(*stmt.schedule.chunk).as_i64() : 0;

    std::vector<CollapseCtx> dims;
    dims.reserve(stmt.collapse.size());
    for (std::size_t k = 0; k < stmt.collapse.size(); ++k) {
      const lang::CollapseDim& dim = stmt.collapse[k];
      CollapseCtx ctx;
      ctx.iv = dim.iv_symbol;
      ctx.lo = cell_of(dim.lo_symbol, stmt.loc)->as_i64();
      ctx.stride = cell_of(dim.stride_symbol, stmt.loc)->as_i64();
      ctx.extent = cell_of(dim.extent_symbol, stmt.loc)->as_i64();
      ctx.outermost = k == 0;
      dims.push_back(ctx);
    }
    // Odometer de-linearization: the div/mod chain runs once per chunk
    // (seed), then each logical iteration advances the ivs by incrementing
    // the innermost and carrying on overflow — mirroring the generated-code
    // lowering (codegen.cpp odometer_text). The divisors are only touched
    // while iterations run; a zero extent anywhere empties the linearized
    // space, so no division by zero.
    std::vector<std::int64_t> iv_vals(dims.size());
    auto seed_dims = [&](std::int64_t flat) {
      for (std::size_t k = 0; k < dims.size(); ++k) {
        std::int64_t v = flat / dims[k].stride;
        if (!dims[k].outermost) v %= dims[k].extent;
        iv_vals[k] = dims[k].lo + v;
      }
    };
    auto bind_dims = [&] {
      for (std::size_t k = 0; k < dims.size(); ++k) {
        bind(dims[k].iv, Value(iv_vals[k]));
      }
    };
    auto advance_dims = [&] {
      if (dims.empty()) return;
      for (std::size_t k = dims.size(); k-- > 1;) {
        if (++iv_vals[k] != dims[k].lo + dims[k].extent) return;
        iv_vals[k] = dims[k].lo;  // wrap, carry outward
      }
      ++iv_vals[0];  // the outermost dimension never wraps
    };

    // Ordered context for OmpOrdered nodes in the body.
    const Symbol* saved_iv = ordered_iv_;
    const std::int64_t saved_lo = ordered_lo_;
    ordered_iv_ = loop.symbol;
    ordered_lo_ = lo;

    const bool needs_dispatch =
        stmt.ordered || stmt.schedule.kind == ScheduleSpec::Kind::kDynamic ||
        stmt.schedule.kind == ScheduleSpec::Kind::kGuided ||
        stmt.schedule.kind == ScheduleSpec::Kind::kRuntime;

    bool had_last = false;
    // Cancellation escape shared by the three scheduling paths. `cancel for`
    // surfaces as Flow::kCancelLoop: stop issuing chunks and drain to the
    // closing barrier. A `cancel parallel` observed mid-loop surfaces as
    // Flow::kReturn with the team's parallel bit set: leave the whole region.
    Flow out = Flow::kNormal;
    auto body_escapes = [&](Flow f) {
      if (f == Flow::kCancelLoop ||
          (f == Flow::kReturn &&
           team.cancellation_requested(ts, rt::Team::kCancelParallel))) {
        out = f;
        return true;
      }
      return false;
    };
    if (!needs_dispatch && stmt.static_spec && chunk == 0) {
      // Static-schedule specialization (optimizer static-spec pass): one
      // contiguous block per thread, no stride stepping — the interpreter
      // mirror of codegen's zomp_static_range lowering.
      const rt::StaticRange r =
          rt::static_block_range(lo, hi, ts.tid, team.size());
      if (!dims.empty() && r.lo < r.hi) seed_dims(r.lo);
      for (std::int64_t i = r.lo; i < r.hi; ++i) {
        bind(loop.symbol, Value(i));
        bind_dims();
        if (body_escapes(exec_stmt(*loop.body))) break;
        advance_dims();
      }
      had_last = r.last;
    } else if (!needs_dispatch) {
      const rt::StaticRange r =
          rt::static_distribute(lo, hi, 1, chunk, ts.tid, team.size());
      const std::int64_t span = r.hi - r.lo;
      for (std::int64_t block = r.lo; block < hi && out == Flow::kNormal;
           block += r.stride) {
        const std::int64_t end = std::min(block + span, hi);
        if (!dims.empty()) seed_dims(block);
        for (std::int64_t i = block; i < end; ++i) {
          bind(loop.symbol, Value(i));
          bind_dims();
          if (body_escapes(exec_stmt(*loop.body))) break;
          advance_dims();
        }
      }
      had_last = r.last;
    } else {
      team.dispatch_init(ts, to_rt_schedule(stmt.schedule.kind, chunk), lo, hi,
                         1);
      std::int64_t clo = 0, chi = 0;
      bool last = false;
      while (out == Flow::kNormal && team.dispatch_next(ts, &clo, &chi, &last)) {
        if (!dims.empty()) seed_dims(clo);
        for (std::int64_t i = clo; i < chi; ++i) {
          bind(loop.symbol, Value(i));
          bind_dims();
          if (body_escapes(exec_stmt(*loop.body))) break;
          advance_dims();
        }
        if (last) had_last = true;
      }
      // An escaped chunk leaves this thread mid-dispatch; detach its slot so
      // dispatch_fini accounting stays balanced (no-op if already detached).
      if (out != Flow::kNormal) team.dispatch_break(ts);
    }

    ordered_iv_ = saved_iv;
    ordered_lo_ = saved_lo;

    if (out == Flow::kReturn) return Flow::kReturn;  // region cancelled
    if (had_last && out == Flow::kNormal) {
      for (const auto& [local, target] : stmt.lastprivate_syms) {
        *cell_of(target, stmt.loc) = *cell_of(local, stmt.loc);
      }
    }
    if (!stmt.nowait && team.barrier_wait(ts.tid)) return Flow::kReturn;
    return Flow::kNormal;
  }

  /// `omp cancel` / `omp cancellation point`. Construct codes are the
  /// ZOMP_CANCEL_* values carried through Stmt::cancel_construct (1 parallel,
  /// 2 for, 4 taskgroup). Activation and observation both translate into a
  /// Flow escape: kCancelLoop unwinds to the enclosing ws-loop, kReturn
  /// unwinds to the region (or task body) end. Everything is a no-op while
  /// the OMP_CANCELLATION ICV is off — the runtime predicates encode that.
  Flow exec_cancel(const Stmt& stmt) {
    rt::ThreadState& ts = rt::current_thread();
    rt::Team& team = *ts.team;
    const bool is_point = stmt.kind == Stmt::Kind::kOmpCancellationPoint;
    switch (stmt.cancel_construct) {
      case 1:  // parallel
        if (is_point ? team.cancellation_requested(ts, rt::Team::kCancelParallel)
                     : team.cancel_activate(ts, rt::Team::kCancelParallel)) {
          return Flow::kReturn;
        }
        return Flow::kNormal;
      case 2: {  // for: a point also observes a region-wide cancel
        const bool hit =
            is_point ? team.cancellation_requested(
                           ts, rt::Team::kCancelLoop | rt::Team::kCancelParallel)
                     : team.cancel_activate(ts, rt::Team::kCancelLoop);
        return hit ? Flow::kCancelLoop : Flow::kNormal;
      }
      case 4:  // taskgroup
        if (is_point ? team.taskgroup_cancelled(ts) : team.cancel_taskgroup(ts)) {
          return Flow::kReturn;
        }
        return Flow::kNormal;
      default:
        return Flow::kNormal;
    }
  }

  /// Storage address of a depend item (the OpenMP list-item identity): the
  /// heap Cell for a variable, the Value slot for a slice element. Shared
  /// captures alias one Cell across the team, so sibling tasks naming the
  /// same variable agree on the address — mirroring &var in generated code.
  void* lvalue_address(const Expr& e) {
    if (e.kind == Expr::Kind::kVarRef) {
      return cell_of(e.symbol, e.loc).get();
    }
    if (e.kind == Expr::Kind::kIndex) {
      const SliceVal slice = eval(*e.args[0]).as_slice();
      const std::int64_t i = eval(*e.args[1]).as_i64();
      if (!slice.data || i < 0 || i >= slice.len()) {
        panic(e.loc, "depend item index out of bounds");
      }
      return &(*slice.data)[static_cast<std::size_t>(i)];
    }
    panic(e.loc, "depend item is not addressable");
  }

  /// Snapshot of a task-family construct's captures: firstprivate captures
  /// copy their value *now* (the task may outlive this frame); shared
  /// captures alias the enclosing cell — the region's join barrier
  /// guarantees the cell outlives the task.
  std::shared_ptr<std::vector<Cell>> snapshot_captures(const Stmt& stmt) {
    auto captured = std::make_shared<std::vector<Cell>>();
    captured->reserve(stmt.captures.size());
    for (const auto& cap : stmt.captures) {
      Cell cell = cell_of(cap.symbol, stmt.loc);
      if (cap.mode == lang::CaptureMode::kValue) {
        captured->push_back(make_cell(*cell));
      } else {
        captured->push_back(std::move(cell));
      }
    }
    return captured;
  }

  Flow exec_task(const Stmt& stmt) {
    const FnDecl& callee = *stmt.callee_decl;
    auto captured = snapshot_captures(stmt);
    rt::ThreadState& ts = rt::current_thread();
    Interp& interp = interp_;
    auto body_fn = [&interp, &callee, captured] {
      Exec body(interp, callee);
      body.bind_params(*captured);
      body.run();
    };
    const bool rich = !stmt.depends.empty() || stmt.final_clause != nullptr ||
                      stmt.priority != nullptr || stmt.untied ||
                      stmt.if_clause != nullptr;
    if (!rich) {
      // Zero-clause fast path, unchanged.
      ts.team->task_create(ts, std::move(body_fn));
      return Flow::kNormal;
    }
    // Clause expressions evaluate at creation time, in the enclosing scope,
    // in the SAME order as the generated code's emission (depend addresses,
    // then if, final, priority) so side-effecting clause expressions cannot
    // diverge between backends.
    std::vector<rt::DepSpec> deps;
    deps.reserve(stmt.depends.size());
    for (const auto& dep : stmt.depends) {
      rt::DepSpec spec;
      spec.addr = lvalue_address(*dep.item);
      spec.kind = static_cast<rt::DepKind>(dep.kind);
      deps.push_back(spec);
    }
    rt::TaskOpts opts;
    opts.deps = deps.data();
    opts.ndeps = static_cast<rt::i32>(deps.size());
    opts.deferred =
        stmt.if_clause == nullptr || eval(*stmt.if_clause).as_bool();
    opts.final = stmt.final_clause != nullptr && eval(*stmt.final_clause).as_bool();
    opts.untied = stmt.untied;
    opts.priority = stmt.priority
                        ? static_cast<rt::i32>(eval(*stmt.priority).as_i64())
                        : 0;
    ts.team->task_create_ex(ts, std::move(body_fn), opts);
    return Flow::kNormal;
  }

  Flow exec_taskloop(const Stmt& stmt) {
    const FnDecl& callee = *stmt.callee_decl;
    auto captured = snapshot_captures(stmt);
    const std::int64_t lo = eval(*stmt.expr).as_i64();
    const std::int64_t hi = eval(*stmt.rhs).as_i64();
    const std::int64_t grainsize =
        stmt.grainsize ? eval(*stmt.grainsize).as_i64() : 0;
    const std::int64_t num_tasks =
        stmt.num_tasks ? eval(*stmt.num_tasks).as_i64() : 0;
    rt::ThreadState& ts = rt::current_thread();
    Interp& interp = interp_;
    // Blocks until every chunk task completed (implicit taskgroup inside
    // Team::taskloop). The outlined function's last two parameters take the
    // chunk bounds; bind_params value-copies them per activation.
    ts.team->taskloop(
        ts, lo, hi, grainsize, num_tasks,
        [&interp, &callee, captured](rt::i64 chunk_lo, rt::i64 chunk_hi) {
          std::vector<Cell> cells = *captured;
          cells.push_back(make_cell(Value(chunk_lo)));
          cells.push_back(make_cell(Value(chunk_hi)));
          Exec body(interp, callee);
          body.bind_params(cells);
          body.run();
        });
    return Flow::kNormal;
  }

  // -- Expressions ----------------------------------------------------------------

  Value default_value(const lang::Type& type) {
    if (type.is_f64()) return Value(0.0);
    if (type.is_bool()) return Value(false);
    if (type.is_slice()) return Value(SliceVal{});
    if (type.is_pointer()) return Value(PtrVal{});
    return Value(std::int64_t{0});
  }

  Value load_lvalue(const Expr& e) { return eval(e); }

  void store_lvalue(const Expr& e, Value value) {
    switch (e.kind) {
      case Expr::Kind::kVarRef:
        *cell_of(e.symbol, e.loc) = std::move(value);
        return;
      case Expr::Kind::kIndex: {
        const SliceVal slice = eval(*e.args[0]).as_slice();
        const std::int64_t i = eval(*e.args[1]).as_i64();
        if (!slice.data || i < 0 || i >= slice.len()) {
          panic(e.loc, "index out of bounds (store)");
        }
        (*slice.data)[static_cast<std::size_t>(i)] = std::move(value);
        return;
      }
      case Expr::Kind::kDeref: {
        const PtrVal p = eval(*e.args[0]).as_ptr();
        if (p.is_element) {
          if (!p.slice.data || p.index < 0 || p.index >= p.slice.len()) {
            panic(e.loc, "dangling element pointer (store)");
          }
          (*p.slice.data)[static_cast<std::size_t>(p.index)] = std::move(value);
        } else if (p.cell) {
          *p.cell = std::move(value);
        } else {
          panic(e.loc, "store through null pointer");
        }
        return;
      }
      default:
        panic(e.loc, "not an assignable expression");
    }
  }

  Value arith(Stmt::AssignOp op, const Value& a, const Value& b,
              const lang::SourceLoc& loc) {
    BinOp bop;
    switch (op) {
      case Stmt::AssignOp::kAdd: bop = BinOp::kAdd; break;
      case Stmt::AssignOp::kSub: bop = BinOp::kSub; break;
      case Stmt::AssignOp::kMul: bop = BinOp::kMul; break;
      case Stmt::AssignOp::kDiv: bop = BinOp::kDiv; break;
      default: panic(loc, "bad compound assignment");
    }
    return binary(bop, a, b, loc);
  }

  Value binary(BinOp op, const Value& a, const Value& b,
               const lang::SourceLoc& loc) {
    if (std::holds_alternative<double>(a.v)) {
      const double x = a.as_f64();
      const double y = b.as_f64();
      switch (op) {
        case BinOp::kAdd: return Value(x + y);
        case BinOp::kSub: return Value(x - y);
        case BinOp::kMul: return Value(x * y);
        case BinOp::kDiv: return Value(x / y);
        case BinOp::kEq: return Value(x == y);
        case BinOp::kNe: return Value(x != y);
        case BinOp::kLt: return Value(x < y);
        case BinOp::kLe: return Value(x <= y);
        case BinOp::kGt: return Value(x > y);
        case BinOp::kGe: return Value(x >= y);
        default: panic(loc, "bad float operator");
      }
    }
    if (std::holds_alternative<bool>(a.v)) {
      const bool x = a.as_bool();
      const bool y = b.as_bool();
      switch (op) {
        case BinOp::kEq: return Value(x == y);
        case BinOp::kNe: return Value(x != y);
        case BinOp::kAnd: return Value(x && y);
        case BinOp::kOr: return Value(x || y);
        default: panic(loc, "bad bool operator");
      }
    }
    const std::int64_t x = a.as_i64();
    const std::int64_t y = b.as_i64();
    switch (op) {
      case BinOp::kAdd: return Value(x + y);
      case BinOp::kSub: return Value(x - y);
      case BinOp::kMul: return Value(x * y);
      case BinOp::kDiv:
        if (y == 0) panic(loc, "integer division by zero");
        return Value(x / y);
      case BinOp::kRem:
        if (y == 0) panic(loc, "integer remainder by zero");
        return Value(x % y);
      case BinOp::kEq: return Value(x == y);
      case BinOp::kNe: return Value(x != y);
      case BinOp::kLt: return Value(x < y);
      case BinOp::kLe: return Value(x <= y);
      case BinOp::kGt: return Value(x > y);
      case BinOp::kGe: return Value(x >= y);
      case BinOp::kBitAnd: return Value(x & y);
      case BinOp::kBitOr: return Value(x | y);
      case BinOp::kBitXor: return Value(x ^ y);
      case BinOp::kShl: return Value(static_cast<std::int64_t>(
          static_cast<std::uint64_t>(x) << (y & 63)));
      case BinOp::kShr: return Value(x >> (y & 63));
      default: panic(loc, "bad integer operator");
    }
  }

  Value eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit: return Value(e.int_value);
      case Expr::Kind::kFloatLit: return Value(e.float_value);
      case Expr::Kind::kBoolLit: return Value(e.bool_value);
      case Expr::Kind::kStringLit: return Value(e.name);
      case Expr::Kind::kUndefined: return Value(std::int64_t{0});
      case Expr::Kind::kVarRef: return *cell_of(e.symbol, e.loc);
      case Expr::Kind::kBinary: {
        // Short-circuit for and/or.
        if (e.bin_op == BinOp::kAnd) {
          return Value(eval(*e.args[0]).as_bool() &&
                       eval(*e.args[1]).as_bool());
        }
        if (e.bin_op == BinOp::kOr) {
          return Value(eval(*e.args[0]).as_bool() ||
                       eval(*e.args[1]).as_bool());
        }
        const Value a = eval(*e.args[0]);
        const Value b = eval(*e.args[1]);
        return binary(e.bin_op, a, b, e.loc);
      }
      case Expr::Kind::kUnary: {
        const Value v = eval(*e.args[0]);
        if (e.un_op == UnOp::kNot) return Value(!v.as_bool());
        if (std::holds_alternative<double>(v.v)) return Value(-v.as_f64());
        return Value(-v.as_i64());
      }
      case Expr::Kind::kCall: return eval_call(e);
      case Expr::Kind::kBuiltinCall: return eval_builtin(e);
      case Expr::Kind::kIndex: {
        const SliceVal slice = eval(*e.args[0]).as_slice();
        const std::int64_t i = eval(*e.args[1]).as_i64();
        if (!slice.data || i < 0 || i >= slice.len()) {
          panic(e.loc, "index out of bounds: index " + std::to_string(i) +
                           ", len " + std::to_string(slice.len()));
        }
        return (*slice.data)[static_cast<std::size_t>(i)];
      }
      case Expr::Kind::kLen: return Value(eval(*e.args[0]).as_slice().len());
      case Expr::Kind::kAddrOf: {
        const Expr& target = *e.args[0];
        if (target.kind == Expr::Kind::kVarRef) {
          PtrVal p;
          p.cell = cell_of(target.symbol, e.loc);
          return Value(p);
        }
        // &slice[i]
        PtrVal p;
        p.slice = eval(*target.args[0]).as_slice();
        p.index = eval(*target.args[1]).as_i64();
        p.is_element = true;
        return Value(p);
      }
      case Expr::Kind::kDeref: {
        const PtrVal p = eval(*e.args[0]).as_ptr();
        if (p.is_element) {
          if (!p.slice.data || p.index < 0 || p.index >= p.slice.len()) {
            panic(e.loc, "dangling element pointer");
          }
          return (*p.slice.data)[static_cast<std::size_t>(p.index)];
        }
        if (!p.cell) panic(e.loc, "load through null pointer");
        return *p.cell;
      }
    }
    panic(e.loc, "bad expression");
  }

  Value eval_call(const Expr& e) {
    const FnDecl* callee = e.callee;
    if (callee == nullptr) panic(e.loc, "unresolved call");
    if (callee->is_extern) {
      const auto it = interp_.host_fns_.find(callee->name);
      if (it == interp_.host_fns_.end()) {
        panic(e.loc, "extern function '" + callee->name +
                         "' has no host binding registered");
      }
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(eval(*a));
      return it->second(args);
    }
    std::vector<Cell> cells;
    cells.reserve(e.args.size());
    for (const auto& a : e.args) cells.push_back(make_cell(eval(*a)));
    Exec callee_exec(interp_, *callee);
    callee_exec.bind_params(cells);
    return callee_exec.run();
  }

  Value eval_builtin(const Expr& e) {
    auto f = [&](std::size_t i) { return eval(*e.args[i]); };
    switch (e.builtin) {
      case Builtin::kSqrt: return Value(std::sqrt(f(0).as_f64()));
      case Builtin::kExp: return Value(std::exp(f(0).as_f64()));
      case Builtin::kLog: return Value(std::log(f(0).as_f64()));
      case Builtin::kPow:
        return Value(std::pow(f(0).as_f64(), f(1).as_f64()));
      case Builtin::kAbs: {
        const Value v = f(0);
        if (std::holds_alternative<double>(v.v)) {
          return Value(std::fabs(v.as_f64()));
        }
        const std::int64_t x = v.as_i64();
        return Value(x < 0 ? -x : x);
      }
      case Builtin::kMin:
      case Builtin::kMax: {
        const Value a = f(0);
        const Value b = f(1);
        const bool take_min = e.builtin == Builtin::kMin;
        if (std::holds_alternative<double>(a.v)) {
          return Value(take_min ? std::min(a.as_f64(), b.as_f64())
                                : std::max(a.as_f64(), b.as_f64()));
        }
        return Value(take_min ? std::min(a.as_i64(), b.as_i64())
                              : std::max(a.as_i64(), b.as_i64()));
      }
      case Builtin::kMod: {
        const std::int64_t a = f(0).as_i64();
        const std::int64_t b = f(1).as_i64();
        if (b == 0) panic(e.loc, "@mod by zero");
        const std::int64_t r = a % b;
        return Value((r != 0 && ((r < 0) != (b < 0))) ? r + b : r);
      }
      case Builtin::kFloatFromInt:
        return Value(static_cast<double>(f(0).as_i64()));
      case Builtin::kIntFromFloat:
        return Value(static_cast<std::int64_t>(f(0).as_f64()));
      case Builtin::kAlloc: {
        const std::int64_t n = f(0).as_i64();
        if (n < 0) panic(e.loc, "negative @alloc length");
        SliceVal s;
        s.data = std::make_shared<std::vector<Value>>(
            static_cast<std::size_t>(n),
            default_value(lang::Type::slice_of(e.alloc_elem.scalar()).element()));
        return Value(s);
      }
      case Builtin::kFree:
        // Slices are shared_ptr-backed; explicit free is a no-op that keeps
        // source compatibility with the codegen backend.
        f(0);
        return Value();
      case Builtin::kPrint: {
        std::ostringstream line;
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) line << ' ';
          const Value v = f(i);
          if (std::holds_alternative<std::int64_t>(v.v)) {
            line << v.as_i64();
          } else if (std::holds_alternative<double>(v.v)) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", v.as_f64());
            line << buf;
          } else if (std::holds_alternative<bool>(v.v)) {
            line << (v.as_bool() ? "true" : "false");
          } else if (std::holds_alternative<std::string>(v.v)) {
            line << std::get<std::string>(v.v);
          } else {
            line << "<value>";
          }
        }
        line << '\n';
        {
          const std::lock_guard<std::mutex> lock(interp_.print_mutex_);
          std::ostream* out =
              interp_.options_.out != nullptr ? interp_.options_.out : &std::cout;
          (*out) << line.str();
          out->flush();
        }
        return Value();
      }
    }
    panic(e.loc, "bad builtin");
  }

  Interp& interp_;
  const FnDecl& fn_;
  std::unordered_map<const Symbol*, Cell> frame_;
  Value return_value_;
  const Symbol* ordered_iv_ = nullptr;
  std::int64_t ordered_lo_ = 0;
};

// ---------------------------------------------------------------------------
// Interp
// ---------------------------------------------------------------------------

Interp::Interp(const lang::Module& module, Options options)
    : module_(module), options_(options) {
  // Globals, in declaration order: each initialiser is evaluated by a frame-
  // less activation that sees all previously initialised globals.
  static const FnDecl global_init_fn{};
  for (const auto& g : module_.globals) {
    if (g->kind != Stmt::Kind::kVarDecl || g->symbol == nullptr) continue;
    Exec exec(*this, global_init_fn);
    Value v = g->init ? exec.eval_expr(*g->init) : exec.zero_of(g->symbol->type);
    globals_[g->symbol] = make_cell(std::move(v));
  }

  // Pre-registered host functions: the runtime query API.
  register_host_fn("mz_omp_get_thread_num",
                   [](std::vector<Value>&) { return Value(static_cast<std::int64_t>(zomp::thread_num())); });
  register_host_fn("mz_omp_get_num_threads",
                   [](std::vector<Value>&) { return Value(static_cast<std::int64_t>(zomp::num_threads())); });
  register_host_fn("mz_omp_get_max_threads",
                   [](std::vector<Value>&) { return Value(static_cast<std::int64_t>(zomp::max_threads())); });
  register_host_fn("mz_omp_get_num_procs",
                   [](std::vector<Value>&) { return Value(static_cast<std::int64_t>(zomp::num_procs())); });
  register_host_fn("mz_omp_in_parallel", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::in_parallel() ? 1 : 0));
  });
  register_host_fn("mz_omp_get_level", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::level()));
  });
  register_host_fn("mz_omp_get_team_size", [](std::vector<Value>& args) {
    return Value(static_cast<std::int64_t>(
        zomp::team_size(static_cast<rt::i32>(args.at(0).as_i64()))));
  });
  register_host_fn("mz_omp_get_max_active_levels", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::get_max_active_levels()));
  });
  register_host_fn("mz_omp_set_max_active_levels", [](std::vector<Value>& args) {
    zomp::set_max_active_levels(static_cast<rt::i32>(args.at(0).as_i64()));
    return Value();
  });
  register_host_fn("mz_omp_get_max_task_priority", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::max_task_priority()));
  });
  register_host_fn("mz_omp_set_num_threads", [](std::vector<Value>& args) {
    zomp::set_num_threads(static_cast<rt::i32>(args.at(0).as_i64()));
    return Value();
  });
  register_host_fn("mz_omp_get_wtime",
                   [](std::vector<Value>&) { return Value(zomp::wtime()); });
  register_host_fn("mz_omp_get_wtick",
                   [](std::vector<Value>&) { return Value(zomp::wtick()); });
  register_host_fn("mz_omp_team_stat", [](std::vector<Value>& args) {
    return Value(mz_omp_team_stat(args.at(0).as_i64()));
  });
  register_host_fn("mz_omp_trace_flush", [](std::vector<Value>&) {
    return Value(mz_omp_trace_flush());
  });
  register_host_fn("mz_omp_get_proc_bind", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::get_proc_bind()));
  });
  register_host_fn("mz_omp_get_num_places", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::num_places()));
  });
  register_host_fn("mz_omp_get_place_num", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::place_num()));
  });
  register_host_fn("mz_omp_get_place_num_procs", [](std::vector<Value>& args) {
    return Value(static_cast<std::int64_t>(
        zomp::place_num_procs(static_cast<rt::i32>(args.at(0).as_i64()))));
  });
  register_host_fn("mz_omp_get_partition_num_places", [](std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(zomp::partition_num_places()));
  });
  register_host_fn("mz_omp_display_affinity", [](std::vector<Value>&) {
    zomp::display_affinity();
    return Value();
  });
}

void Interp::register_host_fn(const std::string& name, HostFn fn) {
  host_fns_[name] = std::move(fn);
}

bool Interp::run_main() {
  const FnDecl* main_fn = module_.find_function("main");
  if (main_fn == nullptr || main_fn->is_extern) return false;
  Exec exec(*this, *main_fn);
  exec.run();
  return true;
}

Value Interp::call_by_name(const std::string& name, std::vector<Value> args) {
  const FnDecl* fn = module_.find_function(name);
  if (fn == nullptr) {
    std::fprintf(stderr, "interp: no function '%s'\n", name.c_str());
    std::abort();
  }
  std::vector<Cell> cells;
  cells.reserve(args.size());
  for (auto& a : args) cells.push_back(make_cell(std::move(a)));
  Exec exec(*this, *fn);
  exec.bind_params(cells);
  return exec.run();
}

}  // namespace zomp::interp
