// Tree-walking interpreter for transformed MiniZig modules.
//
// The second backend of the pipeline (DESIGN.md S5): where codegen emits C++
// against the zomp C ABI, the interpreter executes the same structured Omp*
// statements directly against the runtime's C++ internals — outlined
// functions run as real microtasks on real team threads, worksharing loops
// use the same dispatch engine, barriers are real barriers. This is what the
// ctest suite uses to validate directive *semantics* without invoking a host
// compiler, and what `transpile_and_run`-style examples embed.
//
// Re-entrancy: one Interp may execute on many threads at once (that is the
// point); all mutable interpreter state is per-frame, and module/global
// tables are read-only after construction. Data races between interpreted
// threads on user variables are the user's responsibility, as in OpenMP.
//
// Runtime errors (bounds, division by zero, missing extern) panic — print
// and abort — matching Zig's safety-panic behaviour and keeping teams from
// deadlocking at barriers half-executed regions would otherwise miss.
#pragma once

#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/value.h"
#include "lang/ast.h"

namespace zomp::interp {

struct InterpOptions {
  /// Sink for @print output (tests capture it). Writes are serialised.
  std::ostream* out = nullptr;
};

class Interp {
 public:
  using HostFn = std::function<Value(std::vector<Value>& args)>;
  using Options = InterpOptions;

  /// The module must have passed sema with the OpenMP transform applied.
  explicit Interp(const lang::Module& module, Options options = Options());

  /// Registers a host implementation for an `extern fn`. The mz_omp_* query
  /// functions and mz wtime are pre-registered.
  void register_host_fn(const std::string& name, HostFn fn);

  /// Runs `pub fn main`. Returns false if the module has no main.
  bool run_main();

  /// Calls a named (non-outlined) function with by-value arguments.
  Value call_by_name(const std::string& name, std::vector<Value> args);

 private:
  friend class Exec;

  const lang::Module& module_;
  Options options_;
  std::unordered_map<const lang::Symbol*, Cell> globals_;
  std::unordered_map<std::string, HostFn> host_fns_;
  std::mutex print_mutex_;
};

}  // namespace zomp::interp
