// Runtime values for the MiniZig interpreter.
//
// Every variable lives in a heap Cell so that shared captures can alias
// master storage across threads (the interpreter's equivalent of the
// pointers the paper's outlined functions receive). Slices share a payload
// vector through shared_ptr, mirroring Zig fat-pointer semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace zomp::interp {

struct Value;
using Cell = std::shared_ptr<Value>;

struct SliceVal {
  std::shared_ptr<std::vector<Value>> data;

  std::int64_t len() const;
};

/// A pointer: either to a whole variable (cell) or to a slice element.
struct PtrVal {
  Cell cell;          // when pointing at a variable
  SliceVal slice;     // when pointing at an element
  std::int64_t index = 0;
  bool is_element = false;
};

struct Value {
  std::variant<std::monostate, std::int64_t, double, bool, SliceVal, PtrVal,
               std::string>
      v;

  Value() = default;
  template <typename T>
  explicit Value(T&& x) : v(std::forward<T>(x)) {}

  std::int64_t as_i64() const { return std::get<std::int64_t>(v); }
  double as_f64() const { return std::get<double>(v); }
  bool as_bool() const { return std::get<bool>(v); }
  const SliceVal& as_slice() const { return std::get<SliceVal>(v); }
  const PtrVal& as_ptr() const { return std::get<PtrVal>(v); }
};

inline std::int64_t SliceVal::len() const {
  return data ? static_cast<std::int64_t>(data->size()) : 0;
}

inline Cell make_cell(Value value) {
  return std::make_shared<Value>(std::move(value));
}

}  // namespace zomp::interp
