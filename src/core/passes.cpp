// Optimizer pass implementations (see passes.h for the pipeline contract).
#include "core/passes.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lang/sema.h"

namespace zomp::core {
namespace {

using lang::CaptureArg;
using lang::CaptureMode;
using lang::Expr;
using lang::ExprPtr;
using lang::FnDecl;
using lang::Module;
using lang::Param;
using lang::ScheduleSpec;
using lang::Stmt;
using lang::StmtPtr;

// ---------------------------------------------------------------------------
// Walking helpers (never cross function boundaries: outlined bodies live in
// their own FnDecls and are visited through their unique fork sites or by the
// module loop, exactly like sema).
// ---------------------------------------------------------------------------

template <typename F>
void walk_stmts(const Stmt& stmt, F&& fn) {
  fn(stmt);
  for (const auto& s : stmt.stmts) walk_stmts(*s, fn);
  if (stmt.then_block) walk_stmts(*stmt.then_block, fn);
  if (stmt.else_block) walk_stmts(*stmt.else_block, fn);
  if (stmt.step) walk_stmts(*stmt.step, fn);
  if (stmt.body) walk_stmts(*stmt.body, fn);
}

template <typename F>
void walk_exprs(const Expr& e, F&& fn) {
  fn(e);
  for (const auto& a : e.args) walk_exprs(*a, fn);
}

/// Every expression directly owned by `stmt` (child statements excluded).
template <typename F>
void for_each_stmt_expr(const Stmt& stmt, F&& fn) {
  auto visit = [&](const ExprPtr& p) {
    if (p) walk_exprs(*p, fn);
  };
  visit(stmt.init);
  visit(stmt.lhs);
  visit(stmt.rhs);
  visit(stmt.expr);
  visit(stmt.num_threads);
  visit(stmt.if_clause);
  for (const auto& d : stmt.depends) visit(d.item);
  visit(stmt.final_clause);
  visit(stmt.priority);
  visit(stmt.grainsize);
  visit(stmt.num_tasks);
  visit(stmt.schedule.chunk);
}

bool is_ptr_capture(CaptureMode m) {
  return m == CaptureMode::kSharedPtr || m == CaptureMode::kReductionPtr;
}

/// Names a statement subtree may write through (direct assignment, or handing
/// the address to a nested region/task).
void collect_assigned_names(const Stmt& root,
                            std::unordered_set<std::string>& out) {
  walk_stmts(root, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kAssign && s.lhs &&
        s.lhs->kind == Expr::Kind::kVarRef) {
      out.insert(s.lhs->name);
    }
    if (s.kind == Stmt::Kind::kOmpFork || s.kind == Stmt::Kind::kOmpTask ||
        s.kind == Stmt::Kind::kOmpTaskloop) {
      for (const auto& c : s.captures) {
        if (is_ptr_capture(c.mode)) out.insert(c.name);
      }
    }
    if (s.kind == Stmt::Kind::kOmpLastprivateWrite) out.insert(s.target);
    if (s.kind == Stmt::Kind::kOmpReductionCombine) out.insert(s.target);
  });
}

/// Names whose value can change behind the const-tracker's back anywhere in
/// `root`: address taken, or passed by pointer to a region/task (a task may
/// write it at any later point, so the disqualification is subtree-wide).
/// A shared-ptr capture of a `const`-declared name is exempt: sema rejects
/// every assignment to a const, so no region can write through that pointer
/// — which is exactly what lets the folder see through the shared capture
/// of a constant loop bound (the common `const n = ...; parallel for 0..n`
/// shape the static-spec pass feeds on). Reduction captures are written by
/// the combine regardless of declared const-ness, so they always disqualify.
void collect_disqualified_names(const Stmt& root,
                                std::unordered_set<std::string>& out) {
  std::unordered_set<std::string> const_decls;
  walk_stmts(root, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kVarDecl && s.is_const) {
      const_decls.insert(s.name);
    }
  });
  walk_stmts(root, [&](const Stmt& s) {
    for_each_stmt_expr(s, [&](const Expr& e) {
      if (e.kind == Expr::Kind::kAddrOf && !e.args.empty() &&
          e.args[0]->kind == Expr::Kind::kVarRef) {
        out.insert(e.args[0]->name);
      }
    });
    if (s.kind == Stmt::Kind::kOmpFork || s.kind == Stmt::Kind::kOmpTask ||
        s.kind == Stmt::Kind::kOmpTaskloop) {
      for (const auto& c : s.captures) {
        if (c.mode == CaptureMode::kReductionPtr ||
            (is_ptr_capture(c.mode) && !const_decls.contains(c.name))) {
          out.insert(c.name);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// fold — directive-operand constant folding
// ---------------------------------------------------------------------------

struct ConstVal {
  bool is_bool = false;
  std::int64_t i = 0;
  bool b = false;
};

using ConstEnv = std::unordered_map<std::string, ConstVal>;

std::optional<ConstVal> eval_const(const Expr& e, const ConstEnv& env) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      return ConstVal{false, e.int_value, false};
    case Expr::Kind::kBoolLit:
      return ConstVal{true, 0, e.bool_value};
    case Expr::Kind::kVarRef: {
      auto it = env.find(e.name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::kUnary: {
      auto v = eval_const(*e.args[0], env);
      if (!v) return std::nullopt;
      if (e.un_op == lang::UnOp::kNeg) {
        if (v->is_bool || v->i == INT64_MIN) return std::nullopt;
        return ConstVal{false, -v->i, false};
      }
      if (!v->is_bool) return std::nullopt;
      return ConstVal{true, 0, !v->b};
    }
    case Expr::Kind::kBinary: {
      auto l = eval_const(*e.args[0], env);
      auto r = eval_const(*e.args[1], env);
      if (!l || !r) return std::nullopt;
      using lang::BinOp;
      // Logical: bools only. Both operands are side-effect-free constants,
      // so evaluating the rhs of a short-circuit op is safe.
      if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
        if (!l->is_bool || !r->is_bool) return std::nullopt;
        return ConstVal{true, 0,
                        e.bin_op == BinOp::kAnd ? (l->b && r->b)
                                                : (l->b || r->b)};
      }
      if (l->is_bool || r->is_bool) return std::nullopt;
      const std::int64_t a = l->i, b = r->i;
      std::int64_t out = 0;
      switch (e.bin_op) {
        // Arithmetic folds only when the exact i64 result exists (no
        // signed-overflow guessing on the compiler's part).
        case BinOp::kAdd:
          if (__builtin_add_overflow(a, b, &out)) return std::nullopt;
          break;
        case BinOp::kSub:
          if (__builtin_sub_overflow(a, b, &out)) return std::nullopt;
          break;
        case BinOp::kMul:
          if (__builtin_mul_overflow(a, b, &out)) return std::nullopt;
          break;
        case BinOp::kDiv:
          if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
          out = a / b;
          break;
        case BinOp::kRem:
          if (b == 0 || (a == INT64_MIN && b == -1)) return std::nullopt;
          out = a % b;
          break;
        case BinOp::kBitAnd: out = a & b; break;
        case BinOp::kBitOr: out = a | b; break;
        case BinOp::kBitXor: out = a ^ b; break;
        case BinOp::kShl:
          if (a < 0 || b < 0 || b > 62) return std::nullopt;
          if (a > (INT64_MAX >> b)) return std::nullopt;
          out = a << b;
          break;
        case BinOp::kShr:
          if (a < 0 || b < 0 || b > 62) return std::nullopt;
          out = a >> b;
          break;
        case BinOp::kEq: return ConstVal{true, 0, a == b};
        case BinOp::kNe: return ConstVal{true, 0, a != b};
        case BinOp::kLt: return ConstVal{true, 0, a < b};
        case BinOp::kLe: return ConstVal{true, 0, a <= b};
        case BinOp::kGt: return ConstVal{true, 0, a > b};
        case BinOp::kGe: return ConstVal{true, 0, a >= b};
        default: return std::nullopt;
      }
      return ConstVal{false, out, false};
    }
    default:
      return std::nullopt;
  }
}

class Folder {
 public:
  Folder(Module& module, PassStats& stats) : module_(module), stats_(stats) {}

  void run() {
    seed_global_env();
    for (auto& fn : module_.functions) {
      if (fn->is_outlined || fn->is_extern || !fn->body) continue;
      fold_function(*fn, global_env_);
    }
  }

 private:
  /// Const globals with (foldable) literal initializers, unless their address
  /// escapes somewhere in the module.
  void seed_global_env() {
    std::unordered_set<std::string> escaped;
    for (const auto& fn : module_.functions) {
      if (fn->body) collect_disqualified_names(*fn->body, escaped);
    }
    for (auto& g : module_.globals) {
      if (g->kind != Stmt::Kind::kVarDecl) continue;
      if (g->init && !g->init_is_type_hint) fold_expr(g->init, global_env_);
      if (!g->is_const || !g->init || escaped.contains(g->name)) continue;
      record_const(global_env_, g->name, *g->init);
    }
  }

  static void record_const(ConstEnv& env, const std::string& name,
                           const Expr& init) {
    if (init.kind == Expr::Kind::kIntLit) {
      env[name] = ConstVal{false, init.int_value, false};
    } else if (init.kind == Expr::Kind::kBoolLit) {
      env[name] = ConstVal{true, 0, init.bool_value};
    }
  }

  /// Replaces `p` (or its largest foldable subexpressions) with literals.
  void fold_expr(ExprPtr& p, const ConstEnv& env) {
    if (!p) return;
    if (p->kind == Expr::Kind::kIntLit || p->kind == Expr::Kind::kBoolLit ||
        p->kind == Expr::Kind::kFloatLit ||
        p->kind == Expr::Kind::kStringLit) {
      return;
    }
    if (auto v = eval_const(*p, env)) {
      auto lit = Expr::make(
          v->is_bool ? Expr::Kind::kBoolLit : Expr::Kind::kIntLit, p->loc);
      lit->int_value = v->i;
      lit->bool_value = v->b;
      lit->type = p->type;  // sema's type survives; verify re-checks anyway
      p = std::move(lit);
      ++stats_.folded_operands;
      return;
    }
    // Addresses must stay addresses: &x and the write side of an index are
    // never folded, but their index/operand subexpressions may be.
    if (p->kind == Expr::Kind::kAddrOf) return;
    for (auto& a : p->args) fold_expr(a, env);
  }

  void fold_function(FnDecl& fn, ConstEnv env) {
    auto saved = std::move(disqualified_);
    disqualified_.clear();
    collect_disqualified_names(*fn.body, disqualified_);
    for (const auto& n : disqualified_) env.erase(n);
    fold_stmt(*fn.body, env);
    disqualified_ = std::move(saved);
  }

  void kill_assigned(const Stmt& subtree, ConstEnv& env) {
    std::unordered_set<std::string> assigned;
    collect_assigned_names(subtree, assigned);
    for (const auto& n : assigned) env.erase(n);
  }

  void fold_stmt(Stmt& stmt, ConstEnv& env) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock: {
        ConstEnv inner = env;  // block scope
        for (auto& s : stmt.stmts) fold_stmt(*s, inner);
        kill_assigned(stmt, env);
        break;
      }
      case Stmt::Kind::kVarDecl:
      case Stmt::Kind::kOmpReductionInit: {
        if (stmt.init && !stmt.init_is_type_hint) fold_expr(stmt.init, env);
        env.erase(stmt.name);
        if (stmt.kind == Stmt::Kind::kVarDecl && stmt.is_const && stmt.init &&
            !stmt.init_is_type_hint && !disqualified_.contains(stmt.name)) {
          record_const(env, stmt.name, *stmt.init);
        }
        break;
      }
      case Stmt::Kind::kAssign:
        fold_expr(stmt.rhs, env);
        if (stmt.lhs && stmt.lhs->kind != Expr::Kind::kVarRef) {
          // fold the subscript of an element store, never the lvalue itself
          for (auto& a : stmt.lhs->args) fold_expr(a, env);
        }
        if (stmt.lhs && stmt.lhs->kind == Expr::Kind::kVarRef) {
          env.erase(stmt.lhs->name);
        }
        break;
      case Stmt::Kind::kExprStmt:
      case Stmt::Kind::kReturn:
        fold_expr(stmt.expr, env);
        break;
      case Stmt::Kind::kIf: {
        fold_expr(stmt.expr, env);
        ConstEnv then_env = env;
        fold_stmt(*stmt.then_block, then_env);
        if (stmt.else_block) {
          ConstEnv else_env = env;
          fold_stmt(*stmt.else_block, else_env);
        }
        kill_assigned(stmt, env);
        break;
      }
      case Stmt::Kind::kWhile: {
        // The condition re-evaluates every iteration: names the loop assigns
        // must leave the environment before anything in the loop folds.
        kill_assigned(stmt, env);
        fold_expr(stmt.expr, env);
        ConstEnv inner = env;
        if (stmt.step) fold_stmt(*stmt.step, inner);
        fold_stmt(*stmt.body, inner);
        break;
      }
      case Stmt::Kind::kForRange: {
        // Bounds are evaluated once, before the first iteration.
        fold_expr(stmt.expr, env);
        fold_expr(stmt.rhs, env);
        kill_assigned(stmt, env);
        ConstEnv inner = env;
        inner.erase(stmt.name);  // loop variable shadows
        fold_stmt(*stmt.body, inner);
        break;
      }
      case Stmt::Kind::kOmpFork:
      case Stmt::Kind::kOmpTask:
      case Stmt::Kind::kOmpTaskloop: {
        fold_expr(stmt.num_threads, env);
        if (stmt.if_clause) {
          fold_expr(stmt.if_clause, env);
          if (stmt.if_clause->kind == Expr::Kind::kBoolLit &&
              stmt.if_clause->bool_value) {
            // if(true) is the absent clause for both parallel and task
            stmt.if_clause.reset();
            ++stats_.folded_operands;
          }
        }
        fold_expr(stmt.final_clause, env);
        fold_expr(stmt.priority, env);
        fold_expr(stmt.grainsize, env);
        fold_expr(stmt.num_tasks, env);
        if (stmt.kind == Stmt::Kind::kOmpTaskloop) {
          fold_expr(stmt.expr, env);
          fold_expr(stmt.rhs, env);
        }
        propagate_into_callee(stmt, env);
        break;
      }
      case Stmt::Kind::kOmpWsLoop: {
        fold_expr(stmt.schedule.chunk, env);
        ConstEnv inner = env;
        fold_stmt(*stmt.body, inner);
        kill_assigned(stmt, env);
        break;
      }
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
      case Stmt::Kind::kOmpTaskgroup: {
        // Constructs where another thread's sibling work interleaves: only
        // values that are constant across the whole team survive inside,
        // which the ptr-capture disqualification already guarantees; the
        // body is still a serial statement list for this thread.
        ConstEnv inner = env;
        fold_stmt(*stmt.body, inner);
        kill_assigned(stmt, env);
        break;
      }
      default:
        break;
    }
  }

  /// Interprocedural step: captures of known constants become constants
  /// inside the (unique) fork site's outlined body. By-value captures
  /// propagate whenever the caller value is known; shared-ptr captures
  /// propagate too when the name survived disqualification — that only
  /// happens for `const` declarations (sema rejects writes, so the pointee
  /// is immutable for the region's lifetime).
  void propagate_into_callee(Stmt& stmt, const ConstEnv& env) {
    FnDecl* callee = module_.find_function(stmt.callee);
    if (callee == nullptr || !callee->is_outlined || !callee->body) return;
    if (folded_callees_.contains(callee)) return;
    folded_callees_.insert(callee);

    ConstEnv inner = global_env_;
    for (const auto& cap : stmt.captures) {
      const std::string param = cap.mode == CaptureMode::kReductionPtr
                                    ? cap.name + "__red"
                                    : cap.name;
      inner.erase(param);  // parameters shadow globals
      if (cap.mode == CaptureMode::kValue ||
          cap.mode == CaptureMode::kSharedPtr) {
        auto it = env.find(cap.name);
        if (it != env.end()) inner[param] = it->second;
      }
    }
    fold_function(*callee, std::move(inner));
  }

  Module& module_;
  PassStats& stats_;
  ConstEnv global_env_;
  std::unordered_set<std::string> disqualified_;
  std::unordered_set<const FnDecl*> folded_callees_;
};

class FoldPass : public Pass {
 public:
  std::string name() const override { return "fold"; }
  bool run(Module& module, lang::Diagnostics&, PassStats& stats) override {
    Folder(module, stats).run();
    return true;
  }
};

// ---------------------------------------------------------------------------
// static-spec — static-schedule specialization
// ---------------------------------------------------------------------------

class StaticSpecPass : public Pass {
 public:
  std::string name() const override { return "static-spec"; }

  bool run(Module& module, lang::Diagnostics&, PassStats& stats) override {
    module_ = &module;
    stats_ = &stats;
    visited_.clear();
    for (auto& fn : module.functions) {
      if (fn->is_outlined || fn->is_extern || !fn->body) continue;
      // Outside any region the loop binds to the serial team; the win is in
      // real teams, so specialization starts at fork sites.
      visit(*fn->body, /*team_const=*/false);
    }
    return true;
  }

 private:
  static bool eligible(const Stmt& ws) {
    if (ws.schedule.kind != ScheduleSpec::Kind::kStatic &&
        ws.schedule.kind != ScheduleSpec::Kind::kUnspecified) {
      return false;
    }
    if (ws.schedule.chunk || ws.ordered) return false;
    if (!ws.body || ws.body->kind != Stmt::Kind::kForRange) return false;
    return ws.body->expr && ws.body->expr->kind == Expr::Kind::kIntLit &&
           ws.body->rhs && ws.body->rhs->kind == Expr::Kind::kIntLit;
  }

  void visit(Stmt& stmt, bool team_const) {
    if (stmt.kind == Stmt::Kind::kOmpWsLoop && team_const && eligible(stmt)) {
      stmt.static_spec = true;
      ++stats_->static_specialized;
    }
    if (stmt.kind == Stmt::Kind::kOmpFork ||
        stmt.kind == Stmt::Kind::kOmpTask ||
        stmt.kind == Stmt::Kind::kOmpTaskloop) {
      FnDecl* callee = module_->find_function(stmt.callee);
      if (callee != nullptr && callee->is_outlined && callee->body &&
          !visited_.contains(callee)) {
        visited_.insert(callee);
        // Tasks run on the enclosing team but a worksharing loop inside a
        // task body is not a team construct we specialize; only a fork with
        // a literal positive num_threads gives the constant team the issue's
        // gate asks for. (The runtime fast path still reads the delivered
        // team size, so a short pool acquire stays correct.)
        const bool tc = stmt.kind == Stmt::Kind::kOmpFork && stmt.num_threads &&
                        stmt.num_threads->kind == Expr::Kind::kIntLit &&
                        stmt.num_threads->int_value > 0;
        visit(*callee->body, tc);
      }
      return;
    }
    for (auto& s : stmt.stmts) visit(*s, team_const);
    if (stmt.then_block) visit(*stmt.then_block, team_const);
    if (stmt.else_block) visit(*stmt.else_block, team_const);
    if (stmt.step) visit(*stmt.step, team_const);
    if (stmt.body) visit(*stmt.body, team_const);
  }

  Module* module_ = nullptr;
  PassStats* stats_ = nullptr;
  std::unordered_set<const FnDecl*> visited_;
};

// ---------------------------------------------------------------------------
// fuse — parallel-region fusion
// ---------------------------------------------------------------------------

bool subtree_writes_name(const Stmt& root, const std::string& name) {
  bool writes = false;
  walk_stmts(root, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kAssign && s.lhs) {
      const Expr& l = *s.lhs;
      if (l.kind == Expr::Kind::kVarRef && l.name == name) writes = true;
      // element store through a by-value slice header still hits shared data
      if ((l.kind == Expr::Kind::kIndex || l.kind == Expr::Kind::kDeref) &&
          !l.args.empty() && l.args[0]->kind == Expr::Kind::kVarRef &&
          l.args[0]->name == name) {
        writes = true;
      }
    }
    if ((s.kind == Stmt::Kind::kOmpLastprivateWrite ||
         s.kind == Stmt::Kind::kOmpReductionCombine) &&
        s.target == name) {
      writes = true;
    }
    if (s.kind == Stmt::Kind::kOmpWsLoop) {
      for (const auto& lp : s.lastprivate) {
        if (lp.second == name) writes = true;
      }
    }
    if (s.kind == Stmt::Kind::kOmpFork || s.kind == Stmt::Kind::kOmpTask ||
        s.kind == Stmt::Kind::kOmpTaskloop) {
      for (const auto& c : s.captures) {
        if (c.name == name && is_ptr_capture(c.mode)) writes = true;
      }
    }
  });
  return writes;
}

bool subtree_has_return(const Stmt& root) {
  bool found = false;
  walk_stmts(root, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::kReturn) found = true;
  });
  return found;
}

class FusePass : public Pass {
 public:
  std::string name() const override { return "fuse"; }

  bool run(Module& module, lang::Diagnostics&, PassStats& stats) override {
    // Collect every block first: fusion moves bodies between functions but
    // never destroys or relocates a Stmt, so the pointers stay valid.
    std::vector<Stmt*> blocks;
    for (auto& fn : module.functions) {
      if (!fn->body) continue;
      collect_blocks(*fn->body, blocks);
    }
    for (Stmt* b : blocks) {
      auto& ss = b->stmts;
      std::size_t i = 0;
      while (i + 1 < ss.size()) {
        if (try_fuse(module, ss, i, stats)) continue;  // chain greedily
        ++i;
      }
    }
    return true;
  }

 private:
  static void collect_blocks(Stmt& stmt, std::vector<Stmt*>& out) {
    if (stmt.kind == Stmt::Kind::kBlock) out.push_back(&stmt);
    for (auto& s : stmt.stmts) collect_blocks(*s, out);
    if (stmt.then_block) collect_blocks(*stmt.then_block, out);
    if (stmt.else_block) collect_blocks(*stmt.else_block, out);
    if (stmt.step) collect_blocks(*stmt.step, out);
    if (stmt.body) collect_blocks(*stmt.body, out);
  }

  static bool same_int_literal(const ExprPtr& a, const ExprPtr& b) {
    if (!a && !b) return true;
    if (!a || !b) return false;
    return a->kind == Expr::Kind::kIntLit && b->kind == Expr::Kind::kIntLit &&
           a->int_value == b->int_value;
  }

  /// Fusion legality. Adjacency is the outer precondition (the two forks are
  /// consecutive statements of one block — nothing, not even a declaration,
  /// runs between them). The clause and data-flow rules are:
  ///   * equal team shape: num_threads both absent or equal literals,
  ///     if-clause absent on both, proc_bind equal;
  ///   * a variable captured by both regions must use the same mode (and
  ///     reduce op) in each — this is what rejects the nowait-unsafe
  ///     boundaries: a by-value read in region 2 of a variable region 1
  ///     writes through a shared/reduction pointer (lastprivate writeback,
  ///     reduction results) shows up as a mode mismatch;
  ///   * a variable captured by value in both must not be written by body 1
  ///     (the fused function has ONE parameter for it: region 2's private
  ///     copy would otherwise observe region 1's writes);
  ///   * no `return` in either body (a mid-region return would skip the
  ///     second body for that thread and desynchronize the barrier).
  bool try_fuse(Module& module, std::vector<StmtPtr>& ss, std::size_t i,
                PassStats& stats) {
    Stmt& s1 = *ss[i];
    Stmt& s2 = *ss[i + 1];
    if (s1.kind != Stmt::Kind::kOmpFork || s2.kind != Stmt::Kind::kOmpFork) {
      return false;
    }
    FnDecl* c1 = module.find_function(s1.callee);
    FnDecl* c2 = module.find_function(s2.callee);
    if (c1 == nullptr || c2 == nullptr || c1 == c2) return false;
    if (!c1->is_outlined || !c2->is_outlined || !c1->body || !c2->body) {
      return false;
    }
    if (c1->params.size() != s1.captures.size() ||
        c2->params.size() != s2.captures.size()) {
      return false;
    }
    if (!same_int_literal(s1.num_threads, s2.num_threads)) return false;
    if (s1.if_clause || s2.if_clause) return false;
    if (s1.proc_bind != s2.proc_bind) return false;
    if (subtree_has_return(*c1->body) || subtree_has_return(*c2->body)) {
      return false;
    }

    std::unordered_map<std::string, const CaptureArg*> first;
    for (const auto& c : s1.captures) first.emplace(c.name, &c);
    for (const auto& c : s2.captures) {
      auto it = first.find(c.name);
      if (it == first.end()) continue;
      const CaptureArg& f = *it->second;
      if (f.mode != c.mode) return false;
      if (c.mode == CaptureMode::kReductionPtr && f.reduce_op != c.reduce_op) {
        return false;
      }
      if (c.mode == CaptureMode::kValue &&
          subtree_writes_name(*c1->body, c.name)) {
        return false;
      }
    }

    // Build the merged capture/parameter union (fork 1 first, then fork 2's
    // additions) and reject on any residual parameter-name collision.
    std::vector<CaptureArg> caps = s1.captures;
    std::vector<Param> params;
    params.reserve(c1->params.size() + c2->params.size());
    for (const auto& p : c1->params) params.push_back(p);
    for (std::size_t j = 0; j < s2.captures.size(); ++j) {
      if (first.contains(s2.captures[j].name)) continue;
      caps.push_back(s2.captures[j]);
      params.push_back(c2->params[j]);
    }
    std::unordered_set<std::string> param_names;
    for (auto& p : params) {
      if (!param_names.insert(p.name).second) return false;
      p.symbol = nullptr;  // verify re-resolves
    }

    // All checks passed — mutate. Name the fused function uniquely.
    std::string fused_name;
    do {
      fused_name = "__omp_fused_" + std::to_string(counter_++);
    } while (module.find_function(fused_name) != nullptr);

    auto fn = std::make_unique<FnDecl>();
    fn->name = fused_name;
    fn->is_outlined = true;
    fn->loc = c1->loc;
    fn->params = std::move(params);

    // Region 1's trailing implicit barrier becomes the single explicit
    // barrier between the bodies: if its final worksharing loop is only
    // followed by reduction combines / lastprivate writebacks (both safe
    // immediately after a nowait loop — the tree combine is its own
    // rendezvous, and the writeback is published by the explicit barrier),
    // mark it nowait so the pair costs one barrier, not two.
    relax_tail_barrier(*c1->body);

    auto body = Stmt::make(Stmt::Kind::kBlock, s1.loc);
    body->stmts.push_back(std::move(c1->body));  // own scope per region
    body->stmts.push_back(Stmt::make(Stmt::Kind::kOmpBarrier, s2.loc));
    body->stmts.push_back(std::move(c2->body));
    fn->body = std::move(body);

    s1.callee = fused_name;
    s1.callee_decl = nullptr;
    s1.captures = std::move(caps);

    erase_function(module, c1);
    erase_function(module, c2);
    module.functions.push_back(std::move(fn));

    ss.erase(ss.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    ++stats.regions_fused;
    return true;
  }

  static void relax_tail_barrier(Stmt& body) {
    if (body.kind != Stmt::Kind::kBlock) return;
    std::ptrdiff_t last_ws = -1;
    for (std::size_t j = 0; j < body.stmts.size(); ++j) {
      if (body.stmts[j]->kind == Stmt::Kind::kOmpWsLoop) {
        last_ws = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (last_ws < 0) return;
    Stmt& ws = *body.stmts[static_cast<std::size_t>(last_ws)];
    if (ws.nowait || ws.ordered) return;
    for (std::size_t j = static_cast<std::size_t>(last_ws) + 1;
         j < body.stmts.size(); ++j) {
      const Stmt::Kind k = body.stmts[j]->kind;
      if (k != Stmt::Kind::kOmpReductionCombine &&
          k != Stmt::Kind::kOmpLastprivateWrite) {
        return;
      }
    }
    ws.nowait = true;
  }

  static void erase_function(Module& module, const FnDecl* fn) {
    for (auto it = module.functions.begin(); it != module.functions.end();
         ++it) {
      if (it->get() == fn) {
        module.functions.erase(it);
        return;
      }
    }
  }

  int counter_ = 0;
};

// ---------------------------------------------------------------------------
// dce-hoist — dead-clause elimination + loop-invariant capture hoisting
// ---------------------------------------------------------------------------

/// Every name a statement subtree can refer to, collected conservatively
/// (over-collection only keeps a dead capture alive, never the reverse).
void collect_referenced_names(const Stmt& root,
                              std::unordered_set<std::string>& out) {
  walk_stmts(root, [&](const Stmt& s) {
    for_each_stmt_expr(s, [&](const Expr& e) {
      if (e.kind == Expr::Kind::kVarRef) out.insert(e.name);
    });
    switch (s.kind) {
      case Stmt::Kind::kOmpReductionInit:
        out.insert(s.target);
        break;
      case Stmt::Kind::kOmpReductionCombine:
      case Stmt::Kind::kOmpLastprivateWrite:
        out.insert(s.name);
        out.insert(s.target);
        break;
      case Stmt::Kind::kOmpFork:
      case Stmt::Kind::kOmpTask:
      case Stmt::Kind::kOmpTaskloop:
        for (const auto& c : s.captures) out.insert(c.name);
        break;
      case Stmt::Kind::kOmpWsLoop:
        for (const auto& lp : s.lastprivate) {
          out.insert(lp.first);
          out.insert(lp.second);
        }
        for (const auto& d : s.collapse) {
          out.insert(d.lo);
          out.insert(d.extent);
          out.insert(d.stride);
        }
        break;
      default:
        break;
    }
  });
}

class DceHoistPass : public Pass {
 public:
  std::string name() const override { return "dce-hoist"; }

  bool run(Module& module, lang::Diagnostics&, PassStats& stats) override {
    for (auto& fn : module.functions) {
      if (!fn->body) continue;
      walk_stmts(*fn->body, [&](const Stmt& s) {
        // walk_stmts gives const refs; forks are mutated through the module
        if (s.kind == Stmt::Kind::kOmpFork) {
          dce_fork(module, const_cast<Stmt&>(s), stats);
        }
      });
    }
    for (auto& fn : module.functions) {
      if (!fn->body) continue;
      frames_.clear();
      hoist_visit(*fn->body, stats);
    }
    return true;
  }

 private:
  /// Drops captures whose parameter the outlined body never names. Reduction
  /// captures are exempt (their combine always names the target, but the
  /// exemption keeps the rendezvous arity stable even if that ever changes).
  void dce_fork(Module& module, Stmt& fork, PassStats& stats) {
    FnDecl* callee = module.find_function(fork.callee);
    if (callee == nullptr || !callee->is_outlined || !callee->body) return;
    if (callee->params.size() != fork.captures.size()) return;

    std::unordered_set<std::string> used;
    collect_referenced_names(*callee->body, used);

    std::vector<CaptureArg> caps;
    std::vector<Param> params;
    for (std::size_t i = 0; i < fork.captures.size(); ++i) {
      const CaptureArg& c = fork.captures[i];
      const bool keep = c.mode == CaptureMode::kReductionPtr ||
                        used.contains(callee->params[i].name);
      if (keep) {
        caps.push_back(c);
        params.push_back(callee->params[i]);
      } else {
        ++stats.dead_captures;
      }
    }
    if (caps.size() == fork.captures.size()) return;
    fork.captures = std::move(caps);
    callee->params = std::move(params);
  }

  // -- hoisting --------------------------------------------------------------

  struct LoopFrame {
    std::unordered_set<std::string> declared;
  };

  void hoist_visit(Stmt& stmt, PassStats& stats) {
    switch (stmt.kind) {
      case Stmt::Kind::kVarDecl:
        if (!frames_.empty()) frames_.back().declared.insert(stmt.name);
        break;
      case Stmt::Kind::kForRange: {
        frames_.push_back({});
        frames_.back().declared.insert(stmt.name);
        hoist_visit(*stmt.body, stats);
        frames_.pop_back();
        break;
      }
      case Stmt::Kind::kWhile: {
        frames_.push_back({});
        if (stmt.step) hoist_visit(*stmt.step, stats);
        hoist_visit(*stmt.body, stats);
        frames_.pop_back();
        break;
      }
      case Stmt::Kind::kOmpWsLoop: {
        // A worksharing loop is also a per-thread loop, but codegen has no
        // pre-loop emission point for it — hoisting never crosses one.
        auto saved = std::move(frames_);
        frames_.clear();
        hoist_visit(*stmt.body, stats);
        frames_ = std::move(saved);
        break;
      }
      case Stmt::Kind::kOmpFork: {
        if (frames_.empty()) break;
        std::size_t deepest = 0;  // frame count whose scope holds a capture
        for (const auto& c : stmt.captures) {
          for (std::size_t k = frames_.size(); k >= 1; --k) {
            if (frames_[k - 1].declared.contains(c.name)) {
              deepest = std::max(deepest, k);
              break;
            }
          }
        }
        const std::size_t h = frames_.size() - deepest;
        if (h > 0) {
          stmt.hoist_depth = static_cast<int>(h);
          ++stats.hoisted_forks;
        }
        break;
      }
      default: {
        for (auto& s : stmt.stmts) hoist_visit(*s, stats);
        if (stmt.then_block) hoist_visit(*stmt.then_block, stats);
        if (stmt.else_block) hoist_visit(*stmt.else_block, stats);
        if (stmt.step) hoist_visit(*stmt.step, stats);
        if (stmt.body) hoist_visit(*stmt.body, stats);
        break;
      }
    }
  }

  std::vector<LoopFrame> frames_;
};

// ---------------------------------------------------------------------------
// Stage wrappers + verify
// ---------------------------------------------------------------------------

class OmpLowerPass : public Pass {
 public:
  std::string name() const override { return "omp-lower"; }
  bool run(Module& module, lang::Diagnostics& diags,
           PassStats& stats) override {
    return apply_openmp(module, diags, &stats.transform);
  }
};

class SemaPass : public Pass {
 public:
  std::string name() const override { return "sema"; }
  bool run(Module& module, lang::Diagnostics& diags, PassStats&) override {
    return lang::analyze(module, diags);
  }
};

/// Re-runs sema on the optimized module. This is load-bearing, not just a
/// check: fusion rebuilds functions and folding inserts fresh literal nodes,
/// and re-analysis is what re-resolves every Symbol*/FnDecl*/type by name.
/// First-analysis warnings would repeat verbatim, so they go to a scratch
/// sink; an error here can only be a pass bug and is re-reported as such.
class VerifyPass : public Pass {
 public:
  std::string name() const override { return "verify"; }
  bool run(Module& module, lang::Diagnostics& diags, PassStats&) override {
    lang::Diagnostics scratch;
    if (lang::analyze(module, scratch)) return true;
    for (const auto& d : scratch.all()) {
      if (d.severity == lang::Severity::kError) {
        diags.error(d.loc, "internal: optimizer broke the module: " + d.message);
      }
    }
    return false;
  }
};

}  // namespace

void PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

bool PassManager::run(lang::Module& module, lang::Diagnostics& diags,
                      PassStats& stats, const DumpHook& hook) const {
  for (const auto& pass : passes_) {
    if (!pass->run(module, diags, stats) || diags.has_errors()) return false;
    if (hook) hook(pass->name(), module);
  }
  return true;
}

std::unique_ptr<Pass> make_omp_lower_pass() {
  return std::make_unique<OmpLowerPass>();
}
std::unique_ptr<Pass> make_sema_pass() { return std::make_unique<SemaPass>(); }
std::unique_ptr<Pass> make_fold_pass() { return std::make_unique<FoldPass>(); }
std::unique_ptr<Pass> make_static_spec_pass() {
  return std::make_unique<StaticSpecPass>();
}
std::unique_ptr<Pass> make_fuse_pass() { return std::make_unique<FusePass>(); }
std::unique_ptr<Pass> make_dce_hoist_pass() {
  return std::make_unique<DceHoistPass>();
}
std::unique_ptr<Pass> make_verify_pass() {
  return std::make_unique<VerifyPass>();
}

void build_default_pipeline(PassManager& pm, int opt_level, bool openmp) {
  if (openmp) pm.add(make_omp_lower_pass());
  pm.add(make_sema_pass());
  if (opt_level >= 1) {
    pm.add(make_fold_pass());
    pm.add(make_static_spec_pass());
    pm.add(make_fuse_pass());
    pm.add(make_dce_hoist_pass());
    pm.add(make_verify_pass());
  }
}

}  // namespace zomp::core
