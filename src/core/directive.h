// Parsed representation of one `//#omp` directive.
//
// This is the directive grammar the paper implements for Zig: the parallel
// construct, the worksharing loop (standalone and combined), the
// synchronisation constructs, and the clause families shared / private /
// firstprivate / reduction / schedule (paper §2), plus the tasking constructs
// implemented here as the documented extension.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace zomp::core {

enum class DirectiveKind {
  kParallel,
  kFor,
  kParallelFor,
  kBarrier,
  kCritical,
  kSingle,
  kMaster,
  kAtomic,
  kOrdered,
  kTask,
  kTaskwait,
  kTaskgroup,
  kTaskloop,
  kCancel,
  kCancellationPoint,
};

const char* directive_kind_name(DirectiveKind kind);

/// Does this directive stand alone (no associated statement)?
constexpr bool directive_is_standalone(DirectiveKind kind) {
  return kind == DirectiveKind::kBarrier || kind == DirectiveKind::kTaskwait ||
         kind == DirectiveKind::kCancel ||
         kind == DirectiveKind::kCancellationPoint;
}

struct ReductionClause {
  lang::ReduceOp op = lang::ReduceOp::kAdd;
  std::vector<std::string> vars;
};

/// One depend(kind: list) clause on a task. The list items are lvalue
/// expressions (variable names or slice elements like a[i]); the backends
/// evaluate them to storage addresses at task-creation time.
enum class DependKind { kIn, kOut, kInout };

struct DependClause {
  DependKind kind = DependKind::kInout;
  std::vector<lang::ExprPtr> items;
};

enum class DefaultKind { kUnspecified, kShared, kNone };

/// proc_bind(...) clause argument. Values match zomp::rt::BindKind (and the
/// omp_proc_bind_t ABI constants) so the backends pass them through
/// numerically; kMaster is the deprecated alias and lowers as kPrimary.
enum class ProcBindKind : int {
  kUnspecified = -1,
  kPrimary = 2,
  kClose = 3,
  kSpread = 4,
};

struct Directive {
  DirectiveKind kind = DirectiveKind::kParallel;
  lang::SourceLoc loc;  ///< location of the `//#omp` comment

  // parallel clauses
  lang::ExprPtr num_threads;
  lang::ExprPtr if_clause;
  ProcBindKind proc_bind = ProcBindKind::kUnspecified;
  DefaultKind default_mode = DefaultKind::kUnspecified;
  std::vector<std::string> shared_vars;
  std::vector<std::string> private_vars;
  std::vector<std::string> firstprivate_vars;
  std::vector<ReductionClause> reductions;

  // worksharing clauses
  lang::ScheduleSpec schedule;
  /// collapse(n) depth; 1 when absent (or explicit collapse(1)).
  int collapse = 1;
  bool nowait = false;
  bool ordered = false;
  std::vector<std::string> lastprivate_vars;

  // task clauses
  std::vector<DependClause> depends;
  lang::ExprPtr final_clause;  ///< final(expr): true -> undeferred + included
  lang::ExprPtr priority;      ///< priority(n) scheduling hint
  /// untied is accepted and recorded as a documented no-op (zomp tasks run
  /// to completion on one thread, so every task trivially behaves as tied).
  bool untied = false;

  // taskloop clauses (mutually exclusive; validated)
  lang::ExprPtr grainsize;
  lang::ExprPtr num_tasks;

  // critical
  std::string critical_name;

  /// kCancel / kCancellationPoint: the construct-type-clause, encoded as the
  /// runtime's ZOMP_CANCEL_* values (1 parallel, 2 for, 4 taskgroup) so it
  /// flows numerically through lang::Stmt::cancel_construct to the backends.
  int cancel_construct = 0;
};

}  // namespace zomp::core
