// Parser for the clause text of `//#omp ...` comments.
//
// The payload is tokenised with the ordinary MiniZig lexer (the paper reuses
// the compiler's existing parsing infrastructure the same way); clause
// arguments that are expressions — num_threads(...), if(...), schedule
// chunks — are handed to the expression parser.
#pragma once

#include <memory>
#include <string>

#include "core/directive.h"
#include "lang/source.h"

namespace zomp::core {

/// Parses the text that followed "//#omp". Returns nullptr (with diagnostics
/// reported against `loc`) on malformed input. Unknown clauses produce a
/// warning and are skipped — matching the partial-support posture of the
/// paper, where unrecognised OpenMP features must not break the build.
std::unique_ptr<Directive> parse_directive(const std::string& text,
                                           lang::SourceLoc loc,
                                           lang::Diagnostics& diags);

}  // namespace zomp::core
