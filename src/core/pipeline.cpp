#include "core/pipeline.h"

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace zomp::core {

CompileResult compile_source(std::string source, const CompileOptions& options) {
  CompileResult result;
  result.file = std::make_unique<lang::SourceFile>(options.module_name + ".mz",
                                                   std::move(source));
  lang::Lexer lexer(*result.file, result.diags);
  std::vector<lang::Token> tokens = lexer.lex();
  if (result.diags.has_errors()) return result;

  lang::Parser parser(std::move(tokens), result.diags);
  result.module = parser.parse_module(options.module_name);
  if (result.diags.has_errors()) return result;

  if (options.openmp) {
    if (!apply_openmp(*result.module, result.diags, &result.stats)) {
      return result;
    }
  }

  if (!lang::analyze(*result.module, result.diags)) return result;
  result.ok = true;
  return result;
}

}  // namespace zomp::core
