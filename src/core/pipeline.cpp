#include "core/pipeline.h"

#include <algorithm>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace zomp::core {

CompileResult compile_source(std::string source, const CompileOptions& options) {
  CompileResult result;
  result.file = std::make_unique<lang::SourceFile>(options.module_name + ".mz",
                                                   std::move(source));
  lang::Lexer lexer(*result.file, result.diags);
  std::vector<lang::Token> tokens = lexer.lex();
  if (result.diags.has_errors()) return result;

  lang::Parser parser(std::move(tokens), result.diags);
  result.module = parser.parse_module(options.module_name);
  if (result.diags.has_errors()) return result;

  PassManager pm;
  build_default_pipeline(pm, options.opt_level, options.openmp);

  const bool dump_all =
      std::find(options.dump_ir.begin(), options.dump_ir.end(), "all") !=
      options.dump_ir.end();
  PassManager::DumpHook hook;
  if (!options.dump_ir.empty()) {
    hook = [&](const std::string& pass, const lang::Module& module) {
      if (dump_all || std::find(options.dump_ir.begin(), options.dump_ir.end(),
                                pass) != options.dump_ir.end()) {
        result.ir_dumps.emplace_back(pass, lang::dump_ast(module));
      }
    };
  }

  if (!pm.run(*result.module, result.diags, result.pass_stats, hook)) {
    result.stats = result.pass_stats.transform;
    return result;
  }
  result.stats = result.pass_stats.transform;
  result.ok = true;
  return result;
}

}  // namespace zomp::core
