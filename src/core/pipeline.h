// One-call front-end pipeline: source text -> lexed -> parsed -> OpenMP
// transform -> sema. Used by the mzc driver, the interpreter-based tests,
// and the examples.
#pragma once

#include <memory>
#include <string>

#include "core/transform.h"
#include "lang/ast.h"
#include "lang/source.h"

namespace zomp::core {

struct CompileOptions {
  /// Run the OpenMP directive engine. When false, `//#omp` comments are
  /// ignored with a warning — the program compiles serially, exactly what a
  /// stock Zig compiler would do with the paper's directive comments.
  bool openmp = true;
  /// Module name used in dumps and generated code.
  std::string module_name = "main";
};

struct CompileResult {
  std::unique_ptr<lang::SourceFile> file;
  std::unique_ptr<lang::Module> module;
  lang::Diagnostics diags;
  TransformStats stats;
  bool ok = false;

  /// Rendered diagnostics (empty string if none).
  std::string diagnostics_text() const {
    return file ? diags.render(*file) : std::string();
  }
};

/// Runs the full pipeline over `source`.
CompileResult compile_source(std::string source, const CompileOptions& options = {});

}  // namespace zomp::core
