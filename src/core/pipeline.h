// One-call compile pipeline: source text -> lexed -> parsed -> pass pipeline
// (omp-lower -> sema -> optimizer passes, see core/passes.h) -> backend-ready
// module. Used by the mzc driver, the interpreter-based tests, and the
// examples.
//
// The pipeline after parsing is a PassManager (passes.h): `omp-lower` (the
// directive engine) and `sema` run as the first two passes; `opt_level >= 1`
// appends the optimizer (fold, static-spec, fuse, dce-hoist) plus a `verify`
// re-analysis. `dump_ir` captures the module's S-expression dump after any
// named pass — the observability hook behind `mzc --dump-ir=<pass>` and the
// per-pass golden tests.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/passes.h"
#include "core/transform.h"
#include "lang/ast.h"
#include "lang/source.h"

namespace zomp::core {

struct CompileOptions {
  /// Run the OpenMP directive engine. When false, `//#omp` comments are
  /// ignored with a warning — the program compiles serially, exactly what a
  /// stock Zig compiler would do with the paper's directive comments.
  bool openmp = true;
  /// Module name used in dumps and generated code.
  std::string module_name = "main";
  /// 0: lower + sema only (the historical pipeline, and the library default
  /// so AST-golden callers see byte-identical output). 1: the full optimizer
  /// (mzc's default — see tools/mzc.cpp).
  int opt_level = 0;
  /// Pass names whose post-pass IR to capture in CompileResult::ir_dumps
  /// ("all" captures every pass). See PassManager::pass_names().
  std::vector<std::string> dump_ir;
};

struct CompileResult {
  std::unique_ptr<lang::SourceFile> file;
  std::unique_ptr<lang::Module> module;
  lang::Diagnostics diags;
  /// Directive-engine counters (omp-lower stage); alias of
  /// pass_stats.transform kept for existing callers.
  TransformStats stats;
  /// Full pipeline counters, including the optimizer passes.
  PassStats pass_stats;
  /// (pass name, dump_ast text) in execution order, for the passes requested
  /// via CompileOptions::dump_ir.
  std::vector<std::pair<std::string, std::string>> ir_dumps;
  bool ok = false;

  /// Rendered diagnostics (empty string if none).
  std::string diagnostics_text() const {
    return file ? diags.render(*file) : std::string();
  }
};

/// Runs the full pipeline over `source`.
CompileResult compile_source(std::string source, const CompileOptions& options = {});

}  // namespace zomp::core
