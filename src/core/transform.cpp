#include "core/transform.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/capture.h"
#include "core/directive_parser.h"
#include "lang/clone.h"

namespace zomp::core {

using lang::CaptureArg;
using lang::CaptureMode;
using lang::Expr;
using lang::ExprPtr;
using lang::FnDecl;
using lang::Module;
using lang::ReduceOp;
using lang::Stmt;
using lang::StmtPtr;

namespace {

/// Renames every free use of `from` to `to` inside a subtree, respecting
/// shadowing (a scope that declares `from` keeps its own meaning). Used to
/// point loop bodies at the private reduction/lastprivate copies.
class Renamer {
 public:
  Renamer(std::string from, std::string to)
      : from_(std::move(from)), to_(std::move(to)) {}

  void rename(Stmt& stmt) {
    if (shadowed_) return;
    switch (stmt.kind) {
      case Stmt::Kind::kBlock: {
        const bool saved = shadowed_;
        for (auto& s : stmt.stmts) {
          rename(*s);
          if (s->kind == Stmt::Kind::kVarDecl && s->name == from_) {
            shadowed_ = true;  // later statements in this block see the decl
          }
        }
        shadowed_ = saved;
        break;
      }
      case Stmt::Kind::kVarDecl:
        if (stmt.init) rename(*stmt.init);
        break;
      case Stmt::Kind::kAssign:
        rename(*stmt.lhs);
        rename(*stmt.rhs);
        break;
      case Stmt::Kind::kExprStmt:
        rename(*stmt.expr);
        break;
      case Stmt::Kind::kIf:
        rename(*stmt.expr);
        rename(*stmt.then_block);
        if (stmt.else_block) rename(*stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
        rename(*stmt.expr);
        if (stmt.step) rename(*stmt.step);
        rename(*stmt.body);
        break;
      case Stmt::Kind::kForRange: {
        rename(*stmt.expr);
        rename(*stmt.rhs);
        if (stmt.name != from_) rename(*stmt.body);
        break;
      }
      case Stmt::Kind::kReturn:
        if (stmt.expr) rename(*stmt.expr);
        break;
      case Stmt::Kind::kOmpFork:
      case Stmt::Kind::kOmpTask:
      case Stmt::Kind::kOmpTaskloop:
        for (auto& cap : stmt.captures) {
          if (cap.name == from_) cap.name = to_;
        }
        if (stmt.num_threads) rename(*stmt.num_threads);
        if (stmt.if_clause) rename(*stmt.if_clause);
        // Tasking clause expressions are evaluated in the enclosing scope.
        for (auto& dep : stmt.depends) rename(*dep.item);
        if (stmt.final_clause) rename(*stmt.final_clause);
        if (stmt.priority) rename(*stmt.priority);
        if (stmt.grainsize) rename(*stmt.grainsize);
        if (stmt.num_tasks) rename(*stmt.num_tasks);
        if (stmt.kind == Stmt::Kind::kOmpTaskloop) {
          rename(*stmt.expr);  // full-range lo/hi, evaluated at the call site
          rename(*stmt.rhs);
        }
        break;
      case Stmt::Kind::kOmpWsLoop: {
        if (stmt.schedule.chunk) rename(*stmt.schedule.chunk);
        // Collapsed dimensions bind their source loop variables over the
        // canonicalized body (the backends re-declare them per iteration),
        // so a matching name is shadowed exactly like a kForRange capture.
        bool shadowed = false;
        for (const auto& dim : stmt.collapse) {
          if (dim.iv == from_) shadowed = true;
        }
        if (!shadowed) rename(*stmt.body);
        break;
      }
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
      case Stmt::Kind::kOmpTaskgroup:
        rename(*stmt.body);
        break;
      case Stmt::Kind::kOmpReductionInit:
        if (stmt.target == from_) stmt.target = to_;
        break;
      case Stmt::Kind::kOmpReductionCombine:
      case Stmt::Kind::kOmpLastprivateWrite:
        if (stmt.name == from_) stmt.name = to_;
        if (stmt.target == from_) stmt.target = to_;
        break;
      default:
        break;
    }
  }

  void rename(Expr& expr) {
    if (expr.kind == Expr::Kind::kVarRef && expr.name == from_) {
      expr.name = to_;
      return;
    }
    for (auto& a : expr.args) rename(*a);
  }

 private:
  std::string from_;
  std::string to_;
  bool shadowed_ = false;
};

/// red_pack value for combine #i of a run of n (see Stmt::red_pack): the
/// head carries the run length, the rest 0. Runs longer than the
/// interpreter's fixed pack payload (16 entries) degrade to per-variable
/// rendezvous — correct, just not packed.
int pack_len(std::size_t i, std::size_t n) {
  constexpr std::size_t kMaxPack = 16;
  if (n > kMaxPack) return 1;
  return i == 0 ? static_cast<int>(n) : 0;
}

lang::ScheduleSpec clone_schedule(const lang::ScheduleSpec& spec) {
  lang::ScheduleSpec out;
  out.kind = spec.kind;
  if (spec.chunk) out.chunk = lang::clone_expr(*spec.chunk);
  return out;
}

// -- Small AST builders for the collapse canonicalization ---------------------

ExprPtr make_var(const std::string& name, lang::SourceLoc loc) {
  auto e = Expr::make(Expr::Kind::kVarRef, loc);
  e->name = name;
  return e;
}

ExprPtr make_int(std::int64_t value, lang::SourceLoc loc) {
  auto e = Expr::make(Expr::Kind::kIntLit, loc);
  e->int_value = value;
  return e;
}

ExprPtr make_bin(lang::BinOp op, ExprPtr lhs, ExprPtr rhs,
                 lang::SourceLoc loc) {
  auto e = Expr::make(Expr::Kind::kBinary, loc);
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_max(ExprPtr a, ExprPtr b, lang::SourceLoc loc) {
  auto e = Expr::make(Expr::Kind::kBuiltinCall, loc);
  e->builtin = lang::Builtin::kMax;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

StmtPtr make_const_decl(const std::string& name, ExprPtr init,
                        lang::SourceLoc loc) {
  auto decl = Stmt::make(Stmt::Kind::kVarDecl, loc);
  decl->name = name;
  decl->is_const = true;
  decl->init = std::move(init);
  return decl;
}

/// Collects every variable name referenced by `expr` into `out`.
void collect_var_refs(const Expr& expr, std::vector<std::string>& out) {
  if (expr.kind == Expr::Kind::kVarRef) out.push_back(expr.name);
  for (const auto& a : expr.args) collect_var_refs(*a, out);
}

class Transformer {
 public:
  Transformer(Module& module, lang::Diagnostics& diags, TransformStats& stats)
      : module_(module), diags_(diags), stats_(stats) {}

  bool run() {
    names_ = ModuleNames::collect(module_);
    // Module functions grow while we scan (outlined functions are appended
    // and themselves scanned for nested regions); index loop on purpose.
    for (std::size_t i = 0; i < module_.functions.size(); ++i) {
      FnDecl* fn = module_.functions[i].get();
      if (fn->body) scan_block(fn, *fn->body);
    }
    return !failed_;
  }

 private:
  void error(lang::SourceLoc loc, const std::string& message) {
    diags_.error(loc, message);
    failed_ = true;
  }

  // -- Scanning ----------------------------------------------------------------

  void scan_block(FnDecl* fn, Stmt& block) {
    for (auto& slot : block.stmts) {
      if (!slot->pending_directives.empty()) {
        apply_pending(fn, slot);
      }
      scan_children(fn, *slot);
    }
  }

  void scan_children(FnDecl* fn, Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        scan_block(fn, stmt);
        break;
      case Stmt::Kind::kIf:
        scan_children(fn, *stmt.then_block);
        if (stmt.else_block) scan_children(fn, *stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kForRange:
        scan_children(fn, *stmt.body);
        break;
      case Stmt::Kind::kOmpWsLoop:
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
      case Stmt::Kind::kOmpTaskgroup:
        scan_children(fn, *stmt.body);
        break;
      default:
        break;
    }
  }

  void apply_pending(FnDecl* fn, StmtPtr& slot) {
    auto pending = std::move(slot->pending_directives);
    slot->pending_directives.clear();
    std::vector<std::unique_ptr<Directive>> directives;
    for (auto& [text, loc] : pending) {
      ++stats_.directives_seen;
      auto d = parse_directive(text, loc, diags_);
      if (!d) {
        failed_ = true;
        continue;
      }
      directives.push_back(std::move(d));
    }
    // Directives written above a statement nest outside-in; apply the
    // innermost (closest to the statement) first.
    StmtPtr current = std::move(slot);
    for (auto it = directives.rbegin(); it != directives.rend(); ++it) {
      current = apply_directive(fn, **it, std::move(current));
    }
    slot = std::move(current);
  }

  // -- Directive application -----------------------------------------------------

  StmtPtr apply_directive(FnDecl* fn, Directive& d, StmtPtr stmt) {
    switch (d.kind) {
      case DirectiveKind::kParallel:
        return lower_parallel(fn, d, std::move(stmt));
      case DirectiveKind::kParallelFor: {
        if (stmt->kind != Stmt::Kind::kForRange) {
          error(d.loc, "'parallel for' must immediately precede a for loop");
          return stmt;
        }
        StmtPtr ws = lower_for(fn, d, std::move(stmt));
        auto region = Stmt::make(Stmt::Kind::kBlock, d.loc);
        region->stmts.push_back(std::move(ws));
        // Reductions were already attached at the worksharing level; the
        // parallel level re-captures the same variables as reduction
        // pointers via lower_parallel's clause handling.
        return lower_parallel(fn, d, std::move(region));
      }
      case DirectiveKind::kFor:
        if (stmt->kind != Stmt::Kind::kForRange) {
          error(d.loc, "'for' must immediately precede a for loop");
          return stmt;
        }
        return lower_for(fn, d, std::move(stmt));
      case DirectiveKind::kBarrier:
      case DirectiveKind::kTaskwait:
      case DirectiveKind::kCancel:
      case DirectiveKind::kCancellationPoint: {
        // Standalone directives: the parser attached them to the *following*
        // statement (or to an empty placeholder at block end); the construct
        // precedes that statement rather than consuming it.
        Stmt::Kind kind = Stmt::Kind::kOmpBarrier;
        switch (d.kind) {
          case DirectiveKind::kTaskwait: kind = Stmt::Kind::kOmpTaskwait; break;
          case DirectiveKind::kCancel: kind = Stmt::Kind::kOmpCancel; break;
          case DirectiveKind::kCancellationPoint:
            kind = Stmt::Kind::kOmpCancellationPoint;
            break;
          default: break;
        }
        auto node = Stmt::make(kind, d.loc);
        node->cancel_construct = d.cancel_construct;
        if (is_empty_placeholder(*stmt)) return node;
        auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
        block->stmts.push_back(std::move(node));
        block->stmts.push_back(std::move(stmt));
        return block;
      }
      case DirectiveKind::kCritical: {
        auto node = Stmt::make(Stmt::Kind::kOmpCritical, d.loc);
        node->name = d.critical_name;
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kSingle: {
        auto node = Stmt::make(Stmt::Kind::kOmpSingle, d.loc);
        node->nowait = d.nowait;
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kMaster: {
        auto node = Stmt::make(Stmt::Kind::kOmpMaster, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kOrdered: {
        auto node = Stmt::make(Stmt::Kind::kOmpOrdered, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kAtomic: {
        if (stmt->kind != Stmt::Kind::kAssign ||
            stmt->assign_op == Stmt::AssignOp::kPlain) {
          error(d.loc,
                "'atomic' must precede a compound assignment (x += expr "
                "and friends)");
          return stmt;
        }
        auto node = Stmt::make(Stmt::Kind::kOmpAtomic, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kTask:
        return lower_task(fn, d, std::move(stmt));
      case DirectiveKind::kTaskgroup: {
        auto node = Stmt::make(Stmt::Kind::kOmpTaskgroup, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kTaskloop:
        if (stmt->kind != Stmt::Kind::kForRange) {
          error(d.loc, "'taskloop' must immediately precede a for loop");
          return stmt;
        }
        return lower_taskloop(fn, d, std::move(stmt));
    }
    return stmt;
  }

  static bool is_empty_placeholder(const Stmt& stmt) {
    return stmt.kind == Stmt::Kind::kBlock && stmt.stmts.empty();
  }

  // -- parallel -------------------------------------------------------------------

  StmtPtr lower_parallel(FnDecl* fn, Directive& d, StmtPtr region) {
    ++stats_.regions_outlined;
    // Capture set: free variables of the region, in first-use order, plus
    // clause-listed names the body never mentions.
    const std::vector<FreeVar> free_detailed =
        free_variables_detailed(*region, names_);
    std::vector<std::string> captured;
    captured.reserve(free_detailed.size());
    for (const auto& fv : free_detailed) captured.push_back(fv.name);
    std::unordered_set<std::string> seen(captured.begin(), captured.end());
    auto add_clause_names = [&](const std::vector<std::string>& list) {
      for (const auto& n : list) {
        if (seen.insert(n).second) captured.push_back(n);
      }
    };
    add_clause_names(d.shared_vars);
    add_clause_names(d.private_vars);
    add_clause_names(d.firstprivate_vars);
    for (const auto& r : d.reductions) add_clause_names(r.vars);

    // Classify every capture against the data-sharing clauses.
    std::unordered_map<std::string, CaptureMode> mode;
    std::unordered_map<std::string, ReduceOp> red_op;
    for (const auto& n : d.private_vars) mode[n] = CaptureMode::kValue;
    for (const auto& n : d.firstprivate_vars) mode[n] = CaptureMode::kValue;
    for (const auto& n : d.shared_vars) {
      if (mode.contains(n)) {
        error(d.loc, "variable '" + n + "' appears in multiple data-sharing clauses");
      }
      mode[n] = CaptureMode::kSharedPtr;
    }
    for (const auto& r : d.reductions) {
      for (const auto& n : r.vars) {
        if (mode.contains(n)) {
          error(d.loc, "reduction variable '" + n + "' also appears in another clause");
        }
        mode[n] = CaptureMode::kReductionPtr;
        red_op[n] = r.op;
      }
    }
    for (const auto& n : captured) {
      if (mode.contains(n)) continue;
      if (d.default_mode == DefaultKind::kNone) {
        report_default_none_violation(d, n, free_detailed, *region);
      }
      mode[n] = CaptureMode::kSharedPtr;  // default(shared)
    }

    // Synthesize the outlined function.
    FnDecl* outlined = new_outlined_fn(fn, "parallel");
    auto body = Stmt::make(Stmt::Kind::kBlock, d.loc);
    // Reduction prolog: private accumulator, named like the variable so the
    // region body's references resolve to it; the shared target rides in the
    // renamed pointer-carrying parameter.
    std::vector<std::string> reduction_names;
    for (const auto& n : captured) {
      if (mode[n] != CaptureMode::kReductionPtr) continue;
      reduction_names.push_back(n);
      auto init = Stmt::make(Stmt::Kind::kOmpReductionInit, d.loc);
      init->name = n;
      init->target = n + "__red";
      init->reduce_op = red_op[n];
      body->stmts.push_back(std::move(init));
    }
    body->stmts.push_back(std::move(region));
    // All of the construct's combines are emitted adjacently and the first
    // carries the run length: backends pack the run into ONE zomp_reduce
    // rendezvous (struct payload, one barrier-equivalent for k variables —
    // see runtime/reduce.h). Runs past the pack cap fall back to per-var
    // rendezvous, which only bounds the interpreter's fixed payload.
    for (std::size_t i = 0; i < reduction_names.size(); ++i) {
      const auto& n = reduction_names[i];
      auto combine = Stmt::make(Stmt::Kind::kOmpReductionCombine, d.loc);
      combine->name = n;
      combine->target = n + "__red";
      combine->reduce_op = red_op[n];
      combine->red_pack = pack_len(i, reduction_names.size());
      body->stmts.push_back(std::move(combine));
      // Region-end join barrier publishes the combined value.
    }
    for (const auto& n : captured) {
      lang::Param param;
      param.name = mode[n] == CaptureMode::kReductionPtr ? n + "__red" : n;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    outlined->body = std::move(body);
    // Remember each parameter's sharing mode: tasks nested in this region
    // inherit shared-ness for these names (OpenMP's task data-sharing rule).
    for (const auto& n : captured) {
      outlined_modes_[outlined][n] = mode[n];
    }

    // Replace the region with the fork.
    auto fork = Stmt::make(Stmt::Kind::kOmpFork, d.loc);
    fork->callee = outlined->name;
    for (const auto& n : captured) {
      CaptureArg cap;
      cap.name = n;
      cap.mode = mode[n];
      if (cap.mode == CaptureMode::kReductionPtr) cap.reduce_op = red_op[n];
      fork->captures.push_back(std::move(cap));
    }
    if (d.num_threads) fork->num_threads = std::move(d.num_threads);
    if (d.if_clause) fork->if_clause = std::move(d.if_clause);
    if (d.proc_bind != ProcBindKind::kUnspecified) {
      fork->proc_bind = static_cast<int>(d.proc_bind);
    }
    return fork;
  }

  /// How a region uses a variable, for the default(none) suggestion.
  enum class UseKind { kRead, kWrite, kCompound };

  /// Finds the strongest use of `name` in `stmt`: a compound assignment
  /// (candidate reduction) beats a plain write beats a read. Shadowing is
  /// deliberately ignored — this only shapes a diagnostic suggestion.
  static void scan_use(const Stmt& stmt, const std::string& name,
                       UseKind& kind, Stmt::AssignOp& op) {
    if (stmt.kind == Stmt::Kind::kAssign && stmt.lhs != nullptr &&
        stmt.lhs->kind == Expr::Kind::kVarRef && stmt.lhs->name == name) {
      if (stmt.assign_op != Stmt::AssignOp::kPlain) {
        kind = UseKind::kCompound;
        op = stmt.assign_op;
      } else if (kind == UseKind::kRead) {
        kind = UseKind::kWrite;
      }
    }
    for (const auto& s : stmt.stmts) scan_use(*s, name, kind, op);
    for (const Stmt* child :
         {stmt.then_block.get(), stmt.else_block.get(), stmt.step.get(),
          stmt.body.get()}) {
      if (child != nullptr) scan_use(*child, name, kind, op);
    }
  }

  /// The default(none) diagnostic: point at the variable's first use inside
  /// the region and suggest the clauses that would make it legal.
  void report_default_none_violation(const Directive& d, const std::string& n,
                                     const std::vector<FreeVar>& free_detailed,
                                     const Stmt& region) {
    lang::SourceLoc use_loc = d.loc;
    for (const auto& fv : free_detailed) {
      if (fv.name == n) {
        use_loc = fv.first_use;
        break;
      }
    }
    UseKind kind = UseKind::kRead;
    Stmt::AssignOp op = Stmt::AssignOp::kPlain;
    scan_use(region, n, kind, op);
    std::string suggestion;
    switch (kind) {
      case UseKind::kRead:
        suggestion = "it is only read — add 'shared(" + n +
                     ")' or 'firstprivate(" + n + ")'";
        break;
      case UseKind::kWrite:
        suggestion = "it is assigned — add 'private(" + n + ")' or 'shared(" +
                     n + ")' (with synchronisation)";
        break;
      case UseKind::kCompound: {
        const char* red_op = nullptr;
        switch (op) {
          case Stmt::AssignOp::kAdd: red_op = "+"; break;
          case Stmt::AssignOp::kSub: red_op = "-"; break;
          case Stmt::AssignOp::kMul: red_op = "*"; break;
          default: break;
        }
        suggestion = "it accumulates — add ";
        if (red_op != nullptr) {
          suggestion += "'reduction(" + std::string(red_op) + ": " + n +
                        ")', or ";
        }
        suggestion += "'shared(" + n + ")' (with synchronisation) or 'private(" +
                      n + ")'";
        break;
      }
    }
    error(use_loc, "default(none): variable '" + n +
                       "' needs an explicit data-sharing clause on the "
                       "enclosing '" +
                       directive_kind_name(d.kind) + "' directive (line " +
                       std::to_string(d.loc.line) + "); " + suggestion);
  }

  // -- worksharing loop ---------------------------------------------------------

  /// Rewrites a perfectly-nested rectangular `collapse(n)` nest into a single
  /// loop over the linearized space [0, N1*...*Nn), filling `ws.collapse`
  /// with the per-dimension metadata the backends need and `prolog` with the
  /// synthesized bound / extent / stride / total declarations. Returns the
  /// canonicalized loop, or the original nest (with diagnostics) when the
  /// nest does not qualify.
  StmtPtr canonicalize_collapse(Directive& d, StmtPtr outer, Stmt& ws,
                                std::vector<StmtPtr>& prolog) {
    const int depth = d.collapse;
    std::vector<Stmt*> levels{outer.get()};
    std::unordered_set<std::string> iv_names{outer->name};
    for (int k = 1; k < depth; ++k) {
      Stmt& parent = *levels.back();
      Stmt* body = parent.body.get();
      Stmt* inner = nullptr;
      if (body->kind == Stmt::Kind::kForRange) {
        inner = body;
      } else if (body->kind == Stmt::Kind::kBlock && body->stmts.size() == 1 &&
                 body->stmts[0]->kind == Stmt::Kind::kForRange) {
        inner = body->stmts[0].get();
      }
      if (inner == nullptr) {
        error(d.loc, "collapse(" + std::to_string(depth) +
                         ") requires a perfectly nested loop: the body of "
                         "loop '" +
                         parent.name +
                         "' must be exactly one inner for loop (depth " +
                         std::to_string(k + 1) + " is missing)");
        return outer;
      }
      if (!inner->pending_directives.empty()) {
        error(d.loc,
              "collapse(...): directives are not allowed between the "
              "collapsed loops");
        return outer;
      }
      if (!iv_names.insert(inner->name).second) {
        error(d.loc, "collapse(...): loop variables must be distinct ('" +
                         inner->name + "' repeats)");
        return outer;
      }
      levels.push_back(inner);
    }

    // Rectangularity: no inner bound may reference an outer loop variable —
    // the linearized trip count is evaluated once, before the loop.
    for (std::size_t k = 1; k < levels.size(); ++k) {
      std::vector<std::string> refs;
      collect_var_refs(*levels[k]->expr, refs);
      collect_var_refs(*levels[k]->rhs, refs);
      for (const auto& r : refs) {
        for (std::size_t outer_k = 0; outer_k < k; ++outer_k) {
          if (r == levels[outer_k]->name) {
            error(d.loc,
                  "collapse(...) requires a rectangular iteration space: a "
                  "bound of loop '" +
                      levels[k]->name + "' references outer loop variable '" +
                      r + "'");
            return outer;
          }
        }
      }
    }

    const std::string tag = "__omp_c" + std::to_string(collapse_counter_++);
    auto dim_name = [&](int k, const char* suffix) {
      return tag + "_d" + std::to_string(k) + suffix;
    };
    // Per-dimension lower bound and extent. The extent clamps at zero so one
    // degenerate dimension empties the whole linearized space (and keeps the
    // stride products non-negative).
    for (int k = 0; k < depth; ++k) {
      Stmt& level = *levels[static_cast<std::size_t>(k)];
      prolog.push_back(
          make_const_decl(dim_name(k, "_lo"), std::move(level.expr), d.loc));
      prolog.push_back(make_const_decl(
          dim_name(k, "_n"),
          make_max(make_bin(lang::BinOp::kSub, std::move(level.rhs),
                            make_var(dim_name(k, "_lo"), d.loc), d.loc),
                   make_int(0, d.loc), d.loc),
          d.loc));
    }
    // Strides, innermost first (1), each the product of the inner extents.
    for (int k = depth - 1; k >= 0; --k) {
      ExprPtr init =
          k == depth - 1
              ? make_int(1, d.loc)
              : make_bin(lang::BinOp::kMul, make_var(dim_name(k + 1, "_s"), d.loc),
                         make_var(dim_name(k + 1, "_n"), d.loc), d.loc);
      prolog.push_back(make_const_decl(dim_name(k, "_s"), std::move(init), d.loc));
    }
    prolog.push_back(make_const_decl(
        tag + "_total",
        make_bin(lang::BinOp::kMul, make_var(dim_name(0, "_s"), d.loc),
                 make_var(dim_name(0, "_n"), d.loc), d.loc),
        d.loc));

    for (int k = 0; k < depth; ++k) {
      lang::CollapseDim dim;
      dim.iv = levels[static_cast<std::size_t>(k)]->name;
      dim.lo = dim_name(k, "_lo");
      dim.extent = dim_name(k, "_n");
      dim.stride = dim_name(k, "_s");
      ws.collapse.push_back(std::move(dim));
    }

    // The canonical loop: a fresh linearized induction variable over the
    // flat space, carrying the innermost body. The original induction
    // variables are recomputed per logical iteration by the backends from
    // ws.collapse (iv = lo + (flat / stride) % extent).
    auto flat = Stmt::make(Stmt::Kind::kForRange, outer->loc);
    flat->name = tag + "_flat";
    flat->expr = make_int(0, d.loc);
    flat->rhs = make_var(tag + "_total", d.loc);
    flat->body = std::move(levels.back()->body);
    return flat;
  }

  StmtPtr lower_for(FnDecl* fn, Directive& d, StmtPtr loop) {
    (void)fn;
    ++stats_.ws_loops;
    const bool standalone = d.kind == DirectiveKind::kFor;

    auto ws = Stmt::make(Stmt::Kind::kOmpWsLoop, d.loc);
    ws->schedule = clone_schedule(d.schedule);
    ws->ordered = d.ordered;

    // collapse(n>1): linearize the nest first so lastprivate / reduction
    // rewrites below see one canonical loop and the existing static /
    // dynamic / guided machinery distributes the flat space unchanged.
    std::vector<StmtPtr> prolog;
    if (d.collapse > 1) {
      loop = canonicalize_collapse(d, std::move(loop), *ws, prolog);
    }

    // Names bound by the associated loop itself. A clause naming one of
    // them is meaningless here: MiniZig loop variables are per-iteration
    // constants with no post-loop value (Zig `for (a..b) |i|` scoping), so
    // privatizing them would silently produce zeros — reject instead.
    std::vector<std::string> iv_names;
    if (!ws->collapse.empty()) {
      for (const auto& dim : ws->collapse) iv_names.push_back(dim.iv);
    } else {
      iv_names.push_back(loop->name);
    }
    auto is_loop_iv = [&](const std::string& n) {
      return std::find(iv_names.begin(), iv_names.end(), n) != iv_names.end();
    };
    for (const auto& n : d.lastprivate_vars) {
      if (is_loop_iv(n)) {
        error(d.loc, "lastprivate variable '" + n +
                         "' is a loop variable of the associated loop; "
                         "MiniZig loop variables are per-iteration constants "
                         "with no post-loop value");
      }
    }
    for (const auto& r : d.reductions) {
      for (const auto& n : r.vars) {
        if (is_loop_iv(n)) {
          error(d.loc, "reduction variable '" + n +
                           "' is a loop variable of the associated loop");
        }
      }
    }
    // Renames body references of `from` to the private copy `to`. The
    // loop-control expressions are excluded on purpose: bounds are evaluated
    // at construct entry against the *original* variable (renaming them
    // would read the value-initialized private copy). A name bound by the
    // loop itself is shadowed throughout the body — nothing to rename (and
    // the clause was rejected above).
    auto rename_in_body = [&](const std::string& from, const std::string& to) {
      if (is_loop_iv(from) || loop->name == from) return;
      Renamer renamer(from, to);
      renamer.rename(*loop->body);
    };

    // lastprivate: loop runs on a private copy; the runtime's last-iteration
    // flag guards the writeback. (The last linearized iteration of a
    // collapsed nest is the sequentially-last logical iteration, so the
    // same flag is correct there.)
    for (const auto& n : d.lastprivate_vars) {
      const std::string priv = n + "__lp";
      auto decl = Stmt::make(Stmt::Kind::kVarDecl, d.loc);
      decl->name = priv;
      // The init names the source variable so sema can type the private
      // copy, but it is a type hint only: backends value-initialize.
      // Actually reading the shared variable here would race the
      // lastprivate writeback of a member that finished a nowait loop
      // (lastprivate's pre-last value is unspecified, so a zero is legal).
      auto init = Expr::make(Expr::Kind::kVarRef, d.loc);
      init->name = n;
      decl->init = std::move(init);
      decl->init_is_type_hint = true;
      prolog.push_back(std::move(decl));
      rename_in_body(n, priv);
      ws->lastprivate.emplace_back(priv, n);
    }

    if (standalone && !d.reductions.empty()) {
      // `omp for reduction(...)` inside an existing region: private
      // accumulator, then the team's tree combine into the visible
      // variable, then a barrier (unless nowait).
      auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
      std::vector<std::pair<std::string, ReduceOp>> combines;
      for (const auto& r : d.reductions) {
        for (const auto& n : r.vars) {
          const std::string priv = n + "__prv";
          auto init = Stmt::make(Stmt::Kind::kOmpReductionInit, d.loc);
          init->name = priv;
          init->target = n;
          init->reduce_op = r.op;
          block->stmts.push_back(std::move(init));
          rename_in_body(n, priv);
          combines.emplace_back(n, r.op);
        }
      }
      for (auto& p : prolog) block->stmts.push_back(std::move(p));
      ws->nowait = true;  // combine first, then barrier below
      ws->body = std::move(loop);
      block->stmts.push_back(std::move(ws));
      // Adjacent combines, head carries the run length: one packed
      // rendezvous for the whole construct (see lower_parallel).
      for (std::size_t i = 0; i < combines.size(); ++i) {
        const auto& [n, op] = combines[i];
        auto combine = Stmt::make(Stmt::Kind::kOmpReductionCombine, d.loc);
        combine->name = n + "__prv";
        combine->target = n;
        combine->reduce_op = op;
        combine->red_pack = pack_len(i, combines.size());
        block->stmts.push_back(std::move(combine));
      }
      if (!d.nowait) {
        block->stmts.push_back(Stmt::make(Stmt::Kind::kOmpBarrier, d.loc));
      }
      return block;
    }

    ws->nowait = standalone ? d.nowait : true;  // combined form: join barrier suffices
    ws->body = std::move(loop);
    if (prolog.empty()) return ws;
    auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
    for (auto& p : prolog) block->stmts.push_back(std::move(p));
    block->stmts.push_back(std::move(ws));
    return block;
  }

  // -- task -----------------------------------------------------------------------

  /// Task data-sharing (OpenMP 5.2 rules, name-approximated at preprocess
  /// time): explicit clauses win; otherwise a variable that is *shared in
  /// the enclosing region* (a shared-mode parameter of the enclosing
  /// outlined function) stays shared, and everything else is firstprivate.
  /// Shared by `task` and `taskloop` lowering.
  CaptureMode task_mode_of(FnDecl* fn, const Directive& d,
                           const std::string& n) {
    for (const auto& p : d.private_vars) {
      if (p == n) return CaptureMode::kValue;
    }
    for (const auto& p : d.firstprivate_vars) {
      if (p == n) return CaptureMode::kValue;
    }
    for (const auto& p : d.shared_vars) {
      if (p == n) return CaptureMode::kSharedPtr;
    }
    if (const auto fn_it = outlined_modes_.find(fn);
        fn_it != outlined_modes_.end()) {
      if (const auto it = fn_it->second.find(n); it != fn_it->second.end()) {
        if (it->second == CaptureMode::kSharedPtr ||
            it->second == CaptureMode::kSharedSlice) {
          return it->second;
        }
      }
    }
    return CaptureMode::kValue;
  }

  StmtPtr lower_task(FnDecl* fn, Directive& d, StmtPtr region) {
    ++stats_.tasks_outlined;
    std::vector<std::string> captured = free_variables(*region, names_);
    std::unordered_set<std::string> seen(captured.begin(), captured.end());
    auto add_names = [&](const std::vector<std::string>& list) {
      for (const auto& n : list) {
        if (seen.insert(n).second) captured.push_back(n);
      }
    };
    add_names(d.firstprivate_vars);
    add_names(d.private_vars);
    add_names(d.shared_vars);

    FnDecl* outlined = new_outlined_fn(fn, "task");
    for (const auto& n : captured) {
      lang::Param param;
      param.name = n;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    auto body = Stmt::make(Stmt::Kind::kBlock, d.loc);
    body->stmts.push_back(std::move(region));
    outlined->body = std::move(body);

    auto task = Stmt::make(Stmt::Kind::kOmpTask, d.loc);
    task->callee = outlined->name;
    for (const auto& n : captured) {
      CaptureArg cap;
      cap.name = n;
      cap.mode = task_mode_of(fn, d, n);
      task->captures.push_back(std::move(cap));
      outlined_modes_[outlined][n] = cap.mode;  // nested tasks inherit
    }
    if (d.if_clause) task->if_clause = std::move(d.if_clause);
    // Dependence items stay expressions on the task node: the backends
    // evaluate them to addresses at creation time, in the enclosing scope
    // (NOT inside the outlined function).
    for (auto& clause : d.depends) {
      const int kind = clause.kind == DependKind::kIn    ? 1
                       : clause.kind == DependKind::kOut ? 2
                                                         : 3;
      for (auto& item : clause.items) {
        Stmt::OmpDepend dep;
        dep.kind = kind;
        dep.item = std::move(item);
        task->depends.push_back(std::move(dep));
      }
    }
    if (d.final_clause) task->final_clause = std::move(d.final_clause);
    if (d.priority) task->priority = std::move(d.priority);
    task->untied = d.untied;
    return task;
  }

  // -- taskloop ---------------------------------------------------------------------

  /// Lowers `taskloop` by outlining ONE chunked task body over synthesized
  /// chunk bounds — the collapse-style canonicalization applied to tasking:
  /// the associated loop becomes `for (chunk_lo .. chunk_hi) |iv|` inside
  /// the outlined function, whose last two parameters carry the bounds, and
  /// the runtime (Team::taskloop) splits the full range into chunk tasks
  /// inside an implicit taskgroup.
  StmtPtr lower_taskloop(FnDecl* fn, Directive& d, StmtPtr loop) {
    ++stats_.tasks_outlined;
    const std::string iv = loop->name;
    // Clauses naming the loop variable are meaningless (MiniZig loop
    // variables are per-iteration constants private to the loop) — reject,
    // mirroring the worksharing-loop diagnostics.
    for (const auto* list :
         {&d.private_vars, &d.firstprivate_vars, &d.shared_vars}) {
      for (const auto& n : *list) {
        if (n == iv) {
          error(d.loc, "variable '" + n +
                           "' is the loop variable of the associated loop "
                           "and cannot appear in a data-sharing clause");
        }
      }
    }

    const std::string tag = "__omp_tl" + std::to_string(taskloop_counter_++);
    const std::string lo_name = tag + "_lo";
    const std::string hi_name = tag + "_hi";

    // The outlined chunk body: for (chunk_lo .. chunk_hi) |iv| { body }.
    auto chunk_loop = Stmt::make(Stmt::Kind::kForRange, loop->loc);
    chunk_loop->name = iv;
    chunk_loop->expr = make_var(lo_name, d.loc);
    chunk_loop->rhs = make_var(hi_name, d.loc);
    chunk_loop->body = std::move(loop->body);

    // Captures: free variables of the chunk body (minus the synthesized
    // bound names, which become parameters) plus clause-only names.
    std::vector<std::string> captured;
    for (auto& name : free_variables(*chunk_loop, names_)) {
      if (name != lo_name && name != hi_name) captured.push_back(std::move(name));
    }
    std::unordered_set<std::string> seen(captured.begin(), captured.end());
    auto add_names = [&](const std::vector<std::string>& list) {
      for (const auto& n : list) {
        if (n != iv && seen.insert(n).second) captured.push_back(n);
      }
    };
    add_names(d.firstprivate_vars);
    add_names(d.private_vars);
    add_names(d.shared_vars);

    FnDecl* outlined = new_outlined_fn(fn, "taskloop");
    for (const auto& n : captured) {
      lang::Param param;
      param.name = n;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    // Chunk bounds ride as the LAST two parameters (i64 by value; sema
    // types them at the taskloop site).
    for (const std::string* bound : {&lo_name, &hi_name}) {
      lang::Param param;
      param.name = *bound;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    auto body = Stmt::make(Stmt::Kind::kBlock, d.loc);
    body->stmts.push_back(std::move(chunk_loop));
    outlined->body = std::move(body);

    auto node = Stmt::make(Stmt::Kind::kOmpTaskloop, d.loc);
    node->callee = outlined->name;
    node->expr = std::move(loop->expr);  // full-range lo, creation-site scope
    node->rhs = std::move(loop->rhs);    // full-range hi
    for (const auto& n : captured) {
      CaptureArg cap;
      cap.name = n;
      cap.mode = task_mode_of(fn, d, n);
      node->captures.push_back(std::move(cap));
      outlined_modes_[outlined][n] = cap.mode;  // nested tasks inherit
    }
    if (d.grainsize) node->grainsize = std::move(d.grainsize);
    if (d.num_tasks) node->num_tasks = std::move(d.num_tasks);
    return node;
  }

  FnDecl* new_outlined_fn(FnDecl* parent, const char* kind) {
    auto fn = std::make_unique<FnDecl>();
    fn->name = "__omp_" + parent->name + "_" + kind + "_" +
               std::to_string(counter_++);
    fn->is_outlined = true;
    fn->return_type = lang::Type::void_type();
    fn->loc = parent->loc;
    FnDecl* raw = fn.get();
    module_.functions.push_back(std::move(fn));
    names_.functions.insert(raw->name);
    return raw;
  }

  Module& module_;
  lang::Diagnostics& diags_;
  TransformStats& stats_;
  ModuleNames names_;
  /// Sharing mode of each outlined function's parameters, by source name —
  /// consulted when lowering tasks nested inside that function.
  std::unordered_map<const FnDecl*, std::unordered_map<std::string, CaptureMode>>
      outlined_modes_;
  int counter_ = 0;
  int collapse_counter_ = 0;
  int taskloop_counter_ = 0;
  bool failed_ = false;
};

}  // namespace

bool apply_openmp(lang::Module& module, lang::Diagnostics& diags,
                  TransformStats* stats) {
  TransformStats local;
  Transformer transformer(module, diags, stats != nullptr ? *stats : local);
  return transformer.run();
}

}  // namespace zomp::core
