#include "core/transform.h"

#include <unordered_map>
#include <unordered_set>

#include "core/capture.h"
#include "core/directive_parser.h"
#include "lang/clone.h"

namespace zomp::core {

using lang::CaptureArg;
using lang::CaptureMode;
using lang::Expr;
using lang::ExprPtr;
using lang::FnDecl;
using lang::Module;
using lang::ReduceOp;
using lang::Stmt;
using lang::StmtPtr;

namespace {

/// Renames every free use of `from` to `to` inside a subtree, respecting
/// shadowing (a scope that declares `from` keeps its own meaning). Used to
/// point loop bodies at the private reduction/lastprivate copies.
class Renamer {
 public:
  Renamer(std::string from, std::string to)
      : from_(std::move(from)), to_(std::move(to)) {}

  void rename(Stmt& stmt) {
    if (shadowed_) return;
    switch (stmt.kind) {
      case Stmt::Kind::kBlock: {
        const bool saved = shadowed_;
        for (auto& s : stmt.stmts) {
          rename(*s);
          if (s->kind == Stmt::Kind::kVarDecl && s->name == from_) {
            shadowed_ = true;  // later statements in this block see the decl
          }
        }
        shadowed_ = saved;
        break;
      }
      case Stmt::Kind::kVarDecl:
        if (stmt.init) rename(*stmt.init);
        break;
      case Stmt::Kind::kAssign:
        rename(*stmt.lhs);
        rename(*stmt.rhs);
        break;
      case Stmt::Kind::kExprStmt:
        rename(*stmt.expr);
        break;
      case Stmt::Kind::kIf:
        rename(*stmt.expr);
        rename(*stmt.then_block);
        if (stmt.else_block) rename(*stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
        rename(*stmt.expr);
        if (stmt.step) rename(*stmt.step);
        rename(*stmt.body);
        break;
      case Stmt::Kind::kForRange: {
        rename(*stmt.expr);
        rename(*stmt.rhs);
        if (stmt.name != from_) rename(*stmt.body);
        break;
      }
      case Stmt::Kind::kReturn:
        if (stmt.expr) rename(*stmt.expr);
        break;
      case Stmt::Kind::kOmpFork:
      case Stmt::Kind::kOmpTask:
        for (auto& cap : stmt.captures) {
          if (cap.name == from_) cap.name = to_;
        }
        if (stmt.num_threads) rename(*stmt.num_threads);
        if (stmt.if_clause) rename(*stmt.if_clause);
        break;
      case Stmt::Kind::kOmpWsLoop:
        if (stmt.schedule.chunk) rename(*stmt.schedule.chunk);
        rename(*stmt.body);
        break;
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
        rename(*stmt.body);
        break;
      case Stmt::Kind::kOmpReductionInit:
        if (stmt.target == from_) stmt.target = to_;
        break;
      case Stmt::Kind::kOmpReductionCombine:
      case Stmt::Kind::kOmpLastprivateWrite:
        if (stmt.name == from_) stmt.name = to_;
        if (stmt.target == from_) stmt.target = to_;
        break;
      default:
        break;
    }
  }

  void rename(Expr& expr) {
    if (expr.kind == Expr::Kind::kVarRef && expr.name == from_) {
      expr.name = to_;
      return;
    }
    for (auto& a : expr.args) rename(*a);
  }

 private:
  std::string from_;
  std::string to_;
  bool shadowed_ = false;
};

lang::ScheduleSpec clone_schedule(const lang::ScheduleSpec& spec) {
  lang::ScheduleSpec out;
  out.kind = spec.kind;
  if (spec.chunk) out.chunk = lang::clone_expr(*spec.chunk);
  return out;
}

class Transformer {
 public:
  Transformer(Module& module, lang::Diagnostics& diags, TransformStats& stats)
      : module_(module), diags_(diags), stats_(stats) {}

  bool run() {
    names_ = ModuleNames::collect(module_);
    // Module functions grow while we scan (outlined functions are appended
    // and themselves scanned for nested regions); index loop on purpose.
    for (std::size_t i = 0; i < module_.functions.size(); ++i) {
      FnDecl* fn = module_.functions[i].get();
      if (fn->body) scan_block(fn, *fn->body);
    }
    return !failed_;
  }

 private:
  void error(lang::SourceLoc loc, const std::string& message) {
    diags_.error(loc, message);
    failed_ = true;
  }

  // -- Scanning ----------------------------------------------------------------

  void scan_block(FnDecl* fn, Stmt& block) {
    for (auto& slot : block.stmts) {
      if (!slot->pending_directives.empty()) {
        apply_pending(fn, slot);
      }
      scan_children(fn, *slot);
    }
  }

  void scan_children(FnDecl* fn, Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        scan_block(fn, stmt);
        break;
      case Stmt::Kind::kIf:
        scan_children(fn, *stmt.then_block);
        if (stmt.else_block) scan_children(fn, *stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kForRange:
        scan_children(fn, *stmt.body);
        break;
      case Stmt::Kind::kOmpWsLoop:
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
        scan_children(fn, *stmt.body);
        break;
      default:
        break;
    }
  }

  void apply_pending(FnDecl* fn, StmtPtr& slot) {
    auto pending = std::move(slot->pending_directives);
    slot->pending_directives.clear();
    std::vector<std::unique_ptr<Directive>> directives;
    for (auto& [text, loc] : pending) {
      ++stats_.directives_seen;
      auto d = parse_directive(text, loc, diags_);
      if (!d) {
        failed_ = true;
        continue;
      }
      directives.push_back(std::move(d));
    }
    // Directives written above a statement nest outside-in; apply the
    // innermost (closest to the statement) first.
    StmtPtr current = std::move(slot);
    for (auto it = directives.rbegin(); it != directives.rend(); ++it) {
      current = apply_directive(fn, **it, std::move(current));
    }
    slot = std::move(current);
  }

  // -- Directive application -----------------------------------------------------

  StmtPtr apply_directive(FnDecl* fn, Directive& d, StmtPtr stmt) {
    switch (d.kind) {
      case DirectiveKind::kParallel:
        return lower_parallel(fn, d, std::move(stmt));
      case DirectiveKind::kParallelFor: {
        if (stmt->kind != Stmt::Kind::kForRange) {
          error(d.loc, "'parallel for' must immediately precede a for loop");
          return stmt;
        }
        StmtPtr ws = lower_for(fn, d, std::move(stmt));
        auto region = Stmt::make(Stmt::Kind::kBlock, d.loc);
        region->stmts.push_back(std::move(ws));
        // Reductions were already attached at the worksharing level; the
        // parallel level re-captures the same variables as reduction
        // pointers via lower_parallel's clause handling.
        return lower_parallel(fn, d, std::move(region));
      }
      case DirectiveKind::kFor:
        if (stmt->kind != Stmt::Kind::kForRange) {
          error(d.loc, "'for' must immediately precede a for loop");
          return stmt;
        }
        return lower_for(fn, d, std::move(stmt));
      case DirectiveKind::kBarrier:
      case DirectiveKind::kTaskwait: {
        // Standalone directives: the parser attached them to the *following*
        // statement (or to an empty placeholder at block end); the construct
        // precedes that statement rather than consuming it.
        auto node = Stmt::make(d.kind == DirectiveKind::kBarrier
                                   ? Stmt::Kind::kOmpBarrier
                                   : Stmt::Kind::kOmpTaskwait,
                               d.loc);
        if (is_empty_placeholder(*stmt)) return node;
        auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
        block->stmts.push_back(std::move(node));
        block->stmts.push_back(std::move(stmt));
        return block;
      }
      case DirectiveKind::kCritical: {
        auto node = Stmt::make(Stmt::Kind::kOmpCritical, d.loc);
        node->name = d.critical_name;
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kSingle: {
        auto node = Stmt::make(Stmt::Kind::kOmpSingle, d.loc);
        node->nowait = d.nowait;
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kMaster: {
        auto node = Stmt::make(Stmt::Kind::kOmpMaster, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kOrdered: {
        auto node = Stmt::make(Stmt::Kind::kOmpOrdered, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kAtomic: {
        if (stmt->kind != Stmt::Kind::kAssign ||
            stmt->assign_op == Stmt::AssignOp::kPlain) {
          error(d.loc,
                "'atomic' must precede a compound assignment (x += expr "
                "and friends)");
          return stmt;
        }
        auto node = Stmt::make(Stmt::Kind::kOmpAtomic, d.loc);
        node->body = std::move(stmt);
        return node;
      }
      case DirectiveKind::kTask:
        return lower_task(fn, d, std::move(stmt));
    }
    return stmt;
  }

  static bool is_empty_placeholder(const Stmt& stmt) {
    return stmt.kind == Stmt::Kind::kBlock && stmt.stmts.empty();
  }

  // -- parallel -------------------------------------------------------------------

  StmtPtr lower_parallel(FnDecl* fn, Directive& d, StmtPtr region) {
    ++stats_.regions_outlined;
    // Capture set: free variables of the region, in first-use order, plus
    // clause-listed names the body never mentions.
    std::vector<std::string> captured = free_variables(*region, names_);
    std::unordered_set<std::string> seen(captured.begin(), captured.end());
    auto add_clause_names = [&](const std::vector<std::string>& list) {
      for (const auto& n : list) {
        if (seen.insert(n).second) captured.push_back(n);
      }
    };
    add_clause_names(d.shared_vars);
    add_clause_names(d.private_vars);
    add_clause_names(d.firstprivate_vars);
    for (const auto& r : d.reductions) add_clause_names(r.vars);

    // Classify every capture against the data-sharing clauses.
    std::unordered_map<std::string, CaptureMode> mode;
    std::unordered_map<std::string, ReduceOp> red_op;
    for (const auto& n : d.private_vars) mode[n] = CaptureMode::kValue;
    for (const auto& n : d.firstprivate_vars) mode[n] = CaptureMode::kValue;
    for (const auto& n : d.shared_vars) {
      if (mode.contains(n)) {
        error(d.loc, "variable '" + n + "' appears in multiple data-sharing clauses");
      }
      mode[n] = CaptureMode::kSharedPtr;
    }
    for (const auto& r : d.reductions) {
      for (const auto& n : r.vars) {
        if (mode.contains(n)) {
          error(d.loc, "reduction variable '" + n + "' also appears in another clause");
        }
        mode[n] = CaptureMode::kReductionPtr;
        red_op[n] = r.op;
      }
    }
    for (const auto& n : captured) {
      if (mode.contains(n)) continue;
      if (d.default_mode == DefaultKind::kNone) {
        error(d.loc, "default(none): variable '" + n +
                         "' needs an explicit data-sharing clause");
      }
      mode[n] = CaptureMode::kSharedPtr;  // default(shared)
    }

    // Synthesize the outlined function.
    FnDecl* outlined = new_outlined_fn(fn, "parallel");
    auto body = Stmt::make(Stmt::Kind::kBlock, d.loc);
    // Reduction prolog: private accumulator, named like the variable so the
    // region body's references resolve to it; the shared target rides in the
    // renamed pointer-carrying parameter.
    std::vector<std::string> reduction_names;
    for (const auto& n : captured) {
      if (mode[n] != CaptureMode::kReductionPtr) continue;
      reduction_names.push_back(n);
      auto init = Stmt::make(Stmt::Kind::kOmpReductionInit, d.loc);
      init->name = n;
      init->target = n + "__red";
      init->reduce_op = red_op[n];
      body->stmts.push_back(std::move(init));
    }
    body->stmts.push_back(std::move(region));
    for (const auto& n : reduction_names) {
      auto combine = Stmt::make(Stmt::Kind::kOmpReductionCombine, d.loc);
      combine->name = n;
      combine->target = n + "__red";
      combine->reduce_op = red_op[n];
      body->stmts.push_back(std::move(combine));
      // Region-end join barrier publishes the combined value.
    }
    for (const auto& n : captured) {
      lang::Param param;
      param.name = mode[n] == CaptureMode::kReductionPtr ? n + "__red" : n;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    outlined->body = std::move(body);
    // Remember each parameter's sharing mode: tasks nested in this region
    // inherit shared-ness for these names (OpenMP's task data-sharing rule).
    for (const auto& n : captured) {
      outlined_modes_[outlined][n] = mode[n];
    }

    // Replace the region with the fork.
    auto fork = Stmt::make(Stmt::Kind::kOmpFork, d.loc);
    fork->callee = outlined->name;
    for (const auto& n : captured) {
      CaptureArg cap;
      cap.name = n;
      cap.mode = mode[n];
      if (cap.mode == CaptureMode::kReductionPtr) cap.reduce_op = red_op[n];
      fork->captures.push_back(std::move(cap));
    }
    if (d.num_threads) fork->num_threads = std::move(d.num_threads);
    if (d.if_clause) fork->if_clause = std::move(d.if_clause);
    return fork;
  }

  // -- worksharing loop ---------------------------------------------------------

  StmtPtr lower_for(FnDecl* fn, Directive& d, StmtPtr loop) {
    (void)fn;
    ++stats_.ws_loops;
    const bool standalone = d.kind == DirectiveKind::kFor;

    auto ws = Stmt::make(Stmt::Kind::kOmpWsLoop, d.loc);
    ws->schedule = clone_schedule(d.schedule);
    ws->ordered = d.ordered;

    // lastprivate: loop runs on a private copy; the runtime's last-iteration
    // flag guards the writeback.
    std::vector<StmtPtr> prolog;
    for (const auto& n : d.lastprivate_vars) {
      const std::string priv = n + "__lp";
      auto decl = Stmt::make(Stmt::Kind::kVarDecl, d.loc);
      decl->name = priv;
      // Initialise from the current value: gives the declaration a type
      // without sema support and is a legal choice for lastprivate's
      // unspecified pre-last value.
      auto init = Expr::make(Expr::Kind::kVarRef, d.loc);
      init->name = n;
      decl->init = std::move(init);
      prolog.push_back(std::move(decl));
      Renamer renamer(n, priv);
      renamer.rename(*loop);
      ws->lastprivate.emplace_back(priv, n);
    }

    if (standalone && !d.reductions.empty()) {
      // `omp for reduction(...)` inside an existing region: private
      // accumulator + critical combine into the visible variable, then a
      // barrier (unless nowait).
      auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
      std::vector<std::pair<std::string, ReduceOp>> combines;
      for (const auto& r : d.reductions) {
        for (const auto& n : r.vars) {
          const std::string priv = n + "__prv";
          auto init = Stmt::make(Stmt::Kind::kOmpReductionInit, d.loc);
          init->name = priv;
          init->target = n;
          init->reduce_op = r.op;
          block->stmts.push_back(std::move(init));
          Renamer renamer(n, priv);
          renamer.rename(*loop);
          combines.emplace_back(n, r.op);
        }
      }
      for (auto& p : prolog) block->stmts.push_back(std::move(p));
      ws->nowait = true;  // combine first, then barrier below
      ws->body = std::move(loop);
      block->stmts.push_back(std::move(ws));
      for (const auto& [n, op] : combines) {
        auto combine = Stmt::make(Stmt::Kind::kOmpReductionCombine, d.loc);
        combine->name = n + "__prv";
        combine->target = n;
        combine->reduce_op = op;
        block->stmts.push_back(std::move(combine));
      }
      if (!d.nowait) {
        block->stmts.push_back(Stmt::make(Stmt::Kind::kOmpBarrier, d.loc));
      }
      return block;
    }

    ws->nowait = standalone ? d.nowait : true;  // combined form: join barrier suffices
    ws->body = std::move(loop);
    if (prolog.empty()) return ws;
    auto block = Stmt::make(Stmt::Kind::kBlock, d.loc);
    for (auto& p : prolog) block->stmts.push_back(std::move(p));
    block->stmts.push_back(std::move(ws));
    return block;
  }

  // -- task -----------------------------------------------------------------------

  StmtPtr lower_task(FnDecl* fn, Directive& d, StmtPtr region) {
    ++stats_.tasks_outlined;
    std::vector<std::string> captured = free_variables(*region, names_);
    std::unordered_set<std::string> seen(captured.begin(), captured.end());
    auto add_names = [&](const std::vector<std::string>& list) {
      for (const auto& n : list) {
        if (seen.insert(n).second) captured.push_back(n);
      }
    };
    add_names(d.firstprivate_vars);
    add_names(d.private_vars);
    add_names(d.shared_vars);

    // Data sharing (OpenMP 5.2 task rules, name-approximated at preprocess
    // time): explicit clauses win; otherwise a variable that is *shared in
    // the enclosing region* (a shared-mode parameter of the enclosing
    // outlined function) stays shared, and everything else is firstprivate.
    const std::unordered_map<std::string, CaptureMode>* enclosing =
        outlined_modes_.contains(fn) ? &outlined_modes_[fn] : nullptr;
    auto mode_of = [&](const std::string& n) {
      for (const auto& p : d.private_vars) {
        if (p == n) return CaptureMode::kValue;
      }
      for (const auto& p : d.firstprivate_vars) {
        if (p == n) return CaptureMode::kValue;
      }
      for (const auto& p : d.shared_vars) {
        if (p == n) return CaptureMode::kSharedPtr;
      }
      if (enclosing != nullptr) {
        if (const auto it = enclosing->find(n); it != enclosing->end()) {
          if (it->second == CaptureMode::kSharedPtr ||
              it->second == CaptureMode::kSharedSlice) {
            return it->second;
          }
        }
      }
      return CaptureMode::kValue;
    };

    FnDecl* outlined = new_outlined_fn(fn, "task");
    for (const auto& n : captured) {
      lang::Param param;
      param.name = n;
      param.type = lang::Type::inferred();
      param.loc = d.loc;
      outlined->params.push_back(std::move(param));
    }
    auto body = Stmt::make(Stmt::Kind::kBlock, d.loc);
    body->stmts.push_back(std::move(region));
    outlined->body = std::move(body);

    auto task = Stmt::make(Stmt::Kind::kOmpTask, d.loc);
    task->callee = outlined->name;
    for (const auto& n : captured) {
      CaptureArg cap;
      cap.name = n;
      cap.mode = mode_of(n);
      task->captures.push_back(std::move(cap));
      outlined_modes_[outlined][n] = cap.mode;  // nested tasks inherit
    }
    if (d.if_clause) task->if_clause = std::move(d.if_clause);
    return task;
  }

  FnDecl* new_outlined_fn(FnDecl* parent, const char* kind) {
    auto fn = std::make_unique<FnDecl>();
    fn->name = "__omp_" + parent->name + "_" + kind + "_" +
               std::to_string(counter_++);
    fn->is_outlined = true;
    fn->return_type = lang::Type::void_type();
    fn->loc = parent->loc;
    FnDecl* raw = fn.get();
    module_.functions.push_back(std::move(fn));
    names_.functions.insert(raw->name);
    return raw;
  }

  Module& module_;
  lang::Diagnostics& diags_;
  TransformStats& stats_;
  ModuleNames names_;
  /// Sharing mode of each outlined function's parameters, by source name —
  /// consulted when lowering tasks nested inside that function.
  std::unordered_map<const FnDecl*, std::unordered_map<std::string, CaptureMode>>
      outlined_modes_;
  int counter_ = 0;
  bool failed_ = false;
};

}  // namespace

bool apply_openmp(lang::Module& module, lang::Diagnostics& diags,
                  TransformStats* stats) {
  TransformStats local;
  Transformer transformer(module, diags, stats != nullptr ? *stats : local);
  return transformer.run();
}

}  // namespace zomp::core
