#include "core/capture.h"

namespace zomp::core {

ModuleNames ModuleNames::collect(const lang::Module& module) {
  ModuleNames names;
  for (const auto& g : module.globals) {
    if (g->kind == lang::Stmt::Kind::kVarDecl) names.globals.insert(g->name);
  }
  for (const auto& fn : module.functions) names.functions.insert(fn->name);
  return names;
}

namespace {

using lang::Expr;
using lang::Stmt;

/// Scope-tracking walker. `bound` carries one set per lexical scope.
class FreeVarWalker {
 public:
  explicit FreeVarWalker(const ModuleNames& names) : names_(names) {}

  void walk_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kBlock:
        push();
        for (const auto& s : stmt.stmts) walk_stmt(*s);
        pop();
        break;
      case Stmt::Kind::kVarDecl:
        if (stmt.init) walk_expr(*stmt.init);
        bind(stmt.name);
        break;
      case Stmt::Kind::kAssign:
        walk_expr(*stmt.lhs);
        walk_expr(*stmt.rhs);
        break;
      case Stmt::Kind::kExprStmt:
        walk_expr(*stmt.expr);
        break;
      case Stmt::Kind::kIf:
        walk_expr(*stmt.expr);
        walk_stmt(*stmt.then_block);
        if (stmt.else_block) walk_stmt(*stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
        walk_expr(*stmt.expr);
        push();
        if (stmt.step) walk_stmt(*stmt.step);
        walk_stmt(*stmt.body);
        pop();
        break;
      case Stmt::Kind::kForRange:
        walk_expr(*stmt.expr);
        walk_expr(*stmt.rhs);
        push();
        bind(stmt.name);
        walk_stmt(*stmt.body);
        pop();
        break;
      case Stmt::Kind::kReturn:
        if (stmt.expr) walk_expr(*stmt.expr);
        break;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
      case Stmt::Kind::kOmpBarrier:
      case Stmt::Kind::kOmpTaskwait:
      case Stmt::Kind::kOmpCancel:
      case Stmt::Kind::kOmpCancellationPoint:
        break;
      case Stmt::Kind::kOmpFork:
      case Stmt::Kind::kOmpTask:
      case Stmt::Kind::kOmpTaskloop:
        // A nested fork's captures are references from this region's body,
        // as are the tasking-clause expressions (evaluated at the creation
        // point in the enclosing scope).
        for (const auto& cap : stmt.captures) reference(cap.name, stmt.loc);
        if (stmt.num_threads) walk_expr(*stmt.num_threads);
        if (stmt.if_clause) walk_expr(*stmt.if_clause);
        for (const auto& dep : stmt.depends) walk_expr(*dep.item);
        if (stmt.final_clause) walk_expr(*stmt.final_clause);
        if (stmt.priority) walk_expr(*stmt.priority);
        if (stmt.grainsize) walk_expr(*stmt.grainsize);
        if (stmt.num_tasks) walk_expr(*stmt.num_tasks);
        if (stmt.kind == Stmt::Kind::kOmpTaskloop) {
          walk_expr(*stmt.expr);  // full-range bounds
          walk_expr(*stmt.rhs);
        }
        break;
      case Stmt::Kind::kOmpWsLoop:
        if (stmt.schedule.chunk) walk_expr(*stmt.schedule.chunk);
        // Collapsed dimensions bind their source loop variables over the
        // canonicalized body (backends re-declare them per iteration).
        push();
        for (const auto& dim : stmt.collapse) bind(dim.iv);
        walk_stmt(*stmt.body);
        pop();
        for (const auto& lp : stmt.lastprivate) {
          reference(lp.first, stmt.loc);
          reference(lp.second, stmt.loc);
        }
        break;
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpSingle:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpAtomic:
      case Stmt::Kind::kOmpOrdered:
      case Stmt::Kind::kOmpTaskgroup:
        walk_stmt(*stmt.body);
        break;
      case Stmt::Kind::kOmpReductionInit:
        reference(stmt.target, stmt.loc);
        bind(stmt.name);
        break;
      case Stmt::Kind::kOmpReductionCombine:
      case Stmt::Kind::kOmpLastprivateWrite:
        reference(stmt.name, stmt.loc);
        reference(stmt.target, stmt.loc);
        break;
    }
  }

  void walk_expr(const Expr& expr) {
    if (expr.kind == Expr::Kind::kVarRef) {
      reference(expr.name, expr.loc);
      return;
    }
    for (const auto& a : expr.args) walk_expr(*a);
  }

  std::vector<FreeVar> take() { return std::move(ordered_); }

 private:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }
  void bind(const std::string& name) {
    if (scopes_.empty()) scopes_.emplace_back();
    scopes_.back().insert(name);
  }
  bool is_bound(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->contains(name)) return true;
    }
    return false;
  }
  void reference(const std::string& name, lang::SourceLoc loc) {
    if (is_bound(name)) return;
    if (names_.globals.contains(name) || names_.functions.contains(name)) return;
    if (seen_.insert(name).second) ordered_.push_back(FreeVar{name, loc});
  }

  const ModuleNames& names_;
  std::vector<std::unordered_set<std::string>> scopes_;
  std::unordered_set<std::string> seen_;
  std::vector<FreeVar> ordered_;
};

}  // namespace

std::vector<std::string> free_variables(const lang::Stmt& region,
                                        const ModuleNames& names) {
  std::vector<std::string> out;
  for (auto& fv : free_variables_detailed(region, names)) {
    out.push_back(std::move(fv.name));
  }
  return out;
}

std::vector<FreeVar> free_variables_detailed(const lang::Stmt& region,
                                             const ModuleNames& names) {
  FreeVarWalker walker(names);
  // The region body is walked without an implicit outer scope push, so
  // declarations at region top level count as bound — matching the OpenMP
  // rule that variables declared inside the construct are private to it.
  walker.walk_stmt(region);
  return walker.take();
}

}  // namespace zomp::core
