#include "core/directive_parser.h"

#include <unordered_set>
#include <utility>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace zomp::core {

using lang::Token;
using lang::TokenKind;

const char* directive_kind_name(DirectiveKind kind) {
  switch (kind) {
    case DirectiveKind::kParallel: return "parallel";
    case DirectiveKind::kFor: return "for";
    case DirectiveKind::kParallelFor: return "parallel for";
    case DirectiveKind::kBarrier: return "barrier";
    case DirectiveKind::kCritical: return "critical";
    case DirectiveKind::kSingle: return "single";
    case DirectiveKind::kMaster: return "master";
    case DirectiveKind::kAtomic: return "atomic";
    case DirectiveKind::kOrdered: return "ordered";
    case DirectiveKind::kTask: return "task";
    case DirectiveKind::kTaskwait: return "taskwait";
    case DirectiveKind::kTaskgroup: return "taskgroup";
    case DirectiveKind::kTaskloop: return "taskloop";
    case DirectiveKind::kCancel: return "cancel";
    case DirectiveKind::kCancellationPoint: return "cancellation point";
  }
  return "<invalid>";
}

namespace {

/// Token cursor over the directive payload. All diagnostics are reported at
/// the directive's comment location (clause text has no stable positions of
/// its own once it has been carved out of the comment).
class ClauseParser {
 public:
  ClauseParser(std::vector<Token> tokens, lang::SourceLoc loc,
               lang::Diagnostics& diags)
      : tokens_(std::move(tokens)), loc_(loc), diags_(diags) {}

  std::unique_ptr<Directive> parse() {
    auto directive = std::make_unique<Directive>();
    directive->loc = loc_;

    // Construct name: one or two leading identifiers.
    const std::string head = expect_word("directive name");
    if (head.empty()) return nullptr;
    if (head == "parallel") {
      if (peek_word() == "for") {
        advance();
        directive->kind = DirectiveKind::kParallelFor;
      } else {
        directive->kind = DirectiveKind::kParallel;
      }
    } else if (head == "for") {
      directive->kind = DirectiveKind::kFor;
    } else if (head == "barrier") {
      directive->kind = DirectiveKind::kBarrier;
    } else if (head == "critical") {
      directive->kind = DirectiveKind::kCritical;
      if (check(TokenKind::kLParen)) {
        advance();
        directive->critical_name = expect_word("critical section name");
        expect(TokenKind::kRParen, "')' after critical name");
      }
    } else if (head == "single") {
      directive->kind = DirectiveKind::kSingle;
    } else if (head == "master") {
      directive->kind = DirectiveKind::kMaster;
    } else if (head == "atomic") {
      directive->kind = DirectiveKind::kAtomic;
    } else if (head == "ordered") {
      directive->kind = DirectiveKind::kOrdered;
    } else if (head == "task") {
      directive->kind = DirectiveKind::kTask;
    } else if (head == "taskwait") {
      directive->kind = DirectiveKind::kTaskwait;
    } else if (head == "taskgroup") {
      directive->kind = DirectiveKind::kTaskgroup;
    } else if (head == "taskloop") {
      directive->kind = DirectiveKind::kTaskloop;
    } else if (head == "cancel") {
      directive->kind = DirectiveKind::kCancel;
      if (!parse_cancel_construct(*directive)) return nullptr;
    } else if (head == "cancellation") {
      // Two-word name, like "parallel for": `cancellation point <construct>`.
      if (peek_word() != "point") {
        error("expected 'point' after 'cancellation'");
        return nullptr;
      }
      advance();
      directive->kind = DirectiveKind::kCancellationPoint;
      if (!parse_cancel_construct(*directive)) return nullptr;
    } else {
      diags_.error(loc_, "unknown OpenMP directive '" + head + "'");
      return nullptr;
    }

    while (!at_end()) {
      if (!parse_clause(*directive)) return nullptr;
    }
    validate(*directive);
    return diags_ok_ ? std::move(directive) : nullptr;
  }

 private:
  bool at_end() const { return pos_ >= tokens_.size() || tokens_[pos_].is(TokenKind::kEof); }
  const Token& peek() const {
    static const Token eof{};
    return pos_ < tokens_.size() ? tokens_[pos_] : eof;
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ < tokens_.size()) ++pos_;
    return t;
  }
  bool check(TokenKind kind) const { return peek().is(kind); }
  bool expect(TokenKind kind, const char* what) {
    if (check(kind)) {
      advance();
      return true;
    }
    error(std::string("expected ") + what + " in directive clause");
    return false;
  }
  /// Directive words may lex as MiniZig keywords ('for', 'if'); both count.
  static bool is_word(const Token& t) {
    return t.is(TokenKind::kIdentifier) ||
           (t.kind >= TokenKind::kKwFn && t.kind <= TokenKind::kKwUndefined);
  }
  std::string peek_word() const {
    return is_word(peek()) ? peek().text : std::string();
  }
  std::string expect_word(const char* what) {
    if (is_word(peek())) return advance().text;
    error(std::string("expected ") + what);
    return "";
  }
  void error(const std::string& message) {
    diags_.error(loc_, "in '#omp' directive: " + message);
    diags_ok_ = false;
    pos_ = tokens_.size();  // stop parsing this directive
  }

  /// `cancel` / `cancellation point` take a construct-type operand naming the
  /// enclosing construct they act on. Encoded as the ZOMP_CANCEL_* values.
  bool parse_cancel_construct(Directive& d) {
    const std::string word = expect_word("construct name after 'cancel'");
    if (word.empty()) return false;
    if (word == "parallel") {
      d.cancel_construct = 1;  // ZOMP_CANCEL_PARALLEL
    } else if (word == "for") {
      d.cancel_construct = 2;  // ZOMP_CANCEL_LOOP
    } else if (word == "taskgroup") {
      d.cancel_construct = 4;  // ZOMP_CANCEL_TASKGROUP
    } else {
      error("unknown cancel construct '" + word +
            "' (expected 'parallel', 'for' or 'taskgroup')");
      return false;
    }
    return true;
  }

  /// Collects the tokens of one balanced-paren clause argument, consuming
  /// the opening and closing parentheses. Stops at `stop` tokens at depth 0.
  std::vector<Token> collect_paren_arg() {
    std::vector<Token> out;
    if (!expect(TokenKind::kLParen, "'('")) return out;
    int depth = 1;
    while (!at_end()) {
      if (check(TokenKind::kLParen)) ++depth;
      if (check(TokenKind::kRParen)) {
        --depth;
        if (depth == 0) {
          advance();
          return out;
        }
      }
      out.push_back(advance());
    }
    error("unbalanced parentheses in clause");
    return out;
  }

  /// Splits `tokens` on top-level commas.
  static std::vector<std::vector<Token>> split_commas(std::vector<Token> tokens) {
    std::vector<std::vector<Token>> groups(1);
    int depth = 0;
    for (auto& t : tokens) {
      if (t.is(TokenKind::kLParen)) ++depth;
      if (t.is(TokenKind::kRParen)) --depth;
      if (depth == 0 && t.is(TokenKind::kComma)) {
        groups.emplace_back();
      } else {
        groups.back().push_back(std::move(t));
      }
    }
    return groups;
  }

  bool parse_name_list(std::vector<std::string>& out) {
    const std::vector<Token> arg = collect_paren_arg();
    if (!diags_ok_) return false;
    for (const auto& group : split_commas(arg)) {
      if (group.size() != 1 || !group[0].is(TokenKind::kIdentifier)) {
        error("expected a comma-separated list of variable names");
        return false;
      }
      out.push_back(group[0].text);
    }
    return true;
  }

  lang::ExprPtr parse_expr_arg() {
    std::vector<Token> arg = collect_paren_arg();
    if (!diags_ok_) return nullptr;
    for (auto& t : arg) t.loc = loc_;  // all clause errors point at the comment
    return lang::Parser::parse_expression(std::move(arg), diags_);
  }

  bool parse_reduction(Directive& d) {
    std::vector<Token> arg = collect_paren_arg();
    if (!diags_ok_) return false;
    // Grammar: op ':' list. The operator token set matches the paper's
    // clause support (arithmetic, min/max, bitwise, logical).
    if (arg.empty()) {
      error("empty reduction clause");
      return false;
    }
    ReductionClause clause;
    std::size_t i = 0;
    const Token& op = arg[i++];
    switch (op.kind) {
      case TokenKind::kPlus: clause.op = lang::ReduceOp::kAdd; break;
      case TokenKind::kMinus: clause.op = lang::ReduceOp::kSub; break;
      case TokenKind::kStar: clause.op = lang::ReduceOp::kMul; break;
      case TokenKind::kAmp: clause.op = lang::ReduceOp::kBitAnd; break;
      case TokenKind::kPipe: clause.op = lang::ReduceOp::kBitOr; break;
      case TokenKind::kCaret: clause.op = lang::ReduceOp::kBitXor; break;
      case TokenKind::kKwAnd: clause.op = lang::ReduceOp::kLogAnd; break;
      case TokenKind::kKwOr: clause.op = lang::ReduceOp::kLogOr; break;
      case TokenKind::kIdentifier:
        if (op.text == "min") {
          clause.op = lang::ReduceOp::kMin;
        } else if (op.text == "max") {
          clause.op = lang::ReduceOp::kMax;
        } else {
          error("unknown reduction operator '" + op.text + "'");
          return false;
        }
        break;
      default:
        error("unknown reduction operator");
        return false;
    }
    if (i >= arg.size() || !arg[i].is(TokenKind::kColon)) {
      error("expected ':' after reduction operator");
      return false;
    }
    ++i;
    std::vector<Token> rest(arg.begin() + static_cast<std::ptrdiff_t>(i), arg.end());
    for (const auto& group : split_commas(std::move(rest))) {
      if (group.size() != 1 || !group[0].is(TokenKind::kIdentifier)) {
        error("expected variable names after ':' in reduction");
        return false;
      }
      clause.vars.push_back(group[0].text);
    }
    if (clause.vars.empty()) {
      error("reduction clause lists no variables");
      return false;
    }
    d.reductions.push_back(std::move(clause));
    return true;
  }

  bool parse_schedule(Directive& d) {
    std::vector<Token> arg = collect_paren_arg();
    if (!diags_ok_) return false;
    auto groups = split_commas(std::move(arg));
    if (groups.empty() || groups[0].size() != 1 ||
        !groups[0][0].is(TokenKind::kIdentifier)) {
      error("expected schedule kind");
      return false;
    }
    const std::string& kind = groups[0][0].text;
    if (kind == "static") {
      d.schedule.kind = lang::ScheduleSpec::Kind::kStatic;
    } else if (kind == "dynamic") {
      d.schedule.kind = lang::ScheduleSpec::Kind::kDynamic;
    } else if (kind == "guided") {
      d.schedule.kind = lang::ScheduleSpec::Kind::kGuided;
    } else if (kind == "auto") {
      d.schedule.kind = lang::ScheduleSpec::Kind::kAuto;
    } else if (kind == "runtime") {
      d.schedule.kind = lang::ScheduleSpec::Kind::kRuntime;
    } else {
      error("unknown schedule kind '" + kind + "'");
      return false;
    }
    if (groups.size() > 1) {
      if (groups.size() > 2) {
        error("too many schedule arguments");
        return false;
      }
      std::vector<Token> chunk = groups[1];
      for (auto& t : chunk) t.loc = loc_;
      d.schedule.chunk = lang::Parser::parse_expression(std::move(chunk), diags_);
      if (d.schedule.kind == lang::ScheduleSpec::Kind::kRuntime ||
          d.schedule.kind == lang::ScheduleSpec::Kind::kAuto) {
        error("schedule(" + kind + ") takes no chunk argument");
        return false;
      }
    }
    return true;
  }

  /// depend(in|out|inout: items...) — items are lvalue expressions (variable
  /// names or slice elements), evaluated to addresses at task creation.
  bool parse_depend(Directive& d) {
    std::vector<Token> arg = collect_paren_arg();
    if (!diags_ok_) return false;
    if (arg.empty() || !is_word(arg[0])) {
      error("expected depend kind ('in', 'out' or 'inout')");
      return false;
    }
    DependClause clause;
    const std::string kind = arg[0].text;
    if (kind == "in") {
      clause.kind = DependKind::kIn;
    } else if (kind == "out") {
      clause.kind = DependKind::kOut;
    } else if (kind == "inout") {
      clause.kind = DependKind::kInout;
    } else {
      error("unknown depend kind '" + kind +
            "' (expected 'in', 'out' or 'inout')");
      return false;
    }
    if (arg.size() < 2 || !arg[1].is(TokenKind::kColon)) {
      error("expected ':' after depend kind");
      return false;
    }
    std::vector<Token> rest(arg.begin() + 2, arg.end());
    for (auto& group : split_commas(std::move(rest))) {
      if (group.empty()) {
        error("empty depend list item");
        return false;
      }
      for (auto& t : group) t.loc = loc_;
      lang::ExprPtr item = lang::Parser::parse_expression(std::move(group), diags_);
      if (item == nullptr) {
        diags_ok_ = false;
        return false;
      }
      if (item->kind != lang::Expr::Kind::kVarRef &&
          item->kind != lang::Expr::Kind::kIndex) {
        error("depend item must be a variable or a slice element (a[i])");
        return false;
      }
      clause.items.push_back(std::move(item));
    }
    if (clause.items.empty()) {
      error("depend clause lists no items");
      return false;
    }
    d.depends.push_back(std::move(clause));
    return true;
  }

  /// Rejects a second occurrence of a single-valued clause. The list-valued
  /// clauses (shared, private, reduction, depend, ...) legitimately repeat
  /// and accumulate; for the single-valued ones a silent last-wins would
  /// hide the contradiction from the user.
  bool once(const std::string& name) {
    if (!seen_clauses_.insert(name).second) {
      error("duplicate '" + name + "' clause");
      return false;
    }
    return true;
  }

  bool parse_clause(Directive& d) {
    const std::string name = expect_word("clause name");
    if (name.empty()) return false;
    if (name == "num_threads" || name == "if" || name == "default" ||
        name == "schedule" || name == "collapse" || name == "final" ||
        name == "priority" || name == "grainsize" || name == "num_tasks" ||
        name == "proc_bind") {
      if (!once(name)) return false;
    }
    if (name == "num_threads") {
      d.num_threads = parse_expr_arg();
      return d.num_threads != nullptr;
    }
    if (name == "proc_bind") {
      const std::vector<Token> arg = collect_paren_arg();
      if (!diags_ok_) return false;
      if (arg.size() != 1 || !is_word(arg[0])) {
        error("proc_bind(...) takes 'primary', 'master', 'close' or 'spread'");
        return false;
      }
      const std::string& kind = arg[0].text;
      if (kind == "primary" || kind == "master") {
        d.proc_bind = ProcBindKind::kPrimary;  // master is the 5.0 alias
      } else if (kind == "close") {
        d.proc_bind = ProcBindKind::kClose;
      } else if (kind == "spread") {
        d.proc_bind = ProcBindKind::kSpread;
      } else {
        error("unknown proc_bind kind '" + kind +
              "' (expected 'primary', 'master', 'close' or 'spread')");
        return false;
      }
      return true;
    }
    if (name == "if") {
      d.if_clause = parse_expr_arg();
      return d.if_clause != nullptr;
    }
    if (name == "default") {
      const std::vector<Token> arg = collect_paren_arg();
      if (arg.size() != 1 || !arg[0].is(TokenKind::kIdentifier) ||
          (arg[0].text != "shared" && arg[0].text != "none")) {
        error("default(...) must be 'shared' or 'none'");
        return false;
      }
      d.default_mode =
          arg[0].text == "shared" ? DefaultKind::kShared : DefaultKind::kNone;
      return true;
    }
    if (name == "shared") return parse_name_list(d.shared_vars);
    if (name == "private") return parse_name_list(d.private_vars);
    if (name == "firstprivate") return parse_name_list(d.firstprivate_vars);
    if (name == "lastprivate") return parse_name_list(d.lastprivate_vars);
    if (name == "reduction") return parse_reduction(d);
    if (name == "schedule") return parse_schedule(d);
    if (name == "nowait") {
      d.nowait = true;
      return true;
    }
    if (name == "ordered") {
      d.ordered = true;
      return true;
    }
    if (name == "collapse") {
      const std::vector<Token> arg = collect_paren_arg();
      if (arg.size() != 1 || !arg[0].is(TokenKind::kIntLiteral) ||
          arg[0].int_value < 1) {
        error("collapse(...) takes a positive integer literal");
        return false;
      }
      if (arg[0].int_value > kMaxCollapseDepth) {
        error("collapse depth " + std::to_string(arg[0].int_value) +
              " exceeds the supported maximum of " +
              std::to_string(kMaxCollapseDepth));
        return false;
      }
      d.collapse = static_cast<int>(arg[0].int_value);
      return true;
    }
    // Tasking clauses (DESIGN.md S1.7).
    if (name == "depend") return parse_depend(d);
    if (name == "final") {
      d.final_clause = parse_expr_arg();
      return d.final_clause != nullptr;
    }
    if (name == "priority") {
      d.priority = parse_expr_arg();
      return d.priority != nullptr;
    }
    if (name == "untied") {
      // Parse-and-document: zomp tasks run to completion on one thread, so
      // every task already satisfies tied-task scheduling constraints.
      d.untied = true;
      return true;
    }
    if (name == "grainsize") {
      d.grainsize = parse_expr_arg();
      return d.grainsize != nullptr;
    }
    if (name == "num_tasks") {
      d.num_tasks = parse_expr_arg();
      return d.num_tasks != nullptr;
    }
    // Partial support, paper-style: recognised-but-unimplemented clauses are
    // skipped with a warning rather than failing the build.
    if (name == "copyin" || name == "copyprivate" ||
        name == "linear" || name == "safelen" || name == "simdlen" ||
        name == "mergeable" || name == "allocate" || name == "nogroup") {
      diags_.warning(loc_, "clause '" + name + "' is not supported and was ignored");
      if (check(TokenKind::kLParen)) collect_paren_arg();
      return true;
    }
    error("unknown clause '" + name + "'");
    return false;
  }

  void validate(Directive& d) {
    auto reject = [&](bool present, const char* clause) {
      if (present) {
        error(std::string("clause '") + clause + "' is not valid on '" +
              directive_kind_name(d.kind) + "'");
      }
    };
    const bool is_parallel = d.kind == DirectiveKind::kParallel ||
                             d.kind == DirectiveKind::kParallelFor;
    const bool is_for =
        d.kind == DirectiveKind::kFor || d.kind == DirectiveKind::kParallelFor;
    const bool is_task = d.kind == DirectiveKind::kTask;
    // Data-sharing clauses are valid on both tasking constructs that create
    // tasks; depend/final/priority/untied stay task-only (depend-on-taskloop
    // in particular is rejected — chunk tasks of one taskloop are
    // unordered siblings by design).
    const bool is_tasking = is_task || d.kind == DirectiveKind::kTaskloop;
    if (!is_parallel) {
      reject(d.num_threads != nullptr, "num_threads");
      reject(d.proc_bind != ProcBindKind::kUnspecified, "proc_bind");
      reject(d.default_mode != DefaultKind::kUnspecified, "default");
      // `shared` is valid on task/taskloop as well as parallel (OpenMP 5.2).
      reject(!d.shared_vars.empty() && !is_tasking, "shared");
    }
    if (!is_parallel && !is_task) {
      reject(d.if_clause != nullptr, "if");
    }
    if (!is_parallel && !is_tasking) {
      reject(!d.private_vars.empty(), "private");
      reject(!d.firstprivate_vars.empty(), "firstprivate");
    }
    if (!is_task) {
      reject(!d.depends.empty(), "depend");
      reject(d.final_clause != nullptr, "final");
      reject(d.priority != nullptr, "priority");
      reject(d.untied, "untied");
    }
    if (d.kind != DirectiveKind::kTaskloop) {
      reject(d.grainsize != nullptr, "grainsize");
      reject(d.num_tasks != nullptr, "num_tasks");
    } else if (d.grainsize != nullptr && d.num_tasks != nullptr) {
      error(
          "'grainsize' and 'num_tasks' are mutually exclusive on 'taskloop'");
    }
    if (!is_for) {
      reject(d.schedule.kind != lang::ScheduleSpec::Kind::kUnspecified,
             "schedule");
      reject(d.collapse != 1, "collapse");
      reject(d.ordered, "ordered");
      reject(!d.lastprivate_vars.empty(), "lastprivate");
      reject(d.nowait && d.kind != DirectiveKind::kSingle, "nowait");
    }
    if (!is_parallel && !is_for) {
      reject(!d.reductions.empty(), "reduction");
    }
    if (d.kind == DirectiveKind::kParallelFor) {
      reject(d.nowait, "nowait");
    }
    if (d.ordered && d.nowait) {
      error("'ordered' cannot combine with 'nowait'");
    }
    // cancel/cancellation point take only the construct-type operand. Every
    // clause falls into one of the generic rejections above (they are neither
    // parallel, for, task nor taskloop kinds), so no dedicated block: the
    // spec's if-clause on cancel is likewise rejected rather than dropped.
  }

  /// Backends recompute collapse dimensions with 64-bit stride products;
  /// depth 7 already covers every realistic nest, and the bound keeps the
  /// synthesized prolog (4 locals per dimension) honest.
  static constexpr std::int64_t kMaxCollapseDepth = 7;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  lang::SourceLoc loc_;
  lang::Diagnostics& diags_;
  bool diags_ok_ = true;
  std::unordered_set<std::string> seen_clauses_;
};

}  // namespace

std::unique_ptr<Directive> parse_directive(const std::string& text,
                                           lang::SourceLoc loc,
                                           lang::Diagnostics& diags) {
  // Tokenise the payload with the ordinary lexer; a scratch Diagnostics sink
  // keeps payload-relative locations from leaking into user-facing output.
  lang::SourceFile payload("<directive>", text);
  lang::Diagnostics lex_diags;
  lang::Lexer lexer(payload, lex_diags);
  std::vector<Token> tokens = lexer.lex();
  if (lex_diags.has_errors()) {
    diags.error(loc, "malformed '#omp' directive text");
    return nullptr;
  }
  ClauseParser parser(std::move(tokens), loc, diags);
  return parser.parse();
}

}  // namespace zomp::core
