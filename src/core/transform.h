// The OpenMP preprocessing transform — the paper's primary contribution,
// reproduced over MiniZig (Figure 1 of the paper):
//
//   1. Directive comments attached by the parser are parsed into Directive
//      objects (directive_parser.h).
//   2. `parallel` (and the parallel half of `parallel for`) regions are
//      *outlined*: the associated block becomes a new module-level function;
//      the region's free variables (capture.h) become its parameters, with
//      the data-sharing clauses choosing pointer vs value capture; the
//      original statement is replaced by a fork of that function. Under
//      default(none), an unlisted free variable is diagnosed at its first
//      use inside the region, with the applicable clause suggested
//      (shared / private / firstprivate / reduction).
//   3. Worksharing loops become OmpWsLoop nodes that the backends lower to
//      the runtime's loop-bounds calls. A `collapse(n)` nest is
//      canonicalized first: the engine checks it is perfectly nested and
//      rectangular, hoists per-dimension lower bound / extent / stride into
//      synthesized const locals, and rewrites the nest into one loop over
//      the linearized space [0, N1*...*Nn) whose nest metadata
//      (lang::CollapseDim) tells the backends how to recompute the original
//      induction variables per logical iteration — so every schedule kind,
//      lastprivate and ordered apply to collapsed loops unchanged.
//      Reductions materialise as a private accumulator plus the team's tree
//      combine (runtime/reduce.h): the rendezvous winner alone folds the
//      combined value into the shared target, no global lock.
//   4. The remaining constructs (single/master/critical/atomic/ordered/task)
//      map to their structured statements.
//
// Pipeline position (core/passes.h): this transform is the `omp-lower`
// pass, the first stage of the PassManager pipeline. It runs before
// semantic analysis, with names only — the same position and the same
// type-information limitation the paper describes (§2), resolved the same
// way (generic/inferred outlined-function parameters). Contract with the
// downstream passes:
//   * Output is a plain module: outlined functions are ordinary FnDecls
//     (marked is_outlined) whose parameter lists pair 1:1 with the fork /
//     task sites' capture lists — the invariant fold's interprocedural
//     propagation, fuse's parameter-union merge, and dce-hoist's
//     capture+parameter removal all rely on.
//   * Every loop is normalised to half-open [lo, hi) step 1 (collapse
//     nests linearized first), which is what makes static-spec's literal
//     bounds check and the backends' zomp_static_range lowering a plain
//     pattern match.
//   * The transform itself never folds, fuses, or marks anything — at -O0
//     its output goes to the backends exactly as lowered, and every
//     optimization above it must keep the module re-analyzable (the
//     `verify` pass re-runs sema after the optimizers).
#pragma once

#include "lang/ast.h"
#include "lang/source.h"

namespace zomp::core {

struct TransformStats {
  int regions_outlined = 0;
  int ws_loops = 0;
  int tasks_outlined = 0;
  int directives_seen = 0;
};

/// Applies the OpenMP transform in place. Returns false if any directive was
/// malformed or used unsupported combinations (diagnostics explain).
bool apply_openmp(lang::Module& module, lang::Diagnostics& diags,
                  TransformStats* stats = nullptr);

}  // namespace zomp::core
