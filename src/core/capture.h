// Free-variable (capture) analysis over MiniZig statement trees.
//
// Runs *before* semantic analysis (the paper performs outlining during early
// preprocessing, when no type information exists), so it is purely
// name-based: a capture is any name referenced in the region that is not
// bound inside it, not a module-level global, and not a function name.
// Shadowing is handled by tracking declarations along the walk.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "lang/ast.h"

namespace zomp::core {

/// Names visible at module scope (globals and functions) — these are shared
/// by language semantics and never captured.
struct ModuleNames {
  std::unordered_set<std::string> globals;
  std::unordered_set<std::string> functions;

  static ModuleNames collect(const lang::Module& module);
};

/// One free variable of a region, with the location of the reference that
/// made it free (used by the default(none) diagnostic to point at the use).
struct FreeVar {
  std::string name;
  lang::SourceLoc first_use;
};

/// Returns the free variables of `region` in order of first appearance
/// (stable order keeps outlined-function signatures deterministic, which the
/// golden tests rely on).
std::vector<std::string> free_variables(const lang::Stmt& region,
                                        const ModuleNames& names);

/// As free_variables, but carrying each variable's first-use location.
std::vector<FreeVar> free_variables_detailed(const lang::Stmt& region,
                                             const ModuleNames& names);

}  // namespace zomp::core
