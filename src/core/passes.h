// The mzc optimizer: a pass pipeline between the front end and the backends.
//
// The compile pipeline is an ordered list of Pass objects run by PassManager.
// The first two stages are the existing phases recast as passes — `omp-lower`
// (the directive engine, core/transform.h) and `sema` (lang/sema.h) — so the
// whole journey from parsed AST to backend-ready module is one inspectable
// pass list (`mzc --dump-ir=<pass>` prints the module after any stage).
//
// At -O1 four optimization passes follow sema, in this order:
//
//   fold         Directive-operand constant folding. Evaluates compile-time
//                constant expressions feeding `num_threads`, `if`, `schedule`
//                chunks, worksharing bounds, and const initializers (collapse
//                extents are synthesized const locals) down to literal nodes,
//                and propagates const values through by-value captures into
//                the (unique) fork site's outlined body. `if(true)` clauses
//                are deleted; `if(false)` becomes a literal false.
//   static-spec  Static-schedule specialization. A chunkless schedule(static)
//                loop with literal bounds inside a region with a literal
//                num_threads is marked `static_spec`: backends lower it to
//                one `zomp_static_range` call (a single contiguous [lo,hi)
//                block per thread) instead of the strided static protocol,
//                bypassing the dispatch machinery entirely.
//   fuse         Parallel-region fusion. Two adjacent kOmpFork statements
//                (nothing at all between them) whose clauses agree and whose
//                data flow is barrier-safe merge into one outlined function:
//                body1, explicit barrier, body2 — eliminating one fork/join
//                per fused pair. Legality rules are documented at the pass
//                and in DESIGN.md ("Optimizer pass pipeline").
//   dce-hoist    Dead-clause elimination (captures whose name is never
//                referenced in the outlined body are dropped, along with the
//                matching parameter) and loop-invariant capture hoisting
//                (a fork inside a serial loop whose capture addresses are all
//                declared outside the loop gets `hoist_depth` set so codegen
//                builds the void* argument pack once, outside the loop).
//
// Pipeline contract (DESIGN.md "Optimizer pass pipeline"):
//   * Every optimization pass runs on a sema-resolved module and must keep
//     it RE-ANALYZABLE: lang::analyze() is re-run after the optimization
//     passes (`verify`) and re-resolves every symbol by name, so passes may
//     leave Symbol*/FnDecl* fields stale or null but must keep names, scopes
//     and capture/parameter lists consistent.
//   * Metadata invariants: `static_spec` is only set on chunkless,
//     non-ordered static loops with literal bounds; `hoist_depth` counts
//     enclosing serial loops whose scopes declare none of the fork's
//     captured names.
//   * Passes mutate the module in place and return false only on an
//     internal error (a pass bug), never on user-source conditions.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/transform.h"
#include "lang/ast.h"
#include "lang/source.h"

namespace zomp::core {

/// Counters accumulated across the pipeline; surfaced through CompileResult
/// and asserted by the pass golden tests.
struct PassStats {
  TransformStats transform;   ///< filled by the omp-lower stage
  int folded_operands = 0;    ///< fold: expressions replaced / clauses dropped
  int static_specialized = 0; ///< static-spec: loops marked
  int regions_fused = 0;      ///< fuse: pairs merged
  int dead_captures = 0;      ///< dce-hoist: captures+params removed
  int hoisted_forks = 0;      ///< dce-hoist: forks marked hoistable
};

class Pass {
 public:
  virtual ~Pass() = default;
  /// Stable name used by --dump-ir and the golden tests.
  virtual std::string name() const = 0;
  /// Transforms `module` in place. Returns false only on an internal error
  /// (reported through `diags`); user-source errors belong to the front-end
  /// stages, which report and stop the pipeline the same way.
  virtual bool run(lang::Module& module, lang::Diagnostics& diags,
                   PassStats& stats) = 0;
};

class PassManager {
 public:
  /// Observer invoked after each pass completes, with the pass name and the
  /// module in its post-pass state (the --dump-ir hook).
  using DumpHook =
      std::function<void(const std::string& pass, const lang::Module& module)>;

  void add(std::unique_ptr<Pass> pass);
  std::vector<std::string> pass_names() const;

  /// Runs every pass in order; stops (returning false) when a pass fails or
  /// reports errors.
  bool run(lang::Module& module, lang::Diagnostics& diags, PassStats& stats,
           const DumpHook& hook = {}) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Stage factories. `omp-lower` and `sema` wrap the existing phases; the rest
// are the -O1 optimization passes described above. `verify` re-runs sema on
// the optimized module (scratch diagnostics; errors are re-reported as
// internal pass bugs) — it is also what re-resolves symbols after `fuse`.
std::unique_ptr<Pass> make_omp_lower_pass();
std::unique_ptr<Pass> make_sema_pass();
std::unique_ptr<Pass> make_fold_pass();
std::unique_ptr<Pass> make_static_spec_pass();
std::unique_ptr<Pass> make_fuse_pass();
std::unique_ptr<Pass> make_dce_hoist_pass();
std::unique_ptr<Pass> make_verify_pass();

/// Assembles the standard pipeline. opt_level 0: omp-lower (when `openmp`),
/// sema. opt_level >= 1: adds fold, static-spec, fuse, dce-hoist, verify.
void build_default_pipeline(PassManager& pm, int opt_level, bool openmp);

}  // namespace zomp::core
