// C++ code generation from a transformed, sema-checked MiniZig module.
//
// The emitted translation unit targets the zomp C ABI (runtime/abi.h) the
// way the paper's Zig backend targets __kmpc_*: outlined functions become a
// typed `_impl` function plus a `void**`-unpacking microtask wrapper, fork
// statements build the argument array and call zomp_fork_call, worksharing
// loops call zomp_for_static_init / zomp_dispatch_next for their bounds.
//
// Build integration: mzc (src/tools/) runs this at build time over the .mz
// kernels in src/npb/kernels/, and the generated .cpp files compile into the
// bench binaries at native speed.
#pragma once

#include <string>

#include "lang/ast.h"

namespace zomp::codegen {

struct CodegenOptions {
  /// Emit `#define ZOMP_MZ_SAFE 1` so slice accesses are bounds-checked
  /// (Zig ReleaseSafe analogue). The ablate_safety bench flips this.
  bool safety_checks = false;
  /// Wrap `pub fn main` in a real C++ `int main()`.
  bool emit_main = false;
  /// Namespace for the generated functions; defaults to "mzgen_<module>".
  std::string namespace_override;
};

/// Returns the complete C++ translation unit text. The module must have
/// passed sema (symbol/type fields are consumed).
std::string emit_cpp(const lang::Module& module, const CodegenOptions& options = {});

/// Returns a small header declaring the module's `pub` functions, so
/// hand-written C++ (benches, examples) can call the generated kernels.
std::string emit_header(const lang::Module& module, const CodegenOptions& options = {});

/// C++ spelling of a MiniZig type (int64_t, double, mz::Slice<double>, ...).
std::string cpp_type(const lang::Type& type);

}  // namespace zomp::codegen
