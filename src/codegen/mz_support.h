// Support header included by every C++ translation unit the code generator
// emits. Provides the MiniZig value types (slices with the optional runtime
// safety checks that motivate the paper's "safer language" thesis), the
// builtin functions, and small helpers.
//
// Safety modes, mirroring Zig's ReleaseSafe / ReleaseFast split:
//   #define ZOMP_MZ_SAFE 1   -> slice indexing is bounds-checked (panic on
//                               out-of-range, like Zig's safety panics)
//   (undefined or 0)         -> unchecked indexing
// The ablate_safety bench compiles the same kernels both ways.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace mz {

[[noreturn]] inline void panic(const char* what, std::int64_t index,
                               std::int64_t len) {
  std::fprintf(stderr, "mz panic: %s (index %lld, len %lld)\n", what,
               static_cast<long long>(index), static_cast<long long>(len));
  std::abort();
}

/// MiniZig slice: pointer + length, the same fat-pointer layout Zig uses.
/// Header copies share the underlying storage (shared-capture semantics).
template <typename T>
struct Slice {
  T* ptr = nullptr;
  std::int64_t len = 0;

  T& operator[](std::int64_t i) const {
#if defined(ZOMP_MZ_SAFE) && ZOMP_MZ_SAFE
    if (i < 0 || i >= len) panic("index out of bounds", i, len);
#endif
    return ptr[i];
  }
};

template <typename T>
Slice<T> alloc(std::int64_t n) {
  if (n < 0) panic("negative allocation length", n, 0);
  return Slice<T>{n == 0 ? nullptr : new T[static_cast<std::size_t>(n)](), n};
}

template <typename T>
void free_slice(Slice<T> s) {
  delete[] s.ptr;
}

// -- Builtins ---------------------------------------------------------------

inline double mz_sqrt(double x) { return std::sqrt(x); }
inline double mz_exp(double x) { return std::exp(x); }
inline double mz_log(double x) { return std::log(x); }
inline double mz_pow(double x, double y) { return std::pow(x, y); }
inline double mz_abs(double x) { return std::fabs(x); }
inline std::int64_t mz_abs(std::int64_t x) { return x < 0 ? -x : x; }
template <typename T>
T mz_min(T a, T b) { return b < a ? b : a; }
template <typename T>
T mz_max(T a, T b) { return a < b ? b : a; }

/// Zig's @mod: result has the sign of the divisor (mathematical modulus for
/// positive divisors), unlike C's %.
inline std::int64_t mz_mod(std::int64_t a, std::int64_t b) {
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

// -- @print -------------------------------------------------------------------

inline void print_one(std::int64_t v) { std::printf("%lld", static_cast<long long>(v)); }
inline void print_one(double v) { std::printf("%.17g", v); }
inline void print_one(bool v) { std::fputs(v ? "true" : "false", stdout); }
inline void print_one(std::string_view s) { std::fwrite(s.data(), 1, s.size(), stdout); }
// Without this overload a string literal would convert to bool, not
// string_view (pointer->bool is a standard conversion and wins).
inline void print_one(const char* s) { std::fputs(s, stdout); }

/// `@print(a, b, ...)`: arguments separated by one space, newline-terminated.
template <typename... Args>
void print(const Args&... args) {
  int n = 0;
  ((n++ ? (std::fputc(' ', stdout), print_one(args)) : print_one(args)), ...);
  std::fputc('\n', stdout);
  (void)n;
}
inline void print() { std::fputc('\n', stdout); }

}  // namespace mz
