// mzc — the MiniZig+OpenMP transpiler driver (S8 in DESIGN.md).
//
// This is the build-time face of the paper's compiler work: it runs the
// front end (lex/parse), the OpenMP directive engine (outline + runtime-call
// insertion), sema, and the C++ backend, writing a translation unit that
// compiles against the zomp runtime.
//
// Usage:
//   mzc INPUT.mz -o OUT.cpp [--header OUT.h] [--safe] [--main]
//       [--no-omp] [--module NAME] [-O0|-O1] [--dump-ir=PASS]
//       [--dump-ast] [--dump-stats]
//
// Flags:
//   -o FILE        write the generated C++ (required unless a --dump flag)
//   --header FILE  also write a header with the module's pub declarations
//   --safe         bounds-checked slices (Zig ReleaseSafe analogue)
//   --main         emit an `int main()` wrapper around `pub fn main`
//   --no-omp       ignore //#omp directives (serial build, stock-Zig view)
//   --module NAME  module/namespace name (default: input basename)
//   -O0 / -O1      optimizer level (default -O1: fold, static-spec, fuse,
//                  dce-hoist — see core/passes.h)
//   --dump-ir=PASS print the module's IR after pass PASS to stdout (one of
//                  the pipeline pass names, or "all"; repeatable)
//   --dump-ast     print the transformed AST instead of generating code
//   --dump-stats   print directive-engine + optimizer statistics to stderr
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/codegen.h"
#include "core/pipeline.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s INPUT.mz -o OUT.cpp [--header OUT.h] [--safe] "
               "[--main] [--no-omp] [--module NAME] [-O0|-O1] "
               "[--dump-ir=PASS] [--dump-ast] [--dump-stats]\n",
               argv0);
  return 2;
}

std::string basename_no_ext(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  for (char& c : base) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) c = '_';
  }
  return base;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "mzc: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << contents;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string header;
  std::string module_name;
  bool safe = false;
  bool emit_main = false;
  bool openmp = true;
  bool dump_ast = false;
  bool dump_stats = false;
  int opt_level = 1;
  std::vector<std::string> dump_ir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--header" && i + 1 < argc) {
      header = argv[++i];
    } else if (arg == "--module" && i + 1 < argc) {
      module_name = argv[++i];
    } else if (arg == "--safe") {
      safe = true;
    } else if (arg == "--main") {
      emit_main = true;
    } else if (arg == "--no-omp") {
      openmp = false;
    } else if (arg == "-O0") {
      opt_level = 0;
    } else if (arg == "-O1") {
      opt_level = 1;
    } else if (arg.rfind("--dump-ir=", 0) == 0) {
      dump_ir.push_back(arg.substr(std::strlen("--dump-ir=")));
    } else if (arg == "--dump-ast") {
      dump_ast = true;
    } else if (arg == "--dump-stats") {
      dump_stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mzc: unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty() || (output.empty() && !dump_ast && dump_ir.empty())) {
    return usage(argv[0]);
  }
  if (module_name.empty()) module_name = basename_no_ext(input);

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "mzc: cannot read '%s'\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  zomp::core::CompileOptions options;
  options.openmp = openmp;
  options.module_name = module_name;
  options.opt_level = opt_level;
  options.dump_ir = dump_ir;
  auto result = zomp::core::compile_source(source.str(), options);

  const std::string diag_text = result.diagnostics_text();
  if (!diag_text.empty()) std::fputs(diag_text.c_str(), stderr);
  for (const auto& [pass, ir] : result.ir_dumps) {
    std::fprintf(stdout, ";; after %s\n", pass.c_str());
    std::fputs(ir.c_str(), stdout);
  }
  if (!result.ok) return 1;

  if (dump_stats) {
    std::fprintf(stderr,
                 "mzc: %d directives, %d parallel regions outlined, %d "
                 "worksharing loops, %d tasks\n",
                 result.stats.directives_seen, result.stats.regions_outlined,
                 result.stats.ws_loops, result.stats.tasks_outlined);
    if (opt_level >= 1) {
      std::fprintf(stderr,
                   "mzc: -O1: %d operands folded, %d static-specialized "
                   "loops, %d regions fused, %d dead captures, %d hoisted "
                   "forks\n",
                   result.pass_stats.folded_operands,
                   result.pass_stats.static_specialized,
                   result.pass_stats.regions_fused,
                   result.pass_stats.dead_captures,
                   result.pass_stats.hoisted_forks);
    }
  }
  if (dump_ast) {
    std::fputs(zomp::lang::dump_ast(*result.module).c_str(), stdout);
  }
  if (output.empty()) return 0;

  zomp::codegen::CodegenOptions cg;
  cg.safety_checks = safe;
  cg.emit_main = emit_main;
  if (!write_file(output, zomp::codegen::emit_cpp(*result.module, cg))) return 1;
  if (!header.empty() &&
      !write_file(header, zomp::codegen::emit_header(*result.module, cg))) {
    return 1;
  }
  return 0;
}
