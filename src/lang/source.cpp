#include "lang/source.h"

#include <sstream>

namespace zomp::lang {

std::string_view SourceFile::line_text(const SourceLoc& loc) const {
  const std::string_view text = contents_;
  if (loc.offset > text.size()) return {};
  std::size_t begin = loc.offset;
  while (begin > 0 && text[begin - 1] != '\n') --begin;
  std::size_t end = loc.offset;
  while (end < text.size() && text[end] != '\n') ++end;
  return text.substr(begin, end - begin);
}

std::string Diagnostics::render(const SourceFile& file) const {
  std::ostringstream out;
  for (const Diagnostic& d : sink_) {
    const char* severity = d.severity == Severity::kError     ? "error"
                           : d.severity == Severity::kWarning ? "warning"
                                                              : "note";
    out << file.name() << ':' << d.loc.line << ':' << d.loc.col << ": "
        << severity << ": " << d.message << '\n';
    const std::string_view line = file.line_text(d.loc);
    if (!line.empty()) {
      out << "  " << line << "\n  ";
      for (std::uint32_t i = 1; i < d.loc.col; ++i) out << ' ';
      out << "^\n";
    }
  }
  return out.str();
}

}  // namespace zomp::lang
