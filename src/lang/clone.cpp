#include "lang/clone.h"

namespace zomp::lang {

ExprPtr clone_expr(const Expr& expr) {
  auto copy = Expr::make(expr.kind, expr.loc);
  copy->int_value = expr.int_value;
  copy->float_value = expr.float_value;
  copy->bool_value = expr.bool_value;
  copy->name = expr.name;
  copy->bin_op = expr.bin_op;
  copy->un_op = expr.un_op;
  copy->builtin = expr.builtin;
  copy->alloc_elem = expr.alloc_elem;
  copy->args.reserve(expr.args.size());
  for (const auto& a : expr.args) copy->args.push_back(clone_expr(*a));
  return copy;
}

StmtPtr clone_stmt(const Stmt& stmt) {
  auto copy = Stmt::make(stmt.kind, stmt.loc);
  copy->pending_directives = stmt.pending_directives;
  for (const auto& s : stmt.stmts) copy->stmts.push_back(clone_stmt(*s));
  copy->name = stmt.name;
  copy->declared_type = stmt.declared_type;
  copy->has_declared_type = stmt.has_declared_type;
  copy->is_const = stmt.is_const;
  if (stmt.init) copy->init = clone_expr(*stmt.init);
  copy->init_is_type_hint = stmt.init_is_type_hint;
  copy->assign_op = stmt.assign_op;
  if (stmt.lhs) copy->lhs = clone_expr(*stmt.lhs);
  if (stmt.rhs) copy->rhs = clone_expr(*stmt.rhs);
  if (stmt.expr) copy->expr = clone_expr(*stmt.expr);
  if (stmt.then_block) copy->then_block = clone_stmt(*stmt.then_block);
  if (stmt.else_block) copy->else_block = clone_stmt(*stmt.else_block);
  if (stmt.step) copy->step = clone_stmt(*stmt.step);
  if (stmt.body) copy->body = clone_stmt(*stmt.body);
  copy->callee = stmt.callee;
  for (const auto& c : stmt.captures) {
    copy->captures.push_back(CaptureArg{c.name, c.mode, c.reduce_op, nullptr});
  }
  if (stmt.num_threads) copy->num_threads = clone_expr(*stmt.num_threads);
  if (stmt.if_clause) copy->if_clause = clone_expr(*stmt.if_clause);
  copy->proc_bind = stmt.proc_bind;
  copy->hoist_depth = stmt.hoist_depth;
  for (const auto& dep : stmt.depends) {
    Stmt::OmpDepend d;
    d.kind = dep.kind;
    d.item = clone_expr(*dep.item);
    copy->depends.push_back(std::move(d));
  }
  if (stmt.final_clause) copy->final_clause = clone_expr(*stmt.final_clause);
  if (stmt.priority) copy->priority = clone_expr(*stmt.priority);
  copy->untied = stmt.untied;
  if (stmt.grainsize) copy->grainsize = clone_expr(*stmt.grainsize);
  if (stmt.num_tasks) copy->num_tasks = clone_expr(*stmt.num_tasks);
  copy->cancel_construct = stmt.cancel_construct;
  copy->schedule.kind = stmt.schedule.kind;
  if (stmt.schedule.chunk) copy->schedule.chunk = clone_expr(*stmt.schedule.chunk);
  for (const auto& d : stmt.collapse) {
    copy->collapse.push_back(CollapseDim{d.iv, d.lo, d.extent, d.stride,
                                         nullptr, nullptr, nullptr, nullptr});
  }
  copy->nowait = stmt.nowait;
  copy->ordered = stmt.ordered;
  copy->static_spec = stmt.static_spec;
  copy->lastprivate = stmt.lastprivate;
  copy->target = stmt.target;
  copy->reduce_op = stmt.reduce_op;
  copy->red_pack = stmt.red_pack;
  return copy;
}

}  // namespace zomp::lang
