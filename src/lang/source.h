// Source management and diagnostics for the MiniZig front end.
//
// MiniZig is the Zig-subset substrate this repo uses in place of the real Zig
// compiler (see DESIGN.md §2): the paper's contribution is exercised against
// it exactly as the original is exercised against Zig.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zomp::lang {

/// Byte offset + human coordinates into one source buffer.
struct SourceLoc {
  std::uint32_t offset = 0;
  std::uint32_t line = 1;  // 1-based
  std::uint32_t col = 1;   // 1-based

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// An owned source buffer with a display name.
class SourceFile {
 public:
  SourceFile(std::string name, std::string contents)
      : name_(std::move(name)), contents_(std::move(contents)) {}

  const std::string& name() const { return name_; }
  std::string_view contents() const { return contents_; }

  /// The full text of the line containing `loc` (no trailing newline); used
  /// for caret diagnostics.
  std::string_view line_text(const SourceLoc& loc) const;

 private:
  std::string name_;
  std::string contents_;
};

enum class Severity { kError, kWarning, kNote };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; the front end never throws across its API. Callers
/// check has_errors() after each phase.
class Diagnostics {
 public:
  void error(SourceLoc loc, std::string message) {
    sink_.push_back({Severity::kError, loc, std::move(message)});
    ++errors_;
  }
  void warning(SourceLoc loc, std::string message) {
    sink_.push_back({Severity::kWarning, loc, std::move(message)});
  }
  void note(SourceLoc loc, std::string message) {
    sink_.push_back({Severity::kNote, loc, std::move(message)});
  }

  bool has_errors() const { return errors_ > 0; }
  const std::vector<Diagnostic>& all() const { return sink_; }

  /// Renders every diagnostic as "file:line:col: severity: message" with a
  /// caret line, in emission order.
  std::string render(const SourceFile& file) const;

 private:
  std::vector<Diagnostic> sink_;
  int errors_ = 0;
};

}  // namespace zomp::lang
