// MiniZig abstract syntax tree.
//
// One tree serves all phases: the parser builds it (attaching raw `//#omp`
// directive text to statements), the directive engine in src/core/ rewrites
// it (outlining regions into synthesized functions and inserting the
// structured Omp* statements that the backends lower to runtime calls), sema
// resolves and types it, and the two backends (codegen, interp) consume it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/source.h"
#include "lang/type.h"

namespace zomp::lang {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------------

/// A resolved variable. Owned by the Module's symbol arena; AST nodes hold
/// non-owning pointers that stay valid for the module's lifetime.
struct Symbol {
  enum class Kind { kLocal, kParam, kGlobal, kLoopVar };

  std::string name;
  Kind kind = Kind::kLocal;
  Type type;
  bool is_const = false;
  /// Shared-capture parameter of an outlined function: the name binds to the
  /// *enclosing scope's storage* (codegen emits a reference parameter, the
  /// interpreter aliases the cell). This is the "pointers to variables passed
  /// to the runtime" of the paper's lowering, made transparent to uses.
  bool indirect = false;
  /// Dense id for backends (unique per module).
  int id = 0;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kRem,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,            // logical, short-circuit
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

enum class UnOp { kNeg, kNot };

/// Compiler builtins (`@name(...)`). The math set matches what the NPB
/// kernels need; conversions follow current Zig spellings.
enum class Builtin {
  kSqrt, kAbs, kExp, kLog, kPow, kMin, kMax, kMod,
  kFloatFromInt, kIntFromFloat,
  kAlloc, kFree,
  kPrint,
};

struct FnDecl;

struct Expr {
  enum class Kind {
    kIntLit,
    kFloatLit,
    kBoolLit,
    kStringLit,
    kUndefined,
    kVarRef,
    kBinary,
    kUnary,
    kCall,
    kBuiltinCall,
    kIndex,    // base[index]
    kLen,      // base.len
    kAddrOf,   // &var
    kDeref,    // ptr.*
  };

  Kind kind;
  SourceLoc loc;
  Type type;  ///< set by sema

  // Literal payloads.
  std::int64_t int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;

  /// Identifier (kVarRef), callee name (kCall), or string payload.
  std::string name;

  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  Builtin builtin = Builtin::kSqrt;
  /// Element type argument of @alloc(T, n).
  Type alloc_elem;

  /// Children: binary = {lhs, rhs}; unary/deref/len/addrof = {operand};
  /// index = {base, index}; calls = argument list.
  std::vector<ExprPtr> args;

  /// Resolution results (sema).
  Symbol* symbol = nullptr;       // kVarRef, kAddrOf target
  const FnDecl* callee = nullptr; // kCall

  static ExprPtr make(Kind kind, SourceLoc loc);
};

// ---------------------------------------------------------------------------
// OpenMP structured statements (inserted by the directive engine)
// ---------------------------------------------------------------------------

/// How one captured variable crosses the outlining boundary. The modes mirror
/// the paper's lowering: everything is passed as a parameter of the outlined
/// function; data-sharing clauses pick pointer vs value capture. The engine
/// emits kSharedPtr for every shared capture (types are unknown during
/// preprocessing, exactly as in the paper); sema refines slice-typed shared
/// captures to kSharedSlice and marks scalar ones indirect.
enum class CaptureMode {
  kSharedPtr,      ///< scalar shared(...): address passed, param is indirect
  kSharedSlice,    ///< slice shared: slice header by value (data is shared)
  kValue,          ///< private/firstprivate scalar or slice: by value
  kReductionPtr,   ///< reduction target: address passed + private accumulator
};

/// Reduction operators of the `reduction` clause.
enum class ReduceOp { kAdd, kSub, kMul, kMin, kMax, kBitAnd, kBitOr, kBitXor, kLogAnd, kLogOr };

const char* reduce_op_spelling(ReduceOp op);

struct CaptureArg {
  std::string name;        ///< source-level variable name
  CaptureMode mode = CaptureMode::kSharedPtr;
  ReduceOp reduce_op = ReduceOp::kAdd;  ///< for kReductionPtr
  Symbol* symbol = nullptr;             ///< enclosing-scope symbol (sema)
};

/// Schedule request recorded on a worksharing loop. The chunk is an
/// expression (evaluated at region entry), matching the clause grammar.
struct ScheduleSpec {
  enum class Kind { kUnspecified, kStatic, kDynamic, kGuided, kAuto, kRuntime };
  Kind kind = Kind::kUnspecified;
  ExprPtr chunk;  // may be null
};

/// One dimension of a `collapse(n)` loop nest after canonicalization
/// (outermost first). The directive engine linearizes a perfectly-nested
/// rectangular nest into a single worksharing loop over [0, N1*N2*...*Nn)
/// and synthesizes, as const locals in the enclosing block, each dimension's
/// lower bound (`lo`), extent (`extent`, clamped at 0) and linearized stride
/// (`stride` = product of inner extents). Backends recompute the original
/// induction variable per logical iteration as
///   iv = lo + (flat / stride) % extent
/// (the `% extent` is redundant for the outermost dimension). The iv is a
/// fresh const binding per iteration, declared by sema in the loop's scope.
struct CollapseDim {
  std::string iv;      ///< source loop variable name
  std::string lo;      ///< synthesized lower-bound local
  std::string extent;  ///< synthesized extent local
  std::string stride;  ///< synthesized stride local
  Symbol* iv_symbol = nullptr;      // sema
  Symbol* lo_symbol = nullptr;      // sema
  Symbol* extent_symbol = nullptr;  // sema
  Symbol* stride_symbol = nullptr;  // sema
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt {
  enum class Kind {
    kBlock,
    kVarDecl,
    kAssign,
    kExprStmt,
    kIf,
    kWhile,
    kForRange,
    kReturn,
    kBreak,
    kContinue,

    // OpenMP structured statements (see DESIGN.md §6). These are the "calls
    // to the OpenMP runtime inserted prior to the compile-time engine" of the
    // paper, in structured form; backends lower them to the zomp ABI.
    kOmpFork,         ///< call an outlined region function on a new team
    kOmpWsLoop,       ///< worksharing distribution of the contained loop
    kOmpBarrier,
    kOmpCritical,
    kOmpSingle,
    kOmpMaster,
    kOmpAtomic,
    kOmpOrdered,
    kOmpReductionInit,     ///< declare+initialise a private accumulator
    kOmpReductionCombine,  ///< combine accumulator into shared target
    kOmpLastprivateWrite,  ///< write local back through pointer on last iter
    kOmpTask,              ///< deferred execution of an outlined task fn
    kOmpTaskwait,
    kOmpTaskgroup,         ///< body; waits for group tasks + descendants
    kOmpTaskloop,          ///< chunked task execution of an outlined loop fn
    kOmpCancel,            ///< `cancel <construct>`: activate cancellation
    kOmpCancellationPoint, ///< `cancellation point <construct>`: check it
  };

  Kind kind;
  SourceLoc loc;

  /// Raw `//#omp` directive text attached by the parser to the statement the
  /// comment precedes. Consumed (and cleared) by the directive engine.
  std::vector<std::pair<std::string, SourceLoc>> pending_directives;

  // kBlock
  std::vector<StmtPtr> stmts;

  // kVarDecl: `name`, optional declared type, init expression (null for
  // `undefined`), constness. Also used by kOmpReductionInit (the private
  // accumulator; `reduce_op` gives the identity).
  std::string name;
  Type declared_type;
  bool has_declared_type = false;
  bool is_const = false;
  ExprPtr init;
  /// Directive-engine decls only: `init` exists to give the declaration a
  /// type (sema has no other source pre-outlining), but backends must NOT
  /// evaluate it — they value-initialize instead. Used for the lastprivate
  /// private copy, whose pre-last value is unspecified by OpenMP: actually
  /// reading the shared variable here races the lastprivate writeback of a
  /// nowait loop.
  bool init_is_type_hint = false;
  Symbol* symbol = nullptr;

  // kAssign: lhs/rhs, with op != kAssignPlain for compound assignment.
  enum class AssignOp { kPlain, kAdd, kSub, kMul, kDiv };
  AssignOp assign_op = AssignOp::kPlain;
  ExprPtr lhs;
  ExprPtr rhs;

  // kExprStmt / kReturn / kIf / kWhile condition carrier.
  ExprPtr expr;

  // kIf
  StmtPtr then_block;
  StmtPtr else_block;  // may be null

  // kWhile: expr = condition, `step` = optional continue statement
  // (`while (c) : (i += 1)`), body below.
  StmtPtr step;
  StmtPtr body;

  // kForRange: `name` = capture, expr = lo, rhs = hi (reusing slots), body.
  // Loop variable is const i64, fresh per iteration (Zig `for (a..b) |i|`).

  // -- OpenMP payloads -------------------------------------------------------

  // kOmpFork / kOmpTask / kOmpTaskloop: outlined callee + captures. For
  // kOmpTaskloop the callee's last two parameters are the synthesized chunk
  // bounds (i64, by value); `expr`/`rhs` reuse the kForRange slots for the
  // full-range lo/hi, evaluated once at the taskloop point.
  std::string callee;
  const FnDecl* callee_decl = nullptr;  // sema
  std::vector<CaptureArg> captures;
  ExprPtr num_threads;  // parallel num_threads clause
  ExprPtr if_clause;    // parallel/task if clause
  /// kOmpFork only: proc_bind clause as the runtime's BindKind /
  /// omp_proc_bind_t value (2 primary, 3 close, 4 spread); -1 when absent.
  /// Kept numeric so lang/ stays free of runtime headers.
  int proc_bind = -1;
  /// kOmpFork only, set by the optimizer's capture-hoist pass: > 0 means
  /// every capture's address is invariant across the enclosing serial loop
  /// nest, so codegen may build the fork's `void*` argument pack once,
  /// outside the loop at serial-loop nesting depth `hoist_depth - 1`
  /// (1 = hoist out of the innermost enclosing loop). 0 = no hoist. The
  /// interpreter ignores the flag (it has no argument pack to reuse).
  int hoist_depth = 0;

  // kOmpTask tasking clauses (see core/directive.h): depend items are
  // lvalue expressions evaluated to addresses at creation time, in the
  // enclosing scope.
  struct OmpDepend {
    int kind = 3;  ///< rt::DepKind values: 1 = in, 2 = out, 3 = inout
    ExprPtr item;
  };
  std::vector<OmpDepend> depends;
  ExprPtr final_clause;
  ExprPtr priority;
  bool untied = false;

  // kOmpTaskloop chunking clauses (mutually exclusive, validated upstream).
  ExprPtr grainsize;
  ExprPtr num_tasks;

  /// kOmpCancel / kOmpCancellationPoint: which construct the cancellation
  /// names, as the runtime ABI's ZOMP_CANCEL_* values (1 parallel, 2 for,
  /// 4 taskgroup). Kept numeric so lang/ stays free of runtime headers.
  int cancel_construct = 0;

  // kOmpWsLoop: body is the kForRange statement to distribute. For
  // collapse(n>1) the body is the canonicalized linearized loop and
  // `collapse` carries the nest metadata (empty for collapse(1)).
  ScheduleSpec schedule;
  std::vector<CollapseDim> collapse;
  bool nowait = false;
  bool ordered = false;
  /// Set by the optimizer's static-specialization pass: the loop is
  /// schedule(static) with no chunk, not ordered, and its bounds are integer
  /// literals, so backends may lower it to one `zomp_static_range` call (a
  /// single contiguous [lo,hi) block per thread) instead of the full
  /// static-init strided protocol. Semantics are identical to the blocked
  /// static distribution; the runtime still sizes blocks from the *actual*
  /// team, so a smaller-than-requested team stays correct.
  bool static_spec = false;
  /// lastprivate entries as {private local, writeback target} name pairs.
  std::vector<std::pair<std::string, std::string>> lastprivate;
  /// Resolved counterparts of `lastprivate` (sema), same order.
  std::vector<std::pair<Symbol*, Symbol*>> lastprivate_syms;

  // kOmpCritical: `name` = critical name ("" = unnamed), body.
  // kOmpSingle: body + nowait. kOmpMaster / kOmpOrdered: body.
  // kOmpAtomic: body must be a single kAssign statement.

  // kOmpReductionInit / kOmpReductionCombine / kOmpLastprivateWrite:
  // `name` = private local, `target` = pointer parameter name.
  std::string target;
  ReduceOp reduce_op = ReduceOp::kAdd;
  Symbol* target_symbol = nullptr;  // sema

  /// kOmpReductionCombine only: multi-variable packing (reduce.h). On the
  /// FIRST combine of a construct's consecutive combine run, the number of
  /// combines in the run (>= 1); 0 on the others. Backends lower a run with
  /// head red_pack > 1 as ONE zomp_reduce rendezvous over a struct payload
  /// of all the partials instead of one rendezvous per variable. Set by the
  /// directive engine, which emits each construct's combines adjacently.
  int red_pack = 1;

  static StmtPtr make(Kind kind, SourceLoc loc);
};

// ---------------------------------------------------------------------------
// Declarations / module
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  Type type;           ///< kInferred on outlined functions until sema
  SourceLoc loc;
  Symbol* symbol = nullptr;
  /// Set by sema for shared/reduction captures (see Symbol::indirect).
  bool indirect = false;
};

struct FnDecl {
  std::string name;
  std::vector<Param> params;
  Type return_type = Type::void_type();
  StmtPtr body;  ///< null for extern declarations
  bool is_extern = false;
  bool is_pub = false;
  /// Synthesized by the directive engine (parallel-region or task body).
  bool is_outlined = false;
  SourceLoc loc;
};

struct Module {
  std::string name;
  std::vector<std::unique_ptr<FnDecl>> functions;
  /// Top-level var/const declarations, in source order.
  std::vector<StmtPtr> globals;

  /// Symbol arena: stable addresses for every Symbol in the module.
  std::vector<std::unique_ptr<Symbol>> symbols;

  Symbol* new_symbol(std::string name, Symbol::Kind kind, Type type,
                     bool is_const);

  FnDecl* find_function(const std::string& fn_name);
  const FnDecl* find_function(const std::string& fn_name) const;
};

/// Renders the AST as a stable, diff-friendly S-expression; used by parser
/// and transform golden tests.
std::string dump_ast(const Module& module);
std::string dump_stmt(const Stmt& stmt, int indent = 0);
std::string dump_expr(const Expr& expr);

}  // namespace zomp::lang
