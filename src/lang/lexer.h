// MiniZig lexer. Produces the full token stream for one source file,
// including kDirective tokens for `//#omp` comments (ordinary comments are
// trivia and dropped).
#pragma once

#include <vector>

#include "lang/token.h"

namespace zomp::lang {

class Lexer {
 public:
  Lexer(const SourceFile& file, Diagnostics& diags)
      : file_(file), diags_(diags) {}

  /// Lexes the whole file. The returned vector always ends with one kEof
  /// token. Errors are reported to the diagnostics sink; lexing continues
  /// past them where possible.
  std::vector<Token> lex();

 private:
  char peek(std::size_t ahead = 0) const;
  bool at_end() const { return pos_ >= file_.contents().size(); }
  char advance();
  bool match(char expected);
  SourceLoc here() const;

  void lex_line_comment(std::vector<Token>& out);
  Token lex_number();
  Token lex_identifier_or_keyword();
  Token lex_builtin();
  Token lex_string();

  const SourceFile& file_;
  Diagnostics& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace zomp::lang
