// Recursive-descent parser for MiniZig.
//
// Directive handling follows the paper: `//#omp` comments survive lexing as
// kDirective tokens; the parser attaches their raw text to the statement they
// precede (pending_directives). Standalone directives (barrier, taskwait) at
// the end of a block attach to a synthesized empty statement. The directive
// *grammar* is parsed later, by the engine in src/core/ — the front end only
// ferries the text, mirroring the paper's early-preprocessing split.
#pragma once

#include <memory>
#include <vector>

#include "lang/ast.h"
#include "lang/token.h"

namespace zomp::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostics& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  /// Parses a whole module. Returns a module even on errors (check the
  /// diagnostics sink); error recovery is per-declaration.
  std::unique_ptr<Module> parse_module(std::string module_name);

  /// Parses `tokens` as a single expression (the vector need not end with
  /// kEof; one is appended). Used by the directive engine for expression
  /// clause arguments such as num_threads(...) and schedule chunks.
  static ExprPtr parse_expression(std::vector<Token> tokens,
                                  Diagnostics& diags);

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().is(kind); }
  bool match(TokenKind kind);
  /// Consumes `kind` or reports an error naming `what`.
  const Token& expect(TokenKind kind, const char* what);
  void sync_to_decl();
  void sync_to_stmt();

  std::unique_ptr<FnDecl> parse_fn(bool is_extern, bool is_pub);
  StmtPtr parse_global();
  Type parse_type();

  StmtPtr parse_block();
  StmtPtr parse_stmt();
  StmtPtr parse_var_decl();
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();
  StmtPtr parse_simple_stmt();  // assignment or expression statement + ';'
  StmtPtr parse_simple_stmt_no_semi();

  ExprPtr parse_expr();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_comparison();
  ExprPtr parse_bitwise();
  ExprPtr parse_shift();
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Diagnostics& diags_;
};

}  // namespace zomp::lang
