#include "lang/sema.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace zomp::lang {

double reduce_identity_f64(ReduceOp op) {
  switch (op) {
    case ReduceOp::kAdd:
    case ReduceOp::kSub: return 0.0;
    case ReduceOp::kMul: return 1.0;
    case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    default: return 0.0;  // bit/logical ops are integer/bool-only
  }
}

std::int64_t reduce_identity_i64(ReduceOp op) {
  switch (op) {
    case ReduceOp::kAdd:
    case ReduceOp::kSub: return 0;
    case ReduceOp::kMul: return 1;
    case ReduceOp::kMin: return std::numeric_limits<std::int64_t>::max();
    case ReduceOp::kMax: return std::numeric_limits<std::int64_t>::min();
    case ReduceOp::kBitAnd: return -1;  // all ones
    case ReduceOp::kBitOr:
    case ReduceOp::kBitXor: return 0;
    case ReduceOp::kLogAnd: return 1;
    case ReduceOp::kLogOr: return 0;
  }
  return 0;
}

namespace {

class Sema {
 public:
  Sema(Module& module, Diagnostics& diags) : module_(module), diags_(diags) {}

  bool run() {
    // Pass 1: register function names (duplicates are errors).
    std::unordered_set<std::string> names;
    for (const auto& fn : module_.functions) {
      if (!names.insert(fn->name).second) {
        diags_.error(fn->loc, "duplicate function '" + fn->name + "'");
      }
    }
    // Pass 2: globals, in order, into the global scope.
    push_scope();
    for (auto& g : module_.globals) {
      check_global(*g);
    }
    // Pass 3: every non-outlined function. Outlined functions are checked at
    // their unique call sites (type inference), extern functions have
    // declared types only.
    for (auto& fn : module_.functions) {
      if (fn->is_outlined || fn->is_extern) continue;
      check_function(*fn);
    }
    for (auto& fn : module_.functions) {
      if (fn->is_outlined && !checked_.contains(fn.get())) {
        diags_.warning(fn->loc, "outlined function '" + fn->name +
                                    "' is never forked");
      }
    }
    pop_scope();
    return !diags_.has_errors();
  }

 private:
  // -- Scopes ----------------------------------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  Symbol* declare(const std::string& name, Symbol::Kind kind, Type type,
                  bool is_const, SourceLoc loc) {
    auto& scope = scopes_.back();
    if (scope.contains(name)) {
      diags_.error(loc, "redeclaration of '" + name + "' in the same scope");
    }
    Symbol* sym = module_.new_symbol(name, kind, type, is_const);
    scope[name] = sym;
    return sym;
  }

  Symbol* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (const auto found = it->find(name); found != it->end()) {
        return found->second;
      }
    }
    return nullptr;
  }

  // -- Declarations ------------------------------------------------------------

  void check_global(Stmt& g) {
    if (g.kind != Stmt::Kind::kVarDecl) {
      diags_.error(g.loc, "only var/const declarations allowed at top level");
      return;
    }
    check_var_decl(g, Symbol::Kind::kGlobal);
  }

  void check_function(FnDecl& fn) {
    if (checked_.contains(&fn)) return;
    checked_.insert(&fn);
    current_fn_stack_.push_back(&fn);
    push_scope();
    for (auto& param : fn.params) {
      if (param.type.is_inferred()) {
        diags_.error(param.loc,
                     "parameter '" + param.name + "' of '" + fn.name +
                         "' has no inferred type (outlined function forked "
                         "with mismatched captures?)");
        param.type = Type::invalid();
      }
      // Outlined-function params are mutable: value captures of
      // private/firstprivate variables must accept writes, and indirect
      // (shared) captures must accept writes through the alias.
      param.symbol = declare(param.name, Symbol::Kind::kParam, param.type,
                             /*is_const=*/!fn.is_outlined, param.loc);
      param.symbol->indirect = param.indirect;
    }
    if (fn.body) check_stmt(*fn.body);
    pop_scope();
    current_fn_stack_.pop_back();
  }

  FnDecl* current_fn() {
    return current_fn_stack_.empty() ? nullptr : current_fn_stack_.back();
  }

  // -- Statements ----------------------------------------------------------------

  void check_var_decl(Stmt& stmt, Symbol::Kind kind) {
    Type type = Type::invalid();
    if (stmt.init) {
      const Type init_type = check_expr(*stmt.init);
      if (stmt.has_declared_type) {
        if (!init_type.is_invalid() && init_type != stmt.declared_type) {
          diags_.error(stmt.loc, "cannot initialise '" + stmt.name + "' of type " +
                                     stmt.declared_type.to_string() +
                                     " with value of type " +
                                     init_type.to_string());
        }
        type = stmt.declared_type;
      } else {
        type = init_type;
        if (type == Type::string()) {
          diags_.error(stmt.loc, "string literals may only appear in @print");
          type = Type::invalid();
        }
      }
    } else {
      // `undefined` initialiser; parser guaranteed a declared type.
      type = stmt.has_declared_type ? stmt.declared_type : Type::invalid();
    }
    if (type.is_void()) {
      diags_.error(stmt.loc, "cannot declare variable of type void");
      type = Type::invalid();
    }
    stmt.symbol = declare(stmt.name, kind, type, stmt.is_const, stmt.loc);
  }

  void expect_bool(const Expr& e, const char* what) {
    if (!e.type.is_bool() && !e.type.is_invalid()) {
      diags_.error(e.loc, std::string(what) + " must be bool, found " +
                              e.type.to_string());
    }
  }

  void check_stmt(Stmt& stmt) {
    if (!stmt.pending_directives.empty()) {
      // The directive engine did not run (or missed this statement). These
      // are comments in real Zig, so ignoring them is the faithful serial
      // fallback — but the user should know.
      diags_.warning(stmt.pending_directives.front().second,
                     "OpenMP directive ignored (directive engine not run)");
      stmt.pending_directives.clear();
    }
    switch (stmt.kind) {
      case Stmt::Kind::kBlock: {
        push_scope();
        const Stmt* prev = nullptr;
        for (auto& s : stmt.stmts) {
          // A barrier textually right after `cancel parallel|for` is almost
          // always a bug: the cancelling thread proceeds to the region join
          // without arriving, so this barrier can only complete abandoned.
          // The directive engine nests the statements following a standalone
          // directive in fresh blocks, so unwrap to the first effective
          // statement before comparing.
          const Stmt* eff = s.get();
          while (eff->kind == Stmt::Kind::kBlock && !eff->stmts.empty()) {
            eff = eff->stmts.front().get();
          }
          if (prev != nullptr && prev->kind == Stmt::Kind::kOmpCancel &&
              prev->cancel_construct != 4 &&
              eff->kind == Stmt::Kind::kOmpBarrier) {
            diags_.warning(s->loc,
                           "barrier immediately after 'cancel': a cancelling "
                           "thread never arrives here, so this barrier cannot "
                           "synchronise the team; rely on the region join "
                           "instead");
          }
          check_stmt(*s);
          prev = s.get();
        }
        pop_scope();
        break;
      }
      case Stmt::Kind::kVarDecl:
        check_var_decl(stmt, Symbol::Kind::kLocal);
        break;
      case Stmt::Kind::kAssign: {
        const Type lhs = check_lvalue(*stmt.lhs);
        const Type rhs = check_expr(*stmt.rhs);
        if (lhs.is_invalid() || rhs.is_invalid()) break;
        if (stmt.assign_op != Stmt::AssignOp::kPlain) {
          if (!lhs.is_numeric()) {
            diags_.error(stmt.loc, "compound assignment needs numeric target");
            break;
          }
        }
        if (lhs != rhs) {
          diags_.error(stmt.loc, "cannot assign " + rhs.to_string() + " to " +
                                     lhs.to_string());
        }
        break;
      }
      case Stmt::Kind::kExprStmt: {
        const Type t = check_expr(*stmt.expr);
        if (stmt.expr->kind != Expr::Kind::kCall &&
            stmt.expr->kind != Expr::Kind::kBuiltinCall) {
          diags_.warning(stmt.loc, "expression statement has no effect");
        }
        (void)t;
        break;
      }
      case Stmt::Kind::kIf:
        check_expr(*stmt.expr);
        expect_bool(*stmt.expr, "if condition");
        check_stmt(*stmt.then_block);
        if (stmt.else_block) check_stmt(*stmt.else_block);
        break;
      case Stmt::Kind::kWhile:
        check_expr(*stmt.expr);
        expect_bool(*stmt.expr, "while condition");
        ++loop_depth_;
        if (stmt.step) check_stmt(*stmt.step);
        check_stmt(*stmt.body);
        --loop_depth_;
        break;
      case Stmt::Kind::kForRange: {
        const Type lo = check_expr(*stmt.expr);
        const Type hi = check_expr(*stmt.rhs);
        if (!lo.is_invalid() && !lo.is_i64()) {
          diags_.error(stmt.expr->loc, "range bounds must be i64");
        }
        if (!hi.is_invalid() && !hi.is_i64()) {
          diags_.error(stmt.rhs->loc, "range bounds must be i64");
        }
        push_scope();
        stmt.symbol = declare(stmt.name, Symbol::Kind::kLoopVar, Type::i64(),
                              /*is_const=*/true, stmt.loc);
        ++loop_depth_;
        check_stmt(*stmt.body);
        --loop_depth_;
        pop_scope();
        break;
      }
      case Stmt::Kind::kReturn: {
        FnDecl* fn = current_fn();
        const Type want = fn ? fn->return_type : Type::void_type();
        if (stmt.expr) {
          const Type got = check_expr(*stmt.expr);
          if (!got.is_invalid() && got != want) {
            diags_.error(stmt.loc, "return type mismatch: function returns " +
                                       want.to_string() + ", value is " +
                                       got.to_string());
          }
        } else if (!want.is_void()) {
          diags_.error(stmt.loc, "non-void function must return a value");
        }
        break;
      }
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        if (loop_depth_ == 0) {
          diags_.error(stmt.loc, "break/continue outside of a loop");
        }
        break;

      // -- OpenMP structured statements ------------------------------------

      case Stmt::Kind::kOmpFork: check_fork(stmt, /*is_task=*/false); break;
      case Stmt::Kind::kOmpTask: check_fork(stmt, /*is_task=*/true); break;
      case Stmt::Kind::kOmpTaskloop: check_taskloop(stmt); break;
      case Stmt::Kind::kOmpWsLoop: check_ws_loop(stmt); break;
      case Stmt::Kind::kOmpBarrier:
      case Stmt::Kind::kOmpTaskwait:
        break;
      case Stmt::Kind::kOmpCancel:
      case Stmt::Kind::kOmpCancellationPoint:
        check_cancel(stmt);
        break;
      case Stmt::Kind::kOmpCritical:
      case Stmt::Kind::kOmpMaster:
      case Stmt::Kind::kOmpOrdered:
      case Stmt::Kind::kOmpSingle:
        omp_ctx_.push_back(OmpCtx::kOther);
        check_stmt(*stmt.body);
        omp_ctx_.pop_back();
        break;
      case Stmt::Kind::kOmpTaskgroup:
        omp_ctx_.push_back(OmpCtx::kTaskgroup);
        check_stmt(*stmt.body);
        omp_ctx_.pop_back();
        break;
      case Stmt::Kind::kOmpAtomic: {
        if (stmt.body->kind != Stmt::Kind::kAssign ||
            stmt.body->assign_op == Stmt::AssignOp::kPlain) {
          diags_.error(stmt.loc,
                       "atomic requires a compound assignment statement "
                       "(x += expr and friends)");
          break;
        }
        check_stmt(*stmt.body);
        break;
      }
      case Stmt::Kind::kOmpReductionInit: {
        // Declares the private accumulator; its type comes from the variable
        // that carries the shared reduction target (an indirect parameter for
        // parallel-level reductions, an ordinary local for `for` reductions).
        Symbol* target = lookup(stmt.target);
        Type type = Type::invalid();
        if (target == nullptr) {
          diags_.error(stmt.loc, "unknown reduction target '" + stmt.target + "'");
        } else {
          type = target->type;
          if (!type.is_numeric() &&
              !(type.is_bool() && (stmt.reduce_op == ReduceOp::kLogAnd ||
                                   stmt.reduce_op == ReduceOp::kLogOr))) {
            diags_.error(stmt.loc, "reduction over unsupported type " +
                                       type.to_string());
            type = Type::invalid();
          }
        }
        stmt.target_symbol = target;
        stmt.symbol = declare(stmt.name, Symbol::Kind::kLocal, type,
                              /*is_const=*/false, stmt.loc);
        break;
      }
      case Stmt::Kind::kOmpReductionCombine:
      case Stmt::Kind::kOmpLastprivateWrite: {
        Symbol* local = lookup(stmt.name);
        Symbol* target = lookup(stmt.target);
        if (local == nullptr) {
          diags_.error(stmt.loc, "unknown local '" + stmt.name + "'");
        }
        if (target == nullptr) {
          diags_.error(stmt.loc, "unknown combine/writeback target '" +
                                     stmt.target + "'");
        } else if (target->is_const) {
          diags_.error(stmt.loc, "combine/writeback target '" + stmt.target +
                                     "' is const");
        } else if (local != nullptr && target->type != local->type) {
          diags_.error(stmt.loc, "type mismatch between '" + stmt.name +
                                     "' and '" + stmt.target + "'");
        }
        stmt.symbol = local;
        stmt.target_symbol = target;
        break;
      }
    }
  }

  /// The closely-nested construct-kind rule for `cancel` / `cancellation
  /// point`: the construct-type operand must name the *innermost* enclosing
  /// OpenMP construct (OpenMP 5.2 §12.5.1). An empty stack means the
  /// construct is orphaned — binding is dynamic, so the runtime resolves it
  /// (serial teams make every construct a no-op anyway).
  void check_cancel(Stmt& stmt) {
    const char* name = stmt.kind == Stmt::Kind::kOmpCancel
                           ? "cancel"
                           : "cancellation point";
    if (omp_ctx_.empty()) return;
    const OmpCtx inner = omp_ctx_.back();
    auto mismatch = [&](const char* construct, const char* need) {
      diags_.error(stmt.loc, std::string("'") + name + " " + construct +
                                 "' must be closely nested inside " + need +
                                 " (another construct intervenes)");
    };
    switch (stmt.cancel_construct) {
      case 1:  // parallel
        if (inner != OmpCtx::kParallel) mismatch("parallel", "a parallel region");
        break;
      case 2:  // for
        if (inner != OmpCtx::kWsLoop) {
          mismatch("for", "a worksharing loop");
        }
        break;
      case 4:  // taskgroup
        if (inner != OmpCtx::kTask) {
          mismatch("taskgroup", "a task (the cancel applies to the "
                                "innermost enclosing taskgroup)");
        }
        break;
      default:
        diags_.error(stmt.loc, std::string("'") + name +
                                   "' is missing its construct operand");
        break;
    }
  }

  void check_fork(Stmt& stmt, bool is_task) {
    FnDecl* callee = module_.find_function(stmt.callee);
    if (callee == nullptr || !callee->is_outlined) {
      diags_.error(stmt.loc, "fork target '" + stmt.callee +
                                 "' is not an outlined function");
      return;
    }
    stmt.callee_decl = callee;
    if (stmt.num_threads) {
      const Type t = check_expr(*stmt.num_threads);
      if (!t.is_invalid() && !t.is_i64()) {
        diags_.error(stmt.num_threads->loc, "num_threads must be i64");
      }
    }
    if (stmt.if_clause) {
      const Type t = check_expr(*stmt.if_clause);
      if (!t.is_invalid() && !t.is_bool()) {
        diags_.error(stmt.if_clause->loc, "if clause must be bool");
      }
    }
    if (is_task) check_task_clauses(stmt);
    if (callee->params.size() != stmt.captures.size()) {
      diags_.error(stmt.loc, "outlined function capture count mismatch");
      return;
    }
    // Resolve captures in the *enclosing* scope and bind the callee's
    // parameter types monomorphically (the paper's generics trick): the
    // engine outlined with no type information; the unique fork site now
    // supplies the types.
    bool ok = true;
    for (std::size_t i = 0; i < stmt.captures.size(); ++i) {
      if (!bind_capture(stmt, *callee, i, is_task)) ok = false;
    }
    if (ok) {
      omp_ctx_.push_back(is_task ? OmpCtx::kTask : OmpCtx::kParallel);
      check_function(*callee);
      omp_ctx_.pop_back();
    }
  }

  /// The tasking clause expressions of a task node, typed in the enclosing
  /// scope. Depend items were already shape-checked by the directive parser
  /// (variable or slice element); here they resolve and type like any
  /// expression — their *addresses* are what the backends hand the runtime.
  void check_task_clauses(Stmt& stmt) {
    for (auto& dep : stmt.depends) {
      check_expr(*dep.item);
    }
    if (stmt.final_clause) {
      const Type t = check_expr(*stmt.final_clause);
      if (!t.is_invalid() && !t.is_bool()) {
        diags_.error(stmt.final_clause->loc, "final clause must be bool");
      }
    }
    if (stmt.priority) {
      const Type t = check_expr(*stmt.priority);
      if (!t.is_invalid() && !t.is_i64()) {
        diags_.error(stmt.priority->loc, "priority must be i64");
      }
    }
  }

  /// `taskloop` node: like a task fork, except the callee's last two
  /// parameters are the synthesized chunk bounds (typed i64 here, by value)
  /// and the node carries the full-range bounds plus grainsize/num_tasks.
  void check_taskloop(Stmt& stmt) {
    FnDecl* callee = module_.find_function(stmt.callee);
    if (callee == nullptr || !callee->is_outlined) {
      diags_.error(stmt.loc, "taskloop target '" + stmt.callee +
                                 "' is not an outlined function");
      return;
    }
    stmt.callee_decl = callee;
    for (Expr* bound : {stmt.expr.get(), stmt.rhs.get()}) {
      const Type t = check_expr(*bound);
      if (!t.is_invalid() && !t.is_i64()) {
        diags_.error(bound->loc, "taskloop range bounds must be i64");
      }
    }
    for (Expr* clause : {stmt.grainsize.get(), stmt.num_tasks.get()}) {
      if (clause == nullptr) continue;
      const Type t = check_expr(*clause);
      if (!t.is_invalid() && !t.is_i64()) {
        diags_.error(clause->loc, "grainsize/num_tasks must be i64");
      }
    }
    if (callee->params.size() != stmt.captures.size() + 2) {
      diags_.error(stmt.loc, "outlined taskloop capture count mismatch");
      return;
    }
    bool ok = true;
    for (std::size_t i = 0; i < stmt.captures.size(); ++i) {
      if (!bind_capture(stmt, *callee, i, /*is_task=*/true)) ok = false;
    }
    for (std::size_t i = stmt.captures.size(); i < callee->params.size(); ++i) {
      Param& p = callee->params[i];
      if (p.type.is_inferred()) {
        p.type = Type::i64();
        p.indirect = false;
      }
    }
    if (ok) {
      omp_ctx_.push_back(OmpCtx::kTask);  // chunk tasks are task regions
      check_function(*callee);
      omp_ctx_.pop_back();
    }
  }

  /// Resolves capture #i in the enclosing scope and binds the callee's
  /// parameter type monomorphically. Returns false (with diagnostics) when
  /// the capture cannot be typed.
  bool bind_capture(Stmt& stmt, FnDecl& callee, std::size_t i, bool is_task) {
    CaptureArg& cap = stmt.captures[i];
    Symbol* sym = lookup(cap.name);
    if (sym == nullptr) {
      diags_.error(stmt.loc, "captured variable '" + cap.name +
                                 "' not found in enclosing scope");
      return false;
    }
    cap.symbol = sym;
    Type param_type = Type::invalid();
    bool indirect = false;
    bool ok = true;
    switch (cap.mode) {
      case CaptureMode::kSharedPtr:
      case CaptureMode::kSharedSlice:
        if (sym->type.is_slice()) {
          // Slice headers capture by value; the payload is shared storage.
          cap.mode = CaptureMode::kSharedSlice;
          param_type = sym->type;
        } else if (sym->type.is_scalar() && !sym->type.is_void()) {
          cap.mode = CaptureMode::kSharedPtr;
          param_type = sym->type;
          indirect = true;
        } else if (sym->type.is_pointer()) {
          // A shared pointer variable: share the pointer itself.
          cap.mode = CaptureMode::kSharedSlice;
          param_type = sym->type;
        } else {
          diags_.error(stmt.loc, "cannot share '" + cap.name + "' of type " +
                                     sym->type.to_string());
          ok = false;
        }
        break;
      case CaptureMode::kValue:
        if (sym->type.is_void() || sym->type.is_invalid()) {
          diags_.error(stmt.loc, "cannot capture '" + cap.name + "' by value");
          ok = false;
        } else {
          param_type = sym->type;
        }
        break;
      case CaptureMode::kReductionPtr:
        if (!sym->type.is_numeric()) {
          diags_.error(stmt.loc,
                       "reduction variable '" + cap.name + "' must be numeric");
          ok = false;
        } else {
          param_type = sym->type;
          indirect = true;
        }
        break;
    }
    if (is_task && cap.mode == CaptureMode::kReductionPtr) {
      diags_.error(stmt.loc, "task does not support reduction captures");
      ok = false;
    }
    if (param_type.is_invalid()) {
      ok = false;
    } else if (callee.params[i].type.is_inferred()) {
      callee.params[i].type = param_type;
      callee.params[i].indirect = indirect;
    } else if (callee.params[i].type != param_type ||
               callee.params[i].indirect != indirect) {
      diags_.error(stmt.loc,
                   "outlined function '" + callee.name +
                       "' forked twice with incompatible capture types");
      ok = false;
    }
    return ok;
  }

  void check_ws_loop(Stmt& stmt) {
    if (stmt.schedule.chunk) {
      const Type t = check_expr(*stmt.schedule.chunk);
      if (!t.is_invalid() && !t.is_i64()) {
        diags_.error(stmt.schedule.chunk->loc, "schedule chunk must be i64");
      }
    }
    if (stmt.body->kind != Stmt::Kind::kForRange) {
      diags_.error(stmt.loc,
                   "worksharing directive must be followed by a for-range "
                   "loop in canonical form");
      return;
    }
    // Note: user-facing ordered+nowait is rejected by the directive parser;
    // the *internal* nowait of the combined parallel-for lowering is fine
    // because the region's join barrier serialises construct instances.
    omp_ctx_.push_back(OmpCtx::kWsLoop);
    if (!stmt.collapse.empty()) {
      check_collapsed_body(stmt);
    } else {
      check_stmt(*stmt.body);
    }
    omp_ctx_.pop_back();
    stmt.lastprivate_syms.clear();
    for (const auto& [local, target] : stmt.lastprivate) {
      Symbol* l = lookup(local);
      if (l == nullptr) {
        diags_.error(stmt.loc, "lastprivate local '" + local + "' not found");
      }
      Symbol* t = lookup(target);
      if (t == nullptr) {
        diags_.error(stmt.loc, "lastprivate target '" + target + "' not found");
      } else if (t->is_const) {
        diags_.error(stmt.loc, "lastprivate target '" + target + "' is const");
      }
      stmt.lastprivate_syms.emplace_back(l, t);
    }
  }

  /// Canonicalized collapse(n) loop: the body is the linearized kForRange,
  /// and the original induction variables — recomputed by the backends per
  /// logical iteration from the collapse metadata — must be declared in the
  /// loop's scope so the body's references resolve. The synthesized
  /// lo/extent/stride locals were emitted by the directive engine in the
  /// enclosing block, already checked in statement order.
  void check_collapsed_body(Stmt& stmt) {
    Stmt& loop = *stmt.body;
    const Type lo = check_expr(*loop.expr);
    const Type hi = check_expr(*loop.rhs);
    if (!lo.is_invalid() && !lo.is_i64()) {
      diags_.error(loop.expr->loc, "range bounds must be i64");
    }
    if (!hi.is_invalid() && !hi.is_i64()) {
      diags_.error(loop.rhs->loc, "range bounds must be i64");
    }
    for (auto& dim : stmt.collapse) {
      dim.lo_symbol = lookup(dim.lo);
      dim.extent_symbol = lookup(dim.extent);
      dim.stride_symbol = lookup(dim.stride);
      if (dim.lo_symbol == nullptr || dim.extent_symbol == nullptr ||
          dim.stride_symbol == nullptr) {
        diags_.error(stmt.loc,
                     "collapse bounds for loop variable '" + dim.iv +
                         "' are not in scope (directive-engine bug)");
      }
    }
    push_scope();
    loop.symbol = declare(loop.name, Symbol::Kind::kLoopVar, Type::i64(),
                          /*is_const=*/true, loop.loc);
    for (auto& dim : stmt.collapse) {
      dim.iv_symbol = declare(dim.iv, Symbol::Kind::kLoopVar, Type::i64(),
                              /*is_const=*/true, loop.loc);
    }
    ++loop_depth_;
    check_stmt(*loop.body);
    --loop_depth_;
    pop_scope();
  }

  // -- Expressions -------------------------------------------------------------

  /// Checks `e` as an assignment target and returns its type.
  Type check_lvalue(Expr& e) {
    const Type t = check_expr(e);
    switch (e.kind) {
      case Expr::Kind::kVarRef:
        if (e.symbol != nullptr && e.symbol->is_const) {
          diags_.error(e.loc, "cannot assign to const '" + e.name + "'");
        }
        return t;
      case Expr::Kind::kIndex:
      case Expr::Kind::kDeref:
        return t;
      default:
        diags_.error(e.loc, "expression is not assignable");
        return Type::invalid();
    }
  }

  Type check_expr(Expr& e) {
    const Type t = check_expr_impl(e);
    e.type = t;
    return t;
  }

  Type check_expr_impl(Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit: return Type::i64();
      case Expr::Kind::kFloatLit: return Type::f64();
      case Expr::Kind::kBoolLit: return Type::boolean();
      case Expr::Kind::kStringLit: return Type::string();
      case Expr::Kind::kUndefined: return Type::invalid();
      case Expr::Kind::kVarRef: {
        Symbol* sym = lookup(e.name);
        if (sym == nullptr) {
          diags_.error(e.loc, "use of undeclared identifier '" + e.name + "'");
          return Type::invalid();
        }
        e.symbol = sym;
        return sym->type;
      }
      case Expr::Kind::kBinary: return check_binary(e);
      case Expr::Kind::kUnary: {
        const Type t = check_expr(*e.args[0]);
        if (t.is_invalid()) return t;
        if (e.un_op == UnOp::kNeg) {
          if (!t.is_numeric()) {
            diags_.error(e.loc, "negation needs a numeric operand");
            return Type::invalid();
          }
          return t;
        }
        if (!t.is_bool()) {
          diags_.error(e.loc, "'!' needs a bool operand");
          return Type::invalid();
        }
        return Type::boolean();
      }
      case Expr::Kind::kCall: return check_call(e);
      case Expr::Kind::kBuiltinCall: return check_builtin(e);
      case Expr::Kind::kIndex: {
        const Type base = check_expr(*e.args[0]);
        const Type index = check_expr(*e.args[1]);
        if (!base.is_invalid() && !base.is_slice()) {
          diags_.error(e.loc, "indexing requires a slice, found " +
                                  base.to_string());
          return Type::invalid();
        }
        if (!index.is_invalid() && !index.is_i64()) {
          diags_.error(e.args[1]->loc, "index must be i64");
        }
        return base.is_slice() ? base.element() : Type::invalid();
      }
      case Expr::Kind::kLen: {
        const Type base = check_expr(*e.args[0]);
        if (!base.is_invalid() && !base.is_slice()) {
          diags_.error(e.loc, "'.len' requires a slice");
          return Type::invalid();
        }
        return Type::i64();
      }
      case Expr::Kind::kAddrOf: {
        Expr& target = *e.args[0];
        const Type t = check_expr(target);
        if (target.kind == Expr::Kind::kVarRef) {
          e.symbol = target.symbol;
        } else if (target.kind != Expr::Kind::kIndex) {
          diags_.error(e.loc, "'&' requires a variable or slice element");
          return Type::invalid();
        }
        if (t.is_invalid()) return t;
        if (!t.is_scalar() || t.is_void()) {
          diags_.error(e.loc, "cannot take the address of a " + t.to_string());
          return Type::invalid();
        }
        return Type::pointer_to(t.scalar());
      }
      case Expr::Kind::kDeref: {
        const Type t = check_expr(*e.args[0]);
        if (t.is_invalid()) return t;
        if (!t.is_pointer()) {
          diags_.error(e.loc, "'.*' requires a pointer, found " + t.to_string());
          return Type::invalid();
        }
        return t.element();
      }
    }
    return Type::invalid();
  }

  Type check_binary(Expr& e) {
    const Type lhs = check_expr(*e.args[0]);
    const Type rhs = check_expr(*e.args[1]);
    if (lhs.is_invalid() || rhs.is_invalid()) return Type::invalid();
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        if (!lhs.is_numeric() || lhs != rhs) {
          diags_.error(e.loc, "arithmetic needs matching numeric operands (" +
                                  lhs.to_string() + " vs " + rhs.to_string() +
                                  "); use @floatFromInt/@intFromFloat");
          return Type::invalid();
        }
        return lhs;
      case BinOp::kRem:
      case BinOp::kBitAnd:
      case BinOp::kBitOr:
      case BinOp::kBitXor:
      case BinOp::kShl:
      case BinOp::kShr:
        if (!lhs.is_i64() || !rhs.is_i64()) {
          diags_.error(e.loc, "integer operator needs i64 operands");
          return Type::invalid();
        }
        return Type::i64();
      case BinOp::kEq:
      case BinOp::kNe:
        if (lhs != rhs || (!lhs.is_numeric() && !lhs.is_bool())) {
          diags_.error(e.loc, "equality needs matching scalar operands");
          return Type::invalid();
        }
        return Type::boolean();
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe:
        if (lhs != rhs || !lhs.is_numeric()) {
          diags_.error(e.loc, "comparison needs matching numeric operands");
          return Type::invalid();
        }
        return Type::boolean();
      case BinOp::kAnd:
      case BinOp::kOr:
        if (!lhs.is_bool() || !rhs.is_bool()) {
          diags_.error(e.loc, "'and'/'or' need bool operands");
          return Type::invalid();
        }
        return Type::boolean();
    }
    return Type::invalid();
  }

  Type check_call(Expr& e) {
    FnDecl* callee = module_.find_function(e.name);
    if (callee == nullptr) {
      diags_.error(e.loc, "call to unknown function '" + e.name + "'");
      for (auto& a : e.args) check_expr(*a);
      return Type::invalid();
    }
    if (callee->is_outlined) {
      diags_.error(e.loc, "outlined functions may only be forked");
      return Type::invalid();
    }
    e.callee = callee;
    if (e.args.size() != callee->params.size()) {
      diags_.error(e.loc, "'" + e.name + "' expects " +
                              std::to_string(callee->params.size()) +
                              " arguments, got " +
                              std::to_string(e.args.size()));
    }
    const std::size_t n = std::min(e.args.size(), callee->params.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Type got = check_expr(*e.args[i]);
      const Type want = callee->params[i].type;
      if (!got.is_invalid() && got != want) {
        diags_.error(e.args[i]->loc,
                     "argument " + std::to_string(i + 1) + " of '" + e.name +
                         "': expected " + want.to_string() + ", got " +
                         got.to_string());
      }
    }
    for (std::size_t i = n; i < e.args.size(); ++i) check_expr(*e.args[i]);
    return callee->return_type;
  }

  Type check_builtin(Expr& e) {
    auto arity = [&](std::size_t want) {
      if (e.args.size() != want) {
        diags_.error(e.loc, "builtin expects " + std::to_string(want) +
                                " argument(s), got " +
                                std::to_string(e.args.size()));
        return false;
      }
      return true;
    };
    switch (e.builtin) {
      case Builtin::kSqrt:
      case Builtin::kExp:
      case Builtin::kLog: {
        if (!arity(1)) return Type::invalid();
        const Type t = check_expr(*e.args[0]);
        if (!t.is_invalid() && !t.is_f64()) {
          diags_.error(e.loc, "math builtin needs an f64 argument");
        }
        return Type::f64();
      }
      case Builtin::kAbs: {
        if (!arity(1)) return Type::invalid();
        const Type t = check_expr(*e.args[0]);
        if (!t.is_invalid() && !t.is_numeric()) {
          diags_.error(e.loc, "@abs needs a numeric argument");
          return Type::invalid();
        }
        return t;
      }
      case Builtin::kPow: {
        if (!arity(2)) return Type::invalid();
        for (auto& a : e.args) {
          const Type t = check_expr(*a);
          if (!t.is_invalid() && !t.is_f64()) {
            diags_.error(a->loc, "@pow needs f64 arguments");
          }
        }
        return Type::f64();
      }
      case Builtin::kMin:
      case Builtin::kMax: {
        if (!arity(2)) return Type::invalid();
        const Type a = check_expr(*e.args[0]);
        const Type b = check_expr(*e.args[1]);
        if (a.is_invalid() || b.is_invalid()) return Type::invalid();
        if (a != b || !a.is_numeric()) {
          diags_.error(e.loc, "@min/@max need matching numeric arguments");
          return Type::invalid();
        }
        return a;
      }
      case Builtin::kMod: {
        if (!arity(2)) return Type::invalid();
        for (auto& a : e.args) {
          const Type t = check_expr(*a);
          if (!t.is_invalid() && !t.is_i64()) {
            diags_.error(a->loc, "@mod needs i64 arguments");
          }
        }
        return Type::i64();
      }
      case Builtin::kFloatFromInt: {
        if (!arity(1)) return Type::invalid();
        const Type t = check_expr(*e.args[0]);
        if (!t.is_invalid() && !t.is_i64()) {
          diags_.error(e.loc, "@floatFromInt needs an i64 argument");
        }
        return Type::f64();
      }
      case Builtin::kIntFromFloat: {
        if (!arity(1)) return Type::invalid();
        const Type t = check_expr(*e.args[0]);
        if (!t.is_invalid() && !t.is_f64()) {
          diags_.error(e.loc, "@intFromFloat needs an f64 argument");
        }
        return Type::i64();
      }
      case Builtin::kAlloc: {
        if (!arity(1)) return Type::invalid();
        const Type n = check_expr(*e.args[0]);
        if (!n.is_invalid() && !n.is_i64()) {
          diags_.error(e.loc, "@alloc length must be i64");
        }
        if (!e.alloc_elem.is_scalar() || e.alloc_elem.is_void()) {
          diags_.error(e.loc, "@alloc element type must be a scalar");
          return Type::invalid();
        }
        return Type::slice_of(e.alloc_elem.scalar());
      }
      case Builtin::kFree: {
        if (!arity(1)) return Type::invalid();
        const Type t = check_expr(*e.args[0]);
        if (!t.is_invalid() && !t.is_slice()) {
          diags_.error(e.loc, "@free needs a slice");
        }
        return Type::void_type();
      }
      case Builtin::kPrint: {
        for (auto& a : e.args) {
          const Type t = check_expr(*a);
          if (!t.is_invalid() && !t.is_scalar() && t != Type::string()) {
            diags_.error(a->loc, "@print accepts scalars and string literals");
          }
        }
        return Type::void_type();
      }
    }
    return Type::invalid();
  }

  /// The statically-known OpenMP construct context, for the closely-nested
  /// `cancel` checks. kOther covers the constructs cancel can never name
  /// (critical/single/master/ordered) but which still break close nesting.
  enum class OmpCtx { kParallel, kWsLoop, kTask, kTaskgroup, kOther };

  Module& module_;
  Diagnostics& diags_;
  std::vector<std::unordered_map<std::string, Symbol*>> scopes_;
  std::vector<FnDecl*> current_fn_stack_;
  std::unordered_set<const FnDecl*> checked_;
  std::vector<OmpCtx> omp_ctx_;
  int loop_depth_ = 0;
};

}  // namespace

bool analyze(Module& module, Diagnostics& diags) {
  Sema sema(module, diags);
  return sema.run();
}

}  // namespace zomp::lang
