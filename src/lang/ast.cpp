#include "lang/ast.h"

#include <sstream>

namespace zomp::lang {

const char* scalar_kind_name(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kVoid: return "void";
    case ScalarKind::kBool: return "bool";
    case ScalarKind::kI64: return "i64";
    case ScalarKind::kF64: return "f64";
  }
  return "<invalid>";
}

std::string Type::to_string() const {
  switch (kind_) {
    case Kind::kInvalid: return "<invalid>";
    case Kind::kInferred: return "<inferred>";
    case Kind::kScalar: return scalar_kind_name(scalar_);
    case Kind::kSlice: return std::string("[]") + scalar_kind_name(scalar_);
    case Kind::kPointer: return std::string("*") + scalar_kind_name(scalar_);
    case Kind::kString: return "<string>";
  }
  return "<invalid>";
}

const char* reduce_op_spelling(ReduceOp op) {
  switch (op) {
    case ReduceOp::kAdd: return "+";
    case ReduceOp::kSub: return "-";
    case ReduceOp::kMul: return "*";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kBitAnd: return "&";
    case ReduceOp::kBitOr: return "|";
    case ReduceOp::kBitXor: return "^";
    case ReduceOp::kLogAnd: return "and";
    case ReduceOp::kLogOr: return "or";
  }
  return "<invalid>";
}

ExprPtr Expr::make(Kind kind, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

StmtPtr Stmt::make(Kind kind, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

Symbol* Module::new_symbol(std::string name, Symbol::Kind kind, Type type,
                           bool is_const) {
  auto sym = std::make_unique<Symbol>();
  sym->name = std::move(name);
  sym->kind = kind;
  sym->type = type;
  sym->is_const = is_const;
  sym->id = static_cast<int>(symbols.size());
  symbols.push_back(std::move(sym));
  return symbols.back().get();
}

FnDecl* Module::find_function(const std::string& fn_name) {
  for (auto& fn : functions) {
    if (fn->name == fn_name) return fn.get();
  }
  return nullptr;
}

const FnDecl* Module::find_function(const std::string& fn_name) const {
  for (const auto& fn : functions) {
    if (fn->name == fn_name) return fn.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// AST dumping (golden-test format)
// ---------------------------------------------------------------------------

namespace {

const char* bin_op_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
  }
  return "?";
}

const char* builtin_name(Builtin b) {
  switch (b) {
    case Builtin::kSqrt: return "sqrt";
    case Builtin::kAbs: return "abs";
    case Builtin::kExp: return "exp";
    case Builtin::kLog: return "log";
    case Builtin::kPow: return "pow";
    case Builtin::kMin: return "min";
    case Builtin::kMax: return "max";
    case Builtin::kMod: return "mod";
    case Builtin::kFloatFromInt: return "floatFromInt";
    case Builtin::kIntFromFloat: return "intFromFloat";
    case Builtin::kAlloc: return "alloc";
    case Builtin::kFree: return "free";
    case Builtin::kPrint: return "print";
  }
  return "?";
}

const char* capture_mode_name(CaptureMode mode) {
  switch (mode) {
    case CaptureMode::kSharedPtr: return "shared-ptr";
    case CaptureMode::kSharedSlice: return "shared-slice";
    case CaptureMode::kValue: return "value";
    case CaptureMode::kReductionPtr: return "reduction-ptr";
  }
  return "?";
}

std::string indent_str(int indent) { return std::string(2 * static_cast<std::size_t>(indent), ' '); }

}  // namespace

std::string dump_expr(const Expr& expr) {
  std::ostringstream out;
  switch (expr.kind) {
    case Expr::Kind::kIntLit: out << expr.int_value; break;
    case Expr::Kind::kFloatLit: out << expr.float_value; break;
    case Expr::Kind::kBoolLit: out << (expr.bool_value ? "true" : "false"); break;
    case Expr::Kind::kStringLit: out << '"' << expr.name << '"'; break;
    case Expr::Kind::kUndefined: out << "undefined"; break;
    case Expr::Kind::kVarRef: out << expr.name; break;
    case Expr::Kind::kBinary:
      out << '(' << bin_op_name(expr.bin_op) << ' ' << dump_expr(*expr.args[0])
          << ' ' << dump_expr(*expr.args[1]) << ')';
      break;
    case Expr::Kind::kUnary:
      out << '(' << (expr.un_op == UnOp::kNeg ? "-" : "!") << ' '
          << dump_expr(*expr.args[0]) << ')';
      break;
    case Expr::Kind::kCall: {
      out << "(call " << expr.name;
      for (const auto& a : expr.args) out << ' ' << dump_expr(*a);
      out << ')';
      break;
    }
    case Expr::Kind::kBuiltinCall: {
      out << "(@" << builtin_name(expr.builtin);
      if (expr.builtin == Builtin::kAlloc) out << ' ' << expr.alloc_elem.to_string();
      for (const auto& a : expr.args) out << ' ' << dump_expr(*a);
      out << ')';
      break;
    }
    case Expr::Kind::kIndex:
      out << "(index " << dump_expr(*expr.args[0]) << ' '
          << dump_expr(*expr.args[1]) << ')';
      break;
    case Expr::Kind::kLen:
      out << "(len " << dump_expr(*expr.args[0]) << ')';
      break;
    case Expr::Kind::kAddrOf:
      out << "(& " << dump_expr(*expr.args[0]) << ')';
      break;
    case Expr::Kind::kDeref:
      out << "(deref " << dump_expr(*expr.args[0]) << ')';
      break;
  }
  return out.str();
}

std::string dump_stmt(const Stmt& stmt, int indent) {
  std::ostringstream out;
  const std::string pad = indent_str(indent);
  switch (stmt.kind) {
    case Stmt::Kind::kBlock:
      out << pad << "(block\n";
      for (const auto& s : stmt.stmts) out << dump_stmt(*s, indent + 1);
      out << pad << ")\n";
      break;
    case Stmt::Kind::kVarDecl:
      out << pad << '(' << (stmt.is_const ? "const" : "var") << ' ' << stmt.name;
      if (stmt.has_declared_type) out << " : " << stmt.declared_type.to_string();
      out << " = " << (stmt.init ? dump_expr(*stmt.init) : "undefined") << ")\n";
      break;
    case Stmt::Kind::kAssign: {
      const char* op = stmt.assign_op == Stmt::AssignOp::kPlain ? "="
                       : stmt.assign_op == Stmt::AssignOp::kAdd ? "+="
                       : stmt.assign_op == Stmt::AssignOp::kSub ? "-="
                       : stmt.assign_op == Stmt::AssignOp::kMul ? "*="
                                                                : "/=";
      out << pad << "(assign " << op << ' ' << dump_expr(*stmt.lhs) << ' '
          << dump_expr(*stmt.rhs) << ")\n";
      break;
    }
    case Stmt::Kind::kExprStmt:
      out << pad << "(expr " << dump_expr(*stmt.expr) << ")\n";
      break;
    case Stmt::Kind::kIf:
      out << pad << "(if " << dump_expr(*stmt.expr) << '\n';
      out << dump_stmt(*stmt.then_block, indent + 1);
      if (stmt.else_block) out << dump_stmt(*stmt.else_block, indent + 1);
      out << pad << ")\n";
      break;
    case Stmt::Kind::kWhile:
      out << pad << "(while " << dump_expr(*stmt.expr) << '\n';
      if (stmt.step) out << dump_stmt(*stmt.step, indent + 1);
      out << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    case Stmt::Kind::kForRange:
      out << pad << "(for " << stmt.name << " in " << dump_expr(*stmt.expr)
          << " .. " << dump_expr(*stmt.rhs) << '\n'
          << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    case Stmt::Kind::kReturn:
      out << pad << "(return" << (stmt.expr ? ' ' + dump_expr(*stmt.expr) : std::string())
          << ")\n";
      break;
    case Stmt::Kind::kBreak: out << pad << "(break)\n"; break;
    case Stmt::Kind::kContinue: out << pad << "(continue)\n"; break;
    case Stmt::Kind::kOmpFork: {
      out << pad << "(omp-fork " << stmt.callee;
      if (stmt.num_threads) out << " num_threads=" << dump_expr(*stmt.num_threads);
      if (stmt.if_clause) out << " if=" << dump_expr(*stmt.if_clause);
      if (stmt.proc_bind >= 0) {
        static const char* const names[] = {"false", "true", "primary",
                                            "close", "spread"};
        out << " proc_bind="
            << (stmt.proc_bind <= 4 ? names[stmt.proc_bind] : "?");
      }
      if (stmt.hoist_depth > 0) out << " hoist@" << stmt.hoist_depth;
      for (const auto& c : stmt.captures) {
        out << " [" << c.name << ' ' << capture_mode_name(c.mode);
        if (c.mode == CaptureMode::kReductionPtr) {
          out << ' ' << reduce_op_spelling(c.reduce_op);
        }
        out << ']';
      }
      out << ")\n";
      break;
    }
    case Stmt::Kind::kOmpWsLoop: {
      out << pad << "(omp-for";
      switch (stmt.schedule.kind) {
        case ScheduleSpec::Kind::kUnspecified: break;
        case ScheduleSpec::Kind::kStatic: out << " schedule=static"; break;
        case ScheduleSpec::Kind::kDynamic: out << " schedule=dynamic"; break;
        case ScheduleSpec::Kind::kGuided: out << " schedule=guided"; break;
        case ScheduleSpec::Kind::kAuto: out << " schedule=auto"; break;
        case ScheduleSpec::Kind::kRuntime: out << " schedule=runtime"; break;
      }
      if (stmt.schedule.chunk) out << " chunk=" << dump_expr(*stmt.schedule.chunk);
      if (!stmt.collapse.empty()) {
        out << " collapse=" << stmt.collapse.size() << '[';
        for (std::size_t i = 0; i < stmt.collapse.size(); ++i) {
          if (i > 0) out << ' ';
          out << stmt.collapse[i].iv;
        }
        out << ']';
      }
      if (stmt.nowait) out << " nowait";
      if (stmt.ordered) out << " ordered";
      if (stmt.static_spec) out << " static-spec";
      for (const auto& lp : stmt.lastprivate) {
        out << " lastprivate=" << lp.first << "->" << lp.second;
      }
      out << '\n' << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    }
    case Stmt::Kind::kOmpBarrier: out << pad << "(omp-barrier)\n"; break;
    case Stmt::Kind::kOmpCritical:
      out << pad << "(omp-critical \"" << stmt.name << "\"\n"
          << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    case Stmt::Kind::kOmpSingle:
      out << pad << "(omp-single" << (stmt.nowait ? " nowait" : "") << '\n'
          << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    case Stmt::Kind::kOmpMaster:
      out << pad << "(omp-master\n" << dump_stmt(*stmt.body, indent + 1) << pad
          << ")\n";
      break;
    case Stmt::Kind::kOmpAtomic:
      out << pad << "(omp-atomic\n" << dump_stmt(*stmt.body, indent + 1) << pad
          << ")\n";
      break;
    case Stmt::Kind::kOmpOrdered:
      out << pad << "(omp-ordered\n" << dump_stmt(*stmt.body, indent + 1) << pad
          << ")\n";
      break;
    case Stmt::Kind::kOmpReductionInit:
      out << pad << "(omp-red-init " << stmt.name << ' '
          << reduce_op_spelling(stmt.reduce_op) << " from " << stmt.target
          << ")\n";
      break;
    case Stmt::Kind::kOmpReductionCombine:
      out << pad << "(omp-red-combine " << stmt.target << ' '
          << reduce_op_spelling(stmt.reduce_op) << ' ' << stmt.name << ")\n";
      break;
    case Stmt::Kind::kOmpLastprivateWrite:
      out << pad << "(omp-lastprivate " << stmt.target << " = " << stmt.name
          << ")\n";
      break;
    case Stmt::Kind::kOmpTask: {
      out << pad << "(omp-task " << stmt.callee;
      for (const auto& c : stmt.captures) {
        out << " [" << c.name << ' ' << capture_mode_name(c.mode) << ']';
      }
      for (const auto& dep : stmt.depends) {
        const char* kind = dep.kind == 1 ? "in" : dep.kind == 2 ? "out" : "inout";
        out << " depend(" << kind << ": " << dump_expr(*dep.item) << ')';
      }
      if (stmt.final_clause) out << " final=" << dump_expr(*stmt.final_clause);
      if (stmt.priority) out << " priority=" << dump_expr(*stmt.priority);
      if (stmt.untied) out << " untied";
      out << ")\n";
      break;
    }
    case Stmt::Kind::kOmpTaskwait: out << pad << "(omp-taskwait)\n"; break;
    case Stmt::Kind::kOmpCancel:
    case Stmt::Kind::kOmpCancellationPoint: {
      const char* construct = stmt.cancel_construct == 1   ? "parallel"
                              : stmt.cancel_construct == 2 ? "for"
                                                           : "taskgroup";
      out << pad
          << (stmt.kind == Stmt::Kind::kOmpCancel ? "(omp-cancel "
                                                  : "(omp-cancellation-point ")
          << construct << ")\n";
      break;
    }
    case Stmt::Kind::kOmpTaskgroup:
      out << pad << "(omp-taskgroup\n"
          << dump_stmt(*stmt.body, indent + 1) << pad << ")\n";
      break;
    case Stmt::Kind::kOmpTaskloop: {
      out << pad << "(omp-taskloop " << stmt.callee << " [" << dump_expr(*stmt.expr)
          << ' ' << dump_expr(*stmt.rhs) << ']';
      if (stmt.grainsize) out << " grainsize=" << dump_expr(*stmt.grainsize);
      if (stmt.num_tasks) out << " num_tasks=" << dump_expr(*stmt.num_tasks);
      for (const auto& c : stmt.captures) {
        out << " [" << c.name << ' ' << capture_mode_name(c.mode) << ']';
      }
      out << ")\n";
      break;
    }
  }
  return out.str();
}

std::string dump_ast(const Module& module) {
  std::ostringstream out;
  out << "(module " << module.name << '\n';
  for (const auto& g : module.globals) out << dump_stmt(*g, 1);
  for (const auto& fn : module.functions) {
    out << "  (" << (fn->is_extern ? "extern-fn" : fn->is_outlined ? "outlined-fn" : "fn")
        << ' ' << fn->name << " (";
    for (std::size_t i = 0; i < fn->params.size(); ++i) {
      if (i > 0) out << ' ';
      out << fn->params[i].name << ':' << fn->params[i].type.to_string();
    }
    out << ") " << fn->return_type.to_string() << '\n';
    if (fn->body) out << dump_stmt(*fn->body, 2);
    out << "  )\n";
  }
  out << ")\n";
  return out.str();
}

}  // namespace zomp::lang
