// Deep-clone helpers for AST subtrees. The directive engine clones loop
// bounds and clause expressions when it splits combined constructs
// (`parallel for`) and when lowering needs the same expression in two places.
// Clones carry source locations but no resolution results (sema re-resolves).
#pragma once

#include "lang/ast.h"

namespace zomp::lang {

ExprPtr clone_expr(const Expr& expr);
StmtPtr clone_stmt(const Stmt& stmt);

}  // namespace zomp::lang
