#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace zomp::lang {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kBuiltin: return "builtin";
    case TokenKind::kDirective: return "omp directive";
    case TokenKind::kKwFn: return "'fn'";
    case TokenKind::kKwVar: return "'var'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwAnd: return "'and'";
    case TokenKind::kKwOr: return "'or'";
    case TokenKind::kKwExtern: return "'extern'";
    case TokenKind::kKwPub: return "'pub'";
    case TokenKind::kKwUndefined: return "'undefined'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotStar: return "'.*'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kBang: return "'!'";
  }
  return "<invalid>";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"fn", TokenKind::kKwFn},
      {"var", TokenKind::kKwVar},
      {"const", TokenKind::kKwConst},
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},
      {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
      {"and", TokenKind::kKwAnd},
      {"or", TokenKind::kKwOr},
      {"extern", TokenKind::kKwExtern},
      {"pub", TokenKind::kKwPub},
      {"undefined", TokenKind::kKwUndefined},
  };
  return table;
}

}  // namespace

char Lexer::peek(std::size_t ahead) const {
  const std::string_view text = file_.contents();
  return pos_ + ahead < text.size() ? text[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = peek();
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const {
  return SourceLoc{static_cast<std::uint32_t>(pos_), line_, col_};
}

void Lexer::lex_line_comment(std::vector<Token>& out) {
  // Called with pos_ at the first '/'. Directive comments spell "//#omp".
  const SourceLoc start = here();
  advance();  // '/'
  advance();  // '/'
  std::string body;
  while (!at_end() && peek() != '\n') body.push_back(advance());
  constexpr std::string_view kPrefix = "#omp";
  if (body.size() >= kPrefix.size() &&
      std::string_view(body).substr(0, kPrefix.size()) == kPrefix) {
    Token tok;
    tok.kind = TokenKind::kDirective;
    tok.loc = start;
    tok.text = body.substr(kPrefix.size());  // clause text after "//#omp"
    out.push_back(std::move(tok));
  }
  // Ordinary comments (including doc comments "///") are trivia.
}

Token Lexer::lex_number() {
  Token tok;
  tok.loc = here();
  std::string spelling;
  bool is_float = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    spelling.push_back(advance());
    spelling.push_back(advance());
    while (std::isxdigit(static_cast<unsigned char>(peek())) || peek() == '_') {
      const char c = advance();
      if (c != '_') spelling.push_back(c);
    }
    tok.kind = TokenKind::kIntLiteral;
    tok.int_value = static_cast<std::int64_t>(
        std::strtoull(spelling.c_str(), nullptr, 16));
    tok.text = std::move(spelling);
    return tok;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_') {
    const char c = advance();
    if (c != '_') spelling.push_back(c);
  }
  // A '.' begins a fraction only when followed by a digit; "0..n" must lex
  // as int, '..', int.
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    spelling.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      spelling.push_back(advance());
    }
  }
  if (peek() == 'e' || peek() == 'E') {
    const char next = peek(1);
    const char next2 = peek(2);
    if (std::isdigit(static_cast<unsigned char>(next)) ||
        ((next == '+' || next == '-') &&
         std::isdigit(static_cast<unsigned char>(next2)))) {
      is_float = true;
      spelling.push_back(advance());
      if (peek() == '+' || peek() == '-') spelling.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        spelling.push_back(advance());
      }
    }
  }
  if (is_float) {
    tok.kind = TokenKind::kFloatLiteral;
    tok.float_value = std::strtod(spelling.c_str(), nullptr);
  } else {
    tok.kind = TokenKind::kIntLiteral;
    tok.int_value = static_cast<std::int64_t>(
        std::strtoll(spelling.c_str(), nullptr, 10));
  }
  tok.text = std::move(spelling);
  return tok;
}

Token Lexer::lex_identifier_or_keyword() {
  Token tok;
  tok.loc = here();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    name.push_back(advance());
  }
  const auto& table = keyword_table();
  if (const auto it = table.find(name); it != table.end()) {
    tok.kind = it->second;
  } else {
    tok.kind = TokenKind::kIdentifier;
  }
  tok.text = std::move(name);
  return tok;
}

Token Lexer::lex_builtin() {
  Token tok;
  tok.loc = here();
  advance();  // '@'
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    name.push_back(advance());
  }
  if (name.empty()) {
    diags_.error(tok.loc, "expected builtin name after '@'");
  }
  tok.kind = TokenKind::kBuiltin;
  tok.text = std::move(name);
  return tok;
}

Token Lexer::lex_string() {
  Token tok;
  tok.loc = here();
  tok.kind = TokenKind::kStringLiteral;
  advance();  // opening quote
  std::string value;
  while (!at_end() && peek() != '"' && peek() != '\n') {
    char c = advance();
    if (c == '\\') {
      const char esc = advance();
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default:
          diags_.error(here(), std::string("unknown escape '\\") + esc + "'");
          c = esc;
      }
    }
    value.push_back(c);
  }
  if (!match('"')) {
    diags_.error(tok.loc, "unterminated string literal");
  }
  tok.text = std::move(value);
  return tok;
}

std::vector<Token> Lexer::lex() {
  std::vector<Token> out;
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      lex_line_comment(out);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lex_identifier_or_keyword());
      continue;
    }
    if (c == '@') {
      out.push_back(lex_builtin());
      continue;
    }
    if (c == '"') {
      out.push_back(lex_string());
      continue;
    }

    Token tok;
    tok.loc = here();
    advance();
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; break;
      case ')': tok.kind = TokenKind::kRParen; break;
      case '{': tok.kind = TokenKind::kLBrace; break;
      case '}': tok.kind = TokenKind::kRBrace; break;
      case '[': tok.kind = TokenKind::kLBracket; break;
      case ']': tok.kind = TokenKind::kRBracket; break;
      case ',': tok.kind = TokenKind::kComma; break;
      case ';': tok.kind = TokenKind::kSemicolon; break;
      case ':': tok.kind = TokenKind::kColon; break;
      case '|': tok.kind = TokenKind::kPipe; break;
      case '&': tok.kind = TokenKind::kAmp; break;
      case '^': tok.kind = TokenKind::kCaret; break;
      case '%': tok.kind = TokenKind::kPercent; break;
      case '.':
        if (match('*')) {
          tok.kind = TokenKind::kDotStar;
        } else if (match('.')) {
          tok.kind = TokenKind::kDotDot;
        } else {
          tok.kind = TokenKind::kDot;
        }
        break;
      case '+':
        tok.kind = match('=') ? TokenKind::kPlusAssign : TokenKind::kPlus;
        break;
      case '-':
        tok.kind = match('=') ? TokenKind::kMinusAssign : TokenKind::kMinus;
        break;
      case '*':
        tok.kind = match('=') ? TokenKind::kStarAssign : TokenKind::kStar;
        break;
      case '/':
        tok.kind = match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
        break;
      case '=':
        tok.kind = match('=') ? TokenKind::kEq : TokenKind::kAssign;
        break;
      case '!':
        tok.kind = match('=') ? TokenKind::kNe : TokenKind::kBang;
        break;
      case '<':
        if (match('<')) {
          tok.kind = TokenKind::kShl;
        } else {
          tok.kind = match('=') ? TokenKind::kLe : TokenKind::kLt;
        }
        break;
      case '>':
        if (match('>')) {
          tok.kind = TokenKind::kShr;
        } else {
          tok.kind = match('=') ? TokenKind::kGe : TokenKind::kGt;
        }
        break;
      default:
        diags_.error(tok.loc,
                     std::string("unexpected character '") + c + "'");
        continue;  // skip it and keep lexing
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.loc = here();
  out.push_back(std::move(eof));
  return out;
}

}  // namespace zomp::lang
