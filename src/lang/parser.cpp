#include "lang/parser.h"

#include <string_view>
#include <unordered_map>
#include <utility>

namespace zomp::lang {

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& tok = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* what) {
  if (check(kind)) return advance();
  diags_.error(peek().loc, std::string("expected ") + what + " but found " +
                               token_kind_name(peek().kind));
  return peek();
}

void Parser::sync_to_decl() {
  while (!check(TokenKind::kEof) && !check(TokenKind::kKwFn) &&
         !check(TokenKind::kKwExtern) && !check(TokenKind::kKwPub) &&
         !check(TokenKind::kKwVar) && !check(TokenKind::kKwConst)) {
    advance();
  }
}

void Parser::sync_to_stmt() {
  while (!check(TokenKind::kEof) && !check(TokenKind::kSemicolon) &&
         !check(TokenKind::kRBrace)) {
    advance();
  }
  match(TokenKind::kSemicolon);
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expression(std::vector<Token> tokens,
                                 Diagnostics& diags) {
  if (tokens.empty() || !tokens.back().is(TokenKind::kEof)) {
    Token eof;
    eof.kind = TokenKind::kEof;
    if (!tokens.empty()) eof.loc = tokens.back().loc;
    tokens.push_back(eof);
  }
  Parser parser(std::move(tokens), diags);
  ExprPtr expr = parser.parse_expr();
  if (!parser.check(TokenKind::kEof)) {
    diags.error(parser.peek().loc, "trailing tokens after expression");
  }
  return expr;
}

std::unique_ptr<Module> Parser::parse_module(std::string module_name) {
  auto module = std::make_unique<Module>();
  module->name = std::move(module_name);
  while (!check(TokenKind::kEof)) {
    if (check(TokenKind::kDirective)) {
      diags_.error(peek().loc,
                   "OpenMP directives must precede a statement inside a "
                   "function body");
      advance();
      continue;
    }
    const bool is_pub = match(TokenKind::kKwPub);
    if (match(TokenKind::kKwExtern)) {
      expect(TokenKind::kKwFn, "'fn' after 'extern'");
      auto fn = parse_fn(/*is_extern=*/true, is_pub);
      if (fn) module->functions.push_back(std::move(fn));
      continue;
    }
    if (match(TokenKind::kKwFn)) {
      auto fn = parse_fn(/*is_extern=*/false, is_pub);
      if (fn) module->functions.push_back(std::move(fn));
      continue;
    }
    if (check(TokenKind::kKwVar) || check(TokenKind::kKwConst)) {
      auto global = parse_global();
      if (global) module->globals.push_back(std::move(global));
      continue;
    }
    diags_.error(peek().loc, std::string("expected declaration but found ") +
                                 token_kind_name(peek().kind));
    sync_to_decl();
  }
  return module;
}

std::unique_ptr<FnDecl> Parser::parse_fn(bool is_extern, bool is_pub) {
  auto fn = std::make_unique<FnDecl>();
  fn->is_extern = is_extern;
  fn->is_pub = is_pub;
  const Token& name = expect(TokenKind::kIdentifier, "function name");
  fn->name = name.text;
  fn->loc = name.loc;
  expect(TokenKind::kLParen, "'('");
  if (!check(TokenKind::kRParen)) {
    do {
      Param param;
      const Token& pname = expect(TokenKind::kIdentifier, "parameter name");
      param.name = pname.text;
      param.loc = pname.loc;
      expect(TokenKind::kColon, "':' after parameter name");
      param.type = parse_type();
      fn->params.push_back(std::move(param));
    } while (match(TokenKind::kComma));
  }
  expect(TokenKind::kRParen, "')'");
  fn->return_type = parse_type();
  if (is_extern) {
    expect(TokenKind::kSemicolon, "';' after extern declaration");
  } else {
    fn->body = parse_block();
  }
  return fn;
}

StmtPtr Parser::parse_global() {
  auto stmt = parse_var_decl();
  return stmt;
}

Type Parser::parse_type() {
  if (match(TokenKind::kLBracket)) {
    expect(TokenKind::kRBracket, "']' in slice type");
    const Token& elem = expect(TokenKind::kIdentifier, "slice element type");
    if (elem.text == "i64") return Type::slice_of(ScalarKind::kI64);
    if (elem.text == "f64") return Type::slice_of(ScalarKind::kF64);
    if (elem.text == "bool") return Type::slice_of(ScalarKind::kBool);
    diags_.error(elem.loc, "unsupported slice element type '" + elem.text + "'");
    return Type::invalid();
  }
  if (match(TokenKind::kStar)) {
    const Token& elem = expect(TokenKind::kIdentifier, "pointee type");
    if (elem.text == "i64") return Type::pointer_to(ScalarKind::kI64);
    if (elem.text == "f64") return Type::pointer_to(ScalarKind::kF64);
    if (elem.text == "bool") return Type::pointer_to(ScalarKind::kBool);
    diags_.error(elem.loc, "unsupported pointee type '" + elem.text + "'");
    return Type::invalid();
  }
  const Token& name = expect(TokenKind::kIdentifier, "type name");
  if (name.text == "void") return Type::void_type();
  if (name.text == "bool") return Type::boolean();
  if (name.text == "i64") return Type::i64();
  if (name.text == "f64") return Type::f64();
  diags_.error(name.loc, "unknown type '" + name.text + "'");
  return Type::invalid();
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parse_block() {
  const Token& open = expect(TokenKind::kLBrace, "'{'");
  auto block = Stmt::make(Stmt::Kind::kBlock, open.loc);
  std::vector<std::pair<std::string, SourceLoc>> pending;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (check(TokenKind::kDirective)) {
      const Token& d = advance();
      pending.emplace_back(d.text, d.loc);
      continue;
    }
    StmtPtr stmt = parse_stmt();
    if (!stmt) {
      sync_to_stmt();
      continue;
    }
    if (!pending.empty()) {
      stmt->pending_directives = std::move(pending);
      pending.clear();
    }
    block->stmts.push_back(std::move(stmt));
  }
  if (!pending.empty()) {
    // Standalone directives (barrier, taskwait, ...) at block end: attach to
    // a synthesized empty statement; the directive engine validates that the
    // directive kind indeed needs no associated statement.
    auto placeholder = Stmt::make(Stmt::Kind::kBlock, pending.front().second);
    placeholder->pending_directives = std::move(pending);
    block->stmts.push_back(std::move(placeholder));
  }
  expect(TokenKind::kRBrace, "'}'");
  return block;
}

StmtPtr Parser::parse_stmt() {
  switch (peek().kind) {
    case TokenKind::kLBrace: return parse_block();
    case TokenKind::kKwVar:
    case TokenKind::kKwConst: return parse_var_decl();
    case TokenKind::kKwIf: return parse_if();
    case TokenKind::kKwWhile: return parse_while();
    case TokenKind::kKwFor: return parse_for();
    case TokenKind::kKwReturn: {
      const Token& kw = advance();
      auto stmt = Stmt::make(Stmt::Kind::kReturn, kw.loc);
      if (!check(TokenKind::kSemicolon)) stmt->expr = parse_expr();
      expect(TokenKind::kSemicolon, "';' after return");
      return stmt;
    }
    case TokenKind::kKwBreak: {
      const Token& kw = advance();
      expect(TokenKind::kSemicolon, "';' after break");
      return Stmt::make(Stmt::Kind::kBreak, kw.loc);
    }
    case TokenKind::kKwContinue: {
      const Token& kw = advance();
      expect(TokenKind::kSemicolon, "';' after continue");
      return Stmt::make(Stmt::Kind::kContinue, kw.loc);
    }
    default: return parse_simple_stmt();
  }
}

StmtPtr Parser::parse_var_decl() {
  const bool is_const = peek().is(TokenKind::kKwConst);
  const Token& kw = advance();  // var/const
  auto stmt = Stmt::make(Stmt::Kind::kVarDecl, kw.loc);
  stmt->is_const = is_const;
  stmt->name = expect(TokenKind::kIdentifier, "variable name").text;
  if (match(TokenKind::kColon)) {
    stmt->declared_type = parse_type();
    stmt->has_declared_type = true;
  }
  expect(TokenKind::kAssign, "'=' in declaration");
  if (match(TokenKind::kKwUndefined)) {
    if (!stmt->has_declared_type) {
      diags_.error(stmt->loc, "'undefined' initialiser requires a declared type");
    }
    stmt->init = nullptr;
  } else {
    stmt->init = parse_expr();
  }
  expect(TokenKind::kSemicolon, "';' after declaration");
  return stmt;
}

StmtPtr Parser::parse_if() {
  const Token& kw = advance();
  auto stmt = Stmt::make(Stmt::Kind::kIf, kw.loc);
  expect(TokenKind::kLParen, "'(' after if");
  stmt->expr = parse_expr();
  expect(TokenKind::kRParen, "')'");
  stmt->then_block = parse_block();
  if (match(TokenKind::kKwElse)) {
    stmt->else_block =
        check(TokenKind::kKwIf) ? parse_if() : parse_block();
  }
  return stmt;
}

StmtPtr Parser::parse_while() {
  const Token& kw = advance();
  auto stmt = Stmt::make(Stmt::Kind::kWhile, kw.loc);
  expect(TokenKind::kLParen, "'(' after while");
  stmt->expr = parse_expr();
  expect(TokenKind::kRParen, "')'");
  if (match(TokenKind::kColon)) {
    // Zig continue expression: while (c) : (i += 1) { ... }
    expect(TokenKind::kLParen, "'(' after ':'");
    stmt->step = parse_simple_stmt_no_semi();
    expect(TokenKind::kRParen, "')'");
  }
  stmt->body = parse_block();
  return stmt;
}

StmtPtr Parser::parse_for() {
  const Token& kw = advance();
  auto stmt = Stmt::make(Stmt::Kind::kForRange, kw.loc);
  expect(TokenKind::kLParen, "'(' after for");
  stmt->expr = parse_expr();  // lower bound
  expect(TokenKind::kDotDot, "'..' in range");
  stmt->rhs = parse_expr();  // upper bound (exclusive)
  expect(TokenKind::kRParen, "')'");
  expect(TokenKind::kPipe, "'|' before loop capture");
  stmt->name = expect(TokenKind::kIdentifier, "loop variable").text;
  expect(TokenKind::kPipe, "'|' after loop capture");
  stmt->body = parse_block();
  return stmt;
}

StmtPtr Parser::parse_simple_stmt() {
  StmtPtr stmt = parse_simple_stmt_no_semi();
  expect(TokenKind::kSemicolon, "';'");
  return stmt;
}

StmtPtr Parser::parse_simple_stmt_no_semi() {
  const SourceLoc loc = peek().loc;
  ExprPtr lhs = parse_expr();
  if (!lhs) return nullptr;
  Stmt::AssignOp op;
  switch (peek().kind) {
    case TokenKind::kAssign: op = Stmt::AssignOp::kPlain; break;
    case TokenKind::kPlusAssign: op = Stmt::AssignOp::kAdd; break;
    case TokenKind::kMinusAssign: op = Stmt::AssignOp::kSub; break;
    case TokenKind::kStarAssign: op = Stmt::AssignOp::kMul; break;
    case TokenKind::kSlashAssign: op = Stmt::AssignOp::kDiv; break;
    default: {
      auto stmt = Stmt::make(Stmt::Kind::kExprStmt, loc);
      stmt->expr = std::move(lhs);
      return stmt;
    }
  }
  advance();
  auto stmt = Stmt::make(Stmt::Kind::kAssign, loc);
  stmt->assign_op = op;
  stmt->lhs = std::move(lhs);
  stmt->rhs = parse_expr();
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr() { return parse_or(); }

namespace {

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Expr::make(Expr::Kind::kBinary, lhs->loc);
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

}  // namespace

ExprPtr Parser::parse_or() {
  ExprPtr lhs = parse_and();
  while (match(TokenKind::kKwOr)) {
    lhs = make_binary(BinOp::kOr, std::move(lhs), parse_and());
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  ExprPtr lhs = parse_comparison();
  while (match(TokenKind::kKwAnd)) {
    lhs = make_binary(BinOp::kAnd, std::move(lhs), parse_comparison());
  }
  return lhs;
}

ExprPtr Parser::parse_comparison() {
  ExprPtr lhs = parse_bitwise();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kEq: op = BinOp::kEq; break;
      case TokenKind::kNe: op = BinOp::kNe; break;
      case TokenKind::kLt: op = BinOp::kLt; break;
      case TokenKind::kLe: op = BinOp::kLe; break;
      case TokenKind::kGt: op = BinOp::kGt; break;
      case TokenKind::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    advance();
    lhs = make_binary(op, std::move(lhs), parse_bitwise());
  }
}

ExprPtr Parser::parse_bitwise() {
  ExprPtr lhs = parse_shift();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kAmp: op = BinOp::kBitAnd; break;
      case TokenKind::kPipe: op = BinOp::kBitOr; break;
      case TokenKind::kCaret: op = BinOp::kBitXor; break;
      default: return lhs;
    }
    advance();
    lhs = make_binary(op, std::move(lhs), parse_shift());
  }
}

ExprPtr Parser::parse_shift() {
  ExprPtr lhs = parse_additive();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kShl: op = BinOp::kShl; break;
      case TokenKind::kShr: op = BinOp::kShr; break;
      default: return lhs;
    }
    advance();
    lhs = make_binary(op, std::move(lhs), parse_additive());
  }
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_multiplicative();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kPlus: op = BinOp::kAdd; break;
      case TokenKind::kMinus: op = BinOp::kSub; break;
      default: return lhs;
    }
    advance();
    lhs = make_binary(op, std::move(lhs), parse_multiplicative());
  }
}

ExprPtr Parser::parse_multiplicative() {
  ExprPtr lhs = parse_unary();
  for (;;) {
    BinOp op;
    switch (peek().kind) {
      case TokenKind::kStar: op = BinOp::kMul; break;
      case TokenKind::kSlash: op = BinOp::kDiv; break;
      case TokenKind::kPercent: op = BinOp::kRem; break;
      default: return lhs;
    }
    advance();
    lhs = make_binary(op, std::move(lhs), parse_unary());
  }
}

ExprPtr Parser::parse_unary() {
  if (check(TokenKind::kMinus)) {
    const Token& tok = advance();
    auto e = Expr::make(Expr::Kind::kUnary, tok.loc);
    e->un_op = UnOp::kNeg;
    e->args.push_back(parse_unary());
    return e;
  }
  if (check(TokenKind::kBang)) {
    const Token& tok = advance();
    auto e = Expr::make(Expr::Kind::kUnary, tok.loc);
    e->un_op = UnOp::kNot;
    e->args.push_back(parse_unary());
    return e;
  }
  if (check(TokenKind::kAmp)) {
    const Token& tok = advance();
    auto e = Expr::make(Expr::Kind::kAddrOf, tok.loc);
    e->args.push_back(parse_unary());
    return e;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  for (;;) {
    if (check(TokenKind::kLBracket)) {
      const Token& tok = advance();
      auto idx = Expr::make(Expr::Kind::kIndex, tok.loc);
      idx->args.push_back(std::move(e));
      idx->args.push_back(parse_expr());
      expect(TokenKind::kRBracket, "']'");
      e = std::move(idx);
      continue;
    }
    if (check(TokenKind::kDotStar)) {
      const Token& tok = advance();
      auto deref = Expr::make(Expr::Kind::kDeref, tok.loc);
      deref->args.push_back(std::move(e));
      e = std::move(deref);
      continue;
    }
    if (check(TokenKind::kDot)) {
      const Token& tok = advance();
      const Token& field = expect(TokenKind::kIdentifier, "field name");
      if (field.text == "len") {
        auto len = Expr::make(Expr::Kind::kLen, tok.loc);
        len->args.push_back(std::move(e));
        e = std::move(len);
      } else {
        diags_.error(field.loc, "unknown field '." + field.text +
                                    "' (only '.len' is supported)");
      }
      continue;
    }
    return e;
  }
}

ExprPtr Parser::parse_primary() {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::kIntLiteral: {
      advance();
      auto e = Expr::make(Expr::Kind::kIntLit, tok.loc);
      e->int_value = tok.int_value;
      return e;
    }
    case TokenKind::kFloatLiteral: {
      advance();
      auto e = Expr::make(Expr::Kind::kFloatLit, tok.loc);
      e->float_value = tok.float_value;
      return e;
    }
    case TokenKind::kKwTrue:
    case TokenKind::kKwFalse: {
      advance();
      auto e = Expr::make(Expr::Kind::kBoolLit, tok.loc);
      e->bool_value = tok.is(TokenKind::kKwTrue);
      return e;
    }
    case TokenKind::kStringLiteral: {
      advance();
      auto e = Expr::make(Expr::Kind::kStringLit, tok.loc);
      e->name = tok.text;
      return e;
    }
    case TokenKind::kKwUndefined: {
      advance();
      return Expr::make(Expr::Kind::kUndefined, tok.loc);
    }
    case TokenKind::kLParen: {
      advance();
      ExprPtr e = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    case TokenKind::kBuiltin: {
      advance();
      auto e = Expr::make(Expr::Kind::kBuiltinCall, tok.loc);
      static const std::unordered_map<std::string_view, Builtin> table = {
          {"sqrt", Builtin::kSqrt},
          {"abs", Builtin::kAbs},
          {"exp", Builtin::kExp},
          {"log", Builtin::kLog},
          {"pow", Builtin::kPow},
          {"min", Builtin::kMin},
          {"max", Builtin::kMax},
          {"mod", Builtin::kMod},
          {"floatFromInt", Builtin::kFloatFromInt},
          {"intFromFloat", Builtin::kIntFromFloat},
          {"alloc", Builtin::kAlloc},
          {"free", Builtin::kFree},
          {"print", Builtin::kPrint},
      };
      const auto it = table.find(tok.text);
      if (it == table.end()) {
        diags_.error(tok.loc, "unknown builtin '@" + tok.text + "'");
        return Expr::make(Expr::Kind::kUndefined, tok.loc);
      }
      e->builtin = it->second;
      expect(TokenKind::kLParen, "'(' after builtin");
      if (e->builtin == Builtin::kAlloc) {
        e->alloc_elem = parse_type();
        expect(TokenKind::kComma, "',' after @alloc element type");
      }
      if (!check(TokenKind::kRParen)) {
        do {
          e->args.push_back(parse_expr());
        } while (match(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "')'");
      return e;
    }
    case TokenKind::kIdentifier: {
      advance();
      if (check(TokenKind::kLParen)) {
        advance();
        auto call = Expr::make(Expr::Kind::kCall, tok.loc);
        call->name = tok.text;
        if (!check(TokenKind::kRParen)) {
          do {
            call->args.push_back(parse_expr());
          } while (match(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "')'");
        return call;
      }
      auto e = Expr::make(Expr::Kind::kVarRef, tok.loc);
      e->name = tok.text;
      return e;
    }
    default:
      diags_.error(tok.loc, std::string("expected expression but found ") +
                                token_kind_name(tok.kind));
      advance();
      return Expr::make(Expr::Kind::kUndefined, tok.loc);
  }
}

}  // namespace zomp::lang
