// MiniZig's type system: scalars, slices of scalars, and single-level
// pointers to scalars (pointers exist chiefly for the Fortran-interop ABI and
// for the shared-variable parameters the outliner synthesises).
#pragma once

#include <string>

namespace zomp::lang {

enum class ScalarKind { kVoid, kBool, kI64, kF64 };

class Type {
 public:
  enum class Kind {
    kInvalid,   // not yet checked / error recovery
    kInferred,  // outlined-function parameter awaiting call-site inference
    kScalar,
    kSlice,     // []T
    kPointer,   // *T
    kString,    // string literals (print-only)
  };

  constexpr Type() = default;

  static constexpr Type invalid() { return Type{}; }
  static constexpr Type inferred() { return Type{Kind::kInferred, ScalarKind::kVoid}; }
  static constexpr Type void_type() { return Type{Kind::kScalar, ScalarKind::kVoid}; }
  static constexpr Type boolean() { return Type{Kind::kScalar, ScalarKind::kBool}; }
  static constexpr Type i64() { return Type{Kind::kScalar, ScalarKind::kI64}; }
  static constexpr Type f64() { return Type{Kind::kScalar, ScalarKind::kF64}; }
  static constexpr Type slice_of(ScalarKind elem) { return Type{Kind::kSlice, elem}; }
  static constexpr Type pointer_to(ScalarKind elem) { return Type{Kind::kPointer, elem}; }
  static constexpr Type string() { return Type{Kind::kString, ScalarKind::kVoid}; }

  constexpr Kind kind() const { return kind_; }
  constexpr ScalarKind scalar() const { return scalar_; }

  constexpr bool is_invalid() const { return kind_ == Kind::kInvalid; }
  constexpr bool is_inferred() const { return kind_ == Kind::kInferred; }
  constexpr bool is_void() const {
    return kind_ == Kind::kScalar && scalar_ == ScalarKind::kVoid;
  }
  constexpr bool is_bool() const {
    return kind_ == Kind::kScalar && scalar_ == ScalarKind::kBool;
  }
  constexpr bool is_i64() const {
    return kind_ == Kind::kScalar && scalar_ == ScalarKind::kI64;
  }
  constexpr bool is_f64() const {
    return kind_ == Kind::kScalar && scalar_ == ScalarKind::kF64;
  }
  constexpr bool is_numeric() const { return is_i64() || is_f64(); }
  constexpr bool is_scalar() const { return kind_ == Kind::kScalar; }
  constexpr bool is_slice() const { return kind_ == Kind::kSlice; }
  constexpr bool is_pointer() const { return kind_ == Kind::kPointer; }

  /// Element type of a slice / pointee of a pointer.
  constexpr Type element() const { return Type{Kind::kScalar, scalar_}; }

  friend constexpr bool operator==(const Type&, const Type&) = default;

  /// Zig-style spelling: i64, f64, bool, void, []f64, *i64.
  std::string to_string() const;

 private:
  constexpr Type(Kind kind, ScalarKind scalar) : kind_(kind), scalar_(scalar) {}

  Kind kind_ = Kind::kInvalid;
  ScalarKind scalar_ = ScalarKind::kVoid;
};

const char* scalar_kind_name(ScalarKind kind);

}  // namespace zomp::lang
