// Token definitions for the MiniZig lexer.
//
// The one deliberate departure from an ordinary lexer: `//#omp ...` comments
// are *kept* as kDirective tokens instead of being discarded as trivia. This
// is the paper's mechanism — Zig has no pragmas, so OpenMP directives ride in
// comments and the existing lexing infrastructure surfaces them to the
// compiler (paper §2, Figure 1).
#pragma once

#include <string>
#include <string_view>

#include "lang/source.h"

namespace zomp::lang {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kBuiltin,    // @name
  kDirective,  // //#omp ... (payload = text after "//#omp")

  // Keywords.
  kKwFn,
  kKwVar,
  kKwConst,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwTrue,
  kKwFalse,
  kKwAnd,
  kKwOr,
  kKwExtern,
  kKwPub,
  kKwUndefined,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kDotStar,  // .* (pointer dereference)
  kDotDot,   // .. (range)
  kPipe,     // | (loop capture delimiter / bitwise or)
  kAmp,      // & (address-of / bitwise and)
  kCaret,
  kShl,
  kShr,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBang,
};

const char* token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  SourceLoc loc;
  std::string text;     ///< identifier/builtin name, literal spelling, or directive payload
  std::int64_t int_value = 0;
  double float_value = 0.0;

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace zomp::lang
