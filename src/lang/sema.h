// Semantic analysis for MiniZig.
//
// Runs *after* the directive engine, mirroring the paper's pipeline: the
// preprocessor outlines regions with no type information (paper §2 — "it
// does limit what type information is available during preprocessing"), and
// the limitation is overcome the same way the paper overcomes it with Zig
// generics: outlined functions carry inferred parameter types that sema
// resolves monomorphically at their unique fork/task call site.
#pragma once

#include "lang/ast.h"
#include "lang/source.h"

namespace zomp::lang {

/// Resolves names, infers and checks types, and validates the structured
/// OpenMP statements. Returns false if any error was reported. The module is
/// usable by backends only when this returns true.
bool analyze(Module& module, Diagnostics& diags);

/// Identity element for a reduction over `type` (used by both backends).
/// E.g. kAdd -> 0 / 0.0, kMul -> 1, kMin -> +max.
double reduce_identity_f64(ReduceOp op);
std::int64_t reduce_identity_i64(ReduceOp op);

}  // namespace zomp::lang
