// Fortran name mangling and binding generation (substrate S6).
//
// The paper's interop approach (§3.1): Zig cannot call Fortran directly, so
// Fortran procedures are declared as C-linkage functions taking pointer
// arguments, with an underscore appended to match the Fortran compiler's
// mangling. This module reproduces that mechanically: given a procedure
// signature it produces (a) the mangled symbol, (b) the MiniZig `extern fn`
// declaration the paper writes by hand, and (c) the matching C++ prototype
// used to *implement* the "Fortran" side in this repo (we compile the
// Fortran reference kernels as C++ exposed through this exact ABI, see
// DESIGN.md §2).
#pragma once

#include <string>
#include <vector>

namespace zomp::fortran {

/// Mangling schemes used by real Fortran compilers.
enum class MangleScheme {
  /// gfortran default: lowercase, one trailing underscore.
  kGnu,
  /// f2c / g77 compatibility: names already containing an underscore get two
  /// trailing underscores.
  kF2c,
};

/// Mangles `name` (a Fortran procedure name) for the given scheme.
std::string mangle(const std::string& name, MangleScheme scheme = MangleScheme::kGnu);

/// Argument type in a Fortran procedure signature. Fortran passes everything
/// by reference, so scalars become pointers and arrays decay to a pointer to
/// the first element.
enum class FArg {
  kInteger,      // integer*8   -> i64*
  kReal,         // real*8      -> f64*
  kLogical,      // logical     -> i64* (0/1)
  kIntegerArray, // integer*8(:) -> i64* (first element)
  kRealArray,    // real*8(:)    -> f64* (first element)
};

struct FProc {
  std::string name;            ///< unmangled Fortran name
  std::vector<FArg> args;
  bool returns_real = false;   ///< real*8 function vs subroutine
};

/// MiniZig `extern fn` declaration for the procedure — what a user of the
/// paper's compiler writes to call Fortran from Zig.
std::string minizig_binding(const FProc& proc, MangleScheme scheme = MangleScheme::kGnu);

/// C++ prototype with C linkage that implements/consumes the same symbol.
std::string cpp_prototype(const FProc& proc, MangleScheme scheme = MangleScheme::kGnu);

}  // namespace zomp::fortran
