// Column-major array views with 1-based indexing — Fortran array semantics
// over C++ storage. Used by the "Fortran" reference kernels and by tests that
// verify the interop boundary preserves layout.
#pragma once

#include <cstdint>

namespace zomp::fortran {

/// 2D column-major view: element (i, j), both 1-based, lives at
/// ptr[(i-1) + (j-1)*ld] — exactly a Fortran `dimension(ld, *)` dummy.
template <typename T>
class ColMajorView {
 public:
  ColMajorView(T* ptr, std::int64_t leading_dim)
      : ptr_(ptr), ld_(leading_dim) {}

  T& operator()(std::int64_t i, std::int64_t j) const {
    return ptr_[(i - 1) + (j - 1) * ld_];
  }

  std::int64_t leading_dim() const { return ld_; }

 private:
  T* ptr_;
  std::int64_t ld_;
};

/// 1D view with Fortran's 1-based indexing (`dimension(*)`).
template <typename T>
class FVector {
 public:
  explicit FVector(T* ptr) : ptr_(ptr) {}
  T& operator()(std::int64_t i) const { return ptr_[i - 1]; }

 private:
  T* ptr_;
};

}  // namespace zomp::fortran
