#include "fortran/mangle.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace zomp::fortran {

std::string mangle(const std::string& name, MangleScheme scheme) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  const bool has_underscore = lower.find('_') != std::string::npos;
  lower.push_back('_');
  if (scheme == MangleScheme::kF2c && has_underscore) lower.push_back('_');
  return lower;
}

namespace {

const char* minizig_arg_type(FArg arg) {
  switch (arg) {
    case FArg::kInteger:
    case FArg::kLogical:
    case FArg::kIntegerArray: return "*i64";
    case FArg::kReal:
    case FArg::kRealArray: return "*f64";
  }
  return "*i64";
}

const char* cpp_arg_type(FArg arg) {
  switch (arg) {
    case FArg::kInteger:
    case FArg::kLogical:
    case FArg::kIntegerArray: return "std::int64_t*";
    case FArg::kReal:
    case FArg::kRealArray: return "double*";
  }
  return "std::int64_t*";
}

}  // namespace

std::string minizig_binding(const FProc& proc, MangleScheme scheme) {
  std::ostringstream out;
  out << "extern fn " << mangle(proc.name, scheme) << "(";
  for (std::size_t i = 0; i < proc.args.size(); ++i) {
    if (i > 0) out << ", ";
    out << "a" << i << ": " << minizig_arg_type(proc.args[i]);
  }
  out << ") " << (proc.returns_real ? "f64" : "void") << ";";
  return out.str();
}

std::string cpp_prototype(const FProc& proc, MangleScheme scheme) {
  std::ostringstream out;
  out << "extern \"C\" " << (proc.returns_real ? "double" : "void") << ' '
      << mangle(proc.name, scheme) << "(";
  for (std::size_t i = 0; i < proc.args.size(); ++i) {
    if (i > 0) out << ", ";
    out << cpp_arg_type(proc.args[i]) << " a" << i;
  }
  out << ");";
  return out.str();
}

}  // namespace zomp::fortran
