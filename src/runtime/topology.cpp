#include "runtime/topology.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace zomp::rt {

namespace {

i32 hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<i32>(hc);
}

/// Reads one small sysfs integer file; nullopt on any failure (missing /sys,
/// hotplugged-away cpu, non-Linux). Failures flip discovery to the flat model.
std::optional<i32> read_sysfs_i32(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return std::nullopt;
  long v = 0;
  const int got = std::fscanf(f, "%ld", &v);
  std::fclose(f);
  if (got != 1) return std::nullopt;
  return static_cast<i32>(v);
}

}  // namespace

std::vector<i32> process_affinity_mask() {
  std::vector<i32> out;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int p = 0; p < CPU_SETSIZE; ++p) {
      if (CPU_ISSET(p, &set)) out.push_back(p);
    }
  }
#endif
  return out;
}

Topology Topology::from_raw(std::vector<ProcInfo> raw, bool flat) {
  // Dense renumbering: sort by (socket, core, os_proc), then assign socket /
  // core ids in first-seen order and smt ranks within each core. The sort
  // keys on the *source* ids so SMT siblings land adjacent regardless of OS
  // numbering (Linux commonly interleaves: cpu0/cpu4 = core 0's threads).
  std::sort(raw.begin(), raw.end(), [](const ProcInfo& a, const ProcInfo& b) {
    if (a.socket != b.socket) return a.socket < b.socket;
    if (a.core != b.core) return a.core < b.core;
    return a.os_proc < b.os_proc;
  });
  Topology topo;
  topo.flat_ = flat;
  std::map<i32, i32> socket_ids;
  std::map<std::pair<i32, i32>, i32> core_ids;
  for (ProcInfo p : raw) {
    const auto socket_it =
        socket_ids.emplace(p.socket, static_cast<i32>(socket_ids.size()));
    const auto core_it = core_ids.emplace(
        std::make_pair(p.socket, p.core), static_cast<i32>(core_ids.size()));
    p.socket = socket_it.first->second;
    p.smt = core_it.second
                ? 0
                : (topo.procs_.empty() ? 0 : topo.procs_.back().smt + 1);
    p.core = core_it.first->second;
    topo.procs_.push_back(p);
  }
  topo.num_sockets_ = static_cast<i32>(socket_ids.size());
  topo.num_cores_ = static_cast<i32>(core_ids.size());
  return topo;
}

Topology Topology::discover() {
  std::vector<i32> mask = process_affinity_mask();
  if (mask.empty()) {
    // No affinity call on this platform: flat model over the hardware count.
    return flat(hardware_threads());
  }
  std::vector<ProcInfo> raw;
  raw.reserve(mask.size());
  bool sysfs_ok = true;
  for (const i32 p : mask) {
    char core_path[128];
    char sock_path[128];
    std::snprintf(core_path, sizeof(core_path),
                  "/sys/devices/system/cpu/cpu%d/topology/core_id", p);
    std::snprintf(sock_path, sizeof(sock_path),
                  "/sys/devices/system/cpu/cpu%d/topology/physical_package_id",
                  p);
    const auto core = read_sysfs_i32(core_path);
    const auto sock = read_sysfs_i32(sock_path);
    if (!core || !sock) {
      sysfs_ok = false;
      break;
    }
    ProcInfo info;
    info.os_proc = p;
    info.core = *core;
    info.socket = *sock;
    raw.push_back(info);
  }
  if (!sysfs_ok) return flat_over(std::move(mask));
  return from_raw(std::move(raw), /*flat=*/false);
}

Topology Topology::flat(i32 nprocs) {
  std::vector<i32> procs;
  for (i32 p = 0; p < std::max<i32>(1, nprocs); ++p) procs.push_back(p);
  return flat_over(std::move(procs));
}

Topology Topology::flat_over(std::vector<i32> os_procs) {
  std::vector<ProcInfo> raw;
  raw.reserve(os_procs.size());
  for (std::size_t i = 0; i < os_procs.size(); ++i) {
    ProcInfo info;
    info.os_proc = os_procs[i];
    info.core = static_cast<i32>(i);  // each proc its own core
    info.socket = 0;
    raw.push_back(info);
  }
  return from_raw(std::move(raw), /*flat=*/true);
}

Topology Topology::synthetic(i32 sockets, i32 cores_per_socket,
                             i32 smt_per_core) {
  std::vector<ProcInfo> raw;
  i32 os_proc = 0;
  for (i32 s = 0; s < sockets; ++s) {
    for (i32 c = 0; c < cores_per_socket; ++c) {
      for (i32 t = 0; t < smt_per_core; ++t) {
        ProcInfo info;
        info.os_proc = os_proc++;
        info.core = c;
        info.socket = s;
        raw.push_back(info);
      }
    }
  }
  return from_raw(std::move(raw), /*flat=*/false);
}

bool Topology::usable(i32 os_proc) const {
  return find_proc(os_proc) != nullptr;
}

const ProcInfo* Topology::find_proc(i32 os_proc) const {
  // Linear scan: topologies are at most a few hundred entries and the
  // callers (place parsing, once-per-fork victim ordering) are cold paths.
  for (const ProcInfo& p : procs_) {
    if (p.os_proc == os_proc) return &p;
  }
  return nullptr;
}

const Topology& Topology::instance() {
  static const Topology topo = discover();
  return topo;
}

namespace {
std::unique_ptr<Topology> g_scheduling_override;
}  // namespace

const Topology& scheduling_topology() {
  return g_scheduling_override ? *g_scheduling_override : Topology::instance();
}

void set_scheduling_topology_for_test(Topology topo) {
  g_scheduling_override = std::make_unique<Topology>(std::move(topo));
}

void clear_scheduling_topology_for_test() { g_scheduling_override.reset(); }

}  // namespace zomp::rt
