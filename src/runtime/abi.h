// C ABI targeted by generated code — the zomp analogue of libomp's __kmpc_*
// entry points, which the paper's outlined Zig regions call.
//
// Shape parity with __kmpc_* is deliberate (location descriptor first, global
// thread id second) so the lowering in src/core/ reads like the one in the
// paper. The gtid parameter exists for that parity and for diagnostics: the
// implementation resolves the calling thread via thread-local state, which is
// also how user threads that never called fork get bound.
//
// Worksharing contract (all loops normalised to half-open [lo, hi), step>0):
//   static:  call zomp_for_static_init once, then run the strided block loop
//            (see StaticRange in worksharing.h for the block/stride meaning).
//   dynamic: call zomp_dispatch_init once, then loop on zomp_dispatch_next
//            until it returns 0; each success yields one chunk [*plo, *phi).
#pragma once

#include <cstdint>

extern "C" {

struct zomp_ident_t {
  const char* file;
  const char* construct;
  std::int32_t line;
};

typedef void (*zomp_microtask_t)(std::int32_t gtid, std::int32_t tid,
                                 void** args);

// -- Parallel construct ------------------------------------------------------

/// Forks a team and runs `fn` on every member; returns after the implicit
/// (task-draining) join barrier.
///
/// Fork contract (DESIGN.md S1.6/S1.8): `args` must stay valid until the
/// call returns — the join barrier guarantees no member reads it afterwards,
/// so generated code builds the pointer array on the caller's stack. Region
/// entry is the runtime's fast path: a fork matching one of the master's
/// cached hot teams — keyed on (nesting level, num_threads request, binding
/// signature) — recycles it in place (workers woken through per-worker
/// atomic doorbells — no lock, no allocation, no re-applied affinity
/// masks); a changed request, binding, or place table rebuilds through the
/// pool. A short pool acquire may deliver fewer members than requested;
/// `zomp_get_num_threads` inside the region reports the actual size, and
/// every team structure (including the place partition) is sized from it.
void zomp_fork_call(const zomp_ident_t* loc, zomp_microtask_t fn,
                    std::int32_t argc, void** args);

/// `if` clause variant: cond == 0 serialises the region.
void zomp_fork_call_if(const zomp_ident_t* loc, zomp_microtask_t fn,
                       std::int32_t argc, void** args, std::int32_t cond);

/// `num_threads` clause: one-shot request consumed by the next fork on this
/// thread.
void zomp_push_num_threads(const zomp_ident_t* loc, std::int32_t n);

/// `proc_bind` clause: one-shot binding policy consumed by the next fork on
/// this thread (the __kmpc_push_proc_bind analogue). `bind` takes the
/// zomp::rt::BindKind / omp_proc_bind_t values (0 false, 1 true, 2 primary/
/// master, 3 close, 4 spread). The fork resolves clause > OMP_PROC_BIND
/// list entry for the nesting level > no binding; the team's placement
/// (place partition per member, sched_setaffinity at job-take) is computed
/// once at fork and carried by the hot-team cache, so a recycled team
/// re-arms without recomputing or re-applying masks (DESIGN.md S1.8).
void zomp_push_proc_bind(const zomp_ident_t* loc, std::int32_t bind);

// -- Worksharing loops --------------------------------------------------------

/// Static schedules. chunk <= 0 selects the blocked distribution. Outputs:
/// this thread's first block [*plo, *phi), the stride between successive
/// block starts, and whether this thread runs the sequentially-last
/// iteration (lastprivate support).
void zomp_for_static_init(const zomp_ident_t* loc, std::int32_t gtid,
                          std::int64_t chunk, std::int64_t lo, std::int64_t hi,
                          std::int64_t step, std::int64_t* plo,
                          std::int64_t* phi, std::int64_t* pstride,
                          std::int32_t* plast);

/// Marks the end of a statically-scheduled loop (diagnostic hook; keeps call
/// shape parity with __kmpc_for_static_fini).
void zomp_for_static_fini(const zomp_ident_t* loc, std::int32_t gtid);

/// Optimizer fast path (mzc -O1 `static-spec`): the chunkless step-1
/// schedule(static) case collapsed to one call — this thread's single
/// contiguous block [*plo, *phi) of [lo, hi), with *plast set when the block
/// ends at hi. Block shapes (and the lastprivate owner) are identical to
/// zomp_for_static_init with chunk <= 0 and step 1; the block is computed
/// from the team actually delivered at fork, so a short pool acquire cannot
/// change the loop's results. No init/fini pairing, no dispatch ring.
void zomp_static_range(const zomp_ident_t* loc, std::int32_t gtid,
                       std::int64_t lo, std::int64_t hi, std::int64_t* plo,
                       std::int64_t* phi, std::int32_t* plast);

/// Dynamic/guided/runtime/auto schedules. `sched_kind` takes the
/// zomp::rt::ScheduleKind values (0 static, 1 dynamic, 2 guided, 3 auto,
/// 4 runtime).
void zomp_dispatch_init(const zomp_ident_t* loc, std::int32_t gtid,
                        std::int32_t sched_kind, std::int64_t chunk,
                        std::int64_t lo, std::int64_t hi, std::int64_t step);

/// Claims the next chunk; returns 0 when the construct is exhausted for this
/// thread — or when a loop/parallel cancellation is pending, in which case
/// the remaining iterations are abandoned (chunk claims are cancellation
/// points; the member detaches from the construct exactly as on exhaustion).
std::int32_t zomp_dispatch_next(const zomp_ident_t* loc, std::int32_t gtid,
                                std::int64_t* plo, std::int64_t* phi,
                                std::int32_t* plast);

/// Detaches the calling thread from its in-flight dispatch construct without
/// claiming further chunks. Generated code calls this on the cancellation
/// branch out of a dispatch-scheduled loop (the member still owes the
/// construct its detach, or the dispatch ring entry never frees). No-op when
/// no dispatch construct is bound (static loops, or already exhausted), so
/// the cancel label can call it unconditionally.
void zomp_dispatch_break(const zomp_ident_t* loc, std::int32_t gtid);

// -- Synchronisation -----------------------------------------------------------

/// Task-draining team barrier. Barriers are cancellation points (OpenMP 5.2
/// §5): returns 1 when the episode was ABANDONED because `cancel parallel`
/// is pending for the team — the caller must immediately return from the
/// outlined region (the non-cancellable join barrier re-synchronises) — and
/// 0 for every completed episode. Always 0 when OMP_CANCELLATION is off, so
/// pre-cancellation callers that ignore the result stay correct.
std::int32_t zomp_barrier(const zomp_ident_t* loc, std::int32_t gtid);

/// Returns 1 for exactly one thread per construct instance.
std::int32_t zomp_single(const zomp_ident_t* loc, std::int32_t gtid);
void zomp_end_single(const zomp_ident_t* loc, std::int32_t gtid);

/// Returns 1 on the team master.
std::int32_t zomp_master(const zomp_ident_t* loc, std::int32_t gtid);

/// Named critical sections; name == nullptr or "" is the unnamed critical.
void zomp_critical(const zomp_ident_t* loc, std::int32_t gtid,
                   const char* name);
void zomp_end_critical(const zomp_ident_t* loc, std::int32_t gtid,
                       const char* name);

/// Ordered region for normalised iteration `index` of the innermost
/// dispatch-scheduled loop.
void zomp_ordered(const zomp_ident_t* loc, std::int32_t gtid,
                  std::int64_t index);
void zomp_end_ordered(const zomp_ident_t* loc, std::int32_t gtid,
                      std::int64_t index);

/// Combines `*rhs` into `*lhs` (both point at the reduction's value type).
typedef void (*zomp_reduce_fn_t)(void* lhs, const void* rhs);

/// Team-tree reduction rendezvous (the __kmpc_reduce analogue; see
/// runtime/reduce.h for the protocol). Every member of the innermost team
/// passes a pointer to its private partial (`data`, `size` bytes, trivially
/// copyable) and the combine function. Returns 1 on exactly one member,
/// whose `data` then holds the team-combined value — that member (and only
/// it) folds the result into the shared reduction target; the construct's
/// ensuing barrier publishes the write. Returns 0 on every other member,
/// whose `data` is left holding an unspecified partial (interior tree nodes
/// fold partner subtrees into their own buffer on the way up). Replaces the
/// retired zomp_reduce_enter/exit global-critical protocol: the combine is
/// per-team and lock-free.
std::int32_t zomp_reduce(const zomp_ident_t* loc, std::int32_t gtid,
                         void* data, std::int64_t size, zomp_reduce_fn_t fn);

// -- Atomic updates (`omp atomic`) ---------------------------------------------

void zomp_atomic_add_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_sub_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_mul_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_div_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_min_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_max_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_and_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_or_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_xor_i64(std::int64_t* addr, std::int64_t value);
void zomp_atomic_add_f64(double* addr, double value);
void zomp_atomic_sub_f64(double* addr, double value);
void zomp_atomic_mul_f64(double* addr, double value);
void zomp_atomic_div_f64(double* addr, double value);
void zomp_atomic_min_f64(double* addr, double value);
void zomp_atomic_max_f64(double* addr, double value);

// -- Tasking ----------------------------------------------------------------------
//
// Contract (DESIGN.md S1.7). `zomp_task` is the zero-dependence fast path:
// the runtime copies `arg_size` bytes from `arg` (firstprivate capture by
// value) and defers the task onto the encountering member's work-stealing
// deque (executing inline for serial teams, descendants of final tasks, and
// deque overflow). `zomp_task_with_deps` is the full path: dependences are
// resolved at creation time against the encountering task's dependence
// table — `in` orders after the last `out`/`inout` on the same address,
// `out`/`inout` after the last writer and every reader since — and a task
// with unsatisfied predecessors parks on its dependence node (entering no
// deque) until the last predecessor's completion releases it. Addresses are
// compared by identity only (no overlap analysis), the standard OpenMP
// list-item model. Dependences only order sibling tasks (children of the
// same task region), per the spec.
//
// A `taskwait` waits for the encountering task's children, executing queued
// tasks meanwhile. `taskgroup_begin/end` bracket a group: end waits for
// every task created in the group AND their descendants. `zomp_taskloop`
// splits [lo, hi) into chunk tasks inside an implicit taskgroup; with
// num_tasks > 0 that many chunks (clamped to the trip count), else with
// grainsize > 0 ceil(trips/grainsize) chunks, else a runtime default.

/// Defers `fn(arg, arg_size bytes copied)` as an explicit task (fast path,
/// no dependences).
void zomp_task(const zomp_ident_t* loc, std::int32_t gtid,
               void (*fn)(void* arg), const void* arg, std::int64_t arg_size);

/// One entry of a depend clause. `kind`: 1 = in, 2 = out, 3 = inout
/// (zomp::rt::DepKind values).
struct zomp_depend_t {
  void* addr;
  std::int32_t kind;
};

/// Task creation flags for zomp_task_with_deps.
enum : std::int32_t {
  ZOMP_TASK_UNDEFERRED = 1,  ///< if(false): run at creation, after deps
  ZOMP_TASK_FINAL = 2,       ///< final(true): this task and descendants run
                             ///< undeferred (included-task model)
  ZOMP_TASK_UNTIED = 4,      ///< accepted no-op: tasks never suspend/migrate
};

/// Full-featured task creation: depend edges, if(false)/final undeferred
/// execution, priority hint (recorded; the work-stealing deques do not
/// reorder by priority — see task.h). `deps` may be null when ndeps == 0,
/// in which case this degrades to the zomp_task fast path plus flags.
void zomp_task_with_deps(const zomp_ident_t* loc, std::int32_t gtid,
                         void (*fn)(void* arg), const void* arg,
                         std::int64_t arg_size, const zomp_depend_t* deps,
                         std::int32_t ndeps, std::int32_t flags,
                         std::int32_t priority);

void zomp_taskwait(const zomp_ident_t* loc, std::int32_t gtid);

/// Opens a taskgroup on the encountering task and returns an opaque handle.
/// Every task created until the matching zomp_taskgroup_end — including by
/// nested tasks while they run — joins the group.
void* zomp_taskgroup_begin(const zomp_ident_t* loc, std::int32_t gtid);

/// Waits until every task of the group (and their descendants) completed,
/// then frees the handle. Must be called on the same task that called the
/// matching begin, innermost-first.
void zomp_taskgroup_end(const zomp_ident_t* loc, std::int32_t gtid,
                        void* group);

/// `taskloop`: runs fn(chunk_lo, chunk_hi, arg) as one task per chunk of
/// [lo, hi), inside an implicit taskgroup (returns when all chunks
/// completed). The runtime copies `arg_size` bytes from `arg` once; chunk
/// tasks share the read-only copy. grainsize/num_tasks <= 0 mean "clause
/// absent".
void zomp_taskloop(const zomp_ident_t* loc, std::int32_t gtid,
                   void (*fn)(std::int64_t chunk_lo, std::int64_t chunk_hi,
                              void* arg),
                   const void* arg, std::int64_t arg_size, std::int64_t lo,
                   std::int64_t hi, std::int64_t grainsize,
                   std::int64_t num_tasks);

// -- Cancellation (`omp cancel` / `omp cancellation point`) -------------------
//
// Contract (DESIGN.md S10). Everything is gated on the cancel-var ICV
// (OMP_CANCELLATION): with it off both entry points return 0 and cost one
// relaxed atomic load, so the ≤2% disabled-overhead budget holds. With it
// on, `zomp_cancel` activates cancellation of the named construct and
// returns 1 — the CALLER must then branch to the end of that construct
// (return from the outlined region for parallel, goto the loop end for a
// worksharing loop, return from the task/taskgroup body for taskgroup).
// `zomp_cancellation_point` returns 1 when a matching cancellation is
// pending and the caller must take the same branch. Semantics per construct:
//
//   parallel:  team-wide flag; user barriers abandon (zomp_barrier returns
//              1), queued tasks are discarded at their scheduling point
//              (bodies skipped, all accounting kept), and every member runs
//              to the region end where the join barrier re-synchronises.
//   for:       team-wide flag; dispatch chunk claims take the exhaustion
//              path (no further iterations start; running chunk bodies
//              finish). Cleared at the loop's closing barrier — cancellable
//              loops must not be nowait. A loop cancellation point also
//              responds to a pending PARALLEL cancel (the member must leave
//              the loop to reach the region end).
//   taskgroup: flags the innermost taskgroup of the calling task; queued
//              tasks of the group (and descendant groups) are discarded at
//              their scheduling points. zomp_cancel returns 1 only when the
//              calling task itself belongs to the cancelled group.

enum : std::int32_t {
  ZOMP_CANCEL_PARALLEL = 1,
  ZOMP_CANCEL_LOOP = 2,
  ZOMP_CANCEL_TASKGROUP = 4,
};

/// `omp cancel <construct>`: requests cancellation; returns 1 when the
/// calling thread must branch to the end of the cancelled construct.
std::int32_t zomp_cancel(const zomp_ident_t* loc, std::int32_t gtid,
                         std::int32_t construct);

/// `omp cancellation point <construct>`: returns 1 when a matching
/// cancellation is pending and the caller must branch to the construct end.
std::int32_t zomp_cancellation_point(const zomp_ident_t* loc,
                                     std::int32_t gtid,
                                     std::int32_t construct);

/// omp_get_cancellation: the cancel-var ICV (OMP_CANCELLATION).
std::int32_t zomp_get_cancellation(void);

// -- Queries / control (the omp_* routine family) -----------------------------------

std::int32_t zomp_get_thread_num(void);
std::int32_t zomp_get_num_threads(void);
std::int32_t zomp_get_max_threads(void);
std::int32_t zomp_get_num_procs(void);
std::int32_t zomp_in_parallel(void);
std::int32_t zomp_get_level(void);
/// omp_get_team_size(level): size of the ancestor team at nesting depth
/// `level` (0 = the initial implicit team, always 1); -1 when out of range.
std::int32_t zomp_get_team_size(std::int32_t level);
/// max-active-levels-var accessors (omp_get/set_max_active_levels).
std::int32_t zomp_get_max_active_levels(void);
void zomp_set_max_active_levels(std::int32_t levels);
/// omp_get_max_task_priority: the priority-clause ceiling
/// (OMP_MAX_TASK_PRIORITY; task creation clamps to it).
std::int32_t zomp_get_max_task_priority(void);
void zomp_set_num_threads(std::int32_t n);
double zomp_get_wtime(void);
double zomp_get_wtick(void);

// -- Tool interface (OMPT-style; DESIGN.md S12) ------------------------------
//
// A tool registers per-event callbacks that the runtime invokes
// synchronously on the emitting thread, OMPT-5.2 style but over one uniform
// callback signature (event id + thread identity + two event-specific i64
// args, matching the trace-record payload). Disabled-mode cost contract:
// with no callback installed and ZOMP_TRACE unset, every hook site in the
// runtime is one relaxed atomic load.
//
// Event ids mirror zomp::rt::TraceEv (trace.h) value-for-value; arg0/arg1
// meanings are documented on the enumerators there.
enum : std::int32_t {
  ZOMP_EV_PARALLEL_BEGIN = 0,
  ZOMP_EV_PARALLEL_END = 1,
  ZOMP_EV_IMPLICIT_TASK_BEGIN = 2,
  ZOMP_EV_IMPLICIT_TASK_END = 3,
  ZOMP_EV_DISPATCH_INIT = 4,
  ZOMP_EV_DISPATCH_CLAIM = 5,
  ZOMP_EV_BARRIER_ENTER = 6,
  ZOMP_EV_BARRIER_WAIT_END = 7,
  ZOMP_EV_TASK_CREATE = 8,
  ZOMP_EV_TASK_SCHEDULE = 9,
  ZOMP_EV_TASK_COMPLETE = 10,
  ZOMP_EV_STEAL_ATTEMPT = 11,
  ZOMP_EV_STEAL_SUCCESS = 12,
  ZOMP_EV_CANCEL = 13,
  ZOMP_EV_FAULT = 14,
  ZOMP_EV_COUNT = 15,
};

/// Callback signature: `gtid` is the process-wide thread id, `tid` the id
/// within the emitting thread's innermost team. Runs on the emitting thread
/// with the runtime mid-construct — a tool must not fork, barrier, or
/// otherwise re-enter constructs from inside a callback (nested emissions
/// are suppressed, not supported).
typedef void (*zomp_tool_callback_t)(std::int32_t event, std::int32_t gtid,
                                     std::int32_t tid, std::int64_t arg0,
                                     std::int64_t arg1, void* tool_data);

/// Tool initializer passed to zomp_start_tool; a nonzero return keeps the
/// tool active (the OMPT ompt_start_tool convention).
typedef std::int32_t (*zomp_tool_initializer_t)(void* tool_data);

/// Registers a tool: stores `tool_data` (delivered to every callback) and
/// invokes `initializer` immediately — the natural place for its
/// zomp_set_callback calls. Returns 1 when the tool is active (null
/// initializer counts as active), 0 when the initializer declined.
std::int32_t zomp_start_tool(zomp_tool_initializer_t initializer,
                             void* tool_data);

/// Installs (or, with null, removes) the callback for `event`. Returns 1 on
/// success, 0 for an out-of-range event. Thread-safe; takes effect for
/// subsequent emissions (an in-flight emission may still deliver the old
/// callback).
std::int32_t zomp_set_callback(std::int32_t event, zomp_tool_callback_t cb);

/// The currently installed callback for `event` (null if none/bad event).
zomp_tool_callback_t zomp_get_callback(std::int32_t event);

/// zomp::trace_flush() twin: serializes the event rings to the ZOMP_TRACE
/// path now. Returns 1 on success, 0 when tracing is not file-backed or
/// the write failed.
std::int32_t zomp_trace_flush(void);

/// zomp::team_stats() twin (the PR 6 StealStats totals + S12 counters for
/// the caller's innermost team). Same quiescent-read contract.
struct zomp_team_stats_t {
  std::int64_t steal_attempts;
  std::int64_t steal_lost;
  std::int64_t mailbox_pulls;
  std::int64_t tasks_executed;
  std::int64_t dispatch_claims;
  std::int64_t barrier_episodes;
};
void zomp_team_stats(zomp_team_stats_t* out);

// Affinity queries (DESIGN.md S1.8). Place numbers index the process place
// table built from OMP_PLACES; -1 means "unbound". The queries stay
// meaningful when the platform refused sched_setaffinity — binding then is
// logical-only (partitions and place numbers computed, masks unchanged).
std::int32_t zomp_get_proc_bind(void);
std::int32_t zomp_get_num_places(void);
std::int32_t zomp_get_place_num(void);
std::int32_t zomp_get_place_num_procs(std::int32_t place);
void zomp_get_place_proc_ids(std::int32_t place, std::int32_t* ids);
std::int32_t zomp_get_partition_num_places(void);
void zomp_get_partition_place_nums(std::int32_t* nums);
void zomp_display_affinity(void);

// affinity-format-var (OMP_AFFINITY_FORMAT): the template binding reports
// expand — see runtime/icv.h for the field escapes. get/capture follow the
// spec's truncation contract: copy at most `size` bytes including the NUL,
// return the untruncated length (excluding the NUL).
void zomp_set_affinity_format(const char* format);
std::uint64_t zomp_get_affinity_format(char* buffer, std::uint64_t size);
std::uint64_t zomp_capture_affinity(char* buffer, std::uint64_t size,
                                    const char* format);

// MiniZig-facing variants: MiniZig's only integer type is i64, so its
// `extern fn` declarations of the runtime API (the paper's route for calling
// omp_* from Zig) bind to these.
std::int64_t mz_omp_get_thread_num(void);
std::int64_t mz_omp_get_num_threads(void);
std::int64_t mz_omp_get_max_threads(void);
std::int64_t mz_omp_get_num_procs(void);
std::int64_t mz_omp_in_parallel(void);
std::int64_t mz_omp_get_level(void);
std::int64_t mz_omp_get_team_size(std::int64_t level);
std::int64_t mz_omp_get_max_active_levels(void);
void mz_omp_set_max_active_levels(std::int64_t levels);
std::int64_t mz_omp_get_max_task_priority(void);
void mz_omp_set_num_threads(std::int64_t n);
double mz_omp_get_wtime(void);
double mz_omp_get_wtick(void);
/// zomp_team_stats flattened to MiniZig's scalar-only FFI: `which` selects
/// the field in declaration order (0 steal_attempts .. 5 barrier_episodes);
/// out-of-range answers 0.
std::int64_t mz_omp_team_stat(std::int64_t which);
std::int64_t mz_omp_trace_flush(void);
std::int64_t mz_omp_get_cancellation(void);
std::int64_t mz_omp_get_proc_bind(void);
std::int64_t mz_omp_get_num_places(void);
std::int64_t mz_omp_get_place_num(void);
std::int64_t mz_omp_get_place_num_procs(std::int64_t place);
std::int64_t mz_omp_get_partition_num_places(void);
void mz_omp_display_affinity(void);
void mz_omp_set_affinity_format(const char* format);
std::int64_t mz_omp_get_affinity_format(char* buffer, std::int64_t size);
std::int64_t mz_omp_capture_affinity(char* buffer, std::int64_t size,
                                     const char* format);

}  // extern "C"
