// Worksharing-loop distribution (OpenMP `for` construct).
//
// Two entry styles, mirroring libomp:
//  * static_init()  — pure per-thread bounds math for compile-time `static`
//    schedules; no shared state, called once per construct per thread.
//  * dispatch_*()   — shared-state chunk server for dynamic/guided/runtime
//    schedules (and for static kinds selected at run time, where it produces
//    the same deterministic assignment through a per-member cursor).
//
// The dispatch cursor is sharded per place (DESIGN.md S1.9): on a team whose
// binding spans several places, dynamic/guided claims go against a per-place
// cursor over a disjoint slab of the iteration space, and a member whose
// slab is dry steals half a remote slab's remainder with one fetch_add.
// Unbound teams (and nshards == 1) collapse to the original single shared
// cursor — same claims, same chunk shapes, same lastprivate owner.
//
// Iteration spaces are half-open [lo, hi) with positive step; the directive
// engine normalises loops to this form before emitting runtime calls (the
// paper's worksharing lowering does the same bound normalisation).
#pragma once

#include <vector>

#include "runtime/common.h"
#include "runtime/schedule.h"

namespace zomp::rt {

/// Result of the static distribution for one thread.
struct StaticRange {
  i64 lo = 0;      ///< first iteration of this thread's first block
  i64 hi = 0;      ///< one past the last iteration of the first block
  i64 stride = 0;  ///< distance between successive block starts (original space)
  bool last = false;  ///< does this thread execute the sequentially-last iteration?
};

/// Computes thread `tid`-of-`nthreads`'s share of [lo, hi) step `step`.
/// chunk == 0 -> blocked ("pure static"): one contiguous range per thread.
/// chunk  > 0 -> round-robin chunks of `chunk` iterations.
/// step must be > 0 (loops are normalised by the front end).
StaticRange static_distribute(i64 lo, i64 hi, i64 step, i64 chunk, i32 tid,
                              i32 nthreads);

/// Compile-time-specialized fast path (the optimizer's `static-spec` pass,
/// ABI entry `zomp_static_range`): the blocked chunkless step-1 case of
/// static_distribute, reduced to one contiguous [lo, hi) block per thread —
/// no stride, no chunk math, no dispatch ring. Produces bit-identical
/// assignments (including `last`) to
/// `static_distribute(lo, hi, /*step=*/1, /*chunk=*/0, tid, nthreads)`.
StaticRange static_block_range(i64 lo, i64 hi, i32 tid, i32 nthreads);

/// Trip count of the normalised loop [lo, hi) step `step` (> 0).
constexpr i64 trip_count(i64 lo, i64 hi, i64 step) {
  return hi > lo ? (hi - lo + step - 1) / step : 0;
}

/// A team's grouping of members into per-place dispatch shards, computed
/// once per binding by Team (team.cpp) and consumed by dispatch_init_shards
/// and the taskloop spray. Flat (nshards == 1, empty vectors) for unbound
/// or single-place teams.
struct ShardMap {
  i32 nshards = 1;
  std::vector<i32> member_shard;  ///< tid -> shard; empty = everyone shard 0
  std::vector<i32> weight;        ///< members per shard (slab sizing)
  std::vector<std::vector<i32>> shard_members;  ///< shard -> member tids
};

/// One per-place cursor over a disjoint slab [lo, hi) of the normalised
/// trip space (dynamic/guided only; DESIGN.md S1.9). `next` is the slab's
/// next unclaimed trip index, advanced ONLY by fetch_add — by slab members
/// in schedule-sized batches, by cross-place thieves in half-the-remainder
/// slab grabs. The bounds are immutable for the construct's lifetime, which
/// is what makes the protocol exactly-once: any fetch_add result below `hi`
/// owns [result, min(result+len, hi)) outright, whoever made it.
struct ShardCursor {
  alignas(kCacheLine) std::atomic<i64> next{0};
  i64 lo = 0;
  i64 hi = 0;
};

/// Shared dispatch state for one in-flight worksharing construct.
///
/// A team owns a ring of these; construct instances are matched across
/// threads by sequence number (each member counts the worksharing constructs
/// it encounters — constructs are encountered by all members in the same
/// order per the OpenMP construct-nesting rules, so the sequence number is a
/// team-wide identity). Slot reuse applies natural backpressure when `nowait`
/// loops let fast threads run ahead.
///
/// The sequence protocol is monotonic *across regions* when a team is
/// recycled by the hot-team fast path (pool.h, Team::rearm): member ws_seq
/// counters carry forward, the join barrier has already drained every slot
/// (owner_seq back to 0), and the out-of-order check below compares against
/// strictly larger sequence numbers — so recycling needs no ring reset.
struct DispatchSlot {
  /// Sequence number of the construct currently occupying the slot; 0 = free.
  std::atomic<u64> owner_seq{0};
  /// Set once the winning initialiser has published the fields below.
  std::atomic<bool> ready{false};

  ScheduleKind kind = ScheduleKind::kStatic;
  i64 lo = 0, hi = 0, step = 1, chunk = 1;
  i64 trips = 0;
  i32 nthreads = 1;

  /// Per-place claim cursors (shards[0..nshards) are live) for
  /// dynamic/guided. Unbound teams and static kinds use one shard spanning
  /// the whole trip space — exactly the old single shared cursor, with
  /// dynamic claims still batching several chunks per add (see
  /// kMaxBatchChunks in schedule.h) so fine-grained schedules do not
  /// ping-pong a cursor line per chunk.
  i32 nshards = 1;
  ShardCursor shards[kMaxPlaceShards];
  /// Members that have drained the construct; the last one frees the slot.
  alignas(kCacheLine) std::atomic<i32> done_members{0};
};

/// Per-member cursor into the current dispatch construct.
struct MemberDispatch {
  DispatchSlot* slot = nullptr;
  u64 seq = 0;
  i32 shard = 0;  ///< this member's place shard (dynamic/guided claims)
  /// Static-kind cursor (deterministic assignment without shared traffic).
  i64 static_next = 0;
  i64 static_hi = 0;
  i64 static_stride = 0;
  i64 static_span = 0;
  bool last_chunk = false;  ///< did the most recent chunk contain the last iteration?
};

/// Claims the next chunk from `slot` for member `md`. Returns false when the
/// construct is exhausted for this member. On success [*plo, *phi) is the
/// chunk in the original iteration space and *plast tells whether it contains
/// the sequentially-last iteration (for `lastprivate`).
bool dispatch_next_chunk(DispatchSlot& slot, MemberDispatch& md, i32 tid,
                         i64* plo, i64* phi, bool* plast);

/// Fills the per-member cursor for static kinds served through dispatch.
void dispatch_init_static_cursor(const DispatchSlot& slot, MemberDispatch& md,
                                 i32 tid);

/// Carves slot.trips into slabs sized proportionally to the map's member
/// weights and resets every live shard cursor. `sharded` false (static
/// kinds, unbound teams) collapses to one slab spanning everything. Called
/// by the winning initialiser before `ready` is published — the cursor
/// stores may be relaxed because `ready`'s release publishes them.
void dispatch_init_shards(DispatchSlot& slot, const ShardMap& map,
                          bool sharded);

}  // namespace zomp::rt
