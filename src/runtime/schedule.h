// Worksharing-loop schedule kinds (OpenMP `schedule` clause).
#pragma once

#include <optional>
#include <string>

#include "runtime/common.h"

namespace zomp::rt {

/// OpenMP 5.2 schedule kinds supported by the worksharing engine.
/// `kStatic` with chunk 0 means the "pure static" blocked distribution;
/// with a chunk it is the round-robin chunked distribution.
enum class ScheduleKind : i32 {
  kStatic = 0,
  kDynamic = 1,
  kGuided = 2,
  kAuto = 3,     // implementation picks; we map it to static
  kRuntime = 4,  // read kind/chunk from the `run-sched-var` ICV
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::kStatic;
  i64 chunk = 0;  // 0 = unspecified

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// Parses the OMP_SCHEDULE syntax: `kind[,chunk]`, e.g. "dynamic,4".
/// Returns nullopt on malformed input (callers fall back to the default and
/// emit a warning, matching libomp's tolerance of bad environments).
std::optional<Schedule> parse_schedule(const std::string& text);

/// Human-readable name, for diagnostics and bench labels.
const char* schedule_kind_name(ScheduleKind kind);

}  // namespace zomp::rt
