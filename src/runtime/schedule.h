// Worksharing-loop schedule kinds (OpenMP `schedule` clause).
#pragma once

#include <optional>
#include <string>

#include "runtime/common.h"

namespace zomp::rt {

/// OpenMP 5.2 schedule kinds supported by the worksharing engine.
/// `kStatic` with chunk 0 means the "pure static" blocked distribution;
/// with a chunk it is the round-robin chunked distribution.
enum class ScheduleKind : i32 {
  kStatic = 0,
  kDynamic = 1,
  kGuided = 2,
  kAuto = 3,     // implementation picks; we map it to static
  kRuntime = 4,  // read kind/chunk from the `run-sched-var` ICV
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::kStatic;
  i64 chunk = 0;  // 0 = unspecified

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// Tuning for the shared-cursor dispatch path (worksharing.cpp).
///
/// Dynamic schedules claim several chunks per `fetch_add` so a
/// `schedule(dynamic, 1)` loop does not ping-pong the cursor's cache line
/// once per iteration. The batch is scaled to the work remaining —
/// at most 1/(kBatchDivisor × nthreads) of it, so the tail imbalance a big
/// batch could cause stays bounded — and capped at kMaxBatchChunks.
inline constexpr i64 kMaxBatchChunks = 16;
inline constexpr i64 kBatchDivisor = 4;

/// Locality sharding of the dispatch cursor (DESIGN.md S1.9): a team whose
/// binding spans several places splits a dynamic/guided iteration space into
/// one slab per place, each with its own cursor, so chunk claims stop
/// bouncing a single cache line across sockets; a member whose slab runs dry
/// steals half a remote slab's remainder with ONE fetch_add (a slab, not a
/// chunk). Capped so DispatchSlot stays fixed-size; teams spanning more
/// places merge the extra places into the last shard.
inline constexpr i32 kMaxPlaceShards = 8;

/// Parses the OMP_SCHEDULE syntax: `kind[,chunk]`, e.g. "dynamic,4".
/// Returns nullopt on malformed input (callers fall back to the default and
/// emit a warning, matching libomp's tolerance of bad environments).
std::optional<Schedule> parse_schedule(const std::string& text);

/// Human-readable name, for diagnostics and bench labels.
const char* schedule_kind_name(ScheduleKind kind);

}  // namespace zomp::rt
