// zomp::algo — parallel algorithms over the runtime (DESIGN.md S11).
//
// A zpc-style algorithms layer: the constructs a directive system cannot
// express as one worksharing loop (scans, sorts, selection) packaged as
// ready-made primitives over hl.h teams. Each entry point is a header-level
// template so element types and user functors inline into the hot loops, but
// the orchestration — phase protocol, scratch management, slice math — lives
// behind a handful of type-erased kernels in algo.cpp, so the multi-phase
// machinery compiles once, not once per instantiation.
//
//   zomp::algo::exclusive_scan(in, out, n, i64{0}, std::plus<>{});
//   zomp::algo::radix_sort(keys, n);
//   zomp::algo::top_k(scores, n, 10, best);
//
// Execution model: every call forks its own region (hl.h `parallel`, so the
// hot-team fast path applies) and joins before returning — calls are
// synchronous and self-contained. Inputs below `Options::serial_cutoff`, or a
// resolved width of one thread, take a serial path with identical results.
//
// Determinism: for integral elements every primitive returns byte-identical
// results at every team width — scans fold slices in index order, the sorts
// produce the unique sorted permutation of a scalar multiset, top_k keeps the
// unique best-k value multiset. Floating-point scans/reductions regroup
// additions per slice, so across widths they agree only to rounding.
//
// Concurrency contract: user functors (combine ops, key extractors,
// comparators) are invoked concurrently from team members and must be safe to
// call concurrently (pure functions of their arguments in practice — the same
// requirement the std parallel algorithms impose).
#pragma once

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <vector>

#include "runtime/hl.h"

namespace zomp::algo {

struct Options {
  /// Team-size request for the forked region; 0 = ICV default.
  rt::i32 num_threads = 0;
  /// Inputs with fewer elements than this run the serial path (forking and
  /// phase traffic cost more than the work below roughly this size).
  rt::i64 serial_cutoff = 4096;
};

namespace detail {

// ---------------------------------------------------------------------------
// Type-erased kernel interfaces (implemented in algo.cpp). The thunks carry
// the element type; the kernels carry the protocol. Block-granular calls keep
// the indirection cost at one call per slice, not per element.
// ---------------------------------------------------------------------------

/// Decoupled two-pass scan (block reduce -> cross-member prefix chain on
/// PhaseSync -> block scan-and-add).
struct ScanOps {
  void* ctx;
  std::size_t elem_bytes;
  /// Folds in[lo, hi) (hi > lo) into *out in index order.
  void (*block_sum)(void* ctx, rt::i64 lo, rt::i64 hi, void* out);
  /// Scans in[lo, hi) into out[lo, hi) seeded with *carry (the combined
  /// prefix of everything before lo; nullptr = no prefix, i.e. member 0 of an
  /// init-less inclusive scan). Exclusive/inclusive semantics live here.
  void (*block_scan)(void* ctx, rt::i64 lo, rt::i64 hi, const void* carry);
  /// *lhs = op(*lhs, *rhs).
  void (*combine)(void* ctx, void* lhs, const void* rhs);
};
void scan_run(rt::i64 n, const void* init, const ScanOps& ops,
              const Options& opts);

/// Stable counting sort: per-member bucket counts, one matrix exclusive scan,
/// stable scatter into a temp buffer, parallel copy-back.
struct CountingOps {
  void* ctx;
  std::size_t elem_bytes;
  /// Adds the bucket counts of elems[lo, hi) into counts[0, nbuckets).
  void (*count)(void* ctx, rt::i64 lo, rt::i64 hi, rt::i64* counts);
  /// Scatters elems[lo, hi) into tmp at offsets[bucket]++, preserving index
  /// order within the slice (the stability guarantee).
  void (*scatter)(void* ctx, rt::i64 lo, rt::i64 hi, rt::i64* offsets,
                  void* tmp);
  /// Copies tmp[lo, hi) back over elems[lo, hi).
  void (*copy_back)(void* ctx, rt::i64 lo, rt::i64 hi, const void* tmp);
};
void counting_sort_run(rt::i64 n, rt::i64 nbuckets, const CountingOps& ops,
                       const Options& opts);

/// Radix sort of 1/2/4/8-byte integer keys; `xor_mask` biases digit
/// extraction (sign bit for signed key types). MSD top-byte partition with
/// place-aware bucket-range assignment, then member-local LSD passes.
void radix_sort_run(void* keys, rt::i64 n, std::size_t key_bytes,
                    rt::u64 xor_mask, const Options& opts);

/// Top-k selection: per-member bounded heaps into a candidate matrix, serial
/// merge on the caller.
struct TopKOps {
  void* ctx;
  std::size_t elem_bytes;
  /// Writes the best min(k, hi - lo) elements of in[lo, hi) into out (best
  /// first); returns how many were written.
  rt::i64 (*local_topk)(void* ctx, rt::i64 lo, rt::i64 hi, void* out);
  /// Merges `rows` candidate runs (row r = counts[r] elements at
  /// cand + r * row_elems * elem_bytes) into the best min(k, total) in
  /// result; returns the count.
  rt::i64 (*merge)(void* ctx, const void* cand, const rt::i64* counts,
                   rt::i32 rows, rt::i64 row_elems, void* result);
};
rt::i64 top_k_run(rt::i64 n, rt::i64 k, const TopKOps& ops, void* result,
                  const Options& opts);

/// Shared scratch for the scan thunks: the user op plus the raw buffers.
template <typename T, typename Op>
struct ScanCtx {
  const T* in;
  T* out;
  Op* op;
};

template <typename T, typename Op>
void scan_block_sum(void* ctx, rt::i64 lo, rt::i64 hi, void* out) {
  auto& c = *static_cast<ScanCtx<T, Op>*>(ctx);
  T acc = c.in[lo];
  for (rt::i64 i = lo + 1; i < hi; ++i) acc = (*c.op)(acc, c.in[i]);
  std::memcpy(out, &acc, sizeof(T));
}

template <typename T, typename Op>
void scan_combine(void* ctx, void* lhs, const void* rhs) {
  auto& c = *static_cast<ScanCtx<T, Op>*>(ctx);
  T* a = static_cast<T*>(lhs);
  *a = (*c.op)(*a, *static_cast<const T*>(rhs));
}

template <typename T, typename Op>
void scan_block_exclusive(void* ctx, rt::i64 lo, rt::i64 hi,
                          const void* carry) {
  auto& c = *static_cast<ScanCtx<T, Op>*>(ctx);
  T run = *static_cast<const T*>(carry);  // exclusive always has an init
  for (rt::i64 i = lo; i < hi; ++i) {
    const T v = c.in[i];  // read before write: in == out aliasing is allowed
    c.out[i] = run;
    run = (*c.op)(run, v);
  }
}

template <typename T, typename Op>
void scan_block_inclusive(void* ctx, rt::i64 lo, rt::i64 hi,
                          const void* carry) {
  auto& c = *static_cast<ScanCtx<T, Op>*>(ctx);
  rt::i64 i = lo;
  T run;
  if (carry != nullptr) {
    run = *static_cast<const T*>(carry);
  } else {
    run = c.in[i];
    c.out[i] = run;
    ++i;
  }
  for (; i < hi; ++i) {
    run = (*c.op)(run, c.in[i]);
    c.out[i] = run;
  }
}

template <typename T, typename Op>
ScanOps make_scan_ops(ScanCtx<T, Op>& ctx, bool exclusive) {
  static_assert(std::is_trivially_copyable_v<T>,
                "scan copies T through phase-sync slots");
  static_assert(sizeof(T) + 1 <= rt::PhaseSync::kSlotBytes,
                "scan element exceeds the inline phase payload");
  ScanOps ops;
  ops.ctx = &ctx;
  ops.elem_bytes = sizeof(T);
  ops.block_sum = &scan_block_sum<T, Op>;
  ops.block_scan =
      exclusive ? &scan_block_exclusive<T, Op> : &scan_block_inclusive<T, Op>;
  ops.combine = &scan_combine<T, Op>;
  return ops;
}

template <typename T, typename KeyFn>
struct CountingCtx {
  T* elems;
  KeyFn* key_of;
};

template <typename T, typename KeyFn>
CountingOps make_counting_ops(CountingCtx<T, KeyFn>& ctx) {
  static_assert(std::is_trivially_copyable_v<T>,
                "counting_sort moves elements with memcpy");
  CountingOps ops;
  ops.ctx = &ctx;
  ops.elem_bytes = sizeof(T);
  ops.count = [](void* vctx, rt::i64 lo, rt::i64 hi, rt::i64* counts) {
    auto& c = *static_cast<CountingCtx<T, KeyFn>*>(vctx);
    for (rt::i64 i = lo; i < hi; ++i) ++counts[(*c.key_of)(c.elems[i])];
  };
  ops.scatter = [](void* vctx, rt::i64 lo, rt::i64 hi, rt::i64* offsets,
                   void* tmp) {
    auto& c = *static_cast<CountingCtx<T, KeyFn>*>(vctx);
    T* t = static_cast<T*>(tmp);
    for (rt::i64 i = lo; i < hi; ++i) {
      t[offsets[(*c.key_of)(c.elems[i])]++] = c.elems[i];
    }
  };
  ops.copy_back = [](void* vctx, rt::i64 lo, rt::i64 hi, const void* tmp) {
    auto& c = *static_cast<CountingCtx<T, KeyFn>*>(vctx);
    std::memcpy(c.elems + lo, static_cast<const T*>(tmp) + lo,
                static_cast<std::size_t>(hi - lo) * sizeof(T));
  };
  return ops;
}

template <typename T, typename Better>
struct TopKCtx {
  const T* in;
  Better* better;  ///< better(a, b): a ranks strictly before b
  rt::i64 k;
};

template <typename T, typename Better>
TopKOps make_topk_ops(TopKCtx<T, Better>& ctx) {
  static_assert(std::is_trivially_copyable_v<T>,
                "top_k moves elements with memcpy");
  TopKOps ops;
  ops.ctx = &ctx;
  ops.elem_bytes = sizeof(T);
  ops.local_topk = [](void* vctx, rt::i64 lo, rt::i64 hi, void* out) {
    auto& c = *static_cast<TopKCtx<T, Better>*>(vctx);
    Better& better = *c.better;
    // Bounded heap, worst kept element at the front (make_heap puts the
    // comparator's maximum there, and "maximally better-than-everything" is
    // exactly the worst survivor under `better`).
    std::vector<T> heap;
    heap.reserve(static_cast<std::size_t>(std::min(c.k, hi - lo)));
    for (rt::i64 i = lo; i < hi; ++i) {
      const T v = c.in[i];
      if (static_cast<rt::i64>(heap.size()) < c.k) {
        heap.push_back(v);
        std::push_heap(heap.begin(), heap.end(), better);
      } else if (better(v, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = v;
        std::push_heap(heap.begin(), heap.end(), better);
      }
    }
    std::sort(heap.begin(), heap.end(), better);
    std::memcpy(out, heap.data(), heap.size() * sizeof(T));
    return static_cast<rt::i64>(heap.size());
  };
  ops.merge = [](void* vctx, const void* cand, const rt::i64* counts,
                 rt::i32 rows, rt::i64 row_elems, void* result) {
    auto& c = *static_cast<TopKCtx<T, Better>*>(vctx);
    const T* rows_base = static_cast<const T*>(cand);
    std::vector<T> all;
    for (rt::i32 r = 0; r < rows; ++r) {
      const T* row = rows_base + static_cast<std::size_t>(r) * row_elems;
      all.insert(all.end(), row, row + counts[r]);
    }
    std::sort(all.begin(), all.end(), *c.better);
    const rt::i64 m = std::min<rt::i64>(c.k, static_cast<rt::i64>(all.size()));
    std::memcpy(result, all.data(), static_cast<std::size_t>(m) * sizeof(T));
    return m;
  };
  return ops;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Parallel `f(i)` for every i in [lo, hi) (static blocked distribution).
template <typename F>
void for_each(rt::i64 lo, rt::i64 hi, F f, Options opts = {}) {
  if (hi - lo < opts.serial_cutoff) {
    for (rt::i64 i = lo; i < hi; ++i) f(i);
    return;
  }
  zomp::parallel_for(lo, hi, f, ForOptions{},
                     ParallelOptions{opts.num_threads});
}

/// out[i] = f(in[i]) for i in [0, n). in == out is allowed.
template <typename T, typename U, typename F>
void transform(const T* in, U* out, rt::i64 n, F f, Options opts = {}) {
  for_each(
      0, n, [&](rt::i64 i) { out[i] = f(in[i]); }, opts);
}

/// Fold of init ⊕ in[0] ⊕ ... ⊕ in[n-1]. Slices fold in index order, the
/// partials tree-combine (reduce.h), and `init` joins exactly once at the
/// front — so `init` may be any value, not an identity of `op`. Integral
/// results are identical at every width when `op` is associative.
template <typename T, typename Op>
T reduce(const T* in, rt::i64 n, T init, Op op, Options opts = {}) {
  if (n < opts.serial_cutoff) {
    T acc = init;
    for (rt::i64 i = 0; i < n; ++i) acc = op(acc, in[i]);
    return acc;
  }
  // A has-value flag rides with each partial so empty slices drop out of the
  // combine instead of injecting a made-up identity.
  struct Packet {
    T value;
    unsigned char has;
  };
  static_assert(std::is_trivially_copyable_v<T>,
                "reduce copies T through raw team slots");
  Packet result{};
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        const rt::StaticRange r =
            rt::static_block_range(0, n, ts.tid, team.size());
        Packet local{};
        local.has = r.hi > r.lo ? 1 : 0;
        if (local.has) {
          T acc = in[r.lo];
          for (rt::i64 i = r.lo + 1; i < r.hi; ++i) acc = op(acc, in[i]);
          local.value = acc;
        }
        const auto merge = [](void* ctx, void* lhs, const void* rhs) {
          Op& o = *static_cast<Op*>(ctx);
          Packet* a = static_cast<Packet*>(lhs);
          const Packet* b = static_cast<const Packet*>(rhs);
          if (b->has == 0) return;
          if (a->has == 0) {
            *a = *b;
          } else {
            a->value = o(a->value, b->value);
          }
        };
        if (team.reduce_combine(ts, &local, sizeof(Packet), merge, &op,
                                /*broadcast=*/false)) {
          result = local;
        }
      },
      ParallelOptions{opts.num_threads});
  return result.has ? op(init, result.value) : init;
}

/// out[i] = init ⊕ in[0] ⊕ ... ⊕ in[i-1] (out[0] = init). in == out allowed.
/// Requires sizeof(T) + 1 <= PhaseSync::kSlotBytes (the prefix rides an
/// inline phase payload).
template <typename T, typename Op>
void exclusive_scan(const T* in, T* out, rt::i64 n, T init, Op op,
                    Options opts = {}) {
  detail::ScanCtx<T, Op> ctx{in, out, &op};
  const detail::ScanOps ops = detail::make_scan_ops(ctx, /*exclusive=*/true);
  detail::scan_run(n, &init, ops, opts);
}

/// out[i] = in[0] ⊕ ... ⊕ in[i]. in == out allowed.
template <typename T, typename Op>
void inclusive_scan(const T* in, T* out, rt::i64 n, Op op, Options opts = {}) {
  detail::ScanCtx<T, Op> ctx{in, out, &op};
  const detail::ScanOps ops = detail::make_scan_ops(ctx, /*exclusive=*/false);
  detail::scan_run(n, /*init=*/nullptr, ops, opts);
}

/// bins[b] = |{ i : bin_of(in[i]) == b }| for b in [0, nbins). bin_of must
/// return values in range. The per-member bin arrays merge through the
/// ReductionTree's wide-payload path (reduce.h), so nbins is unbounded.
template <typename T, typename BinFn>
void histogram(const T* in, rt::i64 n, rt::u64* bins, rt::i64 nbins,
               BinFn bin_of, Options opts = {}) {
  std::fill(bins, bins + nbins, rt::u64{0});
  if (n < opts.serial_cutoff) {
    for (rt::i64 i = 0; i < n; ++i) ++bins[bin_of(in[i])];
    return;
  }
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        std::vector<rt::u64> local(static_cast<std::size_t>(nbins), 0);
        const rt::StaticRange r =
            rt::static_block_range(0, n, ts.tid, team.size());
        for (rt::i64 i = r.lo; i < r.hi; ++i) ++local[bin_of(in[i])];
        const auto sum_bins = [](void* ctx, void* lhs, const void* rhs) {
          const rt::i64 nb = *static_cast<const rt::i64*>(ctx);
          rt::u64* a = static_cast<rt::u64*>(lhs);
          const rt::u64* b = static_cast<const rt::u64*>(rhs);
          for (rt::i64 i = 0; i < nb; ++i) a[i] += b[i];
        };
        if (team.reduce_combine(ts, local.data(),
                                static_cast<std::size_t>(nbins) *
                                    sizeof(rt::u64),
                                sum_bins, const_cast<rt::i64*>(&nbins),
                                /*broadcast=*/false)) {
          std::memcpy(bins, local.data(),
                      static_cast<std::size_t>(nbins) * sizeof(rt::u64));
        }
      },
      ParallelOptions{opts.num_threads});
}

/// Stable sort of elems[0, n) by key_of(elem) in [0, nbuckets).
template <typename T, typename KeyFn>
void counting_sort(T* elems, rt::i64 n, rt::i64 nbuckets, KeyFn key_of,
                   Options opts = {}) {
  detail::CountingCtx<T, KeyFn> ctx{elems, &key_of};
  const detail::CountingOps ops = detail::make_counting_ops(ctx);
  detail::counting_sort_run(n, nbuckets, ops, opts);
}

/// Ascending sort of an integral key array (1/2/4/8-byte keys; signed keys
/// are handled by sign-bit bias). MSD partition, place-aware bucket
/// assignment, member-local LSD passes — see DESIGN.md S11.
template <typename T>
void radix_sort(T* keys, rt::i64 n, Options opts = {}) {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                "radix_sort handles integral keys");
  const rt::u64 mask =
      std::is_signed_v<T> ? rt::u64{1} << (sizeof(T) * 8 - 1) : rt::u64{0};
  detail::radix_sort_run(keys, n, sizeof(T), mask, opts);
}

/// Writes the best min(k, n) elements of in[0, n) into out, best first, and
/// returns the count. `better(a, b)` orders a strictly before b; the default
/// selects the largest. For scalar T the result is byte-identical at every
/// width; for struct T, ties under `better` break arbitrarily.
template <typename T, typename Better = std::greater<T>>
rt::i64 top_k(const T* in, rt::i64 n, rt::i64 k, T* out, Options opts = {},
              Better better = Better{}) {
  detail::TopKCtx<T, Better> ctx{in, &better, k};
  const detail::TopKOps ops = detail::make_topk_ops(ctx);
  return detail::top_k_run(n, k, ops, out, opts);
}

}  // namespace zomp::algo
