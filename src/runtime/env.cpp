#include "runtime/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

namespace zomp::rt {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::mutex& warn_mutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& warned_names() {
  static auto* names = new std::set<std::string>();
  return *names;
}

i64 g_warning_count = 0;  // guarded by warn_mutex()

void warn_malformed(const char* name, const char* value) {
  warn_malformed_env(name, value);
}

}  // namespace

void warn_malformed_env(const char* name, const char* value,
                        const char* detail) {
  {
    std::lock_guard<std::mutex> lock(warn_mutex());
    if (!warned_names().insert(name).second) return;
    ++g_warning_count;
  }
  if (detail != nullptr) {
    std::fprintf(
        stderr,
        "zomp: ignoring malformed environment variable %s=\"%s\" (%s)\n",
        name, value, detail);
  } else {
    std::fprintf(stderr,
                 "zomp: ignoring malformed environment variable %s=\"%s\"\n",
                 name, value);
  }
}

i64 env_malformed_warning_count() {
  std::lock_guard<std::mutex> lock(warn_mutex());
  return g_warning_count;
}

void env_warn_reset_for_test() {
  std::lock_guard<std::mutex> lock(warn_mutex());
  warned_names().clear();
  g_warning_count = 0;
}

std::optional<std::string> env_string(const char* name) {
  const std::string zomp_name = std::string("ZOMP_") + name;
  if (const char* v = std::getenv(zomp_name.c_str())) return std::string(v);
  const std::string omp_name = std::string("OMP_") + name;
  if (const char* v = std::getenv(omp_name.c_str())) return std::string(v);
  return std::nullopt;
}

std::optional<i64> env_int(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  const std::string t = trim(*text);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno != 0 || end == t.c_str() || *end != '\0') {
    warn_malformed(name, text->c_str());
    return std::nullopt;
  }
  return static_cast<i64>(v);
}

std::optional<bool> env_bool(const char* name) {
  const auto text = env_string(name);
  if (!text) return std::nullopt;
  const std::string t = lower(trim(*text));
  if (t == "true" || t == "yes" || t == "1" || t == "on") return true;
  if (t == "false" || t == "no" || t == "0" || t == "off") return false;
  warn_malformed(name, text->c_str());
  return std::nullopt;
}

std::optional<Schedule> env_schedule() {
  const auto text = env_string("SCHEDULE");
  if (!text) return std::nullopt;
  auto sched = parse_schedule(*text);
  if (!sched) warn_malformed("SCHEDULE", text->c_str());
  return sched;
}

std::optional<WaitPolicy> env_wait_policy() {
  const auto text = env_string("WAIT_POLICY");
  if (!text) return std::nullopt;
  auto policy = parse_wait_policy(*text);
  if (!policy) warn_malformed("WAIT_POLICY", text->c_str());
  return policy;
}

std::optional<std::vector<BindKind>> env_proc_bind() {
  const auto text = env_string("PROC_BIND");
  if (!text) return std::nullopt;
  auto list = parse_proc_bind(*text);
  if (!list) warn_malformed("PROC_BIND", text->c_str());
  return list;
}

std::optional<WaitPolicy> parse_wait_policy(const std::string& text) {
  const std::string t = lower(trim(text));
  if (t == "active") return WaitPolicy::kActive;
  if (t == "passive") return WaitPolicy::kPassive;
  return std::nullopt;
}

std::optional<Schedule> parse_schedule(const std::string& text) {
  std::string t = lower(trim(text));
  i64 chunk = 0;
  if (const auto comma = t.find(','); comma != std::string::npos) {
    const std::string chunk_text = trim(t.substr(comma + 1));
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(chunk_text.c_str(), &end, 10);
    if (errno != 0 || end == chunk_text.c_str() || *end != '\0' || v <= 0) {
      return std::nullopt;
    }
    chunk = static_cast<i64>(v);
    t = trim(t.substr(0, comma));
  }
  ScheduleKind kind;
  if (t == "static") {
    kind = ScheduleKind::kStatic;
  } else if (t == "dynamic") {
    kind = ScheduleKind::kDynamic;
  } else if (t == "guided") {
    kind = ScheduleKind::kGuided;
  } else if (t == "auto") {
    kind = ScheduleKind::kAuto;
  } else if (t == "runtime") {
    kind = ScheduleKind::kRuntime;
  } else {
    return std::nullopt;
  }
  return Schedule{kind, chunk};
}

const char* schedule_kind_name(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kStatic: return "static";
    case ScheduleKind::kDynamic: return "dynamic";
    case ScheduleKind::kGuided: return "guided";
    case ScheduleKind::kAuto: return "auto";
    case ScheduleKind::kRuntime: return "runtime";
  }
  return "<invalid>";
}

}  // namespace zomp::rt
