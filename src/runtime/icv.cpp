#include "runtime/icv.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "runtime/env.h"
#include "runtime/metrics.h"
#include "runtime/topology.h"
#include "runtime/trace.h"

namespace zomp::rt {

namespace {

i32 hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<i32>(hc);
}

}  // namespace

GlobalIcv& GlobalIcv::instance() {
  static GlobalIcv g;
  return g;
}

GlobalIcv::GlobalIcv() {
  // Default team size follows the processors this process can actually run
  // on (topology.h: sched_getaffinity-intersected), not the machine width:
  // under `taskset -c 0` a bare `parallel` forks 1 thread, like libomp.
  default_team_size_ = Topology::instance().num_procs();
  if (const auto n = env_int("NUM_THREADS")) {
    if (*n > 0) {
      default_team_size_ = static_cast<i32>(*n);
    } else {
      // Parsed but nonsensical: same unified warn-once channel as a value
      // that failed to parse at all, then fall back to the default.
      warn_malformed_env("NUM_THREADS", std::to_string(*n).c_str(),
                         "must be positive");
    }
  }
  // A generous default: teams larger than the hardware are legal (tests use
  // them deliberately, and single-core CI containers still fork 8-wide
  // teams), but something must bound runaway nesting. The spec leaves
  // thread-limit-var implementation-defined; libomp's default is "huge".
  thread_limit_ =
      std::max({64, 4 * hardware_threads(), 4 * default_team_size_});
  if (const auto lim = env_int("THREAD_LIMIT"); lim && *lim > 0) {
    thread_limit_ = static_cast<i32>(*lim);
  }
  if (const auto dyn = env_bool("DYNAMIC")) dynamic_default_ = *dyn;
  if (const auto nested = env_bool("NESTED"); nested && *nested) {
    max_levels_default_ = 8;
  }
  if (const auto levels = env_int("MAX_ACTIVE_LEVELS"); levels && *levels > 0) {
    max_levels_default_ = static_cast<i32>(*levels);
  }
  if (const auto sched = env_schedule()) run_sched_default_ = *sched;
  if (const auto policy = env_wait_policy()) set_wait_policy(*policy);
  if (const auto bind = env_proc_bind()) proc_bind_list_ = *bind;
  if (const auto display = env_bool("DISPLAY_AFFINITY")) {
    display_affinity_ = *display;
  }
  // Keep the default format's fixed text identical to the pre-ICV report so
  // existing log scrapes (and the AffinityReportFormat test) stay valid.
  affinity_format_ = "zomp: level %L thread %n bound to place %p, OS procs {%A}";
  if (const auto fmt = env_string("AFFINITY_FORMAT"); fmt && !fmt->empty()) {
    affinity_format_ = *fmt;
  }
  if (const auto cancel = env_bool("CANCELLATION")) {
    cancellation_.store(*cancel, std::memory_order_relaxed);
  }
  if (const auto prio = env_int("MAX_TASK_PRIORITY")) {
    if (*prio >= 0) {
      max_task_priority_ = static_cast<i32>(*prio);
    } else {
      warn_malformed_env("MAX_TASK_PRIORITY", std::to_string(*prio).c_str(),
                         "must be non-negative");
    }
  }
  // Observability (DESIGN.md S12): arm the tracer and metrics registry
  // before the DISPLAY_ENV block below, so a verbose display reports the
  // parsed state (and malformed values have already warned through the
  // env funnel).
  trace_init_from_env();
  metrics_init_from_env();
  if (const auto display = env_string("DISPLAY_ENV")) {
    const std::string t = *display;
    if (t == "true" || t == "TRUE" || t == "1") {
      display_env(/*verbose=*/false);
    } else if (t == "verbose" || t == "VERBOSE") {
      display_env(/*verbose=*/true);
    } else if (t != "false" && t != "FALSE" && t != "0") {
      warn_malformed_env("DISPLAY_ENV", display->c_str());
    }
  }
}

void GlobalIcv::display_env(bool verbose) const {
  // libomp's block format: BEGIN/END fences with one "  NAME = 'value'"
  // line per ICV, so log scrapers written for real OpenMP runtimes work
  // unchanged.
  std::FILE* out = stderr;
  std::fprintf(out, "OPENMP DISPLAY ENVIRONMENT BEGIN\n");
  std::fprintf(out, "  _OPENMP = '202111'\n");
  std::fprintf(out, "  OMP_NUM_THREADS = '%d'\n", default_team_size_);
  std::fprintf(out, "  OMP_THREAD_LIMIT = '%d'\n", thread_limit_);
  std::fprintf(out, "  OMP_DYNAMIC = '%s'\n",
               dynamic_default_ ? "TRUE" : "FALSE");
  std::fprintf(out, "  OMP_MAX_ACTIVE_LEVELS = '%d'\n", max_levels_default_);
  std::fprintf(out, "  OMP_MAX_TASK_PRIORITY = '%d'\n", max_task_priority_);
  std::fprintf(out, "  OMP_SCHEDULE = '%s%s'\n",
               schedule_kind_name(run_sched_default_.kind),
               run_sched_default_.chunk > 0
                   ? ("," + std::to_string(run_sched_default_.chunk)).c_str()
                   : "");
  std::fprintf(out, "  OMP_WAIT_POLICY = '%s'\n",
               wait_policy() == WaitPolicy::kPassive ? "PASSIVE" : "ACTIVE");
  std::string bind_list;
  for (const BindKind kind : proc_bind_list_) {
    if (!bind_list.empty()) bind_list += ",";
    bind_list += bind_kind_name(kind);
  }
  std::fprintf(out, "  OMP_PROC_BIND = '%s'\n",
               bind_list.empty() ? "false" : bind_list.c_str());
  std::fprintf(out, "  OMP_PLACES = '%s'\n",
               env_string("PLACES").value_or("cores").c_str());
  std::fprintf(out, "  OMP_CANCELLATION = '%s'\n",
               cancellation() ? "TRUE" : "FALSE");
  std::fprintf(out, "  OMP_DISPLAY_AFFINITY = '%s'\n",
               display_affinity_ ? "TRUE" : "FALSE");
  std::fprintf(out, "  OMP_AFFINITY_FORMAT = '%s'\n",
               affinity_format().c_str());
  if (verbose) {
    std::fprintf(out, "  ZOMP_FAULT_INJECT = '%s'\n",
                 env_string("FAULT_INJECT").value_or("").c_str());
    // Report the tracer/metrics state as armed, not the raw env text: a
    // malformed value (warned above through the env funnel) reads as off.
    std::fprintf(out, "  ZOMP_TRACE = '%s'\n", trace_output_path().c_str());
    std::fprintf(out, "  ZOMP_METRICS = '%s'\n",
                 metrics_enabled() ? "TRUE" : "FALSE");
  }
  std::fprintf(out, "OPENMP DISPLAY ENVIRONMENT END\n");
}

std::string GlobalIcv::affinity_format() const {
  std::lock_guard<std::mutex> lock(affinity_format_mu_);
  return affinity_format_;
}

void GlobalIcv::set_affinity_format(std::string fmt) {
  std::lock_guard<std::mutex> lock(affinity_format_mu_);
  affinity_format_ = std::move(fmt);
}

BindKind GlobalIcv::bind_at(i32 index) const {
  if (proc_bind_list_.empty()) return BindKind::kFalse;
  if (proc_bind_list_[0] == BindKind::kFalse) return BindKind::kFalse;
  const auto last = static_cast<i32>(proc_bind_list_.size()) - 1;
  return proc_bind_list_[static_cast<std::size_t>(std::clamp(index, 0, last))];
}

void GlobalIcv::set_proc_bind_list(std::vector<BindKind> list) {
  proc_bind_list_ = std::move(list);
}

namespace {

/// Workers currently running a region (fork adds, join subtracts). The
/// master executing the region is the +1 in oversubscribed() — masters are
/// runnable whether or not they are inside a region.
std::atomic<i32> g_active_workers{0};

bool oversubscribed() noexcept {
  // The census compares against the processors this process can actually be
  // scheduled on (topology.h: sysfs intersected with sched_getaffinity), not
  // hardware_concurrency: a `taskset -c 0` run with an 8-thread team is
  // oversubscribed 8-on-1 however many cores the machine has, and must park
  // rather than spin. Topology::instance() is a one-time discovery; the
  // per-call cost is one relaxed load.
  static const i32 usable = Topology::instance().num_procs();
  return g_active_workers.load(std::memory_order_relaxed) + 1 > usable;
}

}  // namespace

void note_active_workers(i32 delta) noexcept {
  g_active_workers.fetch_add(delta, std::memory_order_relaxed);
}

i32 doorbell_grace_rounds() noexcept {
  // Under the active policy a doorbell waiter spins its exponential budget,
  // then yields for a grace period before condvar-parking: long enough that
  // the fork cadence of a tight region loop (the NPB pattern) never pays a
  // futex wake, short enough that a master gone serial releases the cores
  // within a few scheduler quanta. Passive waiters — and every waiter in an
  // oversubscribed process, where a grace-yielding worker starves the very
  // master that will ring it while staying on the run queue and lengthening
  // every scheduler pass — park after one round.
  constexpr i32 kActiveGraceRounds = 256;
  if (GlobalIcv::instance().wait_policy() == WaitPolicy::kPassive ||
      oversubscribed()) {
    return 1;
  }
  return backoff_spin_limit() + kActiveGraceRounds;
}

i32 backoff_spin_limit() noexcept {
  // Active: 10 exponential rounds (~100 pause instructions total) before
  // yielding; passive: hand the core back immediately. Oversubscribed
  // processes yield immediately even under the active policy — the thread
  // being waited on needs this core, so every pause round just stretches
  // the convoy (measured 3.5x on fork/join wall time, 1-core container).
  // The lookup is one relaxed load after the first call; GlobalIcv
  // construction is guarded by the usual magic-static once-flag.
  constexpr i32 kActiveSpinRounds = 10;
  if (GlobalIcv::instance().wait_policy() == WaitPolicy::kPassive ||
      oversubscribed()) {
    return 0;
  }
  return kActiveSpinRounds;
}

Icv GlobalIcv::initial() const {
  Icv icv;
  icv.nthreads = default_team_size_;
  icv.run_sched = run_sched_default_;
  icv.dynamic = dynamic_default_;
  icv.max_active_levels = max_levels_default_;
  return icv;
}

void GlobalIcv::set_default_team_size(i32 n) {
  if (n > 0) default_team_size_ = n;
}

void GlobalIcv::set_max_active_levels(i32 levels) {
  if (levels >= 1) max_levels_default_ = levels;
}

}  // namespace zomp::rt
