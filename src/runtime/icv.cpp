#include "runtime/icv.h"

#include <algorithm>
#include <thread>

#include "runtime/env.h"

namespace zomp::rt {

namespace {

i32 hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<i32>(hc);
}

}  // namespace

GlobalIcv& GlobalIcv::instance() {
  static GlobalIcv g;
  return g;
}

GlobalIcv::GlobalIcv() {
  default_team_size_ = hardware_threads();
  if (const auto n = env_int("NUM_THREADS"); n && *n > 0) {
    default_team_size_ = static_cast<i32>(*n);
  }
  // A generous default: teams larger than the hardware are legal (tests use
  // them deliberately, and single-core CI containers still fork 8-wide
  // teams), but something must bound runaway nesting. The spec leaves
  // thread-limit-var implementation-defined; libomp's default is "huge".
  thread_limit_ =
      std::max({64, 4 * hardware_threads(), 4 * default_team_size_});
  if (const auto lim = env_int("THREAD_LIMIT"); lim && *lim > 0) {
    thread_limit_ = static_cast<i32>(*lim);
  }
  if (const auto dyn = env_bool("DYNAMIC")) dynamic_default_ = *dyn;
  if (const auto nested = env_bool("NESTED"); nested && *nested) {
    max_levels_default_ = 8;
  }
  if (const auto levels = env_int("MAX_ACTIVE_LEVELS"); levels && *levels > 0) {
    max_levels_default_ = static_cast<i32>(*levels);
  }
  if (const auto sched = env_schedule()) run_sched_default_ = *sched;
  if (const auto policy = env_wait_policy()) set_wait_policy(*policy);
}

i32 backoff_spin_limit() noexcept {
  // Active: 10 exponential rounds (~100 pause instructions total) before
  // yielding; passive: hand the core back immediately. The lookup is one
  // relaxed load after the first call; GlobalIcv construction is guarded by
  // the usual magic-static once-flag.
  constexpr i32 kActiveSpinRounds = 10;
  return GlobalIcv::instance().wait_policy() == WaitPolicy::kPassive
             ? 0
             : kActiveSpinRounds;
}

Icv GlobalIcv::initial() const {
  Icv icv;
  icv.nthreads = default_team_size_;
  icv.run_sched = run_sched_default_;
  icv.dynamic = dynamic_default_;
  icv.max_active_levels = max_levels_default_;
  return icv;
}

void GlobalIcv::set_default_team_size(i32 n) {
  if (n > 0) default_team_size_ = n;
}

void GlobalIcv::set_max_active_levels(i32 levels) {
  if (levels >= 1) max_levels_default_ = levels;
}

}  // namespace zomp::rt
