#include "runtime/task.h"

namespace zomp::rt {

TaskPool::TaskPool(i32 members) {
  queues_.reserve(static_cast<std::size_t>(members));
  for (i32 i = 0; i < members; ++i) {
    queues_.push_back(std::make_unique<WorkStealingDeque>());
  }
}

TaskPool::~TaskPool() {
  // Normal joins drain every deque before the team dies, but reclaim any
  // stragglers so teardown never leaks parked tasks (the deque slots hold
  // raw pointers the unique_ptr wrapper released on push).
  for (auto& queue : queues_) {
    while (Task* task = queue->pop()) delete task;
  }
}

std::unique_ptr<Task> TaskPool::push(i32 tid, std::unique_ptr<Task> task) {
  ZOMP_CHECK(tid >= 0 && tid < static_cast<i32>(queues_.size()),
             "task push from non-member thread");
  // Count before publishing: a thief must never observe a task whose
  // completion could drop `outstanding` below zero. `queued` seq_cst: that
  // increment is the state change the join barrier's WaitGate park keys on
  // (see queued()), so it must land in the seq_cst total order before the
  // waker's parked-flag load.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (queues_[static_cast<std::size_t>(tid)]->push(task.get())) {
    task.release();  // ownership parked in the deque until pop/steal
    return nullptr;
  }
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  return task;  // deque full: caller executes inline
}

std::unique_ptr<Task> TaskPool::take(i32 tid) {
  const auto n = static_cast<i32>(queues_.size());
  ZOMP_CHECK(tid >= 0 && tid < n, "task take from non-member thread");
  // Own deque first, LIFO for locality.
  if (Task* task = queues_[static_cast<std::size_t>(tid)]->pop()) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    return std::unique_ptr<Task>(task);
  }
  // Steal FIFO from siblings, starting just after ourselves so victims are
  // spread without needing randomness. A lost CAS race just moves on to the
  // next victim; the caller's retry loop provides the backoff.
  for (i32 k = 1; k < n; ++k) {
    WorkStealingDeque& q = *queues_[static_cast<std::size_t>((tid + k) % n)];
    if (q.maybe_empty()) continue;
    if (Task* task = q.steal()) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return std::unique_ptr<Task>(task);
    }
  }
  return nullptr;
}

}  // namespace zomp::rt
