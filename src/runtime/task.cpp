#include "runtime/task.h"

namespace zomp::rt {

TaskPool::TaskPool(i32 members) {
  queues_.reserve(static_cast<std::size_t>(members));
  for (i32 i = 0; i < members; ++i) {
    queues_.push_back(std::make_unique<MemberQueue>());
  }
}

void TaskPool::push(i32 tid, std::unique_ptr<Task> task) {
  ZOMP_CHECK(tid >= 0 && tid < static_cast<i32>(queues_.size()),
             "task push from non-member thread");
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  MemberQueue& q = *queues_[static_cast<std::size_t>(tid)];
  const std::lock_guard<std::mutex> lock(q.mutex);
  q.deque.push_back(std::move(task));
}

std::unique_ptr<Task> TaskPool::take(i32 tid) {
  const auto n = static_cast<i32>(queues_.size());
  ZOMP_CHECK(tid >= 0 && tid < n, "task take from non-member thread");
  // Own queue first, LIFO for locality.
  {
    MemberQueue& q = *queues_[static_cast<std::size_t>(tid)];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      auto task = std::move(q.deque.back());
      q.deque.pop_back();
      return task;
    }
  }
  // Steal FIFO from siblings, starting just after ourselves so victims are
  // spread without needing randomness.
  for (i32 k = 1; k < n; ++k) {
    MemberQueue& q = *queues_[static_cast<std::size_t>((tid + k) % n)];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      auto task = std::move(q.deque.front());
      q.deque.pop_front();
      return task;
    }
  }
  return nullptr;
}

}  // namespace zomp::rt
