#include "runtime/task.h"

#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace zomp::rt {

TaskPool::TaskPool(i32 members) {
  queues_.reserve(static_cast<std::size_t>(members));
  mailboxes_.reserve(static_cast<std::size_t>(members));
  for (i32 i = 0; i < members; ++i) {
    queues_.push_back(std::make_unique<WorkStealingDeque>());
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  stats_.resize(static_cast<std::size_t>(members));
}

TaskPool::~TaskPool() {
  // Normal joins drain every deque before the team dies, but reclaim any
  // stragglers so teardown never leaks parked tasks (the deque slots and
  // mailbox entries hold raw pointers the unique_ptr wrapper released).
  for (auto& queue : queues_) {
    while (Task* task = queue->pop()) delete task;
  }
  for (auto& mailbox : mailboxes_) {
    for (Task* task : mailbox->tasks) delete task;
    mailbox->tasks.clear();
  }
}

void TaskPool::set_victim_order(std::vector<i32> order) {
  const auto n = queues_.size();
  ZOMP_CHECK(order.empty() || order.size() == n * (n - 1),
             "victim-order table must be n x (n-1) or empty");
  victim_order_ = std::move(order);
}

StealStats TaskPool::stats_total() const {
  StealStats total;
  for (const StealStats& s : stats_) {
    total.steal_attempts += s.steal_attempts;
    total.steal_lost += s.steal_lost;
    total.mailbox_pulls += s.mailbox_pulls;
    total.tasks_executed += s.tasks_executed;
    total.dispatch_claims += s.dispatch_claims;
    total.barrier_episodes += s.barrier_episodes;
  }
  return total;
}

std::unique_ptr<Task> TaskPool::push(i32 tid, std::unique_ptr<Task> task) {
  ZOMP_CHECK(tid >= 0 && tid < static_cast<i32>(queues_.size()),
             "task push from non-member thread");
  // Count before publishing: a thief must never observe a task whose
  // completion could drop `outstanding` below zero. `queued` seq_cst: that
  // increment is the state change the join barrier's WaitGate park keys on
  // (see queued()), so it must land in the seq_cst total order before the
  // waker's parked-flag load.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (queues_[static_cast<std::size_t>(tid)]->push(task.get())) {
    task.release();  // ownership parked in the deque until pop/steal
    return nullptr;
  }
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  return task;  // deque full: caller executes inline
}

void TaskPool::push_remote(i32 target, std::unique_ptr<Task> task) {
  ZOMP_CHECK(target >= 0 && target < static_cast<i32>(mailboxes_.size()),
             "task mailed to non-member thread");
  // Same counting discipline as push(): counters land before the task is
  // visible, queued_ seq_cst for the WaitGate park protocol. No overflow
  // path — the mailbox is unbounded.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  queued_.fetch_add(1, std::memory_order_seq_cst);
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(target)];
  {
    const std::lock_guard<std::mutex> lock(mb.mu);
    mb.tasks.push_back(task.release());
  }
  mb.count.fetch_add(1, std::memory_order_release);
}

Task* TaskPool::mailbox_pop(i32 member) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(member)];
  // Advisory pre-filter, same contract as maybe_empty(): a stale zero only
  // delays discovery until the caller's queued_ re-check loops back here.
  if (mb.count.load(std::memory_order_relaxed) <= 0) return nullptr;
  const std::lock_guard<std::mutex> lock(mb.mu);
  if (mb.tasks.empty()) return nullptr;
  Task* task = mb.tasks.front();
  mb.tasks.pop_front();
  mb.count.fetch_sub(1, std::memory_order_relaxed);
  return task;
}

std::unique_ptr<Task> TaskPool::take(i32 tid) {
  const auto n = static_cast<i32>(queues_.size());
  ZOMP_CHECK(tid >= 0 && tid < n, "task take from non-member thread");
  StealStats& stats = stats_[static_cast<std::size_t>(tid)];
  // Own deque first, LIFO for locality.
  if (Task* task = queues_[static_cast<std::size_t>(tid)]->pop()) {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    return std::unique_ptr<Task>(task);
  }
  // Own mailbox next: tasks another member aimed specifically at us (the
  // place-aware taskloop spray) beat a cross-place steal.
  if (Task* task = mailbox_pop(tid)) {
    ++stats.mailbox_pulls;
    metrics_add(Metric::kMailboxPulls);
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    return std::unique_ptr<Task>(task);
  }
  if (n <= 1) return nullptr;
  // Steal FIFO from siblings. With a victim-order table installed the scan
  // is hierarchical — same-place siblings first, then same core, same
  // socket, anywhere (each tier already rotated per-member by the builder).
  // Without one, fall back to the flat ring, but start it at a per-member
  // golden-ratio-hashed offset instead of tid+1: under single-producer
  // fan-out a fixed start makes every idle thief hammer the same victim's
  // top CAS in lockstep (convoying), and the stagger fans them out. A lost
  // CAS race just moves on to the next victim; the caller's retry loop
  // provides the backoff.
  const i32* order = victim_order_.empty()
                         ? nullptr
                         : victim_order_.data() +
                               static_cast<std::size_t>(tid) *
                                   static_cast<std::size_t>(n - 1);
  const i32 start =
      tid + 1 +
      static_cast<i32>((static_cast<u32>(tid) * 0x9E3779B9u) %
                       static_cast<u32>(n));
  i32 visited = 0;
  for (i32 k = 0; visited < n - 1; ++k) {
    i32 victim;
    if (order != nullptr) {
      victim = order[visited++];
    } else {
      victim = (start + k) % n;
      if (victim == tid) continue;
      ++visited;
    }
    WorkStealingDeque& q = *queues_[static_cast<std::size_t>(victim)];
    if (!q.maybe_empty()) {
      ++stats.steal_attempts;
      metrics_add(Metric::kStealAttempts);
      trace_emit(TraceEv::kStealAttempt, victim);
      bool lost = false;
      if (Task* task = q.steal(&lost)) {
        metrics_add(Metric::kTasksStolen);
        trace_emit(TraceEv::kStealSuccess, victim);
        queued_.fetch_sub(1, std::memory_order_acq_rel);
        return std::unique_ptr<Task>(task);
      }
      if (lost) {
        ++stats.steal_lost;
        metrics_add(Metric::kStealLost);
      }
    }
    if (Task* task = mailbox_pop(victim)) {
      ++stats.mailbox_pulls;
      metrics_add(Metric::kMailboxPulls);
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return std::unique_ptr<Task>(task);
    }
  }
  return nullptr;
}

}  // namespace zomp::rt
