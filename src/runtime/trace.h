// OMPT-style tool interface + per-thread trace event rings (DESIGN.md S12).
//
// Two consumers share one set of hook sites threaded through the runtime
// (pool/team/worksharing/task/barrier/fault):
//
//   * A tool registered through the zomp_start_tool / zomp_set_callback C ABI
//     (abi.h) receives events synchronously, OMPT-5.2 style.
//   * With ZOMP_TRACE=<file> set, every emitting thread appends to its own
//     fixed-capacity ring of TSC-stamped records, serialized to Chrome
//     trace-event JSON (chrome://tracing / Perfetto) at process exit or
//     zomp::trace_flush().
//
// Disabled-mode cost contract (same as PR 8's cancellation points): a hook
// site is ONE relaxed atomic load when neither consumer is active. The slow
// path — ring append and/or callback dispatch — is out of line.
//
// Ring discipline (the StealStats model, task.h): each ring has exactly one
// writer (the owning thread), which stores records with plain writes and
// publishes them with a release store of the count; drains acquire the count
// and read only the published prefix. Records are never overwritten — a full
// ring counts drops instead (deterministic: the FIRST kRingCapacity events
// survive) — so a concurrent drain is race-free even mid-region; it merely
// misses records still in flight.
#pragma once

#include <atomic>
#include <string>

#include "runtime/common.h"

namespace zomp::rt {

/// Event ids. Values are the stable tool-ABI numbers (abi.h ZOMP_EV_*);
/// kCount bounds the callback table.
enum class TraceEv : i32 {
  kParallelBegin = 0,      ///< master, before any member runs; arg0 = size
  kParallelEnd = 1,        ///< master, after every member checked out
  kImplicitTaskBegin = 2,  ///< each member, before its outlined body
  kImplicitTaskEnd = 3,    ///< each member, after the join rendezvous
  kDispatchInit = 4,       ///< member bound a worksharing slot; arg0 = trips
  kDispatchClaim = 5,      ///< chunk claimed; arg0/arg1 = [lo, hi)
  kBarrierEnter = 6,       ///< barrier episode entered; arg0 = kind (see below)
  kBarrierWaitEnd = 7,     ///< episode over (completed OR abandoned on cancel)
  kTaskCreate = 8,         ///< explicit task created (deferred or inline)
  kTaskSchedule = 9,       ///< a task body is about to run
  kTaskComplete = 10,      ///< that body (and accounting) finished
  kStealAttempt = 11,      ///< CAS-bearing steal() on a victim deque
  kStealSuccess = 12,      ///< the steal returned a task; arg0 = victim tid
  kCancel = 13,            ///< cancellation activated; arg0 = construct bits
  kFault = 14,             ///< fault injection fired; arg0 = FaultSite
  kCount = 15,
};

/// arg0 of kBarrierEnter/kBarrierWaitEnd: which barrier flavour.
enum : i64 {
  kBarrierKindUser = 0,     ///< Team::barrier_wait (explicit/implicit barrier)
  kBarrierKindJoin = 1,     ///< Team::join_barrier_wait (region end)
  kBarrierKindCentral = 2,  ///< standalone CentralBarrier (barrier.cpp)
  kBarrierKindTree = 3,     ///< standalone TreeBarrier (barrier.cpp)
};

namespace trace_detail {

/// Consumer bitmask: bit 0 = ring recording, bit 1 = tool callbacks. Zero —
/// the overwhelmingly common state — short-circuits every hook site.
inline constexpr u32 kActiveRing = 1u;
inline constexpr u32 kActiveCallbacks = 2u;
extern std::atomic<u32> g_active;

void emit_slow(TraceEv ev, i64 arg0, i64 arg1) noexcept;

}  // namespace trace_detail

/// The hook. Disabled mode is exactly this relaxed load + a predicted
/// branch; everything else lives in emit_slow (trace.cpp).
inline void trace_emit(TraceEv ev, i64 arg0 = 0, i64 arg1 = 0) noexcept {
  if (trace_detail::g_active.load(std::memory_order_relaxed) == 0) return;
  trace_detail::emit_slow(ev, arg0, arg1);
}

/// True when ring recording is on (ZOMP_TRACE set, or enabled for tests).
/// Hook sites never need this — trace_emit self-gates — but instrumentation
/// that must pre-compute event arguments can use it to skip the setup.
inline bool trace_ring_enabled() noexcept {
  return (trace_detail::g_active.load(std::memory_order_relaxed) &
          trace_detail::kActiveRing) != 0;
}

/// Parses ZOMP_TRACE from the environment and arms the subsystem: a
/// non-empty value enables ring recording, remembers the output path, and
/// registers the at-exit Chrome-JSON flush (once). An empty value is
/// malformed — there is nowhere to write — and routes through
/// warn_malformed_env. Called by GlobalIcv's constructor (the runtime's
/// config nexus); idempotent, and safe to call again from tests after
/// mutating the environment.
void trace_init_from_env();

/// Serializes every registered ring to Chrome trace-event JSON text:
/// {"traceEvents":[...]} with one pid/tid lane per (place, gtid), B/E pairs
/// for parallel/implicit-task/barrier events, instants for the rest, and
/// metadata records naming the lanes (per-ring drop counts ride in the
/// thread metadata args). Quiescent-drain per the ring discipline above.
std::string trace_serialize_json();

/// Writes trace_serialize_json() to `path`. False on I/O failure (warned on
/// stderr).
bool trace_write_json(const std::string& path);

/// The ZOMP_TRACE output path ("" when tracing is not file-backed).
std::string trace_output_path();

/// Total records dropped across all rings (ring-full overflow).
u64 trace_dropped_total();

/// Test hooks. enable_ring_for_test arms ring recording without a file;
/// set_ring_capacity_for_test bounds NEW rings (existing rings keep their
/// capacity — spawn a fresh thread to get a small one); reset_for_test
/// empties every ring, restores the default capacity, and disarms the ring
/// bit (callbacks are untouched). Reset requires emitting threads to be
/// quiescent, which a test that just joined its regions satisfies.
void trace_enable_ring_for_test();
void trace_set_ring_capacity_for_test(i64 records);
void trace_reset_for_test();

}  // namespace zomp::rt

namespace zomp {

/// Flushes the trace now: writes the Chrome JSON to the ZOMP_TRACE path.
/// No-op (returning false) when tracing is not file-backed. The same writer
/// runs automatically at process exit.
bool trace_flush();

}  // namespace zomp
