// OpenMP-style user locks (omp_lock_t / omp_nest_lock_t equivalents).
//
// Two flavours behind the same API shape as <omp.h>: a plain mutual-exclusion
// lock and a nestable lock that the owning thread may re-acquire. A
// test-and-test-and-set spinlock is provided separately for short critical
// sections and for the micro benches.
#pragma once

#include <mutex>

#include "runtime/common.h"

namespace zomp::rt {

/// Plain lock: like omp_lock_t. Non-recursive; relocking from the owner
/// deadlocks, exactly like the OpenMP object it models.
class Lock {
 public:
  void set() { mutex_.lock(); }
  void unset() { mutex_.unlock(); }
  bool test() { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Nestable lock: like omp_nest_lock_t. set() returns the nesting depth to
/// mirror omp_test_nest_lock's contract.
class NestLock {
 public:
  i32 set();
  void unset();
  i32 test();

 private:
  std::mutex mutex_;
  std::atomic<u64> owner_{kNoOwner};
  i32 depth_ = 0;

  static constexpr u64 kNoOwner = ~u64{0};
  static u64 self_id();
};

/// Test-and-test-and-set spinlock with backoff. Used by the atomic fallback
/// path and compared against Lock in the micro_runtime bench.
class SpinLock {
 public:
  void set();
  void unset() { flag_.store(false, std::memory_order_release); }
  bool test() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace zomp::rt
