// Process-wide metrics registry (DESIGN.md S12).
//
// A flat table of relaxed atomic counters bumped at the same hook sites the
// tracer instruments, plus a per-shard dispatch-claim breakdown. Where the
// per-team StealStats (task.h) answer "what did THIS team's schedule look
// like" and die with the team, the registry aggregates across every team,
// rearm, and nesting level for the whole process lifetime.
//
// Cost contract (same as trace_emit and PR 8's cancellation points): with
// ZOMP_METRICS unset, every metrics_add is one relaxed flag load and a
// predicted branch. Counter increments are relaxed fetch_adds — hot sites
// (chunk claims, steals) tolerate that; nothing here orders anything.
//
// With ZOMP_METRICS=true a libomp-fenced report (the OMP_DISPLAY_ENV
// BEGIN/END framing convention) is written to stderr at process exit; tests
// and tools can pull metrics_report() / metrics_value() directly.
#pragma once

#include <atomic>
#include <string>

#include "runtime/common.h"

namespace zomp::rt {

enum class Metric : i32 {
  kParallelRegions = 0,   ///< forks entering run_region (all sizes)
  kHotTeamHits = 1,       ///< forks served from the hot-team cache
  kHotTeamRebuilds = 2,   ///< forks that (re)built a team through the pool
  kBarrierEpisodes = 3,   ///< barrier episodes entered (user + join)
  kBarrierWaitNs = 4,     ///< wall ns spent inside those episodes
  kDispatchClaims = 5,    ///< dynamic/guided/static chunk claims served
  kTasksExecuted = 6,     ///< explicit task bodies run (incl. inline)
  kTasksStolen = 7,       ///< tasks obtained via a successful deque steal
  kMailboxPulls = 8,      ///< tasks obtained from an affinity mailbox
  kStealAttempts = 9,     ///< CAS-bearing steal() calls on victim deques
  kStealLost = 10,        ///< steals that lost the CAS race
  kCancellations = 11,    ///< cancel activations observed
  kCount = 12,
};

namespace metrics_detail {

extern std::atomic<u32> g_enabled;
extern std::atomic<u64> g_counters[static_cast<i32>(Metric::kCount)];

}  // namespace metrics_detail

/// Upper bound on distinguished shard lanes in the per-shard claim
/// breakdown; claims from higher shard indexes fold into the last lane.
inline constexpr i32 kMetricsMaxShards = 16;

/// The disabled-mode gate: one relaxed load.
inline bool metrics_enabled() noexcept {
  return metrics_detail::g_enabled.load(std::memory_order_relaxed) != 0;
}

/// Bump `m` by `delta` when metrics are on. The hook the runtime layers
/// call; self-gating, so call sites stay one line.
inline void metrics_add(Metric m, u64 delta = 1) noexcept {
  if (!metrics_enabled()) return;
  metrics_detail::g_counters[static_cast<i32>(m)].fetch_add(
      delta, std::memory_order_relaxed);
}

/// A dispatch chunk claim served from shard `shard` (worksharing.cpp serve
/// paths — own-slab, steal_slab victim, and the static/guided cursors).
/// Counts kDispatchClaims plus the per-shard lane.
void metrics_note_shard_claim(i32 shard) noexcept;

/// Seeds the registry from ZOMP_METRICS (env_bool semantics; malformed
/// values warn through the env funnel and read as false) and registers the
/// at-exit report writer once enabled. Called by GlobalIcv's constructor.
void metrics_init_from_env();

/// Current counter value / per-shard claim lane (aggregate readers).
u64 metrics_value(Metric m) noexcept;
u64 metrics_shard_claims(i32 shard) noexcept;

/// The fenced report: "ZOMP METRICS REPORT BEGIN/END" around one
/// `name = 'value'` line per counter, the nonzero shard lanes, and the
/// fault-injection site counts (pulled from fault.cpp at render time).
std::string metrics_report();

/// Test hooks: force the enable flag; zero every counter.
void metrics_set_enabled_for_test(bool on);
void metrics_reset_for_test();

}  // namespace zomp::rt
