#include "runtime/fault.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "runtime/env.h"
#include "runtime/team.h"
#include "runtime/trace.h"

namespace zomp::rt {

namespace {

struct SiteState {
  // Failure period: 0 = never fail, 1 = every call, k = every k'th call.
  std::atomic<u64> period{0};
  std::atomic<u64> calls{0};
  std::atomic<u64> injected{0};
};

struct FaultState {
  // One relaxed load gates the whole subsystem; sites only pay counter
  // traffic while injection is actually configured.
  std::atomic<bool> enabled{false};
  SiteState sites[kNumFaultSites];
};

FaultState& state() {
  static FaultState* s = [] {
    auto* st = new FaultState();
    if (const auto spec = env_string("FAULT_INJECT")) {
      double probs[kNumFaultSites] = {0, 0, 0};
      if (parse_fault_spec(*spec, probs)) {
        bool any = false;
        for (i32 i = 0; i < kNumFaultSites; ++i) {
          const double p = probs[i];
          st->sites[i].period.store(
              p <= 0.0 ? 0
                       : static_cast<u64>(
                             std::max<long long>(1, std::llround(1.0 / p))),
              std::memory_order_relaxed);
          any = any || p > 0.0;
        }
        st->enabled.store(any, std::memory_order_relaxed);
      } else {
        warn_malformed_env("FAULT_INJECT", spec->c_str());
      }
    }
    return st;
  }();
  return *s;
}

}  // namespace

bool fault_should_fail(FaultSite site) noexcept {
  FaultState& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return false;
  SiteState& ss = s.sites[static_cast<i32>(site)];
  const u64 period = ss.period.load(std::memory_order_relaxed);
  if (period == 0) return false;
  const u64 n = ss.calls.fetch_add(1, std::memory_order_relaxed);
  // The period'th call fails (n is 0-based): p=0.5 -> calls 1, 3, 5, ...
  // fail, p=1 -> every call. Deterministic, so a test that re-runs the same
  // workload after fault_configure() sees the identical failure schedule.
  if (n % period != period - 1) return false;
  ss.injected.fetch_add(1, std::memory_order_relaxed);
  trace_emit(TraceEv::kFault, static_cast<i64>(site));
  return true;
}

bool parse_fault_spec(const std::string& text, double out[kNumFaultSites]) {
  double probs[kNumFaultSites] = {0, 0, 0};
  std::size_t pos = 0;
  bool any = false;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string field = text.substr(pos, end - pos);
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = field.substr(0, colon);
    const std::string value = field.substr(colon + 1);
    i32 site = -1;
    if (name == "spawn") site = static_cast<i32>(FaultSite::kSpawn);
    else if (name == "alloc") site = static_cast<i32>(FaultSite::kAlloc);
    else if (name == "affinity") site = static_cast<i32>(FaultSite::kAffinity);
    else return false;
    char* parse_end = nullptr;
    const double p = std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end != value.c_str() + value.size() ||
        !(p >= 0.0 && p <= 1.0)) {
      return false;
    }
    probs[site] = p;
    any = true;
    pos = end + 1;
  }
  if (!any) return false;
  for (i32 i = 0; i < kNumFaultSites; ++i) out[i] = probs[i];
  return true;
}

void fault_configure(const double probs[kNumFaultSites]) {
  FaultState& s = state();
  bool any = false;
  for (i32 i = 0; i < kNumFaultSites; ++i) {
    const double p = probs[i];
    s.sites[i].period.store(
        p <= 0.0
            ? 0
            : static_cast<u64>(std::max<long long>(1, std::llround(1.0 / p))),
        std::memory_order_relaxed);
    s.sites[i].calls.store(0, std::memory_order_relaxed);
    s.sites[i].injected.store(0, std::memory_order_relaxed);
    any = any || p > 0.0;
  }
  s.enabled.store(any, std::memory_order_relaxed);
}

void fault_reset() {
  const double zero[kNumFaultSites] = {0, 0, 0};
  fault_configure(zero);
}

i64 fault_injected_count(FaultSite site) noexcept {
  return static_cast<i64>(state()
                              .sites[static_cast<i32>(site)]
                              .injected.load(std::memory_order_relaxed));
}

[[noreturn]] void fatal(const char* msg, const char* file, int line) {
  // Reentrancy guard: if building the context report itself trips a check
  // (the runtime is, by definition, in a broken state here), fall straight
  // through to abort rather than recursing.
  static thread_local bool reporting = false;
  std::fprintf(stderr, "zomp: fatal: %s (%s:%d)\n", msg, file, line);
  if (!reporting) {
    reporting = true;
    // Thread/team/place context through the OMP_AFFINITY_FORMAT expander —
    // the same fields OMP_DISPLAY_AFFINITY reports, so operators correlate
    // the abort with their affinity logs.
    std::fprintf(
        stderr, "zomp: fatal: context: %s\n",
        affinity_report(current_thread(),
                        "level %L thread %n/%N place %p, OS procs {%A}, "
                        "host %H pid %P")
            .c_str());
    reporting = false;
  }
  std::abort();
}

}  // namespace zomp::rt
