#include "runtime/barrier.h"

#include "runtime/trace.h"

namespace zomp::rt {

std::unique_ptr<Barrier> Barrier::create(BarrierKind kind, i32 n) {
  ZOMP_CHECK(n >= 1, "barrier needs at least one member");
  switch (kind) {
    case BarrierKind::kCentral: return std::make_unique<CentralBarrier>(n);
    case BarrierKind::kTree: return std::make_unique<TreeBarrier>(n);
  }
  return nullptr;
}

PhaseSync::PhaseSync(i32 n) : n_(n), slots_(static_cast<std::size_t>(n)) {
  ZOMP_CHECK(n >= 1, "phase sync needs at least one member");
}

void PhaseSync::publish(i32 member, u64 seq, const void* data,
                        std::size_t size) {
  ZOMP_CHECK(member >= 0 && member < n_, "phase member id out of range");
  ZOMP_CHECK(size <= kSlotBytes, "phase payload exceeds the inline slot");
  Slot& slot = slots_[static_cast<std::size_t>(member)];
  if (size > 0) std::memcpy(slot.data, data, size);
  // Release publishes the payload with the token; tokens are strictly
  // increasing per member, so an awaiter matching >= seq saw this store or
  // a later one (whose payload then supersedes — see the reuse contract in
  // the header).
  slot.token.store(seq, std::memory_order_release);
}

bool PhaseSync::await(i32 member, u64 seq, void* out, std::size_t size,
                      const std::atomic<i32>* cancel, i32 mask) const {
  ZOMP_CHECK(member >= 0 && member < n_, "phase member id out of range");
  ZOMP_CHECK(size <= kSlotBytes, "phase payload exceeds the inline slot");
  const Slot& slot = slots_[static_cast<std::size_t>(member)];
  Backoff backoff;
  while (slot.token.load(std::memory_order_acquire) < seq) {
    if (cancel != nullptr &&
        (cancel->load(std::memory_order_seq_cst) & mask) != 0) {
      return false;
    }
    backoff.pause();
  }
  if (out != nullptr && size > 0) std::memcpy(out, slot.data, size);
  return true;
}

bool PhaseSync::await_all(u64 seq, const std::atomic<i32>* cancel,
                          i32 mask) const {
  for (i32 m = 0; m < n_; ++m) {
    if (!await(m, seq, nullptr, 0, cancel, mask)) return false;
  }
  return true;
}

CentralBarrier::CentralBarrier(i32 n) : n_(n), local_sense_(n) {}

void CentralBarrier::wait(i32 member) {
  ZOMP_CHECK(member >= 0 && member < n_, "barrier member id out of range");
  trace_emit(TraceEv::kBarrierEnter, kBarrierKindCentral);
  const bool my_sense = !local_sense_[member].sense;
  local_sense_[member].sense = my_sense;
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
    // Last arriver resets the counter for the next round, then releases.
    arrived_.store(0, std::memory_order_relaxed);
    global_sense_.store(my_sense, std::memory_order_release);
    trace_emit(TraceEv::kBarrierWaitEnd, kBarrierKindCentral);
    return;
  }
  Backoff backoff;
  while (global_sense_.load(std::memory_order_acquire) != my_sense) {
    backoff.pause();
  }
  trace_emit(TraceEv::kBarrierWaitEnd, kBarrierKindCentral);
}

TreeBarrier::TreeBarrier(i32 n) : n_(n) {
  // Node i's children are members i*kArity+1 .. i*kArity+kArity; member i
  // doubles as tree node i (standard implicit-heap layout).
  nodes_ = std::vector<Node>(static_cast<std::size_t>(n));
  for (i32 i = 0; i < n_; ++i) {
    i32 fanin = 1;  // the member itself
    for (i32 c = 1; c <= kArity; ++c) {
      if (i64{i} * kArity + c < n_) ++fanin;
    }
    nodes_[static_cast<std::size_t>(i)].fanin = fanin;
    nodes_[static_cast<std::size_t>(i)].pending.store(fanin,
                                                      std::memory_order_relaxed);
  }
}

void TreeBarrier::arrive(i32 node) {
  Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Subtree complete: re-arm for the next round, then propagate.
    nd.pending.store(nd.fanin, std::memory_order_relaxed);
    if (node == 0) {
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      arrive((node - 1) / kArity);
    }
  }
}

void TreeBarrier::wait(i32 member) {
  ZOMP_CHECK(member >= 0 && member < n_, "barrier member id out of range");
  trace_emit(TraceEv::kBarrierEnter, kBarrierKindTree);
  const u64 gen = generation_.load(std::memory_order_acquire);
  arrive(member);
  Backoff backoff;
  while (generation_.load(std::memory_order_acquire) == gen) {
    backoff.pause();
  }
  trace_emit(TraceEv::kBarrierWaitEnd, kBarrierKindTree);
}

}  // namespace zomp::rt
