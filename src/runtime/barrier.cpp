#include "runtime/barrier.h"

namespace zomp::rt {

std::unique_ptr<Barrier> Barrier::create(BarrierKind kind, i32 n) {
  ZOMP_CHECK(n >= 1, "barrier needs at least one member");
  switch (kind) {
    case BarrierKind::kCentral: return std::make_unique<CentralBarrier>(n);
    case BarrierKind::kTree: return std::make_unique<TreeBarrier>(n);
  }
  return nullptr;
}

CentralBarrier::CentralBarrier(i32 n) : n_(n), local_sense_(n) {}

void CentralBarrier::wait(i32 member) {
  ZOMP_CHECK(member >= 0 && member < n_, "barrier member id out of range");
  const bool my_sense = !local_sense_[member].sense;
  local_sense_[member].sense = my_sense;
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
    // Last arriver resets the counter for the next round, then releases.
    arrived_.store(0, std::memory_order_relaxed);
    global_sense_.store(my_sense, std::memory_order_release);
    return;
  }
  Backoff backoff;
  while (global_sense_.load(std::memory_order_acquire) != my_sense) {
    backoff.pause();
  }
}

TreeBarrier::TreeBarrier(i32 n) : n_(n) {
  // Node i's children are members i*kArity+1 .. i*kArity+kArity; member i
  // doubles as tree node i (standard implicit-heap layout).
  nodes_ = std::vector<Node>(static_cast<std::size_t>(n));
  for (i32 i = 0; i < n_; ++i) {
    i32 fanin = 1;  // the member itself
    for (i32 c = 1; c <= kArity; ++c) {
      if (i64{i} * kArity + c < n_) ++fanin;
    }
    nodes_[static_cast<std::size_t>(i)].fanin = fanin;
    nodes_[static_cast<std::size_t>(i)].pending.store(fanin,
                                                      std::memory_order_relaxed);
  }
}

void TreeBarrier::arrive(i32 node) {
  Node& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Subtree complete: re-arm for the next round, then propagate.
    nd.pending.store(nd.fanin, std::memory_order_relaxed);
    if (node == 0) {
      generation_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      arrive((node - 1) / kArity);
    }
  }
}

void TreeBarrier::wait(i32 member) {
  ZOMP_CHECK(member >= 0 && member < n_, "barrier member id out of range");
  const u64 gen = generation_.load(std::memory_order_acquire);
  arrive(member);
  Backoff backoff;
  while (generation_.load(std::memory_order_acquire) == gen) {
    backoff.pause();
  }
}

}  // namespace zomp::rt
