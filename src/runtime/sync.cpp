#include "runtime/sync.h"

namespace zomp::rt {

CriticalRegistry& CriticalRegistry::instance() {
  static CriticalRegistry registry;
  return registry;
}

Lock* CriticalRegistry::get(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = locks_[name];
  if (!slot) slot = std::make_unique<Lock>();
  return slot.get();
}

void critical_enter(const std::string& name) {
  CriticalRegistry::instance().get(name)->set();
}

void critical_exit(const std::string& name) {
  CriticalRegistry::instance().get(name)->unset();
}

}  // namespace zomp::rt
