// Source-location descriptor passed through the C ABI.
//
// Mirrors libomp's `ident_t`: generated code passes a static descriptor so
// runtime diagnostics can name the construct that misbehaved. The paper's
// generated Zig does the same when calling __kmpc_* entry points.
#pragma once

#include "runtime/common.h"

namespace zomp::rt {

struct SourceIdent {
  const char* file = "<unknown>";
  const char* construct = "<unknown>";  // e.g. "parallel", "for", "critical"
  i32 line = 0;
};

/// Default ident used by the C++ convenience API, where call sites are
/// ordinary C++ and the construct name carries the useful information.
inline const SourceIdent& unknown_ident() {
  static const SourceIdent ident{};
  return ident;
}

}  // namespace zomp::rt
