#include "runtime/abi.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/api.h"
#include "runtime/pool.h"
#include "runtime/sync.h"
#include "runtime/team.h"
#include "runtime/trace.h"
#include "runtime/worksharing.h"

namespace {

using zomp::rt::current_thread;
using zomp::rt::i32;
using zomp::rt::i64;
using zomp::rt::Schedule;
using zomp::rt::ScheduleKind;
using zomp::rt::ThreadState;

zomp::rt::SourceIdent to_ident(const zomp_ident_t* loc) {
  if (loc == nullptr) return zomp::rt::SourceIdent{};
  return zomp::rt::SourceIdent{loc->file, loc->construct, loc->line};
}

// CAS loop over plain memory via the __atomic builtins: the target object is
// an ordinary variable owned by user code (a reduction target, say), so the
// runtime must not assume std::atomic layout on it. These builtins are the
// same primitives libomp's atomic entry points use.
template <typename T, typename Op>
void atomic_rmw(T* addr, T value, Op op) {
  T expected;
  __atomic_load(addr, &expected, __ATOMIC_RELAXED);
  for (;;) {
    T desired = op(expected, value);
    if (__atomic_compare_exchange(addr, &expected, &desired, /*weak=*/true,
                                  __ATOMIC_ACQ_REL, __ATOMIC_RELAXED)) {
      return;
    }
  }
}

}  // namespace

extern "C" {

void zomp_fork_call(const zomp_ident_t* loc, zomp_microtask_t fn,
                    std::int32_t argc, void** args) {
  // Thin shim over the fork fast path (pool.cpp): hot-team recycling and the
  // doorbell handoff live behind rt::fork_call, so generated code and the
  // C++ API share one region-entry cost.
  (void)argc;
  zomp::rt::ForkOptions opts;
  opts.ident = to_ident(loc);
  zomp::rt::fork_call(fn, args, opts);
}

void zomp_fork_call_if(const zomp_ident_t* loc, zomp_microtask_t fn,
                       std::int32_t argc, void** args, std::int32_t cond) {
  (void)argc;
  zomp::rt::ForkOptions opts;
  opts.ident = to_ident(loc);
  opts.if_clause = cond != 0;
  zomp::rt::fork_call(fn, args, opts);
}

void zomp_push_num_threads(const zomp_ident_t* /*loc*/, std::int32_t n) {
  if (n > 0) current_thread().pushed_num_threads = n;
}

void zomp_push_proc_bind(const zomp_ident_t* /*loc*/, std::int32_t bind) {
  if (bind >= 0 && bind <= static_cast<std::int32_t>(zomp::rt::BindKind::kSpread)) {
    current_thread().pushed_proc_bind = static_cast<zomp::rt::BindKind>(bind);
  }
}

void zomp_for_static_init(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                          std::int64_t chunk, std::int64_t lo, std::int64_t hi,
                          std::int64_t step, std::int64_t* plo,
                          std::int64_t* phi, std::int64_t* pstride,
                          std::int32_t* plast) {
  ThreadState& ts = current_thread();
  const zomp::rt::StaticRange r = zomp::rt::static_distribute(
      lo, hi, step, chunk, ts.tid, ts.team->size());
  *plo = r.lo;
  *phi = r.hi;
  *pstride = r.stride;
  *plast = r.last ? 1 : 0;
}

void zomp_for_static_fini(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  // Shape parity with __kmpc_for_static_fini; nothing to release because the
  // static path keeps no shared state.
}

void zomp_static_range(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                       std::int64_t lo, std::int64_t hi, std::int64_t* plo,
                       std::int64_t* phi, std::int32_t* plast) {
  ThreadState& ts = current_thread();
  const zomp::rt::StaticRange r =
      zomp::rt::static_block_range(lo, hi, ts.tid, ts.team->size());
  *plo = r.lo;
  *phi = r.hi;
  *plast = r.last ? 1 : 0;
}

void zomp_dispatch_init(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                        std::int32_t sched_kind, std::int64_t chunk,
                        std::int64_t lo, std::int64_t hi, std::int64_t step) {
  ThreadState& ts = current_thread();
  Schedule schedule{static_cast<ScheduleKind>(sched_kind), chunk};
  ts.team->dispatch_init(ts, schedule, lo, hi, step);
}

std::int32_t zomp_dispatch_next(const zomp_ident_t* /*loc*/,
                                std::int32_t /*gtid*/, std::int64_t* plo,
                                std::int64_t* phi, std::int32_t* plast) {
  // The returned range may cover a batch of chunks claimed with a single
  // fetch_add (worksharing.cpp); generated code just runs [lo, hi) either
  // way, so fine-grained dynamic loops get the batching for free.
  ThreadState& ts = current_thread();
  bool last = false;
  const bool more = ts.team->dispatch_next(ts, plo, phi, &last);
  if (plast != nullptr) *plast = last ? 1 : 0;
  return more ? 1 : 0;
}

void zomp_dispatch_break(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  ThreadState& ts = current_thread();
  ts.team->dispatch_break(ts);
}

// -- Cancellation ----------------------------------------------------------

std::int32_t zomp_cancel(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                         std::int32_t construct) {
  ThreadState& ts = current_thread();
  zomp::rt::Team& team = *ts.team;
  switch (construct) {
    case ZOMP_CANCEL_PARALLEL:
      return team.cancel_activate(ts, zomp::rt::Team::kCancelParallel) ? 1 : 0;
    case ZOMP_CANCEL_LOOP:
      return team.cancel_activate(ts, zomp::rt::Team::kCancelLoop) ? 1 : 0;
    case ZOMP_CANCEL_TASKGROUP:
      return team.cancel_taskgroup(ts) ? 1 : 0;
    default:
      return 0;
  }
}

std::int32_t zomp_cancellation_point(const zomp_ident_t* /*loc*/,
                                     std::int32_t /*gtid*/,
                                     std::int32_t construct) {
  ThreadState& ts = current_thread();
  zomp::rt::Team& team = *ts.team;
  switch (construct) {
    case ZOMP_CANCEL_PARALLEL:
      return team.cancellation_requested(ts, zomp::rt::Team::kCancelParallel)
                 ? 1
                 : 0;
    case ZOMP_CANCEL_LOOP:
      // A pending parallel cancel subsumes the loop: the member must leave
      // the loop either way to reach the region end.
      return team.cancellation_requested(
                 ts, zomp::rt::Team::kCancelLoop |
                         zomp::rt::Team::kCancelParallel)
                 ? 1
                 : 0;
    case ZOMP_CANCEL_TASKGROUP:
      return team.taskgroup_cancelled(ts) ? 1 : 0;
    default:
      return 0;
  }
}

std::int32_t zomp_get_cancellation(void) {
  return zomp::rt::GlobalIcv::instance().cancellation() ? 1 : 0;
}

std::int64_t mz_omp_get_cancellation(void) {
  return zomp_get_cancellation();
}

std::int32_t zomp_barrier(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  ThreadState& ts = current_thread();
  return ts.team->barrier_wait(ts.tid) ? 1 : 0;
}

std::int32_t zomp_single(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  ThreadState& ts = current_thread();
  return ts.team->single_begin(ts) ? 1 : 0;
}

void zomp_end_single(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  // The construct's implicit barrier (when not nowait) is emitted separately
  // by the directive engine, matching libomp.
}

std::int32_t zomp_master(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  return current_thread().tid == 0 ? 1 : 0;
}

void zomp_critical(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                   const char* name) {
  zomp::rt::critical_enter(name == nullptr ? "" : name);
}

void zomp_end_critical(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                       const char* name) {
  zomp::rt::critical_exit(name == nullptr ? "" : name);
}

void zomp_ordered(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                  std::int64_t index) {
  ThreadState& ts = current_thread();
  ts.team->ordered_enter(ts, index);
}

void zomp_end_ordered(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                      std::int64_t index) {
  ThreadState& ts = current_thread();
  ts.team->ordered_exit(ts, index);
}

std::int32_t zomp_reduce(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                         void* data, std::int64_t size, zomp_reduce_fn_t fn) {
  ThreadState& ts = current_thread();
  // The C combine fn rides in the ctx slot of the runtime's internal
  // signature (which threads caller state for the C++ API's functors).
  auto thunk = [](void* ctx, void* lhs, const void* rhs) {
    reinterpret_cast<zomp_reduce_fn_t>(ctx)(lhs, rhs);
  };
  const bool winner = ts.team->reduce_combine(
      ts, data, static_cast<std::size_t>(size), thunk,
      reinterpret_cast<void*>(fn), /*broadcast=*/false);
  return winner ? 1 : 0;
}

// -- Atomics --------------------------------------------------------------

void zomp_atomic_add_i64(std::int64_t* addr, std::int64_t value) {
  __atomic_fetch_add(addr, value, __ATOMIC_ACQ_REL);
}
void zomp_atomic_sub_i64(std::int64_t* addr, std::int64_t value) {
  __atomic_fetch_sub(addr, value, __ATOMIC_ACQ_REL);
}
void zomp_atomic_mul_i64(std::int64_t* addr, std::int64_t value) {
  atomic_rmw(addr, value, [](std::int64_t a, std::int64_t b) { return a * b; });
}
void zomp_atomic_div_i64(std::int64_t* addr, std::int64_t value) {
  atomic_rmw(addr, value, [](std::int64_t a, std::int64_t b) { return a / b; });
}
void zomp_atomic_min_i64(std::int64_t* addr, std::int64_t value) {
  atomic_rmw(addr, value,
             [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
}
void zomp_atomic_max_i64(std::int64_t* addr, std::int64_t value) {
  atomic_rmw(addr, value,
             [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}
void zomp_atomic_and_i64(std::int64_t* addr, std::int64_t value) {
  __atomic_fetch_and(addr, value, __ATOMIC_ACQ_REL);
}
void zomp_atomic_or_i64(std::int64_t* addr, std::int64_t value) {
  __atomic_fetch_or(addr, value, __ATOMIC_ACQ_REL);
}
void zomp_atomic_xor_i64(std::int64_t* addr, std::int64_t value) {
  __atomic_fetch_xor(addr, value, __ATOMIC_ACQ_REL);
}
void zomp_atomic_add_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return a + b; });
}
void zomp_atomic_sub_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return a - b; });
}
void zomp_atomic_mul_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return a * b; });
}
void zomp_atomic_div_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return a / b; });
}
void zomp_atomic_min_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return std::min(a, b); });
}
void zomp_atomic_max_f64(double* addr, double value) {
  atomic_rmw(addr, value, [](double a, double b) { return std::max(a, b); });
}

// -- Tasking --------------------------------------------------------------

namespace {

/// Firstprivate capture: the pack bytes ride inside the task closure.
std::function<void()> capture_task_body(void (*fn)(void* arg), const void* arg,
                                        std::int64_t arg_size) {
  std::vector<unsigned char> capture(static_cast<std::size_t>(arg_size));
  if (arg_size > 0) std::memcpy(capture.data(), arg, capture.size());
  return [fn, capture = std::move(capture)]() mutable { fn(capture.data()); };
}

}  // namespace

void zomp_task(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
               void (*fn)(void* arg), const void* arg, std::int64_t arg_size) {
  ThreadState& ts = current_thread();
  ts.team->task_create(ts, capture_task_body(fn, arg, arg_size));
}

void zomp_task_with_deps(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                         void (*fn)(void* arg), const void* arg,
                         std::int64_t arg_size, const zomp_depend_t* deps,
                         std::int32_t ndeps, std::int32_t flags,
                         std::int32_t priority) {
  ThreadState& ts = current_thread();
  zomp::rt::TaskOpts opts;
  std::vector<zomp::rt::DepSpec> dep_specs;
  if (deps != nullptr && ndeps > 0) {
    dep_specs.reserve(static_cast<std::size_t>(ndeps));
    for (std::int32_t i = 0; i < ndeps; ++i) {
      zomp::rt::DepSpec spec;
      spec.addr = deps[i].addr;
      spec.kind = static_cast<zomp::rt::DepKind>(deps[i].kind);
      dep_specs.push_back(spec);
    }
    opts.deps = dep_specs.data();
    opts.ndeps = ndeps;
  }
  opts.deferred = (flags & ZOMP_TASK_UNDEFERRED) == 0;
  opts.final = (flags & ZOMP_TASK_FINAL) != 0;
  opts.untied = (flags & ZOMP_TASK_UNTIED) != 0;
  opts.priority = priority;
  ts.team->task_create_ex(ts, capture_task_body(fn, arg, arg_size), opts);
}

void zomp_taskwait(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  ThreadState& ts = current_thread();
  ts.team->taskwait(ts);
}

void* zomp_taskgroup_begin(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/) {
  // Heap-allocated because generated code holds the group across two ABI
  // calls (the structured-block model of hl.h's stack TaskGroup does not
  // survive a split entry/exit pair).
  ThreadState& ts = current_thread();
  auto* group = new zomp::rt::TaskGroup();
  ts.team->taskgroup_begin(ts, *group);
  return group;
}

void zomp_taskgroup_end(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                        void* group) {
  ThreadState& ts = current_thread();
  auto* tg = static_cast<zomp::rt::TaskGroup*>(group);
  ts.team->taskgroup_end(ts, *tg);
  delete tg;
}

void zomp_taskloop(const zomp_ident_t* /*loc*/, std::int32_t /*gtid*/,
                   void (*fn)(std::int64_t chunk_lo, std::int64_t chunk_hi,
                              void* arg),
                   const void* arg, std::int64_t arg_size, std::int64_t lo,
                   std::int64_t hi, std::int64_t grainsize,
                   std::int64_t num_tasks) {
  ThreadState& ts = current_thread();
  // One shared copy of the pack: chunk thunks read fields by value into the
  // outlined function's parameters, so sharing preserves firstprivate
  // semantics, and the implicit taskgroup keeps the buffer alive.
  auto capture =
      std::make_shared<std::vector<unsigned char>>(static_cast<std::size_t>(arg_size));
  if (arg_size > 0) std::memcpy(capture->data(), arg, capture->size());
  ts.team->taskloop(ts, lo, hi, grainsize, num_tasks,
                    [fn, capture](i64 chunk_lo, i64 chunk_hi) {
                      fn(chunk_lo, chunk_hi, capture->data());
                    });
}

// -- Queries ----------------------------------------------------------------

std::int64_t mz_omp_get_thread_num(void) { return zomp::thread_num(); }
std::int64_t mz_omp_get_num_threads(void) { return zomp::num_threads(); }
std::int64_t mz_omp_get_max_threads(void) { return zomp::max_threads(); }
std::int64_t mz_omp_get_num_procs(void) { return zomp::num_procs(); }
std::int64_t mz_omp_in_parallel(void) { return zomp::in_parallel() ? 1 : 0; }
std::int64_t mz_omp_get_level(void) { return zomp::level(); }
std::int64_t mz_omp_get_team_size(std::int64_t level) {
  return zomp::team_size(static_cast<i32>(level));
}
std::int64_t mz_omp_get_max_active_levels(void) {
  return zomp::get_max_active_levels();
}
void mz_omp_set_max_active_levels(std::int64_t levels) {
  zomp::set_max_active_levels(static_cast<i32>(levels));
}
std::int64_t mz_omp_get_max_task_priority(void) {
  return zomp::max_task_priority();
}
void mz_omp_set_num_threads(std::int64_t n) {
  zomp::set_num_threads(static_cast<i32>(n));
}
double mz_omp_get_wtime(void) { return zomp::wtime(); }
double mz_omp_get_wtick(void) { return zomp::wtick(); }
std::int64_t mz_omp_team_stat(std::int64_t which) {
  const zomp::TeamStats s = zomp::team_stats();
  switch (which) {
    case 0: return s.steal_attempts;
    case 1: return s.steal_lost;
    case 2: return s.mailbox_pulls;
    case 3: return s.tasks_executed;
    case 4: return s.dispatch_claims;
    case 5: return s.barrier_episodes;
    default: return 0;
  }
}
std::int64_t mz_omp_trace_flush(void) { return zomp::trace_flush() ? 1 : 0; }

std::int32_t zomp_get_thread_num(void) { return zomp::thread_num(); }
std::int32_t zomp_get_num_threads(void) { return zomp::num_threads(); }
std::int32_t zomp_get_max_threads(void) { return zomp::max_threads(); }
std::int32_t zomp_get_num_procs(void) { return zomp::num_procs(); }
std::int32_t zomp_in_parallel(void) { return zomp::in_parallel() ? 1 : 0; }
std::int32_t zomp_get_level(void) { return zomp::level(); }
std::int32_t zomp_get_team_size(std::int32_t level) {
  return zomp::team_size(level);
}
std::int32_t zomp_get_max_active_levels(void) {
  return zomp::get_max_active_levels();
}
void zomp_set_max_active_levels(std::int32_t levels) {
  zomp::set_max_active_levels(levels);
}
std::int32_t zomp_get_max_task_priority(void) {
  return zomp::max_task_priority();
}
void zomp_set_num_threads(std::int32_t n) { zomp::set_num_threads(n); }
double zomp_get_wtime(void) { return zomp::wtime(); }
double zomp_get_wtick(void) { return zomp::wtick(); }
std::int32_t zomp_trace_flush(void) { return zomp::trace_flush() ? 1 : 0; }
void zomp_team_stats(zomp_team_stats_t* out) {
  if (out == nullptr) return;
  const zomp::TeamStats s = zomp::team_stats();
  out->steal_attempts = s.steal_attempts;
  out->steal_lost = s.steal_lost;
  out->mailbox_pulls = s.mailbox_pulls;
  out->tasks_executed = s.tasks_executed;
  out->dispatch_claims = s.dispatch_claims;
  out->barrier_episodes = s.barrier_episodes;
}

std::int32_t zomp_get_proc_bind(void) {
  return static_cast<std::int32_t>(zomp::get_proc_bind());
}
std::int32_t zomp_get_num_places(void) { return zomp::num_places(); }
std::int32_t zomp_get_place_num(void) { return zomp::place_num(); }
std::int32_t zomp_get_place_num_procs(std::int32_t place) {
  return zomp::place_num_procs(place);
}
void zomp_get_place_proc_ids(std::int32_t place, std::int32_t* ids) {
  zomp::place_proc_ids(place, ids);
}
std::int32_t zomp_get_partition_num_places(void) {
  return zomp::partition_num_places();
}
void zomp_get_partition_place_nums(std::int32_t* nums) {
  zomp::partition_place_nums(nums);
}
void zomp_display_affinity(void) { zomp::display_affinity(); }

std::int64_t mz_omp_get_proc_bind(void) {
  return static_cast<std::int64_t>(zomp::get_proc_bind());
}
std::int64_t mz_omp_get_num_places(void) { return zomp::num_places(); }
std::int64_t mz_omp_get_place_num(void) { return zomp::place_num(); }
std::int64_t mz_omp_get_place_num_procs(std::int64_t place) {
  return zomp::place_num_procs(static_cast<i32>(place));
}
std::int64_t mz_omp_get_partition_num_places(void) {
  return zomp::partition_num_places();
}
void mz_omp_display_affinity(void) { zomp::display_affinity(); }

void zomp_set_affinity_format(const char* format) {
  zomp::set_affinity_format(format);
}
std::uint64_t zomp_get_affinity_format(char* buffer, std::uint64_t size) {
  return zomp::get_affinity_format(buffer, static_cast<std::size_t>(size));
}
std::uint64_t zomp_capture_affinity(char* buffer, std::uint64_t size,
                                    const char* format) {
  return zomp::capture_affinity(buffer, static_cast<std::size_t>(size),
                                format);
}

void mz_omp_set_affinity_format(const char* format) {
  zomp::set_affinity_format(format);
}
std::int64_t mz_omp_get_affinity_format(char* buffer, std::int64_t size) {
  const std::size_t n = size > 0 ? static_cast<std::size_t>(size) : 0;
  return static_cast<std::int64_t>(zomp::get_affinity_format(buffer, n));
}
std::int64_t mz_omp_capture_affinity(char* buffer, std::int64_t size,
                                     const char* format) {
  const std::size_t n = size > 0 ? static_cast<std::size_t>(size) : 0;
  return static_cast<std::int64_t>(
      zomp::capture_affinity(buffer, n, format));
}

}  // extern "C"
