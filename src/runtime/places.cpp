#include "runtime/places.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <utility>

#include "runtime/env.h"
#include "runtime/fault.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace zomp::rt {

const char* bind_kind_name(BindKind kind) {
  switch (kind) {
    case BindKind::kUnset: return "unset";
    case BindKind::kFalse: return "false";
    case BindKind::kTrue: return "true";
    case BindKind::kPrimary: return "primary";
    case BindKind::kClose: return "close";
    case BindKind::kSpread: return "spread";
  }
  return "<invalid>";
}

namespace {

std::string lower_trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  std::string t = s.substr(first, last - first + 1);
  std::transform(t.begin(), t.end(), t.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return t;
}

}  // namespace

std::optional<BindKind> parse_bind_kind(const std::string& text) {
  const std::string t = lower_trim(text);
  if (t == "false") return BindKind::kFalse;
  if (t == "true") return BindKind::kTrue;
  if (t == "primary" || t == "master") return BindKind::kPrimary;
  if (t == "close") return BindKind::kClose;
  if (t == "spread") return BindKind::kSpread;
  return std::nullopt;
}

std::optional<std::vector<BindKind>> parse_proc_bind(const std::string& text) {
  std::vector<BindKind> out;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const std::string item = comma == std::string::npos
                                 ? text.substr(start)
                                 : text.substr(start, comma - start);
    const auto kind = parse_bind_kind(item);
    if (!kind) return std::nullopt;
    out.push_back(*kind);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) return std::nullopt;
  return out;
}

// ---------------------------------------------------------------------------
// OMP_PLACES grammar
// ---------------------------------------------------------------------------

namespace {

/// Character cursor over a places spec. Errors latch; the first one wins.
class PlacesScanner {
 public:
  explicit PlacesScanner(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  std::optional<i64> number() {
    skip_ws();
    bool neg = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      neg = text_[pos_] == '-';
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return std::nullopt;
    }
    i64 v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      // Saturate instead of overflowing: anything this large is rejected by
      // the range checks in the callers anyway.
      if (v < kSaturatedNumber) v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return neg ? -v : v;
  }

  static constexpr i64 kSaturatedNumber = i64{1} << 40;
  std::string word() {
    skip_ws();
    std::string w;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      w.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return w;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

PlacesParse fail(std::string error) {
  PlacesParse out;
  out.error = std::move(error);
  return out;
}

/// Widest explicit place a spec may name: the kernel's cpu_set_t covers
/// CPU_SETSIZE processors, so longer ranges could never bind.
constexpr i64 kMaxPlaceLength = 65536;

/// One `num[:len[:stride]]` resource range inside an explicit place.
bool parse_res_range(PlacesScanner& s, std::vector<i32>& procs,
                     std::string& error) {
  const auto base = s.number();
  if (!base) {
    error = "expected a processor number inside '{...}'";
    return false;
  }
  if (*base < 0) {
    error = "processor numbers cannot be negative";
    return false;
  }
  if (*base > kMaxPlaceLength) {
    error = "processor number exceeds the supported range";
    return false;
  }
  i64 len = 1;
  i64 stride = 1;
  if (s.consume(':')) {
    const auto l = s.number();
    if (!l) {
      error = "expected a length after ':'";
      return false;
    }
    len = *l;
    if (len <= 0) {
      error = "place length must be positive";
      return false;
    }
    // The expansion below materialises `len` processor ids; anything past
    // the kernel's cpu_set_t width cannot be bound anyway, so reject
    // absurd lengths before they allocate (OMP_PLACES="{0:2000000000}").
    if (len > kMaxPlaceLength) {
      error = "place length exceeds the supported processor range";
      return false;
    }
    if (s.consume(':')) {
      const auto st = s.number();
      if (!st) {
        error = "expected a stride after ':'";
        return false;
      }
      stride = *st;
      if (stride < 0) {
        error = "negative strides are not supported in OMP_PLACES";
        return false;
      }
      if (stride == 0) {
        error = "place stride cannot be zero";
        return false;
      }
      if (stride > kMaxPlaceLength) {
        error = "place stride exceeds the supported range";
        return false;
      }
    }
  }
  for (i64 k = 0; k < len; ++k) {
    const i64 proc = *base + k * stride;
    // Out-of-range ids can never be usable; skipping them here (rather than
    // truncating through the i32 cast) keeps a wrapped value from aliasing
    // a real low-numbered processor.
    if (proc > kMaxPlaceLength) break;
    procs.push_back(static_cast<i32>(proc));
  }
  return true;
}

PlacesParse parse_explicit_places(PlacesScanner& s) {
  PlacesParse out;
  for (;;) {
    if (!s.consume('{')) {
      return fail("expected '{' to open a place");
    }
    Place place;
    std::string error;
    for (;;) {
      if (!parse_res_range(s, place.procs, error)) return fail(error);
      if (s.consume(',')) continue;
      break;
    }
    if (!s.consume('}')) {
      return fail("unbalanced '{' in place list");
    }
    std::sort(place.procs.begin(), place.procs.end());
    place.procs.erase(std::unique(place.procs.begin(), place.procs.end()),
                      place.procs.end());
    out.places.push_back(std::move(place));
    if (s.consume(',')) continue;
    break;
  }
  if (!s.at_end()) return fail("trailing characters after place list");
  out.ok = true;
  return out;
}

/// Builds the abstract place kinds from the topology: one place per SMT
/// thread / core / socket, in topology order.
std::vector<Place> abstract_places(const std::string& kind,
                                   const Topology& topo) {
  std::vector<Place> out;
  const auto& procs = topo.procs();
  if (kind == "threads") {
    for (const ProcInfo& p : procs) {
      Place place;
      place.procs.push_back(p.os_proc);
      out.push_back(std::move(place));
    }
    return out;
  }
  // cores / sockets: group consecutive procs (topology order keeps siblings
  // adjacent) by the grouping id.
  i32 current = -1;
  for (const ProcInfo& p : procs) {
    const i32 group = kind == "cores" ? p.core : p.socket;
    if (out.empty() || group != current) {
      out.emplace_back();
      current = group;
    }
    out.back().procs.push_back(p.os_proc);
  }
  return out;
}

}  // namespace

PlacesParse parse_places(const std::string& text, const Topology& topo) {
  PlacesScanner s(text);
  if (s.peek() == '{') {
    PlacesParse parsed = parse_explicit_places(s);
    if (!parsed.ok) return parsed;
    // Intersect with the usable processor set: trim unknown procs, drop
    // places the trim left empty. A `taskset`-restricted process keeps
    // whatever survives — possibly a single place (the graceful fallback).
    std::vector<Place> usable;
    for (Place& place : parsed.places) {
      Place trimmed;
      for (const i32 p : place.procs) {
        if (topo.usable(p)) trimmed.procs.push_back(p);
      }
      if (!trimmed.procs.empty()) usable.push_back(std::move(trimmed));
    }
    parsed.places = std::move(usable);
    return parsed;
  }
  const std::string kind = s.word();
  if (kind != "threads" && kind != "cores" && kind != "sockets") {
    return fail("expected 'threads', 'cores', 'sockets' or '{...}'");
  }
  i64 count = -1;
  if (s.consume('(')) {
    const auto n = s.number();
    if (!n || *n <= 0) {
      return fail("expected a positive count in '" + kind + "(...)'");
    }
    if (!s.consume(')')) {
      return fail("expected ')' after '" + kind + "(' count");
    }
    count = *n;
  }
  if (!s.at_end()) return fail("trailing characters after '" + kind + "'");
  PlacesParse out;
  out.ok = true;
  out.places = abstract_places(kind, topo);
  if (count >= 0 && static_cast<std::size_t>(count) < out.places.size()) {
    out.places.resize(static_cast<std::size_t>(count));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Process-wide place table
// ---------------------------------------------------------------------------

PlaceTable::PlaceTable() {
  const Topology& topo = Topology::instance();
  std::string spec = "cores";  // the default abstract name
  if (const auto text = env_string("PLACES")) spec = *text;
  PlacesParse parsed = parse_places(spec, topo);
  if (!parsed.ok) {
    // Unified malformed-env channel (env.h): warn once, fall back to the
    // 'cores' default.
    const std::string detail = parsed.error + "; using 'cores'";
    warn_malformed_env("PLACES", spec.c_str(), detail.c_str());
    parsed = parse_places("cores", topo);
  }
  places_ = std::move(parsed.places);
}

PlaceTable& PlaceTable::instance() {
  static PlaceTable table;
  return table;
}

void PlaceTable::set_for_test(std::vector<Place> places) {
  places_ = std::move(places);
  ++generation_;
}

// ---------------------------------------------------------------------------
// Placement math
// ---------------------------------------------------------------------------

u64 binding_sig(BindKind bind, i32 part_lo, i32 part_len, i32 master_place,
                i32 size) {
  if (bind == BindKind::kUnset || bind == BindKind::kFalse) return 0;
  if (!PlaceTable::instance().available()) return 0;
  // FNV-style mix over the plan inputs plus the table generation; the high
  // bit keeps active signatures distinct from the inactive sentinel 0.
  u64 h = 1469598103934665603ull;
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<u64>(static_cast<i64>(bind)));
  mix(static_cast<u64>(part_lo));
  mix(static_cast<u64>(part_len));
  mix(static_cast<u64>(static_cast<i64>(master_place)));
  mix(static_cast<u64>(size));
  mix(PlaceTable::instance().generation());
  return h | (u64{1} << 63);
}

BindingPlan plan_binding(BindKind bind, i32 part_lo, i32 part_len,
                         i32 master_place, i32 size) {
  BindingPlan plan;
  if (bind == BindKind::kUnset || bind == BindKind::kFalse || size <= 0) {
    return plan;
  }
  const PlaceTable& table = PlaceTable::instance();
  const i32 total = table.num_places();
  if (total == 0) return plan;

  // Clamp the partition into the table; part_len == 0 means "whole table"
  // (the initial data environment before any fork narrowed it).
  if (part_lo < 0 || part_lo >= total) part_lo = 0;
  if (part_len <= 0 || part_lo + part_len > total) part_len = total - part_lo;
  const i32 K = part_len;
  const i32 T = size;
  i32 m = master_place - part_lo;  // master's index within the partition
  if (m < 0 || m >= K) m = 0;

  plan.active = true;
  plan.sig = binding_sig(bind, part_lo, part_len, master_place, size);
  plan.members.resize(static_cast<std::size_t>(T));

  for (i32 i = 0; i < T; ++i) {
    MemberBinding& mb = plan.members[static_cast<std::size_t>(i)];
    switch (bind) {
      case BindKind::kPrimary:
        mb.place = part_lo + m;
        mb.part_lo = part_lo;
        mb.part_len = K;
        break;
      case BindKind::kTrue:
      case BindKind::kClose: {
        // Consecutive places from the master while the team fits; grouped
        // (floor(i*K/T) threads per place) beyond.
        const i32 offset = T <= K ? i : static_cast<i32>((i64{i} * K) / T);
        mb.place = part_lo + (m + offset) % K;
        mb.part_lo = part_lo;
        mb.part_len = K;
        break;
      }
      case BindKind::kSpread: {
        if (T <= K) {
          // Subdivide [0, K) into T contiguous subpartitions with fixed
          // boundaries [floor(j*K/T), floor((j+1)*K/T)). Spec §10.1.3:
          // subpartition numbering begins with the one containing the
          // parent thread's place — so member i takes subpartition
          // (r + i) % T, where r is the slice holding the master, and the
          // master itself (member 0) keeps the parent's exact place.
          const i32 r = static_cast<i32>(
              (i64{m + 1} * T + K - 1) / K - 1);  // slice containing m
          const i32 j = (r + i) % T;
          const i32 sub_lo = static_cast<i32>((i64{j} * K) / T);
          const i32 sub_hi = static_cast<i32>((i64{j + 1} * K) / T);
          mb.place = i == 0 ? part_lo + m : part_lo + sub_lo;
          mb.part_lo = part_lo + sub_lo;
          mb.part_len = std::max(1, sub_hi - sub_lo);
        } else {
          // More members than places: groups share a place, rotated so
          // group 0 sits on the master's place, and each member's
          // partition narrows to that single place.
          const i32 sub = static_cast<i32>((i64{i} * K) / T);
          mb.place = part_lo + (m + sub) % K;
          mb.part_lo = mb.place;
          mb.part_len = 1;
        }
        break;
      }
      case BindKind::kUnset:
      case BindKind::kFalse:
        break;  // unreachable (filtered above)
    }
  }
  return plan;
}

namespace {
std::atomic<i64> g_affinity_syscalls{0};
}  // namespace

i64 affinity_syscall_count() {
  return g_affinity_syscalls.load(std::memory_order_relaxed);
}

bool apply_place_mask(i32 place) {
  // Fault-injection hook (fault.h): a refused mask is the pre-existing
  // degradation path — the logical place assignment stays in force (place
  // numbering, nested partitioning), only the OS pinning is skipped — so an
  // injected failure exercises exactly the non-Linux / cgroup-restricted
  // branch on any host.
  if (fault_should_fail(FaultSite::kAffinity)) return false;
#if defined(__linux__)
  const PlaceTable& table = PlaceTable::instance();
  if (place < 0 || place >= table.num_places()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const i32 p : table.place(place).procs) {
    if (p >= 0 && p < CPU_SETSIZE) {
      CPU_SET(p, &set);
      any = true;
    }
  }
  if (!any) return false;
  g_affinity_syscalls.fetch_add(1, std::memory_order_relaxed);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)place;
  g_affinity_syscalls.fetch_add(1, std::memory_order_relaxed);
  return false;
#endif
}

}  // namespace zomp::rt
