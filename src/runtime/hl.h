// High-level C++ API over the zomp runtime.
//
// This is the public face of the library for C++ consumers: examples, the
// hand-written "reference" NPB kernels, and downstream users. It plays the
// role `#pragma omp` plays for C in the paper — same engine underneath as the
// generated-code ABI, different surface.
//
// Usage sketch:
//   zomp::parallel([&] {
//     zomp::for_each(0, n, [&](int64_t i) { y[i] = a * x[i] + y[i]; });
//   });
//   double s = zomp::parallel_reduce<double>(0, n, 0.0, std::plus<>{},
//                                            [&](int64_t i) { return x[i] * x[i]; });
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "runtime/api.h"
#include "runtime/pool.h"
#include "runtime/sync.h"
#include "runtime/team.h"
#include "runtime/worksharing.h"

namespace zomp {

struct ParallelOptions {
  /// Team size request; 0 = default (ICV / OMP_NUM_THREADS).
  rt::i32 num_threads = 0;
  /// `if` clause: false serialises the region.
  bool if_clause = true;
  /// `proc_bind` clause; kUnset defers to OMP_PROC_BIND (places.h,
  /// DESIGN.md S1.8). With binding active each member is pinned to its
  /// place at region entry and spread subdivides the place partition, so
  /// nested teams land on disjoint slices.
  rt::BindKind proc_bind = rt::BindKind::kUnset;
};

struct ForOptions {
  rt::Schedule schedule{rt::ScheduleKind::kStatic, 0};
  /// Skip the barrier at the end of the loop.
  bool nowait = false;
};

/// Runs `body` once on every member of a forked team (`#pragma omp
/// parallel`). Region entry is the runtime's fast path: a repeat of the
/// previous team size recycles the master's hot team (pool.h), and the body
/// rides through rt::fork_body without a std::function wrapper, so a
/// capture-heavy closure costs no per-region allocation.
template <typename Body>
void parallel(Body&& body, ParallelOptions opts = {}) {
  rt::ForkOptions fork_opts;
  fork_opts.num_threads = opts.num_threads;
  fork_opts.if_clause = opts.if_clause;
  fork_opts.proc_bind = opts.proc_bind;
  rt::fork_body(std::forward<Body>(body), fork_opts);
}

/// Worksharing loop over [lo, hi) (`#pragma omp for`). Must be reached by
/// every member of the innermost team. `body` is invoked once per iteration.
template <typename Body>
void for_each(rt::i64 lo, rt::i64 hi, Body&& body, ForOptions opts = {}) {
  rt::ThreadState& ts = rt::current_thread();
  rt::Team& team = *ts.team;
  if (opts.schedule.kind == rt::ScheduleKind::kStatic) {
    // Fast path: pure bounds math, no shared dispatch state.
    const rt::StaticRange r =
        rt::static_distribute(lo, hi, 1, opts.schedule.chunk, ts.tid,
                              team.size());
    const rt::i64 span = r.hi - r.lo;
    for (rt::i64 block = r.lo; block < hi; block += r.stride) {
      const rt::i64 end = std::min(block + span, hi);
      for (rt::i64 i = block; i < end; ++i) body(i);
    }
  } else {
    // Dynamic/guided/runtime: shared-cursor dispatch. Each dispatch_next may
    // return a whole batch of chunks claimed with one atomic (worksharing.cpp),
    // so this loop touches shared state far less than once per chunk.
    team.dispatch_init(ts, opts.schedule, lo, hi, 1);
    rt::i64 chunk_lo = 0;
    rt::i64 chunk_hi = 0;
    while (team.dispatch_next(ts, &chunk_lo, &chunk_hi, nullptr)) {
      for (rt::i64 i = chunk_lo; i < chunk_hi; ++i) body(i);
    }
  }
  // A pending `cancel parallel` abandons the closing barrier (the hl API has
  // no cancel surface of its own, but the team may be shared with generated
  // code); the caller still reaches the region join, which re-synchronises.
  if (!opts.nowait) (void)team.barrier_wait(ts.tid);
}

/// Fused `#pragma omp parallel for`.
template <typename Body>
void parallel_for(rt::i64 lo, rt::i64 hi, Body&& body, ForOptions for_opts = {},
                  ParallelOptions par_opts = {}) {
  parallel([&] { for_each(lo, hi, body, for_opts); }, par_opts);
}

namespace detail {

/// Type-erases a C++ combine functor into the runtime's combine signature.
/// Each member passes its *own* functor as ctx, so stateful combiners are
/// fine: a combining member only ever invokes the functor it brought.
template <typename T, typename Combine>
rt::ReduceCombineFn reduce_thunk() {
  return [](void* ctx, void* lhs, const void* rhs) {
    Combine& c = *static_cast<Combine*>(ctx);
    T* a = static_cast<T*>(lhs);
    *a = c(*a, *static_cast<const T*>(rhs));
  };
}

}  // namespace detail

/// Tree-combines `value` across the innermost team and returns the combined
/// result on every member (an allreduce). Must be reached by all members,
/// like a barrier — and it *is* the construct's only synchronisation: one
/// rendezvous, no global lock (see runtime/reduce.h).
template <typename T, typename Combine>
T allreduce(T value, Combine&& combine) {
  static_assert(std::is_trivially_copyable_v<T>,
                "allreduce copies T through raw team slots");
  using C = std::remove_reference_t<Combine>;
  rt::ThreadState& ts = rt::current_thread();
  ts.team->reduce_combine(ts, &value, sizeof(T),
                          detail::reduce_thunk<T, C>(), &combine,
                          /*broadcast=*/true);
  return value;
}

/// Worksharing reduction inside an existing region (`#pragma omp for
/// reduction`): every member accumulates privately over its iterations, then
/// the team tree-combines the partials. Returns the combined value
/// (identical on all members). One barrier-equivalent total — the combine
/// rendezvous — where the seed's critical-section protocol needed a publish
/// barrier, a global lock and a final barrier.
template <typename T, typename Combine, typename Body>
T reduce_each(rt::i64 lo, rt::i64 hi, T identity, Combine&& combine,
              Body&& body, ForOptions opts = {}) {
  T local = identity;
  for_each(
      lo, hi, [&](rt::i64 i) { local = combine(local, body(i)); },
      ForOptions{opts.schedule, /*nowait=*/true});
  return allreduce(local, combine);
}

/// Fused `#pragma omp parallel for reduction(...)` over [lo, hi).
/// `body(i)` returns each iteration's contribution.
template <typename T, typename Combine, typename Body>
T parallel_reduce(rt::i64 lo, rt::i64 hi, T identity, Combine&& combine,
                  Body&& body, ForOptions for_opts = {},
                  ParallelOptions par_opts = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "parallel_reduce copies T through raw team slots");
  using C = std::remove_reference_t<Combine>;
  T result = identity;
  parallel(
      [&] {
        T local = identity;
        for_each(
            lo, hi, [&](rt::i64 i) { local = combine(local, body(i)); },
            ForOptions{for_opts.schedule, /*nowait=*/true});
        // Tree-combine the partials; the winner of the rendezvous is tid 0 —
        // the forking thread itself — so it folds into `result` with no lock
        // and the region join publishes the write.
        rt::ThreadState& ts = rt::current_thread();
        if (ts.team->reduce_combine(ts, &local, sizeof(T),
                                    detail::reduce_thunk<T, C>(), &combine,
                                    /*broadcast=*/false)) {
          result = combine(result, local);
        }
      },
      par_opts);
  return result;
}

/// Explicit barrier for the innermost team (`#pragma omp barrier`). Returns
/// true when the barrier was abandoned because `cancel parallel` is pending
/// for the team (barriers are cancellation points) — the caller should run
/// to the end of the region; false in every normal episode.
inline bool barrier() {
  rt::ThreadState& ts = rt::current_thread();
  return ts.team->barrier_wait(ts.tid);
}

/// Runs `body` under the named critical section (`#pragma omp critical`).
template <typename Body>
void critical(Body&& body, const std::string& name = "") {
  rt::critical_enter(name);
  body();
  rt::critical_exit(name);
}

/// Runs `body` on exactly one member; `barrier_after` mirrors the implicit
/// barrier of a non-nowait single.
template <typename Body>
void single(Body&& body, bool barrier_after = true) {
  rt::ThreadState& ts = rt::current_thread();
  if (ts.team->single_begin(ts)) body();
  if (barrier_after) (void)ts.team->barrier_wait(ts.tid);
}

/// Runs `body` on the team master only (`#pragma omp master`; no barrier).
template <typename Body>
void master(Body&& body) {
  if (rt::current_thread().tid == 0) body();
}

/// Defers `body` as an explicit task (`#pragma omp task`).
inline void task(std::function<void()> body) {
  rt::ThreadState& ts = rt::current_thread();
  ts.team->task_create(ts, std::move(body));
}

/// Depend-clause helpers for task_depend: `dep_in(&x)` / `dep_out(&x)` /
/// `dep_inout(&x)` mirror `depend(in: x)` and friends. Addresses are
/// compared by identity (the OpenMP list-item model).
inline rt::DepSpec dep_in(const void* addr) {
  return rt::DepSpec{const_cast<void*>(addr), rt::DepKind::kIn};
}
inline rt::DepSpec dep_out(const void* addr) {
  return rt::DepSpec{const_cast<void*>(addr), rt::DepKind::kOut};
}
inline rt::DepSpec dep_inout(const void* addr) {
  return rt::DepSpec{const_cast<void*>(addr), rt::DepKind::kInout};
}

/// Extra task clauses for task_depend.
struct TaskOptions {
  bool if_clause = true;  ///< false: undeferred (runs after deps, inline)
  bool final_clause = false;
  rt::i32 priority = 0;
};

/// `#pragma omp task depend(...)`: defers `body` ordered after the sibling
/// tasks it depends on — last-writer edges for in, writer+reader edges for
/// out/inout (see runtime/task.h). Rides the same Team entry point as the
/// generated-code ABI (zomp_task_with_deps).
inline void task_depend(std::initializer_list<rt::DepSpec> deps,
                        std::function<void()> body, TaskOptions opts = {}) {
  rt::ThreadState& ts = rt::current_thread();
  rt::TaskOpts topts;
  topts.deps = deps.begin();
  topts.ndeps = static_cast<rt::i32>(deps.size());
  topts.deferred = opts.if_clause;
  topts.final = opts.final_clause;
  topts.priority = opts.priority;
  ts.team->task_create_ex(ts, std::move(body), topts);
}

/// `#pragma omp taskloop`: distributes [lo, hi) over chunk tasks inside an
/// implicit taskgroup; `body(i)` runs once per iteration. Same entry point
/// as the generated-code ABI (zomp_taskloop). Unlike for_each this is a
/// tasking construct: any single member may call it (typically inside
/// `single`), and idle members pick chunks up by stealing.
struct TaskloopOptions {
  rt::i64 grainsize = 0;  ///< iterations per chunk (0 = absent)
  rt::i64 num_tasks = 0;  ///< chunk count (0 = absent); wins over grainsize
};

template <typename Body>
void taskloop(rt::i64 lo, rt::i64 hi, Body&& body, TaskloopOptions opts = {}) {
  rt::ThreadState& ts = rt::current_thread();
  // Capturing `body` by reference is safe: taskloop's implicit taskgroup
  // blocks until every chunk task completed.
  ts.team->taskloop(ts, lo, hi, opts.grainsize, opts.num_tasks,
                    [&body](rt::i64 chunk_lo, rt::i64 chunk_hi) {
                      for (rt::i64 i = chunk_lo; i < chunk_hi; ++i) body(i);
                    });
}

/// Waits for the current task's children (`#pragma omp taskwait`).
inline void taskwait() {
  rt::ThreadState& ts = rt::current_thread();
  ts.team->taskwait(ts);
}

/// Runs `body` inside a taskgroup; returns when every task created in the
/// group (and their descendants) completed.
template <typename Body>
void taskgroup(Body&& body) {
  rt::ThreadState& ts = rt::current_thread();
  rt::TaskGroup group;
  ts.team->taskgroup_begin(ts, group);
  body();
  ts.team->taskgroup_end(ts, group);
}

}  // namespace zomp
