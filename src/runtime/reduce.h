// Team reduction subsystem (DESIGN.md S1.2).
//
// Replaces the global `__zomp_reduction` named critical the seed lowered
// every reduction through: combining under one process-wide lock serialised
// *all* teams, and the construct needed two extra barriers just to publish
// the shared cell. Here each Team owns a ReductionTree — one cache-line
// slot per member — and a reduction is a single rendezvous:
//
//  * every member deposits its private partial into its own padded slot
//    (one release store, no shared-line ping-pong on the way in),
//  * partner slots combine pairwise per round, log2(nthreads) rounds deep
//    (member tid merges partners tid+1, tid+2, ... tid+2^(r-1) for
//    r = ctz(tid) rounds, then publishes its subtree for its consumer),
//  * the winner (tid 0) ends up holding the team-combined value and is the
//    one member told to fold it into the user's shared target — no lock at
//    all on the combine path.
//
// The rendezvous doubles as the construct's synchronisation: no member can
// observe a combined value before every member deposited, so the enclosing
// construct needs exactly one barrier-equivalent per reduction (the join
// barrier for `parallel ... reduction`, this rendezvous for the high-level
// allreduce), down from three in the seed protocol.
//
// Values larger than a slot's inline capacity take a per-team fallback lock
// (still not global): members serialise their combines into the winner's
// buffer. Construct instances are identified by a per-member sequence number
// (same team-wide identity argument as DispatchSlot matching); a `done_seq`
// epoch gates slot reuse so back-to-back `nowait` reductions cannot overwrite
// a slot the previous combine is still reading.
//
// Multi-variable constructs pack into ONE rendezvous: a directive with k
// reduction clauses (`reduction(+: a) reduction(max: b) ...`) costs one
// combine, not k. The directive engine marks the construct's combine run
// (Stmt::red_pack) and both backends deposit a single struct payload whose
// fields are the k partials; the combine function applies each variable's
// operator to its own field. Payloads beyond kSlotBytes transparently take
// the fallback-lock path — still one rendezvous, never k. The payload is
// opaque to the tree: `size` and `fn` are simply those of the struct.
//
// The tree belongs to exactly one Team and survives hot-team recycling
// (pool.h) without any reset: instance sequence numbers are monotonic
// *across regions* — Team::rearm carries every member's red_seq forward —
// so tokens, done_seq and the broadcast parity simply keep counting. A
// token from a previous region can never satisfy a later instance's wait
// because later instances always carry strictly larger sequence numbers.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/common.h"
#include "runtime/lock.h"

namespace zomp::rt {

/// Combines `*rhs` into `*lhs`; `ctx` carries caller state (the high-level
/// API passes the C++ functor, the C ABI passes the generated combine fn).
using ReduceCombineFn = void (*)(void* ctx, void* lhs, const void* rhs);

/// One reduction combining tree for a fixed-size team. Reusable across any
/// number of construct instances; instances are ordered by `seq`.
class ReductionTree {
 public:
  /// Inline payload capacity of one slot: token + data fill exactly one
  /// cache line. Larger values use the per-team lock fallback.
  static constexpr std::size_t kSlotBytes = kCacheLine - sizeof(std::atomic<u64>);

  explicit ReductionTree(i32 n);

  ReductionTree(const ReductionTree&) = delete;
  ReductionTree& operator=(const ReductionTree&) = delete;

  /// Rendezvous for construct instance `seq` (strictly increasing, starting
  /// at 1; every member must pass the same value for the same construct).
  /// Combines every member's `data` (size bytes, trivially copyable) with
  /// `fn`. Returns true on exactly one member — the *winner*, whose `data`
  /// then holds the team-combined value and who is responsible for folding
  /// it into the construct's shared target. With `broadcast`, every member's
  /// `data` holds the combined value on return (allreduce).
  bool combine(i32 tid, u64 seq, void* data, std::size_t size,
               ReduceCombineFn fn, void* ctx, bool broadcast);

  i32 size() const { return n_; }

 private:
  /// Tokens encode (construct seq, tree round): a member that has combined
  /// its whole subtree of height r publishes seq * kTokenStride + r on its
  /// slot. 64 rounds cover any i32-sized team with room to spare.
  static constexpr u64 kTokenStride = 64;

  struct alignas(kCacheLine) Slot {
    std::atomic<u64> token{0};
    unsigned char data[kSlotBytes];
  };
  static_assert(sizeof(Slot) == kCacheLine, "slot must fill one cache line");

  struct alignas(kCacheLine) BroadcastCell {
    unsigned char data[kSlotBytes];
  };

  bool combine_tree(i32 tid, u64 seq, void* data, std::size_t size,
                    ReduceCombineFn fn, void* ctx, bool broadcast);
  bool combine_fallback(i32 tid, u64 seq, void* data, std::size_t size,
                        ReduceCombineFn fn, void* ctx, bool broadcast);

  const i32 n_;
  std::vector<Slot> slots_;

  /// Result area for allreduce, double-buffered by seq parity: readers of
  /// instance k finish before any member deposits for k+1, which the winner
  /// of k+1 must observe before it can write buffer (k+1)&1 == (k-1)&1.
  BroadcastCell broadcast_[2];
  alignas(kCacheLine) std::atomic<u64> broadcast_seq_{0};

  /// Highest fully-combined instance; deposits for seq wait for seq-1.
  alignas(kCacheLine) std::atomic<u64> done_seq_{0};

  // -- Oversized-value fallback (per-team lock, winner's buffer) ------------
  alignas(kCacheLine) std::atomic<void*> fb_acc_{nullptr};
  std::atomic<u64> fb_ready_seq_{0};
  std::atomic<u64> fb_result_seq_{0};
  alignas(kCacheLine) std::atomic<i32> fb_contributed_{0};
  alignas(kCacheLine) std::atomic<i32> fb_acked_{0};
  Lock fb_lock_;
};

}  // namespace zomp::rt
