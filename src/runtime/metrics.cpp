#include "runtime/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "runtime/env.h"
#include "runtime/fault.h"

namespace zomp::rt {
namespace metrics_detail {

std::atomic<u32> g_enabled{0};
std::atomic<u64> g_counters[static_cast<i32>(Metric::kCount)] = {};

}  // namespace metrics_detail

namespace {

std::atomic<u64> g_shard_claims[kMetricsMaxShards] = {};
std::atomic<bool> g_atexit_registered{false};

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kParallelRegions: return "parallel_regions";
    case Metric::kHotTeamHits: return "hot_team_hits";
    case Metric::kHotTeamRebuilds: return "hot_team_rebuilds";
    case Metric::kBarrierEpisodes: return "barrier_episodes";
    case Metric::kBarrierWaitNs: return "barrier_wait_ns";
    case Metric::kDispatchClaims: return "dispatch_claims";
    case Metric::kTasksExecuted: return "tasks_executed";
    case Metric::kTasksStolen: return "tasks_stolen";
    case Metric::kMailboxPulls: return "tasks_mailbox_pulled";
    case Metric::kStealAttempts: return "steal_attempts";
    case Metric::kStealLost: return "steal_lost";
    case Metric::kCancellations: return "cancellations_observed";
    case Metric::kCount: break;
  }
  return "unknown";
}

void atexit_report() {
  std::fputs(metrics_report().c_str(), stderr);
}

}  // namespace

void metrics_note_shard_claim(i32 shard) noexcept {
  if (!metrics_enabled()) return;
  metrics_detail::g_counters[static_cast<i32>(Metric::kDispatchClaims)]
      .fetch_add(1, std::memory_order_relaxed);
  if (shard < 0) shard = 0;
  if (shard >= kMetricsMaxShards) shard = kMetricsMaxShards - 1;
  g_shard_claims[shard].fetch_add(1, std::memory_order_relaxed);
}

void metrics_init_from_env() {
  // env_bool warns through warn_malformed_env on unparseable values and
  // falls back to the default (off), so a bad ZOMP_METRICS degrades to the
  // zero-cost path rather than failing startup.
  if (!env_bool("METRICS").value_or(false)) return;
  metrics_detail::g_enabled.store(1, std::memory_order_relaxed);
  if (!g_atexit_registered.exchange(true)) std::atexit(atexit_report);
}

u64 metrics_value(Metric m) noexcept {
  if (m < Metric::kParallelRegions || m >= Metric::kCount) return 0;
  return metrics_detail::g_counters[static_cast<i32>(m)].load(
      std::memory_order_relaxed);
}

u64 metrics_shard_claims(i32 shard) noexcept {
  if (shard < 0 || shard >= kMetricsMaxShards) return 0;
  return g_shard_claims[shard].load(std::memory_order_relaxed);
}

std::string metrics_report() {
  std::string out = "ZOMP METRICS REPORT BEGIN\n";
  char buf[128];
  for (i32 i = 0; i < static_cast<i32>(Metric::kCount); ++i) {
    const Metric m = static_cast<Metric>(i);
    std::snprintf(buf, sizeof(buf), "  %s = '%" PRIu64 "'\n", metric_name(m),
                  metrics_value(m));
    out += buf;
  }
  for (i32 s = 0; s < kMetricsMaxShards; ++s) {
    const u64 v = metrics_shard_claims(s);
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  dispatch_claims_shard[%d] = '%" PRIu64 "'\n", s, v);
    out += buf;
  }
  static const char* kSiteNames[kNumFaultSites] = {"spawn", "alloc",
                                                   "affinity"};
  for (i32 s = 0; s < kNumFaultSites; ++s) {
    std::snprintf(buf, sizeof(buf),
                  "  faults_injected[%s] = '%" PRId64 "'\n", kSiteNames[s],
                  fault_injected_count(static_cast<FaultSite>(s)));
    out += buf;
  }
  out += "ZOMP METRICS REPORT END\n";
  return out;
}

void metrics_set_enabled_for_test(bool on) {
  metrics_detail::g_enabled.store(on ? 1u : 0u, std::memory_order_relaxed);
}

void metrics_reset_for_test() {
  for (auto& c : metrics_detail::g_counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& c : g_shard_claims) c.store(0, std::memory_order_relaxed);
}

}  // namespace zomp::rt
