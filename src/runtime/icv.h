// Internal Control Variables (ICVs), OpenMP 5.2 §2.4.
//
// Scoping follows the spec: `nthreads-var`, `run-sched-var`, `dyn-var` and
// `max-active-levels-var` are per-data-environment (inherited by the implicit
// tasks of a new team); `num_threads` clauses override via a one-shot push.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "runtime/common.h"
#include "runtime/places.h"
#include "runtime/schedule.h"

namespace zomp::rt {

/// Per-data-environment control variables, inherited across fork.
struct Icv {
  /// Default team size requested for the next parallel region
  /// (`nthreads-var`). 0 means "use the global default".
  i32 nthreads = 0;
  /// Schedule applied when a loop says `schedule(runtime)` (`run-sched-var`).
  Schedule run_sched{ScheduleKind::kStatic, 0};
  /// Whether the implementation may deliver fewer threads than requested
  /// (`dyn-var`). We always *may* (resource limits), but when false we only
  /// shrink a team if the pool genuinely cannot grow.
  bool dynamic = false;
  /// Maximum number of nested active parallel levels
  /// (`max-active-levels-var`).
  i32 max_active_levels = 1;

  // -- Affinity (DESIGN.md S1.8) --------------------------------------------
  /// `bind-var`, list form: index into the OMP_PROC_BIND per-nesting-level
  /// list that the *next* fork from this environment consumes. Each fork
  /// hands children index + 1; GlobalIcv::bind_at clamps past the list end
  /// (the spec's "last element applies to deeper levels").
  i32 bind_index = 0;
  /// `place-partition-var`: this environment's slice of the process place
  /// table, [part_lo, part_lo + part_len) as place indices. part_len == 0
  /// means "the whole table" (resolved lazily so ICV construction needs no
  /// table lookup); spread forks narrow it per member so nested teams land
  /// on disjoint slices.
  i32 part_lo = 0;
  i32 part_len = 0;
};

/// Process-wide defaults, initialised once from the environment
/// (OMP_NUM_THREADS, OMP_SCHEDULE, OMP_DYNAMIC, OMP_MAX_ACTIVE_LEVELS,
/// OMP_NESTED) with ZOMP_* overrides. See env.h.
class GlobalIcv {
 public:
  static GlobalIcv& instance();

  /// Initial ICV set for the main thread and for detached helper threads.
  Icv initial() const;

  /// Hard cap on total runtime-owned threads (OMP_THREAD_LIMIT).
  i32 thread_limit() const { return thread_limit_; }

  /// Default team size when nothing requests otherwise.
  i32 default_team_size() const { return default_team_size_; }

  // Setters back the omp_set_* style API; they affect regions forked after
  // the call, matching the spec's "most recent enclosing" wording.
  void set_default_team_size(i32 n);
  void set_dynamic(bool dyn) { dynamic_default_ = dyn; }
  bool dynamic_default() const { return dynamic_default_; }
  void set_max_active_levels(i32 levels);
  i32 max_active_levels_default() const { return max_levels_default_; }
  Schedule run_sched_default() const { return run_sched_default_; }
  void set_run_sched_default(Schedule s) { run_sched_default_ = s; }

  /// wait-policy-var (OMP_WAIT_POLICY): process-wide, read by every Backoff
  /// at construction. Atomic so a test / tuning call can flip it safely from
  /// any thread; waits already in progress keep their snapshotted spin
  /// budget and only *future* waits observe the new policy.
  WaitPolicy wait_policy() const {
    return wait_policy_.load(std::memory_order_relaxed);
  }
  void set_wait_policy(WaitPolicy policy) {
    wait_policy_.store(policy, std::memory_order_relaxed);
  }

  /// proc-bind-var (OMP_PROC_BIND): the per-nesting-level bind list. `index`
  /// past the end clamps to the last element; an empty list (variable unset
  /// or `false`) answers kFalse, which keeps binding entirely off unless a
  /// proc_bind clause asks for it.
  BindKind bind_at(i32 index) const;
  bool has_proc_bind() const { return !proc_bind_list_.empty(); }
  /// Replaces the list (tests; mirrors set_wait_policy's region-boundary
  /// visibility — only forks after the call observe it).
  void set_proc_bind_list(std::vector<BindKind> list);

  /// OMP_DISPLAY_AFFINITY: one binding report line per thread whenever its
  /// placement changes (api.h display_affinity prints on demand).
  bool display_affinity() const { return display_affinity_; }
  void set_display_affinity(bool on) { display_affinity_ = on; }

  /// cancel-var (OMP_CANCELLATION, omp_get_cancellation): process-wide and,
  /// per spec, immutable after startup — there is no omp_set_cancellation.
  /// The setter exists for tests only (the suite runs in one process and
  /// cannot re-read the environment); it is atomic so flipping it mid-suite
  /// is TSan-clean. Teams consult it at every cancellation check, so a
  /// flipped value applies from the next region on.
  bool cancellation() const {
    return cancellation_.load(std::memory_order_relaxed);
  }
  void set_cancellation(bool on) {
    cancellation_.store(on, std::memory_order_relaxed);
  }

  /// max-task-priority-var (OMP_MAX_TASK_PRIORITY /
  /// omp_get_max_task_priority): the highest `priority` clause value the
  /// program may use; task creation clamps into [0, max] (team.cpp
  /// new_task). Defaults to 0 — priorities are inert unless the environment
  /// opts in, per spec. The setter exists for tests (single process, no
  /// environment re-read); fixed after init otherwise.
  i32 max_task_priority() const { return max_task_priority_; }
  void set_max_task_priority(i32 p) { max_task_priority_ = p < 0 ? 0 : p; }

  /// OMP_DISPLAY_ENV=true|verbose: prints the ICV table to stderr at runtime
  /// init, libomp's format (the standard first diagnostic for misconfigured
  /// deployments). `verbose` additionally prints the zomp-specific
  /// variables. Callable on demand for tests.
  void display_env(bool verbose) const;

  /// affinity-format-var (OMP_AFFINITY_FORMAT / omp_set_affinity_format):
  /// the template every binding report expands (team.h affinity_report).
  /// Field escapes: %n thread num, %N team size, %L nesting level,
  /// %i native thread id, %P process id, %H hostname, %A OS proc list of
  /// the bound place, %p place number (zomp extension), %% literal percent;
  /// OpenMP long names (%{thread_num} etc.) map to the same fields.
  /// Mutex-protected: the spec allows any thread to set it while others
  /// capture reports.
  std::string affinity_format() const;
  void set_affinity_format(std::string fmt);

 private:
  GlobalIcv();

  i32 default_team_size_ = 1;
  i32 thread_limit_ = 0;
  bool dynamic_default_ = false;
  i32 max_levels_default_ = 1;
  Schedule run_sched_default_{ScheduleKind::kStatic, 0};
  std::atomic<WaitPolicy> wait_policy_{WaitPolicy::kActive};
  std::vector<BindKind> proc_bind_list_;
  i32 max_task_priority_ = 0;
  bool display_affinity_ = false;
  std::atomic<bool> cancellation_{false};
  mutable std::mutex affinity_format_mu_;
  std::string affinity_format_;
};

}  // namespace zomp::rt
