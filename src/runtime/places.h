// OMP_PLACES / OMP_PROC_BIND: the place model of the affinity subsystem
// (DESIGN.md S1.8).
//
// A *place* is a set of OS processors a thread may be bound to (one SMT
// thread, one core's sibling set, one socket, or an explicit list). The
// process-wide PlaceTable is parsed once from OMP_PLACES against the
// discovered topology (topology.h); the per-fork placement math
// (`plan_binding`) is pure index arithmetic over that table, so teams,
// tests, and the hot-team cache key all reason about places as small
// integers. Only `apply_place_mask` touches the OS, and a refusal
// (unsupported platform, mask outside the cgroup limit) degrades binding to
// a logical no-op: place numbers and partitions stay observable, the
// scheduler just keeps its freedom.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runtime/common.h"
#include "runtime/topology.h"

namespace zomp::rt {

/// proc-bind policy (OpenMP 5.2 §6.4 / §10.1.2). Values match the OpenMP
/// omp_proc_bind_t ABI constants; kPrimary doubles as the deprecated
/// `master` spelling. kUnset is the "no clause" sentinel used by fork
/// plumbing, never stored in an ICV.
enum class BindKind : i32 {
  kUnset = -1,
  kFalse = 0,
  kTrue = 1,   ///< binding on, policy implementation-defined: we use close
  kPrimary = 2,
  kClose = 3,
  kSpread = 4,
};

const char* bind_kind_name(BindKind kind);

/// Parses one proc_bind spelling (primary|master|close|spread|true|false).
std::optional<BindKind> parse_bind_kind(const std::string& text);

/// Parses an OMP_PROC_BIND value: a comma-separated per-nesting-level list.
/// nullopt on malformed input. `false` disables binding for every level.
std::optional<std::vector<BindKind>> parse_proc_bind(const std::string& text);

/// One place: OS processor ids, ascending.
struct Place {
  std::vector<i32> procs;
};

/// Result of parsing an OMP_PLACES value. On failure `error` names the
/// offending construct (places grammar diagnostics ride through the usual
/// malformed-environment warning, not a hard error).
struct PlacesParse {
  bool ok = false;
  std::vector<Place> places;
  std::string error;
};

/// Full OMP_PLACES grammar against a given topology:
///   threads | cores | sockets          abstract names
///   cores(4)                           first-4 restriction
///   {0,1},{2:4},{0:8:2}                explicit places; {lb:len[:stride]}
/// Explicit processors outside the topology's usable set are trimmed;
/// places left empty by trimming are dropped (the `taskset` fallback —
/// a fully-restricted process ends up with however many places survive).
/// Negative or zero length/stride are diagnosed, as are unbalanced braces.
PlacesParse parse_places(const std::string& text, const Topology& topo);

/// Process-wide place table: OMP_PLACES parsed against Topology::instance(),
/// defaulting to `cores`. A malformed spec warns and falls back to the
/// default (matching the env.h convention for other OMP_* variables).
class PlaceTable {
 public:
  static PlaceTable& instance();

  i32 num_places() const { return static_cast<i32>(places_.size()); }
  const Place& place(i32 index) const {
    return places_[static_cast<std::size_t>(index)];
  }
  bool available() const { return !places_.empty(); }

  /// Bumped whenever the table is replaced (test hook below); mixed into
  /// binding signatures so cached plans die with the table they indexed.
  u32 generation() const { return generation_; }

  /// Replaces the table (tests). Procs outside the usable topology are kept
  /// as-is: tests use this to exercise the setaffinity-refusal path too.
  void set_for_test(std::vector<Place> places);

 private:
  PlaceTable();

  std::vector<Place> places_;
  u32 generation_ = 1;
};

/// Placement of one team member: its assigned place and its slice of the
/// place partition (global place-table indices, [part_lo, part_lo+part_len)).
struct MemberBinding {
  i32 place = -1;
  i32 part_lo = 0;
  i32 part_len = 0;
};

/// A team's full placement, computed once at fork. `sig` keys the hot-team
/// cache: two forks with equal signatures produce identical member bindings,
/// so a re-armed team skips both the recompute and the per-worker
/// setaffinity. Inactive plans (bind false, no places) have sig == 0.
struct BindingPlan {
  bool active = false;
  u64 sig = 0;
  std::vector<MemberBinding> members;
};

/// Signature of the placement a fork with these inputs would compute —
/// cheap (no member vector), used for the hot-team cache probe before
/// deciding whether a full plan is needed.
u64 binding_sig(BindKind bind, i32 part_lo, i32 part_len, i32 master_place,
                i32 size);

/// Pure placement math (OpenMP 5.2 §10.1.3, simplified — see DESIGN.md S1.8
/// for the deviations): partitions the places [part_lo, part_lo+part_len)
/// among `size` members.
///   primary: every member on the master's place, partition unchanged.
///   close/true: member i offset from the master's place (consecutive while
///     the team fits, grouped by floor(i*K/T) beyond), partition unchanged.
///   spread: the partition is subdivided into `size` disjoint contiguous
///     subpartitions (single shared places once size > K), numbered starting
///     with the subpartition that contains the master's place (§10.1.3's
///     rotation); member 0 keeps the master's exact place, member i sits on
///     the first place of subpartition (r+i) mod size, and each member
///     *inherits its subpartition* as its own place-partition-var, so nested
///     teams spread over disjoint slices.
/// `master_place` outside the partition snaps to part_lo. Returns an
/// inactive plan for kFalse/kUnset or an empty place table.
BindingPlan plan_binding(BindKind bind, i32 part_lo, i32 part_len,
                         i32 master_place, i32 size);

/// Binds the calling thread to `place`'s processors. False when the platform
/// has no affinity call or refuses the mask — the caller treats that as
/// "binding unavailable", never as an error.
bool apply_place_mask(i32 place);

/// Number of sched_setaffinity calls actually attempted so far (telemetry:
/// tests assert a hot-team re-arm with unchanged placement does not grow
/// this — the bound_place cache short-circuits before the syscall).
i64 affinity_syscall_count();

}  // namespace zomp::rt
