// Runtime fault injection & the fatal-error reporter (DESIGN.md S10).
//
// Real deployments lose threads, allocations, and affinity syscalls; the
// happy-path runtime the paper describes has no story for any of them. This
// layer gives the three runtime failure points a deterministic injection
// hook so tests can force each one and prove the degradation policy:
//
//   site       | injected failure            | degradation policy
//   -----------+-----------------------------+---------------------------------
//   kSpawn     | worker thread creation      | short-acquire: the team shrinks,
//              |                             | every sizing (barrier, reduction
//              |                             | tree, dispatch shards) follows
//   kAlloc     | task / DepNode allocation   | undeferred inline execution
//   kAffinity  | sched_setaffinity           | logical binding only (place_num
//              |                             | stays, OS mask unchanged)
//
// Injection is seeded from ZOMP_FAULT_INJECT="spawn:p,alloc:p,affinity:p"
// (probabilities in [0,1]) and is DETERMINISTIC: probability p becomes a
// per-site period of round(1/p) calls, and the period'th call at each site
// fails. Tests get byte-for-byte reproducible failure schedules without
// seeding an RNG; p=1 fails every call, p=0 never fails.
#pragma once

#include <string>

#include "runtime/common.h"

namespace zomp::rt {

enum class FaultSite : i32 {
  kSpawn = 0,
  kAlloc = 1,
  kAffinity = 2,
};
inline constexpr i32 kNumFaultSites = 3;

/// True when this call at `site` should fail. The disabled fast path is one
/// relaxed atomic load (no counter traffic), so leaving the hooks compiled
/// into release builds costs nothing measurable.
bool fault_should_fail(FaultSite site) noexcept;

/// Parses a "spawn:p,alloc:p,affinity:p" spec (sites optional, any order)
/// into per-site probabilities. Returns false (leaving `out` untouched) on
/// malformed input. Exposed for the env-parser table test.
bool parse_fault_spec(const std::string& text, double out[kNumFaultSites]);

/// Replaces the active fault configuration (tests; also the env seeding
/// path). Resets every per-site counter so schedules are reproducible.
void fault_configure(const double probs[kNumFaultSites]);

/// Disables injection and clears counters.
void fault_reset();

/// Number of failures injected at `site` since the last configure/reset.
i64 fault_injected_count(FaultSite site) noexcept;

}  // namespace zomp::rt
