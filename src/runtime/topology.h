// Hardware topology discovery for the affinity subsystem (DESIGN.md S1.8).
//
// The topology is the ground truth the place machinery (places.h) builds on:
// which OS processors this process may run on, and how they group into SMT
// siblings, cores, and sockets. Discovery intersects the Linux sysfs
// enumeration with the process scheduling mask (`sched_getaffinity`), so a
// `taskset`-restricted process sees only its slice of the machine — the
// oversubscription census (common.h) and `omp_get_num_procs` both key off
// that usable count, not `hardware_concurrency`. When sysfs is absent
// (non-Linux, containers without /sys) the topology degrades to a flat model:
// every usable processor is its own single-thread core on one socket.
#pragma once

#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

/// One usable OS processor, located in the core/socket hierarchy. Ids are
/// dense per-topology renumberings (socket 0..S-1, core 0..C-1 across the
/// whole machine, smt 0..k-1 within the core); `os_proc` is what the kernel
/// scheduling calls take.
struct ProcInfo {
  i32 os_proc = 0;
  i32 core = 0;
  i32 socket = 0;
  i32 smt = 0;
};

/// Immutable processor topology. `instance()` discovers once per process;
/// the static builders exist so tests can exercise placement math on
/// synthetic machines without root or a particular host shape.
class Topology {
 public:
  /// Process-wide topology, discovered on first use.
  static const Topology& instance();

  /// sysfs + affinity-mask discovery (what instance() runs).
  static Topology discover();

  /// Flat fallback: `nprocs` single-thread cores on one socket.
  static Topology flat(i32 nprocs);

  /// Flat topology over an explicit OS-processor set (restricted masks).
  static Topology flat_over(std::vector<i32> os_procs);

  /// Synthetic SMT machine for tests: `sockets` x `cores_per_socket` x
  /// `smt_per_core`, OS procs numbered core-major.
  static Topology synthetic(i32 sockets, i32 cores_per_socket,
                            i32 smt_per_core);

  /// Usable processors, sorted by (socket, core, smt).
  const std::vector<ProcInfo>& procs() const { return procs_; }
  i32 num_procs() const { return static_cast<i32>(procs_.size()); }
  i32 num_cores() const { return num_cores_; }
  i32 num_sockets() const { return num_sockets_; }

  /// True when sysfs was unusable and the flat model is in effect.
  bool flat_fallback() const { return flat_; }

  /// True if `os_proc` is in the usable set.
  bool usable(i32 os_proc) const;

  /// Locates `os_proc` in the hierarchy; nullptr when it is not usable.
  /// The locality tiers of the scheduler (same core < same socket <
  /// cross-socket) key off the returned dense core/socket ids.
  const ProcInfo* find_proc(i32 os_proc) const;

 private:
  Topology() = default;
  static Topology from_raw(std::vector<ProcInfo> raw, bool flat);

  std::vector<ProcInfo> procs_;
  i32 num_cores_ = 0;
  i32 num_sockets_ = 0;
  bool flat_ = true;
};

/// OS processor ids this process may be scheduled on (`sched_getaffinity`),
/// sorted ascending. Empty when the platform offers no affinity call — the
/// caller falls back to `hardware_concurrency` numbering.
std::vector<i32> process_affinity_mask();

/// The topology locality-aware scheduling decisions read (steal-victim
/// ordering, DESIGN.md S1.9). Defaults to Topology::instance(); tests and
/// benches install a synthetic machine so the victim-order math is
/// exercisable on a 1-core CI container. Distinct from instance() on
/// purpose: the place table and the OS binding path keep using the real
/// machine even while a synthetic override is active.
const Topology& scheduling_topology();

/// Installs (or, with nullopt semantics via clear, removes) the synthetic
/// scheduling topology. Call only while no parallel region is running.
void set_scheduling_topology_for_test(Topology topo);
void clear_scheduling_topology_for_test();

}  // namespace zomp::rt
