// Team barriers.
//
// Two algorithms behind one interface so the micro_runtime bench can compare
// them (ablation A3 in DESIGN.md):
//  * CentralBarrier — sense-reversing centralized barrier. One atomic counter
//    and a broadcast flag; O(n) contention on one line, trivially correct.
//  * TreeBarrier    — arity-4 combining tree: arrive up the tree, release
//    down it. O(log n) critical path, far less contention on wide teams.
//
// Both wait with the exponential-backoff spin-then-yield policy (Backoff in
// common.h), governed by the OMP_WAIT_POLICY ICV: active waiters spin an
// exponentially growing budget before yielding, passive waiters yield at
// once — so oversubscribed test runs stay fast either way.
//
// WaitGate is the condvar-park annex for the runtime's epoch-style waits
// (today: the team join barrier, team.cpp). It packages the PR 3 doorbell
// park handshake — seq_cst parked flag against seq_cst state publication,
// with the empty-critical-section notify — so a waiter that has burned its
// spin/yield grace can leave the run queue entirely instead of yielding
// forever through a long serial phase.
//
// PhaseSync is the cross-member phase rendezvous behind the zomp::algo
// primitives (DESIGN.md S11): one epoch-tagged slot per member, each carrying
// an optional cache-line payload, lets multi-phase team algorithms (the
// decoupled scan, radix-sort pass pipeline) wait on *individual* members'
// progress instead of full barriers — member t of a scan only waits for
// member t-1's prefix, so later phases overlap across the team.
#pragma once

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

/// Lost-wakeup-free condvar park for spin loops that already have a cheap
/// wake predicate. Protocol (mirrors the worker doorbell, DESIGN.md S1.6):
///
///  * Waiter: after its spin/yield grace expires, calls park(pred). The gate
///    bumps `parked_` with a seq_cst RMW, then re-checks `pred` under the
///    mutex before sleeping.
///  * Waker: performs the store that makes `pred` true with seq_cst order,
///    then calls wake_all(). The seq_cst load of `parked_` forms the classic
///    store-load fence against the waiter's seq_cst RMW: if the waker reads
///    parked_ == 0, the waiter's increment — and therefore its in-mutex
///    re-check of `pred` — comes later in the seq_cst total order and must
///    observe the state change; otherwise the waker takes the (empty) mutex
///    critical section and notifies, which cannot slip between the waiter's
///    re-check and its sleep.
///
/// `pred` must read the gating state with seq_cst loads for the total-order
/// argument above to hold.
class WaitGate {
 public:
  template <typename Pred>
  void park(Pred&& pred) {
    parked_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return pred(); });
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Cheap when nobody parked: one seq_cst load, no lock.
  void wake_all() {
    if (parked_.load(std::memory_order_seq_cst) == 0) return;
    // Empty critical section: orders the notify after any parker is actually
    // inside cv_.wait (it holds the mutex until it sleeps).
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

 private:
  alignas(kCacheLine) std::atomic<i32> parked_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Cross-member phase synchronisation for multi-phase team algorithms
/// (zomp::algo, DESIGN.md S11). One cache-line slot per member holds an
/// epoch token (the highest phase the member has published) and an optional
/// inline payload published with it. Unlike a barrier, waiting is directed:
/// an awaiter names the member and phase it needs, so a pipeline of phases
/// overlaps — the decoupled scan's member t starts its scan-and-add pass as
/// soon as member t-1 published its prefix, while t+1.. are still reducing.
///
/// Phase numbering contract (the same identity argument as the
/// ReductionTree's construct sequence, reduce.h):
///  * Every member publishes phases with STRICTLY INCREASING tokens, and all
///    members pass through the same phase points in the same order, so a
///    phase number is a team-wide identity. The runtime drives the numbers
///    from ThreadState::phase_seq, which is monotonic *across regions* —
///    Team::rearm carries it forward exactly like red_seq — so a recycled
///    hot team needs no reset: stale tokens are always strictly smaller than
///    any later phase's number.
///  * await() returns once the member's token reaches *or passes* `seq`. A
///    slot's payload is only valid for its CURRENT token, so a phase whose
///    payload matters must not be republished until every awaiter is done
///    reading — algorithms guarantee this with a later payload-less phase or
///    the region's join barrier (the zomp::algo constructs fork their own
///    region per call, so the join fences slot reuse structurally).
///  * Abandonment mirrors the PR 8 cancellable barriers: waits poll an
///    optional cancel word and bail (returning false) when any `mask` bit is
///    set, so a `cancel parallel` can call a whole algorithm off without
///    stranding awaiters on members that will never publish again.
class PhaseSync {
 public:
  /// Inline payload capacity: token + data fill exactly one cache line.
  static constexpr std::size_t kSlotBytes =
      kCacheLine - sizeof(std::atomic<u64>);

  explicit PhaseSync(i32 n);

  PhaseSync(const PhaseSync&) = delete;
  PhaseSync& operator=(const PhaseSync&) = delete;

  /// Publishes `member`'s arrival at phase `seq` (> the member's previous
  /// token), with `size` bytes of payload (size <= kSlotBytes; 0 = none).
  /// The payload write is ordered before the token's release store, so any
  /// awaiter that observed the token may read the payload.
  void publish(i32 member, u64 seq, const void* data = nullptr,
               std::size_t size = 0);

  /// Waits until `member` has published phase >= `seq`, then copies `size`
  /// bytes of its slot payload into `out` (non-null only for payload
  /// phases). Returns false when the wait was abandoned: `cancel` non-null
  /// and `(cancel->load() & mask)` became nonzero — the payload is NOT
  /// copied and the caller must run to the construct end.
  [[nodiscard]] bool await(i32 member, u64 seq, void* out = nullptr,
                           std::size_t size = 0,
                           const std::atomic<i32>* cancel = nullptr,
                           i32 mask = 0) const;

  /// Phase barrier: waits until EVERY member published phase >= `seq`.
  /// Same abandonment contract as await(). Cheaper than a Team barrier for
  /// algorithm-internal phase edges — per-member lines instead of one
  /// contended counter, and no task-drain obligation.
  [[nodiscard]] bool await_all(u64 seq,
                               const std::atomic<i32>* cancel = nullptr,
                               i32 mask = 0) const;

  i32 size() const { return n_; }

 private:
  struct alignas(kCacheLine) Slot {
    std::atomic<u64> token{0};
    unsigned char data[kSlotBytes];
  };
  static_assert(sizeof(std::atomic<u64>) + kSlotBytes == kCacheLine,
                "slot must fill one cache line");

  const i32 n_;
  std::vector<Slot> slots_;
};

enum class BarrierKind { kCentral, kTree };

/// A barrier for a fixed-size group of `n` members, identified by dense ids
/// [0, n). Reusable: wait() may be called any number of rounds.
class Barrier {
 public:
  virtual ~Barrier() = default;

  /// Blocks member `member` until all n members of the current round arrive.
  virtual void wait(i32 member) = 0;

  virtual i32 size() const = 0;

  static std::unique_ptr<Barrier> create(BarrierKind kind, i32 n);
};

/// Sense-reversing centralized barrier.
class CentralBarrier final : public Barrier {
 public:
  explicit CentralBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  struct alignas(kCacheLine) MemberSense {
    bool sense = false;
  };

  const i32 n_;
  alignas(kCacheLine) std::atomic<i32> arrived_{0};
  alignas(kCacheLine) std::atomic<bool> global_sense_{false};
  std::vector<MemberSense> local_sense_;
};

/// Arity-4 combining-tree barrier: each internal node waits for its children
/// to arrive, propagates to its parent, and the release wave flips a
/// generation counter observed by all members.
class TreeBarrier final : public Barrier {
 public:
  explicit TreeBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  static constexpr i32 kArity = 4;

  struct alignas(kCacheLine) Node {
    std::atomic<i32> pending{0};
    i32 fanin = 0;
  };

  void arrive(i32 node);

  const i32 n_;
  std::vector<Node> nodes_;
  alignas(kCacheLine) std::atomic<u64> generation_{0};
};

}  // namespace zomp::rt
