// Team barriers.
//
// Two algorithms behind one interface so the micro_runtime bench can compare
// them (ablation A3 in DESIGN.md):
//  * CentralBarrier — sense-reversing centralized barrier. One atomic counter
//    and a broadcast flag; O(n) contention on one line, trivially correct.
//  * TreeBarrier    — arity-4 combining tree: arrive up the tree, release
//    down it. O(log n) critical path, far less contention on wide teams.
//
// Both wait with the exponential-backoff spin-then-yield policy (Backoff in
// common.h), governed by the OMP_WAIT_POLICY ICV: active waiters spin an
// exponentially growing budget before yielding, passive waiters yield at
// once — so oversubscribed test runs stay fast either way.
//
// WaitGate is the condvar-park annex for the runtime's epoch-style waits
// (today: the team join barrier, team.cpp). It packages the PR 3 doorbell
// park handshake — seq_cst parked flag against seq_cst state publication,
// with the empty-critical-section notify — so a waiter that has burned its
// spin/yield grace can leave the run queue entirely instead of yielding
// forever through a long serial phase.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

/// Lost-wakeup-free condvar park for spin loops that already have a cheap
/// wake predicate. Protocol (mirrors the worker doorbell, DESIGN.md S1.6):
///
///  * Waiter: after its spin/yield grace expires, calls park(pred). The gate
///    bumps `parked_` with a seq_cst RMW, then re-checks `pred` under the
///    mutex before sleeping.
///  * Waker: performs the store that makes `pred` true with seq_cst order,
///    then calls wake_all(). The seq_cst load of `parked_` forms the classic
///    store-load fence against the waiter's seq_cst RMW: if the waker reads
///    parked_ == 0, the waiter's increment — and therefore its in-mutex
///    re-check of `pred` — comes later in the seq_cst total order and must
///    observe the state change; otherwise the waker takes the (empty) mutex
///    critical section and notifies, which cannot slip between the waiter's
///    re-check and its sleep.
///
/// `pred` must read the gating state with seq_cst loads for the total-order
/// argument above to hold.
class WaitGate {
 public:
  template <typename Pred>
  void park(Pred&& pred) {
    parked_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return pred(); });
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Cheap when nobody parked: one seq_cst load, no lock.
  void wake_all() {
    if (parked_.load(std::memory_order_seq_cst) == 0) return;
    // Empty critical section: orders the notify after any parker is actually
    // inside cv_.wait (it holds the mutex until it sleeps).
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

 private:
  alignas(kCacheLine) std::atomic<i32> parked_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

enum class BarrierKind { kCentral, kTree };

/// A barrier for a fixed-size group of `n` members, identified by dense ids
/// [0, n). Reusable: wait() may be called any number of rounds.
class Barrier {
 public:
  virtual ~Barrier() = default;

  /// Blocks member `member` until all n members of the current round arrive.
  virtual void wait(i32 member) = 0;

  virtual i32 size() const = 0;

  static std::unique_ptr<Barrier> create(BarrierKind kind, i32 n);
};

/// Sense-reversing centralized barrier.
class CentralBarrier final : public Barrier {
 public:
  explicit CentralBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  struct alignas(kCacheLine) MemberSense {
    bool sense = false;
  };

  const i32 n_;
  alignas(kCacheLine) std::atomic<i32> arrived_{0};
  alignas(kCacheLine) std::atomic<bool> global_sense_{false};
  std::vector<MemberSense> local_sense_;
};

/// Arity-4 combining-tree barrier: each internal node waits for its children
/// to arrive, propagates to its parent, and the release wave flips a
/// generation counter observed by all members.
class TreeBarrier final : public Barrier {
 public:
  explicit TreeBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  static constexpr i32 kArity = 4;

  struct alignas(kCacheLine) Node {
    std::atomic<i32> pending{0};
    i32 fanin = 0;
  };

  void arrive(i32 node);

  const i32 n_;
  std::vector<Node> nodes_;
  alignas(kCacheLine) std::atomic<u64> generation_{0};
};

}  // namespace zomp::rt
