// Team barriers.
//
// Two algorithms behind one interface so the micro_runtime bench can compare
// them (ablation A3 in DESIGN.md):
//  * CentralBarrier — sense-reversing centralized barrier. One atomic counter
//    and a broadcast flag; O(n) contention on one line, trivially correct.
//  * TreeBarrier    — arity-4 combining tree: arrive up the tree, release
//    down it. O(log n) critical path, far less contention on wide teams.
//
// Both wait with the exponential-backoff spin-then-yield policy (Backoff in
// common.h), governed by the OMP_WAIT_POLICY ICV: active waiters spin an
// exponentially growing budget before yielding, passive waiters yield at
// once — so oversubscribed test runs stay fast either way.
#pragma once

#include <memory>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

enum class BarrierKind { kCentral, kTree };

/// A barrier for a fixed-size group of `n` members, identified by dense ids
/// [0, n). Reusable: wait() may be called any number of rounds.
class Barrier {
 public:
  virtual ~Barrier() = default;

  /// Blocks member `member` until all n members of the current round arrive.
  virtual void wait(i32 member) = 0;

  virtual i32 size() const = 0;

  static std::unique_ptr<Barrier> create(BarrierKind kind, i32 n);
};

/// Sense-reversing centralized barrier.
class CentralBarrier final : public Barrier {
 public:
  explicit CentralBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  struct alignas(kCacheLine) MemberSense {
    bool sense = false;
  };

  const i32 n_;
  alignas(kCacheLine) std::atomic<i32> arrived_{0};
  alignas(kCacheLine) std::atomic<bool> global_sense_{false};
  std::vector<MemberSense> local_sense_;
};

/// Arity-4 combining-tree barrier: each internal node waits for its children
/// to arrive, propagates to its parent, and the release wave flips a
/// generation counter observed by all members.
class TreeBarrier final : public Barrier {
 public:
  explicit TreeBarrier(i32 n);

  void wait(i32 member) override;
  i32 size() const override { return n_; }

 private:
  static constexpr i32 kArity = 4;

  struct alignas(kCacheLine) Node {
    std::atomic<i32> pending{0};
    i32 fanin = 0;
  };

  void arrive(i32 node);

  const i32 n_;
  std::vector<Node> nodes_;
  alignas(kCacheLine) std::atomic<u64> generation_{0};
};

}  // namespace zomp::rt
