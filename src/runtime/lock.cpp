#include "runtime/lock.h"

#include <functional>
#include <thread>

namespace zomp::rt {

u64 NestLock::self_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

i32 NestLock::set() {
  const u64 me = self_id();
  if (owner_.load(std::memory_order_acquire) == me) {
    return ++depth_;
  }
  mutex_.lock();
  owner_.store(me, std::memory_order_release);
  depth_ = 1;
  return depth_;
}

void NestLock::unset() {
  ZOMP_CHECK(owner_.load(std::memory_order_acquire) == self_id(),
             "nest lock unset by non-owner");
  if (--depth_ == 0) {
    owner_.store(kNoOwner, std::memory_order_release);
    mutex_.unlock();
  }
}

i32 NestLock::test() {
  const u64 me = self_id();
  if (owner_.load(std::memory_order_acquire) == me) {
    return ++depth_;
  }
  if (!mutex_.try_lock()) return 0;
  owner_.store(me, std::memory_order_release);
  depth_ = 1;
  return depth_;
}

void SpinLock::set() {
  Backoff backoff;
  for (;;) {
    // Test-and-test-and-set: spin on the cheap load, attempt the exchange
    // only when the lock looks free.
    if (!flag_.load(std::memory_order_relaxed) &&
        !flag_.exchange(true, std::memory_order_acquire)) {
      return;
    }
    backoff.pause();
  }
}

}  // namespace zomp::rt
