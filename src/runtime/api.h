// User-facing query/control API, the zomp equivalent of <omp.h>'s omp_*
// routine family. These are what MiniZig's `extern` runtime declarations and
// the C++ examples call.
#pragma once

#include "runtime/common.h"
#include "runtime/places.h"
#include "runtime/schedule.h"

namespace zomp {

/// Id of the calling thread within the innermost team (0 = master).
rt::i32 thread_num();

/// Size of the innermost team (1 outside parallel regions).
rt::i32 num_threads();

/// Team size a region forked right now would get (omp_get_max_threads).
rt::i32 max_threads();

/// True while inside an active (size > 1) parallel region.
bool in_parallel();

/// Nesting level counters (omp_get_level / omp_get_active_level).
rt::i32 level();
rt::i32 active_level();

/// Size of the calling thread's ancestor team at nesting depth `at_level`
/// (omp_get_team_size): 0 is the initial implicit team (always 1), level()
/// is the innermost team; out-of-range answers -1. Walks the per-fork parent
/// chain (team.h), so it is only meaningful while the regions execute.
rt::i32 team_size(rt::i32 at_level);

/// max-task-priority-var (omp_get_max_task_priority): the ceiling task
/// `priority` clauses clamp to, from OMP_MAX_TASK_PRIORITY (default 0).
rt::i32 max_task_priority();

/// Number of processors the runtime believes it can use.
rt::i32 num_procs();

/// Sets the default team size for subsequent regions on this thread.
void set_num_threads(rt::i32 n);

/// dyn-var accessors (omp_set_dynamic / omp_get_dynamic).
void set_dynamic(bool dyn);
bool get_dynamic();

/// max-active-levels accessors.
void set_max_active_levels(rt::i32 levels);
rt::i32 get_max_active_levels();

/// run-sched-var accessors (omp_set_schedule / omp_get_schedule).
void set_schedule(rt::Schedule schedule);
rt::Schedule get_schedule();

/// wait-policy-var accessors (OMP_WAIT_POLICY). Process-wide: the policy
/// governs every runtime spin loop (barriers, joins, task drains).
void set_wait_policy(rt::WaitPolicy policy);
rt::WaitPolicy get_wait_policy();

/// cancel-var (omp_get_cancellation): whether `omp cancel` is honoured,
/// from OMP_CANCELLATION. Per spec there is no setter in the omp_* family;
/// tests use rt::GlobalIcv::set_cancellation directly.
bool get_cancellation();

// -- Affinity queries (omp_get_proc_bind / omp_get_*_place* family) ---------

/// Binding policy the next parallel region forked from this thread would use
/// (the first element of this environment's bind-var; omp_get_proc_bind).
rt::BindKind get_proc_bind();

/// Number of places in the process place table (omp_get_num_places; 0 when
/// no topology/places are available).
rt::i32 num_places();

/// Place the calling thread is assigned to, or -1 when unbound
/// (omp_get_place_num). Maintained even when the platform refused the
/// affinity syscall — binding degrades to a logical no-op.
rt::i32 place_num();

/// Processor count of `place`, 0 for out-of-range (omp_get_place_num_procs).
rt::i32 place_num_procs(rt::i32 place);

/// Copies `place`'s OS processor ids into `ids` (sized by the query above;
/// omp_get_place_proc_ids).
void place_proc_ids(rt::i32 place, rt::i32* ids);

/// Size of the calling thread's place partition
/// (omp_get_partition_num_places).
rt::i32 partition_num_places();

/// Copies the partition's place numbers into `nums`
/// (omp_get_partition_place_nums).
void partition_place_nums(rt::i32* nums);

/// Prints the calling thread's one-line binding report to stderr
/// (omp_display_affinity; same format OMP_DISPLAY_AFFINITY=true emits at
/// binding changes). The report expands affinity-format-var; a non-null
/// `format` overrides the ICV for this one call, as the spec's
/// omp_display_affinity(format) does.
void display_affinity();
void display_affinity(const char* format);

/// affinity-format-var accessors (omp_set_affinity_format /
/// omp_get_affinity_format). `get` copies at most `size` bytes including a
/// terminating NUL and returns the full format's length excluding the NUL
/// (the caller can size a retry buffer from it); size 0 / null buffer just
/// queries the length.
void set_affinity_format(const char* format);
std::size_t get_affinity_format(char* buffer, std::size_t size);

/// Expands `format` (null: affinity-format-var) for the calling thread into
/// `buffer` under the same truncation contract as get_affinity_format
/// (omp_capture_affinity).
std::size_t capture_affinity(char* buffer, std::size_t size,
                             const char* format);

/// Monotonic wall-clock in seconds (omp_get_wtime).
double wtime();

/// Timer resolution in seconds (omp_get_wtick).
double wtick();

/// Innermost team scheduling telemetry (DESIGN.md S12): the per-member
/// StealStats totals, summed across the team. Accumulates across hot-team
/// reuses of the same team object. Quiescent-read contract: call from a
/// point where no sibling is mid-region (after a barrier, or outside the
/// region on the master) — the per-member entries are plain fields.
struct TeamStats {
  rt::i64 steal_attempts = 0;
  rt::i64 steal_lost = 0;
  rt::i64 mailbox_pulls = 0;
  rt::i64 tasks_executed = 0;
  rt::i64 dispatch_claims = 0;
  rt::i64 barrier_episodes = 0;
};
TeamStats team_stats();

}  // namespace zomp
