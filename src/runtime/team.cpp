#include "runtime/team.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/syscall.h>
#endif

#include "runtime/fault.h"
#include "runtime/metrics.h"
#include "runtime/topology.h"
#include "runtime/trace.h"

namespace zomp::rt {

namespace {

thread_local ThreadState* tls_state = nullptr;

/// Steady-clock nanoseconds for the barrier wait-time metric. Only read
/// when ZOMP_METRICS is on, so the vdso call stays off the default path.
u64 monotonic_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<i32>& gtid_counter() {
  static std::atomic<i32> counter{0};
  return counter;
}

/// Above this many members the O(n^2) victim-order table is skipped and
/// take() keeps its staggered flat ring (256 members -> 255 KiB of table;
/// teams that large are oversubscription artefacts, not locality targets).
constexpr i32 kVictimTableMaxMembers = 256;

/// Locality tier between two members' assigned places: 0 same place, 1 same
/// core, 2 same socket, 3 anywhere/unknown. Core/socket come from the
/// scheduling topology's dense renumbering (topology.h), located via each
/// place's first OS processor — places that cross that granularity (e.g. a
/// socket-wide place) compare by where they start, which is exactly the
/// libomp convention for place ordering.
i32 locality_tier(const BindingPlan& binding, i32 a, i32 b) {
  const i32 pa = binding.members[static_cast<std::size_t>(a)].place;
  const i32 pb = binding.members[static_cast<std::size_t>(b)].place;
  if (pa == pb) return 0;
  const PlaceTable& table = PlaceTable::instance();
  if (pa < 0 || pb < 0 || pa >= table.num_places() ||
      pb >= table.num_places()) {
    return 3;
  }
  const Place& place_a = table.place(pa);
  const Place& place_b = table.place(pb);
  if (place_a.procs.empty() || place_b.procs.empty()) return 3;
  const Topology& topo = scheduling_topology();
  const ProcInfo* ia = topo.find_proc(place_a.procs.front());
  const ProcInfo* ib = topo.find_proc(place_b.procs.front());
  if (ia == nullptr || ib == nullptr) return 3;
  if (ia->core == ib->core) return 1;
  if (ia->socket == ib->socket) return 2;
  return 3;
}

/// Builds the flattened n x (n-1) hierarchical victim order (DESIGN.md
/// S1.9): for each member, victims sorted by locality tier — same place,
/// same core, same socket, anywhere — with every tier rotated by the member
/// id so equal-distance thieves start on different victims (the anti-convoy
/// stagger folded into the hierarchy).
std::vector<i32> build_victim_order(const BindingPlan& binding, i32 n) {
  std::vector<i32> order;
  order.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  std::array<std::vector<i32>, 4> tiers;
  for (i32 tid = 0; tid < n; ++tid) {
    for (auto& tier : tiers) tier.clear();
    for (i32 v = 0; v < n; ++v) {
      if (v == tid) continue;
      tiers[static_cast<std::size_t>(locality_tier(binding, tid, v))]
          .push_back(v);
    }
    for (auto& tier : tiers) {
      if (tier.empty()) continue;
      const i32 rot = tid % static_cast<i32>(tier.size());
      std::rotate(tier.begin(), tier.begin() + rot, tier.end());
      order.insert(order.end(), tier.begin(), tier.end());
    }
  }
  return order;
}

}  // namespace

void bind_thread_state(ThreadState* state) { tls_state = state; }

i32 allocate_gtid() {
  return gtid_counter().fetch_add(1, std::memory_order_relaxed);
}

ThreadState& current_thread() {
  if (tls_state == nullptr) {
    // First runtime contact on this thread (the bootstrap thread or a
    // user-created std::thread): give it a root state bound to a serial team.
    thread_local std::unique_ptr<ThreadState> root;
    root = std::make_unique<ThreadState>();
    root->gtid = allocate_gtid();
    root->icv = GlobalIcv::instance().initial();
    tls_state = root.get();
    root->serial_team = std::make_unique<Team>(
        std::vector<ThreadState*>{root.get()}, root->icv, /*level=*/0,
        /*active_level=*/0);
  }
  return *tls_state;
}

Team::Team(std::vector<ThreadState*> members, Icv icv, i32 level,
           i32 active_level)
    : members_(std::move(members)),
      icv_(icv),
      level_(level),
      active_level_(active_level),
      implicit_ctx_(members_.size()),
      tasks_(static_cast<i32>(members_.size())),
      reduce_tree_(static_cast<i32>(members_.size())),
      phase_sync_(static_cast<i32>(members_.size())) {
  ZOMP_CHECK(!members_.empty(), "team must have at least one member");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    ThreadState& ts = *members_[i];
    ts.team = this;
    ts.tid = static_cast<i32>(i);
    ts.icv = icv_;
    ts.ws_seq = 0;
    ts.single_seq = 0;
    ts.red_seq = 0;
    ts.phase_seq = 0;
    ts.dispatch = MemberDispatch{};
    ts.current_task = &implicit_ctx_[i];
  }
}

void Team::rearm(const Icv& icv, i32 level, i32 active_level) {
  // Quiescence precondition: every non-master member has checked out of the
  // previous region and the master has observed it (wait_all_checked_out's
  // acquire), so plain/relaxed stores here cannot race a member — the next
  // thing a member reads is its doorbell, whose release/acquire pair orders
  // this whole re-arm before the member's first access. Worker-side state
  // (tid, current_task, sequence counters) persists on purpose: every
  // construct-identity protocol is monotonic, and all members finished the
  // same number of constructs at the join, so carrying the counters forward
  // keeps the team in step without touching seven remote cache lines per
  // region. Only the master's ThreadState — clobbered by the outer
  // save/restore — is rebuilt, from the checkpoint taken at the last join.
  ThreadState& master = *members_[0];
  master.team = this;
  master.tid = 0;
  master.icv = icv;
  master.ws_seq = master_ws_seq_;
  master.single_seq = master_single_seq_;
  master.red_seq = master_red_seq_;
  master.phase_seq = master_phase_seq_;
  master.dispatch = MemberDispatch{};
  master.current_task = &implicit_ctx_[0];
  icv_ = icv;  // workers copy this when they take the doorbell job
  level_ = level;
  active_level_ = active_level;
  checked_out_.store(0, std::memory_order_relaxed);
  // Cancellation is per-region: a recycled hot team must not inherit the
  // previous region's verdict (belt to run_region's braces — the reset also
  // runs at the join, but a team parked cancelled must come up clean).
  reset_cancellation();
}

void Team::checkpoint_master() {
  const ThreadState& master = *members_[0];
  master_ws_seq_ = master.ws_seq;
  master_single_seq_ = master.single_seq;
  master_red_seq_ = master.red_seq;
  master_phase_seq_ = master.phase_seq;
}

void Team::set_binding(BindingPlan plan) {
  binding_ = std::move(plan);
  // The binding decides locality, so everything derived from member places
  // is rebuilt with it: the dispatch shard map and the steal-victim order.
  // Same safe point as the plan itself — master-only, before any member
  // runs (pool.cpp computes the plan ahead of the doorbell ring).
  rebuild_locality();
}

void Team::rebuild_locality() {
  const i32 n = size();
  ShardMap map;
  if (!binding_.active || n <= 1 ||
      binding_.members.size() != static_cast<std::size_t>(n)) {
    shard_map_ = std::move(map);  // flat: one shard, no victim table
    tasks_.set_victim_order({});
    return;
  }
  // Shard = distinct member place, in ascending place order (so shard slabs
  // line up with place order); places beyond the cap merge into the last
  // shard, which only coarsens locality, never loses members.
  std::vector<i32> places;
  places.reserve(static_cast<std::size_t>(n));
  for (const MemberBinding& mb : binding_.members) places.push_back(mb.place);
  std::vector<i32> distinct = places;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  map.nshards = std::min<i32>(static_cast<i32>(distinct.size()),
                              kMaxPlaceShards);
  map.member_shard.resize(static_cast<std::size_t>(n));
  map.weight.assign(static_cast<std::size_t>(map.nshards), 0);
  map.shard_members.assign(static_cast<std::size_t>(map.nshards), {});
  for (i32 tid = 0; tid < n; ++tid) {
    const i32 rank = static_cast<i32>(
        std::lower_bound(distinct.begin(), distinct.end(),
                         places[static_cast<std::size_t>(tid)]) -
        distinct.begin());
    const i32 shard = std::min(rank, map.nshards - 1);
    map.member_shard[static_cast<std::size_t>(tid)] = shard;
    ++map.weight[static_cast<std::size_t>(shard)];
    map.shard_members[static_cast<std::size_t>(shard)].push_back(tid);
  }
  const bool multi_place = map.nshards > 1;
  shard_map_ = std::move(map);
  tasks_.set_victim_order(multi_place && n <= kVictimTableMaxMembers
                              ? build_victim_order(binding_, n)
                              : std::vector<i32>{});
}

namespace {

/// %A: the bound place's OS processor ids, comma-separated. Empty when the
/// thread is unbound (place_num -1) — matching the pre-ICV report.
std::string proc_list_text(const ThreadState& ts) {
  std::string out;
  if (ts.place_num >= 0 &&
      ts.place_num < PlaceTable::instance().num_places()) {
    const Place& place = PlaceTable::instance().place(ts.place_num);
    for (std::size_t i = 0; i < place.procs.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(place.procs[i]);
    }
  }
  return out;
}

/// %P: the OS process id (0 where the platform offers none).
i64 process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<i64>(::getpid());
#else
  return 0;
#endif
}

/// %i: the OS thread id where the platform exposes one (gettid has no libc
/// wrapper on older glibc, hence the raw syscall); elsewhere a stable hash
/// of the C++ thread id — still distinct per thread, which is all the
/// format field promises.
i64 native_thread_id() {
#if defined(__linux__)
  return static_cast<i64>(::syscall(SYS_gettid));
#else
  return static_cast<i64>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
#endif
}

/// %H: the machine's hostname.
std::string host_name() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

/// Maps an OpenMP long field name (%{thread_num}) to its short-name char,
/// or 0 when unknown.
char long_field_char(const std::string& name) {
  if (name == "thread_num") return 'n';
  if (name == "num_threads") return 'N';
  if (name == "nesting_level") return 'L';
  if (name == "process_id") return 'P';
  if (name == "native_thread_id") return 'i';
  if (name == "host") return 'H';
  if (name == "thread_affinity") return 'A';
  return 0;
}

std::string expand_field(char field, const ThreadState& ts) {
  switch (field) {
    case 'n': return std::to_string(ts.tid);
    case 'N':
      return std::to_string(ts.team != nullptr ? ts.team->size() : 1);
    case 'L':
      return std::to_string(ts.team != nullptr ? ts.team->level() : 0);
    case 'P': return std::to_string(process_id());
    case 'i': return std::to_string(native_thread_id());
    case 'H': return host_name();
    case 'A': return proc_list_text(ts);
    case 'p': return std::to_string(ts.place_num);  // zomp extension
    case '%': return "%";
    default: return std::string("%") + field;  // unknown: copy through
  }
}

}  // namespace

std::string affinity_report(const ThreadState& ts,
                            const std::string& format) {
  // Built as a string end to end: a socket-wide place on a large machine
  // lists dozens of procs, and a truncated report is worse than none.
  std::string out;
  out.reserve(format.size() + 16);
  for (std::size_t i = 0; i < format.size(); ++i) {
    if (format[i] != '%' || i + 1 == format.size()) {
      out.push_back(format[i]);
      continue;
    }
    char field = format[++i];
    if (field == '{') {
      const std::size_t close = format.find('}', i);
      if (close == std::string::npos) {  // unterminated: copy through
        out += "%{";
        continue;
      }
      field = long_field_char(format.substr(i + 1, close - i - 1));
      if (field == 0) {  // unknown long name: copy through verbatim
        out += "%" + format.substr(i, close - i + 1);
        i = close;
        continue;
      }
      i = close;
    }
    out += expand_field(field, ts);
  }
  return out;
}

std::string affinity_report(const ThreadState& ts) {
  return affinity_report(ts, GlobalIcv::instance().affinity_format());
}

void Team::bind_member(ThreadState& ts, i32 tid) {
  if (!binding_.active) return;
  const MemberBinding& mb = binding_.members[static_cast<std::size_t>(tid)];
  // The member's data environment gets its own slice of the partition
  // (spread subdivides; close/primary inherit the whole parent partition) —
  // this overrides the master-environment copy taken from the team ICVs.
  ts.icv.part_lo = mb.part_lo;
  ts.icv.part_len = mb.part_len;
  const bool changed = ts.place_num != mb.place;
  ts.place_num = mb.place;
  const u32 generation = PlaceTable::instance().generation();
  if (ts.bound_place != mb.place || ts.bound_generation != generation) {
    // The one OS call of the subsystem. Refusal (non-Linux, cgroup-restricted
    // mask) is deliberate no-op degradation: the logical place assignment
    // above stays in force for omp_get_place_num and nested partitioning.
    if (apply_place_mask(mb.place)) {
      ts.bound_place = mb.place;
      ts.bound_generation = generation;
    } else {
      ts.bound_place = -1;  // the OS mask no longer matches any place
    }
  }
  if (changed && GlobalIcv::instance().display_affinity()) {
    std::fprintf(stderr, "%s\n", affinity_report(ts).c_str());
  }
}

bool Team::barrier_wait(i32 tid) {
  // Entry cancellation point (OpenMP 5.2 §5): a member that observes a
  // pending `cancel parallel` NEVER arrives — abandoners head straight for
  // the join barrier, so the survivors' arrival count only has to balance
  // against other survivors (each of which abandons from its wait loop,
  // rolling its own arrival back). seq_cst load pairs with the seq_cst
  // fetch_or in cancel_activate. Checked before the episode events fire, so
  // a never-arriving member contributes no unpaired barrier-enter.
  if (cancel_request_.load(std::memory_order_seq_cst) & kCancelParallel) {
    return true;
  }
  trace_emit(TraceEv::kBarrierEnter, kBarrierKindUser);
  ++tasks_.member_stats(tid).barrier_episodes;
  u64 wait_t0 = 0;
  if (metrics_enabled()) {
    metrics_add(Metric::kBarrierEpisodes);
    wait_t0 = monotonic_ns();
  }
  const bool abandoned = barrier_wait_body(tid);
  if (wait_t0 != 0) {
    metrics_add(Metric::kBarrierWaitNs, monotonic_ns() - wait_t0);
  }
  trace_emit(TraceEv::kBarrierWaitEnd, kBarrierKindUser, abandoned ? 1 : 0);
  return abandoned;
}

bool Team::barrier_wait_body(i32 tid) {
  ThreadState& ts = member(tid);
  if (size() == 1) {
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (!run_one_task(ts)) backoff.pause();
    }
    // A completed barrier closes the innermost loop construct: clear any
    // pending loop-cancel so the next loop of the region starts clean.
    cancel_request_.fetch_and(~kCancelLoop, std::memory_order_relaxed);
    if (ts.current_task->deps != nullptr &&
        ts.current_task->children.load(std::memory_order_acquire) == 0) {
      ts.current_task->deps.reset();
    }
    return false;
  }
  const u64 epoch = bar_epoch_.load(std::memory_order_acquire);
  if (bar_arrived_.fetch_add(1, std::memory_order_acq_rel) == size() - 1) {
    // Last arriver: drain the team's tasks (helping), then open the gate.
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (run_one_task(ts)) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    // Cancelled loops always end in a barrier (cancellable worksharing must
    // not be nowait), so a completed episode is exactly where the loop bit
    // dies: the construct it named is over for every member.
    cancel_request_.fetch_and(~kCancelLoop, std::memory_order_relaxed);
    bar_arrived_.store(0, std::memory_order_relaxed);
    // seq_cst epoch store: the WaitGate park below keys on it (the classic
    // store-load pairing documented in barrier.h).
    bar_epoch_.store(epoch + 1, std::memory_order_seq_cst);
    bar_gate_.wake_all();
  } else {
    const i32 grace = doorbell_grace_rounds();
    Backoff backoff;
    i32 rounds = 0;
    while (bar_epoch_.load(std::memory_order_seq_cst) == epoch) {
      // Cancellation re-check: the canceller never arrives, so without this
      // the waiters would park forever. Each abandoner rolls back its own
      // arrival, returning the count to zero once all survivors left —
      // the epoch never advances and the episode simply evaporates.
      if (cancel_request_.load(std::memory_order_seq_cst) & kCancelParallel) {
        bar_arrived_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
      // Help with explicit tasks, but only when some are STEALABLE: the
      // common task-free region (every NPB kernel) must not pay a full
      // deque scan per wait iteration — one shared-counter load keeps the
      // barrier's spin body at two loads — and a task merely *executing*
      // elsewhere offers nothing to help with.
      if (tasks_.queued() > 0 && run_one_task(ts)) {
        backoff.reset();
        rounds = 0;
        continue;
      }
      if (rounds < grace) {
        ++rounds;
        backoff.pause();
        continue;
      }
      // Grace expired — a long serial phase on the last arriver, a passive
      // wait policy, or an oversubscribed process: condvar-park instead of
      // yielding forever (ROADMAP barrier item). Woken by the epoch flip or
      // by a task enqueue (enqueue_task), whose seq_cst publications pair
      // with the seq_cst predicate loads here; the grace itself mirrors the
      // worker doorbell so hot back-to-back joins never touch the futex.
      // The predicate keys on queued() — stealable work — NOT outstanding():
      // one long task executing elsewhere must leave the waiters asleep, not
      // cycling grace-spin/instant-unpark for its whole duration. It also
      // keys on the cancel flag: cancel_activate's wake_all must find the
      // parked waiters willing to get up and abandon.
      bar_gate_.park([&] {
        return bar_epoch_.load(std::memory_order_seq_cst) != epoch ||
               (cancel_request_.load(std::memory_order_seq_cst) &
                kCancelParallel) != 0 ||
               tasks_.queued() > 0;
      });
      rounds = 0;
      backoff.reset();
    }
  }
  // The member's dependence wavefront cannot outlive a full barrier (every
  // team task drained above), so retire the table here; guarded on the child
  // count for robustness against non-conforming in-task barriers.
  if (ts.current_task->deps != nullptr &&
      ts.current_task->children.load(std::memory_order_acquire) == 0) {
    ts.current_task->deps.reset();
  }
  return false;
}

void Team::join_barrier_wait(i32 tid) {
  trace_emit(TraceEv::kBarrierEnter, kBarrierKindJoin);
  ++tasks_.member_stats(tid).barrier_episodes;
  u64 wait_t0 = 0;
  if (metrics_enabled()) {
    metrics_add(Metric::kBarrierEpisodes);
    wait_t0 = monotonic_ns();
  }
  join_barrier_wait_body(tid);
  if (wait_t0 != 0) {
    metrics_add(Metric::kBarrierWaitNs, monotonic_ns() - wait_t0);
  }
  trace_emit(TraceEv::kBarrierWaitEnd, kBarrierKindJoin);
}

void Team::join_barrier_wait_body(i32 tid) {
  // The region-end rendezvous: the user barrier's protocol minus every
  // cancellation check, on its own counters. After a `cancel parallel` the
  // survivors skipped arbitrarily many user barriers, so bar_epoch_ is no
  // longer meaningful team-wide; join_epoch_ is, because nobody ever skips
  // a join. Discarded tasks drain HERE: execute_task skips their bodies but
  // runs all accounting, so outstanding() reaches zero without running user
  // code.
  ThreadState& ts = member(tid);
  if (size() == 1) {
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (!run_one_task(ts)) backoff.pause();
    }
    if (ts.current_task->deps != nullptr &&
        ts.current_task->children.load(std::memory_order_acquire) == 0) {
      ts.current_task->deps.reset();
    }
    return;
  }
  const u64 epoch = join_epoch_.load(std::memory_order_acquire);
  if (join_arrived_.fetch_add(1, std::memory_order_acq_rel) == size() - 1) {
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (run_one_task(ts)) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    join_arrived_.store(0, std::memory_order_relaxed);
    join_epoch_.store(epoch + 1, std::memory_order_seq_cst);
    bar_gate_.wake_all();
  } else {
    const i32 grace = doorbell_grace_rounds();
    Backoff backoff;
    i32 rounds = 0;
    while (join_epoch_.load(std::memory_order_seq_cst) == epoch) {
      if (tasks_.queued() > 0 && run_one_task(ts)) {
        backoff.reset();
        rounds = 0;
        continue;
      }
      if (rounds < grace) {
        ++rounds;
        backoff.pause();
        continue;
      }
      // Shares bar_gate_ with the user barrier: a wake meant for the other
      // episode is a spurious unpark (the predicate re-check re-parks), a
      // missed wake is impossible because both protocols publish with
      // seq_cst stores before wake_all.
      bar_gate_.park([&] {
        return join_epoch_.load(std::memory_order_seq_cst) != epoch ||
               tasks_.queued() > 0;
      });
      rounds = 0;
      backoff.reset();
    }
  }
  if (ts.current_task->deps != nullptr &&
      ts.current_task->children.load(std::memory_order_acquire) == 0) {
    ts.current_task->deps.reset();
  }
}

bool Team::cancel_activate(ThreadState& ts, i32 construct) {
  (void)ts;
  // cancel-var gates everything: when OMP_CANCELLATION is unset the whole
  // subsystem is a no-op and generated cancellation checks cost one relaxed
  // load. Read at use (not cached at construction) so hot-cached teams obey
  // a set_cancellation issued between regions.
  if (!GlobalIcv::instance().cancellation()) return false;
  cancel_request_.fetch_or(construct, std::memory_order_seq_cst);
  trace_emit(TraceEv::kCancel, construct);
  metrics_add(Metric::kCancellations);
  // Parallel cancel must unpark barrier waiters so they can abandon their
  // episode; the park predicate re-checks the flag under the gate's lock.
  if (construct & kCancelParallel) bar_gate_.wake_all();
  return true;
}

bool Team::cancellation_requested(ThreadState& ts, i32 construct) {
  (void)ts;
  if (!GlobalIcv::instance().cancellation()) return false;
  return (cancel_request_.load(std::memory_order_seq_cst) & construct) != 0;
}

bool Team::cancel_taskgroup(ThreadState& ts) {
  if (!GlobalIcv::instance().cancellation()) return false;
  TaskGroup* group = ts.current_task->group;
  if (group == nullptr) return false;  // no construct to cancel: no-op
  group->cancelled.store(true, std::memory_order_seq_cst);
  return true;
}

bool Team::taskgroup_cancelled(ThreadState& ts) const {
  for (TaskGroup* g = ts.current_task->group; g != nullptr; g = g->parent) {
    if (g->cancelled.load(std::memory_order_acquire)) return true;
  }
  return false;
}

bool Team::task_discarded(const Task& task) const {
  // Discard-on-take: a pending parallel cancel discards every queued task of
  // the region; a cancelled taskgroup discards its own queued tasks and its
  // descendants' (the group parent chain). No ICV check needed — the flags
  // can only have been set while cancellation was enabled.
  if (cancel_request_.load(std::memory_order_acquire) & kCancelParallel) {
    return true;
  }
  for (TaskGroup* g = task.group; g != nullptr; g = g->parent) {
    if (g->cancelled.load(std::memory_order_acquire)) return true;
  }
  return false;
}

void Team::dispatch_init(ThreadState& ts, Schedule schedule, i64 lo, i64 hi,
                         i64 step) {
  ZOMP_CHECK(ts.team == this, "dispatch_init from non-member thread");
  Schedule resolved = schedule;
  if (resolved.kind == ScheduleKind::kRuntime) {
    resolved = ts.icv.run_sched;
    if (resolved.kind == ScheduleKind::kRuntime) {
      resolved = Schedule{ScheduleKind::kStatic, 0};  // defensive default
    }
  }

  const u64 seq = ++ts.ws_seq;
  DispatchSlot& slot = dispatch_ring_[seq % kDispatchRing];

  bool initialised = false;
  Backoff backoff;
  for (;;) {
    u64 expected = 0;
    if (slot.owner_seq.compare_exchange_strong(expected, seq,
                                               std::memory_order_acq_rel)) {
      initialised = true;
      break;
    }
    if (expected == seq) break;  // another member initialised construct #seq
    // Slot still owned by an older construct (fast threads under nowait);
    // wait for it to drain — this is the ring's natural backpressure.
    ZOMP_CHECK(expected < seq, "worksharing constructs encountered out of order");
    backoff.pause();
  }

  if (initialised) {
    slot.kind = resolved.kind;
    slot.lo = lo;
    slot.hi = hi;
    slot.step = step;
    slot.chunk = resolved.chunk;
    slot.trips = trip_count(lo, hi, step);
    slot.nthreads = size();
    // Per-place cursor slabs (DESIGN.md S1.9) for the claim-based kinds;
    // static kinds get the flat single shard (their cursor is per-member).
    dispatch_init_shards(slot, shard_map_,
                         /*sharded=*/resolved.kind == ScheduleKind::kDynamic ||
                             resolved.kind == ScheduleKind::kGuided);
    slot.done_members.store(0, std::memory_order_relaxed);
    // Reset the ordered turnstile here, before `ready` is published: every
    // member waits for `ready` before claiming a chunk, so no iteration can
    // observe a stale turnstile value. Safe even while an unrelated nowait
    // loop is still draining, because ordered loops end in a barrier and
    // non-ordered loops never read the turnstile.
    ordered_next_.store(0, std::memory_order_relaxed);
    slot.ready.store(true, std::memory_order_release);
  } else {
    Backoff wait;
    while (!slot.ready.load(std::memory_order_acquire)) wait.pause();
  }

  ts.dispatch.slot = &slot;
  ts.dispatch.seq = seq;
  ts.dispatch.shard =
      shard_map_.member_shard.empty()
          ? 0
          : shard_map_.member_shard[static_cast<std::size_t>(ts.tid)];
  ts.dispatch.last_chunk = false;
  if (slot.kind == ScheduleKind::kStatic || slot.kind == ScheduleKind::kAuto) {
    dispatch_init_static_cursor(slot, ts.dispatch, ts.tid);
  }
  trace_emit(TraceEv::kDispatchInit, slot.trips,
             static_cast<i64>(slot.kind));
}

bool Team::dispatch_next(ThreadState& ts, i64* plo, i64* phi, bool* plast) {
  DispatchSlot* slot = ts.dispatch.slot;
  ZOMP_CHECK(slot != nullptr, "dispatch_next without dispatch_init");
  // Chunk claims are cancellation points: a pending loop cancel (or a
  // parallel cancel, which subsumes it — the member must reach the region
  // end) makes every member's next claim take the exhaustion path instead,
  // so the loop's remaining iterations are abandoned without any explicit
  // shard surgery — the cursors simply stop advancing and each member
  // detaches on its own schedule.
  const bool cancelled =
      (cancel_request_.load(std::memory_order_acquire) &
       (kCancelLoop | kCancelParallel)) != 0;
  bool last = false;
  if (!cancelled &&
      dispatch_next_chunk(*slot, ts.dispatch, ts.tid, plo, phi, &last)) {
    ts.dispatch.last_chunk = last;
    if (plast != nullptr) *plast = last;
    trace_emit(TraceEv::kDispatchClaim, *plo, *phi);
    ++tasks_.member_stats(ts.tid).dispatch_claims;
    return true;
  }
  // Exhausted for this member: detach; the last member to detach frees the
  // slot for reuse by a later construct.
  dispatch_detach(ts, *slot);
  return false;
}

void Team::dispatch_break(ThreadState& ts) {
  DispatchSlot* slot = ts.dispatch.slot;
  if (slot == nullptr) return;  // static-path loop or already detached
  dispatch_detach(ts, *slot);
}

void Team::dispatch_detach(ThreadState& ts, DispatchSlot& slot) {
  // Read `nthreads` *before* the detach RMW: the operands of == are
  // unsequenced, and a read evaluated after our own fetch_add would race the
  // next construct's initialiser once the last detacher frees the slot.
  ts.dispatch.slot = nullptr;
  const i32 nthreads = slot.nthreads;
  if (slot.done_members.fetch_add(1, std::memory_order_acq_rel) ==
      nthreads - 1) {
    slot.ready.store(false, std::memory_order_relaxed);
    slot.owner_seq.store(0, std::memory_order_release);
  }
}

bool Team::reduce_combine(ThreadState& ts, void* data, std::size_t size,
                          ReduceCombineFn fn, void* ctx, bool broadcast) {
  ZOMP_CHECK(ts.team == this, "reduction from non-member thread");
  // Instances are matched across members by encounter order, the same
  // team-wide identity argument dispatch slots rely on (members encounter
  // reduction constructs in the same order within a region).
  const u64 seq = ++ts.red_seq;
  return reduce_tree_.combine(ts.tid, seq, data, size, fn, ctx, broadcast);
}

void Team::phase_publish(ThreadState& ts, u64 seq, const void* data,
                         std::size_t size) {
  ZOMP_CHECK(ts.team == this, "phase publish from non-member thread");
  phase_sync_.publish(ts.tid, seq, data, size);
}

bool Team::phase_await(i32 member, u64 seq, void* out, std::size_t size) {
  // Abandonable like the PR 8 barriers: a pending cancel-parallel calls the
  // whole algorithm off — the publisher we wait on may already have bailed
  // without publishing, so the wait must not outlive the cancellation.
  return phase_sync_.await(member, seq, out, size, &cancel_request_,
                           kCancelParallel);
}

bool Team::phase_await_all(u64 seq) {
  return phase_sync_.await_all(seq, &cancel_request_, kCancelParallel);
}

bool Team::single_begin(ThreadState& ts) {
  ZOMP_CHECK(ts.team == this, "single from non-member thread");
  const u64 seq = ++ts.single_seq;
  // First arriver for construct #seq observes the counter at seq-1 (a member
  // cannot reach construct k+1 without construct k having been claimed) and
  // advances it; everyone else fails the exchange and skips the block.
  u64 expected = seq - 1;
  return single_counter_.compare_exchange_strong(expected, seq,
                                                 std::memory_order_acq_rel);
}

void Team::ordered_enter(ThreadState& ts, i64 index) {
  (void)ts;
  Backoff backoff;
  while (ordered_next_.load(std::memory_order_acquire) != index) {
    backoff.pause();
  }
}

void Team::ordered_exit(ThreadState& ts, i64 index) {
  (void)ts;
  ordered_next_.store(index + 1, std::memory_order_release);
}

void Team::run_task_inline(ThreadState& ts, std::function<void()>& body,
                           bool final_ctx) {
  // Undeferred (if(false)), included (final-descendant) and serial-team
  // tasks run immediately in a fresh context so nested taskwait / taskgroup
  // / depend clauses still behave.
  trace_emit(TraceEv::kTaskCreate, /*deferred=*/0);
  TaskContext inline_ctx;
  inline_ctx.group = ts.current_task->group;
  inline_ctx.in_final = final_ctx;
  TaskContext* saved = ts.current_task;
  ts.current_task = &inline_ctx;
  trace_emit(TraceEv::kTaskSchedule);
  body();
  // The inline task's own children must finish before it completes.
  Backoff backoff;
  while (inline_ctx.children.load(std::memory_order_acquire) > 0) {
    if (!run_one_task(ts)) backoff.pause();
  }
  ts.current_task = saved;
  trace_emit(TraceEv::kTaskComplete);
  ++tasks_.member_stats(ts.tid).tasks_executed;
  metrics_add(Metric::kTasksExecuted);
}

void Team::enqueue_task(ThreadState& ts, std::unique_ptr<Task> task) {
  if (auto rejected = tasks_.push(ts.tid, std::move(task))) {
    // Bounded deque full: run at the creation/release point (a legal task
    // scheduling point), which throttles runaway producers and — through
    // execute_task — still releases the rejected task's own successors.
    execute_task(ts, std::move(rejected), /*counted=*/false);
    return;
  }
  // Wake join-barrier waiters parked past their doorbell grace so a late
  // task burst still gets helpers; one seq_cst load when nobody is parked.
  bar_gate_.wake_all();
}

std::unique_ptr<Task> Team::new_task(ThreadState& ts,
                                     std::function<void()> body,
                                     i32 priority) {
  auto task = std::make_unique<Task>();
  task->body = std::move(body);
  task->parent = ts.current_task;
  task->group = ts.current_task->group;
  // priority clauses clamp into [0, max-task-priority-var] (OpenMP 5.2
  // §12.4): values above the ICV ceiling are allowed but not meaningful.
  task->priority = std::clamp(priority, 0,
                              GlobalIcv::instance().max_task_priority());
  task->parent->children.fetch_add(1, std::memory_order_acq_rel);
  if (task->group != nullptr) {
    task->group->active.fetch_add(1, std::memory_order_acq_rel);
  }
  trace_emit(TraceEv::kTaskCreate, /*deferred=*/1, task->priority);
  return task;
}

void Team::task_create(ThreadState& ts, std::function<void()> body,
                       bool deferred) {
  ZOMP_CHECK(ts.team == this, "task created from non-member thread");
  const bool in_final = ts.current_task->in_final;
  // Graceful degradation: an injected allocation failure downgrades the task
  // to undeferred inline execution at the creation point — a legal task
  // scheduling point, the same valve the deque-overflow path uses — so the
  // program stays correct, just less parallel.
  if (!deferred || in_final || size() == 1 ||
      fault_should_fail(FaultSite::kAlloc)) {
    run_task_inline(ts, body, in_final);
    return;
  }
  enqueue_task(ts, new_task(ts, std::move(body), /*priority=*/0));
}

void Team::task_create_ex(ThreadState& ts, std::function<void()> body,
                          const TaskOpts& opts) {
  ZOMP_CHECK(ts.team == this, "task created from non-member thread");
  const bool final_task = opts.final || ts.current_task->in_final;
  if (opts.ndeps <= 0) {
    // No dependences: the original fast path (plus priority recording and
    // the same alloc-fault downgrade as task_create).
    if (!opts.deferred || final_task || size() == 1 ||
        fault_should_fail(FaultSite::kAlloc)) {
      run_task_inline(ts, body, final_task);
      return;
    }
    enqueue_task(ts, new_task(ts, std::move(body), opts.priority));
    return;
  }

  // -- Dependence path (DESIGN.md S1.7) -------------------------------------
  // Sibling creation is serialised by the parent task, so the table walk is
  // single-threaded; only the per-node lock below is contended (against
  // predecessors completing concurrently).
  TaskContext& parent = *ts.current_task;
  DepTable& table = parent.dep_table();
  auto node = std::make_shared<DepNode>();

  // Merge duplicate addresses first (depend(in: x) + depend(out: x) on one
  // task acts as inout) so a task never draws an edge to its own node.
  struct MergedDep {
    const void* addr;
    bool writes;
  };
  std::vector<MergedDep> merged;
  merged.reserve(static_cast<std::size_t>(opts.ndeps));
  for (i32 i = 0; i < opts.ndeps; ++i) {
    const DepSpec& d = opts.deps[i];
    const bool writes = d.kind != DepKind::kIn;
    bool found = false;
    for (auto& m : merged) {
      if (m.addr == d.addr) {
        m.writes = m.writes || writes;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(MergedDep{d.addr, writes});
  }

  auto link = [&](const std::shared_ptr<DepNode>& pred) {
    const std::lock_guard<std::mutex> lock(pred->mu);
    if (pred->done) return;  // completed predecessors impose nothing
    pred->successors.push_back(node);
    node->npredecessors.fetch_add(1, std::memory_order_relaxed);
  };
  for (const MergedDep& m : merged) {
    DepEntry& entry = table[m.addr];
    if (m.writes) {
      // out/inout: after the last writer and every reader since it.
      if (entry.last_out) link(entry.last_out);
      for (const auto& r : entry.readers) link(r);
      entry.readers.clear();
      entry.last_out = node;
    } else {
      // in: after the last writer only; readers run concurrently.
      if (entry.last_out) link(entry.last_out);
      entry.readers.push_back(node);
    }
  }

  const bool deferred = opts.deferred && !final_task && size() > 1 &&
                        !fault_should_fail(FaultSite::kAlloc);
  if (!deferred) {
    // An undeferred task still honours its dependences: help run queued
    // tasks until every predecessor completed (count down to the creation
    // reference), then run inline and release successors.
    Backoff backoff;
    while (node->npredecessors.load(std::memory_order_acquire) > 1) {
      if (run_one_task(ts)) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    node->npredecessors.fetch_sub(1, std::memory_order_acq_rel);
    run_task_inline(ts, body, final_task);
    complete_depnode(ts, *node);
    return;
  }

  auto task = new_task(ts, std::move(body), opts.priority);
  task->depnode = node;
  // Park before dropping the creation reference: whoever decrements the
  // count to zero — us, when every predecessor already finished, or the
  // last-finishing predecessor — owns the task and enqueues it exactly once.
  node->task = task.release();
  if (node->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::unique_ptr<Task> ready(std::exchange(node->task, nullptr));
    enqueue_task(ts, std::move(ready));
  }
}

void Team::complete_depnode(ThreadState& ts, DepNode& node) {
  std::vector<std::shared_ptr<DepNode>> successors;
  {
    const std::lock_guard<std::mutex> lock(node.mu);
    node.done = true;  // later siblings skip the edge entirely
    successors.swap(node.successors);
  }
  for (const auto& succ : successors) {
    if (succ->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last predecessor: the acquire above pairs with the creator's release
      // drop of the creation reference, ordering its `task` store before
      // this read. Undeferred successors never park (task stays null) —
      // their encountering thread spins the count down itself.
      std::unique_ptr<Task> ready(std::exchange(succ->task, nullptr));
      if (ready) enqueue_task(ts, std::move(ready));
    }
  }
}

void Team::execute_task(ThreadState& ts, std::unique_ptr<Task> task,
                        bool counted) {
  TaskContext* saved = ts.current_task;
  task->ctx.group = task->group;  // descendants join the same group
  ts.current_task = &task->ctx;
  // Discard-on-take (cancellation): skip ONLY the body. Everything after —
  // child wait, successor release, group/parent decrements, mark_finished —
  // still runs, which is the single completion hook this path shares with
  // the deque-overflow inline route (counted == false): a discarded task
  // must drain from every counter a normal task would, or the join barrier
  // and taskgroup_end would wait forever on work that will never run.
  const bool discarded = task_discarded(*task);
  trace_emit(TraceEv::kTaskSchedule, discarded ? 1 : 0);
  if (!discarded) task->body();
  // Children of this task must complete before the task itself does
  // (OpenMP's implicit task completion ordering for taskwait counting is
  // handled by the parent's explicit waits; here we only keep the counters
  // sound: a finished task must not leave live children unaccounted).
  Backoff backoff;
  while (task->ctx.children.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  ts.current_task = saved;
  trace_emit(TraceEv::kTaskComplete, discarded ? 1 : 0);
  ++tasks_.member_stats(ts.tid).tasks_executed;
  metrics_add(Metric::kTasksExecuted);
  // Release dependent successors BEFORE this task's own counters drop: a
  // released successor enters `outstanding` (enqueue_task -> push) first, so
  // the join barrier's drain count never reads zero with a releasable task
  // still parked. Runs on the overflow-inline path too (counted == false) —
  // a rejected task's successors must not strand.
  if (task->depnode) complete_depnode(ts, *task->depnode);
  if (task->group != nullptr) {
    task->group->active.fetch_sub(1, std::memory_order_acq_rel);
  }
  task->parent->children.fetch_sub(1, std::memory_order_acq_rel);
  if (counted) tasks_.mark_finished();
}

bool Team::run_one_task(ThreadState& ts) {
  // A false return is NOT "the pool is dry": take() may miss a push that is
  // mid-publication (maybe_empty's advisory contract, task.h) or lose a
  // steal race. Every drain loop in this file therefore gates its *exit* on
  // the authoritative counters — outstanding(), queued(), children,
  // group.active — re-read each round, and uses false only to pace its
  // backoff. Audited for ISSUE 6; keep it that way when adding loops.
  auto task = tasks_.take(ts.tid);
  if (!task) return false;
  execute_task(ts, std::move(task));
  return true;
}

void Team::taskwait(ThreadState& ts) {
  Backoff backoff;
  while (ts.current_task->children.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  // All children complete: every node in the dependence table is done and
  // can impose no further edges, so retire the table — later siblings start
  // a fresh wavefront and long-running parents don't accumulate per-address
  // state across synchronisation points.
  if (ts.current_task->deps != nullptr) ts.current_task->deps.reset();
}

void Team::taskloop(ThreadState& ts, i64 lo, i64 hi, i64 grainsize,
                    i64 num_tasks, std::function<void(i64, i64)> chunk_body) {
  ZOMP_CHECK(ts.team == this, "taskloop from non-member thread");
  // Implicit taskgroup: taskloop returns only when every chunk task (and
  // their descendants) completed, which also keeps `chunk_body` alive for
  // the chunks' whole lifetime.
  TaskGroup group;
  taskgroup_begin(ts, group);
  const i64 trips = hi > lo ? hi - lo : 0;
  if (trips > 0) {
    i64 chunks;
    if (num_tasks > 0) {
      chunks = std::min(num_tasks, trips);
    } else if (grainsize > 0) {
      chunks = (trips + grainsize - 1) / grainsize;
    } else {
      chunks = std::min<i64>(trips, i64{size()} * kTaskloopChunksPerMember);
    }
    // One shared copy of the body: chunk tasks only read it.
    auto body = std::make_shared<std::function<void(i64, i64)>>(
        std::move(chunk_body));
    const i64 base = trips / chunks;
    const i64 rem = trips % chunks;
    // Place-aware spray (DESIGN.md S1.9): on a multi-place team the chunk
    // tasks are dealt round-robin across the place shards (and round-robin
    // among each shard's members) through the mailboxes, instead of all
    // landing in the creator's deque — every place starts with local work
    // rather than cross-socket-stealing the lot from the creator. Final
    // contexts never spray: their chunks must run inline (included tasks).
    const ShardMap& sm = shard_map_;
    const bool spray =
        size() > 1 && sm.nshards > 1 && !ts.current_task->in_final;
    i64 start = lo;
    for (i64 c = 0; c < chunks; ++c) {
      const i64 len = base + (c < rem ? 1 : 0);
      const i64 clo = start;
      const i64 chi = start + len;
      start = chi;
      std::function<void()> chunk_task = [body, clo, chi] {
        (*body)(clo, chi);
      };
      if (!spray) {
        task_create(ts, std::move(chunk_task));
        continue;
      }
      const i32 shard = static_cast<i32>(c % sm.nshards);
      const auto& members = sm.shard_members[static_cast<std::size_t>(shard)];
      const i32 target = members[static_cast<std::size_t>(
          (c / sm.nshards) % static_cast<i64>(members.size()))];
      if (target == ts.tid ||
          fault_should_fail(FaultSite::kAlloc)) {
        // Same-degradation spray: an injected failure keeps the chunk local
        // (task_create's own fault check then decides deferred vs inline).
        task_create(ts, std::move(chunk_task));
      } else {
        tasks_.push_remote(target, new_task(ts, std::move(chunk_task),
                                            /*priority=*/0));
        // Wake parked join-barrier waiters, mirroring enqueue_task: the
        // mailed task is their work too (own-mailbox pull or steal).
        bar_gate_.wake_all();
      }
    }
  }
  taskgroup_end(ts, group);
}

void Team::taskgroup_begin(ThreadState& ts, TaskGroup& group) {
  group.parent = ts.current_task->group;
  group.active.store(0, std::memory_order_relaxed);
  ts.current_task->group = &group;
}

void Team::taskgroup_end(ThreadState& ts, TaskGroup& group) {
  ZOMP_CHECK(ts.current_task->group == &group,
             "mismatched taskgroup begin/end");
  Backoff backoff;
  while (group.active.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  ts.current_task->group = group.parent;
}

void Team::wait_all_checked_out() {
  Backoff backoff;
  while (checked_out_.load(std::memory_order_acquire) != size() - 1) {
    backoff.pause();
  }
}

}  // namespace zomp::rt
