#include "runtime/team.h"

#include <algorithm>

namespace zomp::rt {

namespace {

thread_local ThreadState* tls_state = nullptr;

std::atomic<i32>& gtid_counter() {
  static std::atomic<i32> counter{0};
  return counter;
}

}  // namespace

void bind_thread_state(ThreadState* state) { tls_state = state; }

i32 allocate_gtid() {
  return gtid_counter().fetch_add(1, std::memory_order_relaxed);
}

ThreadState& current_thread() {
  if (tls_state == nullptr) {
    // First runtime contact on this thread (the bootstrap thread or a
    // user-created std::thread): give it a root state bound to a serial team.
    thread_local std::unique_ptr<ThreadState> root;
    root = std::make_unique<ThreadState>();
    root->gtid = allocate_gtid();
    root->icv = GlobalIcv::instance().initial();
    tls_state = root.get();
    root->serial_team = std::make_unique<Team>(
        std::vector<ThreadState*>{root.get()}, root->icv, /*level=*/0,
        /*active_level=*/0);
  }
  return *tls_state;
}

Team::Team(std::vector<ThreadState*> members, Icv icv, i32 level,
           i32 active_level)
    : members_(std::move(members)),
      icv_(icv),
      level_(level),
      active_level_(active_level),
      implicit_ctx_(members_.size()),
      tasks_(static_cast<i32>(members_.size())),
      reduce_tree_(static_cast<i32>(members_.size())) {
  ZOMP_CHECK(!members_.empty(), "team must have at least one member");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    ThreadState& ts = *members_[i];
    ts.team = this;
    ts.tid = static_cast<i32>(i);
    ts.icv = icv_;
    ts.ws_seq = 0;
    ts.single_seq = 0;
    ts.red_seq = 0;
    ts.dispatch = MemberDispatch{};
    ts.current_task = &implicit_ctx_[i];
  }
}

void Team::rearm(const Icv& icv, i32 level, i32 active_level) {
  // Quiescence precondition: every non-master member has checked out of the
  // previous region and the master has observed it (wait_all_checked_out's
  // acquire), so plain/relaxed stores here cannot race a member — the next
  // thing a member reads is its doorbell, whose release/acquire pair orders
  // this whole re-arm before the member's first access. Worker-side state
  // (tid, current_task, sequence counters) persists on purpose: every
  // construct-identity protocol is monotonic, and all members finished the
  // same number of constructs at the join, so carrying the counters forward
  // keeps the team in step without touching seven remote cache lines per
  // region. Only the master's ThreadState — clobbered by the outer
  // save/restore — is rebuilt, from the checkpoint taken at the last join.
  ThreadState& master = *members_[0];
  master.team = this;
  master.tid = 0;
  master.icv = icv;
  master.ws_seq = master_ws_seq_;
  master.single_seq = master_single_seq_;
  master.red_seq = master_red_seq_;
  master.dispatch = MemberDispatch{};
  master.current_task = &implicit_ctx_[0];
  icv_ = icv;  // workers copy this when they take the doorbell job
  level_ = level;
  active_level_ = active_level;
  checked_out_.store(0, std::memory_order_relaxed);
}

void Team::checkpoint_master() {
  const ThreadState& master = *members_[0];
  master_ws_seq_ = master.ws_seq;
  master_single_seq_ = master.single_seq;
  master_red_seq_ = master.red_seq;
}

void Team::barrier_wait(i32 tid) {
  ThreadState& ts = member(tid);
  if (size() == 1) {
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (!run_one_task(ts)) backoff.pause();
    }
    return;
  }
  const u64 epoch = bar_epoch_.load(std::memory_order_acquire);
  if (bar_arrived_.fetch_add(1, std::memory_order_acq_rel) == size() - 1) {
    // Last arriver: drain the team's tasks (helping), then open the gate.
    Backoff backoff;
    while (tasks_.outstanding() > 0) {
      if (run_one_task(ts)) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    bar_arrived_.store(0, std::memory_order_relaxed);
    bar_epoch_.store(epoch + 1, std::memory_order_release);
    return;
  }
  Backoff backoff;
  while (bar_epoch_.load(std::memory_order_acquire) == epoch) {
    // Help with explicit tasks, but only when some exist: the common
    // task-free region (every NPB kernel) must not pay a full deque scan
    // per wait iteration — one shared-counter load keeps the barrier's
    // spin body at two loads.
    if (tasks_.outstanding() > 0 && run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

void Team::dispatch_init(ThreadState& ts, Schedule schedule, i64 lo, i64 hi,
                         i64 step) {
  ZOMP_CHECK(ts.team == this, "dispatch_init from non-member thread");
  Schedule resolved = schedule;
  if (resolved.kind == ScheduleKind::kRuntime) {
    resolved = ts.icv.run_sched;
    if (resolved.kind == ScheduleKind::kRuntime) {
      resolved = Schedule{ScheduleKind::kStatic, 0};  // defensive default
    }
  }

  const u64 seq = ++ts.ws_seq;
  DispatchSlot& slot = dispatch_ring_[seq % kDispatchRing];

  bool initialised = false;
  Backoff backoff;
  for (;;) {
    u64 expected = 0;
    if (slot.owner_seq.compare_exchange_strong(expected, seq,
                                               std::memory_order_acq_rel)) {
      initialised = true;
      break;
    }
    if (expected == seq) break;  // another member initialised construct #seq
    // Slot still owned by an older construct (fast threads under nowait);
    // wait for it to drain — this is the ring's natural backpressure.
    ZOMP_CHECK(expected < seq, "worksharing constructs encountered out of order");
    backoff.pause();
  }

  if (initialised) {
    slot.kind = resolved.kind;
    slot.lo = lo;
    slot.hi = hi;
    slot.step = step;
    slot.chunk = resolved.chunk;
    slot.trips = trip_count(lo, hi, step);
    slot.nthreads = size();
    slot.next.store(0, std::memory_order_relaxed);
    slot.done_members.store(0, std::memory_order_relaxed);
    // Reset the ordered turnstile here, before `ready` is published: every
    // member waits for `ready` before claiming a chunk, so no iteration can
    // observe a stale turnstile value. Safe even while an unrelated nowait
    // loop is still draining, because ordered loops end in a barrier and
    // non-ordered loops never read the turnstile.
    ordered_next_.store(0, std::memory_order_relaxed);
    slot.ready.store(true, std::memory_order_release);
  } else {
    Backoff wait;
    while (!slot.ready.load(std::memory_order_acquire)) wait.pause();
  }

  ts.dispatch.slot = &slot;
  ts.dispatch.seq = seq;
  ts.dispatch.last_chunk = false;
  if (slot.kind == ScheduleKind::kStatic || slot.kind == ScheduleKind::kAuto) {
    dispatch_init_static_cursor(slot, ts.dispatch, ts.tid);
  }
}

bool Team::dispatch_next(ThreadState& ts, i64* plo, i64* phi, bool* plast) {
  DispatchSlot* slot = ts.dispatch.slot;
  ZOMP_CHECK(slot != nullptr, "dispatch_next without dispatch_init");
  bool last = false;
  if (dispatch_next_chunk(*slot, ts.dispatch, ts.tid, plo, phi, &last)) {
    ts.dispatch.last_chunk = last;
    if (plast != nullptr) *plast = last;
    return true;
  }
  // Exhausted for this member: detach; the last member to detach frees the
  // slot for reuse by a later construct. Read `nthreads` *before* the
  // detach RMW: the operands of == are unsequenced, and a read evaluated
  // after our own fetch_add would race the next construct's initialiser
  // once the last detacher frees the slot.
  ts.dispatch.slot = nullptr;
  const i32 nthreads = slot->nthreads;
  if (slot->done_members.fetch_add(1, std::memory_order_acq_rel) ==
      nthreads - 1) {
    slot->ready.store(false, std::memory_order_relaxed);
    slot->owner_seq.store(0, std::memory_order_release);
  }
  return false;
}

bool Team::reduce_combine(ThreadState& ts, void* data, std::size_t size,
                          ReduceCombineFn fn, void* ctx, bool broadcast) {
  ZOMP_CHECK(ts.team == this, "reduction from non-member thread");
  // Instances are matched across members by encounter order, the same
  // team-wide identity argument dispatch slots rely on (members encounter
  // reduction constructs in the same order within a region).
  const u64 seq = ++ts.red_seq;
  return reduce_tree_.combine(ts.tid, seq, data, size, fn, ctx, broadcast);
}

bool Team::single_begin(ThreadState& ts) {
  ZOMP_CHECK(ts.team == this, "single from non-member thread");
  const u64 seq = ++ts.single_seq;
  // First arriver for construct #seq observes the counter at seq-1 (a member
  // cannot reach construct k+1 without construct k having been claimed) and
  // advances it; everyone else fails the exchange and skips the block.
  u64 expected = seq - 1;
  return single_counter_.compare_exchange_strong(expected, seq,
                                                 std::memory_order_acq_rel);
}

void Team::ordered_enter(ThreadState& ts, i64 index) {
  (void)ts;
  Backoff backoff;
  while (ordered_next_.load(std::memory_order_acquire) != index) {
    backoff.pause();
  }
}

void Team::ordered_exit(ThreadState& ts, i64 index) {
  (void)ts;
  ordered_next_.store(index + 1, std::memory_order_release);
}

void Team::task_create(ThreadState& ts, std::function<void()> body,
                       bool deferred) {
  ZOMP_CHECK(ts.team == this, "task created from non-member thread");
  if (!deferred || size() == 1) {
    // Undeferred (if(false)) and serial-team tasks run immediately in a
    // fresh context so nested taskwait/taskgroup still behave.
    TaskContext inline_ctx;
    inline_ctx.group = ts.current_task->group;
    TaskContext* saved = ts.current_task;
    ts.current_task = &inline_ctx;
    body();
    // The inline task's own children must finish before it completes.
    Backoff backoff;
    while (inline_ctx.children.load(std::memory_order_acquire) > 0) {
      if (!run_one_task(ts)) backoff.pause();
    }
    ts.current_task = saved;
    return;
  }
  auto task = std::make_unique<Task>();
  task->body = std::move(body);
  task->parent = ts.current_task;
  task->group = ts.current_task->group;
  task->parent->children.fetch_add(1, std::memory_order_acq_rel);
  if (task->group != nullptr) {
    task->group->active.fetch_add(1, std::memory_order_acq_rel);
  }
  if (auto rejected = tasks_.push(ts.tid, std::move(task))) {
    // Bounded deque full: run at the creation point (a legal task scheduling
    // point), which also throttles runaway producers.
    execute_task(ts, std::move(rejected), /*counted=*/false);
  }
}

void Team::execute_task(ThreadState& ts, std::unique_ptr<Task> task,
                        bool counted) {
  TaskContext* saved = ts.current_task;
  task->ctx.group = task->group;  // descendants join the same group
  ts.current_task = &task->ctx;
  task->body();
  // Children of this task must complete before the task itself does
  // (OpenMP's implicit task completion ordering for taskwait counting is
  // handled by the parent's explicit waits; here we only keep the counters
  // sound: a finished task must not leave live children unaccounted).
  Backoff backoff;
  while (task->ctx.children.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  ts.current_task = saved;
  if (task->group != nullptr) {
    task->group->active.fetch_sub(1, std::memory_order_acq_rel);
  }
  task->parent->children.fetch_sub(1, std::memory_order_acq_rel);
  if (counted) tasks_.mark_finished();
}

bool Team::run_one_task(ThreadState& ts) {
  auto task = tasks_.take(ts.tid);
  if (!task) return false;
  execute_task(ts, std::move(task));
  return true;
}

void Team::taskwait(ThreadState& ts) {
  Backoff backoff;
  while (ts.current_task->children.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
}

void Team::taskgroup_begin(ThreadState& ts, TaskGroup& group) {
  group.parent = ts.current_task->group;
  group.active.store(0, std::memory_order_relaxed);
  ts.current_task->group = &group;
}

void Team::taskgroup_end(ThreadState& ts, TaskGroup& group) {
  ZOMP_CHECK(ts.current_task->group == &group,
             "mismatched taskgroup begin/end");
  Backoff backoff;
  while (group.active.load(std::memory_order_acquire) > 0) {
    if (run_one_task(ts)) {
      backoff.reset();
    } else {
      backoff.pause();
    }
  }
  ts.current_task->group = group.parent;
}

void Team::wait_all_checked_out() {
  Backoff backoff;
  while (checked_out_.load(std::memory_order_acquire) != size() - 1) {
    backoff.pause();
  }
}

}  // namespace zomp::rt
