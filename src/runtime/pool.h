// Persistent worker-thread pool and the fork/join entry point.
//
// Fork semantics mirror libomp's __kmpc_fork_call, the entry point the
// paper's outlined Zig regions target: the encountering ("master") thread
// recruits workers, every member runs the outlined microtask, an implicit
// task-draining barrier joins the team, and the workers return to the pool.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/ident.h"
#include "runtime/team.h"

namespace zomp::rt {

/// Outlined parallel-region entry point: generated code receives its global
/// thread id, its id within the team, and the shared-variable pointer array
/// captured by the directive engine.
using Microtask = void (*)(i32 gtid, i32 tid, void** args);

struct ForkOptions {
  /// Team size request (num_threads clause); 0 defers to pushed/ICV values.
  i32 num_threads = 0;
  /// `if` clause: false serialises the region (team of one).
  bool if_clause = true;
  SourceIdent ident{};
};

/// Runs `fn` on a new team. Blocks until every member has finished and
/// passed the join barrier (all explicit tasks included). Reentrant: calling
/// from inside a region forks a nested team subject to max-active-levels.
void fork_call(Microtask fn, void** args, const ForkOptions& opts = {});

/// Convenience overload for C++ callers: the closure is invoked once per
/// team member.
void fork_closure(const std::function<void()>& body,
                  const ForkOptions& opts = {});

/// One pooled OS thread. Parked on a mailbox between regions.
class Worker {
 public:
  explicit Worker(i32 gtid);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Hands the worker a microtask for team `team`, member `tid`. The team's
  /// constructor has already wired the worker's ThreadState.
  void assign(Team* team, i32 tid, Microtask fn, void** args);

  ThreadState& state() { return state_; }

 private:
  struct Job {
    Team* team = nullptr;
    i32 tid = 0;
    Microtask fn = nullptr;
    void** args = nullptr;
  };

  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Job> job_;
  bool shutdown_ = false;
  ThreadState state_;
  std::thread thread_;  // last member: starts after state_ is ready
};

/// Process-wide worker pool. Threads are spawned lazily up to the thread
/// limit and live until process exit.
class Pool {
 public:
  static Pool& instance();

  /// Pops up to `want` idle workers, spawning new ones while the global
  /// thread limit allows. May return fewer under contention or at the limit.
  std::vector<Worker*> acquire(i32 want);

  /// Returns workers to the idle list. Called by the master after the join
  /// barrier, so reacquisition is deterministic for back-to-back regions.
  void release(const std::vector<Worker*>& workers);

  /// Total workers ever spawned (for tests/telemetry).
  i32 spawned() const;

 private:
  Pool() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Worker>> all_;
  std::vector<Worker*> idle_;
};

}  // namespace zomp::rt
