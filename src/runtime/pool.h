// Persistent worker-thread pool and the fork/join entry point.
//
// Fork semantics mirror libomp's __kmpc_fork_call, the entry point the
// paper's outlined Zig regions target: the encountering ("master") thread
// recruits workers, every member runs the outlined microtask, an implicit
// task-draining barrier joins the team, and the workers return to the pool.
//
// Region entry is the runtime's fast path (DESIGN.md S1.6). Three mechanisms
// keep it that way:
//
//  * Hot-team cache — each master keeps a small per-level array of recent
//    Teams (and their workers, still bound) on its ThreadState, keyed on
//    (nesting level, num_threads request, binding signature). A fork
//    matching an entry re-arms that team in place (no allocation, no pool
//    traffic, no re-binding syscalls); misses evict the least-recently-used
//    entry, so programs alternating between two region shapes — and nested
//    masters inside recycled outer teams — keep their teams hot.
//  * Doorbell handoff — a bound worker parks on a per-worker atomic doorbell
//    between regions, so waking a hot team is one plain store + one release
//    store per worker, not a mutex/condvar round-trip. The doorbell spins
//    under the active wait policy (OMP_WAIT_POLICY, common.h Backoff) and
//    falls back to a condvar park after a bounded grace period — immediately
//    under the passive policy.
//  * Lock-free idle list — cold acquires and nested forks pop workers from a
//    tagged-index Treiber stack instead of serialising on the pool mutex;
//    the mutex now guards only thread spawning and `spawned()`.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/ident.h"
#include "runtime/team.h"

namespace zomp::rt {

/// Outlined parallel-region entry point: generated code receives its global
/// thread id, its id within the team, and the shared-variable pointer array
/// captured by the directive engine.
using Microtask = void (*)(i32 gtid, i32 tid, void** args);

struct ForkOptions {
  /// Team size request (num_threads clause); 0 defers to pushed/ICV values.
  i32 num_threads = 0;
  /// `if` clause: false serialises the region (team of one).
  bool if_clause = true;
  /// proc_bind clause; kUnset defers to the pushed one-shot, then to the
  /// bind-var list (OMP_PROC_BIND) at this environment's nesting level.
  BindKind proc_bind = BindKind::kUnset;
  SourceIdent ident{};
};

/// Runs `fn` on a new team. Blocks until every member has finished and
/// passed the join barrier (all explicit tasks included). Reentrant: calling
/// from inside a region forks a nested team subject to max-active-levels.
void fork_call(Microtask fn, void** args, const ForkOptions& opts = {});

/// Convenience overload for C++ callers: the closure is invoked once per
/// team member.
void fork_closure(const std::function<void()>& body,
                  const ForkOptions& opts = {});

/// Zero-erasure fork for C++ callers on the hot path: the callable rides in
/// the microtask argument array directly (no std::function construction, so
/// a capture-heavy body never heap-allocates per region). `body` must stay
/// alive until fork_body returns, which the join barrier guarantees.
template <typename Body>
void fork_body(Body&& body, const ForkOptions& opts = {}) {
  using B = std::remove_reference_t<Body>;
  void* args[1] = {const_cast<void*>(static_cast<const void*>(&body))};
  fork_call(
      [](i32 /*gtid*/, i32 /*tid*/, void** a) { (*static_cast<B*>(a[0]))(); },
      args, opts);
}

/// One pooled OS thread. Parked on an atomic doorbell between regions: the
/// assigning master publishes the job fields with plain stores, then rings
/// the doorbell with one release store; the worker spins (wait-policy
/// bounded), then condvar-parks. See DESIGN.md S1.6 for the full protocol,
/// including the store-load fence that keeps the park race-free.
class Worker {
 public:
  Worker(i32 gtid, i32 pool_index);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Hands the worker a microtask for team `team`, member `tid`. The caller
  /// must hold the worker exclusively (fresh from Pool::acquire or bound to
  /// the caller's hot team) and must have observed the worker's check_out
  /// from its previous region — that is what orders the plain job stores
  /// here against the worker's reads.
  void assign(Team* team, i32 tid, Microtask fn, void** args);

  ThreadState& state() { return state_; }
  i32 pool_index() const { return pool_index_; }

  /// Treiber-stack link, managed by Pool: index of the next idle worker
  /// (-1 = end). Only meaningful while this worker sits on the idle stack.
  std::atomic<i32> next_idle{-1};

 private:
  struct Job {
    Team* team = nullptr;
    i32 tid = 0;
    Microtask fn = nullptr;
    void** args = nullptr;
  };

  void loop();
  /// Blocks until the doorbell moves past `last_seen`; returns the new value.
  u64 wait_doorbell(u64 last_seen);
  /// Bumps the doorbell and wakes the worker if it condvar-parked.
  void ring();

  /// Written by the assigning master before the doorbell ring; read by the
  /// worker after the matching acquire. Plain fields on purpose — the
  /// doorbell release/acquire pair is the only synchronisation they need.
  Job job_{};

  alignas(kCacheLine) std::atomic<u64> doorbell_{0};
  /// Doorbell value of the last job this worker copied out of job_. The
  /// assigning master checks it equals the doorbell before overwriting
  /// job_ (the mailbox busy invariant); by the assign precondition the
  /// worker's relaxed store is already ordered before the check through
  /// check_out/wait_all_checked_out.
  std::atomic<u64> jobs_consumed_{0};
  /// Set (seq_cst) by the worker before it condvar-parks; checked (seq_cst)
  /// by ring() after the doorbell store. The two seq_cst accesses form the
  /// store-load fence of the classic sleeper handshake: at least one side
  /// observes the other, so a ring is never lost.
  std::atomic<bool> parked_{false};
  std::atomic<bool> shutdown_{false};

  std::mutex mutex_;  ///< parking only; never touched on the spin path
  std::condition_variable cv_;

  ThreadState state_;
  i32 pool_index_ = 0;
  std::thread thread_;  // last member: starts after state_ is ready
};

/// Process-wide worker pool. Threads are spawned lazily up to the thread
/// limit and live until process exit. The idle list is a lock-free
/// tagged-index Treiber stack; the mutex guards only spawning, so
/// `spawned()` and shutdown stay exact while concurrent masters acquire and
/// release without serialising.
class Pool {
 public:
  /// Hard cap on pooled workers (the idle stack indexes workers with 32-bit
  /// tagged handles). The thread limit ICV is clamped against it.
  static constexpr i32 kMaxWorkers = 1024;

  static Pool& instance();

  /// Pops up to `want` idle workers, spawning new ones while the global
  /// thread limit allows. May return fewer under contention or at the limit;
  /// the caller must size its team from what it actually received.
  std::vector<Worker*> acquire(i32 want);

  /// Returns workers to the idle list. Called by the master after the join
  /// barrier (or when a hot team is dismissed), so reacquisition is
  /// deterministic for back-to-back regions.
  void release(const std::vector<Worker*>& workers);

  /// Total workers ever spawned (for tests/telemetry). Exact.
  i32 spawned() const;

  /// True once the pool's destructor has started. ~ThreadState consults this
  /// before releasing a dying master's cached hot-team workers: during
  /// teardown some of those Worker objects may already be destroyed, and
  /// pushing them back onto the idle stack would touch freed memory.
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

 private:
  Pool() = default;
  ~Pool();

  Worker* pop_idle();
  void push_idle(Worker* w);

  /// Idle-stack head: (tag << 32) | (pool_index + 1); 0 = empty. The tag
  /// increments on every successful CAS, which defeats ABA on the index.
  alignas(kCacheLine) std::atomic<u64> idle_head_{0};

  /// Index -> worker, written once (release) when the worker is spawned.
  /// Fixed-size so idle-stack readers never race a growing container.
  std::atomic<Worker*> registry_[kMaxWorkers] = {};

  mutable std::mutex mutex_;  ///< spawn path + spawned() only
  std::vector<std::unique_ptr<Worker>> all_;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace zomp::rt
