#include "runtime/pool.h"

#include <algorithm>

namespace zomp::rt {

// ---------------------------------------------------------------------------
// Worker — doorbell handoff (DESIGN.md S1.6)
// ---------------------------------------------------------------------------

Worker::Worker(i32 gtid, i32 pool_index) : pool_index_(pool_index) {
  state_.gtid = gtid;
  state_.worker = this;
  thread_ = std::thread([this] { loop(); });
}

Worker::~Worker() {
  shutdown_.store(true, std::memory_order_release);
  ring();
  if (thread_.joinable()) thread_.join();
}

void Worker::ring() {
  // Single-writer doorbell: the worker is held exclusively by one master (or
  // the destructor), so the relaxed read-modify-write cannot race another
  // ring. The seq_cst store doubles as the release that publishes job_ and
  // as the first half of the store-load fence against parked_.
  const u64 next = doorbell_.load(std::memory_order_relaxed) + 1;
  doorbell_.store(next, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst)) {
    // The empty critical section orders this wake after the worker is
    // actually inside cv_.wait (it holds the mutex until it sleeps), so the
    // notify cannot slip between the worker's predicate check and its sleep.
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }
}

void Worker::assign(Team* team, i32 tid, Microtask fn, void** args) {
  // Exclusivity invariant (the seed's mailbox busy-check, kept observable):
  // the worker must have consumed every previously rung job, which the
  // caller guarantees by observing the prior region's check_out. A
  // violation here would otherwise overwrite an in-flight job and surface
  // as a barrier hang far from the cause.
  ZOMP_CHECK(jobs_consumed_.load(std::memory_order_relaxed) ==
                 doorbell_.load(std::memory_order_relaxed),
             "worker assigned while busy");
  job_ = Job{team, tid, fn, args};
  ring();
}

u64 Worker::wait_doorbell(u64 last_seen) {
  // Spin-then-yield per the wait policy and the oversubscription census
  // (common.h), then condvar-park. Both are re-sampled every call, so a
  // test flipping OMP_WAIT_POLICY — or a spawn that tips the process over
  // the core count — takes effect at the next region boundary.
  const i32 grace = doorbell_grace_rounds();
  Backoff backoff;
  i32 rounds = 0;
  for (;;) {
    const u64 v = doorbell_.load(std::memory_order_acquire);
    if (v != last_seen) return v;
    if (rounds < grace) {
      ++rounds;
      backoff.pause();
      continue;
    }
    // Park. parked_ must be visible before the doorbell re-check inside the
    // wait predicate (store-load fence, paired with ring()'s seq_cst store):
    // whichever of {our park intent, the master's ring} lands second in the
    // total order is observed by the other side.
    parked_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return doorbell_.load(std::memory_order_acquire) != last_seen;
      });
    }
    parked_.store(false, std::memory_order_relaxed);
  }
}

void Worker::loop() {
  bind_thread_state(&state_);
  u64 seen = 0;
  for (;;) {
    seen = wait_doorbell(seen);
    if (shutdown_.load(std::memory_order_acquire)) return;
    // job_ is plain memory: the doorbell acquire above ordered the master's
    // writes before this copy, and our previous check_out (observed by the
    // master before it re-assigned) ordered this copy's predecessor reads
    // before the master's writes.
    const Job job = job_;
    jobs_consumed_.store(seen, std::memory_order_relaxed);
    // ICV inheritance at region entry (worker-side so a hot-team re-arm
    // never writes remote member state): this region's implicit task copies
    // its data environment from the team, which the master stamped with its
    // own ICVs in the Team ctor / rearm. tid, current_task and the
    // construct sequence counters persist across reuses of the same team —
    // every identity protocol they feed is monotonic (see Team::rearm).
    state_.icv = job.team->icv();
    job.fn(state_.gtid, job.tid, job.args);
    job.team->barrier_wait(job.tid);
    // check_out() is this thread's final access to the team; the master
    // re-arms or destroys the team only after every member has checked out.
    job.team->check_out();
  }
}

// ---------------------------------------------------------------------------
// Pool — lock-free idle stack, mutex-guarded spawn
// ---------------------------------------------------------------------------

namespace {

constexpr u64 kIdleIndexMask = 0xffffffffu;

constexpr u64 pack_idle(u64 tag, i32 index_plus1) {
  return (tag << 32) | static_cast<u32>(index_plus1);
}
constexpr u64 idle_tag(u64 head) { return head >> 32; }
constexpr i32 idle_index_plus1(u64 head) {
  return static_cast<i32>(head & kIdleIndexMask);
}

}  // namespace

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

Worker* Pool::pop_idle() {
  u64 head = idle_head_.load(std::memory_order_acquire);
  for (;;) {
    const i32 idx1 = idle_index_plus1(head);
    if (idx1 == 0) return nullptr;
    Worker* w = registry_[idx1 - 1].load(std::memory_order_acquire);
    // Reading next_idle of a node another thread may pop concurrently is
    // safe: workers are never freed before process exit, the field is
    // atomic, and a stale value dies with the tag-checked CAS below.
    const i32 next1 = w->next_idle.load(std::memory_order_relaxed) + 1;
    const u64 desired = pack_idle(idle_tag(head) + 1, next1);
    if (idle_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return w;
    }
  }
}

void Pool::push_idle(Worker* w) {
  u64 head = idle_head_.load(std::memory_order_relaxed);
  for (;;) {
    w->next_idle.store(idle_index_plus1(head) - 1, std::memory_order_relaxed);
    const u64 desired = pack_idle(idle_tag(head) + 1, w->pool_index() + 1);
    if (idle_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

std::vector<Worker*> Pool::acquire(i32 want) {
  std::vector<Worker*> out;
  if (want <= 0) return out;
  out.reserve(static_cast<std::size_t>(want));
  while (static_cast<i32>(out.size()) < want) {
    Worker* w = pop_idle();
    if (w == nullptr) break;
    out.push_back(w);
  }
  if (static_cast<i32>(out.size()) < want) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Master threads count against the limit too, hence the -1.
    const i32 limit = std::min(
        kMaxWorkers,
        std::max(0, GlobalIcv::instance().thread_limit() - 1));
    while (static_cast<i32>(out.size()) < want &&
           static_cast<i32>(all_.size()) < limit) {
      const i32 index = static_cast<i32>(all_.size());
      all_.push_back(std::make_unique<Worker>(allocate_gtid(), index));
      registry_[index].store(all_.back().get(), std::memory_order_release);
      out.push_back(all_.back().get());
    }
  }
  return out;
}

void Pool::release(const std::vector<Worker*>& workers) {
  for (Worker* w : workers) push_idle(w);
}

i32 Pool::spawned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<i32>(all_.size());
}

// ---------------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------------

namespace {

struct SavedBinding {
  Team* team;
  i32 tid;
  Icv icv;
  u64 ws_seq;
  u64 single_seq;
  u64 red_seq;
  MemberDispatch dispatch;
  TaskContext* current_task;
};

SavedBinding save(const ThreadState& ts) {
  return SavedBinding{ts.team,       ts.tid,     ts.icv,
                      ts.ws_seq,     ts.single_seq, ts.red_seq,
                      ts.dispatch,   ts.current_task};
}

void restore(ThreadState& ts, const SavedBinding& s) {
  ts.team = s.team;
  ts.tid = s.tid;
  ts.icv = s.icv;
  ts.ws_seq = s.ws_seq;
  ts.single_seq = s.single_seq;
  // The reduction sequence keys the ReductionTree rendezvous (slot tokens,
  // reuse gate, broadcast parity); a nested fork's Team ctor zeroed it, and
  // resuming the outer region with a rewound sequence would match stale
  // tokens (wrong partials) or spin on tokens never published (deadlock).
  ts.red_seq = s.red_seq;
  ts.dispatch = s.dispatch;
  ts.current_task = s.current_task;
}

void closure_trampoline(i32 /*gtid*/, i32 /*tid*/, void** args) {
  const auto* body = static_cast<const std::function<void()>*>(args[0]);
  (*body)();
}

/// Runs one region on an already-armed team: ring every bound worker, run
/// the master's share, join, and wait for the last member's check-out.
/// Brackets the region with the oversubscription census (common.h) so every
/// wait primitive sees the *currently running* worker count.
void run_region(Team& team, const std::vector<Worker*>& workers, Microtask fn,
                void** args, ThreadState& master) {
  const i32 n = static_cast<i32>(workers.size());
  if (n > 0) note_active_workers(n);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i]->assign(&team, static_cast<i32>(i) + 1, fn, args);
  }
  fn(master.gtid, 0, args);
  team.barrier_wait(0);
  team.wait_all_checked_out();
  if (n > 0) note_active_workers(-n);
}

void dismiss_hot_team(ThreadState& ts) {
  if (!ts.hot_team) return;
  Pool::instance().release(ts.hot_workers);
  ts.hot_workers.clear();
  ts.hot_team.reset();
  ts.hot_requested = 0;
}

}  // namespace

ThreadState::~ThreadState() { dismiss_hot_team(*this); }

void fork_call(Microtask fn, void** args, const ForkOptions& opts) {
  ThreadState& ts = current_thread();

  i32 want = opts.num_threads > 0      ? opts.num_threads
             : ts.pushed_num_threads > 0 ? ts.pushed_num_threads
                                         : ts.icv.nthreads;
  ts.pushed_num_threads = 0;
  if (want < 1) want = 1;
  if (!opts.if_clause) want = 1;
  if (ts.team->active_level() >= ts.icv.max_active_levels) want = 1;

  // Only outermost regions cache a hot team: a nested master's team would
  // pin workers across unrelated outer regions. (A worker never encounters
  // an outermost fork — it is always inside a microtask here — so hot teams
  // live only on user/bootstrap threads and die with them, see ~ThreadState.)
  const bool cacheable = ts.team->level() == 0;

  // A hot team the pool shrank below its request (transient contention at
  // build time) is still reused — but not forever: every Nth undersized
  // reuse rebuilds through the pool so the team grows back once the
  // contention has cleared. Full-size hot teams never pay this.
  constexpr i32 kUndersizedRetryPeriod = 64;
  const bool hot_hit =
      cacheable && ts.hot_team != nullptr && ts.hot_requested == want;
  const bool retry_growth =
      hot_hit && ts.hot_team->size() < want &&
      ++ts.hot_undersized_reuses >= kUndersizedRetryPeriod;

  if (hot_hit && !retry_growth) {
    // Fast path: same request back-to-back — recycle the team in place.
    // Cost: the rearm stores + one doorbell ring per worker; no lock, no
    // pool traffic, no allocation.
    const SavedBinding saved = save(ts);
    Team& team = *ts.hot_team;
    team.rearm(saved.icv, saved.team->level() + 1,
               saved.team->active_level() + (team.size() > 1 ? 1 : 0));
    run_region(team, ts.hot_workers, fn, args, ts);
    team.checkpoint_master();  // before restore clobbers the master's counters
    restore(ts, saved);
    return;
  }
  // Request changed (num_threads clause or nthreads-var): the hot team's
  // size no longer matches, so hand its workers back before re-acquiring.
  if (cacheable) dismiss_hot_team(ts);

  std::vector<Worker*> workers;
  if (want > 1) workers = Pool::instance().acquire(want - 1);

  const SavedBinding saved = save(ts);
  // A short acquire (thread limit / contention) shrinks the team: every
  // sizing downstream — barrier, dispatch ring nthreads, reduction tree,
  // implicit task contexts — derives from this member list, never from
  // `want`, so there is no dangling member slot.
  const i32 size = static_cast<i32>(workers.size()) + 1;
  const i32 level = saved.team->level() + 1;
  const i32 active = saved.team->active_level() + (size > 1 ? 1 : 0);

  std::vector<ThreadState*> members;
  members.reserve(static_cast<std::size_t>(size));
  members.push_back(&ts);
  for (Worker* w : workers) members.push_back(&w->state());

  if (cacheable) {
    // Build the team on the heap and keep it (workers stay bound): the next
    // same-size fork takes the fast path above.
    ts.hot_team =
        std::make_unique<Team>(std::move(members), saved.icv, level, active);
    ts.hot_workers = std::move(workers);
    ts.hot_requested = want;
    ts.hot_undersized_reuses = 0;
    run_region(*ts.hot_team, ts.hot_workers, fn, args, ts);
    ts.hot_team->checkpoint_master();
    restore(ts, saved);
    return;
  }

  {
    Team team(std::move(members), saved.icv, level, active);
    run_region(team, workers, fn, args, ts);
  }
  Pool::instance().release(workers);
  restore(ts, saved);
}

void fork_closure(const std::function<void()>& body, const ForkOptions& opts) {
  void* args[1] = {const_cast<void*>(static_cast<const void*>(&body))};
  fork_call(closure_trampoline, args, opts);
}

}  // namespace zomp::rt
