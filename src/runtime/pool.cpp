#include "runtime/pool.h"

#include <algorithm>

#include "runtime/fault.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace zomp::rt {

namespace {

/// Returns a cached hot team's workers to the pool and empties the slot.
/// Requires the slot's team to be quiescent (never called on an in_use
/// ancestor). During pool teardown the idle-stack push is skipped — some of
/// those Worker objects may already be destroyed.
void dismiss_slot(HotSlot& slot);

}  // namespace

// ---------------------------------------------------------------------------
// Worker — doorbell handoff (DESIGN.md S1.6)
// ---------------------------------------------------------------------------

Worker::Worker(i32 gtid, i32 pool_index) : pool_index_(pool_index) {
  state_.gtid = gtid;
  state_.worker = this;
  thread_ = std::thread([this] { loop(); });
}

Worker::~Worker() {
  shutdown_.store(true, std::memory_order_release);
  ring();
  if (thread_.joinable()) thread_.join();
}

void Worker::ring() {
  // Single-writer doorbell: the worker is held exclusively by one master (or
  // the destructor), so the relaxed read-modify-write cannot race another
  // ring. The seq_cst store doubles as the release that publishes job_ and
  // as the first half of the store-load fence against parked_.
  const u64 next = doorbell_.load(std::memory_order_relaxed) + 1;
  doorbell_.store(next, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst)) {
    // The empty critical section orders this wake after the worker is
    // actually inside cv_.wait (it holds the mutex until it sleeps), so the
    // notify cannot slip between the worker's predicate check and its sleep.
    { const std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }
}

void Worker::assign(Team* team, i32 tid, Microtask fn, void** args) {
  // Exclusivity invariant (the seed's mailbox busy-check, kept observable):
  // the worker must have consumed every previously rung job, which the
  // caller guarantees by observing the prior region's check_out. A
  // violation here would otherwise overwrite an in-flight job and surface
  // as a barrier hang far from the cause.
  ZOMP_CHECK(jobs_consumed_.load(std::memory_order_relaxed) ==
                 doorbell_.load(std::memory_order_relaxed),
             "worker assigned while busy");
  job_ = Job{team, tid, fn, args};
  ring();
}

u64 Worker::wait_doorbell(u64 last_seen) {
  // Spin-then-yield per the wait policy and the oversubscription census
  // (common.h), then condvar-park. Both are re-sampled every call, so a
  // test flipping OMP_WAIT_POLICY — or a spawn that tips the process over
  // the core count — takes effect at the next region boundary.
  const i32 grace = doorbell_grace_rounds();
  Backoff backoff;
  i32 rounds = 0;
  for (;;) {
    const u64 v = doorbell_.load(std::memory_order_acquire);
    if (v != last_seen) return v;
    if (rounds < grace) {
      ++rounds;
      backoff.pause();
      continue;
    }
    // Park. parked_ must be visible before the doorbell re-check inside the
    // wait predicate (store-load fence, paired with ring()'s seq_cst store):
    // whichever of {our park intent, the master's ring} lands second in the
    // total order is observed by the other side.
    parked_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return doorbell_.load(std::memory_order_acquire) != last_seen;
      });
    }
    parked_.store(false, std::memory_order_relaxed);
  }
}

void Worker::loop() {
  bind_thread_state(&state_);
  u64 seen = 0;
  for (;;) {
    seen = wait_doorbell(seen);
    if (shutdown_.load(std::memory_order_acquire)) return;
    // job_ is plain memory: the doorbell acquire above ordered the master's
    // writes before this copy, and our previous check_out (observed by the
    // master before it re-assigned) ordered this copy's predecessor reads
    // before the master's writes.
    const Job job = job_;
    jobs_consumed_.store(seen, std::memory_order_relaxed);
    // ICV inheritance at region entry (worker-side so a hot-team re-arm
    // never writes remote member state): this region's implicit task copies
    // its data environment from the team, which the master stamped with its
    // own ICVs in the Team ctor / rearm. tid, current_task and the
    // construct sequence counters persist across reuses of the same team —
    // every identity protocol they feed is monotonic (see Team::rearm).
    state_.icv = job.team->icv();
    // Placement at job-take, same worker-side discipline: partition ICVs,
    // place assignment, and — only if the place changed since this OS
    // thread last bound — the sched_setaffinity call (team.cpp). A hot
    // re-arm reuses the plan, so the syscall is skipped on unchanged reuse.
    job.team->bind_member(state_, job.tid);
    trace_emit(TraceEv::kImplicitTaskBegin, job.tid, job.team->size());
    job.fn(state_.gtid, job.tid, job.args);
    // The join rendezvous is never cancellable: cancelled members skipped
    // user barriers but everybody meets here, so the master's teardown /
    // re-arm below the join stays race-free.
    job.team->join_barrier_wait(job.tid);
    trace_emit(TraceEv::kImplicitTaskEnd, job.tid, job.team->size());
    // check_out() is this thread's final access to the team; the master
    // re-arms or destroys the team only after every member has checked out.
    job.team->check_out();
  }
}

// ---------------------------------------------------------------------------
// Pool — lock-free idle stack, mutex-guarded spawn
// ---------------------------------------------------------------------------

namespace {

constexpr u64 kIdleIndexMask = 0xffffffffu;

constexpr u64 pack_idle(u64 tag, i32 index_plus1) {
  return (tag << 32) | static_cast<u32>(index_plus1);
}
constexpr u64 idle_tag(u64 head) { return head >> 32; }
constexpr i32 idle_index_plus1(u64 head) {
  return static_cast<i32>(head & kIdleIndexMask);
}

}  // namespace

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

Pool::~Pool() {
  // Publish teardown before any Worker dies: worker ThreadStates destroyed
  // below may hold cached hot teams whose member Workers were already freed
  // (vector destruction order), so their dismissal must not touch the idle
  // stack once this flag is up.
  shutting_down_.store(true, std::memory_order_release);
}

Worker* Pool::pop_idle() {
  u64 head = idle_head_.load(std::memory_order_acquire);
  for (;;) {
    const i32 idx1 = idle_index_plus1(head);
    if (idx1 == 0) return nullptr;
    Worker* w = registry_[idx1 - 1].load(std::memory_order_acquire);
    // Reading next_idle of a node another thread may pop concurrently is
    // safe: workers are never freed before process exit, the field is
    // atomic, and a stale value dies with the tag-checked CAS below.
    const i32 next1 = w->next_idle.load(std::memory_order_relaxed) + 1;
    const u64 desired = pack_idle(idle_tag(head) + 1, next1);
    if (idle_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return w;
    }
  }
}

void Pool::push_idle(Worker* w) {
  u64 head = idle_head_.load(std::memory_order_relaxed);
  for (;;) {
    w->next_idle.store(idle_index_plus1(head) - 1, std::memory_order_relaxed);
    const u64 desired = pack_idle(idle_tag(head) + 1, w->pool_index() + 1);
    if (idle_head_.compare_exchange_weak(head, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

std::vector<Worker*> Pool::acquire(i32 want) {
  std::vector<Worker*> out;
  if (want <= 0) return out;
  out.reserve(static_cast<std::size_t>(want));
  while (static_cast<i32>(out.size()) < want) {
    Worker* w = pop_idle();
    if (w == nullptr) break;
    out.push_back(w);
  }
  if (static_cast<i32>(out.size()) < want) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Master threads count against the limit too, hence the -1.
    const i32 limit = std::min(
        kMaxWorkers,
        std::max(0, GlobalIcv::instance().thread_limit() - 1));
    while (static_cast<i32>(out.size()) < want &&
           static_cast<i32>(all_.size()) < limit) {
      // Fault-injection hook (fault.h): a failed spawn abandons this grow
      // attempt — `break`, not `continue`, modelling pthread_create refusing
      // under resource pressure. The caller's short-acquire protocol turns
      // the shortfall into a smaller but fully consistent team (every
      // downstream sizing derives from the delivered member list).
      if (fault_should_fail(FaultSite::kSpawn)) break;
      const i32 index = static_cast<i32>(all_.size());
      all_.push_back(std::make_unique<Worker>(allocate_gtid(), index));
      registry_[index].store(all_.back().get(), std::memory_order_release);
      out.push_back(all_.back().get());
    }
  }
  return out;
}

void Pool::release(const std::vector<Worker*>& workers) {
  for (Worker* w : workers) {
    // A worker returning to the idle stack gives up its master role: any
    // nested teams it cached while bound are dismissed (recursively freeing
    // THEIR workers the same way), so hot sub-teams live exactly as long as
    // the outer binding that made them hot — pinned workers can never leak
    // behind an idle worker nobody will fork from again. The worker is
    // quiescent here (checked out, parked on its doorbell), which makes
    // this cross-thread touch of its hot_slots safe: the release/acquire
    // pair of its next doorbell ring orders these writes before the worker
    // reads anything.
    for (HotSlot& slot : w->state().hot_slots) dismiss_slot(slot);
    push_idle(w);
  }
}

i32 Pool::spawned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<i32>(all_.size());
}

// ---------------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------------

namespace {

struct SavedBinding {
  Team* team;
  i32 tid;
  Icv icv;
  u64 ws_seq;
  u64 single_seq;
  u64 red_seq;
  u64 phase_seq;
  MemberDispatch dispatch;
  TaskContext* current_task;
  i32 place_num;
};

SavedBinding save(const ThreadState& ts) {
  return SavedBinding{ts.team,       ts.tid,        ts.icv,
                      ts.ws_seq,     ts.single_seq, ts.red_seq,
                      ts.phase_seq,  ts.dispatch,   ts.current_task,
                      ts.place_num};
}

void restore(ThreadState& ts, const SavedBinding& s) {
  ts.team = s.team;
  ts.tid = s.tid;
  ts.icv = s.icv;
  ts.ws_seq = s.ws_seq;
  ts.single_seq = s.single_seq;
  // The reduction sequence keys the ReductionTree rendezvous (slot tokens,
  // reuse gate, broadcast parity); a nested fork's Team ctor zeroed it, and
  // resuming the outer region with a rewound sequence would match stale
  // tokens (wrong partials) or spin on tokens never published (deadlock).
  ts.red_seq = s.red_seq;
  // Same argument for the PhaseSync phase counter (algo constructs).
  ts.phase_seq = s.phase_seq;
  ts.dispatch = s.dispatch;
  ts.current_task = s.current_task;
  // The *logical* place assignment of the enclosing region comes back; the
  // applied-mask cache (bound_place) deliberately does not — it mirrors OS
  // state, which a nested bound region may have legitimately changed.
  ts.place_num = s.place_num;
}

void closure_trampoline(i32 /*gtid*/, i32 /*tid*/, void** args) {
  const auto* body = static_cast<const std::function<void()>*>(args[0]);
  (*body)();
}

/// Runs one region on an already-armed team: bind and ring every bound
/// worker, run the master's share, join, and wait for the last member's
/// check-out. Brackets the region with the oversubscription census
/// (common.h) so every wait primitive sees the *currently running* worker
/// count.
void run_region(Team& team, const std::vector<Worker*>& workers, Microtask fn,
                void** args, ThreadState& master) {
  const i32 n = static_cast<i32>(workers.size());
  if (n > 0) note_active_workers(n);
  trace_emit(TraceEv::kParallelBegin, team.size(), team.level());
  metrics_add(Metric::kParallelRegions);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i]->assign(&team, static_cast<i32>(i) + 1, fn, args);
  }
  // Workers bind themselves at job-take (Worker::loop); the master's
  // placement is applied here, on its own thread.
  team.bind_member(master, 0);
  trace_emit(TraceEv::kImplicitTaskBegin, 0, team.size());
  fn(master.gtid, 0, args);
  team.join_barrier_wait(0);
  trace_emit(TraceEv::kImplicitTaskEnd, 0, team.size());
  team.wait_all_checked_out();
  // All members are out: cancellation state is per-region and dies with it,
  // so the next region on this (possibly hot-cached) team starts clean.
  team.reset_cancellation();
  trace_emit(TraceEv::kParallelEnd, team.size(), team.level());
  if (n > 0) note_active_workers(-n);
}

void dismiss_slot(HotSlot& slot) {
  if (!slot.team) return;
  if (!Pool::instance().shutting_down()) {
    Pool::instance().release(slot.workers);
  }
  slot.workers.clear();
  slot.team.reset();
  slot.level = -1;
  slot.requested = 0;
  slot.bind_sig = 0;
  slot.undersized_reuses = 0;
}

}  // namespace

ThreadState::~ThreadState() {
  for (HotSlot& slot : hot_slots) dismiss_slot(slot);
}

void fork_call(Microtask fn, void** args, const ForkOptions& opts) {
  ThreadState& ts = current_thread();

  i32 want = opts.num_threads > 0      ? opts.num_threads
             : ts.pushed_num_threads > 0 ? ts.pushed_num_threads
                                         : ts.icv.nthreads;
  ts.pushed_num_threads = 0;
  if (want < 1) want = 1;
  if (!opts.if_clause) want = 1;
  if (ts.team->active_level() >= ts.icv.max_active_levels) want = 1;

  // Effective proc_bind: clause (inline option or the ABI's one-shot push)
  // wins over the bind-var list entry for this nesting level.
  BindKind bind = opts.proc_bind;
  if (bind == BindKind::kUnset) bind = ts.pushed_proc_bind;
  ts.pushed_proc_bind = BindKind::kUnset;
  if (bind == BindKind::kUnset) {
    bind = GlobalIcv::instance().bind_at(ts.icv.bind_index);
  }

  // The placement signature keys the hot cache alongside level and request;
  // it is 0 (and placement fully off) when binding is false/unavailable, so
  // unbound programs see the exact pre-affinity fast path.
  const u64 bind_sig =
      binding_sig(bind, ts.icv.part_lo, ts.icv.part_len, ts.place_num, want);

  // The child data environment: ICVs inherited from the encountering thread,
  // with bind-var advanced one nesting level (place-partition fields are
  // overridden per member by Team::bind_member when a plan is active).
  Icv child_icv = ts.icv;
  child_icv.bind_index = ts.icv.bind_index + 1;

  // Hot-team cache probe (DESIGN.md S1.6): per-level, keyed on (parent
  // level, request, binding signature). Any master — including pool workers
  // forking nested teams — caches its recent teams in a few slots, so
  // programs alternating between region shapes stop rebuild-churning.
  const i32 parent_level = ts.team->level();
  const bool cacheable = parent_level < ThreadState::kHotSlots;
  HotSlot* hit = nullptr;
  if (cacheable) {
    for (HotSlot& slot : ts.hot_slots) {
      if (slot.team != nullptr && !slot.in_use &&
          slot.level == parent_level && slot.requested == want &&
          slot.bind_sig == bind_sig) {
        hit = &slot;
        break;
      }
    }
  }

  // A hot team the pool shrank below its request (transient contention at
  // build time) is still reused — but not forever: every Nth undersized
  // reuse rebuilds through the pool so the team grows back once the
  // contention has cleared. Full-size hot teams never pay this.
  constexpr i32 kUndersizedRetryPeriod = 64;
  const bool retry_growth =
      hit != nullptr && hit->team->size() < want &&
      ++hit->undersized_reuses >= kUndersizedRetryPeriod;

  if (hit != nullptr && !retry_growth) {
    // Fast path: matching shape back-to-back — recycle the team in place.
    // Cost: the rearm stores + one doorbell ring per worker; no lock, no
    // pool traffic, no allocation. The binding plan is keyed by bind_sig,
    // so it carries over untouched and bind_member skips the setaffinity
    // syscall on every member (place unchanged).
    metrics_add(Metric::kHotTeamHits);
    const SavedBinding saved = save(ts);
    Team& team = *hit->team;
    team.rearm(child_icv, parent_level + 1,
               saved.team->active_level() + (team.size() > 1 ? 1 : 0));
    // Parent is per-region, not per-cache-entry: a cached team can be
    // re-entered under a different ancestor (nested masters), so refresh it
    // on every fork before the doorbell ring publishes the team.
    team.set_parent(saved.team);
    hit->last_use = ++ts.hot_tick;
    hit->in_use = true;  // nested forks must not evict a running ancestor
    run_region(team, hit->workers, fn, args, ts);
    hit->in_use = false;
    team.checkpoint_master();  // before restore clobbers the master's counters
    restore(ts, saved);
    return;
  }

  // Miss (or forced growth retry): pick the victim slot before acquiring so
  // its workers are back on the idle stack for deterministic reuse. Prefer
  // the slot this fork aliases (same level+request, stale binding or forced
  // retry), then an empty slot, then the least recently used.
  metrics_add(Metric::kHotTeamRebuilds);
  HotSlot* victim = nullptr;
  if (cacheable) {
    for (HotSlot& slot : ts.hot_slots) {
      if (slot.team != nullptr && !slot.in_use &&
          slot.level == parent_level && slot.requested == want) {
        victim = &slot;
        break;
      }
    }
    if (victim == nullptr) {
      for (HotSlot& slot : ts.hot_slots) {
        if (slot.team == nullptr && !slot.in_use) {
          victim = &slot;
          break;
        }
      }
    }
    if (victim == nullptr) {
      // LRU over quiescent slots. At least one exists: live (in_use)
      // ancestors occupy at most parent_level < kHotSlots slots.
      for (HotSlot& slot : ts.hot_slots) {
        if (slot.in_use) continue;
        if (victim == nullptr || slot.last_use < victim->last_use) {
          victim = &slot;
        }
      }
      ZOMP_CHECK(victim != nullptr, "every hot slot is a live ancestor");
    }
    dismiss_slot(*victim);
  }

  std::vector<Worker*> workers;
  if (want > 1) {
    workers = Pool::instance().acquire(want - 1);
    if (static_cast<i32>(workers.size()) < want - 1) {
      // The pool came up short while this thread's other cached teams pin
      // parked workers: cannibalize every quiescent slot and retry the
      // shortfall, so a size change never starves on this thread's own
      // cache (the old single-slot dismiss-on-mismatch behaviour).
      bool dismissed = false;
      for (HotSlot& slot : ts.hot_slots) {
        if (slot.team != nullptr && !slot.in_use) {
          dismiss_slot(slot);
          dismissed = true;
        }
      }
      if (dismissed) {
        const std::vector<Worker*> more = Pool::instance().acquire(
            want - 1 - static_cast<i32>(workers.size()));
        workers.insert(workers.end(), more.begin(), more.end());
      }
    }
  }

  const SavedBinding saved = save(ts);
  // A short acquire (thread limit / contention) shrinks the team: every
  // sizing downstream — barrier, dispatch ring nthreads, reduction tree,
  // implicit task contexts, binding plan — derives from this member list,
  // never from `want`, so there is no dangling member slot.
  const i32 size = static_cast<i32>(workers.size()) + 1;
  const i32 level = parent_level + 1;
  const i32 active = saved.team->active_level() + (size > 1 ? 1 : 0);

  std::vector<ThreadState*> members;
  members.reserve(static_cast<std::size_t>(size));
  members.push_back(&ts);
  for (Worker* w : workers) members.push_back(&w->state());

  auto team = std::make_unique<Team>(std::move(members), child_icv, level,
                                     active);
  team->set_parent(saved.team);  // backs omp_get_team_size(level) queries
  if (bind_sig != 0) {
    team->set_binding(plan_binding(bind, saved.icv.part_lo, saved.icv.part_len,
                                   saved.place_num, size));
  }

  if (cacheable) {
    // Keep the team armed in the victim slot (workers stay bound): the next
    // fork matching (level, request, binding) takes the fast path above.
    victim->team = std::move(team);
    victim->workers = std::move(workers);
    victim->level = parent_level;
    victim->requested = want;
    victim->bind_sig = bind_sig;
    victim->undersized_reuses = 0;
    victim->last_use = ++ts.hot_tick;
    victim->in_use = true;
    run_region(*victim->team, victim->workers, fn, args, ts);
    victim->in_use = false;
    victim->team->checkpoint_master();
    restore(ts, saved);
    return;
  }

  run_region(*team, workers, fn, args, ts);
  team.reset();
  Pool::instance().release(workers);
  restore(ts, saved);
}

void fork_closure(const std::function<void()>& body, const ForkOptions& opts) {
  void* args[1] = {const_cast<void*>(static_cast<const void*>(&body))};
  fork_call(closure_trampoline, args, opts);
}

}  // namespace zomp::rt
