#include "runtime/pool.h"

#include <algorithm>

namespace zomp::rt {

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

Worker::Worker(i32 gtid) {
  state_.gtid = gtid;
  thread_ = std::thread([this] { loop(); });
}

Worker::~Worker() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void Worker::assign(Team* team, i32 tid, Microtask fn, void** args) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ZOMP_CHECK(!job_.has_value(), "worker assigned while busy");
    job_ = Job{team, tid, fn, args};
  }
  cv_.notify_one();
}

void Worker::loop() {
  bind_thread_state(&state_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return job_.has_value() || shutdown_; });
      if (!job_.has_value()) return;  // shutdown with no pending work
      job = *job_;
      job_.reset();
    }
    job.fn(state_.gtid, job.tid, job.args);
    job.team->barrier_wait(job.tid);
    // check_out() is this thread's final access to the team; the master
    // destroys the team only after every member has checked out.
    job.team->check_out();
  }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

std::vector<Worker*> Pool::acquire(i32 want) {
  std::vector<Worker*> out;
  if (want <= 0) return out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(static_cast<std::size_t>(want));
  while (want > 0 && !idle_.empty()) {
    out.push_back(idle_.back());
    idle_.pop_back();
    --want;
  }
  // Master threads count against the limit too, hence the -1.
  const auto limit =
      static_cast<std::size_t>(std::max(0, GlobalIcv::instance().thread_limit() - 1));
  while (want > 0 && all_.size() < limit) {
    all_.push_back(std::make_unique<Worker>(allocate_gtid()));
    out.push_back(all_.back().get());
    --want;
  }
  return out;
}

void Pool::release(const std::vector<Worker*>& workers) {
  if (workers.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Worker* w : workers) idle_.push_back(w);
}

i32 Pool::spawned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<i32>(all_.size());
}

// ---------------------------------------------------------------------------
// fork
// ---------------------------------------------------------------------------

namespace {

struct SavedBinding {
  Team* team;
  i32 tid;
  Icv icv;
  u64 ws_seq;
  u64 single_seq;
  u64 red_seq;
  MemberDispatch dispatch;
  TaskContext* current_task;
};

SavedBinding save(const ThreadState& ts) {
  return SavedBinding{ts.team,       ts.tid,     ts.icv,
                      ts.ws_seq,     ts.single_seq, ts.red_seq,
                      ts.dispatch,   ts.current_task};
}

void restore(ThreadState& ts, const SavedBinding& s) {
  ts.team = s.team;
  ts.tid = s.tid;
  ts.icv = s.icv;
  ts.ws_seq = s.ws_seq;
  ts.single_seq = s.single_seq;
  // The reduction sequence keys the ReductionTree rendezvous (slot tokens,
  // reuse gate, broadcast parity); a nested fork's Team ctor zeroed it, and
  // resuming the outer region with a rewound sequence would match stale
  // tokens (wrong partials) or spin on tokens never published (deadlock).
  ts.red_seq = s.red_seq;
  ts.dispatch = s.dispatch;
  ts.current_task = s.current_task;
}

void closure_trampoline(i32 /*gtid*/, i32 /*tid*/, void** args) {
  const auto* body = static_cast<const std::function<void()>*>(args[0]);
  (*body)();
}

}  // namespace

void fork_call(Microtask fn, void** args, const ForkOptions& opts) {
  ThreadState& ts = current_thread();

  i32 want = opts.num_threads > 0      ? opts.num_threads
             : ts.pushed_num_threads > 0 ? ts.pushed_num_threads
                                         : ts.icv.nthreads;
  ts.pushed_num_threads = 0;
  if (want < 1) want = 1;
  if (!opts.if_clause) want = 1;
  if (ts.team->active_level() >= ts.icv.max_active_levels) want = 1;

  std::vector<Worker*> workers;
  if (want > 1) workers = Pool::instance().acquire(want - 1);

  const SavedBinding saved = save(ts);
  const i32 size = static_cast<i32>(workers.size()) + 1;
  const i32 level = saved.team->level() + 1;
  const i32 active = saved.team->active_level() + (size > 1 ? 1 : 0);

  std::vector<ThreadState*> members;
  members.reserve(static_cast<std::size_t>(size));
  members.push_back(&ts);
  for (Worker* w : workers) members.push_back(&w->state());

  {
    Team team(std::move(members), saved.icv, level, active);
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i]->assign(&team, static_cast<i32>(i) + 1, fn, args);
    }
    fn(ts.gtid, 0, args);
    team.barrier_wait(0);
    team.wait_all_checked_out();
  }
  Pool::instance().release(workers);
  restore(ts, saved);
}

void fork_closure(const std::function<void()>& body, const ForkOptions& opts) {
  void* args[1] = {const_cast<void*>(static_cast<const void*>(&body))};
  fork_call(closure_trampoline, args, opts);
}

}  // namespace zomp::rt
