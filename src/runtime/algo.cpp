// zomp::algo kernels — the type-erased orchestration behind algo.h
// (DESIGN.md S11). Every kernel forks its own region, runs a fixed sequence
// of phases on the team's PhaseSync (team.h), and joins; the region's join
// barrier is what makes phase-slot reuse safe across calls (barrier.h).
//
// Cancellation: phase waits poll the team's cancel word (they return false
// when `cancel parallel` is pending), and a member that loses a wait — or
// observes a neighbour lost one — simply stops contributing and runs to the
// region join, mirroring the PR 8 barrier-abandonment protocol. A cancelled
// call leaves the output unspecified, like any cancelled OpenMP construct.

#include "runtime/algo.h"

#include <cstdint>

#include "runtime/api.h"

namespace zomp::algo::detail {

namespace {

using rt::i32;
using rt::i64;
using rt::u64;

/// Width the fork below would request: explicit > 0 wins, else the ICV
/// default (omp_get_max_threads). Scratch matrices are sized for this
/// request; a fault-shrunken team delivers fewer members and simply leaves
/// the tail rows untouched.
i32 resolve_width(i32 num_threads) {
  const i32 w = num_threads > 0 ? num_threads : zomp::max_threads();
  return w < 1 ? 1 : w;
}

/// Member visit order for contiguous output-range assignment: members of the
/// same place shard come out adjacent (shard_map order, worksharing.h), so
/// the ranges handed to co-located members abut — the NUMA argument in
/// DESIGN.md S11. Falls back to tid order for unbound teams.
std::vector<i32> place_order(const rt::ShardMap& sm, i32 w) {
  std::vector<i32> order;
  order.reserve(static_cast<std::size_t>(w));
  for (const std::vector<i32>& members : sm.shard_members) {
    for (const i32 tid : members) {
      if (tid < w) order.push_back(tid);
    }
  }
  if (static_cast<i32>(order.size()) != w) {
    order.resize(static_cast<std::size_t>(w));
    for (i32 t = 0; t < w; ++t) order[static_cast<std::size_t>(t)] = t;
  }
  return order;
}

}  // namespace

// ---------------------------------------------------------------------------
// Decoupled scan
// ---------------------------------------------------------------------------
//
// Phase diagram (one phase number `s`, directed waits — member t only ever
// waits on member t-1, so the prefix chain pipelines down the team while
// later members are still reducing):
//
//   member t:  block_sum(slice t)                       (local)
//              await(t-1, s)  -> prefix P_t             (t > 0)
//              publish(t, s, P_t ⊕ sum_t)               (P_{t+1} for t+1)
//              block_scan(slice t, carry = P_t)         (local)
//
// The payload is [elem_bytes value][1 byte has-flag]; the flag carries the
// "no prefix yet" state of an init-less inclusive scan past empty slices.

void scan_run(i64 n, const void* init, const ScanOps& ops,
              const Options& opts) {
  if (n <= 0) return;
  const std::size_t eb = ops.elem_bytes;
  ZOMP_CHECK(eb + 1 <= rt::PhaseSync::kSlotBytes,
             "scan element exceeds the inline phase payload");
  const i32 req = resolve_width(opts.num_threads);
  if (req == 1 || n < opts.serial_cutoff) {
    ops.block_scan(ops.ctx, 0, n, init);
    return;
  }
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        const i32 w = team.size();
        const i32 t = ts.tid;
        const rt::StaticRange r = rt::static_block_range(0, n, t, w);

        unsigned char sum[rt::PhaseSync::kSlotBytes];
        const bool have_sum = r.hi > r.lo;
        if (have_sum) ops.block_sum(ops.ctx, r.lo, r.hi, sum);

        const u64 seq = team.phase_next(ts);
        unsigned char prefix[rt::PhaseSync::kSlotBytes];
        bool has_prefix;
        if (t == 0) {
          has_prefix = init != nullptr;
          if (has_prefix) std::memcpy(prefix, init, eb);
        } else {
          if (!team.phase_await(t - 1, seq, prefix, eb + 1)) return;
          has_prefix = prefix[eb] != 0;
        }

        // Publish this member's inclusive prefix before scanning: the chain
        // is the critical path, the local scan is not.
        unsigned char mine[rt::PhaseSync::kSlotBytes] = {};
        if (have_sum && has_prefix) {
          std::memcpy(mine, prefix, eb);
          ops.combine(ops.ctx, mine, sum);
        } else if (have_sum) {
          std::memcpy(mine, sum, eb);
        } else if (has_prefix) {
          std::memcpy(mine, prefix, eb);
        }
        mine[eb] = (have_sum || has_prefix) ? 1 : 0;
        team.phase_publish(ts, seq, mine, eb + 1);

        if (have_sum) {
          ops.block_scan(ops.ctx, r.lo, r.hi, has_prefix ? prefix : nullptr);
        }
      },
      ParallelOptions{opts.num_threads});
}

// ---------------------------------------------------------------------------
// Counting sort
// ---------------------------------------------------------------------------
//
// Phases: (s1) per-member bucket counts -> (s2) member 0 rewrites the count
// matrix into per-(member, bucket) start offsets with one bucket-major
// running sum — start order (bucket, member tid, slice index) is exactly the
// stability order — -> (s3) stable scatter into tmp -> parallel copy-back.

void counting_sort_run(i64 n, i64 nbuckets, const CountingOps& ops,
                       const Options& opts) {
  if (n <= 0) return;
  ZOMP_CHECK(nbuckets >= 1, "counting sort needs at least one bucket");
  std::vector<unsigned char> tmp(static_cast<std::size_t>(n) *
                                 ops.elem_bytes);
  const i32 req = resolve_width(opts.num_threads);
  if (req == 1 || n < opts.serial_cutoff) {
    std::vector<i64> counts(static_cast<std::size_t>(nbuckets), 0);
    ops.count(ops.ctx, 0, n, counts.data());
    i64 run = 0;
    for (i64 b = 0; b < nbuckets; ++b) {
      const i64 c = counts[static_cast<std::size_t>(b)];
      counts[static_cast<std::size_t>(b)] = run;
      run += c;
    }
    ops.scatter(ops.ctx, 0, n, counts.data(), tmp.data());
    ops.copy_back(ops.ctx, 0, n, tmp.data());
    return;
  }
  std::vector<i64> counts(static_cast<std::size_t>(req) *
                          static_cast<std::size_t>(nbuckets));
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        const i32 w = team.size();
        const i32 t = ts.tid;
        const rt::StaticRange r = rt::static_block_range(0, n, t, w);
        i64* row = counts.data() +
                   static_cast<std::size_t>(t) * static_cast<std::size_t>(nbuckets);
        std::fill(row, row + nbuckets, i64{0});
        if (r.hi > r.lo) ops.count(ops.ctx, r.lo, r.hi, row);

        const u64 s1 = team.phase_next(ts);
        team.phase_publish(ts, s1);
        const u64 s2 = team.phase_next(ts);
        if (t == 0) {
          if (!team.phase_await_all(s1)) return;
          i64 run = 0;
          for (i64 b = 0; b < nbuckets; ++b) {
            for (i32 m = 0; m < w; ++m) {
              i64& cell = counts[static_cast<std::size_t>(m) *
                                     static_cast<std::size_t>(nbuckets) +
                                 static_cast<std::size_t>(b)];
              const i64 c = cell;
              cell = run;
              run += c;
            }
          }
          team.phase_publish(ts, s2);
        } else {
          team.phase_publish(ts, s2);
          if (!team.phase_await(0, s2)) return;
        }

        // Scatter advances a private copy of the offsets; the shared matrix
        // stays read-only from here.
        std::vector<i64> offsets(row, row + nbuckets);
        if (r.hi > r.lo) {
          ops.scatter(ops.ctx, r.lo, r.hi, offsets.data(), tmp.data());
        }
        const u64 s3 = team.phase_next(ts);
        team.phase_publish(ts, s3);
        if (!team.phase_await_all(s3)) return;
        if (r.hi > r.lo) ops.copy_back(ops.ctx, r.lo, r.hi, tmp.data());
      },
      ParallelOptions{opts.num_threads});
}

// ---------------------------------------------------------------------------
// Radix sort
// ---------------------------------------------------------------------------
//
// MSD-first: one parallel stable partition on the top byte puts every key
// into its final 1/256th of the array; after that, buckets are sorted
// independently — so they are handed out as CONTIGUOUS ranges, place-aware
// (place_order above), and every remaining pass is member-local: the LSD
// passes over the low key bytes never touch another member's range. That is
// the NUMA/writeback story: cross-member traffic happens exactly once, in
// the MSD scatter, and each member's later passes stay in ranges it wrote.

namespace {

/// Sorts tmp[lo, hi) — one MSD bucket, top digit constant — into keys[lo,
/// hi) by the remaining low bytes. Small buckets take a comparison sort
/// straight into place; larger ones run sizeof(K)-1 LSD passes ping-ponging
/// tmp <-> keys (an odd pass count, so the last pass lands in keys).
template <typename K>
void sort_bucket(K* keys, K* tmp, i64 lo, i64 hi, K mask) {
  constexpr i32 kLocalPasses = static_cast<i32>(sizeof(K)) - 1;
  const i64 len = hi - lo;
  if (len <= 0) return;
  constexpr i64 kComparisonCutoff = 64;
  if (kLocalPasses == 0 || len <= kComparisonCutoff) {
    std::memcpy(keys + lo, tmp + lo, static_cast<std::size_t>(len) * sizeof(K));
    std::sort(keys + lo, keys + hi,
              [mask](K a, K b) { return (a ^ mask) < (b ^ mask); });
    return;
  }
  K* src = tmp;
  K* dst = keys;
  for (i32 pass = 0; pass < kLocalPasses; ++pass) {
    const i32 shift = pass * 8;
    i64 cnt[256] = {0};
    for (i64 i = lo; i < hi; ++i) ++cnt[(src[i] >> shift) & 0xFF];
    i64 run = lo;
    for (i32 d = 0; d < 256; ++d) {
      const i64 c = cnt[d];
      cnt[d] = run;
      run += c;
    }
    for (i64 i = lo; i < hi; ++i) dst[cnt[(src[i] >> shift) & 0xFF]++] = src[i];
    std::swap(src, dst);
  }
  // kLocalPasses is odd for every multi-byte K, so the data is in `keys`.
}

template <typename K>
void radix_impl(K* keys, i64 n, K mask, const Options& opts) {
  constexpr i32 kBuckets = 256;
  constexpr i32 kTopShift = (static_cast<i32>(sizeof(K)) - 1) * 8;
  const i32 req = resolve_width(opts.num_threads);
  if (req == 1 || n < opts.serial_cutoff) {
    std::sort(keys, keys + n,
              [mask](K a, K b) { return (a ^ mask) < (b ^ mask); });
    return;
  }
  std::vector<K> tmp(static_cast<std::size_t>(n));
  std::vector<i64> hist(static_cast<std::size_t>(req) * kBuckets);
  std::vector<i64> bucket_start(kBuckets + 1);
  std::vector<i32> bucket_lo(static_cast<std::size_t>(req));
  std::vector<i32> bucket_hi(static_cast<std::size_t>(req));
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        const i32 w = team.size();
        const i32 t = ts.tid;
        const rt::StaticRange r = rt::static_block_range(0, n, t, w);

        // Phase 1: per-member top-digit histogram of its slice.
        i64* row = hist.data() + static_cast<std::size_t>(t) * kBuckets;
        std::fill(row, row + kBuckets, i64{0});
        for (i64 i = r.lo; i < r.hi; ++i) {
          ++row[static_cast<K>(keys[i] ^ mask) >> kTopShift];
        }
        const u64 s1 = team.phase_next(ts);
        team.phase_publish(ts, s1);

        // Phase 2: member 0 turns the matrix into scatter offsets (column
        // order (bucket, member) = the stable order) and deals buckets out
        // as contiguous ranges, one per member, in place order, each aiming
        // at ~n/w elements.
        const u64 s2 = team.phase_next(ts);
        if (t == 0) {
          if (!team.phase_await_all(s1)) return;
          i64 run = 0;
          for (i32 b = 0; b < kBuckets; ++b) {
            bucket_start[static_cast<std::size_t>(b)] = run;
            for (i32 m = 0; m < w; ++m) {
              i64& cell = hist[static_cast<std::size_t>(m) * kBuckets +
                               static_cast<std::size_t>(b)];
              const i64 c = cell;
              cell = run;
              run += c;
            }
          }
          bucket_start[kBuckets] = n;
          const std::vector<i32> order = place_order(team.shard_map(), w);
          i32 b = 0;
          for (i32 j = 0; j < w; ++j) {
            const i32 range_lo = b;
            if (j + 1 == w) {
              b = kBuckets;
            } else {
              const i64 target = (j + 1) * n / w;
              while (b < kBuckets &&
                     bucket_start[static_cast<std::size_t>(b) + 1] <= target) {
                ++b;
              }
            }
            bucket_lo[static_cast<std::size_t>(order[static_cast<std::size_t>(j)])] = range_lo;
            bucket_hi[static_cast<std::size_t>(order[static_cast<std::size_t>(j)])] = b;
          }
          team.phase_publish(ts, s2);
        } else {
          team.phase_publish(ts, s2);
          if (!team.phase_await(0, s2)) return;
        }

        // Phase 3: stable scatter of this member's slice into tmp.
        i64 off[kBuckets];
        std::memcpy(off, row, sizeof(off));
        for (i64 i = r.lo; i < r.hi; ++i) {
          const K k = keys[i];
          tmp[static_cast<std::size_t>(
              off[static_cast<K>(k ^ mask) >> kTopShift]++)] = k;
        }
        const u64 s3 = team.phase_next(ts);
        team.phase_publish(ts, s3);
        if (!team.phase_await_all(s3)) return;

        // Phase 4 (member-local): finish the owned buckets by the low bytes.
        for (i32 b = bucket_lo[static_cast<std::size_t>(t)];
             b < bucket_hi[static_cast<std::size_t>(t)]; ++b) {
          sort_bucket(keys, tmp.data(), bucket_start[static_cast<std::size_t>(b)],
                      bucket_start[static_cast<std::size_t>(b) + 1], mask);
        }
      },
      ParallelOptions{opts.num_threads});
}

}  // namespace

void radix_sort_run(void* keys, i64 n, std::size_t key_bytes, u64 xor_mask,
                    const Options& opts) {
  if (n <= 0) return;
  switch (key_bytes) {
    case 1:
      radix_impl(static_cast<std::uint8_t*>(keys), n,
                 static_cast<std::uint8_t>(xor_mask), opts);
      break;
    case 2:
      radix_impl(static_cast<std::uint16_t*>(keys), n,
                 static_cast<std::uint16_t>(xor_mask), opts);
      break;
    case 4:
      radix_impl(static_cast<rt::u32*>(keys), n, static_cast<rt::u32>(xor_mask),
                 opts);
      break;
    case 8:
      radix_impl(static_cast<u64*>(keys), n, xor_mask, opts);
      break;
    default:
      ZOMP_CHECK(false, "radix sort supports 1/2/4/8-byte keys");
  }
}

// ---------------------------------------------------------------------------
// Top-k
// ---------------------------------------------------------------------------

i64 top_k_run(i64 n, i64 k, const TopKOps& ops, void* result,
              const Options& opts) {
  if (n <= 0 || k <= 0) return 0;
  const i32 req = resolve_width(opts.num_threads);
  if (req == 1 || n < opts.serial_cutoff) {
    return ops.local_topk(ops.ctx, 0, n, result);
  }
  // Row r of the candidate matrix belongs to member r; the join barrier
  // publishes every row, so the merge needs no phase traffic.
  std::vector<unsigned char> cand(static_cast<std::size_t>(req) *
                                  static_cast<std::size_t>(k) *
                                  ops.elem_bytes);
  std::vector<i64> counts(static_cast<std::size_t>(req), 0);
  zomp::parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        const rt::StaticRange r =
            rt::static_block_range(0, n, ts.tid, team.size());
        if (r.hi > r.lo) {
          counts[static_cast<std::size_t>(ts.tid)] = ops.local_topk(
              ops.ctx, r.lo, r.hi,
              cand.data() + static_cast<std::size_t>(ts.tid) *
                                static_cast<std::size_t>(k) * ops.elem_bytes);
        }
      },
      ParallelOptions{opts.num_threads});
  return ops.merge(ops.ctx, cand.data(), counts.data(), req, k, result);
}

}  // namespace zomp::algo::detail
