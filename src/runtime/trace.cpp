// Tool-callback dispatch + per-thread trace rings (DESIGN.md S12).
//
// Everything mutable here lives in a heap-leaked magic static (the fault.cpp
// pattern): rings and the callback table must outlive static destructors so
// the atexit flush — and any tool still installed — can run after the pool's
// own teardown has joined the workers.

#include "runtime/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/abi.h"
#include "runtime/env.h"
#include "runtime/team.h"

namespace zomp::rt {
namespace trace_detail {

std::atomic<u32> g_active{0};

}  // namespace trace_detail

namespace {

using trace_detail::g_active;
using trace_detail::kActiveCallbacks;
using trace_detail::kActiveRing;

/// 64Ki records/thread (~2.5 MiB at 8 threads) rides out a class-S NPB run
/// without drops; overflow is counted, not wrapped, so the serialized trace
/// is always a deterministic prefix.
constexpr i64 kDefaultRingCapacity = 64 * 1024;

/// Raw timestamp: TSC where we have it (one instruction, core-synchronized
/// on every x86 this runtime targets), steady_clock nanoseconds elsewhere.
/// Calibration against steady_clock at serialize time converts either to
/// microseconds for the Chrome "ts" field.
u64 trace_clock_raw() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

struct TraceRecord {
  u64 stamp;  ///< trace_clock_raw() at emit
  i64 arg0;
  i64 arg1;
  i32 ev;     ///< TraceEv value
  i32 tid;    ///< id within the emitting thread's innermost team
  i32 place;  ///< place_num at emit (-1 = unbound)
};

/// One ring per emitting thread, owned for that thread's whole lifetime.
/// `count` is the publication frontier: the owner stores the record with
/// plain writes, then release-stores count+1; drains acquire `count` and
/// read only that prefix. A full ring bumps `dropped` instead of wrapping.
struct TraceRing {
  TraceRing(i32 gtid_in, i64 capacity_in)
      : gtid(gtid_in),
        capacity(capacity_in),
        records(new TraceRecord[static_cast<size_t>(capacity_in)]) {}

  void append(const TraceRecord& rec) noexcept {
    const u64 n = count.load(std::memory_order_relaxed);
    if (static_cast<i64>(n) >= capacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    records[n] = rec;
    count.store(n + 1, std::memory_order_release);
  }

  const i32 gtid;
  const i64 capacity;
  std::unique_ptr<TraceRecord[]> records;
  alignas(kCacheLine) std::atomic<u64> count{0};
  std::atomic<u64> dropped{0};
};

struct TraceState {
  /// Guards ring registration, the callback table, path/capacity config,
  /// and g_active recomputation. Never taken on the emit path once a thread
  /// owns its ring.
  std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;
  i64 ring_capacity = kDefaultRingCapacity;
  std::string path;
  bool atexit_registered = false;

  std::atomic<zomp_tool_callback_t> callbacks[static_cast<i32>(
      TraceEv::kCount)] = {};
  std::atomic<void*> tool_data{nullptr};

  /// Calibration anchor, taken once at first use: raw clock and
  /// steady_clock sampled back to back. A second pair at serialize time
  /// yields ticks-per-nanosecond.
  u64 base_raw = 0;
  i64 base_ns = 0;

  TraceState() {
    base_raw = trace_clock_raw();
    base_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
  }
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: see file comment
  return *s;
}

/// Owner-thread shortcut to its ring. The pointee is owned by the leaked
/// registry, never freed, so a pool thread outliving a test reset keeps a
/// valid pointer.
thread_local TraceRing* tls_ring = nullptr;

TraceRing* register_ring(i32 gtid) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.rings.push_back(std::make_unique<TraceRing>(gtid, s.ring_capacity));
  tls_ring = s.rings.back().get();
  return tls_ring;
}

/// Recompute g_active's callback bit from the table. Caller holds s.mu.
void refresh_active_locked(TraceState& s, bool ring_on) {
  u32 active = ring_on ? kActiveRing : 0u;
  for (const auto& cb : s.callbacks) {
    if (cb.load(std::memory_order_relaxed) != nullptr) {
      active |= kActiveCallbacks;
      break;
    }
  }
  g_active.store(active, std::memory_order_release);
}

void atexit_flush() { (void)zomp::trace_flush(); }

/// Chrome trace-event rendering per TraceEv: duration pairs ('B'/'E') for
/// the region-shaped events, thread-scoped instants ('i') for the rest.
struct EvDesc {
  const char* name;
  char ph;
};

const EvDesc& ev_desc(i32 ev) {
  static const EvDesc kTable[static_cast<i32>(TraceEv::kCount)] = {
      {"parallel", 'B'},       {"parallel", 'E'},
      {"implicit task", 'B'},  {"implicit task", 'E'},
      {"dispatch init", 'i'},  {"chunk claim", 'i'},
      {"barrier", 'B'},        {"barrier", 'E'},
      {"task create", 'i'},    {"task", 'B'},
      {"task", 'E'},           {"steal attempt", 'i'},
      {"steal success", 'i'},  {"cancel", 'i'},
      {"fault", 'i'},
  };
  static const EvDesc kUnknown = {"unknown", 'i'};
  if (ev < 0 || ev >= static_cast<i32>(TraceEv::kCount)) return kUnknown;
  return kTable[ev];
}

}  // namespace

namespace trace_detail {

void emit_slow(TraceEv ev, i64 arg0, i64 arg1) noexcept {
  // A tool callback may call back into the runtime; suppress the nested
  // emissions so a naive tool cannot recurse the hook sites.
  static thread_local bool in_emit = false;
  if (in_emit) return;
  in_emit = true;

  const u32 active = g_active.load(std::memory_order_acquire);
  ThreadState& ts = current_thread();

  if ((active & kActiveRing) != 0) {
    TraceRing* ring = tls_ring;
    if (ring == nullptr) ring = register_ring(ts.gtid);
    TraceRecord rec;
    rec.stamp = trace_clock_raw();
    rec.arg0 = arg0;
    rec.arg1 = arg1;
    rec.ev = static_cast<i32>(ev);
    rec.tid = ts.tid;
    rec.place = ts.place_num;
    ring->append(rec);
  }

  if ((active & kActiveCallbacks) != 0) {
    TraceState& s = state();
    zomp_tool_callback_t cb =
        s.callbacks[static_cast<i32>(ev)].load(std::memory_order_acquire);
    if (cb != nullptr) {
      cb(static_cast<i32>(ev), ts.gtid, ts.tid, arg0, arg1,
         s.tool_data.load(std::memory_order_relaxed));
    }
  }

  in_emit = false;
}

}  // namespace trace_detail

void trace_init_from_env() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::optional<std::string> raw = env_string("TRACE");
  if (!raw.has_value()) return;
  if (raw->empty()) {
    warn_malformed_env("TRACE", "", "expected an output file path");
    return;
  }
  s.path = *raw;
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(atexit_flush);
  }
  refresh_active_locked(s, /*ring_on=*/true);
}

std::string trace_serialize_json() {
  TraceState& s = state();

  // Re-calibrate: the tick rate is (raw delta) / (steady delta) since the
  // construction anchor. Guard the degenerate window (serialize right after
  // init) with a 1 tick/ns fallback, which is exact for the steady_clock
  // backend anyway.
  const u64 now_raw = trace_clock_raw();
  const i64 now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  double ticks_per_ns = 1.0;
  if (now_raw > s.base_raw && now_ns > s.base_ns) {
    ticks_per_ns = static_cast<double>(now_raw - s.base_raw) /
                   static_cast<double>(now_ns - s.base_ns);
  }

  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  auto push = [&](const char* text) {
    if (!first) out += ',';
    first = false;
    out += text;
  };

  std::lock_guard<std::mutex> lock(s.mu);

  // Lane metadata. pid = place + 1 (so unbound -1 maps to lane 0),
  // tid = gtid. A thread that migrates places mid-trace contributes to
  // several pid lanes; pairing is still per-gtid.
  std::map<i32, bool> pids_named;
  for (const auto& ring : s.rings) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    i32 last_place = -2;
    for (u64 i = 0; i < n; ++i) {
      const i32 place = ring->records[i].place;
      if (place == last_place) continue;
      last_place = place;
      const i32 pid = place + 1;
      if (!pids_named[pid]) {
        pids_named[pid] = true;
        char pname[32];
        if (place < 0) {
          std::snprintf(pname, sizeof(pname), "place (unbound)");
        } else {
          std::snprintf(pname, sizeof(pname), "place %d", place);
        }
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                      "\"args\":{\"name\":\"%s\"}}",
                      pid, pname);
        push(buf);
      }
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"name\":\"gtid %d (dropped %" PRIu64 ")\"}}",
          pid, ring->gtid, ring->gtid,
          ring->dropped.load(std::memory_order_relaxed));
      push(buf);
    }
  }

  for (const auto& ring : s.rings) {
    const u64 n = ring->count.load(std::memory_order_acquire);
    for (u64 i = 0; i < n; ++i) {
      const TraceRecord& rec = ring->records[i];
      const EvDesc& desc = ev_desc(rec.ev);
      const double ts_us = rec.stamp >= s.base_raw
                               ? static_cast<double>(rec.stamp - s.base_raw) /
                                     ticks_per_ns / 1000.0
                               : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,"
                    "\"pid\":%d,\"tid\":%d,\"args\":{\"a0\":%" PRId64
                    ",\"a1\":%" PRId64 ",\"tid\":%d}}",
                    desc.name, desc.ph, ts_us, rec.place + 1, ring->gtid,
                    rec.arg0, rec.arg1, rec.tid);
      push(buf);
    }
  }

  out += "]}";
  return out;
}

bool trace_write_json(const std::string& path) {
  const std::string json = trace_serialize_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "zomp: cannot open trace output '%s'\n",
                 path.c_str());
    return false;
  }
  const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = wrote == json.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "zomp: short write to '%s'\n", path.c_str());
  return ok;
}

std::string trace_output_path() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

u64 trace_dropped_total() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  u64 total = 0;
  for (const auto& ring : s.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void trace_enable_ring_for_test() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  refresh_active_locked(s, /*ring_on=*/true);
}

void trace_set_ring_capacity_for_test(i64 records) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.ring_capacity = records > 0 ? records : kDefaultRingCapacity;
}

void trace_reset_for_test() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Rings are emptied, not destroyed: pool threads keep their tls pointers.
  for (const auto& ring : s.rings) {
    ring->count.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  s.ring_capacity = kDefaultRingCapacity;
  s.path.clear();
  refresh_active_locked(s, /*ring_on=*/false);
}

}  // namespace zomp::rt

// ---------------------------------------------------------------------------
// Tool ABI (abi.h): callback registration + the ring flush entry point.
// ---------------------------------------------------------------------------

namespace {

using zomp::rt::TraceEv;

bool valid_event(std::int32_t event) {
  return event >= 0 && event < static_cast<std::int32_t>(TraceEv::kCount);
}

}  // namespace

// These definitions live here (not abi.cpp) because they share TraceState
// with the emit path; abi.h carries the extern "C" declarations and the
// contract, and the definitions inherit that linkage.
std::int32_t zomp_start_tool(zomp_tool_initializer_t initializer,
                             void* tool_data) {
  zomp::rt::state().tool_data.store(tool_data, std::memory_order_relaxed);
  if (initializer == nullptr) return 1;
  return initializer(tool_data) != 0 ? 1 : 0;
}

std::int32_t zomp_set_callback(std::int32_t event, zomp_tool_callback_t cb) {
  if (!valid_event(event)) return 0;
  zomp::rt::TraceState& s = zomp::rt::state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.callbacks[event].store(cb, std::memory_order_release);
  zomp::rt::refresh_active_locked(
      s, (zomp::rt::trace_detail::g_active.load(std::memory_order_relaxed) &
          zomp::rt::trace_detail::kActiveRing) != 0);
  return 1;
}

zomp_tool_callback_t zomp_get_callback(std::int32_t event) {
  if (!valid_event(event)) return nullptr;
  return zomp::rt::state().callbacks[event].load(std::memory_order_acquire);
}

namespace zomp {

bool trace_flush() {
  const std::string path = rt::trace_output_path();
  if (path.empty()) return false;
  return rt::trace_write_json(path);
}

}  // namespace zomp
