// Mutual-exclusion constructs: critical sections (named and unnamed) and the
// atomic-update helpers generated code calls for `omp atomic` on types with
// no native std::atomic support path.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/common.h"
#include "runtime/lock.h"

namespace zomp::rt {

/// Process-wide registry of named critical sections. OpenMP gives all
/// unnamed critical constructs one shared identity; named ones get a mutex
/// per distinct name across the whole program, not per team.
class CriticalRegistry {
 public:
  static CriticalRegistry& instance();

  /// Returns the lock for `name` (empty string = the unnamed critical).
  /// The pointer is stable for the process lifetime, so call sites may cache
  /// it (generated code does).
  Lock* get(const std::string& name);

 private:
  CriticalRegistry() = default;

  std::mutex mutex_;
  // Pointer stability across rehash is required; node-based map suffices.
  std::unordered_map<std::string, std::unique_ptr<Lock>> locks_;
};

void critical_enter(const std::string& name);
void critical_exit(const std::string& name);

}  // namespace zomp::rt
