// Explicit tasking (OpenMP `task`, `taskwait`, `taskgroup`).
//
// The paper lists tasking as future work for the Zig port; we implement it as
// the documented extension so the runtime covers the OpenMP feature families
// a downstream user expects. Scheduling model (DESIGN.md S1): one bounded
// lock-free work-stealing deque per team member — the owner pushes and pops
// its back end LIFO with plain release/acquire atomics, thieves take the
// front end FIFO with a CAS — plus a team-wide outstanding-task count that
// the task-aware barrier drains, and parent/child counting for `taskwait`
// with group counting for `taskgroup`.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

struct TaskGroup {
  std::atomic<i64> active{0};
  TaskGroup* parent = nullptr;
};

/// Execution context shared by implicit tasks (one per team member) and
/// explicit tasks. Tracks outstanding children for taskwait and the
/// innermost live taskgroup.
struct TaskContext {
  std::atomic<i64> children{0};
  TaskGroup* group = nullptr;
};

struct Task {
  std::function<void()> body;
  TaskContext ctx;           ///< context for code running inside this task
  TaskContext* parent = nullptr;
  TaskGroup* group = nullptr;
};

/// Bounded lock-free work-stealing deque (Chase–Lev, in the fence-free
/// formulation of Lê et al. 2013 with the standalone fences strengthened to
/// seq_cst accesses so ThreadSanitizer can reason about the algorithm).
///
/// Single owner, many thieves. The owner pushes/pops `bottom` (LIFO); thieves
/// race on `top` with a CAS (FIFO). Slots are atomic pointers: a stale thief
/// may read a slot the owner is simultaneously recycling, but it then always
/// fails its CAS and discards the value, so the race is benign and — because
/// the slot itself is atomic — well-defined.
///
/// Memory-ordering notes (DESIGN.md S1):
///  * push: slot store may be relaxed; the release store of `bottom`
///    publishes it to any thief that acquires `bottom` afterwards.
///  * pop: the decremented `bottom` must be globally visible before reading
///    `top` (the classic SC store→load edge), hence seq_cst on both.
///  * steal: `top` read / `bottom` read need the mirror-image SC edge, and
///    the CAS on `top` decides the owner-vs-thief race for the last element.
class WorkStealingDeque {
 public:
  /// Capacity is fixed (bounded deque): overflow is handled by the caller
  /// executing the task inline, the same safety valve libomp uses when its
  /// task queue fills. 1024 tasks × 8 bytes = 8 KiB per member.
  static constexpr i64 kCapacity = 1024;

  /// Owner only. False when the deque is full (caller runs the task inline).
  bool push(Task* task) {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_.load(std::memory_order_acquire);
    if (b - t >= kCapacity) return false;
    slots_[static_cast<std::size_t>(b & kMask)].store(
        task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO: newest task, for locality. Null when empty.
  Task* pop() {
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    i64 t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was empty; undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task =
        slots_[static_cast<std::size_t>(b & kMask)].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via `top`.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. FIFO: oldest task, maximising the stolen subtree. Null when
  /// empty or when the CAS race is lost (caller just tries the next victim).
  Task* steal() {
    i64 t = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task =
        slots_[static_cast<std::size_t>(t & kMask)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return task;
  }

  /// Racy size estimate, only used to skip obviously-empty victims.
  bool maybe_empty() const {
    return top_.load(std::memory_order_relaxed) >=
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr i64 kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  alignas(kCacheLine) std::atomic<i64> top_{0};
  alignas(kCacheLine) std::atomic<i64> bottom_{0};
  std::array<std::atomic<Task*>, kCapacity> slots_{};
};

/// Per-team task queues: one work-stealing deque per member.
class TaskPool {
 public:
  explicit TaskPool(i32 members);

  /// Drains and frees any tasks still parked in the deques (the slots hold
  /// raw pointers, so teardown must reclaim them explicitly).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` on member `tid`'s deque. Caller has already linked the
  /// task into its parent/group counts. Returns null on success; returns the
  /// task back when the bounded deque is full, in which case the caller MUST
  /// execute it inline (without touching the outstanding count) — dropping
  /// the rejected task would strand its parent/group counters forever.
  [[nodiscard]] std::unique_ptr<Task> push(i32 tid, std::unique_ptr<Task> task);

  /// Pops from `tid`'s own deque (LIFO), or steals FIFO from a sibling.
  /// Returns nullptr if no task is available right now.
  std::unique_ptr<Task> take(i32 tid);

  /// Tasks queued but not yet finished executing.
  i64 outstanding() const { return outstanding_.load(std::memory_order_acquire); }

  /// Called by the executor once a queued task's body has fully completed.
  void mark_finished() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  // Each deque heap-allocated so neighbouring members' hot words never share
  // a line regardless of vector layout.
  std::vector<std::unique_ptr<WorkStealingDeque>> queues_;
  alignas(kCacheLine) std::atomic<i64> outstanding_{0};
};

}  // namespace zomp::rt
