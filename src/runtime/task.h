// Explicit tasking (OpenMP `task` with `depend`, `taskwait`, `taskgroup`,
// `taskloop`).
//
// The paper lists tasking as future work for the Zig port; we implement it as
// the documented extension so the runtime covers the OpenMP feature families
// a downstream user expects. Scheduling model (DESIGN.md S1.3/S1.7): one
// bounded lock-free work-stealing deque per team member — the owner pushes
// and pops its back end LIFO with plain release/acquire atomics, thieves take
// the front end FIFO with a CAS — plus a team-wide outstanding-task count
// that the task-aware barrier drains, and parent/child counting for
// `taskwait` with group counting for `taskgroup`.
//
// Dependence layer (DESIGN.md S1.7): tasks created with `depend(in/out/inout:
// addr)` clauses get a refcounted DepNode with an atomic predecessor count.
// Edges are computed at creation time against a per-parent hash table keyed
// on the depend addresses (last-writer edge for out/inout, reader-set edges
// for in) — creation of siblings is serialised by the parent task, so the
// table itself needs no lock; only per-node state is concurrent. A task whose
// count is still non-zero at creation parks on its node instead of entering
// a deque; completing predecessors release it. Tasks with no depend clauses
// never allocate a node and take the original deque fast path untouched.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

struct Task;

struct TaskGroup {
  std::atomic<i64> active{0};
  TaskGroup* parent = nullptr;
  /// `cancel taskgroup` flag. Once set, every not-yet-started task of this
  /// group (and of descendant groups — execute_task walks the parent chain)
  /// is discarded at its scheduling point: the body is skipped but all
  /// parent/group/outstanding accounting still runs, so waiters drain
  /// normally. Tasks already executing run to completion, per the spec.
  std::atomic<bool> cancelled{false};
};

/// One dependence of a task: a storage address plus the access mode of the
/// depend clause. `in` orders against the last writer; `out`/`inout` order
/// against the last writer and every reader since it.
enum class DepKind : std::uint8_t { kIn = 1, kOut = 2, kInout = 3 };

struct DepSpec {
  void* addr = nullptr;
  DepKind kind = DepKind::kInout;
};

/// Dependence-graph node of one task (libomp's kmp_depnode analogue).
/// Shared-ptr managed: referenced by the parent's dependence table (as last
/// writer / reader), by predecessor successor-lists, and by the task itself,
/// so a completed task's node stays valid for edges that later siblings
/// still draw against it.
///
/// Lifecycle: the creator starts `npredecessors` at 1 (the creation
/// reference) so a predecessor finishing mid-registration cannot release the
/// task early; each edge adds 1 under the predecessor's lock (skipped when
/// the predecessor is already `done`). After registering every edge the
/// creator drops the creation reference; whoever decrements the count to
/// zero — creator or last-finishing predecessor — owns the parked task and
/// enqueues it.
struct DepNode {
  std::atomic<i32> npredecessors{1};
  /// The parked task awaiting release; null before parking, and consumed
  /// (exactly once, by the zero-decrementer) on release. Undeferred tasks
  /// never park: the encountering thread spins the count down and runs the
  /// body inline, leaving this null throughout.
  Task* task = nullptr;
  /// Guards `done` + `successors` against the completion/registration race:
  /// a predecessor may finish while the parent is still drawing edges to it.
  std::mutex mu;
  bool done = false;
  std::vector<std::shared_ptr<DepNode>> successors;
};

/// Per-address dependence state in a parent's table: the node of the last
/// out/inout task and the in-tasks that read since.
struct DepEntry {
  std::shared_ptr<DepNode> last_out;
  std::vector<std::shared_ptr<DepNode>> readers;
};

/// Hash table mapping depend addresses to their dependence state. Only ever
/// touched by the thread executing the owning (parent) task — sibling
/// creation is serialised by the parent — so it is deliberately unlocked.
/// Sized lazily (see TaskContext::dep_table): the zero-dependence path never
/// allocates it, and taskwait clears it once all children (hence all
/// registered nodes) are complete, so it tracks the live wavefront rather
/// than the whole task history.
using DepTable = std::unordered_map<const void*, DepEntry>;

/// Execution context shared by implicit tasks (one per team member) and
/// explicit tasks. Tracks outstanding children for taskwait, the innermost
/// live taskgroup, the final-task flag (descendants of a final task execute
/// undeferred, the "included task" model), and the dependence table for the
/// depend clauses of child tasks.
struct TaskContext {
  std::atomic<i64> children{0};
  TaskGroup* group = nullptr;
  bool in_final = false;
  std::unique_ptr<DepTable> deps;

  /// Initial bucket reservation for a lazily-created dependence table —
  /// enough for the typical wavefront (a few live blocks per parent)
  /// without rehash, small enough that a single depend-bearing task stays
  /// cheap.
  static constexpr std::size_t kDepTableReserve = 16;

  DepTable& dep_table() {
    if (!deps) {
      deps = std::make_unique<DepTable>();
      deps->reserve(kDepTableReserve);
    }
    return *deps;
  }
};

struct Task {
  std::function<void()> body;
  TaskContext ctx;           ///< context for code running inside this task
  TaskContext* parent = nullptr;
  TaskGroup* group = nullptr;
  /// priority(n) hint. Recorded but not yet honoured by the work-stealing
  /// deques (a Chase–Lev deque has no cheap priority order); documented in
  /// DESIGN.md S1.7.
  i32 priority = 0;
  /// Dependence node, only for tasks created with depend clauses. Keeps the
  /// node alive until the task completes and releases its successors.
  std::shared_ptr<DepNode> depnode;
};

/// Creation-time options for Team::task_create_ex. Plain task_create remains
/// the zero-dependence fast path.
struct TaskOpts {
  const DepSpec* deps = nullptr;
  i32 ndeps = 0;
  /// `if` clause: false executes undeferred at the creation point (after
  /// dependences are satisfied).
  bool deferred = true;
  /// final(expr): true makes this task and every descendant undeferred
  /// (included-task model; see task.h header comment).
  bool final = false;
  /// untied is accepted and recorded as a no-op: zomp tasks run to
  /// completion on one thread without suspension, so every task trivially
  /// satisfies tied-task scheduling constraints.
  bool untied = false;
  i32 priority = 0;
};

/// Bounded lock-free work-stealing deque (Chase–Lev, in the fence-free
/// formulation of Lê et al. 2013 with the standalone fences strengthened to
/// seq_cst accesses so ThreadSanitizer can reason about the algorithm).
///
/// Single owner, many thieves. The owner pushes/pops `bottom` (LIFO); thieves
/// race on `top` with a CAS (FIFO). Slots are atomic pointers: a stale thief
/// may read a slot the owner is simultaneously recycling, but it then always
/// fails its CAS and discards the value, so the race is benign and — because
/// the slot itself is atomic — well-defined.
///
/// Memory-ordering notes (DESIGN.md S1):
///  * push: slot store may be relaxed; the release store of `bottom`
///    publishes it to any thief that acquires `bottom` afterwards.
///  * pop: the decremented `bottom` must be globally visible before reading
///    `top` (the classic SC store→load edge), hence seq_cst on both.
///  * steal: `top` read / `bottom` read need the mirror-image SC edge, and
///    the CAS on `top` decides the owner-vs-thief race for the last element.
class WorkStealingDeque {
 public:
  /// Capacity is fixed (bounded deque): overflow is handled by the caller
  /// executing the task inline, the same safety valve libomp uses when its
  /// task queue fills. 1024 tasks × 8 bytes = 8 KiB per member.
  static constexpr i64 kCapacity = 1024;

  /// Owner only. False when the deque is full (caller runs the task inline).
  bool push(Task* task) {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_.load(std::memory_order_acquire);
    if (b - t >= kCapacity) return false;
    slots_[static_cast<std::size_t>(b & kMask)].store(
        task, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO: newest task, for locality. Null when empty.
  Task* pop() {
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    i64 t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was empty; undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task =
        slots_[static_cast<std::size_t>(b & kMask)].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via `top`.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. FIFO: oldest task, maximising the stolen subtree. Null when
  /// empty or when the CAS race is lost (caller just tries the next victim).
  /// `lost`, when non-null, is set to true on a lost CAS — the convoying
  /// telemetry the staggered victim scan is measured by (DESIGN.md S1.9).
  Task* steal(bool* lost = nullptr) {
    i64 t = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Task* task =
        slots_[static_cast<std::size_t>(t & kMask)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      if (lost != nullptr) *lost = true;
      return nullptr;
    }
    return task;
  }

  /// Advisory emptiness probe for the victim scan. Acquire loads, `top`
  /// first, so the (monotonically growing) `bottom` read is the fresher of
  /// the pair and a push published on another core flips the answer
  /// promptly. Still only a hint: a push racing mid-publication may be
  /// missed for one scan, so take() returning null NEVER means "no work" —
  /// every drain loop must re-check the pool-level queued() counter (the
  /// barrier/taskwait/taskgroup loops in team.cpp do exactly that).
  bool maybe_empty() const {
    const i64 t = top_.load(std::memory_order_acquire);
    return t >= bottom_.load(std::memory_order_acquire);
  }

 private:
  static constexpr i64 kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "capacity must be a power of two");

  alignas(kCacheLine) std::atomic<i64> top_{0};
  alignas(kCacheLine) std::atomic<i64> bottom_{0};
  std::array<std::atomic<Task*>, kCapacity> slots_{};
};

/// Per-member steal-path telemetry (DESIGN.md S1.9). Each member writes only
/// its own (cache-line-padded) entry from inside take(); readers aggregate
/// after the region joined — the member check-out/acquire pair orders the
/// plain writes — so the counters need no atomics on the hot path.
struct alignas(kCacheLine) StealStats {
  u64 steal_attempts = 0;  ///< CAS-bearing steal() calls on victims' deques
  u64 steal_lost = 0;      ///< those that lost the top CAS race (convoying)
  u64 mailbox_pulls = 0;   ///< tasks taken from any member's mailbox
  // Broader scheduling telemetry (DESIGN.md S12), same write discipline;
  // these back zomp::team_stats(). team.cpp bumps them via member_stats().
  u64 tasks_executed = 0;    ///< explicit task bodies this member ran
  u64 dispatch_claims = 0;   ///< dispatch_next chunks this member claimed
  u64 barrier_episodes = 0;  ///< barrier episodes this member entered
};

/// Per-team task queues: one work-stealing deque per member, plus one
/// mutex-guarded *mailbox* per member for tasks another member aims at it
/// (the Chase–Lev deque is owner-push-only, so cross-member placement —
/// place-aware taskloop spraying — needs a side channel). Victim selection
/// in take() is locality-aware when the team installed a victim-order table
/// (hierarchical: same place, then same core/socket, then anywhere), and a
/// staggered flat ring otherwise.
class TaskPool {
 public:
  explicit TaskPool(i32 members);

  /// Drains and frees any tasks still parked in the deques or mailboxes
  /// (both hold raw pointers, so teardown must reclaim them explicitly).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` on member `tid`'s deque. Caller has already linked the
  /// task into its parent/group counts. Returns null on success; returns the
  /// task back when the bounded deque is full, in which case the caller MUST
  /// execute it inline (without touching the outstanding count) — dropping
  /// the rejected task would strand its parent/group counters forever.
  [[nodiscard]] std::unique_ptr<Task> push(i32 tid, std::unique_ptr<Task> task);

  /// Enqueues `task` on member `target`'s mailbox — the cross-member
  /// placement path. Unbounded, so unlike push() it never rejects. The task
  /// is stealable like any queued task: take() scans victims' mailboxes as
  /// well as their deques, so a task mailed to a member that never becomes
  /// idle cannot strand a taskgroup/taskwait/barrier waiter.
  void push_remote(i32 target, std::unique_ptr<Task> task);

  /// Pops from `tid`'s own deque (LIFO), then its own mailbox, then steals
  /// from siblings — nearest-first per the installed victim order, or a
  /// per-member staggered ring when there is none. Returns nullptr if no
  /// task is available right now; see maybe_empty() for why callers must
  /// re-check queued() before treating that as "pool dry".
  std::unique_ptr<Task> take(i32 tid);

  /// Installs the hierarchical steal-victim order: row `tid` holds member
  /// tid's n-1 victims, nearest first (flattened n x (n-1)). Built by the
  /// team from its binding plan and scheduling_topology() at fork time
  /// (master-only, while the team is quiescent); empty reverts take() to
  /// the staggered flat ring.
  void set_victim_order(std::vector<i32> order);
  const std::vector<i32>& victim_order() const { return victim_order_; }

  /// Sums every member's steal telemetry. Quiescent-read only (after a
  /// join/barrier): the per-member entries are plain fields.
  StealStats stats_total() const;

  /// Member `tid`'s own telemetry entry. Owner-write only — the executor
  /// and dispatch paths in team.cpp bump counters take() doesn't see.
  StealStats& member_stats(i32 tid) { return stats_[static_cast<size_t>(tid)]; }

  /// Tasks queued but not yet finished executing (includes tasks currently
  /// running a body). Gates the barrier's drain: zero means every published
  /// task fully completed.
  i64 outstanding() const { return outstanding_.load(std::memory_order_acquire); }

  /// Tasks sitting in a deque right now — stealable work, excluding tasks
  /// already executing. This is the join-barrier waiters' help gate and
  /// WaitGate park predicate (team.cpp): a waiter must NOT burn a core while
  /// one long task runs elsewhere with nothing to steal, but must wake when
  /// new work lands. seq_cst load on purpose: the park protocol's
  /// lost-wakeup argument (barrier.h) needs the gating state read in the
  /// seq_cst total order (same cost as acquire on x86). May transiently
  /// over-count (push increments before publishing) — a spurious wake, never
  /// a missed one: a task still in a deque always keeps this >= 1.
  i64 queued() const { return queued_.load(std::memory_order_seq_cst); }

  /// Called by the executor once a queued task's body has fully completed.
  void mark_finished() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  /// One member's mailbox. The atomic count lets the victim scan skip empty
  /// mailboxes without taking the lock; like maybe_empty() it is advisory
  /// (queued() is the authoritative re-check).
  struct Mailbox {
    std::mutex mu;
    std::deque<Task*> tasks;
    std::atomic<i32> count{0};
  };

  /// Pops the oldest mailed task from `member`'s mailbox; null when empty.
  Task* mailbox_pop(i32 member);

  // Each deque/mailbox heap-allocated so neighbouring members' hot words
  // never share a line regardless of vector layout.
  std::vector<std::unique_ptr<WorkStealingDeque>> queues_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  /// Flattened n x (n-1) victim-order table; empty = staggered flat ring.
  std::vector<i32> victim_order_;
  std::vector<StealStats> stats_;
  alignas(kCacheLine) std::atomic<i64> outstanding_{0};
  alignas(kCacheLine) std::atomic<i64> queued_{0};
};

}  // namespace zomp::rt
