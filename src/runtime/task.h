// Explicit tasking (OpenMP `task`, `taskwait`, `taskgroup`).
//
// The paper lists tasking as future work for the Zig port; we implement it as
// the documented extension so the runtime covers the OpenMP feature families
// a downstream user expects. Scheduling model: one double-ended queue per
// team member (owner pushes/pops the back, thieves take the front), a
// team-wide outstanding-task count that the task-aware barrier drains, and
// parent/child counting for `taskwait` plus group counting for `taskgroup`.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/common.h"

namespace zomp::rt {

struct TaskGroup {
  std::atomic<i64> active{0};
  TaskGroup* parent = nullptr;
};

/// Execution context shared by implicit tasks (one per team member) and
/// explicit tasks. Tracks outstanding children for taskwait and the
/// innermost live taskgroup.
struct TaskContext {
  std::atomic<i64> children{0};
  TaskGroup* group = nullptr;
};

struct Task {
  std::function<void()> body;
  TaskContext ctx;           ///< context for code running inside this task
  TaskContext* parent = nullptr;
  TaskGroup* group = nullptr;
};

/// Per-team task queues. Thread-safe for the owning team's members.
class TaskPool {
 public:
  explicit TaskPool(i32 members);

  /// Enqueues `task` on member `tid`'s deque. Caller has already linked the
  /// task into its parent/group counts.
  void push(i32 tid, std::unique_ptr<Task> task);

  /// Pops from `tid`'s own deque, or steals from a sibling. Returns nullptr
  /// if no task is available right now.
  std::unique_ptr<Task> take(i32 tid);

  /// Tasks queued but not yet finished executing.
  i64 outstanding() const { return outstanding_.load(std::memory_order_acquire); }

  /// Called by the executor once a task's body has fully completed.
  void mark_finished() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  struct alignas(kCacheLine) MemberQueue {
    std::mutex mutex;
    std::deque<std::unique_ptr<Task>> deque;
  };

  std::vector<std::unique_ptr<MemberQueue>> queues_;
  alignas(kCacheLine) std::atomic<i64> outstanding_{0};
};

}  // namespace zomp::rt
