#include "runtime/api.h"

#include <chrono>
#include <thread>

#include "runtime/icv.h"
#include "runtime/team.h"

namespace zomp {

using rt::current_thread;
using rt::GlobalIcv;
using rt::i32;

i32 thread_num() { return current_thread().tid; }

i32 num_threads() { return current_thread().team->size(); }

i32 max_threads() {
  const rt::ThreadState& ts = current_thread();
  if (ts.pushed_num_threads > 0) return ts.pushed_num_threads;
  return ts.icv.nthreads > 0 ? ts.icv.nthreads
                             : GlobalIcv::instance().default_team_size();
}

bool in_parallel() { return current_thread().team->active_level() > 0; }

i32 level() { return current_thread().team->level(); }

i32 active_level() { return current_thread().team->active_level(); }

i32 num_procs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<i32>(hc);
}

void set_num_threads(i32 n) {
  if (n > 0) current_thread().icv.nthreads = n;
}

void set_dynamic(bool dyn) { current_thread().icv.dynamic = dyn; }

bool get_dynamic() { return current_thread().icv.dynamic; }

void set_max_active_levels(i32 levels) {
  if (levels >= 1) current_thread().icv.max_active_levels = levels;
}

i32 get_max_active_levels() { return current_thread().icv.max_active_levels; }

void set_schedule(rt::Schedule schedule) {
  current_thread().icv.run_sched = schedule;
}

rt::Schedule get_schedule() { return current_thread().icv.run_sched; }

void set_wait_policy(rt::WaitPolicy policy) {
  GlobalIcv::instance().set_wait_policy(policy);
}

rt::WaitPolicy get_wait_policy() { return GlobalIcv::instance().wait_policy(); }

double wtime() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

double wtick() {
  using period = std::chrono::steady_clock::period;
  return static_cast<double>(period::num) / static_cast<double>(period::den);
}

}  // namespace zomp
