#include "runtime/api.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "runtime/icv.h"
#include "runtime/team.h"
#include "runtime/topology.h"

namespace zomp {

using rt::current_thread;
using rt::GlobalIcv;
using rt::i32;

i32 thread_num() { return current_thread().tid; }

i32 num_threads() { return current_thread().team->size(); }

i32 max_threads() {
  const rt::ThreadState& ts = current_thread();
  if (ts.pushed_num_threads > 0) return ts.pushed_num_threads;
  return ts.icv.nthreads > 0 ? ts.icv.nthreads
                             : GlobalIcv::instance().default_team_size();
}

bool in_parallel() { return current_thread().team->active_level() > 0; }

i32 level() { return current_thread().team->level(); }

i32 active_level() { return current_thread().team->active_level(); }

i32 team_size(i32 at_level) {
  rt::Team* team = current_thread().team;
  const i32 cur = team->level();
  if (at_level < 0 || at_level > cur) return -1;
  for (i32 l = cur; l > at_level && team != nullptr; --l) {
    team = team->parent();
  }
  // A null hop means we walked past the oldest recorded fork — everything
  // above it is the initial implicit team of size 1.
  return team != nullptr ? team->size() : 1;
}

i32 max_task_priority() { return GlobalIcv::instance().max_task_priority(); }

i32 num_procs() {
  // The processors this process can actually be scheduled on (topology.h):
  // sched_getaffinity-restricted, so `taskset -c 0 ./a.out` reports 1
  // however wide the machine is. Falls back to hardware_concurrency when no
  // affinity call exists.
  return rt::Topology::instance().num_procs();
}

void set_num_threads(i32 n) {
  if (n > 0) current_thread().icv.nthreads = n;
}

void set_dynamic(bool dyn) { current_thread().icv.dynamic = dyn; }

bool get_dynamic() { return current_thread().icv.dynamic; }

void set_max_active_levels(i32 levels) {
  if (levels >= 1) current_thread().icv.max_active_levels = levels;
}

i32 get_max_active_levels() { return current_thread().icv.max_active_levels; }

void set_schedule(rt::Schedule schedule) {
  current_thread().icv.run_sched = schedule;
}

rt::Schedule get_schedule() { return current_thread().icv.run_sched; }

void set_wait_policy(rt::WaitPolicy policy) {
  GlobalIcv::instance().set_wait_policy(policy);
}

rt::WaitPolicy get_wait_policy() { return GlobalIcv::instance().wait_policy(); }

bool get_cancellation() { return GlobalIcv::instance().cancellation(); }

rt::BindKind get_proc_bind() {
  return GlobalIcv::instance().bind_at(current_thread().icv.bind_index);
}

i32 num_places() { return rt::PlaceTable::instance().num_places(); }

i32 place_num() { return current_thread().place_num; }

i32 place_num_procs(i32 place) {
  const rt::PlaceTable& table = rt::PlaceTable::instance();
  if (place < 0 || place >= table.num_places()) return 0;
  return static_cast<i32>(table.place(place).procs.size());
}

void place_proc_ids(i32 place, i32* ids) {
  const rt::PlaceTable& table = rt::PlaceTable::instance();
  if (ids == nullptr || place < 0 || place >= table.num_places()) return;
  const auto& procs = table.place(place).procs;
  for (std::size_t i = 0; i < procs.size(); ++i) ids[i] = procs[i];
}

namespace {

/// Resolves the calling environment's place-partition-var against the table
/// (part_len == 0 means "whole table", see icv.h).
std::pair<i32, i32> resolved_partition() {
  const rt::Icv& icv = current_thread().icv;
  const i32 total = rt::PlaceTable::instance().num_places();
  if (total == 0) return {0, 0};
  i32 lo = icv.part_lo;
  i32 len = icv.part_len;
  if (lo < 0 || lo >= total) lo = 0;
  if (len <= 0 || lo + len > total) len = total - lo;
  return {lo, len};
}

}  // namespace

i32 partition_num_places() { return resolved_partition().second; }

void partition_place_nums(i32* nums) {
  if (nums == nullptr) return;
  const auto [lo, len] = resolved_partition();
  for (i32 i = 0; i < len; ++i) nums[i] = lo + i;
}

void display_affinity() {
  std::fprintf(stderr, "%s\n",
               rt::affinity_report(current_thread()).c_str());
}

void display_affinity(const char* format) {
  if (format == nullptr) {
    display_affinity();
    return;
  }
  std::fprintf(
      stderr, "%s\n",
      rt::affinity_report(current_thread(), std::string(format)).c_str());
}

namespace {

/// The omp_get_affinity_format/omp_capture_affinity truncation contract:
/// copy at most size-1 chars + NUL, return the untruncated length.
std::size_t copy_out(const std::string& text, char* buffer,
                     std::size_t size) {
  if (buffer != nullptr && size > 0) {
    const std::size_t n = std::min(text.size(), size - 1);
    std::memcpy(buffer, text.data(), n);
    buffer[n] = '\0';
  }
  return text.size();
}

}  // namespace

void set_affinity_format(const char* format) {
  rt::GlobalIcv::instance().set_affinity_format(
      format == nullptr ? std::string() : std::string(format));
}

std::size_t get_affinity_format(char* buffer, std::size_t size) {
  return copy_out(rt::GlobalIcv::instance().affinity_format(), buffer, size);
}

std::size_t capture_affinity(char* buffer, std::size_t size,
                             const char* format) {
  const std::string text =
      format == nullptr
          ? rt::affinity_report(current_thread())
          : rt::affinity_report(current_thread(), std::string(format));
  return copy_out(text, buffer, size);
}

double wtime() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

double wtick() {
  using period = std::chrono::steady_clock::period;
  return static_cast<double>(period::num) / static_cast<double>(period::den);
}

TeamStats team_stats() {
  const rt::StealStats total = current_thread().team->tasks().stats_total();
  TeamStats out;
  out.steal_attempts = static_cast<rt::i64>(total.steal_attempts);
  out.steal_lost = static_cast<rt::i64>(total.steal_lost);
  out.mailbox_pulls = static_cast<rt::i64>(total.mailbox_pulls);
  out.tasks_executed = static_cast<rt::i64>(total.tasks_executed);
  out.dispatch_claims = static_cast<rt::i64>(total.dispatch_claims);
  out.barrier_episodes = static_cast<rt::i64>(total.barrier_episodes);
  return out;
}

}  // namespace zomp
