// Environment-variable handling for runtime configuration.
//
// The runtime honours the standard OMP_* variables the paper's runs rely on
// (OMP_NUM_THREADS, OMP_SCHEDULE, ...) plus ZOMP_*-prefixed overrides so the
// test suite can configure the runtime without clobbering a user's real
// OpenMP environment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runtime/common.h"
#include "runtime/places.h"
#include "runtime/schedule.h"

namespace zomp::rt {

/// Reads `ZOMP_<name>` and falls back to `OMP_<name>`; nullopt if neither is
/// set. The ZOMP_ spelling wins so this runtime can coexist with a real
/// OpenMP runtime in one process.
std::optional<std::string> env_string(const char* name);

/// Integer variant; malformed values return nullopt and warn once on stderr.
std::optional<i64> env_int(const char* name);

/// Boolean variant accepting the OpenMP spellings: true/false/1/0/yes/no
/// (case-insensitive).
std::optional<bool> env_bool(const char* name);

/// OMP_SCHEDULE / ZOMP_SCHEDULE.
std::optional<Schedule> env_schedule();

/// OMP_WAIT_POLICY / ZOMP_WAIT_POLICY: "active" or "passive"
/// (case-insensitive); malformed values warn and return nullopt.
std::optional<WaitPolicy> env_wait_policy();

/// Parses a wait-policy spelling (exposed for tests).
std::optional<WaitPolicy> parse_wait_policy(const std::string& text);

/// OMP_PROC_BIND / ZOMP_PROC_BIND: a comma-separated per-nesting-level list
/// of bind kinds (places.h); malformed values warn and return nullopt.
std::optional<std::vector<BindKind>> env_proc_bind();

/// The one malformed-environment reporting channel: every env parser
/// (OMP_NUM_THREADS, OMP_SCHEDULE, OMP_PLACES, OMP_WAIT_POLICY,
/// ZOMP_FAULT_INJECT, ...) funnels bad input here. Warns on stderr with the
/// offending value AT MOST ONCE per variable name — a misconfigured
/// deployment logs one line, not one line per region — then the caller
/// falls back to its default. `name` is the suffix without the OMP_/ZOMP_
/// prefix; a non-null `detail` appends a parse-error explanation.
void warn_malformed_env(const char* name, const char* value,
                        const char* detail = nullptr);

/// Number of distinct malformed variables warned about so far (tests).
i64 env_malformed_warning_count();

/// Forgets which variables have warned (tests only, so each table case can
/// assert its own single warning).
void env_warn_reset_for_test();

}  // namespace zomp::rt
