#include "runtime/reduce.h"

#include <bit>
#include <cstring>

namespace zomp::rt {

namespace {

/// Spins (with the wait-policy backoff) until `cell` reaches `target`.
void wait_at_least(const std::atomic<u64>& cell, u64 target) {
  Backoff backoff;
  while (cell.load(std::memory_order_acquire) < target) backoff.pause();
}

}  // namespace

ReductionTree::ReductionTree(i32 n)
    : n_(n), slots_(static_cast<std::size_t>(n)) {
  ZOMP_CHECK(n >= 1, "reduction tree needs at least one member");
}

bool ReductionTree::combine(i32 tid, u64 seq, void* data, std::size_t size,
                            ReduceCombineFn fn, void* ctx, bool broadcast) {
  ZOMP_CHECK(tid >= 0 && tid < n_, "reduction from non-member thread");
  if (n_ == 1) return true;  // data already is the combined value
  if (size <= kSlotBytes) {
    return combine_tree(tid, seq, data, size, fn, ctx, broadcast);
  }
  return combine_fallback(tid, seq, data, size, fn, ctx, broadcast);
}

bool ReductionTree::combine_tree(i32 tid, u64 seq, void* data,
                                 std::size_t size, ReduceCombineFn fn,
                                 void* ctx, bool broadcast) {
  const u64 base = seq * kTokenStride;
  // Reuse gate: instance seq-1 must be fully combined before any slot of it
  // may be overwritten. The winner's release of done_seq_ happens-after every
  // combine read of the previous instance (each read flows up the tree into
  // the winner through an acquire of the publishing slot's token).
  wait_at_least(done_seq_, seq - 1);

  if (tid == 0) {
    // Winner: fold partner subtrees 1, 2, 4, ... directly into `data`. Round
    // r's partner publishes once its own subtree of height r is complete, so
    // the winner's wait chain is the log2(n) critical path.
    for (i32 r = 0; (i64{1} << r) < n_; ++r) {
      const i32 partner = i32{1} << r;
      if (partner >= n_) break;
      Slot& ps = slots_[static_cast<std::size_t>(partner)];
      wait_at_least(ps.token, base + static_cast<u64>(r));
      fn(ctx, data, ps.data);
    }
    if (broadcast) {
      std::memcpy(broadcast_[seq & 1].data, data, size);
      broadcast_seq_.store(seq, std::memory_order_release);
    }
    done_seq_.store(seq, std::memory_order_release);
    return true;
  }

  // Non-winner: combine the partners of rounds 0 .. ctz(tid)-1 into the
  // private buffer, then publish the finished subtree in one slot write.
  const i32 rounds = std::countr_zero(static_cast<u32>(tid));
  for (i32 r = 0; r < rounds; ++r) {
    const i32 partner = tid + (i32{1} << r);
    if (partner >= n_) continue;  // subtree truncated by team size
    Slot& ps = slots_[static_cast<std::size_t>(partner)];
    wait_at_least(ps.token, base + static_cast<u64>(r));
    fn(ctx, data, ps.data);
  }
  Slot& mine = slots_[static_cast<std::size_t>(tid)];
  std::memcpy(mine.data, data, size);
  mine.token.store(base + static_cast<u64>(rounds), std::memory_order_release);

  if (broadcast) {
    wait_at_least(broadcast_seq_, seq);
    std::memcpy(data, broadcast_[seq & 1].data, size);
  }
  return false;
}

bool ReductionTree::combine_fallback(i32 tid, u64 seq, void* data,
                                     std::size_t size, ReduceCombineFn fn,
                                     void* ctx, bool broadcast) {
  wait_at_least(done_seq_, seq - 1);

  if (tid == 0) {
    fb_acc_.store(data, std::memory_order_relaxed);
    fb_ready_seq_.store(seq, std::memory_order_release);
    Backoff backoff;
    while (fb_contributed_.load(std::memory_order_acquire) < n_ - 1) {
      backoff.pause();
    }
    if (broadcast) {
      // Contributions are in; readers copy out of our buffer, and we must
      // not return (invalidating it) until every one of them acknowledged.
      fb_result_seq_.store(seq, std::memory_order_release);
      backoff.reset();
      while (fb_acked_.load(std::memory_order_acquire) < n_ - 1) {
        backoff.pause();
      }
    }
    fb_contributed_.store(0, std::memory_order_relaxed);
    fb_acked_.store(0, std::memory_order_relaxed);
    done_seq_.store(seq, std::memory_order_release);
    return true;
  }

  wait_at_least(fb_ready_seq_, seq);
  void* acc = fb_acc_.load(std::memory_order_relaxed);
  fb_lock_.set();
  fn(ctx, acc, data);
  fb_lock_.unset();
  fb_contributed_.fetch_add(1, std::memory_order_acq_rel);
  if (broadcast) {
    wait_at_least(fb_result_seq_, seq);
    std::memcpy(data, acc, size);  // no writers after the winner's release
    fb_acked_.fetch_add(1, std::memory_order_acq_rel);
  }
  return false;
}

}  // namespace zomp::rt
