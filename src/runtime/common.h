// Shared low-level definitions for the zomp runtime.
//
// The runtime is a from-scratch reproduction of the role LLVM's libomp plays
// in the paper: the library that outlined parallel regions call into.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace zomp::rt {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Size used to pad hot shared state so that independently-updated fields do
/// not false-share. 64 bytes covers x86-64; 128 would cover adjacent-line
/// prefetching but doubles footprint for little gain at test scale.
inline constexpr std::size_t kCacheLine = 64;

/// Fatal-error reporter (defined in fault.cpp): prints the message plus the
/// calling thread's team/place context (through the OMP_AFFINITY_FORMAT
/// expander) to stderr, then aborts. Every ZOMP_CHECK routes through here so
/// a production crash report says WHERE in the thread topology the invariant
/// broke, not just which source line.
[[noreturn]] void fatal(const char* msg, const char* file, int line);

/// Runtime invariant check. These guard *internal* invariants (a user data
/// race cannot trip them) and are cheap enough to keep in release builds:
/// a broken runtime invariant would otherwise surface as a hang.
#define ZOMP_CHECK(cond, msg)                             \
  do {                                                    \
    if (!(cond)) {                                        \
      ::zomp::rt::fatal(msg, __FILE__, __LINE__);         \
    }                                                     \
  } while (0)

/// Waiting behaviour for runtime spin loops (`wait-policy-var`,
/// OMP_WAIT_POLICY): active waiters burn an exponentially-growing spin budget
/// before yielding the core; passive waiters yield immediately.
enum class WaitPolicy : i32 { kActive = 0, kPassive = 1 };

/// Spin budget implied by the process wait policy (defined in icv.cpp next
/// to the ICV storage): kPassive -> 0, kActive -> a bounded spin count —
/// UNLESS the process is oversubscribed (see note_thread_census), where
/// active waits also go straight to yielding: pause-spinning a core that a
/// runnable peer needs only delays the convoy it is waiting on.
i32 backoff_spin_limit() noexcept;

/// Backoff rounds a park-capable wait (the worker doorbell, pool.h) burns
/// before falling back to a condvar park. Active policy: the exponential
/// spin budget plus a yield grace period, so a hot team's workers catch
/// back-to-back forks without ever touching the futex path. Passive policy
/// or an oversubscribed process: 1 (park almost immediately — the master
/// needs the core, and a parked worker leaves the run queue so scheduler
/// passes over the remaining runnable threads stay short). Defined in
/// icv.cpp.
i32 doorbell_grace_rounds() noexcept;

/// Oversubscription census: fork/join reports workers entering (+n) and
/// leaving (-n) regions here, so the count reflects *currently running*
/// runtime threads — not the lifetime spawn peak, which would latch the
/// slow-wait mode forever after one oversized region. The wait primitives
/// above compare it against the hardware core count on every budget
/// decision. Relaxed-atomic; a momentarily stale reading only mis-tunes a
/// spin, never correctness.
void note_active_workers(i32 delta) noexcept;

/// Bounded exponential backoff for spin loops, honouring OMP_WAIT_POLICY.
///
/// Every barrier / join / task-drain wait in the runtime sits on one of
/// these. The machines this repo targets (laptops, CI) are routinely
/// oversubscribed, so even under the active policy the spin is bounded and
/// falls back to yielding the core: a pure spin barrier with threads > cores
/// turns O(us) waits into O(scheduler quantum) waits.
class Backoff {
 public:
  Backoff() : limit_(backoff_spin_limit()) {}
  explicit Backoff(i32 spin_limit) : limit_(spin_limit) {}

  void pause() {
    if (spins_ < limit_) {
      ++spins_;
      // Exponential: 2, 4, ... up to 64 pause instructions per round.
      for (int i = 0; i < (1 << (spins_ < 6 ? spins_ : 6)); ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      }
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  i32 limit_ = 0;
  i32 spins_ = 0;
};

}  // namespace zomp::rt
