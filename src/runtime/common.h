// Shared low-level definitions for the zomp runtime.
//
// The runtime is a from-scratch reproduction of the role LLVM's libomp plays
// in the paper: the library that outlined parallel regions call into.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace zomp::rt {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Size used to pad hot shared state so that independently-updated fields do
/// not false-share. 64 bytes covers x86-64; 128 would cover adjacent-line
/// prefetching but doubles footprint for little gain at test scale.
inline constexpr std::size_t kCacheLine = 64;

/// Runtime invariant check. These guard *internal* invariants (a user data
/// race cannot trip them) and are cheap enough to keep in release builds:
/// a broken runtime invariant would otherwise surface as a hang.
#define ZOMP_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "zomp runtime invariant violated: %s (%s:%d)\n", \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Bounded exponential backoff for spin loops.
///
/// The machines this repo targets (laptops, CI) are routinely oversubscribed,
/// so every spin loop in the runtime must eventually yield the core: a pure
/// spin barrier with threads > cores turns O(us) waits into O(scheduler
/// quantum) waits.
class Backoff {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      for (int i = 0; i < (1 << (spins_ < 6 ? spins_ : 6)); ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      }
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr int kSpinLimit = 10;
  int spins_ = 0;
};

}  // namespace zomp::rt
