#include "runtime/worksharing.h"

#include <algorithm>

#include "runtime/metrics.h"

namespace zomp::rt {

StaticRange static_distribute(i64 lo, i64 hi, i64 step, i64 chunk, i32 tid,
                              i32 nthreads) {
  ZOMP_CHECK(step > 0, "worksharing loops must be normalised to step > 0");
  ZOMP_CHECK(nthreads >= 1 && tid >= 0 && tid < nthreads,
             "bad thread id for static distribution");
  StaticRange r;
  const i64 trips = trip_count(lo, hi, step);
  if (trips == 0) {
    r.lo = r.hi = hi;
    r.stride = step;  // harmless: the emitted loop guard fails immediately
    return r;
  }
  if (chunk <= 0) {
    // Blocked: floor(trips/n) everywhere, first (trips mod n) threads get one
    // extra — the same split libomp uses for schedule(static).
    const i64 base = trips / nthreads;
    const i64 rem = trips % nthreads;
    const i64 begin = i64{tid} * base + std::min<i64>(tid, rem);
    const i64 count = base + (tid < rem ? 1 : 0);
    if (count == 0) {
      r.lo = r.hi = hi;
      r.stride = step;
      return r;
    }
    r.lo = lo + begin * step;
    r.hi = lo + (begin + count) * step;
    r.hi = std::min(r.hi, hi);
    // One block only: stride past the end so a strided loop runs once.
    r.stride = (hi - lo) + step;
    r.last = begin + count == trips;
    return r;
  }
  // Round-robin chunks: thread t owns chunks t, t+n, t+2n, ...
  const i64 first = i64{tid} * chunk;
  if (first >= trips) {
    r.lo = r.hi = hi;
    r.stride = step;
    return r;
  }
  r.lo = lo + first * step;
  r.hi = std::min(lo + (first + chunk) * step, hi);
  r.stride = i64{nthreads} * chunk * step;
  const i64 last_chunk_index = (trips - 1) / chunk;
  r.last = last_chunk_index % nthreads == tid;
  return r;
}

StaticRange static_block_range(i64 lo, i64 hi, i32 tid, i32 nthreads) {
  ZOMP_CHECK(nthreads >= 1 && tid >= 0 && tid < nthreads,
             "bad thread id for static distribution");
  StaticRange r;
  const i64 trips = hi > lo ? hi - lo : 0;
  r.stride = (hi - lo) + 1;  // one block: stride past the end (parity with
                             // the general path; the spec codegen ignores it)
  if (trips == 0) {
    r.lo = r.hi = hi;
    return r;
  }
  const i64 base = trips / nthreads;
  const i64 rem = trips % nthreads;
  const i64 begin = i64{tid} * base + std::min<i64>(tid, rem);
  const i64 count = base + (tid < rem ? 1 : 0);
  if (count == 0) {
    r.lo = r.hi = hi;
    return r;
  }
  r.lo = lo + begin;
  r.hi = lo + begin + count;
  r.last = begin + count == trips;
  return r;
}

void dispatch_init_static_cursor(const DispatchSlot& slot, MemberDispatch& md,
                                 i32 tid) {
  const StaticRange r = static_distribute(slot.lo, slot.hi, slot.step,
                                          slot.kind == ScheduleKind::kStatic
                                              ? slot.chunk
                                              : 0,
                                          tid, slot.nthreads);
  md.static_next = r.lo;
  md.static_hi = r.hi;
  md.static_stride = r.stride;
  md.static_span = r.hi - r.lo;
  md.last_chunk = false;
}

void dispatch_init_shards(DispatchSlot& slot, const ShardMap& map,
                          bool sharded) {
  const i32 ns = sharded && !map.weight.empty()
                     ? std::min<i32>(std::max(map.nshards, 1), kMaxPlaceShards)
                     : 1;
  slot.nshards = ns;
  if (ns == 1) {
    slot.shards[0].lo = 0;
    slot.shards[0].hi = slot.trips;
    slot.shards[0].next.store(0, std::memory_order_relaxed);
    return;
  }
  i64 total_weight = 0;
  for (i32 s = 0; s < ns; ++s) {
    total_weight += std::max(1, map.weight[static_cast<std::size_t>(s)]);
  }
  // Proportional slab boundaries without trips*weight overflow:
  // b(cum) = floor(trips/W)*cum + floor((trips mod W)*cum / W) is monotone
  // in cum with b(0) = 0 and b(W) = trips, so the slabs partition
  // [0, trips) even for huge trip counts.
  i64 cum = 0;
  i64 prev = 0;
  for (i32 s = 0; s < ns; ++s) {
    cum += std::max(1, map.weight[static_cast<std::size_t>(s)]);
    const i64 b = (slot.trips / total_weight) * cum +
                  (slot.trips % total_weight) * cum / total_weight;
    slot.shards[s].lo = prev;
    slot.shards[s].hi = b;
    slot.shards[s].next.store(prev, std::memory_order_relaxed);
    prev = b;
  }
}

namespace {

/// Guided chunk size: half of an even split of what remains, bounded below by
/// the requested minimum chunk. This is the classic guided-self-scheduling
/// formula libomp uses for `guided`.
i64 guided_size(i64 remaining, i64 min_chunk, i32 nthreads) {
  const i64 half_split = (remaining + 2 * i64{nthreads} - 1) / (2 * i64{nthreads});
  return std::max<i64>(min_chunk, half_split);
}

/// Maps a claimed trip window back to the original iteration space.
/// `end == slot.trips` identifies the (unique) chunk holding the
/// sequentially-last iteration: claim windows on one cursor are disjoint,
/// and only the last shard's slab ends at the trip count.
bool serve_trips(const DispatchSlot& slot, i64 begin, i64 end, i64* plo,
                 i64* phi, bool* plast) {
  *plo = slot.lo + begin * slot.step;
  *phi = std::min(slot.lo + end * slot.step, slot.hi);
  *plast = end == slot.trips;
  return true;
}

/// Cross-place slab steal (DESIGN.md S1.9): when a member's own slab is
/// dry it claims half of another place's remainder — at least one chunk —
/// with ONE fetch_add on the victim cursor, and serves the whole window as
/// a single private chunk. One remote RMW per slab instead of per chunk;
/// exactly-once falls out of the shared-cursor argument (immutable bounds,
/// every sub-`hi` claim owns its window, overshoot past `hi` owns nothing).
bool steal_slab(DispatchSlot& slot, i32 my_shard, i64 chunk, i64* plo,
                i64* phi, bool* plast) {
  for (i32 k = 1; k < slot.nshards; ++k) {
    ShardCursor& v = slot.shards[(my_shard + k) % slot.nshards];
    const i64 seen = v.next.load(std::memory_order_relaxed);
    if (seen >= v.hi) continue;
    const i64 remaining_chunks = (v.hi - seen + chunk - 1) / chunk;
    const i64 take = std::max<i64>(1, remaining_chunks / 2) * chunk;
    const i64 claimed = v.next.fetch_add(take, std::memory_order_relaxed);
    if (claimed >= v.hi) continue;  // drained between the read and the add
    metrics_note_shard_claim((my_shard + k) % slot.nshards);
    return serve_trips(slot, claimed, std::min(claimed + take, v.hi), plo,
                       phi, plast);
  }
  return false;
}

}  // namespace

bool dispatch_next_chunk(DispatchSlot& slot, MemberDispatch& md, i32 tid,
                         i64* plo, i64* phi, bool* plast) {
  switch (slot.kind) {
    case ScheduleKind::kStatic:
    case ScheduleKind::kAuto: {
      // Deterministic per-member cursor; `auto` maps to blocked static.
      // Blocks partition the iteration space, so exactly the block that ends
      // at slot.hi contains the sequentially-last iteration.
      if (md.static_span <= 0 || md.static_next >= slot.hi) return false;
      metrics_note_shard_claim(0);  // static kinds run on the flat shard
      *plo = md.static_next;
      *phi = md.static_hi;
      *plast = *phi >= slot.hi;
      md.static_next += md.static_stride;
      if (md.static_next >= slot.hi) {
        md.static_span = 0;  // exhausted
      } else {
        md.static_hi = std::min(md.static_next + md.static_span, slot.hi);
      }
      return true;
    }
    case ScheduleKind::kDynamic: {
      const i64 chunk = std::max<i64>(1, slot.chunk);
      const i32 my_shard = std::min(md.shard, slot.nshards - 1);
      ShardCursor& own = slot.shards[my_shard];
      // Claim a *batch* of chunks from the member's own place slab with one
      // fetch_add. The batch size comes from a relaxed pre-read of the
      // cursor: stale is fine — `next` only grows and the bounds are
      // immutable, so staleness can only mis-size the batch, never un-own a
      // claim (overshoot is clamped at the slab bound); scaling the batch
      // to the remaining work (÷ kBatchDivisor·nthreads, cap
      // kMaxBatchChunks) bounds the tail imbalance to a
      // 1/(kBatchDivisor·nthreads) fraction of what's left.
      const i64 seen = own.next.load(std::memory_order_relaxed);
      if (seen < own.hi) {
        const i64 remaining_chunks = (own.hi - seen + chunk - 1) / chunk;
        const i64 batch = std::clamp<i64>(
            remaining_chunks / (kBatchDivisor * i64{slot.nthreads}), 1,
            kMaxBatchChunks);
        const i64 claimed =
            own.next.fetch_add(batch * chunk, std::memory_order_relaxed);
        if (claimed < own.hi) {
          metrics_note_shard_claim(my_shard);
          return serve_trips(slot, claimed,
                             std::min(claimed + batch * chunk, own.hi), plo,
                             phi, plast);
        }
      }
      // Own slab dry (a stale-high pre-read can only happen when it truly
      // is: `next` is monotone, so stale `seen` <= current next).
      return steal_slab(slot, my_shard, chunk, plo, phi, plast);
    }
    case ScheduleKind::kGuided: {
      // Guided shares the fetch_add cursor protocol: the chunk size is
      // computed from a relaxed pre-read of the member's own slab cursor,
      // then claimed with one fetch_add — no CAS retry loop. A concurrent
      // claim between the read and the add only makes this chunk slightly
      // larger than exact guided-self-scheduling prescribes; it is still
      // >= the requested minimum, still clamped at the slab bound, and the
      // decreasing shape is preserved because `remaining` only shrinks.
      const i64 min_chunk = std::max<i64>(1, slot.chunk);
      const i32 my_shard = std::min(md.shard, slot.nshards - 1);
      ShardCursor& own = slot.shards[my_shard];
      const i64 seen = own.next.load(std::memory_order_relaxed);
      if (seen < own.hi) {
        const i64 size = guided_size(own.hi - seen, min_chunk, slot.nthreads);
        const i64 claimed =
            own.next.fetch_add(size, std::memory_order_relaxed);
        if (claimed < own.hi) {
          metrics_note_shard_claim(my_shard);
          return serve_trips(slot, claimed, std::min(claimed + size, own.hi),
                             plo, phi, plast);
        }
      }
      return steal_slab(slot, my_shard, min_chunk, plo, phi, plast);
    }
    case ScheduleKind::kRuntime:
      ZOMP_CHECK(false, "runtime schedule must be resolved before dispatch");
  }
  (void)tid;
  return false;
}

}  // namespace zomp::rt
