#include "runtime/worksharing.h"

#include <algorithm>

namespace zomp::rt {

StaticRange static_distribute(i64 lo, i64 hi, i64 step, i64 chunk, i32 tid,
                              i32 nthreads) {
  ZOMP_CHECK(step > 0, "worksharing loops must be normalised to step > 0");
  ZOMP_CHECK(nthreads >= 1 && tid >= 0 && tid < nthreads,
             "bad thread id for static distribution");
  StaticRange r;
  const i64 trips = trip_count(lo, hi, step);
  if (trips == 0) {
    r.lo = r.hi = hi;
    r.stride = step;  // harmless: the emitted loop guard fails immediately
    return r;
  }
  if (chunk <= 0) {
    // Blocked: floor(trips/n) everywhere, first (trips mod n) threads get one
    // extra — the same split libomp uses for schedule(static).
    const i64 base = trips / nthreads;
    const i64 rem = trips % nthreads;
    const i64 begin = i64{tid} * base + std::min<i64>(tid, rem);
    const i64 count = base + (tid < rem ? 1 : 0);
    if (count == 0) {
      r.lo = r.hi = hi;
      r.stride = step;
      return r;
    }
    r.lo = lo + begin * step;
    r.hi = lo + (begin + count) * step;
    r.hi = std::min(r.hi, hi);
    // One block only: stride past the end so a strided loop runs once.
    r.stride = (hi - lo) + step;
    r.last = begin + count == trips;
    return r;
  }
  // Round-robin chunks: thread t owns chunks t, t+n, t+2n, ...
  const i64 first = i64{tid} * chunk;
  if (first >= trips) {
    r.lo = r.hi = hi;
    r.stride = step;
    return r;
  }
  r.lo = lo + first * step;
  r.hi = std::min(lo + (first + chunk) * step, hi);
  r.stride = i64{nthreads} * chunk * step;
  const i64 last_chunk_index = (trips - 1) / chunk;
  r.last = last_chunk_index % nthreads == tid;
  return r;
}

void dispatch_init_static_cursor(const DispatchSlot& slot, MemberDispatch& md,
                                 i32 tid) {
  const StaticRange r = static_distribute(slot.lo, slot.hi, slot.step,
                                          slot.kind == ScheduleKind::kStatic
                                              ? slot.chunk
                                              : 0,
                                          tid, slot.nthreads);
  md.static_next = r.lo;
  md.static_hi = r.hi;
  md.static_stride = r.stride;
  md.static_span = r.hi - r.lo;
  md.last_chunk = false;
}

namespace {

/// Guided chunk size: half of an even split of what remains, bounded below by
/// the requested minimum chunk. This is the classic guided-self-scheduling
/// formula libomp uses for `guided`.
i64 guided_size(i64 remaining, i64 min_chunk, i32 nthreads) {
  const i64 half_split = (remaining + 2 * i64{nthreads} - 1) / (2 * i64{nthreads});
  return std::max<i64>(min_chunk, half_split);
}

}  // namespace

bool dispatch_next_chunk(DispatchSlot& slot, MemberDispatch& md, i32 tid,
                         i64* plo, i64* phi, bool* plast) {
  switch (slot.kind) {
    case ScheduleKind::kStatic:
    case ScheduleKind::kAuto: {
      // Deterministic per-member cursor; `auto` maps to blocked static.
      // Blocks partition the iteration space, so exactly the block that ends
      // at slot.hi contains the sequentially-last iteration.
      if (md.static_span <= 0 || md.static_next >= slot.hi) return false;
      *plo = md.static_next;
      *phi = md.static_hi;
      *plast = *phi >= slot.hi;
      md.static_next += md.static_stride;
      if (md.static_next >= slot.hi) {
        md.static_span = 0;  // exhausted
      } else {
        md.static_hi = std::min(md.static_next + md.static_span, slot.hi);
      }
      return true;
    }
    case ScheduleKind::kDynamic: {
      const i64 chunk = std::max<i64>(1, slot.chunk);
      // Claim a *batch* of chunks with one fetch_add. The batch size comes
      // from a relaxed pre-read of the cursor: stale is fine — overshoot is
      // clamped at the trip count, and scaling the batch to the remaining
      // work (÷ kBatchDivisor·nthreads, cap kMaxBatchChunks) bounds the tail
      // imbalance to a 1/(kBatchDivisor·nthreads) fraction of what's left.
      const i64 seen = slot.next.load(std::memory_order_relaxed);
      i64 batch = 1;
      if (seen < slot.trips) {
        const i64 remaining_chunks = (slot.trips - seen + chunk - 1) / chunk;
        batch = std::clamp<i64>(
            remaining_chunks / (kBatchDivisor * i64{slot.nthreads}), 1,
            kMaxBatchChunks);
      }
      const i64 claimed =
          slot.next.fetch_add(batch * chunk, std::memory_order_relaxed);
      if (claimed >= slot.trips) return false;
      const i64 end = std::min(claimed + batch * chunk, slot.trips);
      *plo = slot.lo + claimed * slot.step;
      *phi = slot.lo + end * slot.step;
      *phi = std::min(*phi, slot.hi);
      *plast = end == slot.trips;
      return true;
    }
    case ScheduleKind::kGuided: {
      // Guided shares the single fetch_add cursor: the chunk size is computed
      // from a relaxed pre-read of the cursor, then claimed with one
      // fetch_add — no CAS retry loop. A concurrent claim between the read
      // and the add only makes this chunk slightly larger than exact
      // guided-self-scheduling prescribes; it is still >= the requested
      // minimum, still clamped at the trip count, and the decreasing shape
      // is preserved because `remaining` only shrinks.
      const i64 min_chunk = std::max<i64>(1, slot.chunk);
      const i64 seen = slot.next.load(std::memory_order_relaxed);
      if (seen >= slot.trips) return false;
      const i64 size = guided_size(slot.trips - seen, min_chunk, slot.nthreads);
      const i64 claimed = slot.next.fetch_add(size, std::memory_order_relaxed);
      if (claimed >= slot.trips) return false;
      const i64 end = std::min(claimed + size, slot.trips);
      *plo = slot.lo + claimed * slot.step;
      *phi = std::min(slot.lo + end * slot.step, slot.hi);
      *plast = end == slot.trips;
      return true;
    }
    case ScheduleKind::kRuntime:
      ZOMP_CHECK(false, "runtime schedule must be resolved before dispatch");
  }
  (void)tid;
  return false;
}

}  // namespace zomp::rt
