// Thread teams and per-thread runtime state.
//
// A Team is the runtime object behind one parallel region: its members, its
// task-aware barrier, the worksharing dispatch ring, and the per-construct
// counters that give `single`/`ordered` their identities. ThreadState is the
// per-OS-thread view (libomp's "thread descriptor"): which team the thread is
// in, its id, its data environment (ICVs), and its worksharing cursors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/barrier.h"
#include "runtime/common.h"
#include "runtime/icv.h"
#include "runtime/places.h"
#include "runtime/reduce.h"
#include "runtime/task.h"
#include "runtime/worksharing.h"

namespace zomp::rt {

class Team;
class Worker;

/// One entry of the per-master hot-team cache (pool.cpp fast path;
/// DESIGN.md S1.6). The cache is a small fully-associative array keyed on
/// (parent nesting level, num_threads request, binding signature): programs
/// alternating between two region shapes — or forking nested teams from a
/// recycled outer one — hit their own entry instead of rebuild-churning the
/// single slot the cache used to be.
struct HotSlot {
  std::unique_ptr<Team> team;
  std::vector<Worker*> workers;
  i32 level = -1;      ///< parent team level at the fork (-1 = slot empty)
  i32 requested = 0;   ///< the num_threads REQUEST that built the team
  u64 bind_sig = 0;    ///< places.h binding_sig of the team's placement
  i32 undersized_reuses = 0;
  u64 last_use = 0;    ///< LRU stamp from ThreadState::hot_tick
  /// True while the slot's team is executing a region this thread is inside
  /// (an ancestor of the current fork). Such a slot must never be evicted or
  /// cannibalized — its workers are running, not parked.
  bool in_use = false;
};

/// Per-OS-thread runtime state. Exactly one per thread that ever touches the
/// runtime; reachable via `current_thread()`.
struct ThreadState {
  i32 gtid = 0;   ///< process-wide thread id (0 = the bootstrap thread)
  i32 tid = 0;    ///< id within the innermost team
  Team* team = nullptr;  ///< innermost team; never null after binding
  Icv icv;        ///< this thread's data environment
  i32 pushed_num_threads = 0;  ///< one-shot num_threads for the next fork
  /// One-shot proc_bind clause for the next fork (BindKind values;
  /// kUnset = none). The ABI's zomp_push_proc_bind parks the clause here,
  /// mirroring pushed_num_threads.
  BindKind pushed_proc_bind = BindKind::kUnset;

  u64 ws_seq = 0;      ///< worksharing constructs encountered in this region
  u64 single_seq = 0;  ///< single constructs encountered in this region
  u64 red_seq = 0;     ///< reduction constructs encountered in this region
  /// Phase points published through the team's PhaseSync (zomp::algo
  /// constructs; DESIGN.md S11). Monotonic across hot-team reuses exactly
  /// like red_seq — rearm/checkpoint and the nested-fork save/restore carry
  /// it, so stale tokens can never alias a later phase.
  u64 phase_seq = 0;
  MemberDispatch dispatch;  ///< cursor for the in-flight dispatch construct

  /// Innermost executing task context; points into the team's implicit-task
  /// array between explicit tasks.
  TaskContext* current_task = nullptr;

  Worker* worker = nullptr;  ///< pool worker backing this state, if any

  // -- Affinity (DESIGN.md S1.8) --------------------------------------------
  /// Place (index into the process PlaceTable) this thread is logically
  /// assigned to by the innermost bound region; -1 before any binding. This
  /// is what omp_get_place_num reports, and it is maintained even when the
  /// platform refuses sched_setaffinity (binding degrades to a no-op).
  i32 place_num = -1;
  /// Place whose processor mask was last *applied* through sched_setaffinity
  /// on this OS thread (-1 = never). The syscall cache: a hot-team re-arm
  /// with an unchanged binding signature re-assigns the same place, so
  /// Team::bind_member compares and skips the kernel round-trip.
  /// `bound_generation` pins the cache to the place table it indexed — a
  /// replaced table (tests) re-applies even for an equal place number.
  i32 bound_place = -1;
  u32 bound_generation = 0;

  /// Lazily-created size-1 team used when this thread executes runtime
  /// constructs outside any parallel region (orphaned constructs bind to an
  /// implicit team of one, per the spec).
  std::unique_ptr<Team> serial_team;

  // -- Hot-team cache (pool.cpp fork fast path; DESIGN.md S1.6) -------------
  // Recent teams this thread mastered, kept armed with their workers still
  // bound (parked on their doorbells, NOT on the pool's idle list). A fork
  // matching a slot's (level, request, binding signature) re-arms that team
  // in place; misses evict the least-recently-used slot. Per-level entries
  // mean pool workers acting as nested masters cache too — their pinned
  // sub-teams ride here until eviction or thread exit.
  static constexpr i32 kHotSlots = 4;
  HotSlot hot_slots[kHotSlots];
  u64 hot_tick = 0;  ///< LRU clock for the slots

  /// Defined in pool.cpp: dismisses every cached hot team so their workers
  /// return to the pool when this thread exits.
  ~ThreadState();
};

/// Returns (creating on first use) the calling thread's runtime state, bound
/// to its serial team if the thread is not currently in a parallel region.
ThreadState& current_thread();

/// Binds `state` as the calling thread's runtime state. Called once by pool
/// worker threads before they accept work.
void bind_thread_state(ThreadState* state);

/// Hands out process-unique global thread ids (shared by pool workers and
/// user threads that touch the runtime).
i32 allocate_gtid();

/// One-line binding report for `ts`, expanded from the affinity-format-var
/// ICV (icv.h, OMP_AFFINITY_FORMAT): nesting level, thread num, place num,
/// and the place's OS processor ids by default. Used by bind_member's
/// display path and by omp_display_affinity().
std::string affinity_report(const ThreadState& ts);

/// Expands an explicit affinity format string for `ts` — the engine behind
/// omp_capture_affinity(..., format) and the ICV-driven overload above.
/// Field escapes are documented on GlobalIcv::affinity_format(); an
/// unrecognised escape is copied through verbatim.
std::string affinity_report(const ThreadState& ts, const std::string& format);

/// The team executing one parallel region. Construction wires every member's
/// ThreadState; the master thread owns the object and destroys it after all
/// members have checked out.
class Team {
 public:
  /// `members` are the ThreadStates participating, index == tid. Level
  /// counters follow OpenMP semantics: `level` counts enclosing parallel
  /// regions, `active_level` only those with size > 1.
  Team(std::vector<ThreadState*> members, Icv icv, i32 level, i32 active_level);

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// Re-arms this team for another region with the *same members* (the hot
  /// team fast path). Caller must be the master with every other member
  /// checked out and parked. Deliberately master-only — a handful of local
  /// stores, no allocation, and NOT ONE write to another member's state:
  ///
  ///  * Every construct-identity protocol in the team is monotonic (member
  ///    ws/single/red sequence counters against the dispatch ring's
  ///    owner_seq, the single counter, the reduction tree's tokens and
  ///    done_seq, the sense barrier's epoch), so worker-side counters simply
  ///    carry across regions — nothing to reset, no stale-token aliasing.
  ///  * The master's counters were clobbered by the outer save/restore at
  ///    the last join, so the team checkpoints them (checkpoint_master) and
  ///    this call writes them back, keeping all members in step.
  ///  * ICV inheritance is worker-side: each worker refreshes its data
  ///    environment from icv() when it takes the doorbell job, so the
  ///    master only stores the team copy here.
  void rearm(const Icv& icv, i32 level, i32 active_level);

  /// Persists the master's per-region sequence counters into the team at a
  /// hot join (before the outer binding is restored); rearm restores them.
  void checkpoint_master();

  i32 size() const { return static_cast<i32>(members_.size()); }
  i32 level() const { return level_; }
  i32 active_level() const { return active_level_; }
  const Icv& icv() const { return icv_; }
  ThreadState& member(i32 tid) { return *members_[static_cast<std::size_t>(tid)]; }

  /// Enclosing team of the region this team executes (nullptr for level-0
  /// serial teams). Set by the fork path (pool.cpp) before any member runs —
  /// on EVERY fork, hot re-arms included, because a cached team can be
  /// re-entered under a different ancestor. Valid only while the region is
  /// executing; it backs omp_get_team_size(level) and the future
  /// omp_get_ancestor_thread_num.
  Team* parent() const { return parent_; }
  void set_parent(Team* parent) { parent_ = parent; }

  // -- Affinity (DESIGN.md S1.8) --------------------------------------------

  /// Installs this region's placement (places.h plan_binding output) and
  /// recomputes everything locality derives from it: the steal-victim order
  /// table and the per-place dispatch shard map (DESIGN.md S1.9).
  /// Master-only, before any member runs; a hot re-arm with an unchanged
  /// binding signature keeps the previous plan (and derived maps) untouched.
  void set_binding(BindingPlan plan);
  const BindingPlan& binding() const { return binding_; }

  /// The per-place dispatch shard map derived from the binding plan; flat
  /// (nshards == 1) for unbound or single-place teams.
  const ShardMap& shard_map() const { return shard_map_; }

  /// Applies member `tid`'s placement to the calling thread: overrides the
  /// place-partition ICVs copied from the team, records the assigned place,
  /// and — only when the place actually changed — issues sched_setaffinity
  /// (cached via ThreadState::bound_place, so hot-team rearms skip the
  /// syscall). A refused mask leaves the logical assignment in force.
  /// No-op for inactive plans. Emits the OMP_DISPLAY_AFFINITY report line
  /// when enabled and the placement changed.
  void bind_member(ThreadState& ts, i32 tid);

  /// Task-aware barrier: no member leaves until every member has arrived and
  /// every outstanding explicit task of the team has completed. Members help
  /// execute tasks while they wait.
  ///
  /// Barriers are cancellation points (OpenMP 5.2 §5): when `cancel parallel`
  /// has been activated for this team the call returns true WITHOUT waiting
  /// for the other members — the caller must immediately run to the region
  /// end (the join barrier, which is not cancellable, re-synchronises the
  /// team). Waiters already parked re-check the flag and abandon the episode
  /// the same way. Always false when cancellation is disabled.
  [[nodiscard]] bool barrier_wait(i32 tid);

  /// The region-end (join) rendezvous: identical protocol to barrier_wait but
  /// NEVER cancellable — after a cancel every member still meets here, so the
  /// master can safely tear down / re-arm the team. Separate epoch counters
  /// from the user barrier: a cancelled member skips user barriers, so its
  /// user-barrier episode count diverges from the survivors'; the join
  /// counters stay in step because nobody ever skips a join.
  void join_barrier_wait(i32 tid);

  // -- Cancellation (OpenMP 5.2 §11; DESIGN.md S10) --------------------------

  /// Construct-kind bits of cancel_request_ (a bitmask, libomp-style: one
  /// team-wide word rather than per-construct sequencing; sound because a
  /// cancellable worksharing loop cannot be nowait, so the loop bit is dead
  /// by the time the next loop starts — the completing barrier clears it).
  static constexpr i32 kCancelParallel = 1;
  static constexpr i32 kCancelLoop = 2;

  /// `omp cancel parallel|for`: requests cancellation of this team's region
  /// (kCancelParallel) or innermost worksharing loop (kCancelLoop). Returns
  /// true when the caller itself must now branch to the end of the cancelled
  /// construct — i.e. whenever cancellation is enabled (OMP_CANCELLATION),
  /// first requester or not. False (no-op) when disabled.
  bool cancel_activate(ThreadState& ts, i32 construct);

  /// `omp cancellation point parallel|for` (and the implicit checks in
  /// dispatch_next / barrier_wait / execute_task): true when a cancel of
  /// `construct` is pending and the caller must branch to the construct end.
  bool cancellation_requested(ThreadState& ts, i32 construct);

  /// `cancel taskgroup`: marks the innermost taskgroup of `ts`'s current
  /// task cancelled. Queued tasks of the group are discarded at their
  /// scheduling point (body skipped, accounting kept). Returns true when the
  /// *calling task* belongs to the cancelled group (it must return), false
  /// when disabled or no taskgroup is active.
  bool cancel_taskgroup(ThreadState& ts);

  /// True when `ts`'s current task belongs to a cancelled taskgroup (walks
  /// the group parent chain). The `cancellation point taskgroup` check.
  bool taskgroup_cancelled(ThreadState& ts) const;

  /// Clears all cancellation state. Master-only, at region end (after
  /// wait_all_checked_out) and at re-arm — the flags are per-region.
  void reset_cancellation() {
    cancel_request_.store(0, std::memory_order_relaxed);
  }

  // -- Worksharing dispatch ------------------------------------------------

  /// Binds the calling member to the dispatch slot for its next worksharing
  /// construct, initialising the slot if this member arrives first.
  /// `schedule(runtime)` is resolved against the member's ICVs here.
  void dispatch_init(ThreadState& ts, Schedule schedule, i64 lo, i64 hi,
                     i64 step);

  /// Claims the next chunk. Returns false (and detaches the member from the
  /// slot, freeing it once all members detached) when exhausted — or when a
  /// loop/parallel cancel is pending, in which case the remaining iterations
  /// are abandoned un-executed (the cancellation drain: shards empty member
  /// by member as each one's next claim detaches instead).
  bool dispatch_next(ThreadState& ts, i64* plo, i64* phi, bool* plast);

  /// Detaches the calling member from its bound dispatch slot without
  /// claiming further chunks — the escape hatch for a cancellation branch
  /// taken from inside a dispatch-driven loop body (the member still owes
  /// the slot its detach or the ring entry never frees). No-op when no slot
  /// is bound (static-path loops, or dispatch_next already returned false).
  void dispatch_break(ThreadState& ts);

  // -- Per-construct identities ---------------------------------------------

  /// True for exactly one member per `single` construct instance.
  bool single_begin(ThreadState& ts);

  // -- Ordered regions -------------------------------------------------------

  /// Blocks until all iterations before normalised index `index` of the
  /// current ordered loop have released their ordered region. Ordered loops
  /// are always lowered through the dispatch path, whose init resets the
  /// turnstile before any member can claim a chunk.
  void ordered_enter(ThreadState& ts, i64 index);
  void ordered_exit(ThreadState& ts, i64 index);

  // -- Tasking ----------------------------------------------------------------

  TaskPool& tasks() { return tasks_; }

  /// Creates (or, for size-1 teams, `if(false)` tasks and descendants of
  /// final tasks, runs inline) an explicit task whose body is `body`. This is
  /// the zero-dependence fast path; depend/final/priority go through
  /// task_create_ex.
  void task_create(ThreadState& ts, std::function<void()> body,
                   bool deferred = true);

  /// Full-featured task creation: depend(in/out/inout) edges against the
  /// current task's dependence table, if(false)/final undeferred execution
  /// (after dependences are satisfied), priority recording. With
  /// opts.ndeps == 0 this degrades to exactly the task_create fast path.
  void task_create_ex(ThreadState& ts, std::function<void()> body,
                      const TaskOpts& opts);

  /// `taskloop`: splits [lo, hi) into chunk tasks and runs `chunk_body(clo,
  /// chi)` as one task per chunk inside an implicit taskgroup (returns when
  /// every chunk completed). num_tasks > 0 requests that many chunks
  /// (clamped to the trip count); otherwise grainsize > 0 gives
  /// ceil(trips/grainsize) chunks; otherwise a default of
  /// kTaskloopChunksPerMember chunks per member keeps thieves fed without
  /// drowning the deques.
  void taskloop(ThreadState& ts, i64 lo, i64 hi, i64 grainsize, i64 num_tasks,
                std::function<void(i64, i64)> chunk_body);

  /// Task scheduling point: waits until the current task's children finished,
  /// executing queued tasks while waiting. Also retires the current task's
  /// dependence table — every registered node is complete once the children
  /// count drains, so later siblings start against a fresh wavefront.
  void taskwait(ThreadState& ts);

  void taskgroup_begin(ThreadState& ts, TaskGroup& group);
  void taskgroup_end(ThreadState& ts, TaskGroup& group);

  /// Runs queued tasks until the pool is momentarily empty. Used by tests and
  /// by the join path.
  bool run_one_task(ThreadState& ts);

  // -- Reductions --------------------------------------------------------------

  /// Team-wide reduction rendezvous (see reduce.h): tree-combines every
  /// member's `data` with `fn`, returning true on the single member (the
  /// winner) that must fold the combined value — now in its `data` — into
  /// the construct's shared target. With `broadcast`, every member's `data`
  /// holds the combined value on return. One barrier-equivalent, no global
  /// lock. Must be reached by every member of the team, like a barrier.
  bool reduce_combine(ThreadState& ts, void* data, std::size_t size,
                      ReduceCombineFn fn, void* ctx, bool broadcast);

  // -- Phase synchronisation (zomp::algo; DESIGN.md S11) ---------------------
  //
  // Thin cancellation-aware wrappers over the team's PhaseSync. Every member
  // of a multi-phase algorithm passes the same phase points in the same
  // order; phase_next() advances the calling member's counter and returns
  // the team-wide phase number, publish/await move payloads between members,
  // and the await forms are abandonable: false means `cancel parallel` is
  // pending and the caller must run to the region end without publishing
  // further phases (every other awaiter bails on the same flag, so nobody is
  // left waiting on a member that went quiet).

  /// Advances and returns the calling member's next phase number. All
  /// members must call this once per phase point, including members whose
  /// slice of the work is empty — the number is a team-wide identity.
  u64 phase_next(ThreadState& ts) { return ++ts.phase_seq; }

  /// Publishes the calling member's arrival at `seq` with an optional
  /// payload (<= PhaseSync::kSlotBytes bytes).
  void phase_publish(ThreadState& ts, u64 seq, const void* data = nullptr,
                     std::size_t size = 0);

  /// Waits for `member` to publish phase `seq`, copying its payload out.
  /// False = abandoned under a pending cancel-parallel.
  [[nodiscard]] bool phase_await(i32 member, u64 seq, void* out = nullptr,
                                 std::size_t size = 0);

  /// Waits for every member to publish phase `seq` (a phase barrier without
  /// the task-drain obligation of barrier_wait). Same abandonment contract.
  [[nodiscard]] bool phase_await_all(u64 seq);

  // -- Join bookkeeping ------------------------------------------------------

  /// Non-master members call this as their very last access to the team.
  void check_out() { checked_out_.fetch_add(1, std::memory_order_release); }

  /// Master blocks until all other members have checked out, making it safe
  /// to destroy the team.
  void wait_all_checked_out();

 private:
  static constexpr i32 kDispatchRing = 8;

  /// The barrier protocols themselves; the public entry points wrap them
  /// with the S12 observability hooks (episode events + wait-time metrics).
  bool barrier_wait_body(i32 tid);
  void join_barrier_wait_body(i32 tid);
  /// Default taskloop chunking (neither grainsize nor num_tasks): this many
  /// chunks per team member, enough slack for stealing to balance uneven
  /// chunk costs while keeping per-task overhead amortised.
  static constexpr i64 kTaskloopChunksPerMember = 4;

  /// Runs a task body with full parent/group accounting. `counted` says the
  /// task went through the pool (and must decrement `outstanding`); tasks
  /// that overflowed the bounded deque run inline with counted == false.
  void execute_task(ThreadState& ts, std::unique_ptr<Task> task,
                    bool counted = true);

  /// Runs `body` undeferred at the creation point in a fresh task context
  /// (the if(false)/final/serial-team path).
  void run_task_inline(ThreadState& ts, std::function<void()>& body,
                       bool final_ctx);

  /// Builds a deferred task and links it into the parent/group counts — the
  /// one place Task construction and accounting live, shared by the fast
  /// path, the with-clauses path, and the dependence path (which parks the
  /// result instead of enqueueing it).
  std::unique_ptr<Task> new_task(ThreadState& ts, std::function<void()> body,
                                 i32 priority);

  /// Publishes a ready task: pushes onto `ts`'s deque (waking parked join
  /// waiters so they can help) or, when the bounded deque is full, executes
  /// it inline — a legal task scheduling point that also releases the
  /// rejected task's own successors.
  void enqueue_task(ThreadState& ts, std::unique_ptr<Task> task);

  /// Marks `node` complete and releases its successors: each successor whose
  /// predecessor count hits zero is unparked onto `ts`'s deque. Called
  /// before the completing task's own outstanding/children decrements so the
  /// join barrier's drain count never dips to zero with a releasable task
  /// still parked.
  void complete_depnode(ThreadState& ts, DepNode& node);

  /// Recomputes the locality products of the binding plan: the shard map and
  /// the hierarchical steal-victim order (DESIGN.md S1.9). Master-only,
  /// while the team is quiescent (construction / set_binding).
  void rebuild_locality();

  /// True when `task` must be discarded at its scheduling point: a parallel
  /// cancel is pending, or the task's taskgroup chain contains a cancelled
  /// group. execute_task skips the body but keeps all accounting.
  bool task_discarded(const Task& task) const;

  /// The one slot-detach protocol, shared by exhaustion (dispatch_next) and
  /// cancellation escape (dispatch_break): the last member to detach frees
  /// the ring entry for reuse.
  void dispatch_detach(ThreadState& ts, DispatchSlot& slot);

  std::vector<ThreadState*> members_;
  Icv icv_;
  i32 level_ = 0;
  i32 active_level_ = 0;
  /// Enclosing team while this region executes (see parent()).
  Team* parent_ = nullptr;

  /// This region's placement; inactive (default) teams bind nothing.
  BindingPlan binding_;

  /// Per-place dispatch shards derived from binding_ (see shard_map()).
  ShardMap shard_map_;

  // Task-aware sense barrier (epoch-based so members need no local flag).
  alignas(kCacheLine) std::atomic<i32> bar_arrived_{0};
  alignas(kCacheLine) std::atomic<u64> bar_epoch_{0};
  /// Join-barrier counters: same sense-barrier protocol, separate identity
  /// stream so cancelled members (who skip user barriers) stay in step at
  /// the region end. Shares bar_gate_ — park predicates re-check both.
  alignas(kCacheLine) std::atomic<i32> join_arrived_{0};
  alignas(kCacheLine) std::atomic<u64> join_epoch_{0};
  /// Pending-cancel bitmask (kCancelParallel | kCancelLoop). The loop bit is
  /// cleared by the last arriver of the next completed user barrier (the
  /// cancelled loop's closing barrier — cancellable loops are never nowait);
  /// the parallel bit by reset_cancellation at region end.
  alignas(kCacheLine) std::atomic<i32> cancel_request_{0};
  /// Condvar park for join-barrier waiters that outlasted the doorbell grace
  /// (ROADMAP "barrier waiters never condvar-park" item; protocol in
  /// barrier.h). Woken by the epoch flip and by task enqueues, so parked
  /// waiters still help with late task bursts.
  WaitGate bar_gate_;

  DispatchSlot dispatch_ring_[kDispatchRing];

  alignas(kCacheLine) std::atomic<u64> single_counter_{0};

  // One ordered loop in flight at a time (ordered + nowait is rejected by the
  // directive engine, so the enclosing loop's barrier serialises instances).
  alignas(kCacheLine) std::atomic<i64> ordered_next_{0};

  /// Implicit-task contexts, one per member (index == tid). Owned by the
  /// team so nested regions cannot corrupt an outer region's child counts.
  std::vector<TaskContext> implicit_ctx_;

  TaskPool tasks_;

  ReductionTree reduce_tree_;

  /// Per-member phase slots for the algo-layer constructs (barrier.h).
  /// Survives hot-team recycling without reset — phase numbers are
  /// monotonic across regions, like the reduction tree's tokens.
  PhaseSync phase_sync_;

  /// Master sequence counters persisted across hot-team reuses (see rearm).
  u64 master_ws_seq_ = 0;
  u64 master_single_seq_ = 0;
  u64 master_red_seq_ = 0;
  u64 master_phase_seq_ = 0;

  alignas(kCacheLine) std::atomic<i32> checked_out_{0};
};

}  // namespace zomp::rt
