// Table 1 reproduction (the paper's headline result).
//
// Paper: runtime of the benchmark reference implementations vs the Zig+OpenMP
// ports over one 128-core ARCHER2 node, NPB class C. Reference languages:
// Fortran+OpenMP for CG and EP, C+OpenMP for IS and Mandelbrot. Finding:
// Zig ~11-12% faster on CG/EP, ~5-11% slower on IS/Mandelbrot.
//
// This harness reproduces the comparison shape on host hardware:
//   Reference  = hand-written C++ kernels on the zomp runtime; CG and EP are
//                invoked through the Fortran ABI shim (trailing-underscore
//                symbols, all-by-reference) exactly as the paper calls its
//                Fortran references.
//   Zig+OpenMP = the MiniZig kernels (src/npb/kernels/*.mz) transpiled by
//                mzc at build time through the directive engine.
//
// Defaults use the laptop-scale "Q" size so the whole suite runs in seconds;
// --class S|W|A selects real NPB classes, --threads the team size,
// --repeats best-of count. Results are verified before timing is reported.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cg_mz.h"
#include "ep_mz.h"
#include "is_mz.h"
#include "mandel_mz.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/fortran_iface.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "runtime/api.h"

namespace {

using bench::slice_of;

struct Row {
  const char* name;
  double reference_s;
  double zig_s;
  bool ref_ok;
  bool zig_ok;
};

struct Sizes {
  int ep_m;
  char cg_class;
  char is_class;
  zomp::npb::MandelParams mandel;
};

Sizes sizes_for(const std::string& cls) {
  Sizes s;
  if (cls == "Q") {
    // Quick default: seconds on a laptop, but large enough that compute
    // (not fork/barrier overhead) dominates, so the ratios are meaningful.
    s.ep_m = 22;
    s.cg_class = 'W';
    s.is_class = 'W';
    s.mandel = {512, 512, 2000};
  } else if (cls == "S") {
    s.ep_m = 24;
    s.cg_class = 'S';
    s.is_class = 'S';
    s.mandel = {1024, 1024, 5000};
  } else if (cls == "W") {
    s.ep_m = 25;
    s.cg_class = 'W';
    s.is_class = 'W';
    s.mandel = {2048, 2048, 10000};
  } else {  // "A"
    s.ep_m = 28;
    s.cg_class = 'A';
    s.is_class = 'A';
    s.mandel = {4096, 4096, 20000};
  }
  return s;
}

Row run_cg(char cls_name, int threads, int repeats) {
  using namespace zomp::npb;
  const CgClass cls = cg_class(cls_name);
  SparseMatrix a = cg_make_matrix(cls.na, cls.nonzer);
  const std::int64_t n = a.n;

  Row row{"CG", 0, 0, false, false};

  // Reference: through the Fortran ABI (by-reference scalars, bare array
  // pointers) — the paper's CG reference is Fortran+OpenMP.
  double zeta = 0.0;
  double rnorm = 0.0;
  const std::int64_t niter = cls.niter;
  const std::int64_t nth = threads;
  row.reference_s = bench::best_of(repeats, [&] {
    cg_solve_(&n, a.rowstr.data(), a.colidx.data(), a.values.data(), &niter,
              &cls.shift, &nth, &zeta, &rnorm);
  });
  row.ref_ok = cg_verify(CgResult{zeta, rnorm, cls.niter}, cls);

  // Zig+OpenMP: the transpiled MiniZig kernel on the same matrix.
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> z(static_cast<std::size_t>(n));
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> q(static_cast<std::size_t>(n));
  std::vector<double> rnorm_out(1, 0.0);
  zomp::set_num_threads(threads);
  double mz_zeta = 0.0;
  row.zig_s = bench::best_of(repeats, [&] {
    mz_zeta = mzgen_cg_mz::cg_run(
        slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values),
        slice_of(x), slice_of(z), slice_of(r), slice_of(p), slice_of(q),
        cls.niter, cls.shift, slice_of(rnorm_out));
  });
  row.zig_ok = cg_verify(CgResult{mz_zeta, rnorm_out[0], cls.niter}, cls);
  return row;
}

Row run_ep(int m, int threads, int repeats) {
  using namespace zomp::npb;
  // The class descriptor with matching m (if any) provides verification.
  EpClass cls = ep_class('m');
  for (char c : {'S', 'W', 'A', 'm'}) {
    if (ep_class(c).m == m) cls = ep_class(c);
  }

  Row row{"EP", 0, 0, false, false};

  const std::int64_t m64 = m;
  const std::int64_t nth = threads;
  double sx = 0.0;
  double sy = 0.0;
  std::int64_t accepted = 0;
  row.reference_s = bench::best_of(repeats, [&] {
    ep_kernel_(&m64, &nth, &sx, &sy, &accepted);
  });
  EpResult ref;
  ref.sx = sx;
  ref.sy = sy;
  row.ref_ok = cls.m == m ? ep_verify(ref, cls) : true;

  std::vector<double> q(10, 0.0);
  std::vector<double> res(3, 0.0);
  zomp::set_num_threads(threads);
  row.zig_s = bench::best_of(repeats, [&] {
    mzgen_ep_mz::ep_run(m, slice_of(q), slice_of(res));
  });
  EpResult mz;
  mz.sx = res[0];
  mz.sy = res[1];
  row.zig_ok = cls.m == m ? ep_verify(mz, cls) : true;
  return row;
}

Row run_is(char cls_name, int threads, int repeats) {
  using namespace zomp::npb;
  const IsClass cls = is_class(cls_name);
  const std::vector<std::int64_t> keys0 =
      is_make_keys(cls.total_keys, cls.max_key);

  Row row{"IS", 0, 0, false, false};

  // Verification (checksum + sorted-order) runs once, untimed; the timed
  // runs cover the ranking rounds only, matching the MiniZig kernel's scope.
  row.ref_ok =
      is_verify(is_parallel(keys0, cls.max_key, cls.iterations, threads), cls);
  IsResult ref;
  row.reference_s = bench::best_of(repeats, [&] {
    ref = is_parallel(keys0, cls.max_key, cls.iterations, threads,
                      /*full_sort=*/false);
  });
  row.ref_ok = row.ref_ok && ref.rank_checksum == cls.verify_checksum;

  const std::int64_t expect_mod =
      is_rank_checksum_mod(keys0, cls.max_key, cls.iterations);
  std::vector<std::int64_t> keys = keys0;
  std::vector<std::int64_t> count(static_cast<std::size_t>(cls.max_key));
  std::vector<std::int64_t> hist(
      static_cast<std::size_t>(cls.max_key) *
      static_cast<std::size_t>(std::max(threads, zomp::max_threads())));
  zomp::set_num_threads(threads);
  std::int64_t mz_checksum = 0;
  row.zig_s = bench::best_of(repeats, [&] {
    keys = keys0;
    mz_checksum = mzgen_is_mz::is_run(slice_of(keys), cls.max_key,
                                      cls.iterations, slice_of(count),
                                      slice_of(hist));
  });
  row.zig_ok = mz_checksum == expect_mod;
  return row;
}

Row run_mandel(const zomp::npb::MandelParams& params, int threads,
               int repeats) {
  using namespace zomp::npb;
  Row row{"Mandelbrot", 0, 0, false, false};

  // Small serial render pins down the expected counts exactly.
  const MandelResult expect = mandel_serial(params);

  MandelResult ref;
  row.reference_s = bench::best_of(repeats, [&] {
    ref = mandel_parallel(params, threads, /*schedule=dynamic*/ 1, 1);
  });
  row.ref_ok =
      ref.inside == expect.inside && ref.iter_checksum == expect.iter_checksum;

  std::vector<std::int64_t> res(2, 0);
  zomp::set_num_threads(threads);
  row.zig_s = bench::best_of(repeats, [&] {
    mzgen_mandel_mz::mandel_run(params.width, params.height, params.max_iter,
                                slice_of(res));
  });
  row.zig_ok = res[0] == expect.inside &&
               static_cast<std::uint64_t>(res[1]) == expect.iter_checksum;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const std::string cls = args.get("class", "Q");
  const int threads = static_cast<int>(args.get_int("threads", zomp::num_procs()));
  const int repeats = static_cast<int>(args.get_int("repeats", 1));
  const Sizes sizes = sizes_for(cls);

  std::printf("# Table 1 — Performance of benchmark reference implementation "
              "against the Zig(MiniZig)+OpenMP approach\n");
  std::printf("# paper: 128 cores (ARCHER2), NPB class C | this run: %d "
              "threads, size '%s', best of %d\n",
              threads, cls.c_str(), repeats);
  std::printf("# paper runtimes (s): CG ref 2.07 / zig 1.81; EP ref 1.42 / "
              "zig 1.27; IS ref 0.24 / zig 0.27; Mandelbrot ref 5.08 / zig "
              "5.36\n\n");

  Row rows[] = {
      run_cg(sizes.cg_class, threads, repeats),
      run_ep(sizes.ep_m, threads, repeats),
      run_is(sizes.is_class, threads, repeats),
      run_mandel(sizes.mandel, threads, repeats),
  };

  std::printf("%-12s %14s %14s %10s %8s\n", "Benchmark", "Reference(s)",
              "Zig+OpenMP(s)", "Zig/Ref", "Verify");
  for (const Row& row : rows) {
    std::printf("%-12s %14.4f %14.4f %9.3fx %8s\n", row.name, row.reference_s,
                row.zig_s, row.zig_s / row.reference_s,
                row.ref_ok && row.zig_ok ? "ok" : "FAIL");
  }
  bool all_ok = true;
  for (const Row& row : rows) all_ok = all_ok && row.ref_ok && row.zig_ok;
  return all_ok ? 0 : 1;
}
