// Speedup series (paper §3.1: "Results, including total runtime and speedup,
// were compared to the reference implementation, with speedup calculated
// relative to single-thread execution").
//
// For every benchmark and both implementations (Reference / Zig+OpenMP) this
// prints runtime and speedup at 1, 2, 4, ... threads up to --max-threads
// (default: the machine's processor count). The paper's corresponding data
// is the per-benchmark speedup at 128 ARCHER2 cores; here the series shape
// (monotone speedup, both versions tracking each other) is the
// reproduction target.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cg_mz.h"
#include "ep_mz.h"
#include "mandel_mz.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/mandel.h"
#include "runtime/api.h"

namespace {

using bench::slice_of;

struct Series {
  const char* benchmark;
  const char* version;
  std::vector<double> runtime;  // indexed like thread_counts
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int max_threads =
      static_cast<int>(args.get_int("max-threads", zomp::num_procs()));
  const int repeats = static_cast<int>(args.get_int("repeats", 1));
  const int ep_m = static_cast<int>(args.get_int("ep-m", 22));
  const char cg_cls = args.get("cg-class", "W")[0];

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::vector<Series> series;

  // --- CG ---
  {
    using namespace zomp::npb;
    const CgClass cls = cg_class(cg_cls);
    SparseMatrix a = cg_make_matrix(cls.na, cls.nonzer);
    Series ref{"CG", "Reference", {}};
    Series zig{"CG", "Zig+OpenMP", {}};
    std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
    std::vector<double> rnorm_out(1);
    for (const int t : thread_counts) {
      ref.runtime.push_back(bench::best_of(
          repeats, [&] { cg_parallel(a, cls.niter, cls.shift, t); }));
      zomp::set_num_threads(t);
      zig.runtime.push_back(bench::best_of(repeats, [&] {
        mzgen_cg_mz::cg_run(slice_of(a.rowstr), slice_of(a.colidx),
                            slice_of(a.values), slice_of(x), slice_of(z),
                            slice_of(r), slice_of(p), slice_of(q), cls.niter,
                            cls.shift, slice_of(rnorm_out));
      }));
    }
    series.push_back(std::move(ref));
    series.push_back(std::move(zig));
  }

  // --- EP ---
  {
    using namespace zomp::npb;
    Series ref{"EP", "Reference", {}};
    Series zig{"EP", "Zig+OpenMP", {}};
    std::vector<double> q(10), res(3);
    for (const int t : thread_counts) {
      ref.runtime.push_back(
          bench::best_of(repeats, [&] { ep_parallel(ep_m, t); }));
      zomp::set_num_threads(t);
      zig.runtime.push_back(bench::best_of(
          repeats, [&] { mzgen_ep_mz::ep_run(ep_m, slice_of(q), slice_of(res)); }));
    }
    series.push_back(std::move(ref));
    series.push_back(std::move(zig));
  }

  // --- Mandelbrot ---
  {
    using namespace zomp::npb;
    const MandelParams params{512, 512, 2000};
    Series ref{"Mandelbrot", "Reference", {}};
    Series zig{"Mandelbrot", "Zig+OpenMP", {}};
    std::vector<std::int64_t> res(2);
    for (const int t : thread_counts) {
      ref.runtime.push_back(bench::best_of(
          repeats, [&] { mandel_parallel(params, t, /*dynamic*/ 1, 1); }));
      zomp::set_num_threads(t);
      zig.runtime.push_back(bench::best_of(repeats, [&] {
        mzgen_mandel_mz::mandel_run(params.width, params.height,
                                    params.max_iter, slice_of(res));
      }));
    }
    series.push_back(std::move(ref));
    series.push_back(std::move(zig));
  }

  std::printf("# Speedup vs single thread (paper §3.1 series)\n");
  std::printf("%-12s %-12s %8s %12s %10s\n", "benchmark", "version", "threads",
              "runtime(s)", "speedup");
  for (const Series& s : series) {
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::printf("%-12s %-12s %8d %12.4f %9.2fx\n", s.benchmark, s.version,
                  thread_counts[i], s.runtime[i], s.runtime[0] / s.runtime[i]);
    }
  }
  return 0;
}
