// Optimizer pass pipeline benches (mzc -O1, core/passes.h) — the perf
// evidence behind the PR's acceptance gates:
//
//   BM_StaticSpecialized vs BM_StaticStrided vs BM_RingDispatch
//     The same parallel sum partitioned three ways at ABI level:
//     zomp_static_range (the `static-spec` lowering: one call, one
//     contiguous block), the general zomp_for_static_init strided
//     protocol, and the zomp_dispatch_* ring the specialization bypasses.
//
//   BM_FusedRegions vs BM_BackToBackForks
//     Two loop bodies executed inside ONE fork with an internal barrier
//     (the `fuse` lowering) vs two complete fork/join cycles.
//
//   BM_Table1ClassS_*
//     The transpiled NPB kernels at class S, -O0 vs -O1 builds of the
//     same .mz sources — the end-to-end check that the optimizer never
//     regresses whole kernels. Medians come from the repetition set
//     (--benchmark_repetitions; CI stores the JSON as BENCH_mzc_opt.json).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "cg_mz.h"
#include "cg_mz_o0.h"
#include "ep_mz.h"
#include "ep_mz_o0.h"
#include "is_mz.h"
#include "is_mz_o0.h"
#include "mandel_mz.h"
#include "mandel_mz_o0.h"
#include "npb/cg.h"
#include "npb/ep.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "runtime/abi.h"
#include "runtime/api.h"

namespace {

using bench::slice_of;

constexpr std::int64_t kIters = 1 << 20;
constexpr int kMaxThreads = 64;

struct alignas(64) PaddedSum {
  std::int64_t v;
};
PaddedSum g_sums[kMaxThreads];

const zomp_ident_t kLoc{"mzc_opt.cpp", "bench", 0};

// The three partitioning protocols, each the literal shape mzc emits.

void microtask_static_spec(std::int32_t gtid, std::int32_t tid, void**) {
  std::int64_t lo = 0, hi = 0;
  std::int32_t last = 0;
  zomp_static_range(&kLoc, gtid, 0, kIters, &lo, &hi, &last);
  std::int64_t s = 0;
  for (std::int64_t i = lo; i < hi; ++i) s += i;
  g_sums[tid].v = s;
}

void microtask_static_strided(std::int32_t gtid, std::int32_t tid, void**) {
  std::int64_t lo = 0, hi = 0, stride = 0;
  std::int32_t last = 0;
  zomp_for_static_init(&kLoc, gtid, 0, 0, kIters, 1, &lo, &hi, &stride,
                       &last);
  std::int64_t s = 0;
  for (std::int64_t blo = lo; blo < kIters; blo += stride) {
    const std::int64_t bhi = blo + (hi - lo) < kIters ? blo + (hi - lo)
                                                      : kIters;
    for (std::int64_t i = blo; i < bhi; ++i) s += i;
  }
  zomp_for_static_fini(&kLoc, gtid);
  g_sums[tid].v = s;
}

void microtask_ring_dispatch(std::int32_t gtid, std::int32_t tid, void**) {
  zomp_dispatch_init(&kLoc, gtid, /*dynamic=*/1, /*chunk=*/64, 0, kIters, 1);
  std::int64_t lo = 0, hi = 0, s = 0;
  std::int32_t last = 0;
  while (zomp_dispatch_next(&kLoc, gtid, &lo, &hi, &last) != 0) {
    for (std::int64_t i = lo; i < hi; ++i) s += i;
  }
  g_sums[tid].v = s;
}

std::int64_t run_fork(zomp_microtask_t fn, int threads) {
  for (auto& p : g_sums) p.v = 0;
  zomp_push_num_threads(&kLoc, threads);
  zomp_fork_call(&kLoc, fn, 0, nullptr);
  std::int64_t total = 0;
  for (const auto& p : g_sums) total += p.v;
  return total;
}

constexpr std::int64_t kExpected = kIters * (kIters - 1) / 2;

void thread_args(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4)->Arg(8);
  b->Unit(benchmark::kMicrosecond);
}

void BM_StaticSpecialized(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (run_fork(microtask_static_spec, threads) != kExpected) {
      state.SkipWithError("bad sum");
    }
  }
}
ZOMP_BENCHMARK(BM_StaticSpecialized)->Apply(thread_args);

void BM_StaticStrided(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (run_fork(microtask_static_strided, threads) != kExpected) {
      state.SkipWithError("bad sum");
    }
  }
}
ZOMP_BENCHMARK(BM_StaticStrided)->Apply(thread_args);

void BM_RingDispatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (run_fork(microtask_ring_dispatch, threads) != kExpected) {
      state.SkipWithError("bad sum");
    }
  }
}
ZOMP_BENCHMARK(BM_RingDispatch)->Apply(thread_args);

// -- fusion: one fork + internal barrier vs two fork/join cycles -------------

void body_phase(std::int32_t gtid, std::int32_t tid, std::int64_t mult) {
  std::int64_t lo = 0, hi = 0;
  std::int32_t last = 0;
  zomp_static_range(&kLoc, gtid, 0, kIters, &lo, &hi, &last);
  std::int64_t s = 0;
  for (std::int64_t i = lo; i < hi; ++i) s += i * mult;
  g_sums[tid].v += s;
}

void microtask_fused(std::int32_t gtid, std::int32_t tid, void**) {
  body_phase(gtid, tid, 1);
  zomp_barrier(&kLoc, gtid);
  body_phase(gtid, tid, 2);
}

void microtask_phase1(std::int32_t gtid, std::int32_t tid, void**) {
  body_phase(gtid, tid, 1);
}

void microtask_phase2(std::int32_t gtid, std::int32_t tid, void**) {
  body_phase(gtid, tid, 2);
}

void BM_FusedRegions(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    if (run_fork(microtask_fused, threads) != 3 * kExpected) {
      state.SkipWithError("bad sum");
    }
  }
}
ZOMP_BENCHMARK(BM_FusedRegions)->Apply(thread_args);

void BM_BackToBackForks(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (auto& p : g_sums) p.v = 0;
    zomp_push_num_threads(&kLoc, threads);
    zomp_fork_call(&kLoc, microtask_phase1, 0, nullptr);
    zomp_push_num_threads(&kLoc, threads);
    zomp_fork_call(&kLoc, microtask_phase2, 0, nullptr);
    std::int64_t total = 0;
    for (const auto& p : g_sums) total += p.v;
    if (total != 3 * kExpected) state.SkipWithError("bad sum");
  }
}
ZOMP_BENCHMARK(BM_BackToBackForks)->Apply(thread_args);

// -- table 1, class S, both opt levels ---------------------------------------

void table_args(benchmark::internal::Benchmark* b) {
  // arg: 0 = the -O0 transpile, 1 = the -O1 (default) transpile.
  b->Arg(0)->Arg(1);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1)->Repetitions(3)->ReportAggregatesOnly(true);
}

void BM_Table1ClassS_Ep(benchmark::State& state) {
  const zomp::npb::EpClass cls = zomp::npb::ep_class('S');
  zomp::set_num_threads(4);
  std::vector<double> q(10, 0.0), res(3, 0.0);
  for (auto _ : state) {
    if (state.range(0) == 0) {
      mzgen_ep_mz_o0::ep_run(cls.m, slice_of(q), slice_of(res));
    } else {
      mzgen_ep_mz::ep_run(cls.m, slice_of(q), slice_of(res));
    }
    benchmark::DoNotOptimize(res[2]);
  }
  state.SetLabel(state.range(0) == 0 ? "-O0" : "-O1");
}
ZOMP_BENCHMARK(BM_Table1ClassS_Ep)->Apply(table_args);

void BM_Table1ClassS_Cg(benchmark::State& state) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('S');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  zomp::set_num_threads(4);
  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x),
      q(x);
  std::vector<double> rnorm(1, 0.0);
  for (auto _ : state) {
    const double zeta =
        state.range(0) == 0
            ? mzgen_cg_mz_o0::cg_run(slice_of(a.rowstr), slice_of(a.colidx),
                                     slice_of(a.values), slice_of(x),
                                     slice_of(z), slice_of(r), slice_of(p),
                                     slice_of(q), cls.niter, cls.shift,
                                     slice_of(rnorm))
            : mzgen_cg_mz::cg_run(slice_of(a.rowstr), slice_of(a.colidx),
                                  slice_of(a.values), slice_of(x),
                                  slice_of(z), slice_of(r), slice_of(p),
                                  slice_of(q), cls.niter, cls.shift,
                                  slice_of(rnorm));
    benchmark::DoNotOptimize(zeta);
  }
  state.SetLabel(state.range(0) == 0 ? "-O0" : "-O1");
}
ZOMP_BENCHMARK(BM_Table1ClassS_Cg)->Apply(table_args);

void BM_Table1ClassS_Is(benchmark::State& state) {
  const zomp::npb::IsClass cls = zomp::npb::is_class('S');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);
  constexpr int kThreads = 4;
  zomp::set_num_threads(kThreads);
  for (auto _ : state) {
    std::vector<std::int64_t> keys = keys0;
    std::vector<std::int64_t> count(static_cast<std::size_t>(cls.max_key));
    std::vector<std::int64_t> hist(
        static_cast<std::size_t>(cls.max_key * kThreads));
    const std::int64_t sum =
        state.range(0) == 0
            ? mzgen_is_mz_o0::is_run(slice_of(keys), cls.max_key,
                                     cls.iterations, slice_of(count),
                                     slice_of(hist))
            : mzgen_is_mz::is_run(slice_of(keys), cls.max_key, cls.iterations,
                                  slice_of(count), slice_of(hist));
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(state.range(0) == 0 ? "-O0" : "-O1");
}
ZOMP_BENCHMARK(BM_Table1ClassS_Is)->Apply(table_args);

void BM_Table1ClassS_Mandel(benchmark::State& state) {
  constexpr std::int64_t w = 256, h = 256, iters = 1500;
  zomp::set_num_threads(4);
  std::vector<std::int64_t> res(2, 0);
  for (auto _ : state) {
    if (state.range(0) == 0) {
      mzgen_mandel_mz_o0::mandel_run(w, h, iters, slice_of(res));
    } else {
      mzgen_mandel_mz::mandel_run(w, h, iters, slice_of(res));
    }
    benchmark::DoNotOptimize(res[1]);
  }
  state.SetLabel(state.range(0) == 0 ? "-O0" : "-O1");
}
ZOMP_BENCHMARK(BM_Table1ClassS_Mandel)->Apply(table_args);

}  // namespace

BENCHMARK_MAIN();
