// Ablation A2: runtime safety checks (the paper's motivation — Zig offers
// "several optional runtime safety features, such as array bounds checking"
// while "retaining performance comparable to that of C").
//
// The same MiniZig kernels are transpiled twice at build time: once plain
// (ReleaseFast analogue) and once with --safe (ReleaseSafe analogue: every
// slice access bounds-checked). This bench measures the cost of the checks
// on real kernels — the quantitative footnote to the paper's safety thesis.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "cg_mz.h"
#include "cg_mz_safe.h"
#include "mandel_mz.h"
#include "mandel_mz_safe.h"
#include "npb/cg.h"

namespace {

using bench::slice_of;

void BM_CgUnchecked(benchmark::State& state) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('S');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
  std::vector<double> rnorm(1);
  for (auto _ : state) {
    const double zeta = mzgen_cg_mz::cg_run(
        slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values),
        slice_of(x), slice_of(z), slice_of(r), slice_of(p), slice_of(q),
        cls.niter, cls.shift, slice_of(rnorm));
    benchmark::DoNotOptimize(zeta);
  }
  state.SetLabel("ReleaseFast analogue");
}
BENCHMARK(BM_CgUnchecked)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_CgBoundsChecked(benchmark::State& state) {
  const zomp::npb::CgClass cls = zomp::npb::cg_class('S');
  zomp::npb::SparseMatrix a = zomp::npb::cg_make_matrix(cls.na, cls.nonzer);
  std::vector<double> x(static_cast<std::size_t>(a.n)), z(x), r(x), p(x), q(x);
  std::vector<double> rnorm(1);
  for (auto _ : state) {
    const double zeta = mzgen_cg_mz_safe::cg_run(
        slice_of(a.rowstr), slice_of(a.colidx), slice_of(a.values),
        slice_of(x), slice_of(z), slice_of(r), slice_of(p), slice_of(q),
        cls.niter, cls.shift, slice_of(rnorm));
    benchmark::DoNotOptimize(zeta);
  }
  state.SetLabel("ReleaseSafe analogue (bounds-checked slices)");
}
BENCHMARK(BM_CgBoundsChecked)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_MandelUnchecked(benchmark::State& state) {
  std::vector<std::int64_t> res(2);
  for (auto _ : state) {
    mzgen_mandel_mz::mandel_run(256, 256, 2000, slice_of(res));
    benchmark::DoNotOptimize(res[0]);
  }
  state.SetLabel("ReleaseFast analogue");
}
BENCHMARK(BM_MandelUnchecked)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_MandelBoundsChecked(benchmark::State& state) {
  std::vector<std::int64_t> res(2);
  for (auto _ : state) {
    mzgen_mandel_mz_safe::mandel_run(256, 256, 2000, slice_of(res));
    benchmark::DoNotOptimize(res[0]);
  }
  state.SetLabel("ReleaseSafe analogue (bounds-checked slices)");
}
BENCHMARK(BM_MandelBoundsChecked)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
