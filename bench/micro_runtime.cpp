// Ablation A3: runtime-primitive microbenchmarks, EPCC-style (the authors'
// institution publishes the classic OpenMP overhead suite; this is the zomp
// equivalent). Measures the primitives the NPB kernels lean on: fork/join,
// barrier algorithms (centralized vs tree), worksharing dispatch per
// schedule, reduction, critical sections, locks, and task spawn/drain.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace {

using zomp::rt::Barrier;
using zomp::rt::BarrierKind;

int bench_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 2 : static_cast<int>(hc);
}

void BM_ForkJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::atomic<int> sink{0};
  for (auto _ : state) {
    zomp::parallel([&] { sink.fetch_add(1, std::memory_order_relaxed); },
                   zomp::ParallelOptions{threads, true});
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond)->Iterations(200);

void BM_BarrierCentral(benchmark::State& state) {
  const int threads = bench_threads();
  const int rounds = 64;
  for (auto _ : state) {
    auto barrier = Barrier::create(BarrierKind::kCentral, threads);
    zomp::parallel(
        [&] {
          const int tid = zomp::thread_num();
          for (int i = 0; i < rounds; ++i) barrier->wait(tid);
        },
        zomp::ParallelOptions{threads, true});
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_BarrierCentral)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_BarrierTree(benchmark::State& state) {
  const int threads = bench_threads();
  const int rounds = 64;
  for (auto _ : state) {
    auto barrier = Barrier::create(BarrierKind::kTree, threads);
    zomp::parallel(
        [&] {
          const int tid = zomp::thread_num();
          for (int i = 0; i < rounds; ++i) barrier->wait(tid);
        },
        zomp::ParallelOptions{threads, true});
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_BarrierTree)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_WorksharingDispatch(benchmark::State& state) {
  // kind: 0 static, 1 dynamic, 2 guided; iterations fixed, chunk varies.
  const auto kind = static_cast<zomp::rt::ScheduleKind>(state.range(0));
  const auto chunk = static_cast<std::int64_t>(state.range(1));
  constexpr std::int64_t n = 1 << 14;
  std::vector<double> data(n, 1.0);
  for (auto _ : state) {
    zomp::parallel([&] {
      zomp::for_each(
          0, n, [&](std::int64_t i) { data[static_cast<std::size_t>(i)] *= 1.0000001; },
          zomp::ForOptions{{kind, chunk}, false});
    });
  }
  benchmark::DoNotOptimize(data[0]);
  state.SetLabel(zomp::rt::schedule_kind_name(kind));
}
BENCHMARK(BM_WorksharingDispatch)
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({2, 1})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(100);

void BM_Reduction(benchmark::State& state) {
  constexpr std::int64_t n = 1 << 14;
  for (auto _ : state) {
    const double s = zomp::parallel_reduce<double>(
        0, n, 0.0, std::plus<>{},
        [](std::int64_t i) { return static_cast<double>(i); });
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Reduction)->Unit(benchmark::kMicrosecond)->Iterations(100);

void BM_CriticalThroughput(benchmark::State& state) {
  std::int64_t counter = 0;
  const int per_thread = 256;
  for (auto _ : state) {
    zomp::parallel([&] {
      for (int i = 0; i < per_thread; ++i) {
        zomp::critical([&] { ++counter; });
      }
    });
  }
  benchmark::DoNotOptimize(counter);
  state.SetItemsProcessed(state.iterations() * per_thread);
}
BENCHMARK(BM_CriticalThroughput)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_LockUncontended(benchmark::State& state) {
  zomp::rt::Lock lock;
  for (auto _ : state) {
    lock.set();
    lock.unset();
  }
}
BENCHMARK(BM_LockUncontended)->Iterations(1 << 16);

void BM_SpinLockUncontended(benchmark::State& state) {
  zomp::rt::SpinLock lock;
  for (auto _ : state) {
    lock.set();
    lock.unset();
  }
}
BENCHMARK(BM_SpinLockUncontended)->Iterations(1 << 16);

void BM_TaskSpawnDrain(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  std::atomic<int> done{0};
  for (auto _ : state) {
    done.store(0);
    zomp::parallel([&] {
      zomp::single([&] {
        for (int i = 0; i < tasks; ++i) {
          zomp::task([&] { done.fetch_add(1, std::memory_order_relaxed); });
        }
      });
      // Implicit region barrier drains the task pool.
    });
    if (done.load() != tasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_TaskSpawnDrain)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond)->Iterations(20);

void BM_AtomicF64Add(benchmark::State& state) {
  double cell = 0.0;
  const int per_thread = 1024;
  for (auto _ : state) {
    zomp::parallel([&] {
      for (int i = 0; i < per_thread; ++i) zomp_atomic_add_f64(&cell, 1.0);
    });
  }
  benchmark::DoNotOptimize(cell);
  state.SetItemsProcessed(state.iterations() * per_thread);
}
BENCHMARK(BM_AtomicF64Add)->Unit(benchmark::kMicrosecond)->Iterations(50);

}  // namespace

BENCHMARK_MAIN();
