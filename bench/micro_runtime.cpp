// Ablation A3: runtime-primitive microbenchmarks, EPCC-style (the authors'
// institution publishes the classic OpenMP overhead suite; this is the zomp
// equivalent). Measures the primitives the NPB kernels lean on: fork/join,
// barrier algorithms (centralized vs tree), worksharing dispatch per
// schedule, reduction, critical sections, locks, and task spawn/drain.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runtime/runtime.h"

namespace {

using zomp::rt::Barrier;
using zomp::rt::BarrierKind;

int bench_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 2 : static_cast<int>(hc);
}

// ---------------------------------------------------------------------------
// Fork/join before/after (PR 3). The seed region-entry protocol — pool mutex
// acquire/release, per-worker mutex+condvar mailbox wake, and a fresh
// heap-allocated team object (barrier + dispatch ring + reduction-tree
// stand-ins) per region — is kept here, bench-local, so the hot-team +
// doorbell fast path of runtime/pool.{h,cpp} stays comparable on any machine
// in a single run.
// ---------------------------------------------------------------------------

/// The retired per-region team object: reproduces the seed Team's
/// allocations (member list, 8-slot dispatch ring, one reduction slot per
/// member) and its epoch sense barrier + check-out join protocol.
class SeedTeam {
 public:
  explicit SeedTeam(int size)
      : size_(size), dispatch_ring_(8), reduce_slots_(size) {
    members_.reserve(static_cast<std::size_t>(size));
  }

  void barrier_wait() {
    if (size_ == 1) return;
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == size_ - 1) {
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.store(epoch + 1, std::memory_order_release);
      return;
    }
    zomp::rt::Backoff backoff;
    while (epoch_.load(std::memory_order_acquire) == epoch) backoff.pause();
  }

  void check_out() { checked_out_.fetch_add(1, std::memory_order_release); }
  void wait_all_checked_out() {
    zomp::rt::Backoff backoff;
    while (checked_out_.load(std::memory_order_acquire) != size_ - 1) {
      backoff.pause();
    }
  }

  std::vector<int> members_;

 private:
  struct alignas(zomp::rt::kCacheLine) RingSlot {
    std::atomic<std::uint64_t> owner{0};
  };
  struct alignas(zomp::rt::kCacheLine) ReduceSlot {
    std::atomic<std::uint64_t> token{0};
  };
  const int size_;
  std::vector<RingSlot> dispatch_ring_;
  std::vector<ReduceSlot> reduce_slots_;
  alignas(zomp::rt::kCacheLine) std::atomic<int> arrived_{0};
  alignas(zomp::rt::kCacheLine) std::atomic<std::uint64_t> epoch_{0};
  alignas(zomp::rt::kCacheLine) std::atomic<int> checked_out_{0};
};

/// The retired worker mailbox: one mutex + condvar round-trip per wake.
class SeedWorker {
 public:
  SeedWorker() : thread_([this] { loop(); }) {}
  ~SeedWorker() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  void assign(SeedTeam* team, const std::function<void(int)>* body, int tid) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = Job{team, body, tid};
    }
    cv_.notify_one();
  }

 private:
  struct Job {
    SeedTeam* team;
    const std::function<void(int)>* body;
    int tid;
  };

  void loop() {
    for (;;) {
      Job job{};
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return job_.has_value() || shutdown_; });
        if (!job_.has_value()) return;
        job = *job_;
        job_.reset();
      }
      (*job.body)(job.tid);
      job.team->barrier_wait();
      job.team->check_out();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<Job> job_;
  bool shutdown_ = false;
  std::thread thread_;
};

/// The retired pool: a mutex-guarded idle vector, locked once to acquire
/// and once to release per region.
class SeedPool {
 public:
  static SeedPool& instance() {
    static SeedPool pool;
    return pool;
  }

  std::vector<SeedWorker*> acquire(int want) {
    std::vector<SeedWorker*> out;
    const std::lock_guard<std::mutex> lock(mutex_);
    while (want > 0) {
      if (idle_.empty()) {
        all_.push_back(std::make_unique<SeedWorker>());
        idle_.push_back(all_.back().get());
      }
      out.push_back(idle_.back());
      idle_.pop_back();
      --want;
    }
    return out;
  }

  void release(const std::vector<SeedWorker*>& workers) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (SeedWorker* w : workers) idle_.push_back(w);
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<SeedWorker>> all_;
  std::vector<SeedWorker*> idle_;
};

/// One region through the full seed protocol.
void seed_fork(int threads, const std::function<void(int)>& body) {
  std::vector<SeedWorker*> workers =
      threads > 1 ? SeedPool::instance().acquire(threads - 1)
                  : std::vector<SeedWorker*>{};
  auto team = std::make_unique<SeedTeam>(threads);  // fresh object per region
  for (int t = 0; t < threads; ++t) team->members_.push_back(t);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i]->assign(team.get(), &body, static_cast<int>(i) + 1);
  }
  body(0);
  team->barrier_wait();
  team->wait_all_checked_out();
  SeedPool::instance().release(workers);
}

/// Pure region-entry cost, EPCC syncbench style: an (almost) empty body
/// entered back-to-back. range(0): 0 = bench-local seed protocol (mutex/
/// condvar mailbox + fresh team per region), 1 = hot-team + doorbell fast
/// path. range(1): team size.
void BM_ForkJoin(benchmark::State& state) {
  const bool hot = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  std::atomic<int> sink{0};
  const std::function<void(int)> seed_body = [&](int /*tid*/) {
    sink.fetch_add(1, std::memory_order_relaxed);
  };
  for (auto _ : state) {
    if (hot) {
      zomp::parallel([&] { sink.fetch_add(1, std::memory_order_relaxed); },
                     zomp::ParallelOptions{threads, true});
    } else {
      seed_fork(threads, seed_body);
    }
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(hot ? "hot-team" : "mutex-condvar-seed");
}
ZOMP_BENCHMARK(BM_ForkJoin)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

/// Tiny `parallel for reduction` regions, the NPB short-region shape the
/// paper's overhead numbers hinge on: region entry + worksharing + one
/// packed reduction rendezvous dominate, not the 256-iteration body.
/// range(0): 0 = seed protocol (mutex/condvar fork, static slice by hand,
/// mutex-combined reduction); 1 = the runtime path (hot team, tree
/// rendezvous). range(1): team size.
void BM_ParallelForTiny(benchmark::State& state) {
  const bool hot = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  constexpr std::int64_t n = 256;
  const double want = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  std::mutex seed_combine_mutex;
  for (auto _ : state) {
    double total = 0.0;
    if (hot) {
      total = zomp::parallel_reduce<double>(
          0, n, 0.0, std::plus<>{},
          [](std::int64_t i) { return static_cast<double>(i); },
          zomp::ForOptions{}, zomp::ParallelOptions{threads, true});
    } else {
      const std::function<void(int)> body = [&](int tid) {
        const std::int64_t chunk = (n + threads - 1) / threads;
        const std::int64_t lo = tid * chunk;
        const std::int64_t hi = std::min<std::int64_t>(n, lo + chunk);
        double local = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          local += static_cast<double>(i);
        }
        const std::lock_guard<std::mutex> lock(seed_combine_mutex);
        total += local;
      };
      seed_fork(threads, body);
    }
    if (total != want) state.SkipWithError("bad reduction result");
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(hot ? "hot-team" : "mutex-condvar-seed");
}
ZOMP_BENCHMARK(BM_ParallelForTiny)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

/// Cancellation-point cost in the BM_ParallelForTiny shape (the ≤2% budget
/// of DESIGN.md S10): the same tiny 256-iteration parallel-for, now with one
/// `omp cancellation point for` per iteration. range(0): 0 = no point (the
/// BM_ParallelForTiny baseline, re-measured here so the delta reads off one
/// run), 1 = point with OMP_CANCELLATION unset (the flag test must be all
/// the user pays), 2 = point with cancellation enabled (nothing cancels, so
/// this prices the enabled-but-idle check). range(1): team size.
/// BENCH_cancel.json: mode 1 must be within 2% of mode 0.
void BM_CancellationPointOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr std::int64_t n = 256;
  const double want = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  static constexpr zomp_ident_t kLoc{"micro_runtime.cpp", "cancellation point",
                                     0};
  zomp::rt::GlobalIcv::instance().set_cancellation(mode == 2);
  for (auto _ : state) {
    double total;
    if (mode == 0) {
      total = zomp::parallel_reduce<double>(
          0, n, 0.0, std::plus<>{},
          [](std::int64_t i) { return static_cast<double>(i); },
          zomp::ForOptions{}, zomp::ParallelOptions{threads, true});
    } else {
      total = zomp::parallel_reduce<double>(
          0, n, 0.0, std::plus<>{},
          [](std::int64_t i) {
            (void)zomp_cancellation_point(&kLoc, 0, ZOMP_CANCEL_LOOP);
            return static_cast<double>(i);
          },
          zomp::ForOptions{}, zomp::ParallelOptions{threads, true});
    }
    if (total != want) state.SkipWithError("bad reduction result");
  }
  zomp::rt::GlobalIcv::instance().set_cancellation(false);
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(mode == 0   ? "no-point"
                 : mode == 1 ? "point-icv-off"
                             : "point-icv-on");
}
ZOMP_BENCHMARK(BM_CancellationPointOverhead)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

void BM_BarrierCentral(benchmark::State& state) {
  const int threads = bench_threads();
  const int rounds = 64;
  for (auto _ : state) {
    auto barrier = Barrier::create(BarrierKind::kCentral, threads);
    zomp::parallel(
        [&] {
          const int tid = zomp::thread_num();
          for (int i = 0; i < rounds; ++i) barrier->wait(tid);
        },
        zomp::ParallelOptions{threads, true});
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
ZOMP_BENCHMARK(BM_BarrierCentral)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_BarrierTree(benchmark::State& state) {
  const int threads = bench_threads();
  const int rounds = 64;
  for (auto _ : state) {
    auto barrier = Barrier::create(BarrierKind::kTree, threads);
    zomp::parallel(
        [&] {
          const int tid = zomp::thread_num();
          for (int i = 0; i < rounds; ++i) barrier->wait(tid);
        },
        zomp::ParallelOptions{threads, true});
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
ZOMP_BENCHMARK(BM_BarrierTree)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_WorksharingDispatch(benchmark::State& state) {
  // kind: 0 static, 1 dynamic, 2 guided; iterations fixed, chunk varies.
  const auto kind = static_cast<zomp::rt::ScheduleKind>(state.range(0));
  const auto chunk = static_cast<std::int64_t>(state.range(1));
  constexpr std::int64_t n = 1 << 14;
  std::vector<double> data(n, 1.0);
  for (auto _ : state) {
    zomp::parallel([&] {
      zomp::for_each(
          0, n, [&](std::int64_t i) { data[static_cast<std::size_t>(i)] *= 1.0000001; },
          zomp::ForOptions{{kind, chunk}, false});
    });
  }
  benchmark::DoNotOptimize(data[0]);
  state.SetLabel(zomp::rt::schedule_kind_name(kind));
}
ZOMP_BENCHMARK(BM_WorksharingDispatch)
    ->Args({0, 0})
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({2, 1})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(100);

void BM_Reduction(benchmark::State& state) {
  constexpr std::int64_t n = 1 << 14;
  for (auto _ : state) {
    const double s = zomp::parallel_reduce<double>(
        0, n, 0.0, std::plus<>{},
        [](std::int64_t i) { return static_cast<double>(i); });
    benchmark::DoNotOptimize(s);
  }
}
ZOMP_BENCHMARK(BM_Reduction)->Unit(benchmark::kMicrosecond)->Iterations(100);

// ---------------------------------------------------------------------------
// Reduction-combine before/after. The seed protocol — one member initialises
// a shared cell (single + barrier), every member combines into it under one
// process-global named critical, and a final barrier publishes — is kept
// here, bench-local, so the tree rendezvous of runtime/reduce.h stays
// comparable on any machine in a single run.
// ---------------------------------------------------------------------------

/// The retired global-critical reduction protocol, reproduced bench-local.
/// `parity` alternates per construct instance, reproducing the seed's
/// double-buffered team cell (a fast member's next-round init must not
/// clobber a value a slow member is still reading; the seed derived the
/// parity from the member's single_seq).
template <typename T, typename Combine, typename Body>
T seed_critical_reduce(std::int64_t lo, std::int64_t hi, T identity,
                       Combine&& combine, Body&& body, int parity) {
  static T cells[2];  // stands in for the seed's fixed team storage
  T& cell = cells[parity & 1];
  zomp::single([&] { cell = identity; });  // includes the publish barrier
  T local = identity;
  zomp::for_each(
      lo, hi, [&](std::int64_t i) { local = combine(local, body(i)); },
      zomp::ForOptions{{zomp::rt::ScheduleKind::kStatic, 0}, /*nowait=*/true});
  zomp::rt::critical_enter("__bench_seed_reduction");
  cell = combine(cell, local);
  zomp::rt::critical_exit("__bench_seed_reduction");
  zomp::barrier();
  return cell;
}

/// Back-to-back in-region reductions, combine-overhead dominated (the loop
/// is tiny on purpose). range(0): 0 = seed critical protocol (3 barriers +
/// global lock), 1 = tree rendezvous (one rendezvous, no lock).
/// range(1): team size.
void BM_ReductionCombine(benchmark::State& state) {
  const bool tree = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  constexpr std::int64_t n = 1 << 10;
  constexpr int kRounds = 32;
  const double want = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  for (auto _ : state) {
    double sink = 0.0;
    zomp::parallel(
        [&] {
          for (int r = 0; r < kRounds; ++r) {
            double s;
            if (tree) {
              s = zomp::reduce_each(
                  std::int64_t{0}, n, 0.0, std::plus<>{},
                  [](std::int64_t i) { return static_cast<double>(i); });
            } else {
              s = seed_critical_reduce(
                  0, n, 0.0, std::plus<>{},
                  [](std::int64_t i) { return static_cast<double>(i); }, r);
            }
            if (zomp::thread_num() == 0) sink += s;
          }
        },
        zomp::ParallelOptions{threads, true});
    if (sink != want * kRounds) state.SkipWithError("bad reduction result");
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
  state.SetLabel(tree ? "tree-rendezvous" : "critical-seed");
}
ZOMP_BENCHMARK(BM_ReductionCombine)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(50);

// ---------------------------------------------------------------------------
// collapse(2) mandel-style loop: dynamic distribution of whole rows (what a
// non-collapsed `parallel for schedule(dynamic)` gives) vs the linearized
// pixel space the collapse(2) canonicalization lowers to — same
// de-linearization arithmetic (y = flat / w, x = flat % w) the backends
// emit. The flat space load-balances the ragged per-row cost of the
// escape-time iteration far better near the set.
// ---------------------------------------------------------------------------

std::int64_t mandel_pixel_cost(double cr, double ci, std::int64_t max_iter) {
  double zr = 0.0, zi = 0.0;
  std::int64_t it = 0;
  while (it < max_iter && zr * zr + zi * zi <= 4.0) {
    const double t = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = t;
    ++it;
  }
  return it;
}

/// range(0): 0 = rows (collapse(1) shape), 1 = linearized pixels
/// (collapse(2) shape). range(1): chunk of the dynamic schedule.
void BM_CollapseMandelStyle(benchmark::State& state) {
  const bool collapsed = state.range(0) == 1;
  const auto chunk = static_cast<std::int64_t>(state.range(1));
  constexpr std::int64_t w = 64, h = 64, max_iter = 256;
  const zomp::ForOptions opts{{zomp::rt::ScheduleKind::kDynamic, chunk},
                              false};
  for (auto _ : state) {
    std::int64_t checksum = 0;
    if (collapsed) {
      checksum = zomp::parallel_reduce(
          std::int64_t{0}, w * h, std::int64_t{0}, std::plus<>{},
          [&](std::int64_t flat) {
            const std::int64_t y = flat / w;  // the emitted de-linearization
            const std::int64_t x = flat % w;
            const double ci = -1.25 + 2.5 * static_cast<double>(y) / h;
            const double cr = -2.0 + 2.5 * static_cast<double>(x) / w;
            return mandel_pixel_cost(cr, ci, max_iter);
          },
          opts);
    } else {
      checksum = zomp::parallel_reduce(
          std::int64_t{0}, h, std::int64_t{0}, std::plus<>{},
          [&](std::int64_t y) {
            const double ci = -1.25 + 2.5 * static_cast<double>(y) / h;
            std::int64_t row = 0;
            for (std::int64_t x = 0; x < w; ++x) {
              const double cr = -2.0 + 2.5 * static_cast<double>(x) / w;
              row += mandel_pixel_cost(cr, ci, max_iter);
            }
            return row;
          },
          opts);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * w * h);
  state.SetLabel(collapsed ? "collapse2-flat" : "rows-only");
}
ZOMP_BENCHMARK(BM_CollapseMandelStyle)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

void BM_CriticalThroughput(benchmark::State& state) {
  std::int64_t counter = 0;
  const int per_thread = 256;
  for (auto _ : state) {
    zomp::parallel([&] {
      for (int i = 0; i < per_thread; ++i) {
        zomp::critical([&] { ++counter; });
      }
    });
  }
  benchmark::DoNotOptimize(counter);
  state.SetItemsProcessed(state.iterations() * per_thread);
}
ZOMP_BENCHMARK(BM_CriticalThroughput)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_LockUncontended(benchmark::State& state) {
  zomp::rt::Lock lock;
  for (auto _ : state) {
    lock.set();
    lock.unset();
  }
}
ZOMP_BENCHMARK(BM_LockUncontended)->Iterations(1 << 16);

void BM_SpinLockUncontended(benchmark::State& state) {
  zomp::rt::SpinLock lock;
  for (auto _ : state) {
    lock.set();
    lock.unset();
  }
}
ZOMP_BENCHMARK(BM_SpinLockUncontended)->Iterations(1 << 16);

void BM_TaskSpawnDrain(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  std::atomic<int> done{0};
  for (auto _ : state) {
    done.store(0);
    zomp::parallel([&] {
      zomp::single([&] {
        for (int i = 0; i < tasks; ++i) {
          zomp::task([&] { done.fetch_add(1, std::memory_order_relaxed); });
        }
      });
      // Implicit region barrier drains the task pool.
    });
    if (done.load() != tasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
ZOMP_BENCHMARK(BM_TaskSpawnDrain)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond)->Iterations(20);

// ---------------------------------------------------------------------------
// Scheduler-substrate before/after (PR 1). The seed's mutex-guarded task
// deque and one-chunk-per-fetch_add dynamic cursor are kept here, bench-local,
// so the speedup of the lock-free work-stealing deque and the batched shared
// cursor stays measurable on any machine in a single run.
// ---------------------------------------------------------------------------

/// The seed TaskPool: one mutex-guarded std::deque per member.
class MutexTaskPool {
 public:
  explicit MutexTaskPool(int members) : queues_(members) {}

  void push(int tid, std::unique_ptr<zomp::rt::Task> task) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    MemberQueue& q = queues_[static_cast<std::size_t>(tid)];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.deque.push_back(std::move(task));
  }

  std::unique_ptr<zomp::rt::Task> take(int tid) {
    const int n = static_cast<int>(queues_.size());
    {
      MemberQueue& q = queues_[static_cast<std::size_t>(tid)];
      const std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.deque.empty()) {
        auto task = std::move(q.deque.back());
        q.deque.pop_back();
        return task;
      }
    }
    for (int k = 1; k < n; ++k) {
      MemberQueue& q = queues_[static_cast<std::size_t>((tid + k) % n)];
      const std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.deque.empty()) {
        auto task = std::move(q.deque.front());
        q.deque.pop_front();
        return task;
      }
    }
    return nullptr;
  }

  std::int64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  void mark_finished() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  struct alignas(zomp::rt::kCacheLine) MemberQueue {
    std::mutex mutex;
    std::deque<std::unique_ptr<zomp::rt::Task>> deque;
  };
  std::deque<MemberQueue> queues_;
  alignas(zomp::rt::kCacheLine) std::atomic<std::int64_t> outstanding_{0};
};

std::unique_ptr<zomp::rt::Task> make_dummy_task(zomp::rt::TaskContext* parent) {
  auto t = std::make_unique<zomp::rt::Task>();
  t->body = [] {};
  t->parent = parent;
  return t;
}

/// Owner-side push/pop throughput, no contention: the per-task queue cost
/// every spawn pays. Tasks are preallocated and recycled so the measurement
/// isolates the queue operations from task allocation.
/// range(0): 0 = seed mutex pool, 1 = lock-free deque.
void BM_TaskQueueOwnerOps(benchmark::State& state) {
  const bool lockfree = state.range(0) == 1;
  constexpr int kBurst = 256;
  zomp::rt::TaskContext parent;
  zomp::rt::TaskPool ws_pool(1);
  MutexTaskPool mutex_pool(1);
  std::vector<std::unique_ptr<zomp::rt::Task>> arena;
  arena.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) arena.push_back(make_dummy_task(&parent));
  std::vector<zomp::rt::Task*> raw(kBurst);
  for (int i = 0; i < kBurst; ++i) raw[static_cast<std::size_t>(i)] = arena[static_cast<std::size_t>(i)].get();
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      std::unique_ptr<zomp::rt::Task> t(raw[static_cast<std::size_t>(i)]);
      if (lockfree) {
        if (auto rejected = ws_pool.push(0, std::move(t))) {
          rejected.release();  // kBurst < capacity, so this never fires
          state.SkipWithError("unexpected deque overflow");
        }
      } else {
        mutex_pool.push(0, std::move(t));
      }
    }
    for (int i = 0; i < kBurst; ++i) {
      auto t = lockfree ? ws_pool.take(0) : mutex_pool.take(0);
      if (!t) {
        state.SkipWithError("queue lost a task");
        break;
      }
      (lockfree ? static_cast<void>(ws_pool.mark_finished())
                : mutex_pool.mark_finished());
      t.release();  // back to the arena; freed once by `arena` at teardown
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.SetLabel(lockfree ? "lockfree-deque" : "mutex-seed");
}
ZOMP_BENCHMARK(BM_TaskQueueOwnerOps)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond)->Iterations(2000);

/// Steal throughput under contention: one member's queue is pre-loaded and
/// `thieves` threads drain it through take() — the path the task-aware
/// barrier exercises. range(0): 0 = mutex, 1 = lock-free; range(1): thieves.
void BM_TaskQueueStealDrain(benchmark::State& state) {
  const bool lockfree = state.range(0) == 1;
  const int thieves = static_cast<int>(state.range(1));
  constexpr int kTasks = 1024;  // == WorkStealingDeque::kCapacity
  zomp::rt::TaskContext parent;
  for (auto _ : state) {
    state.PauseTiming();
    auto ws_pool = std::make_unique<zomp::rt::TaskPool>(thieves + 1);
    auto mutex_pool = std::make_unique<MutexTaskPool>(thieves + 1);
    for (int i = 0; i < kTasks; ++i) {
      if (lockfree) {
        if (auto rejected = ws_pool->push(0, make_dummy_task(&parent))) {
          state.SkipWithError("unexpected deque overflow");
        }
      } else {
        mutex_pool->push(0, make_dummy_task(&parent));
      }
    }
    std::atomic<int> drained{0};
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(thieves));
    for (int t = 1; t <= thieves; ++t) {
      threads.emplace_back([&, t] {
        for (;;) {
          auto task = lockfree ? ws_pool->take(t) : mutex_pool->take(t);
          if (task) {
            (lockfree ? static_cast<void>(ws_pool->mark_finished())
                      : mutex_pool->mark_finished());
            drained.fetch_add(1, std::memory_order_relaxed);
          } else if ((lockfree ? ws_pool->outstanding()
                               : mutex_pool->outstanding()) == 0) {
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    if (drained.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.SetLabel(lockfree ? "lockfree-deque" : "mutex-seed");
}
ZOMP_BENCHMARK(BM_TaskQueueStealDrain)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(50);

/// Concurrent spawn + steal: one producer pushes a task stream while
/// `thieves` consumers drain it through the steal path, all using the
/// runtime's backoff discipline — the shape of a `single`-producer task storm
/// inside a parallel region. Overflowing the bounded deque counts as an
/// inline execution, exactly as Team::task_create handles it.
/// range(0): 0 = mutex seed pool, 1 = lock-free deque; range(1): thieves.
void BM_TaskSpawnStealThroughput(benchmark::State& state) {
  const bool lockfree = state.range(0) == 1;
  const int thieves = static_cast<int>(state.range(1));
  constexpr int kTasks = 4096;
  zomp::rt::TaskContext parent;
  for (auto _ : state) {
    auto ws_pool = std::make_unique<zomp::rt::TaskPool>(thieves + 1);
    auto mutex_pool = std::make_unique<MutexTaskPool>(thieves + 1);
    std::atomic<bool> producing{true};
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(thieves));
    for (int t = 1; t <= thieves; ++t) {
      threads.emplace_back([&, t] {
        zomp::rt::Backoff backoff;
        for (;;) {
          auto task = lockfree ? ws_pool->take(t) : mutex_pool->take(t);
          if (task) {
            (lockfree ? static_cast<void>(ws_pool->mark_finished())
                      : mutex_pool->mark_finished());
            done.fetch_add(1, std::memory_order_relaxed);
            backoff.reset();
          } else if (!producing.load(std::memory_order_acquire) &&
                     (lockfree ? ws_pool->outstanding()
                               : mutex_pool->outstanding()) == 0) {
            return;
          } else {
            backoff.pause();
          }
        }
      });
    }
    for (int i = 0; i < kTasks; ++i) {
      auto task = make_dummy_task(&parent);
      if (lockfree) {
        if (ws_pool->push(0, std::move(task))) {
          done.fetch_add(1, std::memory_order_relaxed);  // inline on overflow
        }
      } else {
        mutex_pool->push(0, std::move(task));
      }
    }
    producing.store(false, std::memory_order_release);
    for (;;) {  // producer helps drain, like the join barrier
      auto task = lockfree ? ws_pool->take(0) : mutex_pool->take(0);
      if (task) {
        (lockfree ? static_cast<void>(ws_pool->mark_finished())
                  : mutex_pool->mark_finished());
        done.fetch_add(1, std::memory_order_relaxed);
      } else if ((lockfree ? ws_pool->outstanding()
                           : mutex_pool->outstanding()) == 0) {
        break;
      }
    }
    for (auto& th : threads) th.join();
    if (done.load() != kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.SetLabel(lockfree ? "lockfree-deque" : "mutex-seed");
}
ZOMP_BENCHMARK(BM_TaskSpawnStealThroughput)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 7})
    ->Args({1, 7})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

/// Fine-grained dynamic scheduling: threads claim a 1<<16-iteration space in
/// chunk-1 units. Seed behaviour (one fetch_add per chunk) vs the batched
/// shared cursor behind dispatch_next_chunk. range(0): 0 = seed, 1 = batched;
/// range(1): claiming threads.
void BM_DynamicChunkClaim(benchmark::State& state) {
  const bool batched = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  constexpr std::int64_t kTrips = 1 << 16;
  for (auto _ : state) {
    state.PauseTiming();
    auto slot = std::make_unique<zomp::rt::DispatchSlot>();
    slot->kind = zomp::rt::ScheduleKind::kDynamic;
    slot->lo = 0;
    slot->hi = kTrips;
    slot->step = 1;
    slot->chunk = 1;
    slot->trips = kTrips;
    slot->nthreads = threads;
    zomp::rt::dispatch_init_shards(*slot, zomp::rt::ShardMap{},
                                   /*sharded=*/false);
    std::atomic<std::int64_t> claimed_total{0};
    state.ResumeTiming();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::int64_t mine = 0;
        if (batched) {
          zomp::rt::MemberDispatch md;
          std::int64_t lo = 0, hi = 0;
          bool last = false;
          while (zomp::rt::dispatch_next_chunk(*slot, md, t, &lo, &hi, &last)) {
            mine += hi - lo;
          }
        } else {
          for (;;) {  // the seed path: one chunk per atomic RMW
            const std::int64_t c =
                slot->shards[0].next.fetch_add(1, std::memory_order_relaxed);
            if (c >= kTrips) break;
            ++mine;
          }
        }
        claimed_total.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (auto& th : workers) th.join();
    if (claimed_total.load() != kTrips) state.SkipWithError("missed iterations");
  }
  state.SetItemsProcessed(state.iterations() * kTrips);
  state.SetLabel(batched ? "batched-cursor" : "seed-cursor");
}
ZOMP_BENCHMARK(BM_DynamicChunkClaim)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

/// Locality-aware steal-victim selection (DESIGN.md S1.9) on a synthetic
/// 2-socket machine: 8 pool members split into two groups of four, tasks
/// pre-loaded on one producer per group, six thieves draining through
/// take(). range(0): 0 = flat staggered ring (empty victim table), 1 =
/// hierarchical order (same-group victims first, per-member rotation) — the
/// exact table team.cpp builds for a spread binding over two sockets.
/// BENCH_locality.json: hierarchical must be >= flat.
void BM_HierarchicalSteal(benchmark::State& state) {
  const bool hierarchical = state.range(0) == 1;
  constexpr int kMembers = 8;
  constexpr int kGroup = kMembers / 2;  // members / "socket"
  constexpr int kTasks = 1024;          // per producer (deque capacity)
  std::vector<zomp::rt::i32> hier;
  for (int t = 0; t < kMembers; ++t) {
    std::vector<zomp::rt::i32> near, far;
    for (int v = 0; v < kMembers; ++v) {
      if (v == t) continue;
      (v / kGroup == t / kGroup ? near : far).push_back(v);
    }
    for (auto* tier : {&near, &far}) {
      std::rotate(tier->begin(),
                  tier->begin() + t % static_cast<int>(tier->size()),
                  tier->end());
      hier.insert(hier.end(), tier->begin(), tier->end());
    }
  }
  zomp::rt::TaskContext parent;
  for (auto _ : state) {
    state.PauseTiming();
    auto pool = std::make_unique<zomp::rt::TaskPool>(kMembers);
    pool->set_victim_order(hierarchical ? hier
                                        : std::vector<zomp::rt::i32>{});
    for (const int producer : {0, kGroup}) {
      for (int i = 0; i < kTasks; ++i) {
        if (auto rejected = pool->push(producer, make_dummy_task(&parent))) {
          state.SkipWithError("unexpected deque overflow");
        }
      }
    }
    std::atomic<int> drained{0};
    state.ResumeTiming();
    std::vector<std::thread> thieves;
    for (int t = 0; t < kMembers; ++t) {
      if (t == 0 || t == kGroup) continue;  // producers do not help
      thieves.emplace_back([&, t] {
        for (;;) {
          if (auto task = pool->take(t)) {
            pool->mark_finished();
            drained.fetch_add(1, std::memory_order_relaxed);
          } else if (pool->outstanding() == 0) {
            return;
          }
        }
      });
    }
    for (auto& th : thieves) th.join();
    if (drained.load() != 2 * kTasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * 2 * kTasks);
  state.SetLabel(hierarchical ? "hierarchical-order" : "flat-ring");
}
ZOMP_BENCHMARK(BM_HierarchicalSteal)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

/// Per-place dispatch cursor sharding (DESIGN.md S1.9): claimers split into
/// two "sockets" over a chunk-1 space. 0 = one shared cursor (every claim
/// RMWs the same cache line from both groups), 1 = per-place slabs (claims
/// stay group-local until a slab runs dry and is stolen wholesale).
/// range(1): claiming threads. BENCH_locality.json: sharded must be >= flat.
void BM_DynamicPerPlaceCursor(benchmark::State& state) {
  const bool sharded = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  constexpr std::int64_t kTrips = 1 << 16;
  zomp::rt::ShardMap map;
  map.nshards = 2;
  map.member_shard.resize(static_cast<std::size_t>(threads));
  map.weight = {0, 0};
  map.shard_members = {{}, {}};
  for (int t = 0; t < threads; ++t) {
    const int s = t < threads / 2 ? 0 : 1;
    map.member_shard[static_cast<std::size_t>(t)] = s;
    ++map.weight[static_cast<std::size_t>(s)];
    map.shard_members[static_cast<std::size_t>(s)].push_back(t);
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto slot = std::make_unique<zomp::rt::DispatchSlot>();
    slot->kind = zomp::rt::ScheduleKind::kDynamic;
    slot->lo = 0;
    slot->hi = kTrips;
    slot->step = 1;
    slot->chunk = 1;
    slot->trips = kTrips;
    slot->nthreads = threads;
    zomp::rt::dispatch_init_shards(*slot, map, sharded);
    std::atomic<std::int64_t> claimed_total{0};
    state.ResumeTiming();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        zomp::rt::MemberDispatch md;
        md.shard = map.member_shard[static_cast<std::size_t>(t)];
        std::int64_t mine = 0, lo = 0, hi = 0;
        bool last = false;
        while (zomp::rt::dispatch_next_chunk(*slot, md, t, &lo, &hi, &last)) {
          mine += hi - lo;
        }
        claimed_total.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (auto& th : workers) th.join();
    if (claimed_total.load() != kTrips) state.SkipWithError("missed iterations");
  }
  state.SetItemsProcessed(state.iterations() * kTrips);
  state.SetLabel(sharded ? "sharded-cursors" : "shared-cursor");
}
ZOMP_BENCHMARK(BM_DynamicPerPlaceCursor)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

/// Steal-heavy tasking through the public API: every task is produced by one
/// member inside `single`, so every execution on another member is a steal.
void BM_TaskStormSingleProducer(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  std::atomic<int> done{0};
  for (auto _ : state) {
    done.store(0);
    zomp::parallel([&] {
      zomp::single([&] {
        for (int i = 0; i < tasks; ++i) {
          zomp::task([&] { done.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    });
    if (done.load() != tasks) state.SkipWithError("lost tasks");
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
ZOMP_BENCHMARK(BM_TaskStormSingleProducer)->Arg(512)->Unit(benchmark::kMicrosecond)->Iterations(20);

/// Dependence-layer overhead (DESIGN.md S1.7): an inout chain of N tasks is
/// the worst case for the depnode machinery — every task allocates a node,
/// draws one edge, parks, and is released by its predecessor, with zero
/// available parallelism to hide it. Compare against BM_TaskSpawnDrain (the
/// zero-dependence fast path) to read the per-edge cost.
void BM_TaskDependChain(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  zomp::set_num_threads(4);
  long acc = 0;
  for (auto _ : state) {
    zomp::parallel(
        [&] {
          zomp::single([&] {
            for (int i = 0; i < chain; ++i) {
              zomp::task_depend({zomp::dep_inout(&acc)}, [&acc] { ++acc; });
            }
            zomp::taskwait();
          });
        },
        zomp::ParallelOptions{4, true});
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * chain);
}
ZOMP_BENCHMARK(BM_TaskDependChain)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

/// taskloop against the equivalent worksharing loop: same body, same range,
/// same team. The delta is the tasking substrate (chunk task creation +
/// implicit taskgroup) versus the static-schedule bounds math — the price a
/// user pays for choosing the tasking form of a balanced loop. range(0):
/// 0 = parallel for, 1 = taskloop (default chunking), 2 = taskloop
/// grainsize(64).
void BM_TaskloopVsParallelFor(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 1 << 14;
  constexpr int threads = 4;
  std::vector<std::int64_t> data(static_cast<std::size_t>(n), 1);
  std::atomic<long> sink{0};
  for (auto _ : state) {
    long total = 0;
    if (mode == 0) {
      total = zomp::parallel_reduce<long>(
          0, n, 0L, std::plus<>{},
          [&](std::int64_t i) {
            return static_cast<long>(data[static_cast<std::size_t>(i)] * i);
          },
          zomp::ForOptions{}, zomp::ParallelOptions{threads, true});
    } else {
      std::atomic<long> acc{0};
      zomp::parallel(
          [&] {
            zomp::single([&] {
              zomp::taskloop(
                  0, n,
                  [&](std::int64_t i) {
                    acc.fetch_add(
                        static_cast<long>(data[static_cast<std::size_t>(i)] * i),
                        std::memory_order_relaxed);
                  },
                  zomp::TaskloopOptions{mode == 2 ? 64 : 0, 0});
            });
          },
          zomp::ParallelOptions{threads, true});
      total = acc.load();
    }
    sink.store(total, std::memory_order_relaxed);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(mode == 0   ? "parallel-for"
                 : mode == 1 ? "taskloop-default"
                             : "taskloop-grainsize64");
}
ZOMP_BENCHMARK(BM_TaskloopVsParallelFor)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(50);

void BM_AtomicF64Add(benchmark::State& state) {
  double cell = 0.0;
  const int per_thread = 1024;
  for (auto _ : state) {
    zomp::parallel([&] {
      for (int i = 0; i < per_thread; ++i) zomp_atomic_add_f64(&cell, 1.0);
    });
  }
  benchmark::DoNotOptimize(cell);
  state.SetItemsProcessed(state.iterations() * per_thread);
}
ZOMP_BENCHMARK(BM_AtomicF64Add)->Unit(benchmark::kMicrosecond)->Iterations(50);

/// Region entry with thread binding (DESIGN.md S1.8): the hot-team path
/// with proc_bind(close) vs unbound. The first bound region computes the
/// placement and issues one sched_setaffinity per member; every re-arm
/// after that has an unchanged binding signature, so the mask application
/// is skipped and bound entry must track unbound entry — this bench is the
/// regression guard for that property (BENCH_affinity.json in CI).
/// range(0): 0 = unbound, 1 = proc_bind(close). range(1): team size.
///
/// Registered LAST, with every unbound config ordered before any bound one:
/// apply_place_mask has no inverse, so once a bound region pins the master
/// (and its workers), later regions in the same process inherit the
/// narrowed mask — ordering keeps both the unbound baselines and every
/// other benchmark in this binary unpinned.
void BM_ForkJoinBound(benchmark::State& state) {
  const bool bound = state.range(0) == 1;
  const int threads = static_cast<int>(state.range(1));
  std::atomic<int> sink{0};
  zomp::ParallelOptions opts;
  opts.num_threads = threads;
  opts.proc_bind =
      bound ? zomp::rt::BindKind::kClose : zomp::rt::BindKind::kFalse;
  for (auto _ : state) {
    zomp::parallel([&] { sink.fetch_add(1, std::memory_order_relaxed); },
                   opts);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(bound ? "proc_bind-close" : "unbound");
}
ZOMP_BENCHMARK(BM_ForkJoinBound)
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(200);

}  // namespace

BENCHMARK_MAIN();
