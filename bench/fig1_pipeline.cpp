// Figure 1 reproduction: "Overview of the process of intercepting and
// replacing OpenMP pragmas in the Zig compiler".
//
// The paper's Figure 1 is the pipeline diagram — parse, identify directive
// comments, extract code blocks into functions, insert runtime calls. This
// harness *executes* that pipeline on a directive-rich program and prints
// the stage trace with per-stage timing and artifact counts, validating each
// stage's output along the way (a failed stage exits nonzero).
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "codegen/codegen.h"
#include "core/directive_parser.h"
#include "core/transform.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "runtime/api.h"

namespace {

const char* kProgram = R"(
extern fn mz_omp_get_num_threads() i64;

pub fn pipeline_demo(x: []f64, y: []f64) f64 {
  const n: i64 = x.len;
  var sum: f64 = 0.0;
  var nt: i64 = 0;
  //#omp parallel num_threads(4)
  {
    //#omp master
    {
      nt = mz_omp_get_num_threads();
    }
    //#omp for reduction(+: sum) schedule(guided, 4)
    for (0..n) |i| {
      y[i] = y[i] + x[i];
      sum += y[i];
    }
    //#omp barrier
    //#omp single
    {
      y[0] = sum;
    }
  }
  //#omp parallel for schedule(dynamic, 8) lastprivate(nt)
  for (0..n) |i| {
    y[i] = y[i] * 2.0;
    nt = i;
  }
  return sum;
}
)";

}  // namespace

int main() {
  using zomp::lang::Token;

  std::printf("# Figure 1 — directive interception & replacement pipeline\n");
  std::printf("# stage-by-stage trace over a %zu-byte MiniZig program\n\n",
              std::string(kProgram).size());

  zomp::lang::SourceFile file("pipeline_demo.mz", kProgram);
  zomp::lang::Diagnostics diags;

  // Stage 1: lex (directive comments survive as tokens — the interception).
  double t0 = zomp::wtime();
  zomp::lang::Lexer lexer(file, diags);
  std::vector<Token> tokens = lexer.lex();
  const double lex_s = zomp::wtime() - t0;
  int directive_tokens = 0;
  for (const Token& t : tokens) {
    if (t.is(zomp::lang::TokenKind::kDirective)) ++directive_tokens;
  }
  std::printf("[1] lex                 %8.1f us   %5zu tokens, %d directive comments intercepted\n",
              lex_s * 1e6, tokens.size(), directive_tokens);
  if (diags.has_errors() || directive_tokens != 6) {
    std::fprintf(stderr, "stage 1 failed\n%s", diags.render(file).c_str());
    return 1;
  }

  // Stage 2: parse (directives attach to following statements).
  t0 = zomp::wtime();
  zomp::lang::Parser parser(std::move(tokens), diags);
  auto module = parser.parse_module("pipeline_demo");
  const double parse_s = zomp::wtime() - t0;
  std::printf("[2] parse               %8.1f us   %zu functions, directives attached to statements\n",
              parse_s * 1e6, module->functions.size());
  if (diags.has_errors()) {
    std::fprintf(stderr, "stage 2 failed\n%s", diags.render(file).c_str());
    return 1;
  }

  // Stage 3: directive engine (outline blocks into functions, insert
  // structured runtime-call statements).
  t0 = zomp::wtime();
  zomp::core::TransformStats stats;
  const bool transformed = zomp::core::apply_openmp(*module, diags, &stats);
  const double transform_s = zomp::wtime() - t0;
  std::printf("[3] outline+insert      %8.1f us   %d regions outlined, %d worksharing loops, %d directives\n",
              transform_s * 1e6, stats.regions_outlined, stats.ws_loops,
              stats.directives_seen);
  if (!transformed || stats.regions_outlined != 2 || stats.ws_loops != 2) {
    std::fprintf(stderr, "stage 3 failed\n%s", diags.render(file).c_str());
    return 1;
  }

  // Stage 4: sema (types inferred at fork sites — the generics trick).
  t0 = zomp::wtime();
  const bool analyzed = zomp::lang::analyze(*module, diags);
  const double sema_s = zomp::wtime() - t0;
  int outlined = 0;
  for (const auto& fn : module->functions) {
    if (fn->is_outlined) ++outlined;
  }
  std::printf("[4] sema                %8.1f us   %d outlined fn signatures inferred monomorphically\n",
              sema_s * 1e6, outlined);
  if (!analyzed) {
    std::fprintf(stderr, "stage 4 failed\n%s", diags.render(file).c_str());
    return 1;
  }

  // Stage 5: codegen against the runtime ABI.
  t0 = zomp::wtime();
  const std::string cpp = zomp::codegen::emit_cpp(*module);
  const double gen_s = zomp::wtime() - t0;
  int fork_calls = 0;
  int ws_inits = 0;
  for (std::size_t pos = cpp.find("zomp_fork_call"); pos != std::string::npos;
       pos = cpp.find("zomp_fork_call", pos + 1)) {
    ++fork_calls;
  }
  for (std::size_t pos = cpp.find("_init(&"); pos != std::string::npos;
       pos = cpp.find("_init(&", pos + 1)) {
    ++ws_inits;
  }
  std::printf("[5] codegen             %8.1f us   %zu bytes of C++, %d fork calls, %d loop-bound runtime calls\n",
              gen_s * 1e6, cpp.size(), fork_calls, ws_inits);
  if (fork_calls < 2 || ws_inits < 2) {
    std::fprintf(stderr, "stage 5 failed\n");
    return 1;
  }

  std::printf("\npipeline ok: directive comments -> tokens -> attached AST -> "
              "outlined functions + runtime calls -> C++\n");
  return 0;
}
