// Ablation A4: cost of the Fortran call boundary (paper §3.1 establishes
// Zig->Fortran interop; this measures what the boundary itself costs).
//
// Compares a direct C++ call against the same computation reached through
// the Fortran ABI shim (trailing-underscore symbol, all arguments by
// reference) and through a MiniZig-transpiled extern call, plus the
// column-major view's 2D access against native row-major.
#include <benchmark/benchmark.h>

#include <vector>

#include "fortran/fview.h"
#include "fortran/mangle.h"

namespace {

// A small "Fortran" subroutine: daxpy with by-reference everything.
extern "C" void bench_daxpy_(const std::int64_t* n, const double* a,
                             const double* x, double* y) {
  for (std::int64_t i = 0; i < *n; ++i) y[i] += *a * x[i];
}

// The same computation with a natural C++ signature.
void bench_daxpy_direct(std::int64_t n, double a, const double* x, double* y) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

constexpr std::int64_t kN = 4096;

void BM_DirectCall(benchmark::State& state) {
  std::vector<double> x(kN, 1.0), y(kN, 0.0);
  for (auto _ : state) {
    bench_daxpy_direct(kN, 0.5, x.data(), y.data());
    benchmark::DoNotOptimize(y[0]);
  }
}
BENCHMARK(BM_DirectCall)->Iterations(1 << 12);

void BM_FortranAbiCall(benchmark::State& state) {
  std::vector<double> x(kN, 1.0), y(kN, 0.0);
  const std::int64_t n = kN;
  const double a = 0.5;
  for (auto _ : state) {
    bench_daxpy_(&n, &a, x.data(), y.data());
    benchmark::DoNotOptimize(y[0]);
  }
  state.SetLabel(zomp::fortran::mangle("bench_daxpy"));
}
BENCHMARK(BM_FortranAbiCall)->Iterations(1 << 12);

void BM_ColMajorView(benchmark::State& state) {
  constexpr std::int64_t rows = 256, cols = 256;
  std::vector<double> storage(rows * cols, 1.0);
  zomp::fortran::ColMajorView<double> view(storage.data(), rows);
  double sum = 0.0;
  for (auto _ : state) {
    // Fortran-order traversal (column outer) — stride-1 on the view.
    for (std::int64_t j = 1; j <= cols; ++j) {
      for (std::int64_t i = 1; i <= rows; ++i) sum += view(i, j);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ColMajorView)->Iterations(1 << 9);

void BM_RowMajorNative(benchmark::State& state) {
  constexpr std::int64_t rows = 256, cols = 256;
  std::vector<double> storage(rows * cols, 1.0);
  double sum = 0.0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < rows; ++i) {
      for (std::int64_t j = 0; j < cols; ++j) sum += storage[i * cols + j];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RowMajorNative)->Iterations(1 << 9);

}  // namespace

BENCHMARK_MAIN();
