// zomp::algo benchmark (DESIGN.md S11): scan / sort / histogram / top-k on
// N elements, swept across team widths, against two baselines:
//
//   * serial        — a straight single-threaded loop (the oracle: every
//                     zomp record also checks byte-identity against it)
//   * std_par       — the same operation through std::execution::par, i.e.
//                     whatever parallel STL the toolchain ships (libstdc++
//                     degrades to serial without TBB — still a fair "what
//                     you get for free" reference)
//
// Emits BENCH_algo.json: one record per (primitive, variant, threads) with
// min and median of --repeats runs (bench_common.h Timing) plus the
// byte-identity bit. The acceptance bar this backs: exclusive_scan and
// radix_sort at 8 threads on 1M elements >= 2x over serial, identical
// output at every width.
//
//   ./algo_bench --n 1000000 --repeats 5 --out BENCH_algo.json
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#if __has_include(<execution>)
#include <execution>
#define ALGO_BENCH_HAVE_PSTL 1
#else
#define ALGO_BENCH_HAVE_PSTL 0
#endif

#include "bench_common.h"
#include "runtime/runtime.h"

namespace {

using zomp::rt::i64;
using zomp::rt::u64;

constexpr int kWidths[] = {1, 2, 4, 8};

struct Record {
  std::string name;     ///< primitive
  std::string variant;  ///< serial | std_par | zomp
  int threads = 0;      ///< 0 for the baselines
  bench::Timing timing;
  bool identical = true;  ///< output byte-identical to the serial oracle
};

std::vector<Record> g_records;

/// `check` is deliberately a callable, not a bool: C++ evaluates call
/// arguments in unspecified order, and the identity check must not run
/// before the measured runs have produced the output it inspects.
template <typename Check>
void record(const std::string& name, const std::string& variant, int threads,
            bench::Timing t, Check check) {
  const bool identical = check();
  g_records.push_back({name, variant, threads, t, identical});
  std::printf("%-16s %-8s t=%d  min %.6fs  median %.6fs%s\n", name.c_str(),
              variant.c_str(), threads, t.min_s, t.median_s,
              identical ? "" : "  [MISMATCH]");
}

/// measure() variant with an untimed per-repeat setup (sorts mutate their
/// input, so each run must start from the pristine array).
template <typename Setup, typename Fn>
bench::Timing measure_with_setup(int repeats, Setup&& setup, Fn&& fn) {
  std::vector<double> runs;
  for (int i = 0; i < repeats; ++i) {
    setup();
    const double t0 = zomp::wtime();
    fn();
    runs.push_back(zomp::wtime() - t0);
  }
  std::sort(runs.begin(), runs.end());
  return bench::Timing{runs.front(), runs[runs.size() / 2]};
}

template <typename T>
bool same_bytes(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

// -- Primitive drivers -------------------------------------------------------

void bench_scans(const std::vector<i64>& in, int repeats) {
  const i64 n = static_cast<i64>(in.size());
  std::vector<i64> out(in.size());
  std::vector<i64> oracle_ex(in.size());
  std::vector<i64> oracle_inc(in.size());
  {
    i64 run = 0;
    for (i64 i = 0; i < n; ++i) {
      oracle_ex[i] = run;
      run += in[i];
      oracle_inc[i] = run;
    }
  }

  record("exclusive_scan", "serial", 0, bench::measure(repeats, [&] {
           i64 run = 0;
           for (i64 i = 0; i < n; ++i) {
             out[i] = run;
             run += in[i];
           }
         }),
         [&] { return same_bytes(out, oracle_ex); });
#if ALGO_BENCH_HAVE_PSTL
  record("exclusive_scan", "std_par", 0, bench::measure(repeats, [&] {
           std::exclusive_scan(std::execution::par, in.begin(), in.end(),
                               out.begin(), i64{0});
         }),
         [&] { return same_bytes(out, oracle_ex); });
#endif
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("exclusive_scan", "zomp", w, bench::measure(repeats, [&] {
             zomp::algo::exclusive_scan(in.data(), out.data(), n, i64{0},
                                        std::plus<>{}, o);
           }),
           [&] { return same_bytes(out, oracle_ex); });
  }

  record("inclusive_scan", "serial", 0, bench::measure(repeats, [&] {
           i64 run = 0;
           for (i64 i = 0; i < n; ++i) {
             run += in[i];
             out[i] = run;
           }
         }),
         [&] { return same_bytes(out, oracle_inc); });
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("inclusive_scan", "zomp", w, bench::measure(repeats, [&] {
             zomp::algo::inclusive_scan(in.data(), out.data(), n,
                                        std::plus<>{}, o);
           }),
           [&] { return same_bytes(out, oracle_inc); });
  }
}

void bench_radix(const std::vector<u64>& keys0, int repeats) {
  const i64 n = static_cast<i64>(keys0.size());
  std::vector<u64> oracle = keys0;
  std::sort(oracle.begin(), oracle.end());
  std::vector<u64> keys(keys0.size());

  record("radix_sort", "serial", 0, measure_with_setup(
             repeats, [&] { keys = keys0; },
             [&] { std::sort(keys.begin(), keys.end()); }),
         [&] { return same_bytes(keys, oracle); });
#if ALGO_BENCH_HAVE_PSTL
  record("radix_sort", "std_par", 0, measure_with_setup(
             repeats, [&] { keys = keys0; },
             [&] {
               std::sort(std::execution::par, keys.begin(), keys.end());
             }),
         [&] { return same_bytes(keys, oracle); });
#endif
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("radix_sort", "zomp", w, measure_with_setup(
               repeats, [&] { keys = keys0; },
               [&] { zomp::algo::radix_sort(keys.data(), n, o); }),
           [&] { return same_bytes(keys, oracle); });
  }
}

void bench_counting(const std::vector<u64>& keys0, int repeats) {
  const i64 n = static_cast<i64>(keys0.size());
  constexpr i64 kBuckets = 1024;
  std::vector<u64> src(keys0.size());
  for (std::size_t i = 0; i < keys0.size(); ++i) src[i] = keys0[i] % kBuckets;
  std::vector<u64> oracle = src;
  std::stable_sort(oracle.begin(), oracle.end());
  std::vector<u64> keys(src.size());
  const auto key_of = [](u64 v) { return static_cast<i64>(v); };

  record("counting_sort", "serial", 0, measure_with_setup(
             repeats, [&] { keys = src; },
             [&] { std::stable_sort(keys.begin(), keys.end()); }),
         [&] { return same_bytes(keys, oracle); });
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("counting_sort", "zomp", w, measure_with_setup(
               repeats, [&] { keys = src; },
               [&] {
                 zomp::algo::counting_sort(keys.data(), n, kBuckets, key_of,
                                           o);
               }),
           [&] { return same_bytes(keys, oracle); });
  }
}

void bench_histogram(const std::vector<u64>& keys, int repeats) {
  const i64 n = static_cast<i64>(keys.size());
  constexpr i64 kBins = 256;
  std::vector<u64> bins(kBins), oracle(kBins, 0);
  const auto bin_of = [](u64 v) { return static_cast<i64>(v & 0xFF); };
  for (const u64 v : keys) ++oracle[static_cast<std::size_t>(bin_of(v))];

  record("histogram", "serial", 0, bench::measure(repeats, [&] {
           std::fill(bins.begin(), bins.end(), u64{0});
           for (const u64 v : keys) ++bins[static_cast<std::size_t>(bin_of(v))];
         }),
         [&] { return same_bytes(bins, oracle); });
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("histogram", "zomp", w, bench::measure(repeats, [&] {
             zomp::algo::histogram(keys.data(), n, bins.data(), kBins, bin_of,
                                   o);
           }),
           [&] { return same_bytes(bins, oracle); });
  }
}

void bench_topk(const std::vector<i64>& in, int repeats) {
  const i64 n = static_cast<i64>(in.size());
  constexpr i64 kK = 64;
  std::vector<i64> best(kK), oracle(in.begin(), in.end());
  std::partial_sort(oracle.begin(), oracle.begin() + kK, oracle.end(),
                    std::greater<>{});
  oracle.resize(kK);

  record("top_k", "serial", 0, bench::measure(repeats, [&] {
           std::vector<i64> tmp(in.begin(), in.end());
           std::partial_sort(tmp.begin(), tmp.begin() + kK, tmp.end(),
                             std::greater<>{});
           std::copy(tmp.begin(), tmp.begin() + kK, best.begin());
         }),
         [&] { return same_bytes(best, oracle); });
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("top_k", "zomp", w, bench::measure(repeats, [&] {
             zomp::algo::top_k(in.data(), n, kK, best.data(), o);
           }),
           [&] { return same_bytes(best, oracle); });
  }
}

void bench_reduce(const std::vector<i64>& in, int repeats) {
  const i64 n = static_cast<i64>(in.size());
  const i64 oracle = std::accumulate(in.begin(), in.end(), i64{0});
  i64 got = 0;

  record("reduce", "serial", 0, bench::measure(repeats, [&] {
           i64 acc = 0;
           for (i64 i = 0; i < n; ++i) acc += in[i];
           got = acc;
         }),
         [&] { return got == oracle; });
  for (const int w : kWidths) {
    zomp::algo::Options o;
    o.num_threads = w;
    record("reduce", "zomp", w, bench::measure(repeats, [&] {
             got = zomp::algo::reduce(in.data(), n, i64{0}, std::plus<>{}, o);
           }),
           [&] { return got == oracle; });
  }
}

void write_json(const char* path, i64 n, int repeats) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "algo_bench: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"algo\",\n  \"n\": %" PRId64
                  ",\n  \"repeats\": %d,\n  \"records\": [\n",
               n, repeats);
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"variant\": \"%s\", \"threads\": "
                 "%d, \"min_s\": %.9f, \"median_s\": %.9f, \"identical\": "
                 "%s}%s\n",
                 r.name.c_str(), r.variant.c_str(), r.threads,
                 r.timing.min_s, r.timing.median_s,
                 r.identical ? "true" : "false",
                 i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const i64 n = args.get_int("n", 1000000);
  const int repeats = static_cast<int>(args.get_int("repeats", 5));
  const std::string out = args.get("out", "BENCH_algo.json");

  std::mt19937_64 rng(12345);
  std::vector<i64> ints(static_cast<std::size_t>(n));
  std::vector<u64> keys(static_cast<std::size_t>(n));
  for (auto& v : ints) v = static_cast<i64>(rng()) >> 16;
  for (auto& v : keys) v = rng();

  bench_scans(ints, repeats);
  bench_radix(keys, repeats);
  bench_counting(keys, repeats);
  bench_histogram(keys, repeats);
  bench_topk(ints, repeats);
  bench_reduce(ints, repeats);

  write_json(out.c_str(), n, repeats);

  bool all_identical = true;
  for (const Record& r : g_records) all_identical &= r.identical;
  std::printf("algo_bench: %zu records -> %s (%s)\n", g_records.size(),
              out.c_str(), all_identical ? "all identical" : "MISMATCHES");
  return all_identical ? 0 : 1;
}
