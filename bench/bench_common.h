// Shared helpers for the bench harnesses: flag parsing, best-of timing, and
// the mz::Slice adapters that hand host vectors to transpiled kernels.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codegen/mz_support.h"
#include "runtime/api.h"

namespace bench {

/// Tiny flag parser: --name value | --name=value | --flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string get(const std::string& name, const std::string& fallback) const {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == key && i + 1 < args_.size()) return args_[i + 1];
      if (args_[i].rfind(key + "=", 0) == 0) {
        return args_[i].substr(key.size() + 1);
      }
    }
    return fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
  }

  bool has(const std::string& name) const {
    const std::string key = "--" + name;
    for (const auto& a : args_) {
      if (a == key) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// Runs `fn` `repeats` times and returns the best wall time in seconds
/// (NPB reports best-of; so do we).
template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    const double t0 = zomp::wtime();
    fn();
    best = std::min(best, zomp::wtime() - t0);
  }
  return best;
}

template <typename T>
mz::Slice<T> slice_of(std::vector<T>& v) {
  return mz::Slice<T>{v.data(), static_cast<std::int64_t>(v.size())};
}

}  // namespace bench
