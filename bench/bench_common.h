// Shared helpers for the bench harnesses: flag parsing, best-of timing, and
// the mz::Slice adapters that hand host vectors to transpiled kernels.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "codegen/mz_support.h"
#include "runtime/api.h"

namespace bench {

/// Tiny flag parser: --name value | --name=value | --flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string get(const std::string& name, const std::string& fallback) const {
    const std::string key = "--" + name;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == key && i + 1 < args_.size()) return args_[i + 1];
      if (args_[i].rfind(key + "=", 0) == 0) {
        return args_[i].substr(key.size() + 1);
      }
    }
    return fallback;
  }

  long get_int(const std::string& name, long fallback) const {
    const std::string v = get(name, "");
    return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
  }

  bool has(const std::string& name) const {
    const std::string key = "--" + name;
    for (const auto& a : args_) {
      if (a == key) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// One timed measurement: every BENCH_*.json record reports both — the
/// median for run-to-run stability, the min as the contention-free floor
/// (the closest a repeat got to the true cost).
struct Timing {
  double min_s = 0.0;
  double median_s = 0.0;
};

/// Runs `fn` `repeats` times and returns min + median wall seconds.
template <typename Fn>
Timing measure(int repeats, Fn&& fn) {
  std::vector<double> runs;
  runs.reserve(static_cast<std::size_t>(repeats > 0 ? repeats : 1));
  for (int i = 0; i < std::max(repeats, 1); ++i) {
    const double t0 = zomp::wtime();
    fn();
    runs.push_back(zomp::wtime() - t0);
  }
  std::sort(runs.begin(), runs.end());
  Timing t;
  t.min_s = runs.front();
  t.median_s = runs[runs.size() / 2];
  return t;
}

/// Runs `fn` `repeats` times and returns the best wall time in seconds
/// (NPB reports best-of; so do we).
template <typename Fn>
double best_of(int repeats, Fn&& fn) {
  return measure(repeats, fn).min_s;
}

template <typename T>
mz::Slice<T> slice_of(std::vector<T>& v) {
  return mz::Slice<T>{v.data(), static_cast<std::int64_t>(v.size())};
}

#ifdef BENCHMARK_BENCHMARK_H_
/// min-of-repeats aggregate for google-benchmark suites: CI runs them with
/// --benchmark_repetitions, and ZOMP_BENCHMARK below adds a "_min" record
/// next to the stock mean/median/stddev in every BENCH_*.json.
inline double min_of_runs(const std::vector<double>& runs) {
  return *std::min_element(runs.begin(), runs.end());
}
#endif

}  // namespace bench

#ifdef BENCHMARK_BENCHMARK_H_
/// Drop-in for BENCHMARK() that registers the min statistic; further chained
/// setup (->Range, ->UseRealTime, ...) composes as usual.
#define ZOMP_BENCHMARK(fn) \
  BENCHMARK(fn)->ComputeStatistics("min", ::bench::min_of_runs)
#endif
