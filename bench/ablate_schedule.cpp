// Ablation A1: the schedule clause (paper §2 implements schedule; this
// quantifies why it matters).
//
// Workload: Mandelbrot rows — iteration cost varies by orders of magnitude
// across rows, so schedule(static) load-imbalances while dynamic/guided
// rebalance at run time. Sweeps kind x chunk on the same kernel through the
// C++ API; the transpiled MiniZig kernel (fixed dynamic,1) is included as a
// cross-check that generated code sees the same effect.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "mandel_mz.h"
#include "npb/mandel.h"
#include "runtime/api.h"

namespace {

using zomp::npb::MandelParams;

// Asymmetric window: the last rows graze the set (cost ~max_iter/pixel), the
// first rows are far outside (cost ~3 iterations/pixel). A blocked static
// distribution hands whole heavy/light bands to single threads; dynamic and
// guided rebalance. (The default symmetric window would hide the effect at
// low thread counts: the top and bottom halves cost the same.)
const MandelParams kParams{384, 384, 3000, -2.0, 0.5, -2.5, 0.3};

void schedule_arg(benchmark::internal::Benchmark* b) {
  // {kind, chunk}: kind 0=static 1=dynamic 2=guided.
  b->Args({0, 0});
  b->Args({0, 1});
  b->Args({0, 8});
  b->Args({1, 1});
  b->Args({1, 8});
  b->Args({2, 1});
  b->Args({2, 8});
  b->Unit(benchmark::kMillisecond);
  b->Iterations(3);
}

void BM_MandelSchedule(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto chunk = static_cast<std::int64_t>(state.range(1));
  zomp::npb::MandelResult expect = zomp::npb::mandel_serial(kParams);
  for (auto _ : state) {
    const zomp::npb::MandelResult r =
        zomp::npb::mandel_parallel(kParams, 0, kind, chunk);
    if (r.iter_checksum != expect.iter_checksum) {
      state.SkipWithError("checksum mismatch");
    }
  }
  state.SetLabel(kind == 0   ? "static"
                 : kind == 1 ? "dynamic"
                             : "guided");
}
BENCHMARK(BM_MandelSchedule)->Apply(schedule_arg);

void BM_MandelTranspiledDynamic(benchmark::State& state) {
  std::vector<std::int64_t> res(2);
  for (auto _ : state) {
    mzgen_mandel_mz::mandel_run(kParams.width, kParams.height,
                                kParams.max_iter, bench::slice_of(res));
    benchmark::DoNotOptimize(res[1]);
  }
  state.SetLabel("mz schedule(dynamic,1)");
}
BENCHMARK(BM_MandelTranspiledDynamic)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
