// Directive-clause grammar tests (core/directive_parser.h) — the parsing half
// of the paper's contribution.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/directive_parser.h"

namespace zomp::core {
namespace {

std::unique_ptr<Directive> parse_ok(const std::string& text) {
  lang::Diagnostics diags;
  auto d = parse_directive(text, lang::SourceLoc{}, diags);
  EXPECT_NE(d, nullptr) << text;
  EXPECT_FALSE(diags.has_errors()) << text;
  return d;
}

void parse_fail(const std::string& text, const std::string& fragment = "") {
  lang::Diagnostics diags;
  auto d = parse_directive(text, lang::SourceLoc{}, diags);
  EXPECT_EQ(d, nullptr) << text;
  EXPECT_TRUE(diags.has_errors()) << text;
  if (!fragment.empty()) {
    bool found = false;
    for (const auto& diag : diags.all()) {
      if (diag.message.find(fragment) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "wanted '" << fragment << "' for: " << text;
  }
}

TEST(DirectiveParserTest, BareConstructs) {
  EXPECT_EQ(parse_ok(" parallel")->kind, DirectiveKind::kParallel);
  EXPECT_EQ(parse_ok(" for")->kind, DirectiveKind::kFor);
  EXPECT_EQ(parse_ok(" parallel for")->kind, DirectiveKind::kParallelFor);
  EXPECT_EQ(parse_ok(" barrier")->kind, DirectiveKind::kBarrier);
  EXPECT_EQ(parse_ok(" critical")->kind, DirectiveKind::kCritical);
  EXPECT_EQ(parse_ok(" single")->kind, DirectiveKind::kSingle);
  EXPECT_EQ(parse_ok(" master")->kind, DirectiveKind::kMaster);
  EXPECT_EQ(parse_ok(" atomic")->kind, DirectiveKind::kAtomic);
  EXPECT_EQ(parse_ok(" ordered")->kind, DirectiveKind::kOrdered);
  EXPECT_EQ(parse_ok(" task")->kind, DirectiveKind::kTask);
  EXPECT_EQ(parse_ok(" taskwait")->kind, DirectiveKind::kTaskwait);
}

TEST(DirectiveParserTest, UnknownDirectiveRejected) {
  parse_fail(" sections", "unknown OpenMP directive");
  parse_fail(" paralel", "unknown OpenMP directive");
}

TEST(DirectiveParserTest, DataSharingLists) {
  auto d = parse_ok(" parallel shared(a, b) private(c) firstprivate(d, e)");
  EXPECT_EQ(d->shared_vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d->private_vars, (std::vector<std::string>{"c"}));
  EXPECT_EQ(d->firstprivate_vars, (std::vector<std::string>{"d", "e"}));
}

TEST(DirectiveParserTest, DefaultClause) {
  EXPECT_EQ(parse_ok(" parallel default(shared)")->default_mode,
            DefaultKind::kShared);
  EXPECT_EQ(parse_ok(" parallel default(none)")->default_mode,
            DefaultKind::kNone);
  parse_fail(" parallel default(private)", "default");
}

TEST(DirectiveParserTest, ReductionOperators) {
  using lang::ReduceOp;
  const std::pair<const char*, ReduceOp> cases[] = {
      {" parallel reduction(+: s)", ReduceOp::kAdd},
      {" parallel reduction(-: s)", ReduceOp::kSub},
      {" parallel reduction(*: s)", ReduceOp::kMul},
      {" parallel reduction(min: s)", ReduceOp::kMin},
      {" parallel reduction(max: s)", ReduceOp::kMax},
      {" parallel reduction(&: s)", ReduceOp::kBitAnd},
      {" parallel reduction(|: s)", ReduceOp::kBitOr},
      {" parallel reduction(^: s)", ReduceOp::kBitXor},
      {" parallel reduction(and: s)", ReduceOp::kLogAnd},
      {" parallel reduction(or: s)", ReduceOp::kLogOr},
  };
  for (const auto& [text, op] : cases) {
    auto d = parse_ok(text);
    ASSERT_EQ(d->reductions.size(), 1u) << text;
    EXPECT_EQ(d->reductions[0].op, op) << text;
    EXPECT_EQ(d->reductions[0].vars, std::vector<std::string>{"s"}) << text;
  }
}

TEST(DirectiveParserTest, ReductionMultipleVarsAndClauses) {
  auto d = parse_ok(" parallel for reduction(+: a, b) reduction(max: c)");
  ASSERT_EQ(d->reductions.size(), 2u);
  EXPECT_EQ(d->reductions[0].vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d->reductions[1].vars, (std::vector<std::string>{"c"}));
}

TEST(DirectiveParserTest, ReductionErrors) {
  parse_fail(" parallel reduction(%: s)", "reduction operator");
  parse_fail(" parallel reduction(+ s)", "':'");
  parse_fail(" parallel reduction(+:)", "variable names");
}

TEST(DirectiveParserTest, ScheduleClause) {
  using K = lang::ScheduleSpec::Kind;
  EXPECT_EQ(parse_ok(" for schedule(static)")->schedule.kind, K::kStatic);
  EXPECT_EQ(parse_ok(" for schedule(dynamic)")->schedule.kind, K::kDynamic);
  EXPECT_EQ(parse_ok(" for schedule(guided)")->schedule.kind, K::kGuided);
  EXPECT_EQ(parse_ok(" for schedule(auto)")->schedule.kind, K::kAuto);
  EXPECT_EQ(parse_ok(" for schedule(runtime)")->schedule.kind, K::kRuntime);
  auto with_chunk = parse_ok(" for schedule(dynamic, 16)");
  ASSERT_NE(with_chunk->schedule.chunk, nullptr);
  EXPECT_EQ(with_chunk->schedule.chunk->int_value, 16);
}

TEST(DirectiveParserTest, ScheduleChunkIsExpression) {
  auto d = parse_ok(" for schedule(dynamic, n / 4)");
  ASSERT_NE(d->schedule.chunk, nullptr);
  EXPECT_EQ(lang::dump_expr(*d->schedule.chunk), "(/ n 4)");
}

TEST(DirectiveParserTest, ScheduleErrors) {
  parse_fail(" for schedule(fast)", "unknown schedule kind");
  parse_fail(" for schedule(runtime, 4)", "no chunk");
  parse_fail(" for schedule(static, 1, 2)", "too many");
}

TEST(DirectiveParserTest, NumThreadsAndIfAreExpressions) {
  auto d = parse_ok(" parallel num_threads(2 * n) if(n > 100)");
  ASSERT_NE(d->num_threads, nullptr);
  EXPECT_EQ(lang::dump_expr(*d->num_threads), "(* 2 n)");
  ASSERT_NE(d->if_clause, nullptr);
  EXPECT_EQ(lang::dump_expr(*d->if_clause), "(> n 100)");
}

TEST(DirectiveParserTest, CriticalName) {
  EXPECT_EQ(parse_ok(" critical")->critical_name, "");
  EXPECT_EQ(parse_ok(" critical(updates)")->critical_name, "updates");
}

TEST(DirectiveParserTest, NowaitOrderedLastprivate) {
  auto d = parse_ok(" for nowait lastprivate(x, y)");
  EXPECT_TRUE(d->nowait);
  EXPECT_EQ(d->lastprivate_vars, (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(parse_ok(" for ordered")->ordered);
  parse_fail(" for ordered nowait", "nowait");
}

TEST(DirectiveParserTest, ClausePlacementValidation) {
  parse_fail(" for num_threads(4)", "not valid");
  parse_fail(" parallel schedule(static)", "not valid");
  parse_fail(" barrier nowait", "not valid");
  parse_fail(" single schedule(static)", "not valid");
  parse_fail(" for shared(x)", "not valid");
  parse_fail(" parallel for nowait", "not valid");
  parse_fail(" critical reduction(+: x)", "not valid");
}

TEST(DirectiveParserTest, SingleNowaitAllowed) {
  EXPECT_TRUE(parse_ok(" single nowait")->nowait);
}

TEST(DirectiveParserTest, TaskClauses) {
  auto d = parse_ok(" task if(n > 10) firstprivate(a)");
  EXPECT_NE(d->if_clause, nullptr);
  EXPECT_EQ(d->firstprivate_vars, (std::vector<std::string>{"a"}));
}

TEST(DirectiveParserTest, UnsupportedClausesWarnButPass) {
  lang::Diagnostics diags;
  auto d = parse_directive(" parallel copyin(x)", lang::SourceLoc{}, diags);
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(diags.has_errors());
  bool warned = false;
  for (const auto& diag : diags.all()) {
    if (diag.severity == lang::Severity::kWarning) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(DirectiveParserTest, ProcBindKinds) {
  EXPECT_EQ(parse_ok(" parallel proc_bind(primary)")->proc_bind,
            ProcBindKind::kPrimary);
  // `master` is the deprecated 5.0 alias for primary.
  EXPECT_EQ(parse_ok(" parallel proc_bind(master)")->proc_bind,
            ProcBindKind::kPrimary);
  EXPECT_EQ(parse_ok(" parallel proc_bind(close)")->proc_bind,
            ProcBindKind::kClose);
  EXPECT_EQ(parse_ok(" parallel for proc_bind(spread) schedule(static)")
                ->proc_bind,
            ProcBindKind::kSpread);
  EXPECT_EQ(parse_ok(" parallel")->proc_bind, ProcBindKind::kUnspecified);
}

TEST(DirectiveParserTest, ProcBindErrors) {
  parse_fail(" parallel proc_bind(everywhere)", "unknown proc_bind kind");
  parse_fail(" parallel proc_bind()", "proc_bind(...) takes");
  parse_fail(" parallel proc_bind(close, spread)", "proc_bind(...) takes");
  parse_fail(" parallel proc_bind(close) proc_bind(spread)",
             "duplicate 'proc_bind' clause");
  parse_fail(" for proc_bind(close)", "not valid on 'for'");
  parse_fail(" task proc_bind(spread)", "not valid on 'task'");
}

TEST(DirectiveParserTest, TaskingConstructHeads) {
  EXPECT_EQ(parse_ok(" taskgroup")->kind, DirectiveKind::kTaskgroup);
  EXPECT_EQ(parse_ok(" taskloop")->kind, DirectiveKind::kTaskloop);
}

TEST(DirectiveParserTest, DependClauseKindsAndItems) {
  auto d = parse_ok(" task depend(in: a, b) depend(out: c) depend(inout: x[i * 4])");
  ASSERT_EQ(d->depends.size(), 3u);
  EXPECT_EQ(d->depends[0].kind, DependKind::kIn);
  ASSERT_EQ(d->depends[0].items.size(), 2u);
  EXPECT_EQ(lang::dump_expr(*d->depends[0].items[0]), "a");
  EXPECT_EQ(lang::dump_expr(*d->depends[0].items[1]), "b");
  EXPECT_EQ(d->depends[1].kind, DependKind::kOut);
  EXPECT_EQ(d->depends[2].kind, DependKind::kInout);
  EXPECT_EQ(lang::dump_expr(*d->depends[2].items[0]), "(index x (* i 4))");
}

TEST(DirectiveParserTest, DependClauseErrors) {
  parse_fail(" task depend(mutexinout: a)", "unknown depend kind");
  parse_fail(" task depend(in a)", "':' after depend kind");
  parse_fail(" task depend(in:)", "depend");
  parse_fail(" task depend(in: a + b)", "variable or a slice element");
  parse_fail(" for depend(in: a)", "not valid");
  parse_fail(" taskloop depend(in: a)", "not valid");
  parse_fail(" taskgroup depend(out: a)", "not valid");
}

TEST(DirectiveParserTest, TaskFinalPriorityUntied) {
  auto d = parse_ok(" task final(n > 4) priority(2 * p) untied if(n > 0)");
  ASSERT_NE(d->final_clause, nullptr);
  EXPECT_EQ(lang::dump_expr(*d->final_clause), "(> n 4)");
  ASSERT_NE(d->priority, nullptr);
  EXPECT_EQ(lang::dump_expr(*d->priority), "(* 2 p)");
  EXPECT_TRUE(d->untied);
  parse_fail(" parallel final(true)", "not valid");
  parse_fail(" for priority(1)", "not valid");
  parse_fail(" single untied", "not valid");
  parse_fail(" task final(1) final(0)", "duplicate 'final'");
  parse_fail(" task priority(1) priority(2)", "duplicate 'priority'");
}

TEST(DirectiveParserTest, TaskloopChunkingClauses) {
  auto g = parse_ok(" taskloop grainsize(64) firstprivate(a) shared(b)");
  ASSERT_NE(g->grainsize, nullptr);
  EXPECT_EQ(g->grainsize->int_value, 64);
  EXPECT_EQ(g->firstprivate_vars, (std::vector<std::string>{"a"}));
  EXPECT_EQ(g->shared_vars, (std::vector<std::string>{"b"}));
  auto n = parse_ok(" taskloop num_tasks(t * 2)");
  ASSERT_NE(n->num_tasks, nullptr);
  EXPECT_EQ(lang::dump_expr(*n->num_tasks), "(* t 2)");
  parse_fail(" taskloop grainsize(4) num_tasks(2)", "mutually exclusive");
  parse_fail(" taskloop grainsize(4) grainsize(8)", "duplicate 'grainsize'");
  parse_fail(" taskloop num_tasks(4) num_tasks(8)", "duplicate 'num_tasks'");
  parse_fail(" for grainsize(4)", "not valid");
  parse_fail(" task num_tasks(4)", "not valid");
  parse_fail(" taskloop schedule(static)", "not valid");
}

TEST(DirectiveParserTest, CollapseDepths) {
  EXPECT_EQ(parse_ok(" for collapse(1)")->collapse, 1);
  EXPECT_EQ(parse_ok(" for collapse(2)")->collapse, 2);
  EXPECT_EQ(parse_ok(" parallel for collapse(3) schedule(dynamic)")->collapse,
            3);
  EXPECT_EQ(parse_ok(" for")->collapse, 1);  // absent means depth 1
}

TEST(DirectiveParserTest, CollapseErrors) {
  parse_fail(" for collapse(0)", "positive integer");
  parse_fail(" for collapse(n)", "positive integer");
  parse_fail(" for collapse(2, 3)", "positive integer");
  parse_fail(" for collapse(99)", "supported maximum");
  parse_fail(" parallel collapse(2)", "not valid");
  parse_fail(" single collapse(2)", "not valid");
}

TEST(DirectiveParserTest, DuplicateSingleValuedClausesRejected) {
  parse_fail(" for schedule(static) schedule(dynamic)", "duplicate 'schedule'");
  parse_fail(" for collapse(2) collapse(3)", "duplicate 'collapse'");
  parse_fail(" parallel num_threads(2) num_threads(4)",
             "duplicate 'num_threads'");
  parse_fail(" parallel if(true) if(false)", "duplicate 'if'");
  parse_fail(" parallel default(shared) default(none)", "duplicate 'default'");
  // Even an identical repetition is a duplicate, not a silent no-op.
  parse_fail(" for schedule(static) schedule(static)", "duplicate 'schedule'");
}

TEST(DirectiveParserTest, ListValuedClausesMayRepeat) {
  auto d = parse_ok(" parallel shared(a) shared(b) private(c) private(d)");
  EXPECT_EQ(d->shared_vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d->private_vars, (std::vector<std::string>{"c", "d"}));
}

TEST(DirectiveParserTest, UnbalancedParensRejected) {
  parse_fail(" parallel num_threads(2", "unbalanced");
}

TEST(DirectiveParserTest, UnknownClauseRejected) {
  parse_fail(" parallel fancy(3)", "unknown clause");
}

TEST(DirectiveParserTest, CancelConstructs) {
  auto d = parse_ok(" cancel parallel");
  EXPECT_EQ(d->kind, DirectiveKind::kCancel);
  EXPECT_EQ(d->cancel_construct, 1);  // ZOMP_CANCEL_PARALLEL
  EXPECT_EQ(parse_ok(" cancel for")->cancel_construct, 2);
  EXPECT_EQ(parse_ok(" cancel taskgroup")->cancel_construct, 4);

  auto p = parse_ok(" cancellation point for");
  EXPECT_EQ(p->kind, DirectiveKind::kCancellationPoint);
  EXPECT_EQ(p->cancel_construct, 2);
  EXPECT_EQ(parse_ok(" cancellation point parallel")->cancel_construct, 1);
  EXPECT_EQ(parse_ok(" cancellation point taskgroup")->cancel_construct, 4);

  // Both are standalone: they attach to the following statement in the
  // transform, like barrier and taskwait.
  EXPECT_TRUE(directive_is_standalone(DirectiveKind::kCancel));
  EXPECT_TRUE(directive_is_standalone(DirectiveKind::kCancellationPoint));
}

TEST(DirectiveParserTest, CancelErrors) {
  parse_fail(" cancel", "construct name after 'cancel'");
  parse_fail(" cancel sections", "unknown cancel construct");
  parse_fail(" cancel loop", "unknown cancel construct");
  parse_fail(" cancellation", "expected 'point' after 'cancellation'");
  parse_fail(" cancellation pointer", "expected 'point' after 'cancellation'");
  parse_fail(" cancellation point", "construct name after 'cancel'");
  // No clause is valid on cancel (the spec's if-clause is not supported and
  // is rejected rather than silently dropped).
  parse_fail(" cancel for nowait");
  parse_fail(" cancel parallel if(1)");
  parse_fail(" cancellation point for schedule(static)");
}

}  // namespace
}  // namespace zomp::core
