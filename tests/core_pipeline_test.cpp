// Pipeline-level tests: compile_source error flows, stats, and a
// directive × construct validity grid (property-style sweep over the
// combinations a user can write).
#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.h"

namespace zomp::core {
namespace {

TEST(PipelineTest, OkPathProducesModuleAndStats) {
  auto result = compile_source(R"(
pub fn main() void {
  var n: i64 = 0;
  //#omp parallel
  {
    //#omp atomic
    n += 1;
  }
}
)");
  EXPECT_TRUE(result.ok);
  ASSERT_NE(result.module, nullptr);
  EXPECT_EQ(result.stats.directives_seen, 2);
  EXPECT_EQ(result.stats.regions_outlined, 1);
  EXPECT_TRUE(result.diagnostics_text().empty()) << result.diagnostics_text();
}

TEST(PipelineTest, ModuleNameFlowsThrough) {
  CompileOptions options;
  options.module_name = "custom_name";
  auto result = compile_source("fn f() void {}", options);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.module->name, "custom_name");
}

TEST(PipelineTest, LexErrorStopsEarly) {
  auto result = compile_source("fn f() void { \"unterminated }");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("unterminated"), std::string::npos);
}

TEST(PipelineTest, ParseErrorStopsBeforeTransform) {
  auto result = compile_source("fn f( { }");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.stats.directives_seen, 0);
}

TEST(PipelineTest, TransformErrorReported) {
  auto result = compile_source(R"(
fn f() void {
  var a: i64 = 0;
  //#omp bogus_directive
  a += 1;
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("unknown OpenMP directive"),
            std::string::npos);
}

TEST(PipelineTest, SemaErrorAfterTransformReported) {
  // The directive is fine; the body has a type error that only sema sees.
  auto result = compile_source(R"(
fn f(n: i64) void {
  var s: f64 = 0.0;
  //#omp parallel for reduction(+: s)
  for (0..n) |i| {
    s += i;
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("cannot assign i64 to f64"),
            std::string::npos);
}

TEST(PipelineTest, ReductionOnBoolRejected) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  var ok: bool = true;
  //#omp parallel for reduction(+: ok)
  for (0..n) |i| {
    ok = ok and true;
  }
}
)");
  EXPECT_FALSE(result.ok);
}

TEST(PipelineTest, CapturedSliceRebindWarningFreeButWorks) {
  // Rebinding a value-captured slice header inside a region must type-check
  // (the write hits the copy; sharing applies to the payload only).
  auto result = compile_source(R"(
fn f(x: []f64, y: []f64) void {
  //#omp parallel
  {
    x = y;
    x[0] = 1.0;
  }
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
}

// -- Directive × construct validity grid ----------------------------------------

struct GridCase {
  const char* directive;   // text after //#omp
  const char* statement;   // the associated statement
  bool ok;
};

class DirectiveGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(DirectiveGridTest, Combination) {
  const GridCase& c = GetParam();
  const std::string source = std::string(R"(
fn f(n: i64, x: []f64) void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp )") + c.directive + "\n    " +
                             c.statement + R"(
  }
}
)";
  auto result = compile_source(source);
  EXPECT_EQ(result.ok, c.ok) << source << "\n" << result.diagnostics_text();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DirectiveGridTest,
    ::testing::Values(
        // worksharing needs the canonical loop
        GridCase{"for", "for (0..n) |i| { x[0] = 1.0; }", true},
        GridCase{"for", "acc += 1;", false},
        GridCase{"for schedule(dynamic, 2)", "for (0..n) |i| { }", true},
        GridCase{"for nowait", "for (0..n) |i| { }", true},
        // atomic needs a compound assignment
        GridCase{"atomic", "acc += 1;", true},
        GridCase{"atomic", "acc = 1;", false},
        GridCase{"atomic", "x[0] *= 2.0;", true},
        GridCase{"atomic", "for (0..n) |i| { }", false},
        // block constructs accept any statement
        GridCase{"critical", "acc += 1;", true},
        GridCase{"critical(name)", "{ acc += 1; }", true},
        GridCase{"single", "{ acc += 1; }", true},
        GridCase{"single nowait", "acc += 1;", true},
        GridCase{"master", "{ acc += 1; }", true},
        GridCase{"task", "{ var t: i64 = acc; t += 1; }", true},
        // standalone directives precede statements without consuming them
        GridCase{"barrier", "acc += 1;", true},
        GridCase{"taskwait", "acc += 1;", true},
        // nested parallel
        GridCase{"parallel num_threads(2)", "{ acc += 1; }", true},
        GridCase{"parallel if(n > 3)", "{ acc += 1; }", true}));

TEST(PipelineTest, DeeplyNestedDirectivesCompose) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  var total: i64 = 0;
  //#omp parallel num_threads(2)
  {
    //#omp single
    {
      //#omp task
      {
        //#omp atomic
        total += 1;
      }
    }
    //#omp barrier
    //#omp for reduction(+: total)
    for (0..n) |i| {
      total += 1;
    }
  }
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_EQ(result.stats.regions_outlined, 1);
  EXPECT_EQ(result.stats.tasks_outlined, 1);
  EXPECT_EQ(result.stats.ws_loops, 1);
}

// -- Cancellation: closely-nested rules and hazard warnings ------------------
//
// sema's check only runs after the core transform has lowered //#omp, so
// these go through compile_source rather than run_sema.

TEST(PipelineCancelTest, CloselyNestedFormsAccepted) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp cancellation point parallel
    //#omp for
    for (0..n) |i| {
      //#omp cancellation point for
      acc += 1;
      if (i == 3) {
        //#omp cancel for
      }
    }
    //#omp cancel parallel
  }
  //#omp parallel
  {
    //#omp single
    {
      //#omp taskgroup
      {
        //#omp task
        {
          //#omp cancel taskgroup
          acc += 1;
        }
      }
    }
  }
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
}

TEST(PipelineCancelTest, OrphanedCancelBindsDynamically) {
  // No statically enclosing construct: binding is resolved at runtime, so
  // sema must not reject it.
  auto result = compile_source(R"(
fn helper() void {
  //#omp cancellation point parallel
  //#omp cancel parallel
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
}

TEST(PipelineCancelTest, CancelParallelInsideWsLoopRejected) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  //#omp parallel
  {
    //#omp for
    for (0..n) |i| {
      //#omp cancel parallel
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find(
                "'cancel parallel' must be closely nested inside a parallel "
                "region"),
            std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, CancelForOutsideLoopRejected) {
  auto result = compile_source(R"(
fn f() void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp cancel for
    acc += 1;
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find(
                "'cancel for' must be closely nested inside a worksharing "
                "loop"),
            std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, CancelTaskgroupOutsideTaskRejected) {
  auto result = compile_source(R"(
fn f() void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp taskgroup
    {
      //#omp cancel taskgroup
      acc += 1;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(
      result.diagnostics_text().find("'cancel taskgroup' must be closely "
                                     "nested inside a task"),
      std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, InterveningConstructBreaksCloseNesting) {
  // single between parallel and the cancel: kOther intervenes.
  auto result = compile_source(R"(
fn f() void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp single
    {
      //#omp cancel parallel
      acc += 1;
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("another construct intervenes"),
            std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, CancellationPointsObeySameNesting) {
  auto result = compile_source(R"(
fn f(n: i64) void {
  //#omp parallel
  {
    //#omp for
    for (0..n) |i| {
      //#omp cancellation point parallel
    }
  }
}
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics_text().find("'cancellation point parallel'"),
            std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, BarrierAfterCancelWarns) {
  auto result = compile_source(R"(
fn f() void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp cancel parallel
    //#omp barrier
    acc += 1;
  }
}
)");
  // A warning, not an error: the program is legal but almost certainly hangs.
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_NE(result.diagnostics_text().find("barrier immediately after "
                                           "'cancel'"),
            std::string::npos)
      << result.diagnostics_text();
}

TEST(PipelineCancelTest, BarrierAfterTaskgroupCancelDoesNotWarn) {
  // cancel taskgroup does not abandon barriers, so the hazard warning must
  // stay quiet even for a textually adjacent barrier.
  auto result = compile_source(R"(
fn f() void {
  var acc: i64 = 0;
  //#omp parallel
  {
    //#omp single
    {
      //#omp task
      {
        //#omp cancel taskgroup
        //#omp barrier
        acc += 1;
      }
    }
  }
}
)");
  EXPECT_TRUE(result.ok) << result.diagnostics_text();
  EXPECT_TRUE(result.diagnostics_text().empty()) << result.diagnostics_text();
}

TEST(PipelineTest, OutlinedFunctionNamesAreUniqueAndScoped) {
  auto result = compile_source(R"(
fn alpha() void {
  var a: i64 = 0;
  //#omp parallel
  {
    a += 1;
  }
}
fn beta() void {
  var b: i64 = 0;
  //#omp parallel
  {
    b += 1;
  }
}
)");
  ASSERT_TRUE(result.ok);
  int outlined = 0;
  for (const auto& fn : result.module->functions) {
    if (fn->is_outlined) {
      ++outlined;
      EXPECT_TRUE(fn->name.find("__omp_alpha_") != std::string::npos ||
                  fn->name.find("__omp_beta_") != std::string::npos)
          << fn->name;
    }
  }
  EXPECT_EQ(outlined, 2);
}

}  // namespace
}  // namespace zomp::core
