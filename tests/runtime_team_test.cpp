// Fork/join, team queries, ICVs, and the in-region constructs (single,
// master, critical, ordered, reductions) through the high-level API.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace zomp {
namespace {

TEST(ForkJoinTest, TeamHasRequestedSize) {
  for (const int want : {1, 2, 3, 4, 8}) {
    std::atomic<int> members{0};
    std::set<int> tids;
    std::mutex m;
    parallel(
        [&] {
          members.fetch_add(1);
          const std::lock_guard<std::mutex> lock(m);
          tids.insert(thread_num());
        },
        ParallelOptions{want, true});
    EXPECT_EQ(members.load(), want);
    EXPECT_EQ(static_cast<int>(tids.size()), want);
    EXPECT_TRUE(tids.contains(0)) << "master participates as tid 0";
  }
}

TEST(ForkJoinTest, NumThreadsQueryInsideRegion) {
  parallel(
      [&] {
        EXPECT_EQ(num_threads(), 3);
        EXPECT_GE(thread_num(), 0);
        EXPECT_LT(thread_num(), 3);
        EXPECT_TRUE(in_parallel());
        EXPECT_EQ(level(), 1);
        EXPECT_EQ(active_level(), 1);
      },
      ParallelOptions{3, true});
  EXPECT_FALSE(in_parallel());
  EXPECT_EQ(num_threads(), 1);
  EXPECT_EQ(level(), 0);
}

TEST(ForkJoinTest, IfClauseFalseSerialises) {
  parallel(
      [&] {
        EXPECT_EQ(num_threads(), 1);
        EXPECT_EQ(thread_num(), 0);
      },
      ParallelOptions{4, /*if_clause=*/false});
}

TEST(ForkJoinTest, NestedRegionsSerialiseByDefault) {
  parallel(
      [&] {
        parallel([&] {
          EXPECT_EQ(num_threads(), 1);
          EXPECT_EQ(level(), 2);
          EXPECT_EQ(active_level(), 1);
        });
      },
      ParallelOptions{2, true});
}

TEST(ForkJoinTest, NestedRegionsActivateWhenAllowed) {
  set_max_active_levels(2);
  std::atomic<int> inner_total{0};
  parallel(
      [&] {
        parallel([&] { inner_total.fetch_add(1); }, ParallelOptions{2, true});
      },
      ParallelOptions{2, true});
  set_max_active_levels(1);
  // 2 outer members x 2 inner members (resources permitting, >= outer count).
  EXPECT_GE(inner_total.load(), 2);
  EXPECT_LE(inner_total.load(), 4);
}

TEST(ForkJoinTest, MasterValueVisibleAfterJoin) {
  int value = 0;
  parallel([&] { master([&] { value = 42; }); }, ParallelOptions{4, true});
  EXPECT_EQ(value, 42);
}

TEST(ForkJoinTest, RegionsAreReentrantBackToBack) {
  for (int i = 0; i < 100; ++i) {
    std::atomic<int> n{0};
    parallel([&] { n.fetch_add(1); }, ParallelOptions{4, true});
    ASSERT_EQ(n.load(), 4) << "region " << i;
  }
}

TEST(ForkJoinTest, UserThreadsCanForkIndependently) {
  std::atomic<int> total{0};
  std::thread t1([&] {
    parallel([&] { total.fetch_add(1); }, ParallelOptions{2, true});
  });
  std::thread t2([&] {
    parallel([&] { total.fetch_add(1); }, ParallelOptions{2, true});
  });
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 4);
}

// -- Hot-team fast path (pool.h, DESIGN.md S1.6) -----------------------------

TEST(HotTeamTest, SameSizeForksReuseTheTeamObject) {
  // Back-to-back same-size outermost regions must recycle the cached team
  // (same Team object, no new workers) instead of rebuilding it.
  rt::Team* first = nullptr;
  rt::Team* second = nullptr;
  parallel([&] { master([&] { first = rt::current_thread().team; }); },
           ParallelOptions{4, true});
  const int spawned_after_first = rt::Pool::instance().spawned();
  for (int i = 0; i < 50; ++i) {
    std::atomic<int> n{0};
    parallel(
        [&] {
          n.fetch_add(1);
          master([&] { second = rt::current_thread().team; });
        },
        ParallelOptions{4, true});
    ASSERT_EQ(n.load(), 4) << "region " << i;
    ASSERT_EQ(second, first) << "hot team must be reused, region " << i;
  }
  EXPECT_EQ(rt::Pool::instance().spawned(), spawned_after_first)
      << "same-size reuse must not spawn workers";
}

TEST(HotTeamTest, ReuseAcrossChangedNumThreadsRebuilds) {
  // A changed request dismisses the hot team; every region must still get
  // exactly the size it asked for, with working barrier and reduction.
  for (const int want : {4, 2, 4, 1, 3, 4, 8, 4}) {
    std::atomic<int> members{0};
    int reduced = 0;
    parallel(
        [&] {
          members.fetch_add(1);
          const int r = allreduce(1, std::plus<>{});
          master([&] { reduced = r; });
        },
        ParallelOptions{want, true});
    ASSERT_EQ(members.load(), want);
    ASSERT_EQ(reduced, want) << "reduction tree must match the rebuilt size";
  }
}

TEST(HotTeamTest, IcvChangeBetweenReusesPropagatesToWorkers) {
  // omp_set_schedule style ICV changes between same-size regions must reach
  // every member of the recycled team (workers refresh from the team copy).
  const rt::Schedule saved = get_schedule();
  set_schedule(rt::Schedule{rt::ScheduleKind::kDynamic, 7});
  std::atomic<int> saw_dynamic{0};
  parallel(
      [&] {
        if (get_schedule().kind == rt::ScheduleKind::kDynamic &&
            get_schedule().chunk == 7) {
          saw_dynamic.fetch_add(1);
        }
      },
      ParallelOptions{3, true});
  EXPECT_EQ(saw_dynamic.load(), 3);
  set_schedule(rt::Schedule{rt::ScheduleKind::kGuided, 3});
  std::atomic<int> saw_guided{0};
  parallel(
      [&] {
        if (get_schedule().kind == rt::ScheduleKind::kGuided &&
            get_schedule().chunk == 3) {
          saw_guided.fetch_add(1);
        }
      },
      ParallelOptions{3, true});
  EXPECT_EQ(saw_guided.load(), 3) << "recycled team must see the new ICV";
  set_schedule(saved);
}

TEST(HotTeamTest, NestedForksFromAHotTeam) {
  set_max_active_levels(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> inner_total{0};
    std::atomic<int> outer_total{0};
    parallel(
        [&] {
          outer_total.fetch_add(1);
          parallel([&] { inner_total.fetch_add(1); }, ParallelOptions{2, true});
        },
        ParallelOptions{2, true});
    ASSERT_EQ(outer_total.load(), 2) << "round " << round;
    // Inner teams go through the pool (never cached); resources permitting
    // each outer member gets >= 1 (itself) and <= 2 members.
    ASSERT_GE(inner_total.load(), 2) << "round " << round;
    ASSERT_LE(inner_total.load(), 4) << "round " << round;
  }
  set_max_active_levels(1);
}

TEST(HotTeamTest, NowaitConstructsStraddleATeamRebuild) {
  // Several nowait loops + reductions in a hot region, then the same in a
  // smaller rebuilt team: sequence counters, dispatch slots and reduction
  // tokens must all stay consistent across the rebuild boundary.
  for (const int want : {4, 2, 4}) {
    const std::int64_t n = 257;
    std::atomic<std::int64_t> sum{0};
    parallel(
        [&] {
          for (int r = 0; r < 3; ++r) {
            std::int64_t local = 0;
            for_each(
                0, n, [&](std::int64_t i) { local += i; },
                ForOptions{{rt::ScheduleKind::kDynamic, 3}, /*nowait=*/true});
            sum.fetch_add(allreduce(local, std::plus<>{}) == n * (n - 1) / 2
                              ? 0
                              : 1);
          }
        },
        ParallelOptions{want, true});
    ASSERT_EQ(sum.load(), 0) << "every member must see the exact total";
  }
}

TEST(HotTeamTest, ShortAcquireShrinksTeamConsistently) {
  // Requesting far beyond OMP_THREAD_LIMIT must deliver a smaller team whose
  // barrier, reduction tree and dispatch sizing all agree on the actual
  // size — no dangling member slot (the num_threads query, a counted
  // barrier-synchronised region, and an allreduce must all match).
  std::atomic<int> members{0};
  int query = 0;
  int reduced = 0;
  parallel(
      [&] {
        members.fetch_add(1);
        barrier();
        const int r = allreduce(1, std::plus<>{});
        master([&] {
          query = num_threads();
          reduced = r;
        });
      },
      ParallelOptions{100000, true});
  EXPECT_GT(members.load(), 0);
  EXPECT_EQ(query, members.load())
      << "num_threads must report the shrunk size";
  EXPECT_EQ(reduced, members.load())
      << "reduction tree must be sized to the shrunk team";
  // And the next normal-size region is unaffected by the oversized one.
  std::atomic<int> after{0};
  parallel([&] { after.fetch_add(1); }, ParallelOptions{2, true});
  EXPECT_EQ(after.load(), 2);
}

TEST(IcvTest, SetNumThreadsAffectsNextRegion) {
  set_num_threads(3);
  int seen = 0;
  parallel([&] { single([&] { seen = num_threads(); }); });
  EXPECT_EQ(seen, 3);
  set_num_threads(2);
}

TEST(IcvTest, DynamicFlagRoundTrips) {
  set_dynamic(true);
  EXPECT_TRUE(get_dynamic());
  set_dynamic(false);
  EXPECT_FALSE(get_dynamic());
}

TEST(IcvTest, ScheduleRoundTrips) {
  set_schedule({rt::ScheduleKind::kGuided, 9});
  const rt::Schedule s = get_schedule();
  EXPECT_EQ(s.kind, rt::ScheduleKind::kGuided);
  EXPECT_EQ(s.chunk, 9);
  set_schedule({rt::ScheduleKind::kStatic, 0});
}

TEST(IcvTest, WtimeIsMonotonic) {
  const double a = wtime();
  const double b = wtime();
  EXPECT_GE(b, a);
  EXPECT_GT(wtick(), 0.0);
  EXPECT_LT(wtick(), 1.0);
}

TEST(SingleTest, ExactlyOneMemberPerConstructInstance) {
  constexpr int kRounds = 25;
  std::atomic<int> executed{0};
  parallel(
      [&] {
        for (int i = 0; i < kRounds; ++i) {
          single([&] { executed.fetch_add(1); });
        }
      },
      ParallelOptions{4, true});
  EXPECT_EQ(executed.load(), kRounds);
}

TEST(SingleTest, NowaitSingleStillRunsOnce) {
  std::atomic<int> executed{0};
  parallel(
      [&] {
        single([&] { executed.fetch_add(1); }, /*barrier_after=*/false);
        barrier();
      },
      ParallelOptions{4, true});
  EXPECT_EQ(executed.load(), 1);
}

TEST(MasterTest, OnlyTidZeroRuns) {
  std::atomic<int> runs{0};
  std::atomic<int> runner_tid{-1};
  parallel(
      [&] {
        master([&] {
          runs.fetch_add(1);
          runner_tid.store(thread_num());
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(runner_tid.load(), 0);
}

TEST(CriticalTest, MutualExclusionUnderContention) {
  // Non-atomic counter updated under critical must not lose updates.
  long counter = 0;
  constexpr int kPerThread = 5000;
  parallel(
      [&] {
        for (int i = 0; i < kPerThread; ++i) {
          critical([&] { ++counter; });
        }
      },
      ParallelOptions{4, true});
  EXPECT_EQ(counter, 4L * kPerThread);
}

TEST(CriticalTest, DifferentNamesDoNotExclude) {
  // Two named criticals must be independent locks; same name shares one.
  rt::Lock* a1 = rt::CriticalRegistry::instance().get("alpha");
  rt::Lock* a2 = rt::CriticalRegistry::instance().get("alpha");
  rt::Lock* b = rt::CriticalRegistry::instance().get("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(OrderedTest, IterationsEnterInSequence) {
  constexpr rt::i64 n = 200;
  std::vector<rt::i64> order;
  order.reserve(n);
  parallel(
      [&] {
        rt::ThreadState& ts = rt::current_thread();
        rt::Team& team = *ts.team;
        // ordered loops go through the dispatch path, as the engine lowers them
        team.dispatch_init(ts, {rt::ScheduleKind::kDynamic, 7}, 0, n, 1);
        rt::i64 lo = 0, hi = 0;
        bool last = false;
        while (team.dispatch_next(ts, &lo, &hi, &last)) {
          for (rt::i64 i = lo; i < hi; ++i) {
            team.ordered_enter(ts, i);
            order.push_back(i);  // protected by the ordered region itself
            team.ordered_exit(ts, i);
          }
        }
        (void)team.barrier_wait(ts.tid);
      },
      ParallelOptions{4, true});
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (rt::i64 i = 0; i < n; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ReduceTest, InRegionReductionMatchesSerial) {
  constexpr rt::i64 n = 10000;
  double expected = 0.0;
  for (rt::i64 i = 0; i < n; ++i) expected += static_cast<double>(i) * 0.5;
  double got = 0.0;
  parallel(
      [&] {
        const double r = reduce_each<double>(
            0, n, 0.0, std::plus<>{},
            [](rt::i64 i) { return static_cast<double>(i) * 0.5; });
        single([&] { got = r; });
      },
      ParallelOptions{4, true});
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ReduceTest, BackToBackReductionsUseAlternatingCells) {
  // Regression guard for the double-buffered reduction scratch: consecutive
  // reductions must not corrupt each other.
  double a = 0.0, b = 0.0, c = 0.0;
  parallel(
      [&] {
        const double r1 = reduce_each<rt::i64>(0, 100, rt::i64{0}, std::plus<>{},
                                               [](rt::i64) { return rt::i64{1}; });
        const double r2 = reduce_each<rt::i64>(0, 200, rt::i64{0}, std::plus<>{},
                                               [](rt::i64) { return rt::i64{1}; });
        const double r3 = reduce_each<rt::i64>(0, 300, rt::i64{0}, std::plus<>{},
                                               [](rt::i64) { return rt::i64{1}; });
        single([&] {
          a = r1;
          b = r2;
          c = r3;
        });
      },
      ParallelOptions{4, true});
  EXPECT_EQ(a, 100);
  EXPECT_EQ(b, 200);
  EXPECT_EQ(c, 300);
}

TEST(ReduceTest, MinMaxCombines) {
  const double mn = parallel_reduce<double>(
      0, 1000, 1e300, [](double x, double y) { return std::min(x, y); },
      [](rt::i64 i) { return static_cast<double>((i * 37 + 11) % 1000); });
  EXPECT_EQ(mn, 0.0);
  const double mx = parallel_reduce<double>(
      0, 1000, -1e300, [](double x, double y) { return std::max(x, y); },
      [](rt::i64 i) { return static_cast<double>((i * 37 + 11) % 1000); });
  EXPECT_EQ(mx, 999.0);
}

TEST(BarrierApiTest, BarrierSeparatesPhases) {
  constexpr int kThreads = 4;
  std::vector<int> phase1(kThreads, 0);
  std::atomic<int> mismatches{0};
  parallel(
      [&] {
        phase1[static_cast<std::size_t>(thread_num())] = 1;
        barrier();
        for (int i = 0; i < kThreads; ++i) {
          if (phase1[static_cast<std::size_t>(i)] != 1) mismatches.fetch_add(1);
        }
      },
      ParallelOptions{kThreads, true});
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace zomp
