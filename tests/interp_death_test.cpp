// Failure-injection tests: runtime misuse must panic with a diagnostic
// (Zig-style safety behaviour), never corrupt memory silently. Death tests
// run the interpreter in a child process.
#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.h"
#include "interp/interp.h"

namespace zomp::interp {
namespace {

void run_to_death(const std::string& source) {
  auto result = core::compile_source(source);
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  Interp interp(*result.module);
  interp.run_main();  // expected to abort
}

using InterpDeathTest = ::testing::Test;

TEST(InterpDeathTest, IndexOutOfBoundsLoad) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var a = @alloc(f64, 4);
  @print(a[4]);
}
)"),
               "index out of bounds");
}

TEST(InterpDeathTest, IndexOutOfBoundsStore) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var a = @alloc(i64, 2);
  a[-1] = 5;
}
)"),
               "out of bounds");
}

TEST(InterpDeathTest, IntegerDivisionByZero) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var z: i64 = 0;
  @print(7 / z);
}
)"),
               "division by zero");
}

TEST(InterpDeathTest, ModByZero) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var z: i64 = 0;
  @print(@mod(7, z));
}
)"),
               "by zero");
}

TEST(InterpDeathTest, NullPointerDeref) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var p: *f64 = undefined;
  @print(p.*);
}
)"),
               "null pointer");
}

TEST(InterpDeathTest, MissingExternBinding) {
  EXPECT_DEATH(run_to_death(R"(
extern fn not_registered() i64;
pub fn main() void {
  @print(not_registered());
}
)"),
               "no host binding");
}

TEST(InterpDeathTest, NegativeAllocation) {
  EXPECT_DEATH(run_to_death(R"(
pub fn main() void {
  var n: i64 = 0 - 3;
  var a = @alloc(f64, n);
  @print(a.len);
}
)"),
               "negative");
}

}  // namespace
}  // namespace zomp::interp
