// Cross-backend equivalence: the interpreter and the C++ code generator are
// two independent consumers of the transformed AST; running the *same .mz
// kernel files* that the build transpiled natively must produce identical
// results through the interpreter. This pins the two backends to one
// semantics — any divergence in lowering (capture modes, schedule handling,
// reduction identities) fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "interp/interp.h"
#include "is_mz.h"
#include "mandel_mz.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "npb/nprandom.h"
#include "reduce_matrix_mz.h"
#include "runtime/api.h"
#include "taskgraph_mz.h"

#ifndef ZOMP_SOURCE_DIR
#define ZOMP_SOURCE_DIR "."
#endif

namespace zomp::interp {
namespace {

std::string read_kernel(const char* name) {
  const std::string path =
      std::string(ZOMP_SOURCE_DIR) + "/src/npb/kernels/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

SliceVal make_slice_i64(std::int64_t n, std::int64_t fill = 0) {
  SliceVal s;
  s.data = std::make_shared<std::vector<Value>>(static_cast<std::size_t>(n),
                                                Value(fill));
  return s;
}

SliceVal make_slice_f64(std::int64_t n) {
  SliceVal s;
  s.data = std::make_shared<std::vector<Value>>(static_cast<std::size_t>(n),
                                                Value(0.0));
  return s;
}

TEST(BackendEquivalenceTest, MandelKernelInterpretedVsTranspiled) {
  auto result = core::compile_source(read_kernel("mandel.mz"),
                                     {true, "mandel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  constexpr std::int64_t w = 48, h = 48, iters = 200;

  // Interpreted execution of the transformed kernel (parallel, 2 threads).
  Interp interp(*result.module);
  SliceVal res = make_slice_i64(2);
  zomp::set_num_threads(2);
  interp.call_by_name("mandel_run", {Value(w), Value(h), Value(iters),
                                     Value(res)});
  const std::int64_t interp_inside = (*res.data)[0].as_i64();
  const std::int64_t interp_checksum = (*res.data)[1].as_i64();

  // Natively transpiled execution of the same file.
  std::vector<std::int64_t> native(2, 0);
  mzgen_mandel_mz::mandel_run(
      w, h, iters, mz::Slice<std::int64_t>{native.data(), 2});

  EXPECT_EQ(interp_inside, native[0]);
  EXPECT_EQ(interp_checksum, native[1]);

  // And both must agree with the hand-written serial reference.
  zomp::npb::MandelParams params{w, h, iters};
  const zomp::npb::MandelResult serial = zomp::npb::mandel_serial(params);
  EXPECT_EQ(interp_inside, serial.inside);
  EXPECT_EQ(static_cast<std::uint64_t>(interp_checksum), serial.iter_checksum);
}

TEST(BackendEquivalenceTest, IsKernelInterpretedVsTranspiled) {
  auto result =
      core::compile_source(read_kernel("is.mz"), {true, "is_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);

  constexpr int kThreads = 2;
  zomp::set_num_threads(kThreads);

  // Interpreted run.
  Interp interp(*result.module);
  SliceVal keys = make_slice_i64(cls.total_keys);
  for (std::int64_t i = 0; i < cls.total_keys; ++i) {
    (*keys.data)[static_cast<std::size_t>(i)] =
        Value(keys0[static_cast<std::size_t>(i)]);
  }
  SliceVal count = make_slice_i64(cls.max_key);
  SliceVal hist = make_slice_i64(cls.max_key * kThreads);
  const Value interp_checksum = interp.call_by_name(
      "is_run", {Value(keys), Value(cls.max_key),
                 Value(static_cast<std::int64_t>(cls.iterations)), Value(count),
                 Value(hist)});

  // Transpiled run on fresh buffers.
  std::vector<std::int64_t> nkeys = keys0;
  std::vector<std::int64_t> ncount(static_cast<std::size_t>(cls.max_key));
  std::vector<std::int64_t> nhist(
      static_cast<std::size_t>(cls.max_key * kThreads));
  const std::int64_t native_checksum = mzgen_is_mz::is_run(
      mz::Slice<std::int64_t>{nkeys.data(),
                              static_cast<std::int64_t>(nkeys.size())},
      cls.max_key, cls.iterations,
      mz::Slice<std::int64_t>{ncount.data(),
                              static_cast<std::int64_t>(ncount.size())},
      mz::Slice<std::int64_t>{nhist.data(),
                              static_cast<std::int64_t>(nhist.size())});

  EXPECT_EQ(interp_checksum.as_i64(), native_checksum);
  // Both agree with the host-side modular-checksum oracle.
  EXPECT_EQ(native_checksum, zomp::npb::is_rank_checksum_mod(
                                 keys0, cls.max_key, cls.iterations));
}

// -- Equivalence under every schedule kind ----------------------------------
//
// The scheduling substrate (work-stealing deques, batched dispatch cursor)
// must be invisible to results: interp and codegen runs of the same kernels
// have to agree under schedule(static), schedule(dynamic,1) and
// schedule(guided) alike.

struct ScheduleSweepCase {
  zomp::rt::ScheduleKind kind;
  std::int64_t chunk;
  const char* clause;  // source-level spelling, for the mandel rewrite
};

class BackendScheduleSweep : public ::testing::TestWithParam<ScheduleSweepCase> {};

TEST_P(BackendScheduleSweep, IsKernelAgreesUnderScheduleIcv) {
  // is.mz's loops say schedule(runtime); sweeping run-sched-var runs the
  // same interpreted and transpiled code under each schedule kind.
  const ScheduleSweepCase& c = GetParam();
  auto result = core::compile_source(read_kernel("is.mz"), {true, "is_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);
  const std::int64_t oracle =
      zomp::npb::is_rank_checksum_mod(keys0, cls.max_key, cls.iterations);

  constexpr int kThreads = 3;
  zomp::set_num_threads(kThreads);
  zomp::set_schedule({c.kind, c.chunk});

  Interp interp(*result.module);
  SliceVal keys = make_slice_i64(cls.total_keys);
  for (std::int64_t i = 0; i < cls.total_keys; ++i) {
    (*keys.data)[static_cast<std::size_t>(i)] =
        Value(keys0[static_cast<std::size_t>(i)]);
  }
  SliceVal count = make_slice_i64(cls.max_key);
  SliceVal hist = make_slice_i64(cls.max_key * kThreads);
  const Value interp_checksum = interp.call_by_name(
      "is_run", {Value(keys), Value(cls.max_key),
                 Value(static_cast<std::int64_t>(cls.iterations)), Value(count),
                 Value(hist)});

  std::vector<std::int64_t> nkeys = keys0;
  std::vector<std::int64_t> ncount(static_cast<std::size_t>(cls.max_key));
  std::vector<std::int64_t> nhist(
      static_cast<std::size_t>(cls.max_key * kThreads));
  const std::int64_t native_checksum = mzgen_is_mz::is_run(
      mz::Slice<std::int64_t>{nkeys.data(),
                              static_cast<std::int64_t>(nkeys.size())},
      cls.max_key, cls.iterations,
      mz::Slice<std::int64_t>{ncount.data(),
                              static_cast<std::int64_t>(ncount.size())},
      mz::Slice<std::int64_t>{nhist.data(),
                              static_cast<std::int64_t>(nhist.size())});

  zomp::set_schedule({zomp::rt::ScheduleKind::kStatic, 0});
  EXPECT_EQ(interp_checksum.as_i64(), native_checksum) << c.clause;
  EXPECT_EQ(native_checksum, oracle) << c.clause;
}

TEST_P(BackendScheduleSweep, MandelKernelAgreesUnderRewrittenSchedule) {
  // mandel.mz fixes schedule(dynamic, 1); rewriting the clause in source and
  // interpreting the result must still match the transpiled original —
  // integer-exact results cannot depend on the schedule.
  const ScheduleSweepCase& c = GetParam();
  std::string source = read_kernel("mandel.mz");
  const std::string fixed = "schedule(dynamic, 1)";
  const auto at = source.find(fixed);
  ASSERT_NE(at, std::string::npos) << "mandel.mz lost its schedule clause";
  source.replace(at, fixed.size(), c.clause);

  auto result = core::compile_source(source, {true, "mandel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  constexpr std::int64_t w = 40, h = 40, iters = 150;
  zomp::set_num_threads(3);

  Interp interp(*result.module);
  SliceVal res = make_slice_i64(2);
  interp.call_by_name("mandel_run",
                      {Value(w), Value(h), Value(iters), Value(res)});

  std::vector<std::int64_t> native(2, 0);
  mzgen_mandel_mz::mandel_run(w, h, iters,
                              mz::Slice<std::int64_t>{native.data(), 2});

  EXPECT_EQ((*res.data)[0].as_i64(), native[0]) << c.clause;
  EXPECT_EQ((*res.data)[1].as_i64(), native[1]) << c.clause;
}

// -- proc_bind sweep ---------------------------------------------------------
//
// Injecting each proc_bind kind into mandel.mz's parallel-for directive and
// interpreting must (a) compile — the clause rides the whole front-end path —
// and (b) leave the integer-exact results untouched: placement moves threads,
// never work. Runs at 4 threads so close/spread exercise real partitions on
// multi-core hosts, and degrades to the single-place fallback elsewhere.
TEST(BackendEquivalenceTest, MandelKernelAgreesUnderProcBindSweep) {
  const std::string original = read_kernel("mandel.mz");
  const std::string anchor = "//#omp parallel for";

  constexpr std::int64_t w = 40, h = 40, iters = 150;
  std::vector<std::int64_t> native(2, 0);
  mzgen_mandel_mz::mandel_run(w, h, iters,
                              mz::Slice<std::int64_t>{native.data(), 2});

  for (const char* clause :
       {"proc_bind(primary)", "proc_bind(close)", "proc_bind(spread)",
        "proc_bind(master)"}) {
    std::string source = original;
    const auto at = source.find(anchor);
    ASSERT_NE(at, std::string::npos);
    source.insert(at + anchor.size(), std::string(" ") + clause);

    auto result = core::compile_source(source, {true, "mandel_bind_interp"});
    ASSERT_TRUE(result.ok) << clause << ": " << result.diagnostics_text();

    zomp::set_num_threads(4);
    Interp interp(*result.module);
    SliceVal res = make_slice_i64(2);
    interp.call_by_name("mandel_run",
                        {Value(w), Value(h), Value(iters), Value(res)});
    EXPECT_EQ((*res.data)[0].as_i64(), native[0]) << clause;
    EXPECT_EQ((*res.data)[1].as_i64(), native[1]) << clause;
  }
}

// -- Reduction-operator × schedule × collapse-depth matrix -------------------
//
// reduce_matrix.mz exercises all 10 ReduceOps, the order-insensitive f64
// operators, collapse(2) and collapse(3) nests (with lastprivate), and
// standalone / nowait worksharing reductions inside an explicit region.
// Its loops all say schedule(runtime), so each sweep case runs the full
// matrix under that schedule kind in *both* backends and checks them
// against serial host oracles.

struct MatrixOracle {
  std::int64_t ops[10];
  double f64s[4];
  std::int64_t collapse2;
  std::int64_t collapse3_acc;
  std::int64_t collapse3_last;
  std::int64_t standalone_a;
  std::int64_t standalone_b;
};

MatrixOracle serial_matrix_oracle(std::int64_t n, std::int64_t h,
                                  std::int64_t w, std::int64_t a,
                                  std::int64_t b, std::int64_t c) {
  MatrixOracle o{};
  std::int64_t& add = o.ops[0] = 0;
  std::int64_t& sub = o.ops[1] = 0;
  std::int64_t& mul = o.ops[2] = 1;
  std::int64_t& mn = o.ops[3] = 1000000;
  std::int64_t& mx = o.ops[4] = -1000000;
  std::int64_t& band = o.ops[5] = -1;
  std::int64_t& bor = o.ops[6] = 0;
  std::int64_t& bxor = o.ops[7] = 0;
  std::int64_t& land = o.ops[8] = 1;
  std::int64_t& lor = o.ops[9] = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    add += i * 3 + 1;
    sub -= i + 2;
    if (i % 7 == 0) mul *= 2;
    mn = std::min(mn, ((i * 37) % 101) - 50);
    mx = std::max(mx, ((i * 53) % 89) - 40);
    band &= 1023 - ((i % 4) * 5);
    bor |= std::int64_t{1} << ((i * 11) % 60);
    bxor ^= (i * 97) % 513;
    if (i % 5 == 3) land = 0;
    if (i % 17 == 11) lor = 1;
  }
  o.f64s[0] = 0.0;
  o.f64s[1] = 1000000.0;
  o.f64s[2] = -1000000.0;
  o.f64s[3] = 1.0;
  for (std::int64_t i = 0; i < n; ++i) {
    o.f64s[0] += static_cast<double>(i * 2 + 1);
    o.f64s[1] = std::min(o.f64s[1], static_cast<double>(((i * 29) % 97) - 45));
    o.f64s[2] = std::max(o.f64s[2], static_cast<double>(((i * 41) % 83) - 30));
    if (i % 9 == 0) o.f64s[3] *= 2.0;
  }
  o.collapse2 = 0;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) o.collapse2 += y * 1000 + x * 7;
  }
  o.collapse3_acc = 0;
  o.collapse3_last = 0;
  for (std::int64_t i = 2; i < a; ++i) {
    for (std::int64_t j = 1; j < b; ++j) {
      for (std::int64_t k = 0; k < c; ++k) {
        o.collapse3_acc += i * 10000 + j * 100 + k;
        o.collapse3_last = i * 1000000 + j * 1000 + k;
      }
    }
  }
  o.standalone_a = 0;
  o.standalone_b = 0;
  for (std::int64_t i = 0; i < n; ++i) o.standalone_a += i * 3;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < w; ++j) {
      o.standalone_b = std::max(o.standalone_b, i * j);
    }
  }
  return o;
}

TEST_P(BackendScheduleSweep, ReductionCollapseMatrixAgrees) {
  const ScheduleSweepCase& cs = GetParam();
  auto result = core::compile_source(read_kernel("reduce_matrix.mz"),
                                     {true, "reduce_matrix_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  constexpr std::int64_t n = 41, h = 9, w = 7, a3 = 7, b3 = 5, c3 = 4;
  const MatrixOracle oracle = serial_matrix_oracle(n, h, w, a3, b3, c3);

  zomp::set_num_threads(3);
  zomp::set_schedule({cs.kind, cs.chunk});

  Interp interp(*result.module);

  // red_ops_run — all 10 i64 reduction operators.
  SliceVal ops = make_slice_i64(10);
  interp.call_by_name("red_ops_run", {Value(n), Value(ops)});
  std::vector<std::int64_t> nops(10, 0);
  mzgen_reduce_matrix_mz::red_ops_run(
      n, mz::Slice<std::int64_t>{nops.data(), 10});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*ops.data)[static_cast<std::size_t>(i)].as_i64(), nops[i])
        << cs.clause << " op " << i;
    EXPECT_EQ(nops[i], oracle.ops[i]) << cs.clause << " op " << i;
  }

  // red_f64_run — order-insensitive f64 operators, bit-exact.
  SliceVal f64s = make_slice_f64(4);
  interp.call_by_name("red_f64_run", {Value(n), Value(f64s)});
  std::vector<double> nf64(4, 0.0);
  mzgen_reduce_matrix_mz::red_f64_run(n, mz::Slice<double>{nf64.data(), 4});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*f64s.data)[static_cast<std::size_t>(i)].as_f64(), nf64[i])
        << cs.clause << " f64 op " << i;
    EXPECT_EQ(nf64[i], oracle.f64s[i]) << cs.clause << " f64 op " << i;
  }

  // collapse2_run / collapse3_run — linearized nests, both backends.
  SliceVal c2out = make_slice_i64(1);
  interp.call_by_name("collapse2_run", {Value(h), Value(w), Value(c2out)});
  std::vector<std::int64_t> nc2(1, 0);
  mzgen_reduce_matrix_mz::collapse2_run(h, w,
                                        mz::Slice<std::int64_t>{nc2.data(), 1});
  EXPECT_EQ((*c2out.data)[0].as_i64(), nc2[0]) << cs.clause;
  EXPECT_EQ(nc2[0], oracle.collapse2) << cs.clause;

  SliceVal c3out = make_slice_i64(2);
  interp.call_by_name("collapse3_run",
                      {Value(a3), Value(b3), Value(c3), Value(c3out)});
  std::vector<std::int64_t> nc3(2, 0);
  mzgen_reduce_matrix_mz::collapse3_run(a3, b3, c3,
                                        mz::Slice<std::int64_t>{nc3.data(), 2});
  EXPECT_EQ((*c3out.data)[0].as_i64(), nc3[0]) << cs.clause;
  EXPECT_EQ((*c3out.data)[1].as_i64(), nc3[1]) << cs.clause;
  EXPECT_EQ(nc3[0], oracle.collapse3_acc) << cs.clause;
  EXPECT_EQ(nc3[1], oracle.collapse3_last) << cs.clause;

  // standalone_run — nowait + collapsed standalone loops in one region.
  SliceVal sa = make_slice_i64(2);
  interp.call_by_name("standalone_run", {Value(n), Value(w), Value(sa)});
  std::vector<std::int64_t> nsa(2, 0);
  mzgen_reduce_matrix_mz::standalone_run(
      n, w, mz::Slice<std::int64_t>{nsa.data(), 2});
  EXPECT_EQ((*sa.data)[0].as_i64(), nsa[0]) << cs.clause;
  EXPECT_EQ((*sa.data)[1].as_i64(), nsa[1]) << cs.clause;
  EXPECT_EQ(nsa[0], oracle.standalone_a) << cs.clause;
  EXPECT_EQ(nsa[1], oracle.standalone_b) << cs.clause;

  // multi_red_run — four reduction clauses on ONE construct: both backends
  // pack the partials into a single rendezvous (Stmt::red_pack). Verified
  // against a serial oracle computed here.
  {
    SliceVal mi = make_slice_i64(3);
    SliceVal mf = make_slice_f64(1);
    interp.call_by_name("multi_red_run", {Value(n), Value(mi), Value(mf)});
    std::vector<std::int64_t> nmi(3, 0);
    std::vector<double> nmf(1, 0.0);
    mzgen_reduce_matrix_mz::multi_red_run(
        n, mz::Slice<std::int64_t>{nmi.data(), 3},
        mz::Slice<double>{nmf.data(), 1});
    std::int64_t os = 0, omx = -1000000, omn = 1000000;
    double ofs = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      os += i * 5 + 2;
      omx = std::max(omx, ((i * 67) % 127) - 60);
      omn = std::min(omn, ((i * 31) % 113) - 55);
      ofs += static_cast<double>(i * 4 + 3);
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ((*mi.data)[static_cast<std::size_t>(i)].as_i64(), nmi[i])
          << cs.clause << " packed var " << i;
    }
    EXPECT_EQ((*mf.data)[0].as_f64(), nmf[0]) << cs.clause;
    EXPECT_EQ(nmi[0], os) << cs.clause;
    EXPECT_EQ(nmi[1], omx) << cs.clause;
    EXPECT_EQ(nmi[2], omn) << cs.clause;
    EXPECT_EQ(nmf[0], ofs) << cs.clause;
  }

  // multi_red_standalone_run — the pack through a standalone `omp for`
  // chained after a nowait loop.
  {
    SliceVal ms = make_slice_i64(3);
    interp.call_by_name("multi_red_standalone_run", {Value(n), Value(ms)});
    std::vector<std::int64_t> nms(3, 0);
    mzgen_reduce_matrix_mz::multi_red_standalone_run(
        n, mz::Slice<std::int64_t>{nms.data(), 3});
    std::int64_t owarm = 0, oa = 0, ob = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      owarm += i;
      oa += i * 2 + 1;
      ob = std::max(ob, (i * 19) % 73);
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ((*ms.data)[static_cast<std::size_t>(i)].as_i64(), nms[i])
          << cs.clause << " standalone packed var " << i;
    }
    EXPECT_EQ(nms[0], owarm) << cs.clause;
    EXPECT_EQ(nms[1], oa) << cs.clause;
    EXPECT_EQ(nms[2], ob) << cs.clause;
  }

  zomp::set_schedule({zomp::rt::ScheduleKind::kStatic, 0});
}

TEST_P(BackendScheduleSweep, CollapseDepthsAgreeWithCollapseOne) {
  // collapse(2)/collapse(3) must produce the same results as the collapse(1)
  // spelling of the identical nest: rewrite the clause in source and
  // interpret both forms.
  const ScheduleSweepCase& cs = GetParam();
  const std::string source = read_kernel("reduce_matrix.mz");
  auto deep = core::compile_source(source, {true, "reduce_matrix_deep"});
  ASSERT_TRUE(deep.ok) << deep.diagnostics_text();

  std::string flat_source = source;
  for (const char* clause : {"collapse(2)", "collapse(3)"}) {
    for (std::string::size_type at = flat_source.find(clause);
         at != std::string::npos; at = flat_source.find(clause)) {
      flat_source.replace(at, std::string(clause).size(), "collapse(1)");
    }
  }
  ASSERT_NE(flat_source, source) << "kernel lost its collapse clauses";
  auto flat = core::compile_source(flat_source, {true, "reduce_matrix_flat"});
  ASSERT_TRUE(flat.ok) << flat.diagnostics_text();

  constexpr std::int64_t h = 8, w = 6, a3 = 6, b3 = 4, c3 = 5;
  zomp::set_num_threads(4);
  zomp::set_schedule({cs.kind, cs.chunk});

  Interp deep_interp(*deep.module);
  Interp flat_interp(*flat.module);

  SliceVal d2 = make_slice_i64(1), f2 = make_slice_i64(1);
  deep_interp.call_by_name("collapse2_run", {Value(h), Value(w), Value(d2)});
  flat_interp.call_by_name("collapse2_run", {Value(h), Value(w), Value(f2)});
  EXPECT_EQ((*d2.data)[0].as_i64(), (*f2.data)[0].as_i64()) << cs.clause;

  SliceVal d3 = make_slice_i64(2), f3 = make_slice_i64(2);
  deep_interp.call_by_name("collapse3_run",
                           {Value(a3), Value(b3), Value(c3), Value(d3)});
  flat_interp.call_by_name("collapse3_run",
                           {Value(a3), Value(b3), Value(c3), Value(f3)});
  EXPECT_EQ((*d3.data)[0].as_i64(), (*f3.data)[0].as_i64()) << cs.clause;
  EXPECT_EQ((*d3.data)[1].as_i64(), (*f3.data)[1].as_i64()) << cs.clause;

  zomp::set_schedule({zomp::rt::ScheduleKind::kStatic, 0});
}

TEST(BackendEquivalenceTest, CollapseDegenerateDimensionsRunZeroIterations) {
  // A zero-extent dimension anywhere must empty the whole linearized space
  // in both backends (and must not divide by zero).
  auto result = core::compile_source(read_kernel("reduce_matrix.mz"),
                                     {true, "reduce_matrix_degen"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  zomp::set_num_threads(3);
  Interp interp(*result.module);
  for (const auto& [h, w] : std::initializer_list<std::pair<std::int64_t, std::int64_t>>{
           {0, 5}, {5, 0}, {0, 0}}) {
    SliceVal out = make_slice_i64(1, -7);
    interp.call_by_name("collapse2_run", {Value(h), Value(w), Value(out)});
    EXPECT_EQ((*out.data)[0].as_i64(), 0) << h << "x" << w;
    std::vector<std::int64_t> nout(1, -7);
    mzgen_reduce_matrix_mz::collapse2_run(
        h, w, mz::Slice<std::int64_t>{nout.data(), 1});
    EXPECT_EQ(nout[0], 0) << h << "x" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, BackendScheduleSweep,
    ::testing::Values(
        ScheduleSweepCase{zomp::rt::ScheduleKind::kStatic, 0,
                          "schedule(static)"},
        ScheduleSweepCase{zomp::rt::ScheduleKind::kDynamic, 1,
                          "schedule(dynamic, 1)"},
        ScheduleSweepCase{zomp::rt::ScheduleKind::kGuided, 0,
                          "schedule(guided)"}));

// -- Task graph: depend wavefront, taskloop, taskgroup (DESIGN.md S1.7) ------
//
// taskgraph.mz is all-integer, so ANY task interleaving that honours the
// declared dependences is bit-identical to the serial oracle. The sweep runs
// the same file interpreted and natively transpiled across {1, 2, 4, 8}
// threads — the acceptance gate of the tasking PR.

std::int64_t wavefront_lij(std::int64_t i, std::int64_t j) {
  std::int64_t r = (i + 2 * j) % 3;
  if (r < 0) r += 3;
  return r - 1;
}

class BackendTaskGraphSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackendTaskGraphSweep, TaskgraphKernelAgreesAcrossBackends) {
  const int threads = GetParam();
  auto result = core::compile_source(read_kernel("taskgraph.mz"),
                                     {true, "taskgraph_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  zomp::set_num_threads(threads);
  Interp interp(*result.module);

  // wavefront_run — blocked unit-lower-triangular solve via depend.
  {
    constexpr std::int64_t nb = 5, bs = 8, n = nb * bs;
    std::vector<std::int64_t> bvec(n), xo(n);
    for (std::int64_t i = 0; i < n; ++i) bvec[i] = (i * 17 % 23) - 11;
    for (std::int64_t i = 0; i < n; ++i) {
      std::int64_t s = 0;
      for (std::int64_t j = 0; j < i; ++j) s += wavefront_lij(i, j) * xo[j];
      xo[i] = bvec[i] - s;
    }
    std::int64_t oracle = 0;
    for (std::int64_t i = 0; i < n; ++i) oracle += xo[i] * (i % 13 + 1);

    SliceVal ib = make_slice_i64(n);
    SliceVal ix = make_slice_i64(n);
    for (std::int64_t i = 0; i < n; ++i) {
      (*ib.data)[static_cast<std::size_t>(i)] = Value(bvec[i]);
    }
    const Value isum = interp.call_by_name(
        "wavefront_run", {Value(nb), Value(bs), Value(ib), Value(ix)});

    std::vector<std::int64_t> nx(n, 0);
    const std::int64_t nsum = mzgen_taskgraph_mz::wavefront_run(
        nb, bs, mz::Slice<std::int64_t>{bvec.data(), n},
        mz::Slice<std::int64_t>{nx.data(), n});

    EXPECT_EQ(isum.as_i64(), nsum) << threads << " threads";
    EXPECT_EQ(nsum, oracle) << threads << " threads";
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(nx[static_cast<std::size_t>(i)], xo[static_cast<std::size_t>(i)])
          << "block element " << i << " at " << threads << " threads";
    }
  }

  // taskloop_run — fill (every index exactly once, any chunking) + atomic
  // sum, chained through the implicit taskgroups.
  {
    constexpr std::int64_t n = 53, g = 3, nt = 7;
    std::int64_t oracle = 0;
    for (std::int64_t i = 0; i < n; ++i) oracle += (i * i - 3 * i + 7) * 2 + 1;

    SliceVal iout = make_slice_i64(n);
    const Value itl = interp.call_by_name(
        "taskloop_run", {Value(n), Value(g), Value(nt), Value(iout)});
    std::vector<std::int64_t> nout(n, 0);
    const std::int64_t ntl = mzgen_taskgraph_mz::taskloop_run(
        n, g, nt, mz::Slice<std::int64_t>{nout.data(), n});

    EXPECT_EQ(itl.as_i64(), ntl) << threads << " threads";
    EXPECT_EQ(ntl, oracle) << threads << " threads";
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(nout[static_cast<std::size_t>(i)], i * i - 3 * i + 7)
          << "taskloop index " << i << " at " << threads << " threads";
      ASSERT_EQ((*iout.data)[static_cast<std::size_t>(i)].as_i64(),
                i * i - 3 * i + 7)
          << "interp taskloop index " << i << " at " << threads << " threads";
    }
  }

  // taskgroup_run — a task inside a task inside a taskgroup is counted
  // (out[0] reads the total immediately after the group closes).
  {
    constexpr std::int64_t n = 20, expect = n * (n + 1) / 2;
    SliceVal iout = make_slice_i64(2);
    const Value itg = interp.call_by_name("taskgroup_run",
                                          {Value(n), Value(iout)});
    std::vector<std::int64_t> nout(2, 0);
    const std::int64_t ntg = mzgen_taskgraph_mz::taskgroup_run(
        n, mz::Slice<std::int64_t>{nout.data(), 2});
    EXPECT_EQ(itg.as_i64(), expect);
    EXPECT_EQ(ntg, expect);
    EXPECT_EQ((*iout.data)[0].as_i64(), expect) << "interp taskgroup count";
    EXPECT_EQ(nout[0], expect) << "codegen taskgroup count";
    EXPECT_EQ((*iout.data)[1].as_i64(), expect);
    EXPECT_EQ(nout[1], expect);
  }

  // clauses_run — depend chain on a scalar (strict write order), final
  // subtree inlining, if(false) undeferred, priority/untied accepted.
  {
    SliceVal iout = make_slice_i64(2);
    const Value icl = interp.call_by_name("clauses_run", {Value(5), Value(iout)});
    std::vector<std::int64_t> nout(2, 0);
    const std::int64_t ncl = mzgen_taskgraph_mz::clauses_run(
        5, mz::Slice<std::int64_t>{nout.data(), 2});
    EXPECT_EQ(icl.as_i64(), 123) << "interp depend chain order";
    EXPECT_EQ(ncl, 123) << "codegen depend chain order";
    // 17 = immediate*10 + inner: the undeferred task AND its nested child
    // both completed at the construct (run_task_inline drains children).
    EXPECT_EQ((*iout.data)[0].as_i64(), 17) << "if(false) ran undeferred";
    EXPECT_EQ(nout[0], 17) << "if(false) ran undeferred";
    EXPECT_EQ((*iout.data)[1].as_i64(), 3);
    EXPECT_EQ(nout[1], 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BackendTaskGraphSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(BackendEquivalenceTest, EpRandlcInterpretedMatchesHost) {
  // The MiniZig randlc (float-split arithmetic) must match the host
  // implementation bit for bit — the EP kernel's inputs depend on it.
  auto result = core::compile_source(read_kernel("ep.mz"), {true, "ep_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  Interp interp(*result.module);

  // ipow46(A, k) through the interpreter vs the host nprandom.
  for (const std::int64_t k : {0, 1, 5, 1000}) {
    const Value v = interp.call_by_name(
        "ipow46", {Value(1220703125.0), Value(k)});
    double host = 1.0;
    if (k > 0) host = zomp::npb::ipow46(zomp::npb::kRandA, k);
    EXPECT_EQ(v.as_f64(), host) << "k=" << k;
  }
}

}  // namespace
}  // namespace zomp::interp
