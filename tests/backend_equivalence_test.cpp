// Cross-backend equivalence: the interpreter and the C++ code generator are
// two independent consumers of the transformed AST; running the *same .mz
// kernel files* that the build transpiled natively must produce identical
// results through the interpreter. This pins the two backends to one
// semantics — any divergence in lowering (capture modes, schedule handling,
// reduction identities) fails here.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "interp/interp.h"
#include "is_mz.h"
#include "mandel_mz.h"
#include "npb/is.h"
#include "npb/mandel.h"
#include "npb/nprandom.h"
#include "runtime/api.h"

#ifndef ZOMP_SOURCE_DIR
#define ZOMP_SOURCE_DIR "."
#endif

namespace zomp::interp {
namespace {

std::string read_kernel(const char* name) {
  const std::string path =
      std::string(ZOMP_SOURCE_DIR) + "/src/npb/kernels/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

SliceVal make_slice_i64(std::int64_t n, std::int64_t fill = 0) {
  SliceVal s;
  s.data = std::make_shared<std::vector<Value>>(static_cast<std::size_t>(n),
                                                Value(fill));
  return s;
}

TEST(BackendEquivalenceTest, MandelKernelInterpretedVsTranspiled) {
  auto result = core::compile_source(read_kernel("mandel.mz"),
                                     {true, "mandel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  constexpr std::int64_t w = 48, h = 48, iters = 200;

  // Interpreted execution of the transformed kernel (parallel, 2 threads).
  Interp interp(*result.module);
  SliceVal res = make_slice_i64(2);
  zomp::set_num_threads(2);
  interp.call_by_name("mandel_run", {Value(w), Value(h), Value(iters),
                                     Value(res)});
  const std::int64_t interp_inside = (*res.data)[0].as_i64();
  const std::int64_t interp_checksum = (*res.data)[1].as_i64();

  // Natively transpiled execution of the same file.
  std::vector<std::int64_t> native(2, 0);
  mzgen_mandel_mz::mandel_run(
      w, h, iters, mz::Slice<std::int64_t>{native.data(), 2});

  EXPECT_EQ(interp_inside, native[0]);
  EXPECT_EQ(interp_checksum, native[1]);

  // And both must agree with the hand-written serial reference.
  zomp::npb::MandelParams params{w, h, iters};
  const zomp::npb::MandelResult serial = zomp::npb::mandel_serial(params);
  EXPECT_EQ(interp_inside, serial.inside);
  EXPECT_EQ(static_cast<std::uint64_t>(interp_checksum), serial.iter_checksum);
}

TEST(BackendEquivalenceTest, IsKernelInterpretedVsTranspiled) {
  auto result =
      core::compile_source(read_kernel("is.mz"), {true, "is_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);

  constexpr int kThreads = 2;
  zomp::set_num_threads(kThreads);

  // Interpreted run.
  Interp interp(*result.module);
  SliceVal keys = make_slice_i64(cls.total_keys);
  for (std::int64_t i = 0; i < cls.total_keys; ++i) {
    (*keys.data)[static_cast<std::size_t>(i)] =
        Value(keys0[static_cast<std::size_t>(i)]);
  }
  SliceVal count = make_slice_i64(cls.max_key);
  SliceVal hist = make_slice_i64(cls.max_key * kThreads);
  const Value interp_checksum = interp.call_by_name(
      "is_run", {Value(keys), Value(cls.max_key),
                 Value(static_cast<std::int64_t>(cls.iterations)), Value(count),
                 Value(hist)});

  // Transpiled run on fresh buffers.
  std::vector<std::int64_t> nkeys = keys0;
  std::vector<std::int64_t> ncount(static_cast<std::size_t>(cls.max_key));
  std::vector<std::int64_t> nhist(
      static_cast<std::size_t>(cls.max_key * kThreads));
  const std::int64_t native_checksum = mzgen_is_mz::is_run(
      mz::Slice<std::int64_t>{nkeys.data(),
                              static_cast<std::int64_t>(nkeys.size())},
      cls.max_key, cls.iterations,
      mz::Slice<std::int64_t>{ncount.data(),
                              static_cast<std::int64_t>(ncount.size())},
      mz::Slice<std::int64_t>{nhist.data(),
                              static_cast<std::int64_t>(nhist.size())});

  EXPECT_EQ(interp_checksum.as_i64(), native_checksum);
  // Both agree with the host-side modular-checksum oracle.
  EXPECT_EQ(native_checksum, zomp::npb::is_rank_checksum_mod(
                                 keys0, cls.max_key, cls.iterations));
}

// -- Equivalence under every schedule kind ----------------------------------
//
// The scheduling substrate (work-stealing deques, batched dispatch cursor)
// must be invisible to results: interp and codegen runs of the same kernels
// have to agree under schedule(static), schedule(dynamic,1) and
// schedule(guided) alike.

struct ScheduleSweepCase {
  zomp::rt::ScheduleKind kind;
  std::int64_t chunk;
  const char* clause;  // source-level spelling, for the mandel rewrite
};

class BackendScheduleSweep : public ::testing::TestWithParam<ScheduleSweepCase> {};

TEST_P(BackendScheduleSweep, IsKernelAgreesUnderScheduleIcv) {
  // is.mz's loops say schedule(runtime); sweeping run-sched-var runs the
  // same interpreted and transpiled code under each schedule kind.
  const ScheduleSweepCase& c = GetParam();
  auto result = core::compile_source(read_kernel("is.mz"), {true, "is_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  const zomp::npb::IsClass cls = zomp::npb::is_class('m');
  const auto keys0 = zomp::npb::is_make_keys(cls.total_keys, cls.max_key);
  const std::int64_t oracle =
      zomp::npb::is_rank_checksum_mod(keys0, cls.max_key, cls.iterations);

  constexpr int kThreads = 3;
  zomp::set_num_threads(kThreads);
  zomp::set_schedule({c.kind, c.chunk});

  Interp interp(*result.module);
  SliceVal keys = make_slice_i64(cls.total_keys);
  for (std::int64_t i = 0; i < cls.total_keys; ++i) {
    (*keys.data)[static_cast<std::size_t>(i)] =
        Value(keys0[static_cast<std::size_t>(i)]);
  }
  SliceVal count = make_slice_i64(cls.max_key);
  SliceVal hist = make_slice_i64(cls.max_key * kThreads);
  const Value interp_checksum = interp.call_by_name(
      "is_run", {Value(keys), Value(cls.max_key),
                 Value(static_cast<std::int64_t>(cls.iterations)), Value(count),
                 Value(hist)});

  std::vector<std::int64_t> nkeys = keys0;
  std::vector<std::int64_t> ncount(static_cast<std::size_t>(cls.max_key));
  std::vector<std::int64_t> nhist(
      static_cast<std::size_t>(cls.max_key * kThreads));
  const std::int64_t native_checksum = mzgen_is_mz::is_run(
      mz::Slice<std::int64_t>{nkeys.data(),
                              static_cast<std::int64_t>(nkeys.size())},
      cls.max_key, cls.iterations,
      mz::Slice<std::int64_t>{ncount.data(),
                              static_cast<std::int64_t>(ncount.size())},
      mz::Slice<std::int64_t>{nhist.data(),
                              static_cast<std::int64_t>(nhist.size())});

  zomp::set_schedule({zomp::rt::ScheduleKind::kStatic, 0});
  EXPECT_EQ(interp_checksum.as_i64(), native_checksum) << c.clause;
  EXPECT_EQ(native_checksum, oracle) << c.clause;
}

TEST_P(BackendScheduleSweep, MandelKernelAgreesUnderRewrittenSchedule) {
  // mandel.mz fixes schedule(dynamic, 1); rewriting the clause in source and
  // interpreting the result must still match the transpiled original —
  // integer-exact results cannot depend on the schedule.
  const ScheduleSweepCase& c = GetParam();
  std::string source = read_kernel("mandel.mz");
  const std::string fixed = "schedule(dynamic, 1)";
  const auto at = source.find(fixed);
  ASSERT_NE(at, std::string::npos) << "mandel.mz lost its schedule clause";
  source.replace(at, fixed.size(), c.clause);

  auto result = core::compile_source(source, {true, "mandel_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();

  constexpr std::int64_t w = 40, h = 40, iters = 150;
  zomp::set_num_threads(3);

  Interp interp(*result.module);
  SliceVal res = make_slice_i64(2);
  interp.call_by_name("mandel_run",
                      {Value(w), Value(h), Value(iters), Value(res)});

  std::vector<std::int64_t> native(2, 0);
  mzgen_mandel_mz::mandel_run(w, h, iters,
                              mz::Slice<std::int64_t>{native.data(), 2});

  EXPECT_EQ((*res.data)[0].as_i64(), native[0]) << c.clause;
  EXPECT_EQ((*res.data)[1].as_i64(), native[1]) << c.clause;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, BackendScheduleSweep,
    ::testing::Values(
        ScheduleSweepCase{zomp::rt::ScheduleKind::kStatic, 0,
                          "schedule(static)"},
        ScheduleSweepCase{zomp::rt::ScheduleKind::kDynamic, 1,
                          "schedule(dynamic, 1)"},
        ScheduleSweepCase{zomp::rt::ScheduleKind::kGuided, 0,
                          "schedule(guided)"}));

TEST(BackendEquivalenceTest, EpRandlcInterpretedMatchesHost) {
  // The MiniZig randlc (float-split arithmetic) must match the host
  // implementation bit for bit — the EP kernel's inputs depend on it.
  auto result = core::compile_source(read_kernel("ep.mz"), {true, "ep_interp"});
  ASSERT_TRUE(result.ok) << result.diagnostics_text();
  Interp interp(*result.module);

  // ipow46(A, k) through the interpreter vs the host nprandom.
  for (const std::int64_t k : {0, 1, 5, 1000}) {
    const Value v = interp.call_by_name(
        "ipow46", {Value(1220703125.0), Value(k)});
    double host = 1.0;
    if (k > 0) host = zomp::npb::ipow46(zomp::npb::kRandA, k);
    EXPECT_EQ(v.as_f64(), host) << "k=" << k;
  }
}

}  // namespace
}  // namespace zomp::interp
